# TReX build/test targets. `make build test` is the tier-1 verification
# flow; `make race` is part of the documented pre-merge checks now that
# the storage read path serves concurrent readers lock-free.

GO ?= go

.PHONY: all build test race vet bench bench-parallel ci run-serve-autopilot

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector, including the
# multi-goroutine query stress tests (concurrency_test.go) and the
# storage-level concurrent cursor tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the paper's tables/figures plus the parallel QPS
# suite; see EXPERIMENTS.md for recorded results.
bench:
	$(GO) test -bench . -benchmem ./...

# bench-parallel runs just the concurrency-scaling benchmarks (aggregate
# QPS + cache hit ratio) at several GOMAXPROCS values.
bench-parallel:
	$(GO) test -run xxx -bench 'Parallel|ShardCount' -cpu 1,4 ./internal/storage/ .

# ci is the full pre-merge gate: build, vet, plain tests, race tests.
ci: build vet test race

# run-serve-autopilot is an end-to-end smoke test of the online
# self-management daemon: generate a small corpus, load it, serve it
# with the autopilot on an aggressive interval, push queries through
# /search, and check /autopilot reports a live tracker.
run-serve-autopilot:
	./scripts/serve-autopilot-smoke.sh
