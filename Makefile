# TReX build/test targets. `make build test` is the tier-1 verification
# flow; `make race` is part of the documented pre-merge checks now that
# the storage read path serves concurrent readers lock-free.

GO ?= go

.PHONY: all build test race vet bench bench-parallel bench-pr3 bench-pr5 bench-pr6 bench-qps bench-pr8 bench-cluster bench-pr10 bench-suite-log test-telemetry test-segment test-frontdoor test-planner test-cluster test-json test-ingest fuzz soak soak-cluster ci run-serve-autopilot

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector, including the
# multi-goroutine query stress tests (concurrency_test.go) and the
# storage-level concurrent cursor tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the paper's tables/figures plus the parallel QPS
# suite, and refreshes BENCH_PR3.json; see EXPERIMENTS.md for recorded
# results.
bench: bench-pr3
	$(GO) test -bench . -benchmem ./...

# bench-parallel runs just the concurrency-scaling benchmarks (aggregate
# QPS + cache hit ratio) at several GOMAXPROCS values.
bench-parallel:
	$(GO) test -run xxx -bench 'Parallel|ShardCount' -cpu 1,4 ./internal/storage/ .

# bench-pr3 regenerates BENCH_PR3.json: block-encoded (v2) vs
# row-per-entry (v1) list storage — bytes per table, pages per query,
# ns/op for TA/Merge/ERA. The committed file records the results.
bench-pr3:
	$(GO) run ./cmd/trexbench -exp pr3 -pr3out BENCH_PR3.json

# bench-pr5 regenerates BENCH_PR5.json: the observability layer's cost —
# paper queries with telemetry on vs off (ns/op, allocs/op; budget is
# <= 2 extra allocs per query) plus the price of a /metrics scrape.
bench-pr5:
	$(GO) run ./cmd/trexbench -exp pr5 -pr5out BENCH_PR5.json

# bench-pr6 regenerates BENCH_PR6.json: the immutable mmap'd segment
# read path vs the sharded-LRU pager — cursor scans, point gets and
# TA/Merge end-to-end latency with allocs/op, plus the zero-allocation
# assertion on the segment Reader's Get/Seek/Range.
bench-pr6:
	$(GO) run ./cmd/trexbench -exp pr6 -pr6out BENCH_PR6.json

# bench-qps regenerates BENCH_PR7.json: the front door under open-loop
# load — offered-vs-achieved QPS with p50/p99 latency curves for the
# raw engine, admission control, and admission + the epoch-invalidated
# result cache, over a skewed replay of the paper queries.
bench-qps:
	$(GO) run ./cmd/trexbench -exp pr7 -pr7out BENCH_PR7.json

# bench-pr8 regenerates BENCH_PR8.json: the telemetry-driven query
# planner — MethodAuto vs MethodRace vs each fixed method over the
# skewed replay (mean/p99 wall, engine-level page reads charging race
# its losers, per-query auto-vs-best-fixed, shadow-sampled regret rate).
bench-pr8:
	$(GO) run ./cmd/trexbench -exp pr8 -pr8out BENCH_PR8.json

# bench-cluster regenerates BENCH_PR9.json: the distributed serving
# tier — open-loop QPS/p50/p99 sweeps for the single engine vs
# coordinators at 1/2/4/8 shards behind an identical front door, with
# distributed-TA early-stop counts and per-shard page reads. On a
# single-core box expect throughput parity (the JSON records the
# caveat); the distributed win is in the early-stop/page columns.
bench-cluster:
	$(GO) run ./cmd/trexbench -exp pr9 -pr9out BENCH_PR9.json

# bench-pr10 regenerates BENCH_PR10.json: streaming JSON ingest vs live
# queries — ingest throughput and commit latency per commit batch size,
# the staged->committed freshness-lag distribution, and query p50/p99
# while the writer streams, against a quiet-engine baseline.
bench-pr10:
	$(GO) run ./cmd/trexbench -exp pr10 -pr10out BENCH_PR10.json

# bench-suite-log re-runs the full `go test -bench` sweep and captures
# the raw tool output for local inspection. The log is generated on
# demand and not committed; recorded results live in the BENCH_*.json
# files and EXPERIMENTS.md.
bench-suite-log:
	$(GO) test -bench . -benchmem ./... | tee bench_output_suite.txt

# test-segment is the segment-backend gate: the format/reader unit suite
# (including the mmap lifecycle and zero-alloc assertions), the engine
# integration tests (pager/segment ranking equivalence, read-your-writes,
# reopen, crash-before-swap), and the crash-recovery oracle sweep.
test-segment:
	$(GO) test ./internal/segment -count=1
	$(GO) test . -run 'TestSegment' -count=1
	$(GO) test ./internal/oracle -run 'TestCrashRecoverySweep' -count=1

# test-telemetry is the observability gate: the telemetry package's unit
# suite (histogram edges, exposition format, guard semantics) plus the
# engine-level conformance tests that assert the reported numbers equal
# the engine's own counters, the mixed query/materialize race regression,
# and the per-query allocation budget.
test-telemetry:
	$(GO) test ./internal/telemetry -count=1
	$(GO) test . -run 'TestTrace|TestShardCountersSumToGlobal|TestSlowLogCapturesExactly|TestMetricsMatchQueryTraffic|TestExplainTrace|TestQueryTelemetryAllocGuard' -count=1
	$(GO) test . -run TestTelemetryMixedQueryMaterializeRace -race -count=1
	$(GO) test ./internal/webapi -run 'TestMetrics|TestSlowlog|TestSearchResponseTrace' -count=1

# test-frontdoor is the front-door gate: the admission/cache unit suite,
# the engine-level deadline/cancellation/cache semantics (including the
# race-detected no-stale-hit hammer), the /search 429/503 and cached
# response handler tests, and the 200-case cached-vs-uncached oracle
# sweep asserting byte-identical rankings.
test-frontdoor:
	$(GO) test ./internal/frontdoor -count=1
	$(GO) test . -run 'TestQueryDeadline|TestQueryCancel|TestFrontDoor|TestResultCache|TestWriteInvalidates|TestAdmissionShedAndTimeout' -count=1
	$(GO) test . -run TestNoStaleCacheHitUnderWrites -race -count=1
	$(GO) test ./internal/webapi -run 'TestSearchShed|TestSearchQueueTimeout|TestSearchDeadline|TestSearchCached' -count=1
	$(GO) test ./internal/oracle -run TestCachedDifferential200Cases -count=1

# test-planner is the query-planner gate: the planner package's unit
# suite (cost model, bucketing, eligibility), the engine-level
# convergence test (auto routes >= 90% of a calibrated workload to the
# measured-cheapest method), the shadow-sampling-vs-maintenance race
# test, the oracle sweep's Auto column, and the /planner + /search
# planner-field handler tests.
test-planner:
	$(GO) test ./internal/planner -count=1
	$(GO) test . -run 'TestPlannerConvergence|TestShadowSampling|TestPlanner' -count=1
	$(GO) test . -run TestShadowSamplingRace -race -count=1
	$(GO) test ./internal/oracle -run TestDifferential200Cases -count=1
	$(GO) test ./internal/webapi -run 'TestPlanner|TestSearchPlannerFields|TestExplainPlannerFields' -count=1

# test-cluster is the distributed-tier gate: the cluster package's
# full suite (partitioning, distributed TA, sequenced replication,
# fault injection at every fetch boundary, telemetry conformance), the
# replication/fault tests under the race detector, the 200-case
# distributed-vs-single differential oracle, and the coordinator's
# HTTP handler tests.
test-cluster:
	$(GO) test ./internal/cluster -count=1
	$(GO) test ./internal/cluster -run 'TestQueriesRaceWriteFanout|TestWriteFanoutSurvivesMidApplyCrash|TestClusterIOExactHonestUnderSegmentSwap' -race -count=1
	$(GO) test ./internal/oracle -run 'TestClusterDifferential200Cases|TestClusterPerturbationShrinksToMinimalRepro' -count=1
	$(GO) test ./internal/webapi -run 'TestCluster' -count=1

# test-json is the JSON-universe gate: the jsoncorpus mapping suite
# (golden renderings, scanner cross-checks, strict inverse, JSONPath
# translation), the corpus format-dispatch tests, and the 200-case
# cross-universe differential oracle asserting ERA/TA/NRA/Merge return
# byte-identical rankings for a JSON collection and its canonical XML
# rendering over v1/v2/segment stores.
test-json:
	$(GO) test ./internal/jsoncorpus -count=1
	$(GO) test ./internal/corpus -count=1
	$(GO) test ./internal/oracle -run 'TestJSONXMLDifferential200Cases|TestUniversePerturbationShrinks' -count=1

# test-ingest is the streaming-ingest gate: the staged-commit crash
# loops (kill at every write boundary; single batch XML and JSON, plus
# the two-batch never-partial loop), the race-detected ingest-vs-query
# vs-autopilot differential, the front-door freshness test (no cached
# pre-ingest result served after commit), the cluster streaming fan-out
# epoch-convergence test, and the /ingest handler tests.
test-ingest:
	$(GO) test ./internal/faultinject -run 'TestCrashLoopStagedIngest' -count=1
	$(GO) test . -run 'TestIngestRacesQueriesAndAutopilot' -race -count=1
	$(GO) test . -run 'TestIngestInvalidatesResultCache' -count=1
	$(GO) test ./internal/cluster -run 'TestClusterStreamingIngestConvergesEpochs' -race -count=1
	$(GO) test ./internal/webapi -run 'TestIngest' -count=1

# fuzz gives each codec fuzz target a short bounded run — long enough to
# catch a decode panic regression, short enough for CI. The loop fails
# fast: the first red target stops the run instead of burning the
# remaining fuzz budget on a build that is already broken.
FUZZTIME ?= 5s
FUZZ_TARGETS = FuzzDecodePostingValue FuzzDecodeRPLRow FuzzDecodeERPLRow FuzzBlockRoundTrip
SEGMENT_FUZZ_TARGETS = FuzzReader
JSON_FUZZ_TARGETS = FuzzJSONToElements
fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test ./internal/index -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done; \
	for t in $(SEGMENT_FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test ./internal/segment -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done; \
	for t in $(JSON_FUZZ_TARGETS); do \
		echo "fuzz $$t"; \
		$(GO) test ./internal/jsoncorpus -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# soak is the nightly differential-oracle long run: thousands of seeded
# random cases asserting byte-identical rankings across every strategy
# and list format. SEED=0 picks a fresh wall-clock seed (the test logs
# it); replay a red run with `make soak SEED=<logged seed>`. CASES
# overrides the case count.
SEED ?= 0
CASES ?= 3000
soak:
	TREX_SOAK=1 TREX_SOAK_SEED=$(SEED) TREX_SOAK_CASES=$(CASES) \
		$(GO) test ./internal/oracle -run '^TestSoak$$' -count=1 -v -timeout 120m

# soak-cluster is the nightly distributed-oracle long run: randomized
# cases through the full CheckCluster grid (shards {1,2,4} x replicas
# {1,2} x ERA/TA/NRA/Merge vs a single engine). Same SEED/CASES
# replay contract as `make soak`; a cluster case covers 24 grid cells,
# so the default count is lower.
CLUSTER_CASES ?= 1000
soak-cluster:
	TREX_SOAK=1 TREX_SOAK_SEED=$(SEED) TREX_SOAK_CASES=$(CLUSTER_CASES) \
		$(GO) test ./internal/oracle -run '^TestClusterSoak$$' -count=1 -v -timeout 120m

# ci is the full pre-merge gate: build, vet, plain tests, race tests,
# the segment-backend gate, the telemetry conformance gate, the
# front-door gate, the query-planner gate, the cluster gate, the
# JSON-universe gate, the streaming-ingest gate, and short codec,
# segment-format, and JSON-mapping fuzz runs.
ci: build vet test race test-segment test-telemetry test-frontdoor test-planner test-cluster test-json test-ingest fuzz

# run-serve-autopilot is an end-to-end smoke test of the online
# self-management daemon: generate a small corpus, load it, serve it
# with the autopilot on an aggressive interval, push queries through
# /search, and check /autopilot reports a live tracker.
run-serve-autopilot:
	./scripts/serve-autopilot-smoke.sh
