package trex

import (
	"fmt"
	"sort"

	"trex/internal/index"
	"trex/internal/retrieval"
	"trex/internal/selfmanage"
)

// WorkloadQuery is one entry of a self-management workload
// (Definition 4.1 in the paper): a NEXI query with its frequency and the
// k its users typically ask for.
type WorkloadQuery struct {
	NEXI string
	Freq float64
	K    int
}

// Solver selects the index-selection algorithm.
type Solver int

const (
	// SolverGreedy is the paper's 2-approximation (Section 4.2).
	SolverGreedy Solver = iota
	// SolverLP is the paper's boolean linear program (Section 4.1),
	// solved exactly; suitable for small workloads.
	SolverLP
	// SolverOptimal exhaustively searches assignments honoring list
	// sharing; only for very small workloads.
	SolverOptimal
)

func (s Solver) String() string {
	switch s {
	case SolverLP:
		return "lp"
	case SolverOptimal:
		return "optimal"
	default:
		return "greedy"
	}
}

// AdvisorReport describes a completed self-management run.
type AdvisorReport struct {
	// Workload holds the measured per-query costs handed to the solver.
	Workload *selfmanage.Workload
	// Plan is the solver's decision.
	Plan *selfmanage.Plan
	// DiskBudget is the budget the plan respected.
	DiskBudget int64
	// KeptLists and DroppedLists are the physical list keys retained and
	// reclaimed.
	KeptLists    []string
	DroppedLists []string
	// DroppedEntries counts entries deleted during reclamation.
	DroppedEntries int
}

type listInfo struct {
	kind index.ListKind
	term string
	sid  uint32
}

func listKey(kind index.ListKind, term string, sid uint32) string {
	return fmt.Sprintf("%c/%s/%d", byte(kind), term, sid)
}

// SelfManage measures the workload's queries under all three strategies,
// chooses which redundant lists to keep under the disk budget using the
// selected solver, and reclaims the rest — the full self-management cycle
// of Section 4.
//
// Measurement works the way the paper prescribes: the lists each query
// would need are materialized (via ERA), the three strategies are run, and
// "the actual time savings and disk space ... measured experimentally and
// assigned in the formulas". Costs use the deterministic Stats.CostProxy
// so plans are reproducible. Lists the plan does not keep are dropped,
// including previously existing lists the workload references; lists
// never referenced by the workload are left untouched.
func (e *Engine) SelfManage(queries []WorkloadQuery, disk int64, solver Solver) (*AdvisorReport, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("trex: empty workload")
	}
	w := &selfmanage.Workload{}
	lists := make(map[string]listInfo)

	for _, wq := range queries {
		tr, err := e.Translate(wq.NEXI)
		if err != nil {
			return nil, fmt.Errorf("trex: workload query %q: %w", wq.NEXI, err)
		}
		sids, terms := flatten(tr)
		sc, err := e.store.NewScorer(terms)
		if err != nil {
			return nil, err
		}
		if _, err := retrieval.Materialize(e.store, sids, terms, sc, index.KindRPL, index.KindERPL); err != nil {
			return nil, err
		}
		k := wq.K
		if k <= 0 {
			k = 10
		}
		_, eraStats, err := retrieval.ExhaustiveTopK(e.store, sids, terms, sc, k)
		if err != nil {
			return nil, err
		}
		_, taStats, err := retrieval.TA(e.store, sids, terms, sc, k)
		if err != nil {
			return nil, err
		}
		_, mergeStats, err := retrieval.Merge(e.store, sids, terms, k)
		if err != nil {
			return nil, err
		}

		spec := selfmanage.QuerySpec{
			ID:        wq.NEXI,
			Freq:      wq.Freq,
			TimeERA:   eraStats.CostProxy(),
			TimeTA:    taStats.CostProxy(),
			TimeMerge: mergeStats.CostProxy(),
		}
		for _, term := range terms {
			for _, sid := range sids {
				for _, kind := range []index.ListKind{index.KindRPL, index.KindERPL} {
					_, bytes, err := e.store.BuiltSize(kind, term, sid)
					if err != nil {
						return nil, err
					}
					key := listKey(kind, term, sid)
					lists[key] = listInfo{kind: kind, term: term, sid: sid}
					ref := selfmanage.ListRef{Key: key, Bytes: bytes}
					if kind == index.KindRPL {
						spec.TALists = append(spec.TALists, ref)
					} else {
						spec.MergeLists = append(spec.MergeLists, ref)
					}
				}
			}
		}
		w.Queries = append(w.Queries, spec)
	}
	w.Normalize()

	var plan *selfmanage.Plan
	var err error
	switch solver {
	case SolverLP:
		plan, err = selfmanage.LP(w, disk)
	case SolverOptimal:
		plan, err = selfmanage.Optimal(w, disk)
	default:
		plan, err = selfmanage.Greedy(w, disk)
	}
	if err != nil {
		return nil, err
	}

	keep := make(map[string]bool, len(plan.Lists))
	for _, k := range plan.Lists {
		keep[k] = true
	}
	report := &AdvisorReport{Workload: w, Plan: plan, DiskBudget: disk}
	var dropKeys []string
	for key := range lists {
		if keep[key] {
			report.KeptLists = append(report.KeptLists, key)
		} else {
			dropKeys = append(dropKeys, key)
		}
	}
	sort.Strings(report.KeptLists)
	sort.Strings(dropKeys)
	for _, key := range dropKeys {
		info := lists[key]
		n, err := e.store.DropList(info.kind, info.term, info.sid)
		if err != nil {
			return nil, err
		}
		report.DroppedEntries += n
		report.DroppedLists = append(report.DroppedLists, key)
	}
	return report, nil
}
