package trex

import (
	"context"
	"fmt"
	"sort"
	"time"

	"trex/internal/index"
	"trex/internal/planner"
	"trex/internal/retrieval"
	"trex/internal/selfmanage"
	"trex/internal/translate"
)

// DefaultK is the k assumed when a top-k request does not specify one:
// workload entries with K <= 0 handed to SelfManage, queries issued with
// k <= 0 ("all answers") entering the autopilot's workload tracker, and
// the web API's default page size all share this constant, so offline
// plans and online snapshots describe the same workload.
const DefaultK = 10

// WorkloadQuery is one entry of a self-management workload
// (Definition 4.1 in the paper): a NEXI query with its frequency and the
// k its users typically ask for (DefaultK when K <= 0).
type WorkloadQuery struct {
	NEXI string
	Freq float64
	K    int
}

// Solver selects the index-selection algorithm.
type Solver int

const (
	// SolverGreedy is the paper's 2-approximation (Section 4.2).
	SolverGreedy Solver = iota
	// SolverLP is the paper's boolean linear program (Section 4.1),
	// solved exactly; suitable for small workloads.
	SolverLP
	// SolverOptimal exhaustively searches assignments honoring list
	// sharing; only for very small workloads.
	SolverOptimal
)

func (s Solver) String() string {
	switch s {
	case SolverLP:
		return "lp"
	case SolverOptimal:
		return "optimal"
	default:
		return "greedy"
	}
}

// AdvisorReport describes a completed self-management run.
type AdvisorReport struct {
	// Workload holds the measured per-query costs handed to the solver.
	Workload *selfmanage.Workload
	// Plan is the solver's decision.
	Plan *selfmanage.Plan
	// DiskBudget is the budget the plan respected.
	DiskBudget int64
	// KeptLists and DroppedLists are the physical list keys retained and
	// reclaimed.
	KeptLists    []string
	DroppedLists []string
	// DroppedEntries counts entries deleted during reclamation.
	DroppedEntries int
	// SkippedQueries are workload entries dropped before planning
	// because they no longer translate (only with skipUntranslatable,
	// i.e. autopilot runs — tracked queries can go stale when the
	// summary changes).
	SkippedQueries []string
	// Routed records, per workload query, the method the engine's query
	// planner predicts under RPL-only and ERPL-only coverage — the
	// methods whose measured costs entered the solver's saving terms.
	// Nil when the planner is disabled (the solver then uses the raw
	// TA/Merge costs, the pre-planner behavior).
	Routed map[string]selfmanage.Routing
}

type listInfo struct {
	kind index.ListKind
	term string
	sid  uint32
}

// listKey is the physical list identity used in the solver's sharing
// model and in reports. The sid (fixed-format decimal) comes before the
// term and the term is the final field, so a term containing '/' — or
// any other byte — can never make two distinct (kind, term, sid) triples
// collide: the first two '/'-separated fields fully determine where the
// term begins.
func listKey(kind index.ListKind, term string, sid uint32) string {
	return fmt.Sprintf("%c/%d/%s", byte(kind), sid, term)
}

// selfManageConfig tunes the internal self-management cycle beyond the
// public one-shot API.
type selfManageConfig struct {
	// dropUnreferenced also reclaims materialized lists the workload does
	// not reference. The autopilot sets it: its plan owns the whole list
	// set, so stale lists from earlier workloads must not leak disk
	// budget. The offline API keeps the paper's behavior (untouched).
	dropUnreferenced bool
	// skipUntranslatable drops workload entries whose NEXI no longer
	// parses or translates instead of failing the run.
	skipUntranslatable bool
	// pause rate-limits maintenance: it is slept between per-query
	// measurement steps and between per-list drop steps, with the engine
	// write lock released, so foreground queries are never starved.
	pause time.Duration
}

// SelfManage measures the workload's queries under all three strategies,
// chooses which redundant lists to keep under the disk budget using the
// selected solver, and reclaims the rest — the full self-management cycle
// of Section 4.
//
// Measurement works the way the paper prescribes: the lists each query
// would need are materialized (via ERA), the three strategies are run, and
// "the actual time savings and disk space ... measured experimentally and
// assigned in the formulas". Costs use the deterministic Stats.CostProxy
// so plans are reproducible. Lists the plan does not keep are dropped,
// including previously existing lists the workload references; lists
// never referenced by the workload are left untouched.
//
// SelfManage is a maintenance operation: it may run while queries are
// served (each materialize/drop step briefly holds the engine write
// lock) but is exclusive with other maintenance operations.
func (e *Engine) SelfManage(queries []WorkloadQuery, disk int64, solver Solver) (*AdvisorReport, error) {
	return e.selfManage(context.Background(), queries, disk, solver, selfManageConfig{})
}

func (e *Engine) selfManage(ctx context.Context, queries []WorkloadQuery, disk int64, solver Solver, cfg selfManageConfig) (*AdvisorReport, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("trex: empty workload")
	}
	e.maintMu.Lock()
	defer e.maintMu.Unlock()

	report := &AdvisorReport{DiskBudget: disk}
	if e.pln != nil {
		report.Routed = make(map[string]selfmanage.Routing)
	}
	w := &selfmanage.Workload{}
	lists := make(map[string]listInfo)
	for _, wq := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec, err := e.measureWorkloadQuery(ctx, wq, lists, report.Routed)
		if err != nil {
			if cfg.skipUntranslatable && spec == nil {
				report.SkippedQueries = append(report.SkippedQueries, wq.NEXI)
				continue
			}
			return nil, err
		}
		w.Queries = append(w.Queries, *spec)
		if err := maintSleep(ctx, cfg.pause); err != nil {
			return nil, err
		}
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("trex: no usable workload queries (%d skipped)", len(report.SkippedQueries))
	}
	w.Normalize()

	var plan *selfmanage.Plan
	var err error
	switch solver {
	case SolverLP:
		plan, err = selfmanage.LP(w, disk)
	case SolverOptimal:
		plan, err = selfmanage.Optimal(w, disk)
	default:
		plan, err = selfmanage.Greedy(w, disk)
	}
	if err != nil {
		return nil, err
	}
	report.Workload = w
	report.Plan = plan

	keep := make(map[string]bool, len(plan.Lists))
	for _, k := range plan.Lists {
		keep[k] = true
	}
	var dropKeys []string
	for key := range lists {
		if keep[key] {
			report.KeptLists = append(report.KeptLists, key)
		} else {
			dropKeys = append(dropKeys, key)
		}
	}
	if cfg.dropUnreferenced {
		extra, err := e.unreferencedLists(keep, lists)
		if err != nil {
			return nil, err
		}
		for key, info := range extra {
			lists[key] = info
			dropKeys = append(dropKeys, key)
		}
	}
	sort.Strings(report.KeptLists)
	sort.Strings(dropKeys)
	for _, key := range dropKeys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		info := lists[key]
		e.beginWrite()
		n, err := e.store.DropList(info.kind, info.term, info.sid)
		e.endWrite()
		if err != nil {
			return nil, err
		}
		report.DroppedEntries += n
		report.DroppedLists = append(report.DroppedLists, key)
		if err := maintSleep(ctx, cfg.pause); err != nil {
			return nil, err
		}
	}
	if err := e.store.CommitLists(); err != nil {
		return nil, fmt.Errorf("trex: self-manage (segment commit phase, plan applied in memory): %w", err)
	}
	if err := e.db.Flush(); err != nil {
		return nil, fmt.Errorf("trex: self-manage (commit phase, plan applied in memory): %w", err)
	}
	return report, nil
}

// measureWorkloadQuery materializes the query's candidate lists (unless
// already fully built) under the engine write lock, then measures the
// strategies under the read lock, so queries keep flowing between the
// two phases. A (nil, err) return means the query failed to translate;
// (non-nil spec, err) is an internal error.
//
// With the planner enabled, NRA is measured alongside the paper's three
// strategies, every measured cost calibrates the planner's model, and
// the solver's saving terms follow the planner's routing: the spec's
// "TA time" becomes the measured cost of whatever method the planner
// would run under RPL-only coverage (TA, NRA, or ERA — the latter
// zeroing the saving, because an RPL the planner would not route to is
// worthless), and likewise for "Merge time" under ERPL-only coverage.
// The routing per query is recorded in routed when non-nil.
func (e *Engine) measureWorkloadQuery(ctx context.Context, wq WorkloadQuery, lists map[string]listInfo, routed map[string]selfmanage.Routing) (*selfmanage.QuerySpec, error) {
	e.beginWrite()
	tr, err := e.translateMode(wq.NEXI, translate.ModeVague)
	if err != nil {
		e.endWrite()
		return nil, fmt.Errorf("trex: workload query %q: %w", wq.NEXI, err)
	}
	sids, terms := flatten(tr)
	sc, err := e.store.NewScorer(terms)
	if err == nil {
		// Steady-state autopilot runs re-measure a workload whose lists
		// are already materialized; skip the ERA rebuild then.
		var rpl, erpl bool
		if rpl, err = e.store.Covered(index.KindRPL, terms, sids); err == nil {
			erpl, err = e.store.Covered(index.KindERPL, terms, sids)
		}
		if err == nil && !(rpl && erpl) {
			_, err = retrieval.Materialize(e.store, sids, terms, sc, index.KindRPL, index.KindERPL)
		}
	}
	e.endWrite()
	if err != nil {
		return &selfmanage.QuerySpec{}, err
	}

	e.beginRead()
	defer e.endRead()
	k := wq.K
	if k <= 0 {
		k = DefaultK
	}
	_, eraStats, err := retrieval.ExhaustiveTopKCtx(ctx, e.store, sids, terms, sc, k)
	if err != nil {
		return &selfmanage.QuerySpec{}, err
	}
	_, taStats, err := retrieval.TACtx(ctx, e.store, sids, terms, sc, k)
	if err != nil {
		return &selfmanage.QuerySpec{}, err
	}
	_, mergeStats, err := retrieval.MergeCtx(ctx, e.store, sids, terms, k)
	if err != nil {
		return &selfmanage.QuerySpec{}, err
	}

	spec := &selfmanage.QuerySpec{
		ID:        wq.NEXI,
		Freq:      wq.Freq,
		TimeERA:   eraStats.CostProxy(),
		TimeTA:    taStats.CostProxy(),
		TimeMerge: mergeStats.CostProxy(),
	}
	if p := e.pln; p != nil {
		_, nraStats, err := retrieval.NRACtx(ctx, e.store, sids, terms, k)
		if err != nil {
			return &selfmanage.QuerySpec{}, err
		}
		feats, err := e.planFeatures(sids, terms, k)
		if err != nil {
			return &selfmanage.QuerySpec{}, err
		}
		costs := [planner.NumMethods]float64{
			planner.ERA:   eraStats.CostProxy(),
			planner.TA:    taStats.CostProxy(),
			planner.NRA:   nraStats.CostProxy(),
			planner.Merge: mergeStats.CostProxy(),
		}
		// Measurement runs are free calibration: all four methods just
		// ran the same query under exact counters.
		for m := planner.Method(0); m < planner.NumMethods; m++ {
			p.model.Observe(m, feats, costs[m])
		}
		rplOnly := feats
		rplOnly.RPLCovered, rplOnly.ERPLCovered = true, false
		erplOnly := feats
		erplOnly.RPLCovered, erplOnly.ERPLCovered = false, true
		mRPL := p.model.Plan(rplOnly).Method
		mERPL := p.model.Plan(erplOnly).Method
		spec.TimeTA = costs[mRPL]
		spec.TimeMerge = costs[mERPL]
		if routed != nil {
			routed[wq.NEXI] = selfmanage.Routing{RPLOnly: mRPL.String(), ERPLOnly: mERPL.String()}
		}
	}
	for _, term := range terms {
		for _, sid := range sids {
			for _, kind := range []index.ListKind{index.KindRPL, index.KindERPL} {
				_, bytes, err := e.store.BuiltSize(kind, term, sid)
				if err != nil {
					return &selfmanage.QuerySpec{}, err
				}
				key := listKey(kind, term, sid)
				lists[key] = listInfo{kind: kind, term: term, sid: sid}
				ref := selfmanage.ListRef{Key: key, Bytes: bytes}
				if kind == index.KindRPL {
					spec.TALists = append(spec.TALists, ref)
				} else {
					spec.MergeLists = append(spec.MergeLists, ref)
				}
			}
		}
	}
	return spec, nil
}

// unreferencedLists returns every materialized list that neither the
// plan keeps nor the measured workload references (those are in lists
// already and handled by the normal drop path).
func (e *Engine) unreferencedLists(keep map[string]bool, lists map[string]listInfo) (map[string]listInfo, error) {
	e.beginRead()
	entries, err := e.store.CatalogEntries()
	e.endRead()
	if err != nil {
		return nil, err
	}
	extra := make(map[string]listInfo)
	for _, ce := range entries {
		key := listKey(ce.Kind, ce.Term, ce.SID)
		if keep[key] {
			continue
		}
		if _, known := lists[key]; known {
			continue
		}
		extra[key] = listInfo{kind: ce.Kind, term: ce.Term, sid: ce.SID}
	}
	return extra, nil
}

// maintSleep pauses between maintenance steps, honoring cancellation.
func maintSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
