package trex

import (
	"fmt"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
)

// TestListKeyUnambiguous pins the physical-list key encoding: no two
// distinct (kind, term, sid) triples may share a key, or the solver's
// sharing model would treat distinct lists as one (undercounting disk
// and cross-crediting savings). Terms containing '/' and digits are the
// adversarial cases: the sid field is placed before the term so the term
// (the only free-form field) is always last.
func TestListKeyUnambiguous(t *testing.T) {
	if got := listKey(index.KindRPL, "xml", 7); got != "R/7/xml" {
		t.Fatalf("listKey format changed: %q", got)
	}
	terms := []string{"", "a", "a/1", "a/1/2", "1", "1/a", "/", "a/", "/a", "12/3"}
	sids := []uint32{0, 1, 2, 12, 123, 1234}
	seen := make(map[string]string)
	for _, kind := range []index.ListKind{index.KindRPL, index.KindERPL} {
		for _, term := range terms {
			for _, sid := range sids {
				key := listKey(kind, term, sid)
				id := fmt.Sprintf("(%c,%q,%d)", byte(kind), term, sid)
				if prev, ok := seen[key]; ok {
					t.Fatalf("key collision: %s and %s both map to %q", prev, id, key)
				}
				seen[key] = id
			}
		}
	}
}

func TestSelfManageGreedy(t *testing.T) {
	eng := testEngine(t, 30, 11)
	workload := []WorkloadQuery{
		{NEXI: `//article//sec[about(., ontologies case study)]`, Freq: 0.5, K: 10},
		{NEXI: `//article[about(., xml query evaluation)]`, Freq: 0.3, K: 10},
		{NEXI: `//article//p[about(., model checking)]`, Freq: 0.2, K: 10},
	}
	report, err := eng.SelfManage(workload, 1<<40, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if report.Plan == nil || len(report.Plan.Assignments) != 3 {
		t.Fatalf("plan = %+v", report.Plan)
	}
	// With unlimited disk, every query with any positive saving gets an
	// index; the planted topics guarantee matches, so savings exist.
	if report.Plan.Saving <= 0 {
		t.Fatalf("saving = %v, want > 0", report.Plan.Saving)
	}
	if len(report.KeptLists) == 0 {
		t.Fatal("nothing kept under unlimited budget")
	}
	// Every kept list must be materialized; dropped ones must be gone.
	for _, q := range workload {
		tr, err := eng.Translate(q.NEXI)
		if err != nil {
			t.Fatal(err)
		}
		sids, terms := flatten(tr)
		for i, c := range report.Plan.Assignments {
			if workload[i].NEXI != q.NEXI {
				continue
			}
			switch c {
			case 1: // StrategyMerge
				cov, err := eng.store.Covered(index.KindERPL, terms, sids)
				if err != nil || !cov {
					t.Fatalf("query %d assigned merge but ERPLs not covered: %v %v", i, cov, err)
				}
			case 2: // StrategyTA
				cov, err := eng.store.Covered(index.KindRPL, terms, sids)
				if err != nil || !cov {
					t.Fatalf("query %d assigned ta but RPLs not covered: %v %v", i, cov, err)
				}
			}
		}
	}
}

func TestSelfManageZeroBudgetDropsEverything(t *testing.T) {
	eng := testEngine(t, 20, 13)
	workload := []WorkloadQuery{
		{NEXI: `//article//sec[about(., ontologies)]`, Freq: 1.0, K: 10},
	}
	report, err := eng.SelfManage(workload, 0, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.KeptLists) != 0 {
		t.Fatalf("kept %v under zero budget", report.KeptLists)
	}
	if report.DroppedEntries == 0 {
		t.Fatal("expected measurement lists to be dropped")
	}
	// The query must now fall back to ERA.
	res, err := eng.Query(workload[0].NEXI, 10, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodERA {
		t.Fatalf("method after drop = %v, want era", res.Method)
	}
}

func TestSelfManageRespectsBudget(t *testing.T) {
	eng := testEngine(t, 25, 17)
	workload := []WorkloadQuery{
		{NEXI: `//article//sec[about(., ontologies case study)]`, Freq: 0.6, K: 10},
		{NEXI: `//article//p[about(., information retrieval)]`, Freq: 0.4, K: 10},
	}
	// First run unlimited to learn the full footprint.
	full, err := eng.SelfManage(workload, 1<<40, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Plan.DiskUsed / 2
	if budget == 0 {
		t.Skip("lists too small to halve")
	}
	report, err := eng.SelfManage(workload, budget, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if report.Plan.DiskUsed > budget {
		t.Fatalf("plan used %d > budget %d", report.Plan.DiskUsed, budget)
	}
}

func TestSelfManageSolversAgreeOnEasyWorkload(t *testing.T) {
	eng := testEngine(t, 20, 19)
	workload := []WorkloadQuery{
		{NEXI: `//article//sec[about(., ontologies)]`, Freq: 0.5, K: 10},
		{NEXI: `//article//p[about(., model checking)]`, Freq: 0.5, K: 10},
	}
	greedy, err := eng.SelfManage(workload, 1<<40, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := eng.SelfManage(workload, 1<<40, SolverLP)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := eng.SelfManage(workload, 1<<40, SolverOptimal)
	if err != nil {
		t.Fatal(err)
	}
	// With unlimited disk all three pick the per-query best strategy.
	if greedy.Plan.Saving != lp.Plan.Saving || lp.Plan.Saving != opt.Plan.Saving {
		t.Fatalf("savings differ: greedy=%v lp=%v optimal=%v",
			greedy.Plan.Saving, lp.Plan.Saving, opt.Plan.Saving)
	}
}

func TestSelfManageEmptyWorkload(t *testing.T) {
	eng := testEngine(t, 5, 1)
	if _, err := eng.SelfManage(nil, 100, SolverGreedy); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestSelfManageQueriesStillCorrectAfterPlan(t *testing.T) {
	// After the advisor drops some lists, auto evaluation must still
	// return the same answers (via fallback strategies).
	eng := testEngine(t, 25, 23)
	queries := []WorkloadQuery{
		{NEXI: `//article//sec[about(., ontologies case study)]`, Freq: 0.7, K: 10},
		{NEXI: `//article//p[about(., information retrieval)]`, Freq: 0.3, K: 10},
	}
	var before []*Result
	for _, q := range queries {
		r, err := eng.Query(q.NEXI, 10, MethodERA)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, r)
	}
	if _, err := eng.SelfManage(queries, 1<<20, SolverGreedy); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		r, err := eng.Query(q.NEXI, 10, MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Answers) != len(before[i].Answers) {
			t.Fatalf("query %d: answers %d != %d after self-manage",
				i, len(r.Answers), len(before[i].Answers))
		}
		for j := range r.Answers {
			if r.Answers[j] != before[i].Answers[j] {
				t.Fatalf("query %d answer %d changed after self-manage:\n%+v\n%+v",
					i, j, r.Answers[j], before[i].Answers[j])
			}
		}
	}
	_ = corpus.StyleIEEE
}
