package trex

import (
	"context"
	"fmt"
	"time"

	"trex/internal/autopilot"
	"trex/internal/selfmanage"
	"trex/internal/storage"
)

// AutopilotOptions configures online self-management: a bounded workload
// tracker fed by the query path plus a background controller that
// periodically re-runs the Section 4 index selection over the observed
// workload and applies the delta (materialize new lists, drop evicted
// ones) while queries keep being served.
type AutopilotOptions struct {
	// Interval between planning runs (default 30s).
	Interval time.Duration
	// DriftQueries triggers an early run once this many queries arrived
	// since the last run (0 = timer only).
	DriftQueries int
	// DiskBudget bounds the materialized redundant lists, in bytes
	// (default 1 GiB).
	DiskBudget int64
	// TrackerCapacity bounds the workload tracker's distinct (NEXI, k)
	// entries — memory stays O(capacity) under any query volume
	// (default 512).
	TrackerCapacity int
	// TopQueries is how many tracked queries form the workload snapshot
	// handed to the solver (default 16).
	TopQueries int
	// MinQueries is the minimum observed query count before the first
	// run fires (default 1).
	MinQueries int
	// Solver selects the index-selection algorithm (default greedy).
	Solver Solver
	// Decay is the multiplicative tracker decay applied after each run,
	// in (0, 1]; lower forgets old traffic faster (default 0.5; 1
	// disables decay).
	Decay float64
	// Pause is slept between maintenance steps (per-query measurement,
	// per-list drop) with the engine write lock released, rate-limiting
	// maintenance so it never starves foreground queries (default 0).
	Pause time.Duration
}

func (o *AutopilotOptions) setDefaults() {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.DiskBudget <= 0 {
		o.DiskBudget = 1 << 30
	}
	if o.TrackerCapacity <= 0 {
		o.TrackerCapacity = 512
	}
	if o.TopQueries <= 0 {
		o.TopQueries = 16
	}
	if o.MinQueries <= 0 {
		o.MinQueries = 1
	}
	if o.Decay <= 0 || o.Decay > 1 {
		o.Decay = 0.5
	}
}

// StartAutopilot launches the online self-management daemon on the
// engine. From then on every successful Query feeds the workload
// tracker, and a controller goroutine re-plans the materialized list set
// on each Interval tick (or after DriftQueries new queries), applying
// the plan while queries continue. The daemon stops when ctx is
// cancelled, StopAutopilot is called, or the engine is closed.
func (e *Engine) StartAutopilot(ctx context.Context, opts AutopilotOptions) error {
	opts.setDefaults()
	e.pilotMu.Lock()
	defer e.pilotMu.Unlock()
	if e.pilot.Load() != nil {
		return fmt.Errorf("trex: autopilot already running")
	}
	run := func(ctx context.Context, workload []autopilot.TrackedQuery) (*autopilot.RunReport, error) {
		return e.autopilotRun(ctx, workload, opts)
	}
	ctl := autopilot.New(autopilot.Config{
		Interval:     opts.Interval,
		DriftQueries: opts.DriftQueries,
		TopQueries:   opts.TopQueries,
		MinQueries:   opts.MinQueries,
		Decay:        opts.Decay,
	}, autopilot.NewTracker(opts.TrackerCapacity), run)
	ctx, cancel := context.WithCancel(ctx)
	e.pilotCancel = cancel
	e.pilotOpts = opts
	ctl.Start(ctx)
	e.pilot.Store(ctl)
	return nil
}

// StopAutopilot stops the daemon and waits for any in-progress planning
// run to wind down. No-op when the autopilot is not running.
func (e *Engine) StopAutopilot() {
	e.pilotMu.Lock()
	defer e.pilotMu.Unlock()
	ctl := e.pilot.Load()
	if ctl == nil {
		return
	}
	e.pilotCancel()
	ctl.Wait()
	e.pilot.Store(nil)
	e.pilotCancel = nil
}

// autopilotRun is the controller's RunFunc: it converts the workload
// snapshot to the advisor's shape and runs the incremental
// self-management cycle. Tracked queries that no longer translate (the
// summary may have changed since they were observed) are skipped, and
// materialized lists the new plan does not own are reclaimed so the
// footprint stays within budget as the workload shifts.
func (e *Engine) autopilotRun(ctx context.Context, workload []autopilot.TrackedQuery, opts AutopilotOptions) (*autopilot.RunReport, error) {
	queries := make([]WorkloadQuery, 0, len(workload))
	for _, tq := range workload {
		queries = append(queries, WorkloadQuery{NEXI: tq.NEXI, Freq: tq.Freq, K: tq.K})
	}
	rep, err := e.selfManage(ctx, queries, opts.DiskBudget, opts.Solver, selfManageConfig{
		dropUnreferenced:   true,
		skipUntranslatable: true,
		pause:              opts.Pause,
	})
	if err != nil {
		if m := e.met; m != nil {
			m.autopilotFailures.Inc()
		}
		return nil, err
	}
	if m := e.met; m != nil {
		m.autopilotRuns.Inc()
		m.autopilotDropped.Add(uint64(len(rep.DroppedLists)))
		m.autopilotKept.Set(float64(len(rep.KeptLists)))
		m.autopilotDisk.Set(float64(rep.Plan.DiskUsed))
	}
	return &autopilot.RunReport{
		Workload:   workload,
		Kept:       rep.KeptLists,
		Dropped:    rep.DroppedLists,
		DiskUsed:   rep.Plan.DiskUsed,
		DiskBudget: opts.DiskBudget,
		Saving:     rep.Plan.Saving,
		Routed:     rep.Routed,
	}, nil
}

// AutopilotWorkloadEntry is one workload-snapshot row in a status.
type AutopilotWorkloadEntry struct {
	NEXI string  `json:"nexi"`
	K    int     `json:"k"`
	Freq float64 `json:"freq"`
}

// AutopilotPlan summarizes the last applied planning run.
type AutopilotPlan struct {
	Workload     []AutopilotWorkloadEntry `json:"workload"`
	KeptLists    []string                 `json:"keptLists"`
	DroppedLists []string                 `json:"droppedLists"`
	DiskUsed     int64                    `json:"diskUsed"`
	DiskBudget   int64                    `json:"diskBudget"`
	Saving       float64                  `json:"saving"`
	// Routed is the query planner's predicted method per workload query
	// under RPL-only and ERPL-only coverage; absent when the planner is
	// disabled.
	Routed map[string]selfmanage.Routing `json:"routed,omitempty"`
}

// AutopilotStorage reports the engine's cumulative storage I/O counters,
// so an operator watching GET /autopilot can see the page traffic the
// current list configuration costs (and how a re-plan changes it).
type AutopilotStorage struct {
	PagesRead    uint64 `json:"pagesRead"`
	PagesWritten uint64 `json:"pagesWritten"`
	CacheHits    uint64 `json:"cacheHits"`
	CacheMisses  uint64 `json:"cacheMisses"`
	BytesRead    uint64 `json:"bytesRead"`
}

// AutopilotStatus is a point-in-time view of the daemon, served by the
// web API's GET /autopilot.
type AutopilotStatus struct {
	Enabled        bool             `json:"enabled"`
	Runs           uint64           `json:"runs"`
	Failures       uint64           `json:"failures"`
	LastError      string           `json:"lastError,omitempty"`
	LastRunStart   time.Time        `json:"lastRunStart,omitzero"`
	LastRunEnd     time.Time        `json:"lastRunEnd,omitzero"`
	TrackedQueries int              `json:"trackedQueries"`
	TotalObserved  uint64           `json:"totalObserved"`
	SinceLastRun   uint64           `json:"sinceLastRun"`
	DiskBudget     int64            `json:"diskBudget"`
	Interval       string           `json:"interval,omitempty"`
	Solver         string           `json:"solver,omitempty"`
	Storage        AutopilotStorage `json:"storage"`
	LastPlan       *AutopilotPlan   `json:"lastPlan,omitempty"`
}

// AutopilotStatus reports the daemon's state; Enabled is false when no
// autopilot is running.
func (e *Engine) AutopilotStatus() AutopilotStatus {
	ds := e.db.Stats()
	stor := AutopilotStorage{
		PagesRead:    ds.PagesRead,
		PagesWritten: ds.PagesWritten,
		CacheHits:    ds.CacheHits,
		CacheMisses:  ds.CacheMisses,
		BytesRead:    ds.PagesRead * storage.PageSize,
	}
	ctl := e.pilot.Load()
	if ctl == nil {
		return AutopilotStatus{Storage: stor}
	}
	e.pilotMu.Lock()
	opts := e.pilotOpts
	e.pilotMu.Unlock()
	st := ctl.Status()
	out := AutopilotStatus{
		Enabled:        true,
		Runs:           st.Runs,
		Failures:       st.Failures,
		LastError:      st.LastError,
		LastRunStart:   st.LastRunStart,
		LastRunEnd:     st.LastRunEnd,
		TrackedQueries: st.TrackedQueries,
		TotalObserved:  st.TotalObserved,
		SinceLastRun:   st.SinceLastRun,
		DiskBudget:     opts.DiskBudget,
		Interval:       opts.Interval.String(),
		Solver:         opts.Solver.String(),
		Storage:        stor,
	}
	if st.LastReport != nil {
		plan := &AutopilotPlan{
			KeptLists:    st.LastReport.Kept,
			DroppedLists: st.LastReport.Dropped,
			DiskUsed:     st.LastReport.DiskUsed,
			DiskBudget:   st.LastReport.DiskBudget,
			Saving:       st.LastReport.Saving,
			Routed:       st.LastReport.Routed,
		}
		for _, tq := range st.LastReport.Workload {
			plan.Workload = append(plan.Workload, AutopilotWorkloadEntry{NEXI: tq.NEXI, K: tq.K, Freq: tq.Freq})
		}
		out.LastPlan = plan
	}
	return out
}
