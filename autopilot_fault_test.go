package trex

// Engine-level autopilot failure paths over an instrumented disk: a
// planning run whose plan application hits an I/O fault must be recorded
// as a failure without corrupting the store or disturbing query results,
// and the next run after the fault clears must succeed. Plus
// StopAutopilot racing triggered runs (meaningful under -race).

import (
	"context"
	"sync"
	"testing"
	"time"

	"trex/internal/corpus"
	"trex/internal/faultinject"
	"trex/internal/storage"
)

// faultEngine builds an engine over a fault-injection disk.
func faultEngine(t *testing.T, docs, seed int) (*Engine, *faultinject.Disk) {
	t.Helper()
	d := faultinject.NewDisk(int64(seed))
	db, err := storage.NewDB(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := CreateOnDB(db, corpus.GenerateIEEE(docs, int64(seed)), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, d
}

func TestAutopilotRunFailsMidPlanThenRecovers(t *testing.T) {
	eng, d := faultEngine(t, 20, 7)
	q := `//article//sec[about(., ontologies case study)]`
	want, err := eng.Query(q, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}

	if err := eng.StartAutopilot(context.Background(), AutopilotOptions{
		Interval: time.Hour, // runs are driven by the test
	}); err != nil {
		t.Fatal(err)
	}
	pilot := eng.pilot.Load()
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(q, 10, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}

	// The disk dies while the run applies its plan (materializing lists
	// commits through Flush, which must hit the backend).
	d.FailWritesAfter(0)
	if _, err := pilot.RunNow(context.Background()); err == nil {
		t.Fatal("planning run succeeded on a dead disk")
	}
	st := eng.AutopilotStatus()
	if st.Failures != 1 || st.Runs != 0 {
		t.Fatalf("after failed run: %+v", st)
	}
	if st.LastError == "" {
		t.Fatal("failed run left no LastError")
	}

	// The engine must keep serving exact results off the failed run.
	got, err := eng.Query(q, 10, MethodERA)
	if err != nil {
		t.Fatalf("query after failed run: %v", err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("%d answers after failed run, want %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if got.Answers[i] != want.Answers[i] {
			t.Fatalf("answer %d drifted after failed run: %+v, want %+v", i, got.Answers[i], want.Answers[i])
		}
	}

	// Fault clears; the next run must succeed and its lists must serve.
	d.Heal()
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(q, 10, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pilot.RunNow(context.Background()); err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	st = eng.AutopilotStatus()
	if st.Runs != 1 || st.Failures != 1 {
		t.Fatalf("after recovery run: %+v", st)
	}
	got, err = eng.Query(q, 10, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Answers {
		if got.Answers[i] != want.Answers[i] {
			t.Fatalf("answer %d drifted after recovery (method %v): %+v, want %+v",
				i, got.Method, got.Answers[i], want.Answers[i])
		}
	}
}

// TestStopAutopilotRacesTriggeredRun stops the daemon while drift kicks
// from concurrent query goroutines are firing planning runs. Under
// -race this exercises Stop against Observe, the run loop, and the
// query read path all at once.
func TestStopAutopilotRacesTriggeredRun(t *testing.T) {
	eng := testEngine(t, 15, 11)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
	}
	for trial := 0; trial < 5; trial++ {
		if err := eng.StartAutopilot(context.Background(), AutopilotOptions{
			Interval:     time.Millisecond,
			DriftQueries: 1,
		}); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := eng.Query(queries[(g+i)%len(queries)], 10, MethodAuto); err != nil {
						t.Errorf("query during autopilot race: %v", err)
						return
					}
				}
			}(g)
		}
		time.Sleep(5 * time.Millisecond)
		eng.StopAutopilot()
		if st := eng.AutopilotStatus(); st.Enabled {
			t.Fatal("autopilot still enabled after Stop")
		}
		close(stop)
		wg.Wait()
		if st := eng.AutopilotStatus(); st.Failures != 0 {
			t.Fatalf("trial %d: autopilot recorded failures under race: %s", trial, st.LastError)
		}
	}
}
