package trex

import (
	"context"
	"sync"
	"testing"
	"time"
)

// builtBytes sums the catalog's recorded footprint of every materialized
// list — the quantity the autopilot's disk budget bounds.
func builtBytes(t *testing.T, eng *Engine) int64 {
	t.Helper()
	entries, err := eng.store.CatalogEntries()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	return total
}

// builtKeys returns the sorted-comparable set of materialized list keys.
func builtKeys(t *testing.T, eng *Engine) map[string]bool {
	t.Helper()
	entries, err := eng.store.CatalogEntries()
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool, len(entries))
	for _, e := range entries {
		keys[listKey(e.Kind, e.Term, e.SID)] = true
	}
	return keys
}

// TestAutopilotConvergesToOfflinePlan is the acceptance scenario: an
// engine with the autopilot enabled, fed a shifted query workload,
// converges within two controller ticks to the same kept-list set the
// offline SelfManage chooses for that workload under the same budget,
// and the materialized footprint never exceeds the budget between ticks.
func TestAutopilotConvergesToOfflinePlan(t *testing.T) {
	const docs, seed = 25, 31
	q1 := `//article//sec[about(., ontologies case study)]`
	q2 := `//article[about(., xml query evaluation)]`
	qOld := `//article//p[about(., model checking)]`
	workload := []WorkloadQuery{
		{NEXI: q1, Freq: 0.75, K: 10},
		{NEXI: q2, Freq: 0.25, K: 10},
	}

	// Offline reference: measure the full footprint, then plan under a
	// budget tight enough to force choices.
	offline := testEngine(t, docs, seed)
	full, err := offline.SelfManage(workload, 1<<40, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Plan.DiskUsed * 2 / 3
	if budget == 0 {
		t.Skip("lists too small to constrain")
	}
	ref, err := offline.SelfManage(workload, budget, SolverGreedy)
	if err != nil {
		t.Fatal(err)
	}

	// Online engine over the identical collection, ticked manually.
	eng := testEngine(t, docs, seed)
	err = eng.StartAutopilot(context.Background(), AutopilotOptions{
		Interval:        time.Hour, // ticks are driven by the test
		DiskBudget:      budget,
		TrackerCapacity: 3,
		TopQueries:      2,
		Decay:           0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	pilot := eng.pilot.Load()
	ctx := context.Background()

	// Phase 1: an old workload dominates; the autopilot tunes for it.
	for i := 0; i < 20; i++ {
		if _, err := eng.Query(qOld, 10, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pilot.RunNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got := builtBytes(t, eng); got > budget {
		t.Fatalf("after old-workload tick: %d bytes materialized > budget %d", got, budget)
	}

	// Phase 2: traffic shifts to the reference workload in its exact
	// 75/25 proportions.
	for i := 0; i < 30; i++ {
		if _, err := eng.Query(q1, 10, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := eng.Query(q2, 10, MethodAuto); err != nil {
			t.Fatal(err)
		}
	}
	var lastReport *AutopilotStatus
	for tick := 1; tick <= 2; tick++ {
		if _, err := pilot.RunNow(ctx); err != nil {
			t.Fatal(err)
		}
		if got := builtBytes(t, eng); got > budget {
			t.Fatalf("after shift tick %d: %d bytes materialized > budget %d", tick, got, budget)
		}
	}
	st := eng.AutopilotStatus()
	lastReport = &st

	// The kept-list set must equal the offline plan's for the same
	// workload and budget; everything from the old workload is gone.
	got := builtKeys(t, eng)
	if len(got) != len(ref.KeptLists) {
		t.Fatalf("converged to %d lists, offline kept %d\n got: %v\n want: %v",
			len(got), len(ref.KeptLists), got, ref.KeptLists)
	}
	for _, key := range ref.KeptLists {
		if !got[key] {
			t.Fatalf("offline keeps %q but autopilot dropped it (have %v)", key, got)
		}
	}
	if lastReport.LastPlan == nil || lastReport.Runs < 3 {
		t.Fatalf("status not recording runs: %+v", lastReport)
	}
	if lastReport.LastPlan.DiskUsed != ref.Plan.DiskUsed {
		t.Fatalf("autopilot plan used %d bytes, offline %d",
			lastReport.LastPlan.DiskUsed, ref.Plan.DiskUsed)
	}
	eng.StopAutopilot()
}

// TestAutopilotConcurrentQueriesStayCorrect is the write-coordination
// contract under fire: many goroutines hammer Engine.Query while the
// autopilot loop repeatedly measures, materializes, and drops lists.
// Every concurrent result must equal the quiesced engine's ranking. Run
// with -race.
func TestAutopilotConcurrentQueriesStayCorrect(t *testing.T) {
	eng := testEngine(t, 25, 101)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking)]`,
	}
	// Quiesced reference rankings before the autopilot starts.
	want := make(map[string]*Result)
	for _, q := range queries {
		r, err := eng.Query(q, 10, MethodERA)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = r
	}

	// A small budget keeps the plan churning: lists are materialized for
	// measurement and most are dropped again every run, so concurrent
	// queries see TA/Merge coverage appear and vanish.
	err := eng.StartAutopilot(context.Background(), AutopilotOptions{
		Interval:     5 * time.Millisecond,
		DriftQueries: 10,
		DiskBudget:   1 << 12,
		Decay:        0.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				r, err := eng.Query(q, 10, MethodAuto)
				if err != nil {
					errs <- err
					return
				}
				ref := want[q]
				if len(r.Answers) != len(ref.Answers) {
					errs <- errMismatch(q)
					return
				}
				for j := range ref.Answers {
					if r.Answers[j] != ref.Answers[j] {
						errs <- errMismatch(q)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	eng.StopAutopilot()
	st := eng.AutopilotStatus()
	if st.Enabled {
		t.Fatal("status still enabled after stop")
	}
	// The loop must have actually run while traffic flowed; verify via a
	// fresh status check before stop was impossible, so re-check counters
	// through the catalog side effect instead: a run either kept or
	// dropped lists, both visible as a consistent catalog.
	if _, err := eng.Query(queries[0], 10, MethodAuto); err != nil {
		t.Fatalf("query after autopilot stop: %v", err)
	}
}

// TestAutopilotStatusAndDoubleStart pins the lifecycle API.
func TestAutopilotStatusAndDoubleStart(t *testing.T) {
	eng := testEngine(t, 5, 7)
	if st := eng.AutopilotStatus(); st.Enabled {
		t.Fatal("enabled before start")
	}
	if err := eng.StartAutopilot(context.Background(), AutopilotOptions{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartAutopilot(context.Background(), AutopilotOptions{}); err == nil {
		t.Fatal("double start accepted")
	}
	st := eng.AutopilotStatus()
	if !st.Enabled || st.DiskBudget != 1<<30 || st.Solver != "greedy" {
		t.Fatalf("status = %+v", st)
	}
	// Queries are observed only after they succeed.
	if _, err := eng.Query(`//article[about(., xml)]`, 0, MethodAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(`//article[about(`, 10, MethodAuto); err == nil {
		t.Fatal("bad query accepted")
	}
	st = eng.AutopilotStatus()
	if st.TotalObserved != 1 {
		t.Fatalf("TotalObserved = %d, want 1 (failed queries must not be tracked)", st.TotalObserved)
	}
	// k <= 0 is tracked at the shared DefaultK.
	ws := eng.pilot.Load().Tracker().Snapshot(0)
	if len(ws) != 1 || ws[0].K != DefaultK {
		t.Fatalf("tracked workload = %+v, want k = DefaultK", ws)
	}
	eng.StopAutopilot()
	eng.StopAutopilot() // idempotent
	// Close with a previously-stopped autopilot must not hang.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsAutopilotStartsDaemon pins the Options knob: engines built
// with Options.Autopilot run the daemon without an explicit Start.
func TestOptionsAutopilotStartsDaemon(t *testing.T) {
	eng := testEngineOpts(t, 5, 7, &Options{Autopilot: &AutopilotOptions{Interval: time.Hour}})
	if st := eng.AutopilotStatus(); !st.Enabled {
		t.Fatal("Options.Autopilot did not start the daemon")
	}
}
