// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5). Each BenchmarkTable1/BenchmarkFigure* target
// corresponds to one table or figure; sub-benchmarks split methods and k
// values so `go test -bench` output forms the figure's series.
//
// Corpus scale is reduced (hundreds of documents instead of INEX's
// 17k-660k) so the suite runs in minutes; the DESIGN.md shape targets —
// who wins, where the crossovers fall — are what these benchmarks verify.
package trex_test

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"trex"
	"trex/internal/bench"
	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/selfmanage"
	"trex/internal/summary"
)

var (
	pairOnce sync.Once
	pair     *bench.EnvPair
	pairErr  error
)

// benchScale shrinks corpora under -short or the TREX_BENCH_SCALE env.
func benchScale() float64 {
	if s := os.Getenv("TREX_BENCH_SCALE"); s != "" {
		var f float64
		if _, err := fmt.Sscanf(s, "%f", &f); err == nil && f > 0 {
			return f
		}
	}
	return 0.5
}

func envPair(b *testing.B) *bench.EnvPair {
	b.Helper()
	pairOnce.Do(func() {
		pair, pairErr = bench.NewEnvPair(benchScale())
	})
	if pairErr != nil {
		b.Fatal(pairErr)
	}
	return pair
}

// BenchmarkSummarySizes regenerates the Section 2.1 statistics: node
// counts of the tag / incoming summaries with and without aliases.
func BenchmarkSummarySizes(b *testing.B) {
	p := envPair(b)
	for i := 0; i < b.N; i++ {
		rows, err := bench.SummarySizes(p.IEEE.Col)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				unit := strings.ReplaceAll(r.Summary, " ", "-") + "-nodes"
				b.ReportMetric(float64(r.Nodes), unit)
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: per-query translation sizes and
// answer counts.
func BenchmarkTable1(b *testing.B) {
	p := envPair(b)
	rows, err := bench.Table1(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run("Q"+row.ID, func(b *testing.B) {
			env := p.EnvFor(bench.QueryByID(row.ID))
			for i := 0; i < b.N; i++ {
				if _, err := env.Engine.Query(row.NEXI, 0, trex.MethodERA); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.NumSIDs), "sids")
			b.ReportMetric(float64(row.NumTerms), "terms")
			b.ReportMetric(float64(row.NumAnswers), "answers")
		})
	}
}

// benchFigure runs one paper figure: methods x k sweep for a query.
func benchFigure(b *testing.B, id string) {
	p := envPair(b)
	q := bench.QueryByID(id)
	env := p.EnvFor(q)
	if err := env.Ensure(q.NEXI); err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 10, 100, 1000} {
		for _, m := range []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodMerge} {
			name := fmt.Sprintf("%s/k=%d", m, k)
			b.Run(name, func(b *testing.B) {
				var lastCost float64
				for i := 0; i < b.N; i++ {
					res, err := env.Engine.Query(q.NEXI, k, m)
					if err != nil {
						b.Fatal(err)
					}
					lastCost = res.Stats.CostProxy()
					if m == trex.MethodTA {
						b.ReportMetric(float64(res.Stats.ITATime().Nanoseconds()), "ita-ns")
					}
				}
				b.ReportMetric(lastCost, "cost")
			})
		}
	}
}

// BenchmarkFigure4Q202 and the rest regenerate Figures 4-6, one per
// paper query.
func BenchmarkFigure4Q202(b *testing.B) { benchFigure(b, "202") }
func BenchmarkFigure4Q203(b *testing.B) { benchFigure(b, "203") }
func BenchmarkFigure5Q260(b *testing.B) { benchFigure(b, "260") }
func BenchmarkFigure5Q270(b *testing.B) { benchFigure(b, "270") }
func BenchmarkFigure6Q233(b *testing.B) { benchFigure(b, "233") }
func BenchmarkFigure6Q290(b *testing.B) { benchFigure(b, "290") }
func BenchmarkFigure6Q292(b *testing.B) { benchFigure(b, "292") }

// BenchmarkParallelQueries measures aggregate served-query throughput
// with all CPUs querying one shared engine — the web-API serving pattern
// the sharded storage read path exists for. Each method runs under
// b.RunParallel; qps is the aggregate across goroutines, and the page
// cache hit ratio over the run is reported alongside (parallel QPS only
// scales if hits stay lock-free). MethodRace doubles as a two-extra-
// goroutines-per-query stress (TA and Merge race inside each call).
func BenchmarkParallelQueries(b *testing.B) {
	col := corpus.GenerateIEEE(60, 7)
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking)]`,
	}
	for _, q := range queries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodMerge, trex.MethodRace} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			before := eng.DB().Stats()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				i := 0
				for pb.Next() {
					q := queries[(w+i)%len(queries)]
					i++
					if _, err := eng.Query(q, 10, m); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			d := eng.DB().Stats().Sub(before)
			if d.CacheHits+d.CacheMisses > 0 {
				b.ReportMetric(float64(d.CacheHits)/float64(d.CacheHits+d.CacheMisses), "hit-ratio")
			}
		})
	}
}

// BenchmarkMaterialize measures redundant-list construction (the paper's
// "TReX uses ERA for generating the RPLs and ERPLs tables").
func BenchmarkMaterialize(b *testing.B) {
	col := corpus.GenerateIEEE(100, 5)
	const q = `//article//sec[about(., ontologies case study)]`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := trex.CreateMemory(col, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.Materialize(q); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		eng.Close()
		b.StartTimer()
	}
}

// BenchmarkAdvisor measures the index-selection solvers on synthetic
// workloads (Section 4; validates the greedy/LP relationship at scale).
func BenchmarkAdvisor(b *testing.B) {
	mkWorkload := func(n int) *selfmanage.Workload {
		w := &selfmanage.Workload{}
		for i := 0; i < n; i++ {
			w.Queries = append(w.Queries, selfmanage.QuerySpec{
				ID:        fmt.Sprintf("q%d", i),
				Freq:      1.0 / float64(n),
				TimeERA:   float64(100 + i*37%900),
				TimeMerge: float64(10 + i*13%200),
				TimeTA:    float64(5 + i*29%300),
				MergeLists: []selfmanage.ListRef{
					{Key: fmt.Sprintf("e%d", i), Bytes: int64(100 + i*17%400)},
				},
				TALists: []selfmanage.ListRef{
					{Key: fmt.Sprintf("r%d", i), Bytes: int64(80 + i*23%300)},
				},
			})
		}
		return w
	}
	b.Run("greedy/n=100", func(b *testing.B) {
		w := mkWorkload(100)
		for i := 0; i < b.N; i++ {
			if _, err := selfmanage.Greedy(w, 10000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lp/n=14", func(b *testing.B) {
		w := mkWorkload(14)
		for i := 0; i < b.N; i++ {
			if _, err := selfmanage.LP(w, 2000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimal/n=10", func(b *testing.B) {
		w := mkWorkload(10)
		for i := 0; i < b.N; i++ {
			if _, err := selfmanage.Optimal(w, 2000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexBuild measures BuildBase throughput (the Section 5.1
// loading step).
func BenchmarkIndexBuild(b *testing.B) {
	col := corpus.GenerateIEEE(50, 9)
	var bytes int64
	for _, d := range col.Docs {
		bytes += int64(len(d.Data))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := trex.CreateMemory(col, nil)
		if err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
}

// BenchmarkSummaryBuild measures structural summary construction alone.
func BenchmarkSummaryBuild(b *testing.B) {
	col := corpus.GenerateIEEE(100, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := summary.Build(col, summary.Options{
			Kind: summary.KindIncoming, Aliases: col.Aliases,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
