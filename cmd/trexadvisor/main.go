// Command trexadvisor runs the self-managing index selection over a
// workload file, materializing the chosen RPLs/ERPLs and reclaiming the
// rest (Section 4 of the paper).
//
// The workload file has one query per line:
//
//	<freq> <k> <nexi query>
//	# comments and blank lines are ignored
//
// Usage:
//
//	trexadvisor -db ./ieee.trexdb -workload queries.txt -disk 10000000 -solver greedy
//
// With -watch the advisor keeps running: it re-reads the workload file
// and re-plans every -interval, so edits to the file (a shifted
// workload) are picked up on the next cycle. Stop with Ctrl-C.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trex"
)

func parseWorkload(path string) ([]trex.WorkloadQuery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []trex.WorkloadQuery
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want '<freq> <k> <query>'", path, lineNo)
		}
		freq, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad frequency: %w", path, lineNo, err)
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad k: %w", path, lineNo, err)
		}
		out = append(out, trex.WorkloadQuery{NEXI: strings.TrimSpace(parts[2]), Freq: freq, K: k})
	}
	return out, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexadvisor: ")
	dbPath := flag.String("db", "", "TReX database file (required)")
	workloadPath := flag.String("workload", "", "workload file (required)")
	disk := flag.Int64("disk", 1<<30, "disk budget in bytes for redundant lists")
	solver := flag.String("solver", "greedy", "solver: greedy, lp, optimal")
	watch := flag.Bool("watch", false, "keep running: re-read the workload file and re-plan every -interval")
	interval := flag.Duration("interval", 30*time.Second, "re-plan interval with -watch")
	flag.Parse()
	if *dbPath == "" || *workloadPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var sv trex.Solver
	switch *solver {
	case "greedy":
		sv = trex.SolverGreedy
	case "lp":
		sv = trex.SolverLP
	case "optimal":
		sv = trex.SolverOptimal
	default:
		log.Fatalf("unknown solver %q", *solver)
	}
	eng, err := trex.Open(*dbPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if !*watch {
		if err := planOnce(eng, *workloadPath, *disk, sv); err != nil {
			log.Fatal(err)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for cycle := 1; ; cycle++ {
		fmt.Printf("--- watch cycle %d (%s) ---\n", cycle, time.Now().Format(time.RFC3339))
		if err := planOnce(eng, *workloadPath, *disk, sv); err != nil {
			// A transient problem (e.g. the workload file mid-edit)
			// should not kill the watcher.
			log.Printf("cycle %d: %v", cycle, err)
		}
		select {
		case <-ctx.Done():
			fmt.Println("watch stopped")
			return
		case <-time.After(*interval):
		}
	}
}

// planOnce re-reads the workload file, runs the self-management cycle,
// and prints the plan.
func planOnce(eng *trex.Engine, workloadPath string, disk int64, sv trex.Solver) error {
	workload, err := parseWorkload(workloadPath)
	if err != nil {
		return err
	}
	report, err := eng.SelfManage(workload, disk, sv)
	if err != nil {
		return err
	}
	fmt.Printf("solver=%s budget=%d bytes\n", sv, disk)
	fmt.Printf("plan: saving=%.1f (cost units), disk used=%d bytes\n",
		report.Plan.Saving, report.Plan.DiskUsed)
	for i, q := range workload {
		fmt.Printf("  %-6s f=%.2f k=%-5d %s\n",
			report.Plan.Assignments[i], q.Freq, q.K, q.NEXI)
	}
	fmt.Printf("kept %d lists, dropped %d lists (%d entries reclaimed)\n",
		len(report.KeptLists), len(report.DroppedLists), report.DroppedEntries)
	return nil
}
