package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "workload.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseWorkload(t *testing.T) {
	path := writeTemp(t, `
# comment line
0.6 10 //article[about(., xml)]//sec[about(., retrieval)]

0.4 100 //sec[about(., code signing)]
`)
	w, err := parseWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("entries = %d, want 2", len(w))
	}
	if w[0].Freq != 0.6 || w[0].K != 10 {
		t.Fatalf("entry 0 = %+v", w[0])
	}
	if w[0].NEXI != `//article[about(., xml)]//sec[about(., retrieval)]` {
		t.Fatalf("entry 0 query = %q", w[0].NEXI)
	}
	if w[1].Freq != 0.4 || w[1].K != 100 {
		t.Fatalf("entry 1 = %+v", w[1])
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []string{
		`0.6 //missing-k[about(., x)]`,
		`notanumber 10 //a[about(., x)]`,
		`0.5 notanumber //a[about(., x)]`,
	}
	for _, c := range cases {
		path := writeTemp(t, c)
		if _, err := parseWorkload(path); err == nil {
			t.Errorf("parseWorkload(%q) succeeded", c)
		}
	}
	if _, err := parseWorkload(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
