// Command trexbench regenerates the paper's experimental tables and
// figures over the synthetic collections.
//
// Experiments (-exp):
//
//	summaries  summary node counts (Section 2.1)
//	sizes      base index sizes (Section 5.1)
//	table1     the seven queries' translations and answer counts (Table 1)
//	fig4       queries 202 and 203 (Figure 4)
//	fig5       queries 260 and 270 (Figure 5)
//	fig6       queries 233, 290 and 292 (Figure 6)
//	depth      TA list-read depth (Section 5.2's observation)
//	advisor    greedy vs LP index selection across disk budgets (Section 4)
//	drift      workload drift: re-planning recovers efficiency (Section 4)
//	winners    which method wins per query at small and large k
//	effectiveness  precision@10 vs planted topics (extension)
//	pr3        block-encoded vs row-per-entry list storage (see -pr3out)
//	pr5        telemetry overhead: traces/metrics on vs off (see -pr5out)
//	pr6        mmap'd segment read path vs the pager (see -pr6out)
//	pr7        front door under load: admission + result cache (see -pr7out)
//	pr8        telemetry-driven query planner: auto vs race vs fixed (see -pr8out)
//	pr9        distributed serving tier: sharded scatter-gather vs single engine (see -pr9out)
//	pr10       streaming JSON ingest vs live queries: throughput, p99, freshness lag (see -pr10out)
//	all        everything above
//
// Usage:
//
//	trexbench -exp all -scale 1.0
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"trex/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexbench: ")
	exp := flag.String("exp", "all", "experiment to run (see doc comment)")
	scale := flag.Float64("scale", 1.0, "corpus scale factor (1.0 = 400 IEEE / 900 wiki docs)")
	csvDir := flag.String("csv", "", "also write figure series as CSV files into this directory")
	pr3Out := flag.String("pr3out", "", "write the pr3 storage comparison as JSON to this file")
	pr5Out := flag.String("pr5out", "", "write the pr5 telemetry overhead report as JSON to this file")
	pr6Out := flag.String("pr6out", "", "write the pr6 segment read-path report as JSON to this file")
	pr7Out := flag.String("pr7out", "", "write the pr7 front-door load report as JSON to this file")
	pr8Out := flag.String("pr8out", "", "write the pr8 query-planner report as JSON to this file")
	pr9Out := flag.String("pr9out", "", "write the pr9 cluster serving report as JSON to this file")
	pr10Out := flag.String("pr10out", "", "write the pr10 streaming-ingest report as JSON to this file")
	flag.Parse()
	csvOut = *csvDir
	if csvOut != "" {
		if err := os.MkdirAll(csvOut, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	fmt.Printf("# TReX experiment suite — exp=%s scale=%.2f\n", *exp, *scale)
	pair, err := bench.NewEnvPair(*scale)
	if err != nil {
		log.Fatal(err)
	}
	defer pair.Close()
	fmt.Printf("# built ieee (%d docs) and wiki (%d docs) environments in %v\n\n",
		pair.IEEE.Docs, pair.Wiki.Docs, time.Since(start).Round(time.Millisecond))

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ok := false

	if run("summaries") {
		ok = true
		summaries(pair)
	}
	if run("sizes") {
		ok = true
		sizes(pair)
	}
	if run("table1") {
		ok = true
		table1(pair)
	}
	if run("fig4") {
		ok = true
		figure(pair, "Figure 4 (left): Query 202", "202")
		figure(pair, "Figure 4 (right): Query 203", "203")
	}
	if run("fig5") {
		ok = true
		figure(pair, "Figure 5 (left): Query 260", "260")
		figure(pair, "Figure 5 (right): Query 270", "270")
	}
	if run("fig6") {
		ok = true
		figure(pair, "Figure 6 (left): Query 233", "233")
		figure(pair, "Figure 6 (center): Query 290", "290")
		figure(pair, "Figure 6 (right): Query 292", "292")
	}
	if run("depth") {
		ok = true
		depth(pair)
	}
	if run("advisor") {
		ok = true
		advisor(pair)
	}
	if run("drift") {
		ok = true
		drift(pair)
	}
	if run("winners") {
		ok = true
		winners(pair)
	}
	if run("effectiveness") {
		ok = true
		effectiveness(pair)
	}
	if run("pr3") {
		ok = true
		pr3(*scale, *pr3Out)
	}
	if run("pr5") {
		ok = true
		pr5(*scale, *pr5Out)
	}
	if run("pr6") {
		ok = true
		pr6(*scale, *pr6Out)
	}
	if run("pr7") {
		ok = true
		pr7(*scale, *pr7Out)
	}
	if run("pr8") {
		ok = true
		pr8(*scale, *pr8Out)
	}
	if run("pr9") {
		ok = true
		pr9(*scale, *pr9Out)
	}
	if run("pr10") {
		ok = true
		pr10(*scale, *pr10Out)
	}
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	fmt.Printf("# total time: %v\n", time.Since(start).Round(time.Millisecond))
}

func summaries(pair *bench.EnvPair) {
	fmt.Println("## Summary sizes (Section 2.1, IEEE collection)")
	rows, err := bench.SummarySizes(pair.IEEE.Col)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %10s %12s %6s\n", "summary", "nodes", "paper-nodes", "safe")
	for _, r := range rows {
		fmt.Printf("%-16s %10d %12d %6v\n", r.Summary, r.Nodes, r.PaperNodes, r.Safe)
	}
	fmt.Println()
}

func sizes(pair *bench.EnvPair) {
	fmt.Println("## Base index sizes (Section 5.1)")
	rows, err := bench.Sizes(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %8s %12s %14s %15s\n", "corpus", "docs", "corpus-MB", "Elements-MB", "PostingLists-MB")
	for _, r := range rows {
		fmt.Printf("%-6s %8d %12.2f %14.2f %15.2f\n",
			r.Collection, r.Docs, mb(r.CorpusBytes), mb(r.ElementsBytes), mb(r.PostingsBytes))
	}
	fmt.Println("# paper: ieee corpus 760 MB -> Elements 1.52 GB, PostingLists 8.05 GB")
	fmt.Println("# paper: wiki corpus 4.6 GB -> Elements 3.91 GB, PostingLists 48.1 GB")
	fmt.Println()
}

func mb(b int64) float64 { return float64(b) / 1e6 }

func table1(pair *bench.EnvPair) {
	fmt.Println("## Table 1: queries, translation sizes, answer counts")
	rows, err := bench.Table1(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %-6s %6s %7s %9s | %6s %7s %9s\n",
		"id", "corpus", "#sids", "#terms", "#answers", "paper", "paper", "paper")
	for _, r := range rows {
		fmt.Printf("%-4s %-6s %6d %7d %9d | %6d %7d %9d\n",
			r.ID, r.Collection, r.NumSIDs, r.NumTerms, r.NumAnswers,
			r.PaperSIDs, r.PaperTerms, r.PaperAnswers)
	}
	fmt.Println()
}

func figure(pair *bench.EnvPair, title, id string) {
	q := bench.QueryByID(id)
	fmt.Printf("## %s\n", title)
	fmt.Printf("# %s\n# regime (paper): %s\n", q.NEXI, q.Regime)
	points, err := bench.Figure(pair, id, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %11s %11s %11s %11s %11s | %10s %10s %10s %10s %6s %6s\n",
		"k", "ERA", "TA", "ITA", "NRA", "Merge",
		"ERA-cost", "TA-cost", "NRA-cost", "Mrg-cost", "taDep", "nraDep")
	for _, p := range points {
		fmt.Printf("%8d %11s %11s %11s %11s %11s | %10.0f %10.0f %10.0f %10.0f %6.3f %6.3f\n",
			p.K, fmtDur(p.ERA), fmtDur(p.TA), fmtDur(p.ITA), fmtDur(p.NRA), fmtDur(p.Merge),
			p.ERACost, p.TACost, p.NRACost, p.MergeCost, p.DepthFraction, p.NRADepth)
	}
	writeFigureCSV(id, points)
	fmt.Println()
}

func fmtDur(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

// csvOut, when non-empty, receives one CSV per figure for plotting.
var csvOut string

func writeFigureCSV(id string, points []bench.FigurePoint) {
	if csvOut == "" {
		return
	}
	f, err := os.Create(fmt.Sprintf("%s/figure-q%s.csv", csvOut, id))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	_ = w.Write([]string{"k", "era_ns", "ta_ns", "ita_ns", "nra_ns", "merge_ns",
		"era_cost", "ta_cost", "nra_cost", "merge_cost", "ta_depth", "nra_depth"})
	for _, p := range points {
		_ = w.Write([]string{
			strconv.Itoa(p.K),
			strconv.FormatInt(p.ERA.Nanoseconds(), 10),
			strconv.FormatInt(p.TA.Nanoseconds(), 10),
			strconv.FormatInt(p.ITA.Nanoseconds(), 10),
			strconv.FormatInt(p.NRA.Nanoseconds(), 10),
			strconv.FormatInt(p.Merge.Nanoseconds(), 10),
			strconv.FormatFloat(p.ERACost, 'f', 0, 64),
			strconv.FormatFloat(p.TACost, 'f', 0, 64),
			strconv.FormatFloat(p.NRACost, 'f', 0, 64),
			strconv.FormatFloat(p.MergeCost, 'f', 0, 64),
			strconv.FormatFloat(p.DepthFraction, 'f', 4, 64),
			strconv.FormatFloat(p.NRADepth, 'f', 4, 64),
		})
	}
}

func depth(pair *bench.EnvPair) {
	fmt.Println("## TA read depth (Section 5.2: full lists read for modest k)")
	rows, err := bench.Depth(pair, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s", "id")
	printed := map[string]bool{}
	var ids []string
	ks := map[int]bool{}
	for _, r := range rows {
		if !printed[r.ID] {
			printed[r.ID] = true
			ids = append(ids, r.ID)
		}
		ks[r.K] = true
	}
	var kList []int
	for k := range ks {
		kList = append(kList, k)
	}
	// small fixed sweep, keep input order from bench.Depth
	kList = []int{1, 10, 50, 1000}
	for _, k := range kList {
		fmt.Printf(" %8s", fmt.Sprintf("k=%d", k))
	}
	fmt.Println()
	for _, id := range ids {
		fmt.Printf("%-4s", id)
		for _, k := range kList {
			for _, r := range rows {
				if r.ID == id && r.K == k {
					fmt.Printf(" %8.3f", r.DepthFraction)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

func advisor(pair *bench.EnvPair) {
	fmt.Println("## Self-managing index selection (Section 4): greedy vs LP")
	rows, err := bench.Advisor(pair, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %14s %14s %14s %8s\n", "budget", "greedy-saving", "lp-saving", "lp/greedy", "<=2?")
	for _, r := range rows {
		status := "ok"
		if r.Ratio > 2 {
			status = "FAIL"
		}
		fmt.Printf("%7.0f%% %14.0f %14.0f %14.3f %8s\n",
			r.BudgetFraction*100, r.GreedySaving, r.LPSaving, r.Ratio, status)
	}
	fmt.Println()
	bench.PrintTheorem42(os.Stdout, rows)
	fmt.Println()
}

func drift(pair *bench.EnvPair) {
	fmt.Println("## Workload drift: re-planning recovers efficiency (Section 4)")
	rows, err := bench.Drift(pair, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %14s %14s %12s\n", "phase", "stale-plan", "re-planned", "improvement")
	for _, r := range rows {
		fmt.Printf("%-22s %14.0f %14.0f %11.2fx\n",
			r.Phase, r.CostStale, r.CostReplanned, r.Improvement)
	}
	fmt.Println()
}

func winners(pair *bench.EnvPair) {
	fmt.Println("## Method winners per query (no single strategy dominates)")
	rows, err := bench.Winners(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %12s %12s %20s %10s\n", "id", "k=1 winner", "k=5000 winner", "ERA beaten by", "crossover")
	for _, r := range rows {
		fmt.Printf("%-4s %12s %12s %20s %10v\n",
			r.ID, r.SmallKWinner, r.LargeKWinner, strings.Join(r.ERABeatenBy, "+"), r.CrossoverPresent)
	}
	fmt.Println()
}

func pr3(scale float64, outPath string) {
	fmt.Println("## Block-encoded list storage vs row-per-entry (PR 3)")
	rep, err := bench.PR3(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %14s %14s %10s %10s\n", "layout", "RPL-bytes", "ERPL-bytes", "RPL-rows", "ERPL-rows")
	fmt.Printf("%-8s %14d %14d %10d %10d\n", "v1",
		rep.V1.RPLPayloadBytes, rep.V1.ERPLPayloadBytes, rep.V1.RPLRows, rep.V1.ERPLRows)
	fmt.Printf("%-8s %14d %14d %10d %10d\n", "v2",
		rep.V2.RPLPayloadBytes, rep.V2.ERPLPayloadBytes, rep.V2.RPLRows, rep.V2.ERPLRows)
	fmt.Printf("combined payload reduction: %.1f%%\n", rep.Reduction*100)
	fmt.Printf("%-4s %-6s | %10s %10s %10s | %10s %10s %10s\n",
		"id", "method", "v1-ns", "v2-ns", "speedup", "v1-pages", "v2-pages", "v2-steps")
	for _, q := range rep.Queries {
		for _, m := range []string{"ta", "merge", "era"} {
			a, b := q.V1[m], q.V2[m]
			sp := 0.0
			if b.NsOp > 0 {
				sp = float64(a.NsOp) / float64(b.NsOp)
			}
			fmt.Printf("%-4s %-6s | %10d %10d %9.2fx | %10d %10d %10d\n",
				q.ID, m, a.NsOp, b.NsOp, sp, a.PageReads, b.PageReads, b.CursorSteps)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func pr5(scale float64, outPath string) {
	fmt.Println("## Telemetry overhead: traces + metrics + slow log on vs off (PR 5)")
	rep, err := bench.PR5(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %-6s | %10s %10s %9s | %8s %8s %7s\n",
		"id", "method", "off-ns", "on-ns", "overhead", "off-alloc", "on-alloc", "delta")
	for _, q := range rep.Queries {
		fmt.Printf("%-4s %-6s | %10d %10d %8.2f%% | %8d %8d %7d\n",
			q.ID, q.Enabled.Method, q.Disabled.NsOp, q.Enabled.NsOp, q.OverheadPct,
			q.Disabled.AllocsOp, q.Enabled.AllocsOp, q.AllocDelta)
	}
	status := "ok"
	if rep.MaxAllocDelta > 2 {
		status = "FAIL"
	}
	fmt.Printf("max alloc delta: %d (budget 2: trace + span slice) %s\n", rep.MaxAllocDelta, status)
	fmt.Printf("mean wall overhead: %.2f%%\n", rep.MeanOverheadPct)
	fmt.Printf("scrape: %d families, %d exposition bytes, %d ns/op, %d allocs/op\n",
		rep.Scrape.Families, rep.Scrape.ExpositionBytes, rep.Scrape.NsOp, rep.Scrape.AllocsOp)
	fmt.Printf("slow log recorded %d/%d queries at 1ns threshold\n", rep.SlowLogRecorded, len(rep.Queries))
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func pr6(scale float64, outPath string) {
	fmt.Println("## Immutable mmap'd segment read path vs the pager (PR 6)")
	rep, err := bench.PR6(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cursor-scan (%d rows):  pager %10d ns (%.1f allocs)   segment %10d ns (%.1f allocs)   %.2fx\n",
		rep.CursorScan.Rows, rep.CursorScan.Pager.NsOp, rep.CursorScan.Pager.AllocsOp,
		rep.CursorScan.Segment.NsOp, rep.CursorScan.Segment.AllocsOp, rep.CursorScan.Speedup)
	fmt.Printf("point-get   (%d keys):  pager %10d ns (%.1f allocs)   segment %10d ns (%.1f allocs)   %.2fx\n",
		rep.PointGet.Probes, rep.PointGet.Pager.NsOp, rep.PointGet.Pager.AllocsOp,
		rep.PointGet.Segment.NsOp, rep.PointGet.Segment.AllocsOp, rep.PointGet.Speedup)
	raStatus := "ok"
	if rep.ReaderAllocs.Get != 0 || rep.ReaderAllocs.Seek != 0 || rep.ReaderAllocs.Range != 0 {
		raStatus = "FAIL"
	}
	fmt.Printf("reader allocs/op: get=%.1f seek=%.1f range=%.1f (budget 0) %s\n",
		rep.ReaderAllocs.Get, rep.ReaderAllocs.Seek, rep.ReaderAllocs.Range, raStatus)
	fmt.Printf("%-4s %-6s | %10s %10s %9s | %9s %9s | %12s %9s\n",
		"id", "method", "pager-ns", "seg-ns", "speedup", "pg-alloc", "seg-alloc", "seg-bytes", "seg-rows")
	for _, q := range rep.Queries {
		for _, m := range []string{"ta", "merge"} {
			a, b := q.Pager[m], q.Segment[m]
			sp := 0.0
			if b.NsOp > 0 {
				sp = float64(a.NsOp) / float64(b.NsOp)
			}
			fmt.Printf("%-4s %-6s | %10d %10d %8.2fx | %9.0f %9.0f | %12d %9d\n",
				q.ID, m, a.NsOp, b.NsOp, sp, a.AllocsOp, b.AllocsOp, b.BytesRead, b.SegmentRows)
		}
	}
	fmt.Printf("mean TA speedup (pager/segment): %.2fx\n", rep.TASpeedupMean)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func pr7(scale float64, outPath string) {
	fmt.Println("## Front door under load: admission + result cache (PR 7)")
	rep, err := bench.PR7(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial capacity: %.0f qps (uncached, single-threaded replay)\n", rep.SerialCapacityQPS)
	for _, v := range rep.Variants {
		fmt.Printf("%-16s (inflight=%d queue=%d cache=%d)\n",
			v.Name, v.MaxInflight, v.QueueDepth, v.CacheEntries)
		fmt.Printf("  %10s %10s %9s %9s | %5s %5s %5s | %8s\n",
			"offered", "achieved", "p50-ms", "p99-ms", "ok", "shed", "503", "hit-rate")
		for _, p := range v.Points {
			fmt.Printf("  %10.0f %10.0f %9.2f %9.2f | %5d %5d %5d | %7.0f%%\n",
				p.OfferedQPS, p.AchievedQPS, p.P50MS, p.P99MS,
				p.OK, p.Shed, p.QueueTimeouts, p.CacheHitRate*100)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func pr9(scale float64, outPath string) {
	fmt.Println("## Distributed serving tier: sharded scatter-gather vs single engine (PR 9)")
	rep, err := bench.PR9(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial capacity: %.0f qps (uncached, single-threaded TA replay); gomaxprocs=%d numcpu=%d\n",
		rep.SerialCapacityQPS, rep.GOMAXPROCS, rep.NumCPU)
	if rep.SingleCoreCaveat != "" {
		fmt.Printf("caveat: %s\n", rep.SingleCoreCaveat)
	}
	for _, v := range rep.Variants {
		label := v.Name
		if v.Shards > 0 {
			label = fmt.Sprintf("%s (N=%d R=%d)", v.Name, v.Shards, v.Replicas)
		}
		fmt.Printf("%-20s\n", label)
		fmt.Printf("  %10s %10s %9s %9s | %5s %5s %5s | %10s %7s %7s\n",
			"offered", "achieved", "p50-ms", "p99-ms", "ok", "shed", "503", "pages", "early", "fetch")
		for _, p := range v.Points {
			fmt.Printf("  %10.0f %10.0f %9.2f %9.2f | %5d %5d %5d | %10d %7d %7d\n",
				p.OfferedQPS, p.AchievedQPS, p.P50MS, p.P99MS,
				p.OK, p.Shed, p.QueueTimeouts, p.PageReads, p.EarlyStops, p.Fetches)
		}
	}
	fmt.Printf("4-shard ok-QPS over single engine: %.2fx\n", rep.SpeedupAt4Shards)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func pr10(scale float64, outPath string) {
	fmt.Println("## Streaming JSON ingest vs live queries (PR 10)")
	rep, err := bench.PR10(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d json docs (%d initial + %d streamed); %d readers; quiet query p50/p99 = %.2f/%.2f ms\n",
		rep.Corpus.Docs, rep.InitialDocs, rep.StreamDocs, rep.Readers,
		rep.BaselineQueryP50MS, rep.BaselineQueryP99MS)
	fmt.Printf("%-6s %11s %8s %10s %10s | %9s %9s %9s %9s | %8s %9s %9s\n",
		"batch", "docs/s", "commits", "cmt-p50", "cmt-p99",
		"lag-p50", "lag-p90", "lag-p99", "lag-max", "queries", "q-p50", "q-p99")
	for _, v := range rep.Variants {
		fmt.Printf("%-6d %11.1f %8d %10.2f %10.2f | %9.2f %9.2f %9.2f %9.2f | %8d %9.2f %9.2f\n",
			v.BatchDocs, v.IngestDocsPerSec, v.Commits, v.CommitP50MS, v.CommitP99MS,
			v.FreshnessLag.P50MS, v.FreshnessLag.P90MS, v.FreshnessLag.P99MS, v.FreshnessLag.MaxMS,
			v.Queries, v.QueryP50MS, v.QueryP99MS)
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func pr8(scale float64, outPath string) {
	fmt.Println("## Telemetry-driven query planner: auto vs race vs fixed (PR 8)")
	rep, err := bench.PR8(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %10s %10s %12s %14s  %s\n",
		"policy", "mean-ms", "p99-ms", "page-reads", "bytes-read", "executed-mix")
	for _, v := range rep.Variants {
		var mix []string
		for _, m := range []string{"era", "ta", "nra", "merge"} {
			if n := v.Methods[m]; n > 0 {
				mix = append(mix, fmt.Sprintf("%s:%d", m, n))
			}
		}
		fmt.Printf("%-6s %10.3f %10.3f %12d %14d  %s\n",
			v.Name, v.MeanWallMS, v.P99WallMS, v.PageReads, v.BytesRead, strings.Join(mix, " "))
	}
	fmt.Printf("%-4s %5s | %-6s %9s | %-6s %9s %7s\n",
		"id", "reqs", "best", "best-ms", "auto->", "auto-ms", "ratio")
	for _, q := range rep.PerQuery {
		fmt.Printf("%-4s %5d | %-6s %9.3f | %-6s %9.3f %6.2fx\n",
			q.ID, q.Requests, q.BestFixed, q.BestFixedMS, q.AutoRouted, q.AutoMeanMS, q.AutoOverBestX)
	}
	autoStatus := "ok"
	if rep.AutoOverBestFixed > 1.05 {
		autoStatus = "FAIL"
	}
	raceStatus := "ok"
	if rep.RaceOverAutoPageReads <= 1 {
		raceStatus = "FAIL"
	}
	fmt.Printf("auto over per-query best fixed (mean wall): %.3fx (budget 1.05) %s\n",
		rep.AutoOverBestFixed, autoStatus)
	fmt.Printf("race over auto page reads: %.2fx (must be > 1) %s\n",
		rep.RaceOverAutoPageReads, raceStatus)
	fmt.Printf("shadow regret: %d/%d mispredicted (%.1f%%), %d errors\n",
		rep.Shadow.Mispredictions, rep.Shadow.Samples, rep.Shadow.RegretRate*100, rep.Shadow.Errors)
	fmt.Printf("planner model: %d observations across %d calibrated buckets\n",
		rep.PlannerObservations, rep.CalibratedBuckets)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", outPath)
	}
	fmt.Println()
}

func effectiveness(pair *bench.EnvPair) {
	fmt.Println("## Effectiveness (extension): precision@10 vs planted ground truth")
	rows, err := bench.Effectiveness(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %-14s %8s %10s\n", "id", "topic", "P@10", "random")
	for _, r := range rows {
		fmt.Printf("%-4s %-14s %8.2f %10.2f\n", r.ID, r.Topic, r.PrecisionAt10, r.RandomBaseline)
	}
	fmt.Println()
}
