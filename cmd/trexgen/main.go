// Command trexgen generates a synthetic collection (IEEE-journal or
// Wikipedia style XML, or API-log style JSON) into a directory, for use
// with trexload.
//
// Usage:
//
//	trexgen -style ieee -docs 400 -seed 1 -out ./corpus-ieee
//	trexgen -style json -docs 400 -seed 1 -out ./corpus-events
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"trex/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexgen: ")
	style := flag.String("style", "ieee", "collection style: ieee, wiki, or json")
	docs := flag.Int("docs", 200, "number of documents to generate")
	seed := flag.Int64("seed", 1, "generation seed (same seed = same corpus)")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var col *corpus.Collection
	switch *style {
	case "ieee":
		col = corpus.GenerateIEEE(*docs, *seed)
	case "wiki":
		col = corpus.GenerateWiki(*docs, *seed)
	case "json":
		col = corpus.GenerateJSON(*docs, *seed)
	default:
		log.Fatalf("unknown style %q (want ieee, wiki, or json)", *style)
	}
	if err := corpus.WriteDir(col, *out); err != nil {
		log.Fatal(err)
	}
	var bytes int64
	for _, d := range col.Docs {
		bytes += int64(len(d.Data))
	}
	fmt.Printf("wrote %d %s documents (%.1f MB) to %s\n",
		len(col.Docs), *style, float64(bytes)/1e6, *out)
}
