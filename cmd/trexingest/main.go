// Command trexingest streams documents into a TReX collection while it
// keeps serving queries. Input is one document per line (JSON objects
// for a JSON corpus, single-line XML for an XML corpus), from stdin or
// a file; documents are staged as they arrive and committed in batches,
// so a malformed document rejects only its batch and nothing partial
// ever lands.
//
// Two modes:
//
//	trexingest -db ./events.trexdb -in docs.ndjson -batch 100
//	    opens the database directly (exclusive) and ingests locally;
//
//	trexingest -url http://localhost:8080 -in docs.ndjson -batch 100
//	    streams batches to a running trexserve -writes instance over
//	    POST /ingest — the server keeps answering queries throughout,
//	    with freshness lag visible at /metrics (trex_ingest_*).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"trex"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexingest: ")
	dbPath := flag.String("db", "", "TReX database file (direct mode)")
	url := flag.String("url", "", "base URL of a trexserve -writes instance (remote mode)")
	in := flag.String("in", "-", "input file, one document per line (- = stdin)")
	batch := flag.Int("batch", 100, "documents per commit")
	interval := flag.Duration("interval", 0, "pause between commits (throttle, 0 = none)")
	flag.Parse()
	if (*dbPath == "") == (*url == "") {
		log.Fatal("exactly one of -db or -url is required")
	}
	if *batch < 1 {
		*batch = 1
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	var commit func(docs [][]byte) error
	if *dbPath != "" {
		eng, err := trex.Open(*dbPath, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		ing := eng.NewIngestor()
		commit = func(docs [][]byte) error {
			for _, d := range docs {
				if err := ing.Add(d); err != nil {
					return err
				}
			}
			st, err := ing.Commit()
			if err != nil {
				return err
			}
			log.Printf("committed %d docs (%d elements, %d new sids)", st.Docs, st.Elements, st.NewSIDs)
			return nil
		}
	} else {
		commit = func(docs [][]byte) error { return postBatch(*url, docs) }
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var pending [][]byte
	total := 0
	start := time.Now()
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := commit(pending); err != nil {
			return err
		}
		total += len(pending)
		pending = pending[:0]
		if *interval > 0 {
			time.Sleep(*interval)
		}
		return nil
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		pending = append(pending, append([]byte(nil), line...))
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested %d documents in %v (%.1f docs/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
}

// postBatch streams one batch to a server's /ingest endpoint.
func postBatch(base string, docs [][]byte) error {
	var body bytes.Buffer
	for _, d := range docs {
		body.Write(d)
		body.WriteByte('\n')
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var st struct {
		Docs     int `json:"docs"`
		Elements int `json:"elements"`
		NewSIDs  int `json:"newSids"`
	}
	if err := json.Unmarshal(data, &st); err == nil {
		log.Printf("committed %d docs (%d elements, %d new sids)", st.Docs, st.Elements, st.NewSIDs)
	}
	return nil
}
