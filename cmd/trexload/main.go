// Command trexload builds a TReX database (structural summary, Elements
// and PostingLists tables) from a corpus directory produced by trexgen.
//
// Usage:
//
//	trexload -corpus ./corpus-ieee -db ./ieee.trexdb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"trex"
	"trex/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexload: ")
	corpusDir := flag.String("corpus", "", "corpus directory from trexgen (required)")
	dbPath := flag.String("db", "", "output database file (required)")
	storeDocs := flag.Bool("docs", false, "also store raw documents in the database")
	flag.Parse()
	if *corpusDir == "" || *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	col, err := corpus.LoadDir(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	eng, err := trex.Create(*dbPath, col, &trex.Options{StoreDocuments: *storeDocs})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	st, err := eng.Store().CollectionStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d docs, %d elements, summary %d nodes in %v\n",
		st.NumDocs, st.NumElements, eng.Summary().NumNodes(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("database: %s (%d pages, %.1f MB)\n",
		*dbPath, eng.DB().PageCount(), float64(eng.DB().PageCount())*4096/1e6)
}
