// Command trexquery evaluates a NEXI query against a TReX database.
//
// Usage:
//
//	trexquery -db ./ieee.trexdb -k 10 '//article[about(., xml)]//sec[about(., retrieval)]'
//	trexquery -db ./ieee.trexdb -method merge -materialize -k 10 '...'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"trex"
	"trex/internal/index"
	"trex/internal/jsoncorpus"
	"trex/internal/nexi"
)

// runTopics evaluates every parseable topic from an INEX-style topics file.
func runTopics(eng *trex.Engine, path string, k int) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	topics, err := nexi.ParseTopics(data)
	if err != nil {
		log.Fatal(err)
	}
	for _, tp := range topics {
		if tp.Err != nil {
			fmt.Printf("topic %s: SKIP (%v)\n", tp.ID, tp.Err)
			continue
		}
		res, err := eng.Query(tp.Raw, k, trex.MethodAuto)
		if err != nil {
			fmt.Printf("topic %s: ERROR (%v)\n", tp.ID, err)
			continue
		}
		fmt.Printf("topic %-5s method=%-5s sids=%-4d terms=%-3d answers=%d\n",
			tp.ID, res.Method, res.Translation.NumSIDs(), res.Translation.NumTerms(), res.TotalAnswers)
		for i, a := range res.Answers {
			fmt.Printf("  %2d. %8.4f doc=%-5d %s\n", i+1, a.Score, a.Doc, a.Path)
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexquery: ")
	dbPath := flag.String("db", "", "TReX database file (required)")
	k := flag.Int("k", 10, "number of answers (0 = all)")
	method := flag.String("method", "auto", "retrieval method: auto, era, ta, nra, merge, race")
	materialize := flag.Bool("materialize", false, "build the query's RPLs and ERPLs first")
	showStats := flag.Bool("stats", false, "print retrieval statistics")
	explain := flag.Bool("explain", false, "print the evaluation plan instead of running the query")
	topicsPath := flag.String("topics", "", "run every castitle from an INEX-style topics file instead of a single query")
	lang := flag.String("lang", "nexi", "query language: nexi, or jsonpath (JSON corpora; translated onto NEXI)")
	flag.Parse()
	if *dbPath == "" || (*topicsPath == "" && flag.NArg() != 1) {
		flag.Usage()
		os.Exit(2)
	}

	eng, err := trex.Open(*dbPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if *topicsPath != "" {
		runTopics(eng, *topicsPath, *k)
		return
	}
	query := flag.Arg(0)
	switch *lang {
	case "", "nexi":
	case "jsonpath":
		query, err = jsoncorpus.JSONPathToNEXI(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jsonpath -> %s\n", query)
	default:
		log.Fatalf("unknown query language %q (want nexi or jsonpath)", *lang)
	}

	if *materialize {
		if _, err := eng.Materialize(query, index.KindRPL, index.KindERPL); err != nil {
			log.Fatal(err)
		}
	}
	if *explain {
		ex, err := eng.Explain(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(ex.String())
		return
	}
	var m trex.Method
	switch *method {
	case "auto":
		m = trex.MethodAuto
	case "era":
		m = trex.MethodERA
	case "ta":
		m = trex.MethodTA
	case "nra":
		m = trex.MethodNRA
	case "merge":
		m = trex.MethodMerge
	case "race":
		m = trex.MethodRace
	default:
		log.Fatalf("unknown method %q", *method)
	}
	res, err := eng.Query(query, *k, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:   %s\n", query)
	fmt.Printf("method:  %s   translation: %d sids, %d terms   answers: %d\n",
		res.Method, res.Translation.NumSIDs(), res.Translation.NumTerms(), res.TotalAnswers)
	for i, a := range res.Answers {
		fmt.Printf("%3d. score=%8.4f doc=%-5d span=[%d,%d) %s\n",
			i+1, a.Score, a.Doc, a.Start, a.End, a.Path)
	}
	if *showStats {
		s := res.Stats
		fmt.Printf("stats: elapsed=%v heap=%v sorted=%d skipped=%d random=%d positions=%d elements=%d depth=%.3f\n",
			s.Elapsed, s.HeapTime, s.SortedAccesses, s.SkippedBySID,
			s.RandomAccesses, s.PositionsScanned, s.ElementsScanned, s.DepthFraction())
	}
}
