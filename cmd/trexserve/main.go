// Command trexserve serves a TReX database over HTTP: a JSON search API
// plus a minimal HTML page.
//
// Usage:
//
//	trexserve -db ./ieee.trexdb -addr :8080 [-writes]
//
// Endpoints: /search, /explain, /stats, /materialize (with -writes), /.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"trex"
	"trex/internal/webapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexserve: ")
	dbPath := flag.String("db", "", "TReX database file (required)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	writes := flag.Bool("writes", false, "enable the /materialize endpoint")
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	eng, err := trex.Open(*dbPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	srv := webapi.New(eng, *writes)
	fmt.Printf("serving %s on http://%s (writes=%v)\n", *dbPath, *addr, *writes)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
