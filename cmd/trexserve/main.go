// Command trexserve serves a TReX database over HTTP: a JSON search API
// plus a minimal HTML page. With -autopilot it also runs the online
// self-management daemon, which observes the live query stream and keeps
// the materialized RPL/ERPL set tuned to it under a disk budget while
// the server keeps answering queries.
//
// With -shards N (and optionally -replicas R) it instead serves a
// sharded scatter-gather cluster built from a corpus directory: the
// coordinator translates each query once, runs distributed TA across
// the shard engines with replica failover, and exposes /cluster for
// topology plus trex_cluster_* metrics. The front door then guards the
// coordinator, not the individual shard engines.
//
// Usage:
//
//	trexserve -db ./ieee.trexdb -addr :8080 [-writes]
//	trexserve -corpus ./corpus-dir -shards 4 -replicas 2 -addr :8080 [-writes]
//	    [-autopilot -autopilot-interval 30s -autopilot-budget 1000000000
//	     -autopilot-drift 500 -autopilot-capacity 512 -autopilot-top 16
//	     -autopilot-solver greedy -autopilot-pause 5ms]
//
// Endpoints: /search, /explain, /stats, /autopilot, /planner, /metrics,
// /slowlog, /materialize (with -writes), /. Telemetry (the /metrics
// registry, per-query traces and the slow-query log) is on by default;
// disable it with -metrics=false, tune the slow log with
// -slowlog-threshold.
//
// The telemetry-driven query planner resolves method=auto by default;
// -planner=false falls back to the static coverage heuristic, and
// -shadow-fraction tunes how often the planner's runner-up method is
// additionally run in the background to measure prediction regret.
//
// The front door is off by default. -max-inflight bounds concurrent
// query evaluation with a -queue deep admission queue (arrivals past it
// get 429, waits past -queue-timeout get 503), -deadline bounds each
// query's evaluation time (expiry returns a best-effort ranking marked
// approximate), and -cache-entries enables a result cache invalidated
// by every index write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
	"trex/internal/webapi"
)

// serveCluster builds an N-shard, R-replica in-memory cluster from a
// corpus directory and serves the coordinator API. The front door
// (admission, deadline, result cache) sits above the coordinator, not
// the shard engines.
func serveCluster(addr, corpusDir string, shards, replicas int, writes bool, fd *trex.FrontDoorOptions, engine trex.Options) {
	if corpusDir == "" {
		log.Fatal("cluster mode (-shards/-replicas) needs -corpus <dir> (trexgen output)")
	}
	col, err := corpus.LoadDir(corpusDir)
	if err != nil {
		log.Fatalf("load corpus: %v", err)
	}
	cl, err := cluster.New(col, cluster.Options{
		Shards:    shards,
		Replicas:  replicas,
		Engine:    engine,
		FrontDoor: fd,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: webapi.NewCluster(cl, writes)}
	go func() {
		<-ctx.Done()
		srv.Shutdown(context.Background())
	}()
	fmt.Printf("serving %s on http://%s (%d docs, shards=%d replicas=%d writes=%v)\n",
		corpusDir, addr, len(col.Docs), shards, replicas, writes)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Println("shut down cleanly")
}

func parseSolver(s string) (trex.Solver, error) {
	switch s {
	case "greedy":
		return trex.SolverGreedy, nil
	case "lp":
		return trex.SolverLP, nil
	case "optimal":
		return trex.SolverOptimal, nil
	default:
		return trex.SolverGreedy, fmt.Errorf("unknown solver %q (want greedy, lp or optimal)", s)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexserve: ")
	dbPath := flag.String("db", "", "TReX database file (required unless -shards/-replicas serve a corpus)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	shards := flag.Int("shards", 1, "serve a sharded cluster with this many document-space partitions (needs -corpus)")
	replicas := flag.Int("replicas", 1, "replicas per shard in cluster mode; reads fail over, writes fan out")
	corpusDir := flag.String("corpus", "", "corpus directory (trexgen output) to build the cluster from; required in cluster mode")
	writes := flag.Bool("writes", false, "enable the /materialize endpoint")
	auto := flag.Bool("autopilot", false, "enable online self-management (workload tracker + re-planning daemon)")
	autoInterval := flag.Duration("autopilot-interval", 30*time.Second, "time between autopilot planning runs")
	autoDrift := flag.Int("autopilot-drift", 0, "re-plan early after this many queries since the last run (0 = timer only)")
	autoBudget := flag.Int64("autopilot-budget", 1<<30, "disk budget in bytes for materialized redundant lists")
	autoCapacity := flag.Int("autopilot-capacity", 512, "workload tracker capacity (distinct queries)")
	autoTop := flag.Int("autopilot-top", 16, "workload snapshot size handed to the solver")
	autoSolver := flag.String("autopilot-solver", "greedy", "index-selection solver: greedy, lp, optimal")
	autoPause := flag.Duration("autopilot-pause", 5*time.Millisecond, "pause between autopilot maintenance steps (rate limit)")
	segments := flag.Bool("segments", false, "serve materialized lists from an immutable mmap'd segment (<db>.seg directory; persisted, so later opens keep it)")
	metrics := flag.Bool("metrics", true, "enable telemetry: /metrics registry, per-query traces, /slowlog")
	slowThreshold := flag.Duration("slowlog-threshold", trex.DefaultSlowQueryThreshold, "wall-time budget at or above which a query lands in /slowlog (0 disables recording)")
	slowCapacity := flag.Int("slowlog-capacity", 128, "slow-query ring buffer size")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently evaluating queries (0 = unbounded, no admission control)")
	queue := flag.Int("queue", 0, "admission queue depth beyond -max-inflight; arrivals past it are shed with 429")
	queueTimeout := flag.Duration("queue-timeout", 0, "max time a query may wait for an execution slot before a 503 (0 = 100ms default)")
	deadline := flag.Duration("deadline", 0, "default per-query deadline; expiry returns the best-effort ranking marked approximate (0 = none)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity in entries, invalidated by any index write (0 = no cache)")
	plannerOn := flag.Bool("planner", true, "resolve method=auto through the telemetry-calibrated cost model (false = static coverage heuristic)")
	shadowFraction := flag.Float64("shadow-fraction", trex.DefaultShadowFraction, "fraction of auto-planned queries whose runner-up method also runs in the background to measure regret (0 < f <= 1; negative disables)")
	flag.Parse()
	clusterMode := *shards > 1 || *replicas > 1 || *corpusDir != ""
	if *dbPath == "" && !clusterMode {
		flag.Usage()
		os.Exit(2)
	}
	var fd *trex.FrontDoorOptions
	if *maxInflight > 0 || *deadline > 0 || *cacheEntries > 0 {
		fd = &trex.FrontDoorOptions{
			MaxInflight:  *maxInflight,
			QueueDepth:   *queue,
			QueueTimeout: *queueTimeout,
			Deadline:     *deadline,
			CacheEntries: *cacheEntries,
		}
	}

	if clusterMode {
		serveCluster(*addr, *corpusDir, *shards, *replicas, *writes, fd, trex.Options{
			SegmentLists:   *segments,
			StoreDocuments: true,
			Planner: &trex.PlannerOptions{
				Disabled:       !*plannerOn,
				ShadowFraction: *shadowFraction,
			},
			Telemetry: &trex.TelemetryOptions{
				Disabled:           !*metrics,
				SlowQueryThreshold: *slowThreshold,
				SlowLogCapacity:    *slowCapacity,
			}})
		return
	}
	eng, err := trex.Open(*dbPath, &trex.Options{
		SegmentLists: *segments,
		FrontDoor:    fd,
		Planner: &trex.PlannerOptions{
			Disabled:       !*plannerOn,
			ShadowFraction: *shadowFraction,
		},
		Telemetry: &trex.TelemetryOptions{
			Disabled:           !*metrics,
			SlowQueryThreshold: *slowThreshold,
			SlowLogCapacity:    *slowCapacity,
		}})
	if err != nil {
		log.Fatal(err)
	}
	if !*metrics {
		log.Print("telemetry disabled (-metrics=false): /metrics and /slowlog return 404")
	} else if *slowThreshold <= 0 {
		// TelemetryOptions treats <= 0 as "use the default"; an explicit
		// zero flag means "keep the registry but record nothing".
		eng.SlowLog().SetThreshold(0)
	}
	defer eng.Close()

	if *auto {
		solver, err := parseSolver(*autoSolver)
		if err != nil {
			log.Fatal(err)
		}
		err = eng.StartAutopilot(context.Background(), trex.AutopilotOptions{
			Interval:        *autoInterval,
			DriftQueries:    *autoDrift,
			DiskBudget:      *autoBudget,
			TrackerCapacity: *autoCapacity,
			TopQueries:      *autoTop,
			Solver:          solver,
			Pause:           *autoPause,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Shut down cleanly on SIGINT/SIGTERM. With the autopilot enabled the
	// server *writes* (materialize/drop during maintenance); dying
	// mid-write without stopping the daemon and flushing would leave torn
	// pages in the database, so the signal path stops the HTTP listener,
	// waits out any in-flight autopilot run, and closes the engine.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: webapi.New(eng, *writes)}
	go func() {
		<-ctx.Done()
		srv.Shutdown(context.Background())
	}()
	fmt.Printf("serving %s on http://%s (writes=%v autopilot=%v)\n", *dbPath, *addr, *writes, *auto)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Println("shut down cleanly")
}
