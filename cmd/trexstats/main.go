// Command trexstats inspects a TReX database: table sizes, structural
// summary contents, collection statistics and the materialized-list
// catalog.
//
// Usage:
//
//	trexstats -db ./ieee.trexdb                 # overview
//	trexstats -db ./ieee.trexdb -summary        # dump summary nodes
//	trexstats -db ./ieee.trexdb -terms 20       # top terms by frequency
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"trex"
	"trex/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trexstats: ")
	dbPath := flag.String("db", "", "TReX database file (required)")
	dumpSummary := flag.Bool("summary", false, "dump all summary nodes")
	topTerms := flag.Int("terms", 0, "show the N most frequent terms")
	catalog := flag.Bool("catalog", false, "list materialized RPL/ERPL lists")
	flag.Parse()
	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	eng, err := trex.Open(*dbPath, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	st, err := eng.Store().CollectionStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d docs, %d elements, avg element %.0f bytes\n",
		st.NumDocs, st.NumElements, st.AvgElementLen)
	fmt.Printf("summary: %d nodes (%s)\n", eng.Summary().NumNodes(), eng.Summary().Kind)
	fmt.Printf("database: %d pages (%.1f MB)\n",
		eng.DB().PageCount(), float64(eng.DB().PageCount())*storage.PageSize/1e6)

	fmt.Println("\ntables:")
	for _, name := range eng.DB().Tables() {
		tree, err := eng.DB().OpenTable(name)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := tree.Len()
		if err != nil {
			log.Fatal(err)
		}
		bytes, err := tree.ApproxBytes()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %10d rows %10.2f MB\n", name, rows, float64(bytes)/1e6)
	}

	if *dumpSummary {
		fmt.Println("\nsummary nodes (sid, extent size, path):")
		for _, n := range eng.Summary().Nodes {
			fmt.Printf("  %5d %8d  %s\n", n.SID, n.ExtentSize, n.XPathExpr())
		}
	}

	if *catalog {
		entries, err := eng.Store().CatalogEntries()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmaterialized lists (%d):\n", len(entries))
		for _, e := range entries {
			fmt.Printf("  %-4s %-20s sid=%-5d %7d entries %9d bytes\n",
				e.Kind, e.Term, e.SID, e.Entries, e.Bytes)
		}
	}

	if *topTerms > 0 {
		type termRow struct {
			term string
			cf   int64
		}
		var rows []termRow
		tree, err := eng.DB().OpenTable("TermStats")
		if err != nil {
			log.Fatal(err)
		}
		cur := tree.Cursor()
		ok, err := cur.First()
		for ; ok; ok, err = cur.Next() {
			term := string(cur.Key())
			if strings.HasPrefix(term, "\x00") {
				continue
			}
			cf, err := eng.Store().TermCF(term)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, termRow{term: term, cf: cf})
		}
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].cf > rows[j].cf })
		if len(rows) > *topTerms {
			rows = rows[:*topTerms]
		}
		fmt.Printf("\ntop %d terms by collection frequency:\n", len(rows))
		for _, r := range rows {
			df, err := eng.Store().TermDF(r.term)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-20s cf=%-8d df=%d\n", r.term, r.cf, df)
		}
	}
}
