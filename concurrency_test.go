package trex

import (
	"fmt"
	"sync"
	"testing"

	"trex/internal/index"
)

// TestConcurrentReaders exercises the documented concurrency contract:
// any number of concurrent readers. Run with -race.
func TestConcurrentReaders(t *testing.T) {
	eng := testEngine(t, 25, 101)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking)]`,
	}
	for _, q := range queries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}
	// Reference results, single-threaded.
	want := make(map[string]*Result)
	for _, q := range queries {
		r, err := eng.Query(q, 10, MethodERA)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = r
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			methods := []Method{MethodERA, MethodTA, MethodMerge, MethodNRA, MethodRace}
			for i := 0; i < 6; i++ {
				q := queries[(w+i)%len(queries)]
				m := methods[(w+i)%len(methods)]
				r, err := eng.Query(q, 10, m)
				if err != nil {
					errs <- err
					return
				}
				ref := want[q]
				if len(r.Answers) != len(ref.Answers) {
					errs <- errMismatch(q)
					return
				}
				for j := range ref.Answers {
					if r.Answers[j] != ref.Answers[j] {
						errs <- errMismatch(q)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return "concurrent result mismatch for " + string(e) }

// TestConcurrentQueryStress hammers one engine from many goroutines with
// mixed methods (including MethodRace, which itself spawns two racers per
// query), interleaved stats snapshots, and enough distinct translations
// to overflow the LRU translation cache. Run with -race; this is the
// serving pattern of the web API under load.
func TestConcurrentQueryStress(t *testing.T) {
	eng := testEngine(t, 25, 101)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking)]`,
	}
	for _, q := range queries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}
	methods := []Method{MethodERA, MethodTA, MethodMerge, MethodNRA, MethodRace, MethodAuto}

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch w % 4 {
			case 0, 1: // query traffic, every method
				for i := 0; i < 20; i++ {
					q := queries[(w+i)%len(queries)]
					m := methods[(w+i)%len(methods)]
					if _, err := eng.Query(q, 5, m); err != nil {
						errs <- err
						return
					}
				}
			case 2: // stats snapshots (the experiment harness pattern)
				prev := eng.DB().Stats()
				for i := 0; i < 200; i++ {
					st := eng.DB().Stats()
					d := st.Sub(prev)
					if d.Gets >= 1<<63 || d.Seeks >= 1<<63 || d.Nexts >= 1<<63 {
						errs <- errMismatch("stats went backwards")
						return
					}
					prev = st
					eng.DB().PageCount()
				}
			case 3: // translation churn: distinct queries overflow the LRU
				for i := 0; i < 300; i++ {
					q := fmt.Sprintf(`//article[about(., stress%d w%d)]`, i, w)
					if _, err := eng.Translate(q); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The churn worker pushed well past the cache bound; eviction must
	// have kept it at the limit instead of wiping it.
	eng.trMu.Lock()
	size, lruLen := len(eng.trCache), eng.trLRU.Len()
	eng.trMu.Unlock()
	if size > translationCacheSize {
		t.Fatalf("translation cache grew to %d entries (bound %d)", size, translationCacheSize)
	}
	if size != lruLen {
		t.Fatalf("translation cache map (%d) and LRU list (%d) diverged", size, lruLen)
	}
	if size == 0 {
		t.Fatal("translation cache empty after stress (wiped instead of evicted)")
	}
}

// TestTranslationCacheLRU pins the eviction policy: filling the cache one
// past its bound evicts exactly the least recently used entry, not the
// whole cache.
func TestTranslationCacheLRU(t *testing.T) {
	eng := testEngine(t, 5, 7)
	mk := func(i int) string { return fmt.Sprintf(`//article[about(., lru%d)]`, i) }
	for i := 0; i < translationCacheSize; i++ {
		if _, err := eng.Translate(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 so entry 1 becomes the LRU victim.
	if _, err := eng.Translate(mk(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Translate(mk(translationCacheSize)); err != nil {
		t.Fatal(err)
	}
	eng.trMu.Lock()
	defer eng.trMu.Unlock()
	if got := len(eng.trCache); got != translationCacheSize {
		t.Fatalf("cache size = %d, want %d (evict one, not all)", got, translationCacheSize)
	}
	key := func(i int) string { return "vague\x00" + mk(i) }
	if _, ok := eng.trCache[key(1)]; ok {
		t.Fatal("LRU victim (entry 1) still cached")
	}
	for _, i := range []int{0, 2, translationCacheSize} {
		if _, ok := eng.trCache[key(i)]; !ok {
			t.Fatalf("entry %d missing: eviction dropped more than the LRU victim", i)
		}
	}
}
