package trex

import (
	"sync"
	"testing"

	"trex/internal/index"
)

// TestConcurrentReaders exercises the documented concurrency contract:
// any number of concurrent readers. Run with -race.
func TestConcurrentReaders(t *testing.T) {
	eng := testEngine(t, 25, 101)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., model checking)]`,
	}
	for _, q := range queries {
		if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
	}
	// Reference results, single-threaded.
	want := make(map[string]*Result)
	for _, q := range queries {
		r, err := eng.Query(q, 10, MethodERA)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = r
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			methods := []Method{MethodERA, MethodTA, MethodMerge, MethodNRA, MethodRace}
			for i := 0; i < 6; i++ {
				q := queries[(w+i)%len(queries)]
				m := methods[(w+i)%len(methods)]
				r, err := eng.Query(q, 10, m)
				if err != nil {
					errs <- err
					return
				}
				ref := want[q]
				if len(r.Answers) != len(ref.Answers) {
					errs <- errMismatch(q)
					return
				}
				for j := range ref.Answers {
					if r.Answers[j] != ref.Answers[j] {
						errs <- errMismatch(q)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return "concurrent result mismatch for " + string(e) }
