// Package trex is an XML retrieval system with self-managing top-k
// (summary, keyword) indexes — a from-scratch reproduction of the TReX
// system (Consens, Gu, Kanza, Rizzolo; ICDE 2007).
//
// TReX evaluates vague NEXI queries (keyword search plus structural
// constraints) over XML collections. It translates each query into sets
// of summary-node identifiers (sids) and terms using a structural summary,
// then retrieves ranked elements with one of three strategies:
//
//   - ERA: exhaustive scan over the always-present Elements and
//     PostingLists tables.
//   - TA: the threshold algorithm over redundant score-ordered RPLs.
//   - Merge: a positional merge over redundant position-ordered ERPLs.
//
// Because no strategy dominates, the engine self-manages which redundant
// lists to materialize for a given workload under a disk budget
// (SelfManage), using either an exact boolean-LP solver or a greedy
// 2-approximation.
//
// Quick start:
//
//	col := corpus.GenerateIEEE(200, 42)
//	eng, err := trex.CreateMemory(col, nil)
//	res, err := eng.Query(`//article[about(., xml)]//sec[about(., query)]`,
//	    10, trex.MethodAuto)
package trex

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trex/internal/autopilot"
	"trex/internal/corpus"
	"trex/internal/frontdoor"
	"trex/internal/index"
	"trex/internal/score"
	"trex/internal/segment"
	"trex/internal/storage"
	"trex/internal/summary"
)

// Options configures collection building.
type Options struct {
	// SummaryKind defaults to the alias incoming summary the paper uses.
	SummaryKind summary.Kind
	// K is the suffix length when SummaryKind is summary.KindAK.
	K int
	// Aliases overrides the collection's alias mapping (nil keeps it).
	Aliases map[string]string
	// CachePages bounds the storage page cache (0 = default).
	CachePages int
	// CacheShards splits the storage page cache into independently
	// locked shards so concurrent readers on different pages never
	// contend (0 = default, 16 shards; rounded up to a power of two).
	CacheShards int
	// StoreDocuments also persists raw documents into the DB (needed only
	// if you want Engine.Document to work after reopening).
	StoreDocuments bool
	// Stopwords are excluded from indexing and from queries; the list is
	// persisted so build and query time always agree. Use
	// index.DefaultStopwords for a standard English list; nil keeps all
	// terms.
	Stopwords []string
	// Scoring selects the relevance formula (default BM25; also
	// score.ModelLMDirichlet). Persisted, since materialized list scores
	// embed it.
	Scoring score.Model
	// Autopilot, when non-nil, starts the online self-management daemon
	// on the opened engine (see Engine.StartAutopilot): the query path
	// feeds a workload tracker and a background controller keeps the
	// materialized list set tuned to observed traffic under the disk
	// budget. Engine.Close stops it.
	Autopilot *AutopilotOptions
	// Telemetry configures the observability layer (metrics registry,
	// per-query trace spans, slow-query log). Nil enables it with
	// defaults; see TelemetryOptions.Disabled to opt out.
	Telemetry *TelemetryOptions
	// SegmentLists serves committed RPL/ERPL reads from an immutable
	// memory-mapped segment file (rebuilt at each maintenance commit)
	// instead of the pager's B+trees: decode-free zero-copy cursors for
	// TA/NRA/Merge, at the cost of rewriting the segment on commit. The
	// choice is persisted, so Open re-attaches automatically; for a
	// database at path the segment lives in the path+".seg" directory.
	// Writes keep the pager path; uncommitted list changes are served
	// from the trees until the next commit.
	SegmentLists bool
	// FrontDoor configures overload protection for the query path:
	// bounded admission with load shedding, a default per-query
	// deadline, and an epoch-invalidated result cache. Nil disables all
	// of it; see FrontDoorOptions.
	FrontDoor *FrontDoorOptions
	// Planner configures the online query planner that resolves
	// MethodAuto through a continuously calibrated cost model. Nil
	// enables it with defaults; see PlannerOptions.Disabled to fall
	// back to the legacy static heuristic.
	Planner *PlannerOptions
	// SharedSummary, when non-nil, is used instead of building a
	// structural summary from the collection. The distributed tier
	// (internal/cluster) builds ONE summary over the full corpus and
	// hands each shard a private deep copy, so every shard assigns the
	// same sid to the same label path and a query translates to the
	// same (sids, terms) everywhere. The engine takes ownership of the
	// value: callers must not share one *Summary between engines
	// (AppendDocuments mutates it in place).
	SharedSummary *summary.Summary
}

// Engine is an opened TReX collection: storage, index tables and the
// structural summary.
type Engine struct {
	db    *storage.DB
	store *index.Store
	sum   *summary.Summary
	docs  *corpus.DocStore
	// format is the document universe of the stored collection (XML or
	// JSON), persisted in the index meta. Set once at build/Open, then
	// read-only.
	format corpus.Format
	// ingestStagedDocs/Bytes aggregate what live Ingestors hold staged
	// but not yet committed; exported as gauges by telemetry.
	ingestStagedDocs  atomic.Int64
	ingestStagedBytes atomic.Int64
	// inflight tracks racing retrieval goroutines (MethodRace) so Close
	// does not pull the storage out from under a losing racer.
	inflight sync.WaitGroup
	// trCache memoizes query translations with LRU eviction (guarded by
	// trMu; invalidated when the summary changes). trLRU's front is the
	// most recently used entry; element values are *trCacheEntry.
	trMu    sync.Mutex
	trCache map[string]*list.Element
	trLRU   *list.List
	// rw coordinates readers and writers at the engine level: queries
	// and other read-only operations hold it shared, while maintenance
	// steps (materializing a list, dropping a list, appending documents)
	// hold it exclusively. The B+tree mutates nodes in place, so a write
	// step must exclude all readers; holding the exclusive lock only per
	// step keeps maintenance from starving foreground queries.
	rw sync.RWMutex
	// maintMu serializes whole maintenance operations (AddDocuments,
	// Materialize, SelfManage, autopilot runs, Backup): each is a
	// sequence of rw-locked steps that must not interleave with another
	// operation's sequence. Lock order is always maintMu before rw.
	maintMu sync.Mutex
	// pilot is the running autopilot controller, nil when disabled.
	// Atomic so the query hot path can feed it without a lock; pilotMu
	// serializes Start/Stop, and pilotCancel stops the loop.
	pilot       atomic.Pointer[autopilot.Controller]
	pilotMu     sync.Mutex
	pilotCancel context.CancelFunc
	pilotOpts   AutopilotOptions
	// met is the observability layer (metrics registry, slow-query log,
	// I/O-attribution guard); nil when TelemetryOptions.Disabled. Set
	// once before the engine is shared, then read-only.
	met *engineMetrics
	// Front door (see FrontDoorOptions): adm gates query concurrency
	// and rcache memoizes rankings; both nil when disabled. fd keeps
	// the configured options (for the default deadline).
	adm    *frontdoor.Admission
	rcache *frontdoor.Cache
	fd     FrontDoorOptions
	// pln is the online query planner (MethodAuto resolution, cost
	// model calibration, shadow sampling); nil when disabled. Set once
	// before the engine is shared, then read-only.
	pln *plannerState
	// writeEpoch is the result cache's invalidation key: seeded from
	// the persisted list epoch at open, bumped by beginWrite under the
	// exclusive lock — so every maintenance step (even one of many
	// inside a single operation) moves the engine past all cached
	// rankings. Cache fills read it under the shared lock, where it
	// cannot move.
	writeEpoch atomic.Uint64
}

// beginRead / endRead bracket a read-only operation (queries,
// translation, explain, snippets). Any number may run concurrently. A
// reader also pins the segment store (when attached) so the generation
// it started on stays mapped until it is done, even if a commit flips
// the manifest mid-query.
func (e *Engine) beginRead() {
	e.rw.RLock()
	e.store.PinLists()
}

func (e *Engine) endRead() {
	e.store.UnpinLists()
	e.rw.RUnlock()
}

// beginWrite / endWrite bracket one exclusive maintenance step. After
// the exclusive lock is held no new reader can start, but a losing
// MethodRace goroutine from an earlier query may still be reading
// storage, so writers also drain inflight before mutating.
func (e *Engine) beginWrite() {
	if m := e.met; m != nil {
		t0 := time.Now()
		e.rw.Lock()
		m.writeLockWait.Observe(time.Since(t0).Seconds())
		// Any exclusive step may dirty the shared I/O counters: taint
		// overlapping query measurement windows (see telemetry.Guard).
		m.guard.NoteWrite()
	} else {
		e.rw.Lock()
	}
	// Every exclusive step may change what queries would return: move
	// the write epoch past every cached ranking. Bumping per step (not
	// per operation) matters — multi-step maintenance releases rw
	// between steps, and a cache fill in such a window must die at the
	// next step, not survive until the operation commits.
	e.writeEpoch.Add(1)
	e.inflight.Wait()
}
func (e *Engine) endWrite() { e.rw.Unlock() }

// metaSummaryChunk prefixes the serialized summary chunks in IndexMeta.
const metaSummaryPrefix = "summary-chunk-"

// Create builds a new on-disk TReX database at path from the collection.
func Create(path string, col *corpus.Collection, opts *Options) (*Engine, error) {
	if opts == nil {
		opts = &Options{}
	}
	db, err := storage.Open(path, &storage.Options{CachePages: opts.CachePages, CacheShards: opts.CacheShards})
	if err != nil {
		return nil, err
	}
	eng, err := build(db, col, opts)
	if err != nil {
		db.Close()
		return nil, err
	}
	if opts.SegmentLists {
		if err := eng.enableSegments(segmentDir(path)); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return nil, err
	}
	if err := eng.startConfiguredAutopilot(opts); err != nil {
		db.Close()
		return nil, err
	}
	return eng, nil
}

// CreateOnDB builds a TReX collection over a caller-supplied storage
// database (e.g. one opened over an instrumented storage.Backend for
// fault testing). The engine takes ownership: Close closes db. On error
// the db is left open for the caller to inspect.
func CreateOnDB(db *storage.DB, col *corpus.Collection, opts *Options) (*Engine, error) {
	if opts == nil {
		opts = &Options{}
	}
	eng, err := build(db, col, opts)
	if err != nil {
		return nil, err
	}
	if opts.SegmentLists {
		if err := eng.enableSegments(""); err != nil {
			return nil, err
		}
	}
	if err := db.Flush(); err != nil {
		return nil, err
	}
	if err := eng.startConfiguredAutopilot(opts); err != nil {
		return nil, err
	}
	return eng, nil
}

// CreateMemory builds an in-memory TReX database from the collection.
func CreateMemory(col *corpus.Collection, opts *Options) (*Engine, error) {
	if opts == nil {
		opts = &Options{}
	}
	db := storage.OpenMemory()
	eng, err := build(db, col, opts)
	if err != nil {
		db.Close()
		return nil, err
	}
	if opts.SegmentLists {
		if err := eng.enableSegments(""); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := eng.startConfiguredAutopilot(opts); err != nil {
		db.Close()
		return nil, err
	}
	return eng, nil
}

// segmentDir is where a database at path keeps its segment generations.
func segmentDir(path string) string { return path + ".seg" }

// enableSegments attaches the mmap'd segment list backend: persist the
// marker (so Open re-attaches), open the generation store (dir == "" for
// the in-memory mode) and hand it to the index layer, which serves the
// existing generation or rebuilds one from the trees. Registers the
// trex_segment_* metric family when telemetry is up.
func (e *Engine) enableSegments(dir string) error {
	if e.store.Segments() != nil {
		return nil
	}
	if err := e.store.PutListBackend(index.ListBackendSegment); err != nil {
		return err
	}
	var ss *segment.Store
	if dir == "" {
		ss = segment.OpenMemory()
	} else {
		var err error
		if ss, err = segment.Open(dir); err != nil {
			return err
		}
	}
	if err := e.store.AttachSegments(ss); err != nil {
		ss.Close()
		return err
	}
	if m := e.met; m != nil {
		registerSegmentMetrics(m.reg, ss)
	}
	return nil
}

// startConfiguredAutopilot starts the daemon when Options requested it.
func (e *Engine) startConfiguredAutopilot(opts *Options) error {
	if opts.Autopilot == nil {
		return nil
	}
	return e.StartAutopilot(context.Background(), *opts.Autopilot)
}

func build(db *storage.DB, col *corpus.Collection, opts *Options) (*Engine, error) {
	aliases := col.Aliases
	if opts.Aliases != nil {
		aliases = opts.Aliases
	}
	sum := opts.SharedSummary
	if sum == nil {
		var err error
		sum, err = summary.Build(col, summary.Options{
			Kind:    opts.SummaryKind,
			Aliases: aliases,
			K:       opts.K,
		})
		if err != nil {
			return nil, err
		}
	}
	if !sum.SafeForRetrieval() {
		return nil, fmt.Errorf("trex: summary kind %v is unsafe for retrieval over this collection (an extent contains ancestor/descendant pairs); use the incoming summary", opts.SummaryKind)
	}
	store, err := index.Open(db)
	if err != nil {
		return nil, err
	}
	if len(opts.Stopwords) > 0 {
		if err := store.PutStopwords(opts.Stopwords); err != nil {
			return nil, err
		}
	}
	if opts.Scoring != score.ModelBM25 {
		if err := store.PutScoringModel(opts.Scoring); err != nil {
			return nil, err
		}
	}
	if err := store.PutCorpusFormat(col.Format); err != nil {
		return nil, err
	}
	if _, err := index.BuildBase(store, col, sum); err != nil {
		return nil, err
	}
	eng := &Engine{db: db, store: store, sum: sum, format: col.Format}
	eng.initTelemetry(opts.Telemetry)
	eng.initPlanner(opts.Planner)
	if err := eng.initFrontDoor(opts.FrontDoor); err != nil {
		return nil, err
	}
	if err := eng.saveSummary(); err != nil {
		return nil, err
	}
	if opts.StoreDocuments {
		ds, err := corpus.OpenDocStore(db)
		if err != nil {
			return nil, err
		}
		if err := ds.PutCollection(col); err != nil {
			return nil, err
		}
		eng.docs = ds
	}
	return eng, nil
}

// Open reopens an existing TReX database created by Create.
func Open(path string, opts *Options) (*Engine, error) {
	if opts == nil {
		opts = &Options{}
	}
	db, err := storage.Open(path, &storage.Options{CachePages: opts.CachePages, CacheShards: opts.CacheShards})
	if err != nil {
		return nil, err
	}
	store, err := index.Open(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	format, err := store.CorpusFormat()
	if err != nil {
		db.Close()
		return nil, err
	}
	eng := &Engine{db: db, store: store, format: format}
	eng.initTelemetry(opts.Telemetry)
	eng.initPlanner(opts.Planner)
	if err := eng.initFrontDoor(opts.FrontDoor); err != nil {
		db.Close()
		return nil, err
	}
	if err := eng.loadSummary(); err != nil {
		db.Close()
		return nil, fmt.Errorf("trex: %s is not a TReX database: %w", path, err)
	}
	backend, err := store.ListBackend()
	if err != nil {
		db.Close()
		return nil, err
	}
	if backend == index.ListBackendSegment || opts.SegmentLists {
		if err := eng.enableSegments(segmentDir(path)); err != nil {
			db.Close()
			return nil, err
		}
	}
	if ds, err := corpus.OpenDocStore(db); err == nil {
		eng.docs = ds
	}
	if err := eng.startConfiguredAutopilot(opts); err != nil {
		db.Close()
		return nil, err
	}
	return eng, nil
}

// Close stops the autopilot (if running), waits for in-flight queries
// and racers, then flushes and closes the underlying database.
func (e *Engine) Close() error {
	e.StopAutopilot()
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.beginWrite()
	defer e.endWrite()
	err := e.db.Close()
	if serr := e.store.CloseSegments(); err == nil {
		err = serr
	}
	return err
}

// Summary exposes the collection's structural summary.
func (e *Engine) Summary() *summary.Summary { return e.sum }

// Format reports which document universe the collection lives in.
func (e *Engine) Format() corpus.Format { return e.format }

// Store exposes the underlying index tables (read-mostly use).
func (e *Engine) Store() *index.Store { return e.store }

// DB exposes the storage database (for stats and disk accounting).
func (e *Engine) DB() *storage.DB { return e.db }

// Backup writes a consistent copy of the whole database (all tables, the
// summary, any materialized lists) to a new file at path; the copy opens
// directly with trex.Open. Safe to run concurrently with queries; it
// excludes maintenance operations (AddDocuments, Materialize,
// SelfManage, autopilot runs) for its duration.
//
// Only the pager database is copied: the segment (when the engine runs
// with Options.SegmentLists) is a derived replica of the trees, and
// opening the copy rebuilds it — the persisted backend marker triggers
// the rebuild, and the list epoch makes any stale segment directory
// detectable.
func (e *Engine) Backup(path string) error {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	return e.db.BackupToFile(path)
}

// Document returns the raw bytes of a stored document; only available
// when the engine was built with StoreDocuments.
func (e *Engine) Document(id int) ([]byte, error) {
	e.beginRead()
	defer e.endRead()
	return e.document(id)
}

func (e *Engine) document(id int) ([]byte, error) {
	if e.docs == nil {
		return nil, fmt.Errorf("trex: documents were not stored (Options.StoreDocuments)")
	}
	return e.docs.Get(id)
}

// summaryChunkSize keeps each chunk under the storage value limit.
const summaryChunkSize = 3000

func (e *Engine) saveSummary() error {
	data, err := e.sum.MarshalBinary()
	if err != nil {
		return err
	}
	for i := 0; ; i++ {
		lo := i * summaryChunkSize
		if lo >= len(data) && i > 0 {
			break
		}
		hi := lo + summaryChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		key := fmt.Sprintf("%s%08d", metaSummaryPrefix, i)
		if err := e.store.Meta.Put([]byte(key), data[lo:hi]); err != nil {
			return err
		}
		if hi == len(data) {
			break
		}
	}
	return nil
}

func (e *Engine) loadSummary() error {
	cur := e.store.Meta.Cursor()
	prefix := []byte(metaSummaryPrefix)
	var data []byte
	ok, err := cur.SeekPrefix(prefix)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no stored summary")
	}
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		data = append(data, cur.Value()...)
	}
	if err != nil {
		return err
	}
	e.sum = &summary.Summary{}
	return e.sum.UnmarshalBinary(data)
}
