package trex

import (
	"path/filepath"
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/summary"
)

func testEngine(t *testing.T, docs, seed int) *Engine {
	return testEngineOpts(t, docs, seed, nil)
}

func testEngineOpts(t *testing.T, docs, seed int, opts *Options) *Engine {
	t.Helper()
	col := corpus.GenerateIEEE(docs, int64(seed))
	eng, err := CreateMemory(col, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func TestCreateAndQueryERA(t *testing.T) {
	eng := testEngine(t, 30, 42)
	res, err := eng.Query(`//article//sec[about(., ontologies case study)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodERA {
		t.Fatalf("method = %v", res.Method)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers for a planted topic")
	}
	if len(res.Answers) > 10 {
		t.Fatalf("answers = %d > k", len(res.Answers))
	}
	if res.TotalAnswers < len(res.Answers) {
		t.Fatalf("TotalAnswers = %d < returned %d", res.TotalAnswers, len(res.Answers))
	}
	// Ranked descending.
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i].Score > res.Answers[i-1].Score {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
	// Every answer is a sec-like element.
	for _, a := range res.Answers {
		if !strings.HasSuffix(a.Path, "/sec") && a.Path != "/sec" {
			t.Fatalf("answer path = %q, want a sec extent", a.Path)
		}
		if a.End <= a.Start {
			t.Fatalf("bad span [%d,%d)", a.Start, a.End)
		}
	}
}

func TestQueryAutoFallsBackToERA(t *testing.T) {
	eng := testEngine(t, 10, 1)
	res, err := eng.Query(`//article[about(., xml query)]`, 5, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodERA {
		t.Fatalf("auto without lists picked %v", res.Method)
	}
}

func TestMaterializeEnablesTAAndMerge(t *testing.T) {
	eng := testEngine(t, 25, 7)
	const q = `//article//sec[about(., ontologies case study)]`
	ok, err := eng.CanUse(q, MethodTA)
	if err != nil || ok {
		t.Fatalf("TA available before materialize: %v, %v", ok, err)
	}
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodTA, MethodMerge} {
		ok, err := eng.CanUse(q, m)
		if err != nil || !ok {
			t.Fatalf("%v unavailable after materialize: %v, %v", m, ok, err)
		}
	}
	// All three methods agree on scores.
	era, err := eng.Query(q, 20, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := eng.Query(q, 20, MethodTA)
	if err != nil {
		t.Fatal(err)
	}
	mrg, err := eng.Query(q, 20, MethodMerge)
	if err != nil {
		t.Fatal(err)
	}
	if len(era.Answers) != len(ta.Answers) || len(era.Answers) != len(mrg.Answers) {
		t.Fatalf("answer counts differ: %d / %d / %d",
			len(era.Answers), len(ta.Answers), len(mrg.Answers))
	}
	for i := range era.Answers {
		if era.Answers[i] != ta.Answers[i] || era.Answers[i] != mrg.Answers[i] {
			t.Fatalf("answers differ at %d:\nera=%+v\nta =%+v\nmrg=%+v",
				i, era.Answers[i], ta.Answers[i], mrg.Answers[i])
		}
	}
	// Auto now picks TA for small k, Merge for large k.
	small, err := eng.Query(q, 5, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if small.Method != MethodTA {
		t.Fatalf("auto small k = %v, want ta", small.Method)
	}
	large, err := eng.Query(q, 500, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if large.Method != MethodMerge {
		t.Fatalf("auto large k = %v, want merge", large.Method)
	}
}

func TestMultiClauseAncestorSupport(t *testing.T) {
	// A sec inside an article that matches the article-level about must
	// outrank an identical sec whose article does not match.
	col := &corpus.Collection{}
	col.Docs = []corpus.Document{
		{ID: 0, Data: []byte(`<article><atl>quantum title</atl><sec>retrieval retrieval</sec></article>`)},
		{ID: 1, Data: []byte(`<article><atl>plain title</atl><sec>retrieval retrieval</sec></article>`)},
	}
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query(`//article[about(., quantum)]//sec[about(., retrieval)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	if res.Answers[0].Doc != 0 {
		t.Fatalf("doc 0's sec (with matching article) should rank first; got doc %d", res.Answers[0].Doc)
	}
	if res.Answers[0].Score <= res.Answers[1].Score {
		t.Fatalf("ancestor support did not raise the score: %v vs %v",
			res.Answers[0].Score, res.Answers[1].Score)
	}
}

func TestDescendantSupport(t *testing.T) {
	// Q233-style: answers are articles, scored via their bdy descendants.
	col := &corpus.Collection{}
	col.Docs = []corpus.Document{
		{ID: 0, Data: []byte(`<article><bdy>synthesizers music</bdy></article>`)},
		{ID: 1, Data: []byte(`<article><bdy>unrelated words</bdy></article>`)},
	}
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query(`//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d, want 1: %+v", len(res.Answers), res.Answers)
	}
	if res.Answers[0].Doc != 0 || !strings.HasSuffix(res.Answers[0].Path, "article") {
		t.Fatalf("answer = %+v", res.Answers[0])
	}
}

func TestNegatedTermsLowerRank(t *testing.T) {
	col := &corpus.Collection{}
	col.Docs = []corpus.Document{
		{ID: 0, Data: []byte(`<article><figure><caption>renaissance painting pure</caption></figure></article>`)},
		{ID: 1, Data: []byte(`<article><figure><caption>renaissance painting french german french</caption></figure></article>`)},
	}
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query(`//article//figure[about(., renaissance painting -french -german)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	if res.Answers[0].Doc != 0 {
		t.Fatalf("negation did not demote doc 1: %+v", res.Answers)
	}
}

func TestPersistenceReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trex.db")
	col := corpus.GenerateIEEE(15, 3)
	eng, err := Create(path, col, &Options{StoreDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	const q = `//article//sec[about(., ontologies case study)]`
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(q, 10, MethodMerge)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.Summary().NumNodes() != eng.Summary().NumNodes() {
		t.Fatal("summary changed across reopen")
	}
	got, err := eng2.Query(q, 10, MethodMerge)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if got.Answers[i] != want.Answers[i] {
			t.Fatalf("answer %d differs after reopen", i)
		}
	}
	// Documents survive too.
	data, err := eng2.Document(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(col.Docs[0].Data) {
		t.Fatal("document bytes changed across reopen")
	}
}

func TestOpenNonTrexDBFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.db")
	// Create a valid storage DB without TReX content.
	eng, err := Open(path, nil)
	if err == nil {
		eng.Close()
		t.Fatal("Open of non-TReX database succeeded")
	}
}

func TestUnsafeSummaryRejected(t *testing.T) {
	col := &corpus.Collection{}
	col.Docs = []corpus.Document{{ID: 0, Data: []byte(`<a><b><a>x</a></b></a>`)}}
	_, err := CreateMemory(col, &Options{SummaryKind: summary.KindTag})
	if err == nil {
		t.Fatal("tag summary over recursive data accepted")
	}
}

func TestQueryParseErrorPropagates(t *testing.T) {
	eng := testEngine(t, 5, 1)
	if _, err := eng.Query(`not a query`, 10, MethodAuto); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := eng.Query(`//article`, 10, MethodAuto); err == nil {
		t.Fatal("query without about() accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	if MethodAuto.String() != "auto" || MethodERA.String() != "era" ||
		MethodTA.String() != "ta" || MethodMerge.String() != "merge" {
		t.Fatal("method strings")
	}
	if SolverGreedy.String() != "greedy" || SolverLP.String() != "lp" || SolverOptimal.String() != "optimal" {
		t.Fatal("solver strings")
	}
}

func TestMethodRace(t *testing.T) {
	eng := testEngine(t, 25, 31)
	const q = `//article//sec[about(., ontologies case study)]`
	ok, err := eng.CanUse(q, MethodRace)
	if err != nil || ok {
		t.Fatalf("race available before materialize: %v, %v", ok, err)
	}
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	ok, err = eng.CanUse(q, MethodRace)
	if err != nil || !ok {
		t.Fatalf("race unavailable after materialize: %v, %v", ok, err)
	}
	want, err := eng.Query(q, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		got, err := eng.Query(q, 10, MethodRace)
		if err != nil {
			t.Fatal(err)
		}
		if got.Method != MethodTA && got.Method != MethodMerge {
			t.Fatalf("race winner = %v", got.Method)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("race answers = %d, want %d", len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			if got.Answers[i] != want.Answers[i] {
				t.Fatalf("race answer %d differs (winner %v)", i, got.Method)
			}
		}
	}
	if MethodRace.String() != "race" {
		t.Fatal("race string")
	}
}

func TestMethodNRAAgreesAtEngineLevel(t *testing.T) {
	eng := testEngine(t, 20, 91)
	const q = `//article//sec[about(., ontologies case study)]`
	if _, err := eng.Materialize(q, index.KindRPL); err != nil {
		t.Fatal(err)
	}
	ok, err := eng.CanUse(q, MethodNRA)
	if err != nil || !ok {
		t.Fatalf("NRA unavailable after RPL materialize: %v, %v", ok, err)
	}
	era, err := eng.Query(q, 15, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	nra, err := eng.Query(q, 15, MethodNRA)
	if err != nil {
		t.Fatal(err)
	}
	if nra.Method != MethodNRA || MethodNRA.String() != "nra" {
		t.Fatalf("method = %v", nra.Method)
	}
	if len(era.Answers) != len(nra.Answers) {
		t.Fatalf("answers %d vs %d", len(era.Answers), len(nra.Answers))
	}
	for i := range era.Answers {
		if era.Answers[i] != nra.Answers[i] {
			t.Fatalf("answer %d differs:\n%+v\n%+v", i, era.Answers[i], nra.Answers[i])
		}
	}
	if nra.Stats.RandomAccesses != 0 {
		t.Fatalf("NRA did %d random accesses", nra.Stats.RandomAccesses)
	}
}

func TestEngineBackup(t *testing.T) {
	eng := testEngine(t, 12, 111)
	const q = `//article//sec[about(., ontologies case study)]`
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(q, 5, MethodMerge)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/copy.trexdb"
	if err := eng.Backup(path); err != nil {
		t.Fatal(err)
	}
	copyEng, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer copyEng.Close()
	got, err := copyEng.Query(q, 5, MethodMerge)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("backup answers = %d, want %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if got.Answers[i] != want.Answers[i] {
			t.Fatalf("backup answer %d differs", i)
		}
	}
}
