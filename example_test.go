package trex_test

import (
	"fmt"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

// ExampleEngine_Query builds a tiny collection and runs a NEXI query.
func ExampleEngine_Query() {
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><sec>xml retrieval systems</sec><sec>other topic</sec></article>`)},
		{ID: 1, Data: []byte(`<article><sec>databases</sec></article>`)},
	}}
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	res, err := eng.Query(`//article//sec[about(., xml retrieval)]`, 10, trex.MethodAuto)
	if err != nil {
		panic(err)
	}
	fmt.Printf("answers: %d, first from doc %d at %s\n",
		res.TotalAnswers, res.Answers[0].Doc, res.Answers[0].Path)
	// Output:
	// answers: 1, first from doc 0 at /article/sec
}

// ExampleEngine_Materialize enables the top-k strategies for a query.
func ExampleEngine_Materialize() {
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><sec>ranked retrieval</sec></article>`)},
	}}
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	const q = `//article//sec[about(., ranked retrieval)]`
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		panic(err)
	}
	res, err := eng.Query(q, 3, trex.MethodAuto)
	if err != nil {
		panic(err)
	}
	fmt.Printf("auto picked %s\n", res.Method)
	// Output:
	// auto picked ta
}

// ExampleEngine_Explain shows the evaluation plan for a query.
func ExampleEngine_Explain() {
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><sec>topics here</sec></article>`)},
	}}
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	ex, err := eng.Explain(`//article[about(., topics)]//sec[about(., here)]`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sids=%d terms=%d small-k method=%s\n",
		ex.NumSIDs, ex.NumTerms, ex.MethodAtSmallK)
	// Output:
	// sids=2 terms=2 small-k method=era
}
