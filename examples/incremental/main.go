// Incremental: TReX index maintenance. Documents are appended to a live
// collection; the structural summary grows for unseen paths, the base
// indexes are updated in place, and stale redundant lists are reclaimed —
// then re-materialized by the self-managing machinery on demand.
package main

import (
	"fmt"
	"log"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

func main() {
	log.SetFlags(0)

	full := corpus.GenerateIEEE(120, 2024)
	initial := &corpus.Collection{
		Style:   full.Style,
		Aliases: full.Aliases,
		Docs:    full.Docs[:80],
	}
	eng, err := trex.CreateMemory(initial, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	const q = `//article//sec[about(., ontologies case study)]`
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Query(q, 0, trex.MethodAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: 80 docs, %d summary nodes, query answers=%d via %s\n",
		eng.Summary().NumNodes(), res.TotalAnswers, res.Method)

	// Append 40 more documents in two batches.
	for _, batch := range [][]corpus.Document{full.Docs[80:100], full.Docs[100:]} {
		as, err := eng.AddDocuments(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended %d docs: +%d elements, +%d postings, %d new sids, %d stale list entries reclaimed\n",
			as.Docs, as.Elements, as.Postings, as.NewSIDs, as.DroppedListEntries)
		res, err := eng.Query(q, 0, trex.MethodAuto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  query now answers=%d via %s (redundant lists were invalidated)\n",
			res.TotalAnswers, res.Method)
	}

	// Re-enable the fast paths and confirm agreement.
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		log.Fatal(err)
	}
	era, err := eng.Query(q, 10, trex.MethodERA)
	if err != nil {
		log.Fatal(err)
	}
	mrg, err := eng.Query(q, 10, trex.MethodMerge)
	if err != nil {
		log.Fatal(err)
	}
	for i := range era.Answers {
		if era.Answers[i] != mrg.Answers[i] {
			log.Fatalf("methods disagree after maintenance at rank %d", i)
		}
	}
	fmt.Printf("after re-materialization: merge agrees with era on all top answers\n")
}
