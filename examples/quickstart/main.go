// Quickstart: generate a small synthetic IEEE-style collection, build a
// TReX engine in memory, and run a NEXI query with structural constraints
// and keywords.
package main

import (
	"fmt"
	"log"

	"trex"
	"trex/internal/corpus"
)

func main() {
	log.SetFlags(0)

	// 1. A collection. Real deployments load XML from disk
	//    (corpus.LoadDir); here we generate 200 synthetic journal
	//    articles with the paper's topic words planted.
	col := corpus.GenerateIEEE(200, 42)

	// 2. An engine: builds the alias incoming summary, the Elements table
	//    and the inverted lists.
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Printf("collection: %d docs, summary: %d nodes\n",
		len(col.Docs), eng.Summary().NumNodes())

	// 3. A NEXI query: sections about ontologies case studies, inside
	//    articles about ontologies.
	const q = `//article[about(., ontologies)]//sec[about(., ontologies case study)]`
	res, err := eng.Query(q, 5, trex.MethodAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("method=%s  translation: %d sids, %d terms  answers: %d\n\n",
		res.Method, res.Translation.NumSIDs(), res.Translation.NumTerms(), res.TotalAnswers)
	for i, a := range res.Answers {
		fmt.Printf("%d. score=%.4f doc=%d span=[%d,%d) path=%s\n",
			i+1, a.Score, a.Doc, a.Start, a.End, a.Path)
	}

	// 4. Inspect the top answer's actual XML.
	if len(res.Answers) > 0 {
		a := res.Answers[0]
		frag := col.Docs[a.Doc].Data[a.Start:a.End]
		if len(frag) > 200 {
			frag = frag[:200]
		}
		fmt.Printf("\ntop answer fragment: %s...\n", frag)
	}
}
