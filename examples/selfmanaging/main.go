// Selfmanaging: the engine measures a workload of top-k queries, decides
// under a disk budget which redundant lists (RPLs for TA, ERPLs for
// Merge) to keep, and reclaims the rest — Section 4 of the paper, with
// both the greedy 2-approximation and the exact boolean-LP solver.
package main

import (
	"fmt"
	"log"

	"trex"
	"trex/internal/corpus"
)

func main() {
	log.SetFlags(0)

	col := corpus.GenerateIEEE(250, 99)
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A workload in the paper's sense: queries with frequencies.
	workload := []trex.WorkloadQuery{
		{NEXI: `//article[about(., ontologies)]//sec[about(., ontologies case study)]`, Freq: 0.40, K: 10},
		{NEXI: `//sec[about(., code signing verification)]`, Freq: 0.25, K: 10},
		{NEXI: `//article//sec[about(., introduction information retrieval)]`, Freq: 0.20, K: 100},
		{NEXI: `//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`, Freq: 0.15, K: 5},
	}

	// First, learn the full footprint with an unlimited budget.
	full, err := eng.SelfManage(workload, 1<<60, trex.SolverGreedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full materialization: %d bytes across %d lists, saving %.0f cost units\n\n",
		full.Plan.DiskUsed, len(full.KeptLists), full.Plan.Saving)

	// Now sweep the disk budget and watch the plans adapt.
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.1} {
		budget := int64(float64(full.Plan.DiskUsed) * frac)
		report, err := eng.SelfManage(workload, budget, trex.SolverGreedy)
		if err != nil {
			log.Fatal(err)
		}
		lp, err := eng.SelfManage(workload, budget, trex.SolverLP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %3.0f%% (%d bytes):\n", frac*100, budget)
		fmt.Printf("  greedy: saving=%.0f disk=%d\n", report.Plan.Saving, report.Plan.DiskUsed)
		fmt.Printf("  lp:     saving=%.0f disk=%d\n", lp.Plan.Saving, lp.Plan.DiskUsed)
		for i, q := range workload {
			fmt.Printf("    %-6s f=%.2f %s\n", report.Plan.Assignments[i], q.Freq, q.NEXI)
		}
		// With lists dropped, queries still answer correctly via auto
		// method selection (falling back to ERA where needed).
		res, err := eng.Query(workload[0].NEXI, 5, trex.MethodAuto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q1 now evaluates via %s (%d answers)\n\n", res.Method, res.TotalAnswers)
	}
}
