// Strategies: the paper's central claim is that no single retrieval
// method dominates. This example materializes the redundant top-k lists
// for one query and compares ERA, TA, ITA and Merge across k — a
// miniature of Figures 4-6.
package main

import (
	"fmt"
	"log"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

func main() {
	log.SetFlags(0)

	col := corpus.GenerateIEEE(300, 7)
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The paper's Query 260 analogue: a broad wildcard query below bdy.
	const q = `//bdy//*[about(., model checking state space explosion)]`

	// ERA works immediately; TA needs RPLs and Merge needs ERPLs.
	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n\n", q)
	fmt.Printf("%8s %12s %12s %12s %12s %8s\n", "k", "ERA", "TA", "ITA", "Merge", "answers")
	for _, k := range []int{1, 10, 100, 1000} {
		era, err := eng.Query(q, k, trex.MethodERA)
		if err != nil {
			log.Fatal(err)
		}
		ta, err := eng.Query(q, k, trex.MethodTA)
		if err != nil {
			log.Fatal(err)
		}
		mrg, err := eng.Query(q, k, trex.MethodMerge)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12v %12v %12v %12v %8d\n",
			k,
			era.Stats.Elapsed.Round(10*time.Microsecond),
			ta.Stats.Elapsed.Round(10*time.Microsecond),
			ta.Stats.ITATime().Round(10*time.Microsecond),
			mrg.Stats.Elapsed.Round(10*time.Microsecond),
			mrg.TotalAnswers)

		// All strategies rank identically.
		for i := range era.Answers {
			if era.Answers[i] != ta.Answers[i] || era.Answers[i] != mrg.Answers[i] {
				log.Fatalf("strategies disagree at rank %d", i)
			}
		}
	}
	fmt.Println("\nall strategies returned identical rankings; they differ only in cost")
	fmt.Println("(TA reads score-ordered RPLs and stops early; Merge sweeps ERPLs;")
	fmt.Println(" ERA scans the base posting lists against every extent)")
}
