// Topics: evaluate an INEX-style topics file end to end — the workflow of
// an INEX participant: load a collection, parse the topic castitles, run
// each as a NEXI query, and print a run file (topic, rank, doc, score).
package main

import (
	"fmt"
	"log"

	"trex"
	"trex/internal/corpus"
	"trex/internal/nexi"
)

const topicsXML = `<inex_topics>
  <inex_topic topic_id="202">
    <castitle>//article[about(., ontologies)]//sec[about(., ontologies case study)]</castitle>
    <description>Sections with ontology case studies inside articles about ontologies.</description>
  </inex_topic>
  <inex_topic topic_id="260">
    <castitle>//bdy//*[about(., model checking state space explosion)]</castitle>
  </inex_topic>
  <inex_topic topic_id="233">
    <castitle>//article[about(.//bdy, synthesizers) and about(.//bdy, music)]</castitle>
  </inex_topic>
</inex_topics>`

func main() {
	log.SetFlags(0)

	col := corpus.GenerateIEEE(200, 77)
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	topics, err := nexi.ParseTopics([]byte(topicsXML))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d topics\n\n", len(topics))
	// A TREC/INEX-style run file: topic, rank, element, score.
	for _, tp := range topics {
		if tp.Err != nil {
			log.Printf("topic %s skipped: %v", tp.ID, tp.Err)
			continue
		}
		res, err := eng.Query(tp.Raw, 5, trex.MethodAuto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# topic %s: %s\n", tp.ID, tp.Raw)
		for i, a := range res.Answers {
			fmt.Printf("%s Q0 doc%04d:%s %d %.4f trex\n",
				tp.ID, a.Doc, a.Path, i+1, a.Score)
		}
		fmt.Println()
	}
}
