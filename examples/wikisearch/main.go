// Wikisearch: the Wikipedia-style collection with phrase queries and
// negated terms — the paper's Query 290 ("genetic algorithm") and Query
// 292 (Renaissance painting, excluding French and German works).
package main

import (
	"fmt"
	"log"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

func main() {
	log.SetFlags(0)

	col := corpus.GenerateWiki(600, 3)
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	queries := []struct {
		label string
		nexi  string
		k     int
	}{
		{
			label: "Query 290: articles about genetic algorithms (phrase)",
			nexi:  `//article[about(., "genetic algorithm")]`,
			k:     5,
		},
		{
			label: "Query 292: Renaissance figures, not French or German (negation)",
			nexi:  `//article//figure[about(., renaissance painting italian flemish -french -german)]`,
			k:     5,
		},
	}
	for _, q := range queries {
		if _, err := eng.Materialize(q.nexi, index.KindRPL, index.KindERPL); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Query(q.nexi, q.k, trex.MethodAuto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  %s\n  method=%s answers=%d (of %d)\n",
			q.label, q.nexi, res.Method, len(res.Answers), res.TotalAnswers)
		for i, a := range res.Answers {
			fmt.Printf("  %d. score=%.4f doc=%d %s\n", i+1, a.Score, a.Doc, a.Path)
		}
		fmt.Println()
	}
}
