package trex

import (
	"context"
	"fmt"
	"strings"

	"trex/internal/index"
	"trex/internal/planner"
	"trex/internal/telemetry"
	"trex/internal/translate"
)

// Explanation describes how the engine would evaluate a query, without
// running it: the translation, which redundant lists are materialized,
// and the method auto-selection would pick per k.
type Explanation struct {
	Query string
	// NumSIDs / NumTerms are the translation sizes (Table 1's columns).
	NumSIDs  int
	NumTerms int
	// Clauses, one line per about().
	Clauses []string
	// TargetPaths are the answer extents' path expressions.
	TargetPaths []string
	// RPLCovered / ERPLCovered report redundant-list availability.
	RPLCovered  bool
	ERPLCovered bool
	// MethodAtSmallK / MethodAtLargeK is what MethodAuto would run.
	MethodAtSmallK Method
	MethodAtLargeK Method
	// ListVolume is the total number of materialized RPL entries the
	// query's (term, sid) lists hold (TA's maximum read depth).
	ListVolume int
	// ListBytes is the on-disk footprint (key+value bytes) of those RPL
	// lists plus the clause's ERPL lists — exact for block-encoded lists,
	// since the catalog records real encoded sizes.
	ListBytes int64
	// PlanFeatures is the feature vector the query planner derives for
	// this query (at k = DefaultK), and Plan the resulting decision with
	// per-candidate cost estimates. Both are nil when the planner is
	// disabled. Computing them reads only the engine's stat cache — no
	// cursors are opened and no pages are touched.
	PlanFeatures *planner.Features
	Plan         *planner.Decision
	// Trace breaks the analysis into timed spans with I/O attribution
	// (nil when telemetry is disabled).
	Trace *telemetry.Trace
}

// Explain analyzes a query without evaluating it.
func (e *Engine) Explain(src string) (*Explanation, error) {
	return e.ExplainCtx(context.Background(), src)
}

// ExplainCtx is Explain with a caller context. Analysis is cheap (no
// retrieval runs), so the context is only consulted between phases: a
// cancellation or expired deadline aborts with the context's error
// rather than producing a partial explanation.
func (e *Engine) ExplainCtx(ctx context.Context, src string) (*Explanation, error) {
	e.beginRead()
	defer e.endRead()

	var trc *telemetry.Trace
	var ioPrev index.IOStat
	span := -1
	if e.met != nil {
		trc = telemetry.NewTrace(src, 0)
		ioPrev = e.store.IOStats()
		span = trc.StartSpan("translate")
	}
	tr, hit, err := e.translateModeHit(src, translate.ModeVague)
	if trc != nil {
		sp, now := e.endSpanIO(trc, span, ioPrev)
		sp.Cached = hit
		ioPrev = now
		span = trc.StartSpan("analyze")
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sids, terms := flatten(tr)
	ex := &Explanation{
		Query:    src,
		NumSIDs:  tr.NumSIDs(),
		NumTerms: tr.NumTerms(),
	}
	for i := range tr.Clauses {
		c := &tr.Clauses[i]
		role := "support"
		if c.IsTarget {
			role = "target"
		}
		ex.Clauses = append(ex.Clauses, fmt.Sprintf(
			"about #%d (%s): pattern //%s -> %d sids, terms %v",
			i+1, role, strings.Join(c.Pattern, "//"), len(c.SIDs),
			append(c.PositiveTerms(), prefixedAll("-", c.NegativeTerms())...)))
	}
	for _, sid := range tr.TargetSIDs {
		if n := e.sum.NodeBySID(int(sid)); n != nil {
			ex.TargetPaths = append(ex.TargetPaths, n.XPathExpr())
		}
	}
	if ex.RPLCovered, err = e.store.CoveredCached(index.KindRPL, terms, sids); err != nil {
		return nil, err
	}
	if ex.ERPLCovered, err = e.store.CoveredCached(index.KindERPL, terms, sids); err != nil {
		return nil, err
	}
	if ex.MethodAtSmallK, err = e.methodAt(sids, terms, 1); err != nil {
		return nil, err
	}
	if ex.MethodAtLargeK, err = e.methodAt(sids, terms, 1_000_000); err != nil {
		return nil, err
	}
	if p := e.pln; p != nil {
		if f, ferr := e.planFeatures(sids, terms, DefaultK); ferr == nil {
			d := p.model.Plan(f)
			ex.PlanFeatures = &f
			ex.Plan = &d
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, kind := range []index.ListKind{index.KindRPL, index.KindERPL} {
		covered := ex.RPLCovered
		if kind == index.KindERPL {
			covered = ex.ERPLCovered
		}
		if !covered {
			continue
		}
		for _, t := range terms {
			for _, sid := range sids {
				ls, err := e.store.ListStat(kind, t, sid)
				if err != nil {
					return nil, err
				}
				if kind == index.KindRPL {
					ex.ListVolume += ls.Entries
				}
				ex.ListBytes += ls.Bytes
			}
		}
	}
	if trc != nil {
		e.endSpanIO(trc, span, ioPrev)
		trc.Finish()
		ex.Trace = trc
	}
	return ex, nil
}

// methodAt resolves what MethodAuto would run at k: the planner's
// decision when enabled (cold-starting to the static heuristic while
// uncalibrated), the static heuristic alone otherwise.
func (e *Engine) methodAt(sids []uint32, terms []string, k int) (Method, error) {
	if p := e.pln; p != nil {
		if f, err := e.planFeatures(sids, terms, k); err == nil {
			return toEngineMethod(p.model.Plan(f).Method), nil
		}
	}
	return e.pick(sids, terms, k)
}

func prefixedAll(prefix string, words []string) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = prefix + w
	}
	return out
}

// String renders a human-readable plan.
func (ex *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", ex.Query)
	fmt.Fprintf(&sb, "translation: %d sids, %d terms\n", ex.NumSIDs, ex.NumTerms)
	for _, c := range ex.Clauses {
		fmt.Fprintf(&sb, "  %s\n", c)
	}
	fmt.Fprintf(&sb, "targets: %s\n", strings.Join(ex.TargetPaths, ", "))
	fmt.Fprintf(&sb, "lists: RPL covered=%v ERPL covered=%v volume=%d entries, %d bytes on disk\n",
		ex.RPLCovered, ex.ERPLCovered, ex.ListVolume, ex.ListBytes)
	fmt.Fprintf(&sb, "auto method: k small -> %s, k large -> %s\n",
		ex.MethodAtSmallK, ex.MethodAtLargeK)
	if d := ex.Plan; d != nil {
		mode := "calibrated"
		if d.ColdStart {
			mode = "cold-start"
		}
		fmt.Fprintf(&sb, "planner (%s, k=%d): %s, predicted cost %.0f", mode, DefaultK, d.Method, d.Cost)
		if d.RunnerUp >= 0 {
			fmt.Fprintf(&sb, "; runner-up %s, cost %.0f", d.RunnerUp, d.RunnerUpCost)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
