package trex

import (
	"strings"
	"testing"

	"trex/internal/index"
)

func TestExplain(t *testing.T) {
	eng := testEngine(t, 20, 44)
	const q = `//article[about(., ontologies)]//sec[about(., ontologies case study -noise)]`
	ex, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumTerms != 5 { // ontologies + ontologies case study + noise
		t.Fatalf("NumTerms = %d, want 5", ex.NumTerms)
	}
	if len(ex.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(ex.Clauses))
	}
	if !strings.Contains(ex.Clauses[0], "support") || !strings.Contains(ex.Clauses[1], "target") {
		t.Fatalf("clause roles wrong: %v", ex.Clauses)
	}
	if !strings.Contains(ex.Clauses[1], "-noise") {
		t.Fatalf("negated term missing: %v", ex.Clauses[1])
	}
	if ex.RPLCovered || ex.ERPLCovered {
		t.Fatal("coverage claimed before materialization")
	}
	if ex.MethodAtSmallK != MethodERA || ex.MethodAtLargeK != MethodERA {
		t.Fatalf("methods = %v, %v", ex.MethodAtSmallK, ex.MethodAtLargeK)
	}
	if len(ex.TargetPaths) == 0 {
		t.Fatal("no target paths")
	}
	for _, p := range ex.TargetPaths {
		if !strings.HasSuffix(p, "/sec") {
			t.Fatalf("target path %q not a sec extent", p)
		}
	}

	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	ex2, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ex2.RPLCovered || !ex2.ERPLCovered {
		t.Fatal("coverage not reflected after materialization")
	}
	if ex2.MethodAtSmallK != MethodTA || ex2.MethodAtLargeK != MethodMerge {
		t.Fatalf("methods = %v, %v", ex2.MethodAtSmallK, ex2.MethodAtLargeK)
	}
	if ex2.ListVolume <= 0 {
		t.Fatalf("ListVolume = %d", ex2.ListVolume)
	}
	s := ex2.String()
	for _, want := range []string{"translation:", "targets:", "auto method:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
	if _, err := eng.Explain(`broken [`); err == nil {
		t.Fatal("bad query accepted")
	}
}
