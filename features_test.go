package trex

import (
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/score"
	"trex/internal/summary"
	"trex/internal/translate"
)

func TestStrictModeQuery(t *testing.T) {
	// Build without aliases so strict and vague differ on synonym tags.
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><bdy><sec><p>finding</p></sec><ss1><p>finding</p></ss1></bdy></article>`)},
	}}
	col.Aliases = map[string]string{"ss1": "sec"}
	eng, err := CreateMemory(col, &Options{
		SummaryKind: summary.KindIncoming,
		Aliases:     map[string]string{}, // no aliasing in the summary
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Strict //article//sec: only the literal sec matches.
	strict, err := eng.QueryOpts(`//article//sec[about(., finding)]`,
		QueryOptions{K: 10, Method: MethodERA, Mode: translate.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	if strict.TotalAnswers != 1 {
		t.Fatalf("strict answers = %d, want 1", strict.TotalAnswers)
	}
	// Strict //article//ss1 matches the literal ss1 (no-alias summary).
	strictSS1, err := eng.QueryOpts(`//article//ss1[about(., finding)]`,
		QueryOptions{K: 10, Method: MethodERA, Mode: translate.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	if strictSS1.TotalAnswers != 1 {
		t.Fatalf("strict ss1 answers = %d, want 1", strictSS1.TotalAnswers)
	}
}

func TestPhraseBonusReordersAdjacency(t *testing.T) {
	col := &corpus.Collection{Docs: []corpus.Document{
		// Doc 0: words adjacent (true phrase).
		{ID: 0, Data: []byte(`<article><p>research on genetic algorithm design</p></article>`)},
		// Doc 1: both words present but apart; extra repetitions push its
		// bag-of-words score above doc 0.
		{ID: 1, Data: []byte(`<article><p>genetic research genetic mutation ` +
			`uses one algorithm then another algorithm and a third algorithm</p></article>`)},
	}}
	eng, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const q = `//article[about(., "genetic algorithm")]`
	plain, err := eng.Query(q, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(plain.Answers))
	}
	if plain.Answers[0].Doc != 1 {
		t.Fatalf("setup broken: without bonus doc 1 should lead (tf advantage); got doc %d", plain.Answers[0].Doc)
	}
	boosted, err := eng.QueryOpts(q, QueryOptions{K: 10, Method: MethodERA, PhraseBonus: 5})
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Answers[0].Doc != 0 {
		t.Fatalf("phrase bonus did not promote the adjacent occurrence: %+v", boosted.Answers)
	}
}

func TestSnippet(t *testing.T) {
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><fm><atl>padding words here</atl></fm>` +
			`<sec><p>before before the ontologies keyword appears right here after after</p></sec></article>`)},
	}}
	eng, err := CreateMemory(col, &Options{StoreDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query(`//article//sec[about(., ontologies)]`, 1, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	snip, err := eng.Snippet(res.Answers[0], []string{"ontologies"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snip, "ontologies") {
		t.Fatalf("snippet %q does not contain the term", snip)
	}
	if strings.ContainsAny(snip, "<>") {
		t.Fatalf("snippet %q contains markup", snip)
	}
	// Without stored documents, Snippet reports a usable error.
	eng2, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, err := eng2.Snippet(res.Answers[0], []string{"ontologies"}, 60); err == nil {
		t.Fatal("snippet without stored documents succeeded")
	}
	// Term not found: snippet still returns leading text.
	snip, err = eng.Snippet(res.Answers[0], []string{"absentword"}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if snip == "" {
		t.Fatal("empty fallback snippet")
	}
	// Bad span errors.
	bad := res.Answers[0]
	bad.End = 1 << 30
	if _, err := eng.Snippet(bad, nil, 40); err == nil {
		t.Fatal("bad span accepted")
	}
}

func TestQueryOptsDefaults(t *testing.T) {
	eng := testEngine(t, 10, 2)
	a, err := eng.Query(`//article[about(., ontologies)]`, 5, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.QueryOpts(`//article[about(., ontologies)]`, QueryOptions{K: 5, Method: MethodERA})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != len(b.Answers) {
		t.Fatal("QueryOpts defaults differ from Query")
	}
	for i := range a.Answers {
		if a.Answers[i] != b.Answers[i] {
			t.Fatal("QueryOpts defaults differ from Query")
		}
	}
}

func TestPagination(t *testing.T) {
	eng := testEngine(t, 20, 121)
	const q = `//article//sec[about(., ontologies case study)]`
	all, err := eng.Query(q, 0, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if all.TotalAnswers < 6 {
		t.Skipf("need more answers, got %d", all.TotalAnswers)
	}
	page1, err := eng.QueryOpts(q, QueryOptions{K: 3, Method: MethodERA})
	if err != nil {
		t.Fatal(err)
	}
	page2, err := eng.QueryOpts(q, QueryOptions{K: 3, Method: MethodERA, Offset: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Answers) != 3 || len(page2.Answers) != 3 {
		t.Fatalf("page sizes = %d, %d", len(page1.Answers), len(page2.Answers))
	}
	for i := 0; i < 3; i++ {
		if page1.Answers[i] != all.Answers[i] {
			t.Fatalf("page1[%d] mismatch", i)
		}
		if page2.Answers[i] != all.Answers[i+3] {
			t.Fatalf("page2[%d] mismatch", i)
		}
	}
	// Offset beyond the answer set yields an empty page, not an error.
	deep, err := eng.QueryOpts(q, QueryOptions{K: 3, Method: MethodERA, Offset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.Answers) != 0 {
		t.Fatalf("deep page = %d answers", len(deep.Answers))
	}
	// Pagination works with TA's pushed-down k too.
	if _, err := eng.Materialize(q, index.KindRPL); err != nil {
		t.Fatal(err)
	}
	taPage2, err := eng.QueryOpts(q, QueryOptions{K: 3, Method: MethodTA, Offset: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range taPage2.Answers {
		if taPage2.Answers[i] != page2.Answers[i] {
			t.Fatalf("ta page2[%d] mismatch", i)
		}
	}
}

func TestStopwords(t *testing.T) {
	col := &corpus.Collection{Docs: []corpus.Document{
		{ID: 0, Data: []byte(`<article><sec>the retrieval of the data</sec></article>`)},
		{ID: 1, Data: []byte(`<article><sec>the the the the the</sec></article>`)},
	}}
	eng, err := CreateMemory(col, &Options{Stopwords: index.DefaultStopwords})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// "the" is not indexed at all.
	df, err := eng.Store().TermDF("the")
	if err != nil || df != 0 {
		t.Fatalf("DF(the) = %d, %v", df, err)
	}
	// A query mixing a stopword with a real term matches on the real term.
	res, err := eng.Query(`//article//sec[about(., the retrieval)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAnswers != 1 || res.Answers[0].Doc != 0 {
		t.Fatalf("answers = %+v", res.Answers)
	}
	// A stopword-only query matches nothing.
	res, err = eng.Query(`//article//sec[about(., the of)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAnswers != 0 {
		t.Fatalf("stopword-only query matched %d", res.TotalAnswers)
	}
	// The set persists: appended docs are filtered identically.
	if _, err := eng.AddDocuments([]corpus.Document{
		{ID: 2, Data: []byte(`<article><sec>the retrieval again</sec></article>`)},
	}); err != nil {
		t.Fatal(err)
	}
	df, err = eng.Store().TermDF("the")
	if err != nil || df != 0 {
		t.Fatalf("DF(the) after append = %d, %v", df, err)
	}
	res, err = eng.Query(`//article//sec[about(., retrieval)]`, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAnswers != 2 {
		t.Fatalf("retrieval matches = %d, want 2", res.TotalAnswers)
	}
}

func TestScoringModelSelection(t *testing.T) {
	col := corpus.GenerateIEEE(15, 131)
	bm25, err := CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bm25.Close()
	lm, err := CreateMemory(col, &Options{Scoring: score.ModelLMDirichlet})
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	const q = `//article//sec[about(., ontologies case study)]`
	a, err := bm25.Query(q, 0, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lm.Query(q, 0, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	// Same matches under both models.
	if a.TotalAnswers != b.TotalAnswers {
		t.Fatalf("answer counts differ: %d vs %d", a.TotalAnswers, b.TotalAnswers)
	}
	// Scores differ (different formulas).
	if a.Answers[0].Score == b.Answers[0].Score {
		t.Fatal("models produced identical top scores — model not applied")
	}
	// Methods still agree among themselves under the LM model.
	if _, err := lm.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	era, err := lm.Query(q, 10, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodTA, MethodMerge, MethodNRA} {
		got, err := lm.Query(q, 10, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range era.Answers {
			if era.Answers[i] != got.Answers[i] {
				t.Fatalf("%v answer %d differs under LM model", m, i)
			}
		}
	}
	// Model persists across reopen.
	path := t.TempDir() + "/lm.trexdb"
	if err := lm.Backup(path); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	model, err := re.Store().ScoringModel()
	if err != nil || model != score.ModelLMDirichlet {
		t.Fatalf("persisted model = %v, %v", model, err)
	}
}
