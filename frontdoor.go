package trex

import (
	"time"

	"trex/internal/frontdoor"
)

// FrontDoorOptions configures the engine's high-QPS front door: bounded
// admission (concurrency cap + waiting room + load shedding), a default
// per-query deadline, and an epoch-invalidated result cache. The zero
// value (and a nil pointer in Options) disables all three — the query
// path then pays only nil checks.
type FrontDoorOptions struct {
	// MaxInflight caps concurrently executing queries; arrivals beyond
	// it wait in the bounded queue. 0 disables admission control
	// entirely (unbounded concurrency, the pre-front-door behavior).
	MaxInflight int
	// QueueDepth is the waiting room beyond MaxInflight. An arrival
	// finding it full is rejected immediately with
	// frontdoor.ErrShed (HTTP 429 from /search).
	QueueDepth int
	// QueueTimeout bounds a queued query's wait; waiting it out returns
	// frontdoor.ErrQueueTimeout (HTTP 503 from /search). <= 0 uses
	// frontdoor.DefaultQueueTimeout.
	QueueTimeout time.Duration
	// Deadline is the per-query evaluation budget applied when the
	// caller's context carries no deadline of its own. When it expires
	// the strategies stop at the next block boundary and the query
	// returns its best-effort ranking with Result.Approximate set.
	// 0 = no default deadline.
	Deadline time.Duration
	// CacheEntries bounds the result cache (number of cached rankings,
	// sharded LRU). 0 disables caching. Entries are keyed by the query
	// and every ranking-relevant option, and invalidated atomically by
	// any index write via the engine write epoch.
	CacheEntries int
}

// initFrontDoor wires the admission gate and result cache per opts and
// seeds the write epoch from the persisted list epoch (PR 6): cache
// keys start from the on-disk epoch, and every exclusive maintenance
// step bumps the in-memory epoch from there. Called once from
// build/Open before the engine is shared.
func (e *Engine) initFrontDoor(opts *FrontDoorOptions) error {
	ep, err := e.store.ListEpoch()
	if err != nil {
		return err
	}
	e.writeEpoch.Store(ep)
	if opts == nil {
		return nil
	}
	e.fd = *opts
	if opts.MaxInflight > 0 {
		e.adm = frontdoor.NewAdmission(frontdoor.AdmissionOptions{
			MaxInflight:  opts.MaxInflight,
			QueueDepth:   opts.QueueDepth,
			QueueTimeout: opts.QueueTimeout,
		})
	}
	if opts.CacheEntries > 0 {
		e.rcache = frontdoor.NewCache(opts.CacheEntries)
	}
	if m := e.met; m != nil && (e.adm != nil || e.rcache != nil) {
		registerFrontdoorMetrics(m, e.adm, e.rcache)
	}
	return nil
}

// Admission exposes the admission gate (nil when MaxInflight is 0).
// Read-only for status; tests use it to occupy slots deterministically.
func (e *Engine) Admission() *frontdoor.Admission { return e.adm }

// ResultCache exposes the result cache (nil when CacheEntries is 0).
func (e *Engine) ResultCache() *frontdoor.Cache { return e.rcache }

// WriteEpoch returns the engine's current write epoch: seeded from the
// persisted list epoch, bumped by every exclusive maintenance step
// (each Materialize/AddDocuments/selfManage sub-step), and the key that
// decides whether a cached result is still current.
func (e *Engine) WriteEpoch() uint64 { return e.writeEpoch.Load() }

// registerFrontdoorMetrics exposes the front door's counters as func
// metrics in the trex_* registry, mirroring registerStorageMetrics: the
// admission gate and cache maintain their own atomics, so the scrape
// path reads them instead of double-counting. The queue-wait histogram
// is the one instrument the query path feeds directly.
func registerFrontdoorMetrics(m *engineMetrics, adm *frontdoor.Admission, cache *frontdoor.Cache) {
	reg := m.reg
	if adm != nil {
		m.queueWait = reg.Histogram("trex_frontdoor_queue_wait_seconds",
			"Time admitted queries spent waiting for an execution slot.", nil, nil)
		reg.CounterFunc("trex_frontdoor_admitted_total",
			"Queries that got an execution slot.", nil, adm.Admitted)
		reg.CounterFunc("trex_frontdoor_shed_total",
			"Queries rejected immediately because the admission queue was full.", nil, adm.Shed)
		reg.CounterFunc("trex_frontdoor_queue_timeouts_total",
			"Queries that waited out the admission queue timeout.", nil, adm.TimedOut)
		reg.GaugeFunc("trex_frontdoor_inflight",
			"Queries currently holding an execution slot.", nil,
			func() float64 { return float64(adm.InFlight()) })
		reg.GaugeFunc("trex_frontdoor_queued",
			"Queries currently waiting for an execution slot.", nil,
			func() float64 { return float64(adm.Queued()) })
	}
	if cache != nil {
		reg.CounterFunc("trex_frontdoor_cache_hits_total",
			"Queries served from the result cache.", nil, cache.Hits)
		reg.CounterFunc("trex_frontdoor_cache_misses_total",
			"Result-cache lookups that missed (including invalidations).", nil, cache.Misses)
		reg.CounterFunc("trex_frontdoor_cache_evictions_total",
			"Cached results dropped by LRU pressure.", nil, cache.Evictions)
		reg.CounterFunc("trex_frontdoor_cache_invalidations_total",
			"Cached results dropped because a write moved the epoch past them.", nil, cache.Invalidations)
		reg.GaugeFunc("trex_frontdoor_cache_entries",
			"Results currently cached.", nil,
			func() float64 { return float64(cache.Len()) })
	}
}
