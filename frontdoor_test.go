package trex

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"trex/internal/corpus"
	"trex/internal/frontdoor"
	"trex/internal/index"
)

const fdQuery = `//article//sec[about(., ontologies case study)]`

// TestQueryDeadlineExpiredApproximate: an already-expired deadline is
// the degenerate budget — every strategy must stop at its first poll
// point and return a best-effort (possibly empty) ranking marked
// Approximate instead of an error, regardless of corpus size.
func TestQueryDeadlineExpiredApproximate(t *testing.T) {
	eng := testEngine(t, 30, 42)
	if _, err := eng.Materialize(fdQuery, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, m := range []Method{MethodERA, MethodTA, MethodNRA, MethodMerge} {
		res, err := eng.QueryCtx(ctx, fdQuery, 5, m)
		if err != nil {
			t.Fatalf("%v: expired deadline returned error %v, want approximate result", m, err)
		}
		if !res.Approximate {
			t.Fatalf("%v: expired deadline did not mark the result approximate", m)
		}
	}
	// Without a deadline the same queries are exact.
	for _, m := range []Method{MethodERA, MethodTA, MethodNRA, MethodMerge} {
		res, err := eng.Query(fdQuery, 5, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Approximate {
			t.Fatalf("%v: unbounded query marked approximate", m)
		}
	}
}

// TestQueryCancelPropagates: cancellation (unlike deadline expiry) is
// the caller walking away — it aborts with the context's error, never a
// partial result.
func TestQueryCancelPropagates(t *testing.T) {
	eng := testEngine(t, 20, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryCtx(ctx, fdQuery, 5, MethodERA); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFrontDoorDefaultDeadline: the configured default applies only
// when the caller brought no deadline of their own.
func TestFrontDoorDefaultDeadline(t *testing.T) {
	eng := testEngineOpts(t, 20, 7, &Options{
		FrontDoor: &FrontDoorOptions{Deadline: time.Nanosecond},
	})
	res, err := eng.Query(fdQuery, 5, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approximate {
		t.Fatal("1ns default deadline did not produce an approximate result")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err = eng.QueryCtx(ctx, fdQuery, 5, MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approximate {
		t.Fatal("caller's generous deadline was overridden by the tiny default")
	}
}

// TestResultCacheHitIdentical: a cache hit returns byte-identical
// answers, is marked Cached, and NoCache bypasses the cache entirely.
func TestResultCacheHitIdentical(t *testing.T) {
	eng := testEngineOpts(t, 30, 42, &Options{
		FrontDoor: &FrontDoorOptions{CacheEntries: 64},
	})
	opts := QueryOptions{K: 5, Method: MethodERA}
	fill, err := eng.QueryOpts(fdQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fill.Cached {
		t.Fatal("first query claims cached")
	}
	hit, err := eng.QueryOpts(fdQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if !reflect.DeepEqual(fill.Answers, hit.Answers) {
		t.Fatalf("cached answers differ:\nfill: %+v\nhit:  %+v", fill.Answers, hit.Answers)
	}
	bypass, err := eng.QueryOpts(fdQuery, QueryOptions{K: 5, Method: MethodERA, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if bypass.Cached {
		t.Fatal("NoCache query served from cache")
	}
	if !reflect.DeepEqual(fill.Answers, bypass.Answers) {
		t.Fatal("NoCache ranking differs from cached ranking")
	}
	if c := eng.ResultCache(); c.Hits() == 0 {
		t.Fatal("cache counted no hits")
	}
}

// TestWriteInvalidatesResultCache: any index write bumps the engine's
// write epoch, so entries filled before it can never be served after.
func TestWriteInvalidatesResultCache(t *testing.T) {
	full := corpus.GenerateIEEE(40, 42)
	eng, err := CreateMemory(&corpus.Collection{Docs: full.Docs[:25]}, &Options{
		FrontDoor: &FrontDoorOptions{CacheEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	opts := QueryOptions{K: 0, Method: MethodERA}
	if _, err := eng.QueryOpts(fdQuery, opts); err != nil { // fill
		t.Fatal(err)
	}
	epochBefore := eng.WriteEpoch()

	// Materialize is a write: it must flip the epoch even though it does
	// not change this query's ERA ranking.
	if _, err := eng.Materialize(fdQuery, index.KindRPL); err != nil {
		t.Fatal(err)
	}
	if eng.WriteEpoch() == epochBefore {
		t.Fatal("materialize did not advance the write epoch")
	}
	res, err := eng.QueryOpts(fdQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("stale cache entry served after materialize")
	}

	// A real content write: rankings after it must match an uncached
	// evaluation, not the pre-write fill.
	if _, err := eng.AddDocuments(full.Docs[25:]); err != nil {
		t.Fatal(err)
	}
	post, err := eng.QueryOpts(fdQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if post.Cached {
		t.Fatal("stale cache entry served after AddDocuments")
	}
	ref, err := eng.QueryOpts(fdQuery, QueryOptions{K: 0, Method: MethodERA, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(post.Answers, ref.Answers) {
		t.Fatal("post-write cached ranking differs from uncached evaluation")
	}
	if inv := eng.ResultCache().Invalidations(); inv == 0 {
		t.Fatal("cache counted no epoch invalidations")
	}
}

// TestAdmissionShedAndTimeout: with the only slot pinned, a depth-0
// queue sheds immediately and a depth-1 queue times out; releasing the
// slot restores service.
func TestAdmissionShedAndTimeout(t *testing.T) {
	shedEng := testEngineOpts(t, 20, 7, &Options{
		FrontDoor: &FrontDoorOptions{MaxInflight: 1, QueueDepth: 0},
	})
	release, _, err := shedEng.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shedEng.Query(fdQuery, 5, MethodERA); !errors.Is(err, frontdoor.ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	release()
	if _, err := shedEng.Query(fdQuery, 5, MethodERA); err != nil {
		t.Fatalf("query after release: %v", err)
	}

	toEng := testEngineOpts(t, 20, 7, &Options{
		FrontDoor: &FrontDoorOptions{MaxInflight: 1, QueueDepth: 1, QueueTimeout: 10 * time.Millisecond},
	})
	release, _, err = toEng.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := toEng.Query(fdQuery, 5, MethodERA); !errors.Is(err, frontdoor.ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
}

// TestNoStaleCacheHitUnderWrites hammers cached queries from several
// goroutines while a writer keeps flipping the epoch (AddDocuments
// changes rankings, Materialize changes lists). After every write the
// writer asserts the cached path agrees with an uncached evaluation —
// under -race this also proves the epoch/lock protocol has no windows.
func TestNoStaleCacheHitUnderWrites(t *testing.T) {
	full := corpus.GenerateIEEE(40, 11)
	eng, err := CreateMemory(&corpus.Collection{Docs: full.Docs[:20]}, &Options{
		FrontDoor: &FrontDoorOptions{CacheEntries: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	opts := QueryOptions{K: 0, Method: MethodAuto}
	done := make(chan struct{})
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			for {
				select {
				case <-done:
					errs <- nil
					return
				default:
				}
				if _, err := eng.QueryOpts(fdQuery, opts); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	rest := full.Docs[20:]
	for len(rest) > 0 {
		n := 4
		if n > len(rest) {
			n = len(rest)
		}
		if _, err := eng.AddDocuments(rest[:n]); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
		if _, err := eng.Materialize(fdQuery, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
		cached, err := eng.QueryOpts(fdQuery, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := eng.QueryOpts(fdQuery, QueryOptions{K: 0, Method: MethodAuto, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cached.Answers, ref.Answers) {
			t.Fatalf("stale ranking after write: cached %d answers, uncached %d",
				len(cached.Answers), len(ref.Answers))
		}
	}
	close(done)
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("reader: %v", err)
		}
	}
}
