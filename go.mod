module trex

go 1.22
