package trex

import (
	"fmt"
	"sync"
	"time"

	"trex/internal/corpus"
	"trex/internal/index"
)

// Ingestor streams documents into the engine while queries run. Add
// stages each document immediately — parsed and tokenized in the
// engine's corpus format, outside every engine lock, so malformed input
// is rejected up front and the expensive work never blocks queries —
// and Commit makes everything staged so far visible in one maintenance
// operation with a single storage flush. Until Commit, staged documents
// are invisible to queries and held only in memory: Abort (or dropping
// the Ingestor) rolls them back by construction.
//
// Document ids are assigned at Commit time, continuing the engine's
// dense sequence, so multiple Ingestors (or interleaved AddDocuments
// calls) compose; an Ingestor itself is not safe for concurrent use.
//
// The engine exports trex_ingest_staged_docs / trex_ingest_staged_bytes
// gauges aggregating all live Ingestors, and Commit feeds the
// freshness-lag histogram with the staged→committed age of every
// document in the batch.
type Ingestor struct {
	e *Engine

	mu       sync.Mutex
	pending  *index.StagedBatch
	stagedAt []time.Time
	closed   bool
}

// NewIngestor starts a streaming ingest session.
func (e *Engine) NewIngestor() *Ingestor {
	return &Ingestor{e: e}
}

// Add stages one document (bytes in the engine's corpus format). The
// document becomes visible at the next Commit.
func (ing *Ingestor) Add(data []byte) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closed {
		return fmt.Errorf("trex: ingestor is closed")
	}
	// Copy: callers commonly reuse their read buffer between Adds.
	doc := corpus.Document{Data: append([]byte(nil), data...)}
	b, err := index.StageDocuments(ing.e.format, []corpus.Document{doc})
	if err != nil {
		return err
	}
	if ing.pending == nil {
		ing.pending = b
	} else if err := ing.pending.Append(b); err != nil {
		return err
	}
	ing.stagedAt = append(ing.stagedAt, time.Now())
	ing.e.ingestStagedDocs.Add(1)
	ing.e.ingestStagedBytes.Add(b.Bytes)
	return nil
}

// StagedDocs reports how many documents are staged and uncommitted.
func (ing *Ingestor) StagedDocs() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.pending == nil {
		return 0
	}
	return len(ing.pending.Docs)
}

// StagedBytes reports the raw size of the staged, uncommitted documents.
func (ing *Ingestor) StagedBytes() int64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.pending == nil {
		return 0
	}
	return ing.pending.Bytes
}

// Commit makes every staged document visible: ids are assigned under
// the maintenance lock, the batch is applied, materialized lists are
// dropped (stored scores went stale), and the change is flushed
// atomically. On error the documents remain staged — a later Commit
// retries them — except for apply-phase errors, which are reported with
// the failing phase (see Engine.AddDocuments for the semantics).
func (ing *Ingestor) Commit() (*AddStats, error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closed {
		return nil, fmt.Errorf("trex: ingestor is closed")
	}
	if ing.pending == nil || len(ing.pending.Docs) == 0 {
		return &AddStats{}, nil
	}
	e := ing.e
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	next, err := e.store.LocalDocCount()
	if err != nil {
		return nil, err
	}
	ing.pending.Renumber(next)
	st, err := e.commitStaged(ing.pending, ing.stagedAt)
	if err != nil {
		return nil, err
	}
	ing.drainLocked()
	return st, nil
}

// Abort discards everything staged and closes the Ingestor.
func (ing *Ingestor) Abort() {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ing.drainLocked()
	ing.closed = true
}

// drainLocked zeroes the staged state and the engine-level gauges.
func (ing *Ingestor) drainLocked() {
	if ing.pending != nil {
		ing.e.ingestStagedDocs.Add(-int64(len(ing.pending.Docs)))
		ing.e.ingestStagedBytes.Add(-ing.pending.Bytes)
	}
	ing.pending = nil
	ing.stagedAt = nil
}
