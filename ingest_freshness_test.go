package trex

import (
	"reflect"
	"testing"

	"trex/internal/corpus"
)

// TestIngestInvalidatesResultCache: a streaming-ingest commit bumps the
// write epoch, so the front door can never serve a pre-ingest cached
// ranking afterwards — the post-commit answers must match a fresh
// uncached evaluation over the grown collection.
func TestIngestInvalidatesResultCache(t *testing.T) {
	full := corpus.GenerateIEEE(40, 42)
	eng, err := CreateMemory(&corpus.Collection{Docs: full.Docs[:25]}, &Options{
		FrontDoor: &FrontDoorOptions{CacheEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	opts := QueryOptions{K: 0, Method: MethodERA}
	pre, err := eng.QueryOpts(fdQuery, opts) // fill
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := eng.WriteEpoch()

	ing := eng.NewIngestor()
	defer ing.Abort()
	for _, d := range full.Docs[25:] {
		if err := ing.Add(d.Data); err != nil {
			t.Fatal(err)
		}
	}
	// Staged-but-uncommitted documents are invisible: the cache may still
	// serve the pre-ingest entry, and that is correct.
	mid, err := eng.QueryOpts(fdQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.Cached || !reflect.DeepEqual(mid.Answers, pre.Answers) {
		t.Fatal("staged (uncommitted) documents changed a served ranking")
	}
	if eng.WriteEpoch() != epochBefore {
		t.Fatal("staging advanced the write epoch before commit")
	}

	if _, err := ing.Commit(); err != nil {
		t.Fatal(err)
	}
	if eng.WriteEpoch() == epochBefore {
		t.Fatal("ingest commit did not advance the write epoch")
	}
	post, err := eng.QueryOpts(fdQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if post.Cached {
		t.Fatal("stale cache entry served after ingest commit")
	}
	ref, err := eng.QueryOpts(fdQuery, QueryOptions{K: 0, Method: MethodERA, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(post.Answers, ref.Answers) {
		t.Fatal("post-ingest ranking differs from an uncached evaluation")
	}
	if inv := eng.ResultCache().Invalidations(); inv == 0 {
		t.Fatal("cache counted no epoch invalidations")
	}
}
