package trex_test

// Streaming-ingest race: an Ingestor commits batches while reader
// goroutines query MethodAuto and the autopilot re-plans the
// materialized set, all concurrently (run under -race via make test-ingest).
// Commits are atomic, so every live result must be byte-identical to the
// MethodERA answers of a quiesced twin engine built at one of the batch
// boundaries — nothing in between, nothing torn, and after the writer
// finishes the engine must sit exactly at the final boundary.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trex"
	"trex/internal/oracle/gen"
)

func TestIngestRacesQueriesAndAutopilot(t *testing.T) {
	const (
		seed     = int64(11)
		initial  = 12
		batches  = 3
		perBatch = 4
		queryK   = 5
	)
	queries := []string{
		`//r[about(., ax)]`,
		`//s[about(., bx cx)]`,
		`//t[about(., dx)]`,
		`//u[about(., ax ex)]`,
	}

	// Quiesced twin: one engine walked through the same batch commits
	// sequentially, its exhaustive answers captured at every boundary.
	// want[q][p] is the only legal answer set for query q at boundary p
	// (p batches committed). The twin must take the incremental path too:
	// scores depend on merged collection statistics, and incremental
	// merging is not bit-identical to a from-scratch build.
	want := make(map[string][]string)
	render := func(res *trex.Result) string {
		return fmt.Sprintf("%+v", res.Answers)
	}
	ids := make([]int, initial)
	for i := range ids {
		ids[i] = i
	}
	twin, err := trex.CreateMemory(gen.JSONCollection(seed, ids), nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func(p int) {
		for _, q := range queries {
			res, err := twin.Query(q, queryK, trex.MethodERA)
			if err != nil {
				t.Fatalf("twin boundary %d %q: %v", p, q, err)
			}
			want[q] = append(want[q], render(res))
		}
	}
	snapshot(0)
	for b := 0; b < batches; b++ {
		ing := twin.NewIngestor()
		for i := 0; i < perBatch; i++ {
			if err := ing.Add(gen.JSONDoc(seed, initial+b*perBatch+i).Data); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ing.Commit(); err != nil {
			t.Fatal(err)
		}
		snapshot(b + 1)
	}
	twin.Close()

	// The live engine: initial prefix plus a fast autopilot, streamed into
	// by an Ingestor on its own goroutine.
	eng, err := trex.CreateMemory(gen.JSONCollection(seed, ids), &trex.Options{
		Autopilot: &trex.AutopilotOptions{
			Interval:     2 * time.Millisecond,
			DriftQueries: 1,
			Decay:        1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var wg sync.WaitGroup
	writerErr := make(chan error, 1)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		ing := eng.NewIngestor()
		defer ing.Abort()
		for b := 0; b < batches; b++ {
			for i := 0; i < perBatch; i++ {
				d := gen.JSONDoc(seed, initial+b*perBatch+i)
				if err := ing.Add(d.Data); err != nil {
					writerErr <- fmt.Errorf("batch %d add: %w", b, err)
					return
				}
				time.Sleep(time.Millisecond) // let queries interleave
			}
			if _, err := ing.Commit(); err != nil {
				writerErr <- fmt.Errorf("batch %d commit: %w", b, err)
				return
			}
		}
	}()

	// Readers: hammer MethodAuto until the writer finishes, checking every
	// result against the boundary set.
	readErr := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-done:
					return
				default:
				}
				q := queries[(r+round)%len(queries)]
				res, err := eng.Query(q, queryK, trex.MethodAuto)
				if err != nil {
					readErr <- fmt.Errorf("reader %d round %d %q: %w", r, round, q, err)
					return
				}
				got := render(res)
				ok := false
				for _, w := range want[q] {
					if got == w {
						ok = true
						break
					}
				}
				if !ok {
					readErr <- fmt.Errorf("reader %d round %d %q (method %v): answers match no batch boundary:\n%s",
						r, round, q, res.Method, got)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatal(err)
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	// Quiesced: the engine must now sit exactly at the final boundary.
	for _, q := range queries {
		res, err := eng.Query(q, queryK, trex.MethodAuto)
		if err != nil {
			t.Fatal(err)
		}
		if got, w := render(res), want[q][batches]; got != w {
			t.Fatalf("final state %q: answers diverge from the quiesced twin:\n got %s\nwant %s", q, got, w)
		}
	}
	if st := eng.AutopilotStatus(); st.Failures != 0 {
		t.Fatalf("autopilot failed %d times during ingest: %s", st.Failures, st.LastError)
	}
}
