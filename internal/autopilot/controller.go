package autopilot

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"trex/internal/selfmanage"
)

// Config tunes the controller loop.
type Config struct {
	// Interval is the timer period between planning runs (default 30s).
	Interval time.Duration
	// DriftQueries triggers an early run once this many queries have been
	// observed since the last run (0 = timer only). Drift kicks are
	// best-effort: at most one is pending at a time.
	DriftQueries int
	// TopQueries bounds the workload snapshot handed to RunFunc
	// (default 16).
	TopQueries int
	// MinQueries is the minimum lifetime observation count before the
	// first run fires (default 1); runs are also skipped while the
	// tracker is empty.
	MinQueries int
	// Decay is the multiplicative tracker decay applied after each
	// successful run (default 0.5; 1 disables decay).
	Decay float64
}

func (c *Config) setDefaults() {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.TopQueries <= 0 {
		c.TopQueries = 16
	}
	if c.MinQueries <= 0 {
		c.MinQueries = 1
	}
	if c.Decay <= 0 {
		c.Decay = 0.5
	}
}

// RunReport is what one planning run decided and applied.
type RunReport struct {
	// Workload is the snapshot the run planned for.
	Workload []TrackedQuery
	// Kept and Dropped are the physical list keys retained and reclaimed.
	Kept    []string
	Dropped []string
	// DiskUsed is the plan's footprint; DiskBudget the limit it honored.
	DiskUsed   int64
	DiskBudget int64
	// Saving is the plan's weighted time saving over the ERA baseline.
	Saving float64
	// Routed maps each measured query to the retrieval method the query
	// planner predicts under RPL-only and ERPL-only coverage — the costs
	// the solver's saving terms were built from. Nil when the engine's
	// planner is disabled.
	Routed map[string]selfmanage.Routing
}

// RunFunc measures a workload snapshot, solves for the list set under
// the disk budget, and applies the delta. The engine supplies it; it must
// be safe to call while queries are being served.
type RunFunc func(ctx context.Context, workload []TrackedQuery) (*RunReport, error)

// Status is a point-in-time controller snapshot.
type Status struct {
	Runs         uint64
	Failures     uint64
	LastError    string
	LastRunStart time.Time
	LastRunEnd   time.Time
	LastReport   *RunReport
	// TrackedQueries / TotalObserved / SinceLastRun mirror the tracker.
	TrackedQueries int
	TotalObserved  uint64
	SinceLastRun   uint64
}

// Controller owns the re-planning loop: it wakes on a timer or a drift
// kick, snapshots the tracker, and invokes the RunFunc. One run executes
// at a time (the loop and RunNow serialize on runMu).
type Controller struct {
	cfg     Config
	tracker *Tracker
	run     RunFunc

	kick    chan struct{}
	done    chan struct{}
	started atomic.Bool

	sinceRun atomic.Uint64

	runMu sync.Mutex // serializes planning runs

	mu         sync.Mutex // guards the status fields below
	runs       uint64
	failures   uint64
	lastErr    string
	lastStart  time.Time
	lastEnd    time.Time
	lastReport *RunReport
}

// New creates a controller over the tracker; Start launches its loop.
func New(cfg Config, tracker *Tracker, run RunFunc) *Controller {
	cfg.setDefaults()
	return &Controller{
		cfg:     cfg,
		tracker: tracker,
		run:     run,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// Tracker exposes the underlying workload tracker.
func (c *Controller) Tracker() *Tracker { return c.tracker }

// Observe feeds one served query into the tracker and, when enough
// queries have accumulated since the last run, kicks the loop awake
// early. It is cheap (one mutex, one atomic) and safe from any number of
// query goroutines.
func (c *Controller) Observe(nexi string, k int) {
	c.tracker.Observe(nexi, k)
	n := c.sinceRun.Add(1)
	if c.cfg.DriftQueries > 0 && n >= uint64(c.cfg.DriftQueries) {
		c.Kick()
	}
}

// Kick requests an immediate planning run (non-blocking; coalesces).
func (c *Controller) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Start launches the controller loop; it exits when ctx is cancelled.
// Calling Start more than once is a no-op.
func (c *Controller) Start(ctx context.Context) {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go c.loop(ctx)
}

func (c *Controller) loop(ctx context.Context) {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-c.kick:
		}
		if ctx.Err() != nil {
			return
		}
		_, _ = c.RunNow(ctx)
	}
}

// Wait blocks until a started loop has exited (after its context is
// cancelled). Returns immediately if Start was never called.
func (c *Controller) Wait() {
	if c.started.Load() {
		<-c.done
	}
}

// RunNow executes one planning run synchronously: snapshot, run, record,
// decay. Returns (nil, nil) when the tracker has not yet seen enough
// traffic. Safe to call concurrently with the loop.
func (c *Controller) RunNow(ctx context.Context) (*RunReport, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	if c.tracker.Len() == 0 || c.tracker.Total() < uint64(c.cfg.MinQueries) {
		return nil, nil
	}
	workload := c.tracker.Snapshot(c.cfg.TopQueries)
	start := time.Now()
	report, err := c.run(ctx, workload)
	end := time.Now()

	c.sinceRun.Store(0)
	if err != nil {
		// A cancelled run is shutdown, not failure.
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			c.mu.Lock()
			c.failures++
			c.lastErr = err.Error()
			c.mu.Unlock()
		}
		return nil, err
	}
	c.mu.Lock()
	c.runs++
	c.lastErr = ""
	c.lastStart, c.lastEnd = start, end
	c.lastReport = report
	c.mu.Unlock()
	c.tracker.Decay(c.cfg.Decay)
	return report, nil
}

// Status returns a consistent snapshot of the controller's counters and
// last run.
func (c *Controller) Status() Status {
	c.mu.Lock()
	st := Status{
		Runs:         c.runs,
		Failures:     c.failures,
		LastError:    c.lastErr,
		LastRunStart: c.lastStart,
		LastRunEnd:   c.lastEnd,
		LastReport:   c.lastReport,
	}
	c.mu.Unlock()
	st.TrackedQueries = c.tracker.Len()
	st.TotalObserved = c.tracker.Total()
	st.SinceLastRun = c.sinceRun.Load()
	return st
}
