package autopilot

// Failure-path tests for the controller: cancellation vs. failure
// accounting, recovery after a failed run, and shutdown racing a
// triggered run (meaningful under -race).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCancelledRunIsShutdownNotFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(Config{}, NewTracker(8), func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
		cancel() // the engine shuts down while the run is in flight
		return nil, fmt.Errorf("apply plan: %w", ctx.Err())
	})
	c.Observe("q", 10)
	if _, err := c.RunNow(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunNow = %v, want context.Canceled", err)
	}
	st := c.Status()
	if st.Failures != 0 || st.Runs != 0 || st.LastError != "" {
		t.Fatalf("cancelled run recorded as failure: %+v", st)
	}
}

func TestDeadlineExceededRunIsShutdownNotFailure(t *testing.T) {
	c := New(Config{}, NewTracker(8), func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
		return nil, fmt.Errorf("measure: %w", context.DeadlineExceeded)
	})
	c.Observe("q", 10)
	if _, err := c.RunNow(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunNow = %v, want DeadlineExceeded", err)
	}
	if st := c.Status(); st.Failures != 0 {
		t.Fatalf("timed-out run recorded as failure: %+v", st)
	}
}

// TestFailedRunThenRecovery mirrors a transient I/O fault mid-plan: the
// first run fails and is recorded, the next one succeeds and clears
// nothing retroactively (Failures is a lifetime counter), and LastReport
// reflects the successful run.
func TestFailedRunThenRecovery(t *testing.T) {
	calls := 0
	c := New(Config{}, NewTracker(8), func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("disk died mid-apply")
		}
		return &RunReport{Kept: []string{"k"}}, nil
	})
	c.Observe("q", 10)
	if _, err := c.RunNow(context.Background()); err == nil {
		t.Fatal("first run should fail")
	}
	if st := c.Status(); st.LastError != "disk died mid-apply" {
		t.Fatalf("LastError after failed run = %q", st.LastError)
	}
	rep, err := c.RunNow(context.Background())
	if err != nil || rep == nil {
		t.Fatalf("recovery run = %v, %v", rep, err)
	}
	st := c.Status()
	if st.Failures != 1 || st.Runs != 1 {
		t.Fatalf("after fail+recover: %+v", st)
	}
	if st.LastError != "" {
		t.Fatalf("successful run did not clear LastError: %q", st.LastError)
	}
	if st.LastReport == nil || len(st.LastReport.Kept) != 1 {
		t.Fatalf("LastReport = %+v", st.LastReport)
	}
}

// TestStopRacesTriggeredRuns cancels the loop while drift kicks are
// firing runs as fast as they can, from several observer goroutines.
// Run under -race this checks the shutdown path against the run path:
// Wait must return, and no run may start after Wait has returned.
func TestStopRacesTriggeredRuns(t *testing.T) {
	var running sync.WaitGroup
	var stopped sync.WaitGroup
	for trial := 0; trial < 20; trial++ {
		var afterWait atomic.Bool
		tr := NewTracker(8)
		c := New(Config{Interval: time.Microsecond, DriftQueries: 1}, tr,
			func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
				if afterWait.Load() {
					t.Error("run started after Wait returned")
				}
				return &RunReport{}, nil
			})
		ctx, cancel := context.WithCancel(context.Background())
		c.Start(ctx)
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			running.Add(1)
			go func(g int) {
				defer running.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					c.Observe(fmt.Sprintf("q%d-%d", g, i%3), 10)
				}
			}(g)
		}
		stopped.Add(1)
		go func() {
			defer stopped.Done()
			time.Sleep(time.Duration(trial%5) * 100 * time.Microsecond)
			cancel()
			c.Wait()
			// RunNow may still be invoked directly after Wait (that is
			// allowed); the loop itself must be done. Mark the epoch so
			// the RunFunc can detect a loop-driven run after Wait.
			afterWait.Store(true)
		}()
		stopped.Wait()
		close(stop)
		running.Wait()
	}
}
