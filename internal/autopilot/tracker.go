// Package autopilot turns the paper's one-shot self-management cycle
// (Section 4) into an online loop: a bounded workload tracker observes
// the live query stream, and a controller periodically snapshots it,
// re-plans the redundant-list set under the disk budget, and applies the
// delta while the engine keeps serving queries.
//
// The package is engine-agnostic: the tracker and controller know nothing
// about TReX storage. The engine wires itself in through a RunFunc that
// measures, solves, and applies a plan for a workload snapshot.
package autopilot

import (
	"sort"
	"sync"
)

// TrackedQuery is one entry of a workload snapshot: an observed
// (NEXI, k) pair with its decayed observation weight and its frequency
// normalized over the snapshot (the paper's f_i, Definition 4.1).
type TrackedQuery struct {
	NEXI  string
	K     int
	Count float64
	Freq  float64
}

// qkey identifies a tracked query; distinct k values are distinct
// workload entries because k changes every strategy's measured cost.
type qkey struct {
	nexi string
	k    int
}

type entry struct {
	key qkey
	// count is the decayed observation weight. Under space-saving
	// eviction it may overestimate the true count by up to overestimate.
	count        float64
	overestimate float64
}

// Tracker is a concurrency-safe bounded heavy-hitters sketch over the
// query stream: the space-saving algorithm (Metwally et al.) keeps at
// most capacity distinct (NEXI, k) pairs, so memory stays O(capacity)
// under millions of queries, while the per-entry error is bounded by the
// evicted minimum count. Multiplicative decay (applied by the controller
// after each planning run) makes the sketch track the recent workload
// rather than all history, so the autopilot follows traffic shifts.
type Tracker struct {
	mu       sync.Mutex
	capacity int
	entries  map[qkey]*entry
	total    uint64
}

// NewTracker creates a tracker bounded at capacity distinct queries
// (<= 0 selects a default of 256).
func NewTracker(capacity int) *Tracker {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracker{
		capacity: capacity,
		entries:  make(map[qkey]*entry, capacity),
	}
}

// Observe records one occurrence of the (nexi, k) query. When the
// tracker is full and the query is unseen, the minimum-count entry is
// evicted and the newcomer inherits its count plus one — the space-saving
// update, which guarantees any query with true frequency above total/capacity
// is present. Ties among eviction victims break deterministically.
func (t *Tracker) Observe(nexi string, k int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	key := qkey{nexi: nexi, k: k}
	if e, ok := t.entries[key]; ok {
		e.count++
		return
	}
	if len(t.entries) < t.capacity {
		t.entries[key] = &entry{key: key, count: 1}
		return
	}
	var victim *entry
	for _, e := range t.entries {
		if victim == nil || e.count < victim.count ||
			(e.count == victim.count && keyLess(e.key, victim.key)) {
			victim = e
		}
	}
	delete(t.entries, victim.key)
	t.entries[key] = &entry{key: key, count: victim.count + 1, overestimate: victim.count}
}

func keyLess(a, b qkey) bool {
	if a.nexi != b.nexi {
		return a.nexi < b.nexi
	}
	return a.k < b.k
}

// Decay multiplies every count by factor in (0, 1], dropping entries
// whose weight has decayed to noise. The controller calls this after each
// planning run so queries that stop arriving fade out of future
// snapshots instead of pinning their lists forever.
func (t *Tracker) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, e := range t.entries {
		e.count *= factor
		e.overestimate *= factor
		if e.count < 1e-3 {
			delete(t.entries, key)
		}
	}
}

// Snapshot returns the top-N tracked queries by decayed weight, with
// frequencies normalized over the selection. Ordering is deterministic:
// weight descending, then (NEXI, k) ascending. topN <= 0 returns all.
func (t *Tracker) Snapshot(topN int) []TrackedQuery {
	t.mu.Lock()
	out := make([]TrackedQuery, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, TrackedQuery{NEXI: e.key.nexi, K: e.key.k, Count: e.count})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].NEXI != out[j].NEXI {
			return out[i].NEXI < out[j].NEXI
		}
		return out[i].K < out[j].K
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	var sum float64
	for i := range out {
		sum += out[i].Count
	}
	if sum > 0 {
		for i := range out {
			out[i].Freq = out[i].Count / sum
		}
	}
	return out
}

// Len reports the number of distinct tracked queries.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Total reports the lifetime number of observations.
func (t *Tracker) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
