package autopilot

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTrackerCountsAndSnapshot(t *testing.T) {
	tr := NewTracker(8)
	for i := 0; i < 30; i++ {
		tr.Observe("q1", 10)
	}
	for i := 0; i < 10; i++ {
		tr.Observe("q2", 10)
	}
	tr.Observe("q2", 5) // distinct k => distinct entry

	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := tr.Total(); got != 41 {
		t.Fatalf("Total = %d, want 41", got)
	}
	ws := tr.Snapshot(0)
	if len(ws) != 3 || ws[0].NEXI != "q1" || ws[1].NEXI != "q2" || ws[1].K != 10 {
		t.Fatalf("snapshot order wrong: %+v", ws)
	}
	if ws[0].Freq != 30.0/41 {
		t.Fatalf("freq = %v, want %v", ws[0].Freq, 30.0/41)
	}
	// topN truncation re-normalizes over the selection.
	top := tr.Snapshot(2)
	if len(top) != 2 {
		t.Fatalf("topN = %d entries", len(top))
	}
	if got := top[0].Freq + top[1].Freq; got < 0.999 || got > 1.001 {
		t.Fatalf("truncated freqs sum to %v, want 1", got)
	}
}

func TestTrackerBoundedBySpaceSaving(t *testing.T) {
	tr := NewTracker(4)
	// A heavy hitter plus a long tail of singletons.
	for i := 0; i < 100; i++ {
		tr.Observe("heavy", 10)
		tr.Observe(fmt.Sprintf("tail%d", i), 10)
	}
	if got := tr.Len(); got > 4 {
		t.Fatalf("tracker grew to %d entries (capacity 4)", got)
	}
	ws := tr.Snapshot(1)
	if ws[0].NEXI != "heavy" {
		t.Fatalf("heavy hitter evicted: top = %+v", ws[0])
	}
}

func TestTrackerDecayFadesOldWorkload(t *testing.T) {
	tr := NewTracker(16)
	for i := 0; i < 8; i++ {
		tr.Observe("old", 10)
	}
	for i := 0; i < 20; i++ {
		tr.Decay(0.25)
	}
	if tr.Len() != 0 {
		t.Fatalf("fully decayed entries not dropped: %+v", tr.Snapshot(0))
	}
	// New traffic after decay dominates immediately.
	tr.Observe("new", 10)
	ws := tr.Snapshot(0)
	if len(ws) != 1 || ws[0].NEXI != "new" || ws[0].Freq != 1 {
		t.Fatalf("post-decay snapshot = %+v", ws)
	}
}

func TestTrackerConcurrentObserve(t *testing.T) {
	tr := NewTracker(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(fmt.Sprintf("q%d", (w+i)%40), 10)
			}
		}()
	}
	wg.Wait()
	if got := tr.Total(); got != 4000 {
		t.Fatalf("Total = %d, want 4000", got)
	}
	if got := tr.Len(); got > 32 {
		t.Fatalf("tracker exceeded capacity: %d", got)
	}
}

func TestControllerDriftKickAndTimer(t *testing.T) {
	var mu sync.Mutex
	var runs int
	run := func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return &RunReport{Workload: ws}, nil
	}
	c := New(Config{Interval: time.Hour, DriftQueries: 5, Decay: 1}, NewTracker(8), run)
	ctx, cancel := context.WithCancel(context.Background())
	c.Start(ctx)
	for i := 0; i < 5; i++ {
		c.Observe("q", 10)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := runs
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drift kick never triggered a run")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	c.Wait()
	st := c.Status()
	if st.Runs < 1 || st.LastReport == nil || len(st.LastReport.Workload) != 1 {
		t.Fatalf("status after drift run = %+v", st)
	}
	if st.SinceLastRun != 0 {
		t.Fatalf("SinceLastRun = %d after run", st.SinceLastRun)
	}
}

func TestControllerRunNowSkipsEmptyTracker(t *testing.T) {
	c := New(Config{}, NewTracker(8), func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
		t.Fatal("run fired on an empty tracker")
		return nil, nil
	})
	if rep, err := c.RunNow(context.Background()); rep != nil || err != nil {
		t.Fatalf("RunNow on empty tracker = %v, %v", rep, err)
	}
}

func TestControllerRecordsFailures(t *testing.T) {
	boom := fmt.Errorf("solver exploded")
	c := New(Config{}, NewTracker(8), func(ctx context.Context, ws []TrackedQuery) (*RunReport, error) {
		return nil, boom
	})
	c.Observe("q", 10)
	if _, err := c.RunNow(context.Background()); err == nil {
		t.Fatal("expected run error")
	}
	st := c.Status()
	if st.Failures != 1 || st.Runs != 0 || st.LastError == "" {
		t.Fatalf("failure not recorded: %+v", st)
	}
}
