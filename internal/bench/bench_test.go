package bench

import (
	"testing"

	"trex/internal/corpus"
)

// smallPair builds a fast environment shared by the harness tests.
func smallPair(t *testing.T) *EnvPair {
	t.Helper()
	p, err := NewEnvPair(0.1) // 40 ieee docs, 90 wiki docs
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPaperQueriesWellFormed(t *testing.T) {
	if len(PaperQueries) != 7 {
		t.Fatalf("paper queries = %d, want 7", len(PaperQueries))
	}
	ids := map[string]bool{}
	for i := range PaperQueries {
		q := &PaperQueries[i]
		if ids[q.ID] {
			t.Fatalf("duplicate id %s", q.ID)
		}
		ids[q.ID] = true
		if QueryByID(q.ID) != q {
			t.Fatalf("QueryByID(%s) mismatch", q.ID)
		}
		if q.PaperTerms == 0 || q.PaperAnswers == 0 {
			t.Fatalf("query %s missing paper numbers", q.ID)
		}
	}
	if QueryByID("nope") != nil {
		t.Fatal("unknown id resolved")
	}
}

func TestTable1Harness(t *testing.T) {
	p := smallPair(t)
	rows, err := Table1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NumTerms != r.PaperTerms {
			t.Errorf("Q%s terms = %d, paper %d (must match exactly)", r.ID, r.NumTerms, r.PaperTerms)
		}
		if r.NumSIDs == 0 {
			t.Errorf("Q%s matched no sids", r.ID)
		}
	}
}

func TestFigureHarness(t *testing.T) {
	p := smallPair(t)
	pts, err := Figure(p, "260", []int{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.ERACost <= 0 || pt.MergeCost <= 0 || pt.TACost <= 0 || pt.NRACost <= 0 {
			t.Fatalf("zero cost in %+v", pt)
		}
		if pt.ITA > pt.TA {
			t.Fatalf("ITA %v exceeds TA %v", pt.ITA, pt.TA)
		}
		if pt.DepthFraction < 0 || pt.DepthFraction > 1.000001 {
			t.Fatalf("depth = %v", pt.DepthFraction)
		}
	}
	// TA cost grows (weakly) with k.
	if pts[1].TACost < pts[0].TACost {
		t.Fatalf("TA cost shrank with k: %v -> %v", pts[0].TACost, pts[1].TACost)
	}
	if _, err := Figure(p, "000", nil); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}

func TestSummarySizesHarness(t *testing.T) {
	p := smallPair(t)
	rows, err := SummarySizes(p.IEEE.Col)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SummarySizeRow{}
	for _, r := range rows {
		byName[r.Summary] = r
	}
	if byName["incoming"].Nodes < byName["tag"].Nodes {
		t.Fatal("incoming must refine tag")
	}
	if byName["alias incoming"].Nodes > byName["incoming"].Nodes {
		t.Fatal("aliases must not grow the summary")
	}
}

func TestWinnersHarness(t *testing.T) {
	p := smallPair(t)
	rows, err := Winners(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	taWins, mergeWins := 0, 0
	for _, r := range rows {
		switch r.SmallKWinner {
		case "ta":
			taWins++
		case "merge":
			mergeWins++
		case "era":
			t.Fatalf("Q%s: ERA won at k=1 with lists materialized", r.ID)
		}
	}
	// The headline claim: neither strategy sweeps the board.
	if taWins == 0 || mergeWins == 0 {
		t.Fatalf("one strategy dominated: ta=%d merge=%d", taWins, mergeWins)
	}
}

func TestEffectivenessHarness(t *testing.T) {
	p := smallPair(t)
	rows, err := Effectiveness(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	above := 0
	for _, r := range rows {
		if r.PrecisionAt10 > r.RandomBaseline {
			above++
		}
	}
	if above < 5 {
		t.Fatalf("only %d/7 queries beat the random baseline", above)
	}
}

func TestDriftHarness(t *testing.T) {
	p := smallPair(t)
	rows, err := Drift(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	b := rows[1]
	if b.CostReplanned > b.CostStale {
		t.Fatalf("re-planning made things worse: %v -> %v", b.CostStale, b.CostReplanned)
	}
}

func TestEnvFor(t *testing.T) {
	p := smallPair(t)
	if p.EnvFor(QueryByID("202")) != p.IEEE {
		t.Fatal("202 must map to ieee env")
	}
	if p.EnvFor(QueryByID("290")) != p.Wiki {
		t.Fatal("290 must map to wiki env")
	}
	if p.IEEE.Style != corpus.StyleIEEE || p.Wiki.Style != corpus.StyleWiki {
		t.Fatal("styles wrong")
	}
}
