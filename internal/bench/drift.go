package bench

import (
	"trex"
)

// DriftRow is one phase of the workload-drift experiment: the weighted
// workload cost before and after the advisor re-plans for the new
// workload under the same disk budget.
type DriftRow struct {
	Phase string
	// CostStale is the workload's weighted cost evaluated with the plan
	// inherited from the previous phase.
	CostStale float64
	// CostReplanned is the weighted cost after SelfManage runs for the
	// current workload.
	CostReplanned float64
	// Improvement = CostStale / CostReplanned (>= 1 when re-planning
	// helps).
	Improvement float64
}

// Drift demonstrates the "self-managing" claim end to end: the query
// workload shifts (e.g. a conference deadline moves interest from
// ontologies to model checking), and re-running the advisor under the
// same disk budget recovers the lost efficiency.
func Drift(p *EnvPair, budgetFraction float64) ([]DriftRow, error) {
	if budgetFraction <= 0 {
		budgetFraction = 0.5
	}
	env := p.IEEE
	phaseA := []trex.WorkloadQuery{
		{NEXI: `//article[about(., ontologies)]//sec[about(., ontologies case study)]`, Freq: 0.7, K: 10},
		{NEXI: `//sec[about(., code signing verification)]`, Freq: 0.3, K: 10},
	}
	phaseB := []trex.WorkloadQuery{
		{NEXI: `//bdy//*[about(., model checking state space explosion)]`, Freq: 0.6, K: 10},
		{NEXI: `//article//sec[about(., introduction information retrieval)]`, Freq: 0.4, K: 10},
	}

	// Budget: a fraction of the larger phase's full footprint, so the
	// same budget is meaningful before and after the drift.
	fullA, err := env.Engine.SelfManage(phaseA, 1<<60, trex.SolverGreedy)
	if err != nil {
		return nil, err
	}
	fullB, err := env.Engine.SelfManage(phaseB, 1<<60, trex.SolverGreedy)
	if err != nil {
		return nil, err
	}
	footprint := fullA.Plan.DiskUsed
	if fullB.Plan.DiskUsed > footprint {
		footprint = fullB.Plan.DiskUsed
	}
	budget := int64(float64(footprint) * budgetFraction)
	// Reset: drop everything either probe materialized.
	if _, err := env.Engine.SelfManage(append(append([]trex.WorkloadQuery{}, phaseA...), phaseB...), 0, trex.SolverGreedy); err != nil {
		return nil, err
	}

	var rows []DriftRow

	// Phase A: plan for A, measure A.
	if _, err := env.Engine.SelfManage(phaseA, budget, trex.SolverGreedy); err != nil {
		return nil, err
	}
	costA, err := measureWorkload(env, phaseA)
	if err != nil {
		return nil, err
	}
	rows = append(rows, DriftRow{Phase: "A (planned for A)", CostStale: costA, CostReplanned: costA, Improvement: 1})

	// Phase B arrives: first measured with A's stale plan, then re-planned.
	stale, err := measureWorkload(env, phaseB)
	if err != nil {
		return nil, err
	}
	if _, err := env.Engine.SelfManage(phaseB, budget, trex.SolverGreedy); err != nil {
		return nil, err
	}
	replanned, err := measureWorkload(env, phaseB)
	if err != nil {
		return nil, err
	}
	row := DriftRow{Phase: "B (drifted)", CostStale: stale, CostReplanned: replanned}
	if replanned > 0 {
		row.Improvement = stale / replanned
	}
	rows = append(rows, row)

	// Restore full materialization for subsequent experiments.
	env.materialized = make(map[string]bool)
	for _, wq := range append(append([]trex.WorkloadQuery{}, phaseA...), phaseB...) {
		if err := env.Ensure(wq.NEXI); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// measureWorkload evaluates each query with auto method selection and
// returns the frequency-weighted cost proxy.
func measureWorkload(env *Env, workload []trex.WorkloadQuery) (float64, error) {
	var total float64
	for _, wq := range workload {
		res, err := env.Engine.Query(wq.NEXI, wq.K, trex.MethodAuto)
		if err != nil {
			return 0, err
		}
		total += wq.Freq * res.Stats.CostProxy()
	}
	return total, nil
}
