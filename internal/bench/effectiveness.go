package bench

import (
	"fmt"

	"trex"
)

// EffectivenessRow reports ranking quality for one query against the
// generator's planted ground truth. The paper explicitly scopes ranking
// quality out ("providing such ranking is beyond the scope of this
// paper"); this experiment is an extension that validates the BM25
// element scoring actually surfaces the planted topics.
type EffectivenessRow struct {
	ID    string
	Topic string
	// PrecisionAt10 is the fraction of the top-10 answers whose document
	// was generated "about" the query's topic.
	PrecisionAt10 float64
	// RandomBaseline is the topic's document fraction — what a random
	// ranker would score in expectation.
	RandomBaseline float64
}

// queryTopics maps paper query ids to the generator topic that plants
// their terms.
var queryTopics = map[string]string{
	"202": "ontologies",
	"203": "codesigning",
	"233": "music",
	"260": "modelchecking",
	"270": "ir",
	"290": "genetic",
	"292": "renaissance",
}

// Effectiveness measures precision@10 for every paper query against the
// planted topic ground truth.
func Effectiveness(p *EnvPair) ([]EffectivenessRow, error) {
	var rows []EffectivenessRow
	for i := range PaperQueries {
		q := &PaperQueries[i]
		topicName := queryTopics[q.ID]
		env := p.EnvFor(q)
		relevant := make(map[int]bool)
		for _, id := range env.Col.Relevance[topicName] {
			relevant[id] = true
		}
		if len(relevant) == 0 {
			return nil, fmt.Errorf("bench: no ground truth for topic %q", topicName)
		}
		res, err := env.Engine.Query(q.NEXI, 10, trex.MethodERA)
		if err != nil {
			return nil, err
		}
		hits := 0
		seenDocs := make(map[uint32]bool)
		for _, a := range res.Answers {
			if seenDocs[a.Doc] {
				continue // count distinct documents
			}
			seenDocs[a.Doc] = true
			if relevant[int(a.Doc)] {
				hits++
			}
		}
		denom := len(seenDocs)
		if denom == 0 {
			denom = 1
		}
		var frac float64
		for _, t := range env.Col.Topics {
			if t.Name == topicName {
				frac = t.DocFraction
			}
		}
		rows = append(rows, EffectivenessRow{
			ID:             q.ID,
			Topic:          topicName,
			PrecisionAt10:  float64(hits) / float64(denom),
			RandomBaseline: frac,
		})
	}
	return rows, nil
}
