package bench

import (
	"fmt"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

// Env is a built collection ready for experiments.
type Env struct {
	Style  corpus.Style
	Docs   int
	Seed   int64
	Col    *corpus.Collection
	Engine *trex.Engine
	// materialized remembers which queries already have their lists.
	materialized map[string]bool
}

// DefaultIEEEDocs and DefaultWikiDocs size the benchmark corpora. The
// Wikipedia collection is larger than IEEE, as in the paper (659k vs 17k
// documents), scaled down to laptop runtimes.
const (
	DefaultIEEEDocs = 400
	DefaultWikiDocs = 900
	DefaultSeed     = 20070415 // ICDE 2007
)

// NewEnv builds an in-memory engine over a fresh synthetic collection.
func NewEnv(style corpus.Style, docs int, seed int64) (*Env, error) {
	var col *corpus.Collection
	switch style {
	case corpus.StyleWiki:
		col = corpus.GenerateWiki(docs, seed)
	default:
		col = corpus.GenerateIEEE(docs, seed)
	}
	eng, err := trex.CreateMemory(col, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: build %v env: %w", style, err)
	}
	return &Env{
		Style:        style,
		Docs:         docs,
		Seed:         seed,
		Col:          col,
		Engine:       eng,
		materialized: make(map[string]bool),
	}, nil
}

// Close releases the engine.
func (e *Env) Close() error { return e.Engine.Close() }

// Ensure materializes the RPLs and ERPLs a query needs (once).
func (e *Env) Ensure(nexiSrc string) error {
	if e.materialized[nexiSrc] {
		return nil
	}
	if _, err := e.Engine.Materialize(nexiSrc, index.KindRPL, index.KindERPL); err != nil {
		return err
	}
	e.materialized[nexiSrc] = true
	return nil
}

// EnvPair builds the IEEE and Wikipedia environments used by the full
// experiment suite.
type EnvPair struct {
	IEEE *Env
	Wiki *Env
}

// NewEnvPair builds both environments at the given scale factor (1.0 =
// defaults).
func NewEnvPair(scale float64) (*EnvPair, error) {
	if scale <= 0 {
		scale = 1
	}
	ieee, err := NewEnv(corpus.StyleIEEE, int(float64(DefaultIEEEDocs)*scale), DefaultSeed)
	if err != nil {
		return nil, err
	}
	wiki, err := NewEnv(corpus.StyleWiki, int(float64(DefaultWikiDocs)*scale), DefaultSeed)
	if err != nil {
		ieee.Close()
		return nil, err
	}
	return &EnvPair{IEEE: ieee, Wiki: wiki}, nil
}

// Close releases both environments.
func (p *EnvPair) Close() {
	p.IEEE.Close()
	p.Wiki.Close()
}

// EnvFor returns the environment matching a query's collection.
func (p *EnvPair) EnvFor(q *QueryDef) *Env {
	if q.Style == corpus.StyleWiki {
		return p.Wiki
	}
	return p.IEEE
}
