package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/storage"
	"trex/internal/summary"
)

// Table1Row reproduces one row of the paper's Table 1.
type Table1Row struct {
	ID         string
	NEXI       string
	Collection string
	NumSIDs    int
	NumTerms   int
	NumAnswers int
	// Paper columns for side-by-side comparison.
	PaperSIDs    int
	PaperTerms   int
	PaperAnswers int
}

// Table1 translates and evaluates every paper query, reporting sid, term
// and answer counts.
func Table1(p *EnvPair) ([]Table1Row, error) {
	var rows []Table1Row
	for i := range PaperQueries {
		q := &PaperQueries[i]
		env := p.EnvFor(q)
		tr, err := env.Engine.Translate(q.NEXI)
		if err != nil {
			return nil, fmt.Errorf("bench: translate %s: %w", q.ID, err)
		}
		res, err := env.Engine.Query(q.NEXI, 0, trex.MethodERA)
		if err != nil {
			return nil, fmt.Errorf("bench: evaluate %s: %w", q.ID, err)
		}
		rows = append(rows, Table1Row{
			ID:           q.ID,
			NEXI:         q.NEXI,
			Collection:   q.Style.String(),
			NumSIDs:      tr.NumSIDs(),
			NumTerms:     tr.NumTerms(),
			NumAnswers:   res.TotalAnswers,
			PaperSIDs:    q.PaperSIDs,
			PaperTerms:   q.PaperTerms,
			PaperAnswers: q.PaperAnswers,
		})
	}
	return rows, nil
}

// FigurePoint is one (method, k) measurement of a figure.
type FigurePoint struct {
	K int
	// Durations per method; ITA is TA with heap-management time
	// discounted, as in the paper. NRA is the sorted-access-only TA
	// variant (TopX-style, as the paper's implementation).
	ERA, TA, ITA, Merge, NRA time.Duration
	// Cost proxies (machine-independent work counters).
	ERACost, TACost, MergeCost, NRACost float64
	// DepthFraction is how much of the RPL volume TA read before
	// stopping; NRADepth the same for NRA (Section 5.2's observation —
	// the paper's variant reads full lists at modest k).
	DepthFraction float64
	NRADepth      float64
}

// DefaultKs is the k sweep used for the figures.
var DefaultKs = []int{1, 5, 10, 50, 100, 500, 1000, 5000}

// Figure runs the k sweep for one paper query, producing the series of
// the corresponding figure (Figures 4-6). ERA and Merge compute all
// answers regardless of k (as in the paper's graphs, where they appear as
// flat lines); they are still measured per k to expose any k-dependence.
func Figure(p *EnvPair, id string, ks []int) ([]FigurePoint, error) {
	q := QueryByID(id)
	if q == nil {
		return nil, fmt.Errorf("bench: unknown query %q", id)
	}
	env := p.EnvFor(q)
	if err := env.Ensure(q.NEXI); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		ks = DefaultKs
	}
	var points []FigurePoint
	for _, k := range ks {
		pt := FigurePoint{K: k}
		res, err := env.Engine.Query(q.NEXI, k, trex.MethodERA)
		if err != nil {
			return nil, err
		}
		pt.ERA = res.Stats.Elapsed
		pt.ERACost = res.Stats.CostProxy()

		res, err = env.Engine.Query(q.NEXI, k, trex.MethodTA)
		if err != nil {
			return nil, err
		}
		pt.TA = res.Stats.Elapsed
		pt.ITA = res.Stats.ITATime()
		pt.TACost = res.Stats.CostProxy()
		pt.DepthFraction = res.Stats.DepthFraction()

		res, err = env.Engine.Query(q.NEXI, k, trex.MethodMerge)
		if err != nil {
			return nil, err
		}
		pt.Merge = res.Stats.Elapsed
		pt.MergeCost = res.Stats.CostProxy()

		res, err = env.Engine.Query(q.NEXI, k, trex.MethodNRA)
		if err != nil {
			return nil, err
		}
		pt.NRA = res.Stats.Elapsed
		pt.NRACost = res.Stats.CostProxy()
		pt.NRADepth = res.Stats.DepthFraction()
		points = append(points, pt)
	}
	return points, nil
}

// SummarySizeRow reports the size of one summary variant, mirroring the
// statistics of Section 2.1 (incoming: 11563 nodes, tag: 185, alias
// incoming: 7053, alias tag: 145 on the IEEE collection).
type SummarySizeRow struct {
	Summary    string
	Collection string
	Nodes      int
	PaperNodes int
	Safe       bool
}

// SummarySizes builds the four summary variants of Section 2.1 over the
// IEEE-style collection and reports node counts.
func SummarySizes(col *corpus.Collection) ([]SummarySizeRow, error) {
	variants := []struct {
		name    string
		opts    summary.Options
		paperN  int
		aliased bool
	}{
		{"incoming", summary.Options{Kind: summary.KindIncoming}, 11563, false},
		{"tag", summary.Options{Kind: summary.KindTag}, 185, false},
		{"alias incoming", summary.Options{Kind: summary.KindIncoming, Aliases: col.Aliases}, 7053, true},
		{"alias tag", summary.Options{Kind: summary.KindTag, Aliases: col.Aliases}, 145, true},
	}
	var rows []SummarySizeRow
	for _, v := range variants {
		s, err := summary.Build(col, v.opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SummarySizeRow{
			Summary:    v.name,
			Collection: col.Style.String(),
			Nodes:      s.NumNodes(),
			PaperNodes: v.paperN,
			Safe:       s.SafeForRetrieval(),
		})
	}
	return rows, nil
}

// SizesRow reports base-table sizes, mirroring Section 5.1's setup table
// (IEEE: Elements 1.52 GB, PostingLists 8.05 GB; Wikipedia: 3.91 GB and
// 48.1 GB).
type SizesRow struct {
	Collection    string
	Docs          int
	CorpusBytes   int64
	ElementsBytes int64
	PostingsBytes int64
}

// Sizes measures the base tables of both environments.
func Sizes(p *EnvPair) ([]SizesRow, error) {
	var rows []SizesRow
	for _, env := range []*Env{p.IEEE, p.Wiki} {
		var corpusBytes int64
		for _, d := range env.Col.Docs {
			corpusBytes += int64(len(d.Data))
		}
		eb, err := env.Engine.Store().Elements.ApproxBytes()
		if err != nil {
			return nil, err
		}
		pb, err := env.Engine.Store().Postings.ApproxBytes()
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizesRow{
			Collection:    env.Style.String(),
			Docs:          len(env.Col.Docs),
			CorpusBytes:   corpusBytes,
			ElementsBytes: eb,
			PostingsBytes: pb,
		})
	}
	return rows, nil
}

// DepthRow reports, for one query and k, the fraction of the RPL volume
// TA read under sorted access — Section 5.2 observes this is ~1.0 for
// k >= 10 (IEEE) and k >= 50 (Wikipedia), explaining why Merge often wins.
type DepthRow struct {
	ID            string
	K             int
	DepthFraction float64
}

// Depth measures TA's read depth for every paper query across k values.
func Depth(p *EnvPair, ks []int) ([]DepthRow, error) {
	if len(ks) == 0 {
		ks = []int{1, 10, 50, 1000}
	}
	var rows []DepthRow
	for i := range PaperQueries {
		q := &PaperQueries[i]
		env := p.EnvFor(q)
		if err := env.Ensure(q.NEXI); err != nil {
			return nil, err
		}
		for _, k := range ks {
			res, err := env.Engine.Query(q.NEXI, k, trex.MethodTA)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DepthRow{ID: q.ID, K: k, DepthFraction: res.Stats.DepthFraction()})
		}
	}
	return rows, nil
}

// AdvisorRow compares the greedy plan against the exact LP plan for one
// disk budget (as a fraction of the full footprint).
type AdvisorRow struct {
	BudgetFraction float64
	BudgetBytes    int64
	GreedySaving   float64
	LPSaving       float64
	GreedyDisk     int64
	LPDisk         int64
	Ratio          float64 // LPSaving / GreedySaving (Theorem 4.2: <= 2)
}

// Advisor runs the self-managing index selection over a workload of the
// IEEE paper queries at several disk budgets, comparing greedy vs LP.
func Advisor(p *EnvPair, fractions []float64) ([]AdvisorRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	}
	var workload []trex.WorkloadQuery
	for i := range PaperQueries {
		q := &PaperQueries[i]
		if q.Style != corpus.StyleIEEE {
			continue
		}
		workload = append(workload, trex.WorkloadQuery{NEXI: q.NEXI, Freq: 1, K: 10})
	}
	env := p.IEEE
	// Full footprint: run once with unlimited budget.
	full, err := env.Engine.SelfManage(workload, 1<<60, trex.SolverGreedy)
	if err != nil {
		return nil, err
	}
	fullBytes := full.Plan.DiskUsed
	var rows []AdvisorRow
	for _, f := range fractions {
		budget := int64(float64(fullBytes) * f)
		greedy, err := env.Engine.SelfManage(workload, budget, trex.SolverGreedy)
		if err != nil {
			return nil, err
		}
		lp, err := env.Engine.SelfManage(workload, budget, trex.SolverLP)
		if err != nil {
			return nil, err
		}
		row := AdvisorRow{
			BudgetFraction: f,
			BudgetBytes:    budget,
			GreedySaving:   greedy.Plan.Saving,
			LPSaving:       lp.Plan.Saving,
			GreedyDisk:     greedy.Plan.DiskUsed,
			LPDisk:         lp.Plan.DiskUsed,
		}
		if greedy.Plan.Saving > 0 {
			row.Ratio = lp.Plan.Saving / greedy.Plan.Saving
		}
		rows = append(rows, row)
	}
	// The budget sweeps dropped lists; restore full materialization so
	// later experiments see every strategy enabled.
	env.materialized = make(map[string]bool)
	for _, wq := range workload {
		if err := env.Ensure(wq.NEXI); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WinnerSummary reports, per query, which method won at small and large k
// — the paper's headline claim is that no single method wins everywhere.
type WinnerSummary struct {
	ID               string
	SmallKWinner     string
	LargeKWinner     string
	ERABeatenBy      []string
	CrossoverPresent bool
}

// Winners computes the method ranking per query from figure measurements,
// using the deterministic cost proxies.
func Winners(p *EnvPair) ([]WinnerSummary, error) {
	var out []WinnerSummary
	for i := range PaperQueries {
		q := &PaperQueries[i]
		pts, err := Figure(p, q.ID, []int{1, 5000})
		if err != nil {
			return nil, err
		}
		small, large := pts[0], pts[1]
		ws := WinnerSummary{
			ID:           q.ID,
			SmallKWinner: winner(small),
			LargeKWinner: winner(large),
		}
		for _, m := range []struct {
			name string
			cost float64
		}{{"ta", large.TACost}, {"merge", large.MergeCost}} {
			if m.cost < large.ERACost {
				ws.ERABeatenBy = append(ws.ERABeatenBy, m.name)
			}
		}
		ws.CrossoverPresent = ws.SmallKWinner != ws.LargeKWinner
		out = append(out, ws)
	}
	return out, nil
}

func winner(pt FigurePoint) string {
	type cand struct {
		name string
		cost float64
	}
	cands := []cand{{"era", pt.ERACost}, {"ta", pt.TACost}, {"merge", pt.MergeCost}}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
	return cands[0].name
}

// StorageStats exposes the page-level counters of an environment's DB.
func (e *Env) StorageStats() storage.Stats { return e.Engine.DB().Stats() }

// PrintTheorem42 is a convenience check used by reports: the advisor rows
// must satisfy the 2-approximation bound.
func PrintTheorem42(w io.Writer, rows []AdvisorRow) {
	for _, r := range rows {
		status := "ok"
		if r.Ratio > 2.0 {
			status = "VIOLATION"
		}
		fmt.Fprintf(w, "budget %4.0f%%: greedy=%.1f lp=%.1f ratio=%.3f %s\n",
			r.BudgetFraction*100, r.GreedySaving, r.LPSaving, r.Ratio, status)
	}
}
