package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/jsoncorpus"
)

// PR10 measures the streaming-ingest path on a JSON corpus: the engine
// starts from half the collection and a writer streams the rest through
// an Ingestor at several commit batch sizes while closed-loop readers
// replay JSONPath queries (translated onto NEXI) the whole time. The
// report captures the tension the staged-commit design manages: ingest
// throughput and commit latency per batch size, the freshness-lag
// distribution (staged→committed age of each document, the same
// quantity the trex_ingest_freshness_lag_seconds histogram observes),
// and query latency during streaming against a quiet-engine baseline.
// `make bench-pr10` serializes the report to BENCH_PR10.json.

// PR10Queries is the replayed workload: JSONPath over the API-log
// corpus shape, exercising the translation front end end-to-end.
var PR10Queries = []string{
	`$..message[?(about(@, timeout connection))]`,
	`$.response[?(about(@.detail, payment declined))]`,
	`$.annotations[*].note[?(about(@, deploy canary))]`,
	`$..message[?(about(@, quota exceeded))]`,
}

// PR10Lag summarizes a freshness-lag distribution in milliseconds.
type PR10Lag struct {
	P50MS float64 `json:"p50Ms"`
	P90MS float64 `json:"p90Ms"`
	P99MS float64 `json:"p99Ms"`
	MaxMS float64 `json:"maxMs"`
}

// PR10Variant is one streaming run at a fixed commit batch size.
type PR10Variant struct {
	BatchDocs int `json:"batchDocs"`
	// Ingest side.
	IngestedDocs     int     `json:"ingestedDocs"`
	IngestDocsPerSec float64 `json:"ingestDocsPerSec"`
	Commits          int     `json:"commits"`
	CommitP50MS      float64 `json:"commitP50Ms"`
	CommitP99MS      float64 `json:"commitP99Ms"`
	// FreshnessLag is the staged→committed age distribution across every
	// streamed document.
	FreshnessLag PR10Lag `json:"freshnessLag"`
	// Query side, measured only while the writer was active.
	Queries    int     `json:"queries"`
	QueryP50MS float64 `json:"queryP50Ms"`
	QueryP99MS float64 `json:"queryP99Ms"`
}

// PR10Report is the streaming-ingest interference study.
type PR10Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	InitialDocs int `json:"initialDocs"`
	StreamDocs  int `json:"streamDocs"`
	// JSONPath queries and their NEXI translations.
	Queries    []string `json:"queries"`
	Translated []string `json:"translated"`
	Readers    int      `json:"readers"`
	NumCPU     int      `json:"numCpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	// Quiet baseline: the same closed-loop replay against the initial
	// prefix with no writer running.
	BaselineQueryP50MS float64       `json:"baselineQueryP50Ms"`
	BaselineQueryP99MS float64       `json:"baselineQueryP99Ms"`
	Variants           []PR10Variant `json:"variants"`
}

const (
	pr10Readers      = 2
	pr10BaselineReps = 400
)

// pr10BatchSizes is the commit batch sweep: per-document commits,
// medium batches, and one large batch per stream.
var pr10BatchSizes = []int{1, 16, 64}

// PR10 builds the JSON corpus and runs the streaming sweep.
func PR10(scale float64) (*PR10Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	col := corpus.GenerateJSON(docs, DefaultSeed)
	initial := docs / 2

	rep := &PR10Report{InitialDocs: initial, StreamDocs: docs - initial,
		Readers: pr10Readers, NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	rep.Corpus.Style = "json"
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed
	rep.Queries = PR10Queries
	var nexis []string
	for _, q := range PR10Queries {
		n, err := jsoncorpus.JSONPathToNEXI(q)
		if err != nil {
			return nil, fmt.Errorf("bench: pr10 translate %q: %w", q, err)
		}
		nexis = append(nexis, n)
	}
	rep.Translated = nexis

	prefix := func() *corpus.Collection {
		return &corpus.Collection{Docs: col.Docs[:initial], Format: corpus.FormatJSON}
	}

	// Quiet baseline over the initial prefix.
	eng, err := trex.CreateMemory(prefix(), nil)
	if err != nil {
		return nil, fmt.Errorf("bench: pr10 baseline engine: %w", err)
	}
	var quiet []time.Duration
	for i := 0; i < pr10BaselineReps; i++ {
		q := nexis[i%len(nexis)]
		t0 := time.Now()
		if _, err := eng.Query(q, 5, trex.MethodAuto); err != nil {
			eng.Close()
			return nil, fmt.Errorf("bench: pr10 baseline %q: %w", q, err)
		}
		quiet = append(quiet, time.Since(t0))
	}
	eng.Close()
	sort.Slice(quiet, func(i, j int) bool { return quiet[i] < quiet[j] })
	rep.BaselineQueryP50MS = pr7PercentileMS(quiet, 0.50)
	rep.BaselineQueryP99MS = pr7PercentileMS(quiet, 0.99)

	for _, batch := range pr10BatchSizes {
		v, err := pr10RunVariant(prefix(), col.Docs[initial:], nexis, batch)
		if err != nil {
			return nil, err
		}
		rep.Variants = append(rep.Variants, v)
	}
	return rep, nil
}

// pr10RunVariant streams the tail of the collection into a fresh engine
// at one batch size with closed-loop readers racing the writer.
func pr10RunVariant(initial *corpus.Collection, stream []corpus.Document, nexis []string, batch int) (PR10Variant, error) {
	v := PR10Variant{BatchDocs: batch}
	eng, err := trex.CreateMemory(initial, nil)
	if err != nil {
		return v, fmt.Errorf("bench: pr10 batch %d engine: %w", batch, err)
	}
	defer eng.Close()

	done := make(chan struct{})
	var mu sync.Mutex
	var queryLats []time.Duration
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for r := 0; r < pr10Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := nexis[i%len(nexis)]
				t0 := time.Now()
				if _, err := eng.Query(q, 5, trex.MethodAuto); err != nil {
					fail(fmt.Errorf("bench: pr10 batch %d query %q: %w", batch, q, err))
					return
				}
				d := time.Since(t0)
				mu.Lock()
				queryLats = append(queryLats, d)
				mu.Unlock()
			}
		}(r)
	}

	// The writer: stage every document, commit every `batch` documents,
	// recording commit latency and per-document staged→committed lag.
	var commitLats, lags []time.Duration
	ing := eng.NewIngestor()
	start := time.Now()
	var stagedAt []time.Time
	commit := func() error {
		if len(stagedAt) == 0 {
			return nil
		}
		t0 := time.Now()
		if _, err := ing.Commit(); err != nil {
			return fmt.Errorf("bench: pr10 batch %d commit: %w", batch, err)
		}
		end := time.Now()
		commitLats = append(commitLats, end.Sub(t0))
		for _, ts := range stagedAt {
			lags = append(lags, end.Sub(ts))
		}
		stagedAt = stagedAt[:0]
		return nil
	}
	for _, d := range stream {
		if err := ing.Add(d.Data); err != nil {
			close(done)
			wg.Wait()
			return v, fmt.Errorf("bench: pr10 batch %d add: %w", batch, err)
		}
		stagedAt = append(stagedAt, time.Now())
		if len(stagedAt) >= batch {
			if err := commit(); err != nil {
				close(done)
				wg.Wait()
				return v, err
			}
		}
	}
	if err := commit(); err != nil {
		close(done)
		wg.Wait()
		return v, err
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()
	if firstErr != nil {
		return v, firstErr
	}

	v.IngestedDocs = len(stream)
	v.IngestDocsPerSec = float64(len(stream)) / elapsed.Seconds()
	v.Commits = len(commitLats)
	sort.Slice(commitLats, func(i, j int) bool { return commitLats[i] < commitLats[j] })
	v.CommitP50MS = pr7PercentileMS(commitLats, 0.50)
	v.CommitP99MS = pr7PercentileMS(commitLats, 0.99)
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	v.FreshnessLag = PR10Lag{
		P50MS: pr7PercentileMS(lags, 0.50),
		P90MS: pr7PercentileMS(lags, 0.90),
		P99MS: pr7PercentileMS(lags, 0.99),
	}
	if n := len(lags); n > 0 {
		v.FreshnessLag.MaxMS = float64(lags[n-1]) / float64(time.Millisecond)
	}
	sort.Slice(queryLats, func(i, j int) bool { return queryLats[i] < queryLats[j] })
	v.Queries = len(queryLats)
	v.QueryP50MS = pr7PercentileMS(queryLats, 0.50)
	v.QueryP99MS = pr7PercentileMS(queryLats, 0.99)
	return v, nil
}
