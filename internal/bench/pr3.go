package bench

import (
	"fmt"
	"sort"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/retrieval"
	"trex/internal/storage"
	"trex/internal/translate"
)

// PR3 measures the block-encoded (v2) list storage against the
// row-per-entry (v1) layout it replaced: on-disk bytes per table, pages
// touched per query, and ns/op for TA, Merge and ERA over the standard
// IEEE synthetic corpus. `make bench-pr3` serializes the report to
// BENCH_PR3.json.

// PR3TableStats is one store's redundant-list footprint.
type PR3TableStats struct {
	// Payload bytes are exact key+value sums; PageBytes counts whole
	// B+tree pages (what the disk budget actually pays).
	RPLPayloadBytes  int64 `json:"rplPayloadBytes"`
	ERPLPayloadBytes int64 `json:"erplPayloadBytes"`
	RPLPageBytes     int64 `json:"rplPageBytes"`
	ERPLPageBytes    int64 `json:"erplPageBytes"`
	RPLRows          int   `json:"rplRows"`
	ERPLRows         int   `json:"erplRows"`
}

// PR3MethodStats is one (query, method, store) measurement.
type PR3MethodStats struct {
	NsOp        int64  `json:"nsOp"`
	PageReads   uint64 `json:"pageReads"`
	CursorSteps int    `json:"cursorSteps"`
	BlockSkips  int    `json:"blockSkips"`
	ListReads   int    `json:"listReads"`
	Answers     int    `json:"answers"`
}

// PR3QueryResult compares the two layouts on one paper query.
type PR3QueryResult struct {
	ID   string                    `json:"id"`
	NEXI string                    `json:"nexi"`
	K    int                       `json:"k"`
	V1   map[string]PR3MethodStats `json:"v1"`
	V2   map[string]PR3MethodStats `json:"v2"`
}

// PR3Report is the full before/after comparison.
type PR3Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	V1 PR3TableStats `json:"v1"`
	V2 PR3TableStats `json:"v2"`
	// Reduction is 1 - v2/v1 over the combined RPL+ERPL payload bytes
	// (the PR's acceptance criterion asks for >= 0.40).
	Reduction float64          `json:"reduction"`
	Queries   []PR3QueryResult `json:"queries"`
}

// pr3Methods are the strategies the report times.
var pr3Methods = map[string]trex.Method{
	"ta":    trex.MethodTA,
	"merge": trex.MethodMerge,
	"era":   trex.MethodERA,
}

// PR3 builds two engines over the identical corpus — one with v1 lists,
// one with v2 blocks — and measures both.
func PR3(scale float64) (*PR3Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	rep := &PR3Report{}
	rep.Corpus.Style = corpus.StyleIEEE.String()
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed

	v2, err := NewEnv(corpus.StyleIEEE, docs, DefaultSeed)
	if err != nil {
		return nil, err
	}
	defer v2.Close()
	v1, err := NewEnv(corpus.StyleIEEE, docs, DefaultSeed)
	if err != nil {
		return nil, err
	}
	defer v1.Close()

	var queries []*QueryDef
	for i := range PaperQueries {
		if PaperQueries[i].Style == corpus.StyleIEEE {
			queries = append(queries, &PaperQueries[i])
		}
	}

	for _, q := range queries {
		// v2: the engine's normal (block-encoded) materialization path.
		if err := v2.Ensure(q.NEXI); err != nil {
			return nil, err
		}
		// v1: the legacy row-per-entry writer, driven through the same
		// translation so both stores hold lists for identical clauses.
		tr, err := v1.Engine.Translate(q.NEXI)
		if err != nil {
			return nil, err
		}
		sids, terms := pr3Flatten(tr)
		st := v1.Engine.Store()
		sc, err := st.NewScorer(terms)
		if err != nil {
			return nil, err
		}
		if _, err := retrieval.MaterializeV1(st, sids, terms, sc, index.KindRPL, index.KindERPL); err != nil {
			return nil, err
		}
	}

	if rep.V1, err = pr3Tables(v1.Engine.Store()); err != nil {
		return nil, err
	}
	if rep.V2, err = pr3Tables(v2.Engine.Store()); err != nil {
		return nil, err
	}
	v1Total := rep.V1.RPLPayloadBytes + rep.V1.ERPLPayloadBytes
	v2Total := rep.V2.RPLPayloadBytes + rep.V2.ERPLPayloadBytes
	if v1Total > 0 {
		rep.Reduction = 1 - float64(v2Total)/float64(v1Total)
	}

	const k = 10
	for _, q := range queries {
		qr := PR3QueryResult{ID: q.ID, NEXI: q.NEXI, K: k,
			V1: make(map[string]PR3MethodStats), V2: make(map[string]PR3MethodStats)}
		for name, m := range pr3Methods {
			s1, err := pr3Measure(v1.Engine, q.NEXI, k, m)
			if err != nil {
				return nil, fmt.Errorf("bench: pr3 %s/%s v1: %w", q.ID, name, err)
			}
			qr.V1[name] = s1
			s2, err := pr3Measure(v2.Engine, q.NEXI, k, m)
			if err != nil {
				return nil, fmt.Errorf("bench: pr3 %s/%s v2: %w", q.ID, name, err)
			}
			qr.V2[name] = s2
		}
		rep.Queries = append(rep.Queries, qr)
	}
	return rep, nil
}

// pr3Measure runs one (query, method) a few times and reports the fastest
// run's wall clock with the (deterministic) counters of the final run.
func pr3Measure(eng *trex.Engine, nexi string, k int, m trex.Method) (PR3MethodStats, error) {
	const runs = 3
	var out PR3MethodStats
	best := time.Duration(1<<62 - 1)
	for i := 0; i < runs; i++ {
		res, err := eng.Query(nexi, k, m)
		if err != nil {
			return out, err
		}
		st := res.Stats
		if st.Elapsed < best {
			best = st.Elapsed
		}
		listReads := 0
		for _, r := range st.ListReads {
			listReads += r
		}
		out = PR3MethodStats{
			PageReads:   st.PageReads,
			CursorSteps: st.CursorSteps,
			BlockSkips:  st.BlockSkips,
			ListReads:   listReads,
			Answers:     st.Answers,
		}
	}
	out.NsOp = best.Nanoseconds()
	return out, nil
}

// pr3Tables sums the redundant-list trees' exact payload and page
// footprints.
func pr3Tables(st *index.Store) (PR3TableStats, error) {
	var out PR3TableStats
	var err error
	if out.RPLPayloadBytes, out.RPLRows, err = pr3Payload(st.RPLs); err != nil {
		return out, err
	}
	if out.ERPLPayloadBytes, out.ERPLRows, err = pr3Payload(st.ERPLs); err != nil {
		return out, err
	}
	if out.RPLPageBytes, err = st.RPLs.ApproxBytes(); err != nil {
		return out, err
	}
	if out.ERPLPageBytes, err = st.ERPLs.ApproxBytes(); err != nil {
		return out, err
	}
	return out, nil
}

func pr3Payload(tree *storage.Tree) (int64, int, error) {
	var bytes int64
	rows := 0
	c := tree.Cursor()
	ok, err := c.First()
	for ok && err == nil {
		bytes += int64(len(c.Key()) + len(c.Value()))
		rows++
		ok, err = c.Next()
	}
	return bytes, rows, err
}

// pr3Flatten mirrors the engine's clause flattening: the distinct sids of
// all clauses plus targets, sorted, with the translation's distinct terms.
func pr3Flatten(tr *translate.Translation) ([]uint32, []string) {
	seen := make(map[uint32]bool)
	var sids []uint32
	add := func(list []uint32) {
		for _, s := range list {
			if !seen[s] {
				seen[s] = true
				sids = append(sids, s)
			}
		}
	}
	for i := range tr.Clauses {
		add(tr.Clauses[i].SIDs)
	}
	add(tr.TargetSIDs)
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	return sids, tr.DistinctTerms()
}
