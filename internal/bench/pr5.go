package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

// PR5 measures what the observability layer costs: paper queries run on
// two engines over the identical corpus — one with telemetry disabled,
// one with traces, metrics and the slow log armed — plus the price of a
// /metrics scrape itself. `make bench-pr5` serializes the report to
// BENCH_PR5.json; the acceptance bar is <= 2 extra allocs per query.

// PR5QueryStats is one (query, mode) measurement from testing.Benchmark.
type PR5QueryStats struct {
	NsOp     int64   `json:"nsOp"`
	AllocsOp int64   `json:"allocsOp"`
	BytesOp  int64   `json:"bytesOp"`
	Answers  int     `json:"answers"`
	Method   string  `json:"method"`
	WallMS   float64 `json:"wallMs"` // single representative run, for the slow log cross-check
}

// PR5QueryResult compares the two modes on one paper query.
type PR5QueryResult struct {
	ID          string        `json:"id"`
	NEXI        string        `json:"nexi"`
	K           int           `json:"k"`
	Disabled    PR5QueryStats `json:"disabled"`
	Enabled     PR5QueryStats `json:"enabled"`
	AllocDelta  int64         `json:"allocDelta"`  // enabled - disabled, budget <= 2
	OverheadPct float64       `json:"overheadPct"` // (enabledNs/disabledNs - 1) * 100
}

// PR5ScrapeStats prices the exposition endpoint.
type PR5ScrapeStats struct {
	Families        int   `json:"families"`
	ExpositionBytes int   `json:"expositionBytes"`
	NsOp            int64 `json:"nsOp"`
	AllocsOp        int64 `json:"allocsOp"`
}

// PR5Report is the full overhead comparison.
type PR5Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	Queries []PR5QueryResult `json:"queries"`
	// MaxAllocDelta is the worst per-query allocation overhead observed;
	// the telemetry budget caps it at 2 (trace struct + span slice).
	MaxAllocDelta int64 `json:"maxAllocDelta"`
	// MeanOverheadPct averages the per-query wall overhead.
	MeanOverheadPct float64        `json:"meanOverheadPct"`
	Scrape          PR5ScrapeStats `json:"scrape"`
	// SlowLogRecorded counts entries after re-running each query once with
	// a 1ns threshold — it must equal len(Queries).
	SlowLogRecorded uint64 `json:"slowLogRecorded"`
}

// PR5 builds the two engines and measures both modes on the IEEE paper
// queries.
func PR5(scale float64) (*PR5Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	rep := &PR5Report{}
	rep.Corpus.Style = corpus.StyleIEEE.String()
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed

	col := corpus.GenerateIEEE(docs, DefaultSeed)
	bare, err := trex.CreateMemory(col, &trex.Options{
		Telemetry: &trex.TelemetryOptions{Disabled: true},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: pr5 bare engine: %w", err)
	}
	defer bare.Close()
	inst, err := trex.CreateMemory(col, &trex.Options{
		Telemetry: &trex.TelemetryOptions{SlowQueryThreshold: time.Hour},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: pr5 instrumented engine: %w", err)
	}
	defer inst.Close()

	var queries []*QueryDef
	for i := range PaperQueries {
		if PaperQueries[i].Style == corpus.StyleIEEE {
			queries = append(queries, &PaperQueries[i])
		}
	}

	const k = 10
	var deltaMax int64
	var overheadSum float64
	for _, q := range queries {
		for _, eng := range []*trex.Engine{bare, inst} {
			if _, err := eng.Materialize(q.NEXI, index.KindRPL, index.KindERPL); err != nil {
				return nil, fmt.Errorf("bench: pr5 materialize %s: %w", q.ID, err)
			}
		}
		d, err := pr5Measure(bare, q.NEXI, k)
		if err != nil {
			return nil, fmt.Errorf("bench: pr5 %s disabled: %w", q.ID, err)
		}
		e, err := pr5Measure(inst, q.NEXI, k)
		if err != nil {
			return nil, fmt.Errorf("bench: pr5 %s enabled: %w", q.ID, err)
		}
		qr := PR5QueryResult{ID: q.ID, NEXI: q.NEXI, K: k, Disabled: d, Enabled: e,
			AllocDelta: e.AllocsOp - d.AllocsOp}
		if d.NsOp > 0 {
			qr.OverheadPct = (float64(e.NsOp)/float64(d.NsOp) - 1) * 100
		}
		if qr.AllocDelta > deltaMax {
			deltaMax = qr.AllocDelta
		}
		overheadSum += qr.OverheadPct
		rep.Queries = append(rep.Queries, qr)
	}
	rep.MaxAllocDelta = deltaMax
	if len(rep.Queries) > 0 {
		rep.MeanOverheadPct = overheadSum / float64(len(rep.Queries))
	}

	// Price one /metrics scrape against the now-populated registry.
	reg := inst.MetricsRegistry()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		return nil, fmt.Errorf("bench: pr5 exposition: %w", err)
	}
	rep.Scrape.ExpositionBytes = sb.Len()
	rep.Scrape.Families = len(reg.Snapshot().Entries)
	sr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var w strings.Builder
			if err := reg.WritePrometheus(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Scrape.NsOp = sr.NsPerOp()
	rep.Scrape.AllocsOp = sr.AllocsPerOp()

	// Arm the slow log and confirm it records exactly one entry per query.
	log := inst.SlowLog()
	before := log.Total()
	log.SetThreshold(time.Nanosecond)
	for _, q := range queries {
		if _, err := inst.Query(q.NEXI, k, trex.MethodAuto); err != nil {
			return nil, fmt.Errorf("bench: pr5 slowlog %s: %w", q.ID, err)
		}
	}
	rep.SlowLogRecorded = log.Total() - before
	return rep, nil
}

// pr5Measure times one query on one engine via testing.Benchmark, which
// gives stable ns/op plus exact allocs/op — the quantity the PR budget
// constrains.
func pr5Measure(eng *trex.Engine, nexi string, k int) (PR5QueryStats, error) {
	var out PR5QueryStats
	// Warm caches so both modes measure the steady state.
	res, err := eng.Query(nexi, k, trex.MethodAuto)
	if err != nil {
		return out, err
	}
	out.Answers = res.Stats.Answers
	out.Method = res.Method.String()
	out.WallMS = float64(res.Stats.Elapsed) / float64(time.Millisecond)
	var benchErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(nexi, k, trex.MethodAuto); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return out, benchErr
	}
	out.NsOp = br.NsPerOp()
	out.AllocsOp = br.AllocsPerOp()
	out.BytesOp = br.AllocedBytesPerOp()
	return out, nil
}
