package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

// PR6 measures the immutable mmap'd segment read path against the
// sharded-LRU pager it sits beside: full-list cursor scans, point gets,
// and TA/Merge end-to-end latency with allocations per query, over two
// on-disk engines built from the identical IEEE corpus. It also asserts
// the segment Reader's contract directly — Get, Seek and Range must run
// allocation-free. `make bench-pr6` serializes the report to
// BENCH_PR6.json.

// PR6MicroStats is one micro-benchmark measurement on one backend.
type PR6MicroStats struct {
	NsOp     int64   `json:"nsOp"`
	AllocsOp float64 `json:"allocsOp"`
}

// PR6MethodStats is one (query, method, backend) end-to-end measurement.
type PR6MethodStats struct {
	NsOp int64 `json:"nsOp"`
	// AllocsOp is the steady-state allocation count of Engine.Query.
	AllocsOp float64 `json:"allocsOp"`
	// BytesRead is the run's attributed physical traffic: backend page
	// bytes on the pager, mapped bytes covered on the segment.
	BytesRead uint64 `json:"bytesRead"`
	// SegmentRows is rows served from segment cursors (0 on the pager).
	SegmentRows uint64 `json:"segmentRows"`
}

// PR6QueryResult compares the two backends on one paper query.
type PR6QueryResult struct {
	ID      string                    `json:"id"`
	NEXI    string                    `json:"nexi"`
	K       int                       `json:"k"`
	Pager   map[string]PR6MethodStats `json:"pager"`
	Segment map[string]PR6MethodStats `json:"segment"`
}

// PR6Report is the full pager-vs-segment comparison.
type PR6Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	// CursorScan iterates every materialized RPL row in key order.
	CursorScan struct {
		Rows    int           `json:"rows"`
		Pager   PR6MicroStats `json:"pager"`
		Segment PR6MicroStats `json:"segment"`
		Speedup float64       `json:"speedup"`
	} `json:"cursorScan"`
	// PointGet probes a sample of existing RPL keys.
	PointGet struct {
		Probes  int           `json:"probes"`
		Pager   PR6MicroStats `json:"pager"`
		Segment PR6MicroStats `json:"segment"`
		Speedup float64       `json:"speedup"`
	} `json:"pointGet"`
	// ReaderAllocs are the segment Reader's steady-state allocations per
	// operation; the PR's acceptance criterion demands all three are 0.
	ReaderAllocs struct {
		Get   float64 `json:"get"`
		Seek  float64 `json:"seek"`
		Range float64 `json:"range"`
	} `json:"readerAllocs"`
	Queries []PR6QueryResult `json:"queries"`
	// TASpeedupMean is the geometric-free arithmetic mean of per-query
	// pager/segment TA latency ratios (> 1 means the segment wins).
	TASpeedupMean float64 `json:"taSpeedupMean"`
}

// pr6Methods are the end-to-end strategies the report times.
var pr6Methods = map[string]trex.Method{
	"ta":    trex.MethodTA,
	"merge": trex.MethodMerge,
}

// PR6 builds two on-disk engines over the identical corpus — one serving
// lists from the pager's B+trees, one from an mmap'd segment — and
// measures both.
func PR6(scale float64) (*PR6Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	rep := &PR6Report{}
	rep.Corpus.Style = corpus.StyleIEEE.String()
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed

	dir, err := os.MkdirTemp("", "trex-pr6-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	col := corpus.GenerateIEEE(docs, DefaultSeed)
	pager, err := trex.Create(filepath.Join(dir, "pager.trex"), col, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: pr6 pager engine: %w", err)
	}
	defer pager.Close()
	seg, err := trex.Create(filepath.Join(dir, "segment.trex"), col,
		&trex.Options{SegmentLists: true})
	if err != nil {
		return nil, fmt.Errorf("bench: pr6 segment engine: %w", err)
	}
	defer seg.Close()

	var queries []*QueryDef
	for i := range PaperQueries {
		if PaperQueries[i].Style == corpus.StyleIEEE {
			queries = append(queries, &PaperQueries[i])
		}
	}
	for _, q := range queries {
		if _, err := pager.Materialize(q.NEXI, index.KindRPL, index.KindERPL); err != nil {
			return nil, err
		}
		if _, err := seg.Materialize(q.NEXI, index.KindRPL, index.KindERPL); err != nil {
			return nil, err
		}
	}

	if err := pr6CursorScan(rep, pager, seg); err != nil {
		return nil, err
	}
	if err := pr6PointGet(rep, pager, seg); err != nil {
		return nil, err
	}
	if err := pr6ReaderAllocs(rep, seg); err != nil {
		return nil, err
	}

	const k = 10
	var ratios []float64
	for _, q := range queries {
		qr := PR6QueryResult{ID: q.ID, NEXI: q.NEXI, K: k,
			Pager: make(map[string]PR6MethodStats), Segment: make(map[string]PR6MethodStats)}
		for name, m := range pr6Methods {
			sp, err := pr6Measure(pager, q.NEXI, k, m)
			if err != nil {
				return nil, fmt.Errorf("bench: pr6 %s/%s pager: %w", q.ID, name, err)
			}
			qr.Pager[name] = sp
			ss, err := pr6Measure(seg, q.NEXI, k, m)
			if err != nil {
				return nil, fmt.Errorf("bench: pr6 %s/%s segment: %w", q.ID, name, err)
			}
			qr.Segment[name] = ss
			if name == "ta" && ss.NsOp > 0 {
				ratios = append(ratios, float64(sp.NsOp)/float64(ss.NsOp))
			}
		}
		rep.Queries = append(rep.Queries, qr)
	}
	for _, r := range ratios {
		rep.TASpeedupMean += r
	}
	if len(ratios) > 0 {
		rep.TASpeedupMean /= float64(len(ratios))
	}
	return rep, nil
}

// pr6Measure runs one (query, method) end to end: best-of-N wall clock,
// steady-state allocations, and the final run's I/O attribution.
func pr6Measure(eng *trex.Engine, nexi string, k int, m trex.Method) (PR6MethodStats, error) {
	var out PR6MethodStats
	// Warm the cache and surface errors before the alloc loop (whose
	// closure cannot return them).
	res, err := eng.Query(nexi, k, m)
	if err != nil {
		return out, err
	}
	out.AllocsOp = testing.AllocsPerRun(10, func() {
		r, qerr := eng.Query(nexi, k, m)
		if qerr != nil {
			err = qerr
		}
		res = r
	})
	if err != nil {
		return out, err
	}
	best := res.Stats.Elapsed
	for i := 0; i < 7; i++ {
		r, qerr := eng.Query(nexi, k, m)
		if qerr != nil {
			return out, qerr
		}
		res = r
		if r.Stats.Elapsed < best {
			best = r.Stats.Elapsed
		}
	}
	out.NsOp = best.Nanoseconds()
	out.BytesRead = res.Stats.BytesRead
	out.SegmentRows = res.Stats.SegmentRows
	return out, nil
}

// pr6CursorScan times a full key-order scan of the materialized RPL
// rows through each backend's list read path.
func pr6CursorScan(rep *PR6Report, pager, seg *trex.Engine) error {
	scanPager := func() (int, error) {
		n := 0
		c := pager.Store().RPLs.Cursor()
		ok, err := c.First()
		for ok && err == nil {
			_ = c.Value()
			n++
			ok, err = c.Next()
		}
		return n, err
	}
	scanSeg := func() (int, error) {
		n := 0
		c := seg.Store().Segments().ListCursor(index.TableRPLs)
		if c == nil {
			return 0, fmt.Errorf("bench: pr6: no segment generation to scan")
		}
		ok, err := c.First()
		for ok && err == nil {
			_ = c.Value()
			n++
			ok, err = c.Next()
		}
		return n, err
	}
	rows, err := scanPager()
	if err != nil {
		return err
	}
	segRows, err := scanSeg()
	if err != nil {
		return err
	}
	if rows != segRows {
		return fmt.Errorf("bench: pr6 cursor-scan row mismatch: pager %d, segment %d", rows, segRows)
	}
	rep.CursorScan.Rows = rows
	if rep.CursorScan.Pager, err = pr6Micro(func() error { _, e := scanPager(); return e }); err != nil {
		return err
	}
	if rep.CursorScan.Segment, err = pr6Micro(func() error { _, e := scanSeg(); return e }); err != nil {
		return err
	}
	if rep.CursorScan.Segment.NsOp > 0 {
		rep.CursorScan.Speedup = float64(rep.CursorScan.Pager.NsOp) / float64(rep.CursorScan.Segment.NsOp)
	}
	return nil
}

// pr6PointGet probes a uniform sample of existing RPL keys on both
// backends.
func pr6PointGet(rep *PR6Report, pager, seg *trex.Engine) error {
	const maxProbes = 512
	var keys [][]byte
	c := pager.Store().RPLs.Cursor()
	ok, err := c.First()
	for ok && err == nil {
		keys = append(keys, append([]byte(nil), c.Key()...))
		ok, err = c.Next()
	}
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return fmt.Errorf("bench: pr6: no RPL rows to probe")
	}
	if len(keys) > maxProbes {
		stride := len(keys) / maxProbes
		sampled := make([][]byte, 0, maxProbes)
		for i := 0; i < len(keys) && len(sampled) < maxProbes; i += stride {
			sampled = append(sampled, keys[i])
		}
		keys = sampled
	}
	rep.PointGet.Probes = len(keys)

	tree := pager.Store().RPLs
	ss := seg.Store().Segments()
	probePager := func() error {
		for _, k := range keys {
			if v, err := tree.Get(k); err != nil {
				return err
			} else if v == nil {
				return fmt.Errorf("bench: pr6: pager lost key %q", k)
			}
		}
		return nil
	}
	probeSeg := func() error {
		for _, k := range keys {
			if _, ok := ss.Get(index.TableRPLs, k); !ok {
				return fmt.Errorf("bench: pr6: segment lost key %q", k)
			}
		}
		return nil
	}
	if rep.PointGet.Pager, err = pr6Micro(probePager); err != nil {
		return err
	}
	if rep.PointGet.Segment, err = pr6Micro(probeSeg); err != nil {
		return err
	}
	if rep.PointGet.Segment.NsOp > 0 {
		rep.PointGet.Speedup = float64(rep.PointGet.Pager.NsOp) / float64(rep.PointGet.Segment.NsOp)
	}
	return nil
}

// pr6ReaderAllocs asserts the segment Reader's zero-allocation contract
// on the mapped generation the engine is actually serving.
func pr6ReaderAllocs(rep *PR6Report, seg *trex.Engine) error {
	ss := seg.Store().Segments()
	ss.Pin()
	defer ss.Unpin()
	r := ss.Current()
	if r == nil {
		return fmt.Errorf("bench: pr6: no committed generation")
	}
	tbl := r.Table(index.TableRPLs)
	if tbl == nil || tbl.Rows() == 0 {
		return fmt.Errorf("bench: pr6: empty RPL table in segment")
	}
	cur := tbl.Cursor()
	if _, err := cur.First(); err != nil {
		return err
	}
	key := append([]byte(nil), cur.Key()...)

	rep.ReaderAllocs.Get = testing.AllocsPerRun(100, func() {
		if _, ok := tbl.Get(key); !ok {
			panic("bench: pr6: Get lost a key mid-run")
		}
	})
	rep.ReaderAllocs.Seek = testing.AllocsPerRun(100, func() {
		if ok, err := cur.Seek(key); err != nil || !ok {
			panic("bench: pr6: Seek lost a key mid-run")
		}
	})
	rows := 0
	rep.ReaderAllocs.Range = testing.AllocsPerRun(100, func() {
		rows = 0
		tbl.Range(nil, nil, func(k, v []byte) bool {
			rows++
			return true
		})
	})
	if rows != tbl.Rows() {
		return fmt.Errorf("bench: pr6: Range covered %d of %d rows", rows, tbl.Rows())
	}
	return nil
}

// pr6Micro times fn (best of a few runs after one warm-up) and measures
// its steady-state allocations.
func pr6Micro(fn func() error) (PR6MicroStats, error) {
	var out PR6MicroStats
	if err := fn(); err != nil {
		return out, err
	}
	var err error
	out.AllocsOp = testing.AllocsPerRun(5, func() {
		if e := fn(); e != nil {
			err = e
		}
	})
	if err != nil {
		return out, err
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return out, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	out.NsOp = best.Nanoseconds()
	return out, nil
}
