package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/frontdoor"
	"trex/internal/index"
)

// PR7 measures the front door under closed-loop load: a skewed replay of
// the paper's IEEE queries is offered at multiples of the engine's serial
// capacity against three engine variants — no front door, admission
// control, and admission control plus the epoch-invalidated result
// cache. Latency is measured from each request's *scheduled* arrival
// (open-loop), so queueing delay past the saturation knee is captured
// instead of hidden by coordinated omission. `make bench-qps` serializes
// the report to BENCH_PR7.json.

// PR7Point is one (variant, offered-rate) measurement.
type PR7Point struct {
	OfferedQPS  float64 `json:"offeredQps"`
	AchievedQPS float64 `json:"achievedQps"`
	// P50MS/P99MS are percentiles of successful requests' latency from
	// scheduled arrival to completion, in milliseconds.
	P50MS float64 `json:"p50Ms"`
	P99MS float64 `json:"p99Ms"`
	OK    int     `json:"ok"`
	// Shed/QueueTimeouts are requests the admission layer rejected (fast
	// 429/503 at the HTTP layer); Errors is anything else.
	Shed          int `json:"shed"`
	QueueTimeouts int `json:"queueTimeouts"`
	Errors        int `json:"errors"`
	// CacheHitRate is the result cache's hit fraction during this point
	// (0 on cacheless variants).
	CacheHitRate float64 `json:"cacheHitRate"`
}

// PR7Variant is one engine configuration's offered-rate curve.
type PR7Variant struct {
	Name         string     `json:"name"`
	MaxInflight  int        `json:"maxInflight"`
	QueueDepth   int        `json:"queueDepth"`
	CacheEntries int        `json:"cacheEntries"`
	Points       []PR7Point `json:"points"`
}

// PR7Report is the full front-door load comparison.
type PR7Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	Workload struct {
		// Requests is the replay length per measured point; Weights is
		// the skew (query id -> fraction of traffic).
		Requests int                `json:"requests"`
		K        int                `json:"k"`
		Weights  map[string]float64 `json:"weights"`
	} `json:"workload"`
	// SerialCapacityQPS is the raw engine's single-threaded throughput on
	// the replay; offered rates are multiples of it.
	SerialCapacityQPS float64      `json:"serialCapacityQps"`
	Variants          []PR7Variant `json:"variants"`
}

// pr7Weights is the replay skew: a hot query dominating, a warm tier,
// and a tail — the regime a result cache is built for.
var pr7Weights = map[string]float64{
	"202": 0.50,
	"203": 0.25,
	"270": 0.15,
	"233": 0.10,
}

const (
	pr7K        = 10
	pr7Requests = 400
)

// pr7Multipliers are the offered rates as fractions of serial capacity:
// below, at, and past the saturation knee.
var pr7Multipliers = []float64{0.5, 1, 2, 4}

// PR7 builds the three engine variants over one IEEE corpus and sweeps
// the offered rate against each.
func PR7(scale float64) (*PR7Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	col := corpus.GenerateIEEE(docs, DefaultSeed)

	rep := &PR7Report{}
	rep.Corpus.Style = "ieee"
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed
	rep.Workload.Requests = pr7Requests
	rep.Workload.K = pr7K
	rep.Workload.Weights = pr7Weights

	reqs := pr7Replay(pr7Requests)

	// Admission sizing: slots for the evaluation parallelism the box has,
	// a short queue to ride bursts, and a timeout that bounds queue wait
	// to roughly the p99 budget the shed curve should hold.
	variants := []struct {
		name string
		fd   *trex.FrontDoorOptions
	}{
		{"raw", nil},
		{"admission", &trex.FrontDoorOptions{
			MaxInflight: 4, QueueDepth: 16, QueueTimeout: 100 * time.Millisecond,
		}},
		{"admission+cache", &trex.FrontDoorOptions{
			MaxInflight: 4, QueueDepth: 16, QueueTimeout: 100 * time.Millisecond,
			CacheEntries: 1024,
		}},
	}

	var capacity float64
	for _, v := range variants {
		eng, err := trex.CreateMemory(col, &trex.Options{FrontDoor: v.fd})
		if err != nil {
			return nil, fmt.Errorf("bench: pr7 %s engine: %w", v.name, err)
		}
		for id := range pr7Weights {
			q := QueryByID(id)
			if _, err := eng.Materialize(q.NEXI, index.KindRPL, index.KindERPL); err != nil {
				eng.Close()
				return nil, fmt.Errorf("bench: pr7 materialize %s: %w", id, err)
			}
		}
		if v.fd == nil {
			// Serial capacity on the raw engine: one warmup pass, then a
			// timed pass with no concurrency and no cache.
			if capacity, err = pr7SerialCapacity(eng, reqs); err != nil {
				eng.Close()
				return nil, err
			}
			rep.SerialCapacityQPS = capacity
		}

		pv := PR7Variant{Name: v.name}
		if v.fd != nil {
			pv.MaxInflight = v.fd.MaxInflight
			pv.QueueDepth = v.fd.QueueDepth
			pv.CacheEntries = v.fd.CacheEntries
		}
		for _, mult := range pr7Multipliers {
			pt, err := pr7RunPoint(eng, reqs, capacity*mult)
			if err != nil {
				eng.Close()
				return nil, err
			}
			pv.Points = append(pv.Points, pt)
		}
		rep.Variants = append(rep.Variants, pv)
		eng.Close()
	}
	return rep, nil
}

type pr7Request struct {
	nexi string
	k    int
}

// pr7Replay draws the deterministic skewed request sequence every
// variant replays (same seed — identical traffic).
func pr7Replay(n int) []pr7Request {
	type slot struct {
		nexi   string
		cumul  float64
		weight float64
	}
	var slots []slot
	var cumul float64
	// Deterministic iteration order over the weight map.
	var ids []string
	for id := range pr7Weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cumul += pr7Weights[id]
		slots = append(slots, slot{nexi: QueryByID(id).NEXI, cumul: cumul, weight: pr7Weights[id]})
	}
	rng := rand.New(rand.NewSource(DefaultSeed))
	reqs := make([]pr7Request, n)
	for i := range reqs {
		r := rng.Float64() * cumul
		for _, s := range slots {
			if r <= s.cumul {
				reqs[i] = pr7Request{nexi: s.nexi, k: pr7K}
				break
			}
		}
	}
	return reqs
}

// pr7SerialCapacity times one uncached single-threaded replay pass
// (after a warmup pass) and returns requests/second.
func pr7SerialCapacity(eng *trex.Engine, reqs []pr7Request) (float64, error) {
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		for _, r := range reqs {
			if _, err := eng.QueryOpts(r.nexi, trex.QueryOptions{K: r.k, NoCache: true}); err != nil {
				return 0, fmt.Errorf("bench: pr7 serial pass: %w", err)
			}
		}
		if pass == 1 {
			return float64(len(reqs)) / time.Since(start).Seconds(), nil
		}
	}
	return 0, nil
}

// pr7RunPoint offers the replay open-loop at the given rate: request i
// is launched at its scheduled arrival time and its latency measured
// from that schedule, so time spent waiting behind a saturated engine
// counts against it.
func pr7RunPoint(eng *trex.Engine, reqs []pr7Request, offered float64) (PR7Point, error) {
	pt := PR7Point{OfferedQPS: offered}
	if offered <= 0 {
		return pt, fmt.Errorf("bench: pr7 offered rate %f", offered)
	}
	n := len(reqs)
	lats := make([]time.Duration, n)
	outcomes := make([]int8, n)

	var hits0, misses0 uint64
	if c := eng.ResultCache(); c != nil {
		hits0, misses0 = c.Hits(), c.Misses()
	}

	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / offered)
	start := time.Now()
	for i := 0; i < n; i++ {
		at := start.Add(time.Duration(i) * interval)
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, at time.Time) {
			defer wg.Done()
			_, err := eng.QueryOpts(reqs[i].nexi, trex.QueryOptions{K: reqs[i].k})
			lats[i] = time.Since(at)
			switch {
			case err == nil:
				outcomes[i] = 0
			case errors.Is(err, frontdoor.ErrShed):
				outcomes[i] = 1
			case errors.Is(err, frontdoor.ErrQueueTimeout):
				outcomes[i] = 2
			default:
				outcomes[i] = 3
			}
		}(i, at)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var okLats []time.Duration
	for i := range outcomes {
		switch outcomes[i] {
		case 0:
			pt.OK++
			okLats = append(okLats, lats[i])
		case 1:
			pt.Shed++
		case 2:
			pt.QueueTimeouts++
		default:
			pt.Errors++
		}
	}
	pt.AchievedQPS = float64(pt.OK) / elapsed.Seconds()
	sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
	pt.P50MS = pr7PercentileMS(okLats, 0.50)
	pt.P99MS = pr7PercentileMS(okLats, 0.99)
	if c := eng.ResultCache(); c != nil {
		hits, misses := c.Hits()-hits0, c.Misses()-misses0
		if total := hits + misses; total > 0 {
			pt.CacheHitRate = float64(hits) / float64(total)
		}
	}
	return pt, nil
}

func pr7PercentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}
