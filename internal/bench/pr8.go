package bench

import (
	"fmt"
	"sort"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/storage"
)

// PR8 compares the telemetry-driven query planner (MethodAuto) against
// MethodRace and the four fixed methods on the standard IEEE corpus with
// the skewed replay of PR 7. All passes run on one engine, in order
// fixed -> race -> auto, so the planner enters the auto pass calibrated
// by exactly the measurements the report prints — the steady state a
// serving engine reaches on a stable workload. I/O per pass is the
// engine-level pager delta (logical page touches), which charges Race
// its losers' reads; wall time is per-request. A second engine with
// shadow sampling forced to every query measures the planner's regret
// rate. `make bench-pr8` serializes the report to BENCH_PR8.json.

// PR8Variant is one method policy's replay totals.
type PR8Variant struct {
	Name string `json:"name"`
	// MeanWallMS/P99WallMS summarize per-request wall time.
	MeanWallMS float64 `json:"meanWallMs"`
	P99WallMS  float64 `json:"p99WallMs"`
	// PageReads is the pass's logical page-touch delta (cache hits +
	// misses, so a warm cache does not hide work); BytesRead the
	// physical backend traffic. Both include MethodRace's losing
	// runners, which per-run stats do not see.
	PageReads uint64 `json:"pageReads"`
	BytesRead uint64 `json:"bytesRead"`
	// Methods is the executed-method mix (for race: winners; for auto:
	// the planner's routing).
	Methods map[string]int `json:"methods"`
}

// PR8QueryBest records, per workload query, the cheapest fixed method by
// mean wall and what auto routed it to.
type PR8QueryBest struct {
	ID            string             `json:"id"`
	Requests      int                `json:"requests"`
	FixedMeanMS   map[string]float64 `json:"fixedMeanMs"`
	BestFixed     string             `json:"bestFixed"`
	AutoRouted    string             `json:"autoRouted"`
	AutoMeanMS    float64            `json:"autoMeanMs"`
	BestFixedMS   float64            `json:"bestFixedMs"`
	AutoOverBestX float64            `json:"autoOverBestX"`
}

// PR8Shadow is the regret measurement from the shadow-sampling engine.
type PR8Shadow struct {
	Samples        uint64 `json:"samples"`
	Errors         uint64 `json:"errors"`
	Mispredictions uint64 `json:"mispredictions"`
	// RegretRate is mispredictions/samples: the fraction of shadowed
	// decisions where the runner-up measured cheaper than the pick.
	RegretRate float64 `json:"regretRate"`
}

// PR8Report is the full planner comparison.
type PR8Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	Workload struct {
		Requests int                `json:"requests"`
		K        int                `json:"k"`
		Weights  map[string]float64 `json:"weights"`
	} `json:"workload"`
	Variants []PR8Variant `json:"variants"`
	// PerQuery breaks the auto-vs-best-fixed comparison down by query.
	PerQuery []PR8QueryBest `json:"perQuery"`
	// BestFixedMeanWallMS is the replay's mean wall under the oracle
	// policy "each query runs its own cheapest fixed method";
	// AutoOverBestFixed is auto's mean wall divided by it (acceptance:
	// <= 1.05). RaceOverAutoPageReads is race's logical page touches
	// divided by auto's (acceptance: > 1).
	BestFixedMeanWallMS   float64   `json:"bestFixedMeanWallMs"`
	AutoOverBestFixed     float64   `json:"autoOverBestFixed"`
	RaceOverAutoPageReads float64   `json:"raceOverAutoPageReads"`
	Shadow                PR8Shadow `json:"shadow"`
	// PlannerObservations/CalibratedBuckets snapshot the model after the
	// auto pass.
	PlannerObservations uint64 `json:"plannerObservations"`
	CalibratedBuckets   int    `json:"calibratedBuckets"`
}

const (
	pr8K        = 10
	pr8Requests = 400
)

// pr8FixedMethods are the per-method baseline passes, in run order.
var pr8FixedMethods = []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodNRA, trex.MethodMerge}

// PR8 builds the planner comparison over one IEEE corpus.
func PR8(scale float64) (*PR8Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	col := corpus.GenerateIEEE(docs, DefaultSeed)

	rep := &PR8Report{}
	rep.Corpus.Style = "ieee"
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed
	rep.Workload.Requests = pr8Requests
	rep.Workload.K = pr8K
	rep.Workload.Weights = pr7Weights

	reqs := pr7Replay(pr8Requests)
	idOf := make(map[string]string, len(pr7Weights))
	for id := range pr7Weights {
		idOf[QueryByID(id).NEXI] = id
	}

	// Shadow sampling off: the auto pass's I/O must be the planner's
	// own, not its runner-up probes (those are measured separately).
	eng, err := trex.CreateMemory(col, &trex.Options{
		Planner: &trex.PlannerOptions{ShadowFraction: -1},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: pr8 engine: %w", err)
	}
	defer eng.Close()
	for id := range pr7Weights {
		q := QueryByID(id)
		if _, err := eng.Materialize(q.NEXI, index.KindRPL, index.KindERPL); err != nil {
			return nil, fmt.Errorf("bench: pr8 materialize %s: %w", id, err)
		}
	}

	// Warmup: one untimed replay so every pass sees a warm page cache.
	if _, _, _, err := pr8Pass(eng, reqs, trex.MethodERA); err != nil {
		return nil, err
	}

	// perID[id][method] collects per-request wall times.
	perID := make(map[string]map[string][]time.Duration)
	record := func(id, method string, d time.Duration) {
		if perID[id] == nil {
			perID[id] = make(map[string][]time.Duration)
		}
		perID[id][method] = append(perID[id][method], d)
	}

	passes := append(append([]trex.Method(nil), pr8FixedMethods...), trex.MethodRace, trex.MethodAuto)
	var autoPages, racePages uint64
	autoRouted := make(map[string]map[string]int) // query id -> executed method -> count
	for _, m := range passes {
		lats, executed, io, err := pr8Pass(eng, reqs, m)
		if err != nil {
			return nil, err
		}
		v := PR8Variant{Name: m.String(), Methods: make(map[string]int), PageReads: io.pages, BytesRead: io.bytes}
		all := make([]time.Duration, 0, len(lats))
		for i, d := range lats {
			all = append(all, d)
			id := idOf[reqs[i].nexi]
			record(id, m.String(), d)
			v.Methods[executed[i]]++
			if m == trex.MethodAuto {
				if autoRouted[id] == nil {
					autoRouted[id] = make(map[string]int)
				}
				autoRouted[id][executed[i]]++
			}
		}
		v.MeanWallMS = pr8MeanMS(all)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		v.P99WallMS = pr7PercentileMS(all, 0.99)
		rep.Variants = append(rep.Variants, v)
		switch m {
		case trex.MethodAuto:
			autoPages = io.pages
		case trex.MethodRace:
			racePages = io.pages
		}
	}

	// Per-query: cheapest fixed method by mean wall vs auto's routing.
	var ids []string
	for id := range pr7Weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var bestSum, autoSum float64
	var n int
	for _, id := range ids {
		byMethod := perID[id]
		qb := PR8QueryBest{ID: id, FixedMeanMS: make(map[string]float64, len(pr8FixedMethods))}
		for _, m := range pr8FixedMethods {
			mean := pr8MeanMS(byMethod[m.String()])
			qb.FixedMeanMS[m.String()] = mean
			if qb.BestFixed == "" || mean < qb.BestFixedMS {
				qb.BestFixed, qb.BestFixedMS = m.String(), mean
			}
		}
		autoLats := byMethod[trex.MethodAuto.String()]
		qb.Requests = len(autoLats)
		qb.AutoMeanMS = pr8MeanMS(autoLats)
		if qb.BestFixedMS > 0 {
			qb.AutoOverBestX = qb.AutoMeanMS / qb.BestFixedMS
		}
		qb.AutoRouted = pr8Dominant(autoRouted[id])
		bestSum += qb.BestFixedMS * float64(qb.Requests)
		autoSum += qb.AutoMeanMS * float64(qb.Requests)
		n += qb.Requests
		rep.PerQuery = append(rep.PerQuery, qb)
	}
	if n > 0 {
		rep.BestFixedMeanWallMS = bestSum / float64(n)
	}
	if rep.BestFixedMeanWallMS > 0 {
		rep.AutoOverBestFixed = (autoSum / float64(n)) / rep.BestFixedMeanWallMS
	}
	if autoPages > 0 {
		rep.RaceOverAutoPageReads = float64(racePages) / float64(autoPages)
	}

	st := eng.PlannerStatus()
	rep.PlannerObservations = st.Observations
	rep.CalibratedBuckets = st.CalibratedBuckets

	shadow, err := pr8Shadow(col, reqs)
	if err != nil {
		return nil, err
	}
	rep.Shadow = *shadow
	return rep, nil
}

type pr8IO struct {
	pages uint64
	bytes uint64
}

// pr8Pass replays the request sequence under one method policy,
// returning per-request wall times, per-request executed methods, and
// the pass's engine-level I/O delta.
func pr8Pass(eng *trex.Engine, reqs []pr7Request, m trex.Method) ([]time.Duration, []string, pr8IO, error) {
	lats := make([]time.Duration, len(reqs))
	executed := make([]string, len(reqs))
	before := eng.DB().Stats()
	for i, r := range reqs {
		start := time.Now()
		res, err := eng.QueryOpts(r.nexi, trex.QueryOptions{K: r.k, Method: m, NoCache: true})
		if err != nil {
			return nil, nil, pr8IO{}, fmt.Errorf("bench: pr8 %v pass: %w", m, err)
		}
		lats[i] = time.Since(start)
		executed[i] = res.Method.String()
	}
	// Shadows are off, but race losers may still be draining; the next
	// pass's delta must not absorb them.
	eng.DrainShadows()
	d := eng.DB().Stats().Sub(before)
	return lats, executed, pr8IO{pages: d.CacheHits + d.CacheMisses, bytes: d.PagesRead * storage.PageSize}, nil
}

// pr8Dominant returns the most frequent key (ties by name, for
// determinism).
func pr8Dominant(counts map[string]int) string {
	best, bestN := "", -1
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

func pr8MeanMS(lats []time.Duration) float64 {
	if len(lats) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	return float64(sum.Nanoseconds()) / float64(len(lats)) / 1e6
}

// pr8Shadow builds a second engine with shadow sampling on every auto
// query, replays the workload twice (calibrate, then measure), and
// reports the regret counters.
func pr8Shadow(col *corpus.Collection, reqs []pr7Request) (*PR8Shadow, error) {
	eng, err := trex.CreateMemory(col, &trex.Options{
		Planner: &trex.PlannerOptions{ShadowFraction: 1},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: pr8 shadow engine: %w", err)
	}
	defer eng.Close()
	for id := range pr7Weights {
		q := QueryByID(id)
		if _, err := eng.Materialize(q.NEXI, index.KindRPL, index.KindERPL); err != nil {
			return nil, fmt.Errorf("bench: pr8 shadow materialize %s: %w", id, err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, r := range reqs {
			if _, err := eng.QueryOpts(r.nexi, trex.QueryOptions{K: r.k, NoCache: true}); err != nil {
				return nil, fmt.Errorf("bench: pr8 shadow pass: %w", err)
			}
		}
		eng.DrainShadows()
	}
	st := eng.PlannerStatus()
	out := &PR8Shadow{
		Samples:        st.ShadowSamples,
		Errors:         st.ShadowErrors,
		Mispredictions: st.Mispredictions,
	}
	if st.ShadowSamples > 0 {
		out.RegretRate = float64(st.Mispredictions) / float64(st.ShadowSamples)
	}
	return out, nil
}
