package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
	"trex/internal/frontdoor"
	"trex/internal/index"
)

// PR9 measures the distributed serving tier against a single engine on
// the same skewed IEEE replay PR 7 uses: offered-rate sweeps (open-loop,
// latency from scheduled arrival) against the single engine and
// coordinators at 1/2/4/8 shards, all behind an identical front door.
// Every query runs distributed TA at small k, so the report also counts
// coordinator early-stops — shards abandoned while still truncated
// because their threshold bound fell below the global k-th score.
// `make bench-cluster` serializes the report to BENCH_PR9.json.
//
// Throughput scaling caveat: shards here are goroutines in one process,
// so ok-QPS gains over the single engine require real hardware
// parallelism. On a single-core container (GOMAXPROCS=1) the expected
// result is parity on throughput — the distributed win shows up in
// per-shard pages read and early-stops, not QPS. The report records the
// scheduler width so readers can interpret the numbers.

// PR9Point is one (variant, offered-rate) measurement.
type PR9Point struct {
	OfferedQPS    float64 `json:"offeredQps"`
	AchievedQPS   float64 `json:"achievedQps"`
	P50MS         float64 `json:"p50Ms"`
	P99MS         float64 `json:"p99Ms"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	QueueTimeouts int     `json:"queueTimeouts"`
	Errors        int     `json:"errors"`
	// PageReads is the total retrieval page reads across successful
	// requests (for clusters: summed over every shard fetch).
	PageReads uint64 `json:"pageReads"`
	// EarlyStops / Fetches are the coordinator's distributed-TA
	// accounting summed over successful requests (0 for the single
	// engine).
	EarlyStops int `json:"earlyStops"`
	Fetches    int `json:"fetches"`
}

// PR9Variant is one serving configuration's offered-rate curve.
type PR9Variant struct {
	Name     string     `json:"name"`
	Shards   int        `json:"shards"`
	Replicas int        `json:"replicas"`
	Points   []PR9Point `json:"points"`
}

// PR9Report is the distributed-vs-single serving comparison.
type PR9Report struct {
	Corpus struct {
		Style string `json:"style"`
		Docs  int    `json:"docs"`
		Seed  int64  `json:"seed"`
	} `json:"corpus"`
	Workload struct {
		Requests int                `json:"requests"`
		K        int                `json:"k"`
		Method   string             `json:"method"`
		Weights  map[string]float64 `json:"weights"`
	} `json:"workload"`
	// NumCPU / GOMAXPROCS record the scheduler width the sweep ran under;
	// QPS scaling across shard counts is bounded by them.
	NumCPU     int `json:"numCpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// SingleCoreCaveat documents why shard counts cannot beat the single
	// engine on throughput when the box has one core (empty on
	// multi-core runs).
	SingleCoreCaveat string `json:"singleCoreCaveat,omitempty"`
	// SerialCapacityQPS is the single engine's uncached single-threaded
	// throughput on the replay; offered rates are multiples of it.
	SerialCapacityQPS float64 `json:"serialCapacityQps"`
	// SpeedupAt4Shards is the best achieved ok-QPS of the 4-shard
	// coordinator over the single engine's best.
	SpeedupAt4Shards float64      `json:"speedupAt4Shards"`
	Variants         []PR9Variant `json:"variants"`
}

const (
	pr9K        = 5
	pr9Requests = 300
)

// pr9ShardCounts is the sweep's cluster sizes.
var pr9ShardCounts = []int{1, 2, 4, 8}

// pr9Multipliers are offered rates as fractions of the single engine's
// serial capacity.
var pr9Multipliers = []float64{0.5, 1, 2}

// pr9QueryFunc runs one request against a serving configuration and
// reports its retrieval accounting.
type pr9QueryFunc func(nexi string, k int) (pages uint64, earlyStops, fetches int, err error)

// PR9 builds the serving variants over one IEEE corpus and sweeps the
// offered rate against each.
func PR9(scale float64) (*PR9Report, error) {
	if scale <= 0 {
		scale = 1
	}
	docs := int(float64(DefaultIEEEDocs) * scale)
	col := corpus.GenerateIEEE(docs, DefaultSeed)

	rep := &PR9Report{}
	rep.Corpus.Style = "ieee"
	rep.Corpus.Docs = docs
	rep.Corpus.Seed = DefaultSeed
	rep.Workload.Requests = pr9Requests
	rep.Workload.K = pr9K
	rep.Workload.Method = trex.MethodTA.String()
	rep.Workload.Weights = pr7Weights
	rep.NumCPU = runtime.NumCPU()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	if rep.GOMAXPROCS <= 1 || rep.NumCPU <= 1 {
		rep.SingleCoreCaveat = "shards are goroutines in one process; with a single-core scheduler the coordinator cannot exceed single-engine QPS — expect parity or below on throughput (scatter-gather adds per-shard fetch overhead on one core) and read the early-stop and per-shard page-read columns instead"
	}

	reqs := pr7Replay(pr9Requests)
	fd := func() *trex.FrontDoorOptions {
		return &trex.FrontDoorOptions{MaxInflight: 4, QueueDepth: 16, QueueTimeout: 100 * time.Millisecond}
	}

	// The single-engine baseline.
	eng, err := trex.CreateMemory(col, &trex.Options{FrontDoor: fd()})
	if err != nil {
		return nil, fmt.Errorf("bench: pr9 single engine: %w", err)
	}
	for id := range pr7Weights {
		if _, err := eng.Materialize(QueryByID(id).NEXI, index.KindRPL, index.KindERPL); err != nil {
			eng.Close()
			return nil, fmt.Errorf("bench: pr9 materialize %s: %w", id, err)
		}
	}
	capacity, err := pr9SerialCapacity(eng, reqs)
	if err != nil {
		eng.Close()
		return nil, err
	}
	rep.SerialCapacityQPS = capacity

	singleDo := func(nexi string, k int) (uint64, int, int, error) {
		res, err := eng.QueryOpts(nexi, trex.QueryOptions{K: k, Method: trex.MethodTA})
		if err != nil {
			return 0, 0, 0, err
		}
		var pages uint64
		if res.Stats != nil {
			pages = res.Stats.PageReads
		}
		return pages, 0, 1, nil
	}
	sv, err := pr9RunVariant("single", 0, 0, reqs, capacity, singleDo)
	eng.Close()
	if err != nil {
		return nil, err
	}
	rep.Variants = append(rep.Variants, sv)

	for _, shards := range pr9ShardCounts {
		cl, err := cluster.New(col, cluster.Options{Shards: shards, Replicas: 1, FrontDoor: fd()})
		if err != nil {
			return nil, fmt.Errorf("bench: pr9 cluster %d shards: %w", shards, err)
		}
		for id := range pr7Weights {
			if err := cl.Materialize(QueryByID(id).NEXI, index.KindRPL, index.KindERPL); err != nil {
				cl.Close()
				return nil, fmt.Errorf("bench: pr9 cluster %d materialize %s: %w", shards, id, err)
			}
		}
		clusterDo := func(nexi string, k int) (uint64, int, int, error) {
			res, err := cl.Query(nexi, k, trex.MethodTA)
			if err != nil {
				return 0, 0, 0, err
			}
			var pages uint64
			if res.Stats != nil {
				pages = res.Stats.PageReads
			}
			return pages, res.Cluster.EarlyStops, res.Cluster.Fetches, nil
		}
		cv, err := pr9RunVariant(fmt.Sprintf("cluster-%d", shards), shards, 1, reqs, capacity, clusterDo)
		cl.Close()
		if err != nil {
			return nil, err
		}
		rep.Variants = append(rep.Variants, cv)
	}

	rep.SpeedupAt4Shards = pr9Speedup(rep.Variants, "single", "cluster-4")
	return rep, nil
}

// pr9Speedup compares the best achieved ok-QPS of two variants.
func pr9Speedup(vs []PR9Variant, base, target string) float64 {
	best := func(name string) float64 {
		for _, v := range vs {
			if v.Name != name {
				continue
			}
			m := 0.0
			for _, p := range v.Points {
				if p.AchievedQPS > m {
					m = p.AchievedQPS
				}
			}
			return m
		}
		return 0
	}
	b, t := best(base), best(target)
	if b <= 0 {
		return 0
	}
	return t / b
}

// pr9SerialCapacity times one uncached single-threaded TA replay pass
// (after a warmup pass) and returns requests/second.
func pr9SerialCapacity(eng *trex.Engine, reqs []pr7Request) (float64, error) {
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		for _, r := range reqs {
			if _, err := eng.QueryOpts(r.nexi, trex.QueryOptions{K: pr9K, Method: trex.MethodTA, NoCache: true}); err != nil {
				return 0, fmt.Errorf("bench: pr9 serial pass: %w", err)
			}
		}
		if pass == 1 {
			return float64(len(reqs)) / time.Since(start).Seconds(), nil
		}
	}
	return 0, nil
}

// pr9RunVariant sweeps the offered-rate multipliers against one serving
// configuration.
func pr9RunVariant(name string, shards, replicas int, reqs []pr7Request, capacity float64, do pr9QueryFunc) (PR9Variant, error) {
	v := PR9Variant{Name: name, Shards: shards, Replicas: replicas}
	for _, mult := range pr9Multipliers {
		pt, err := pr9RunPoint(reqs, capacity*mult, do)
		if err != nil {
			return v, fmt.Errorf("bench: pr9 %s: %w", name, err)
		}
		v.Points = append(v.Points, pt)
	}
	return v, nil
}

// pr9RunPoint offers the replay open-loop at the given rate, measuring
// latency from each request's scheduled arrival.
func pr9RunPoint(reqs []pr7Request, offered float64, do pr9QueryFunc) (PR9Point, error) {
	pt := PR9Point{OfferedQPS: offered}
	if offered <= 0 {
		return pt, fmt.Errorf("offered rate %f", offered)
	}
	n := len(reqs)
	lats := make([]time.Duration, n)
	outcomes := make([]int8, n)
	var pages, early, fetches atomic.Uint64

	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / offered)
	start := time.Now()
	for i := 0; i < n; i++ {
		at := start.Add(time.Duration(i) * interval)
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, at time.Time) {
			defer wg.Done()
			p, e, f, err := do(reqs[i].nexi, pr9K)
			lats[i] = time.Since(at)
			switch {
			case err == nil:
				outcomes[i] = 0
				pages.Add(p)
				early.Add(uint64(e))
				fetches.Add(uint64(f))
			case errors.Is(err, frontdoor.ErrShed):
				outcomes[i] = 1
			case errors.Is(err, frontdoor.ErrQueueTimeout):
				outcomes[i] = 2
			default:
				outcomes[i] = 3
			}
		}(i, at)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var okLats []time.Duration
	for i := range outcomes {
		switch outcomes[i] {
		case 0:
			pt.OK++
			okLats = append(okLats, lats[i])
		case 1:
			pt.Shed++
		case 2:
			pt.QueueTimeouts++
		default:
			pt.Errors++
		}
	}
	pt.AchievedQPS = float64(pt.OK) / elapsed.Seconds()
	sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
	pt.P50MS = pr7PercentileMS(okLats, 0.50)
	pt.P99MS = pr7PercentileMS(okLats, 0.99)
	pt.PageReads = pages.Load()
	pt.EarlyStops = int(early.Load())
	pt.Fetches = int(fetches.Load())
	return pt, nil
}
