// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5) over the synthetic
// collections: Table 1 (query translations and answer counts), Figures
// 4-6 (evaluation time of ERA, TA, ITA and Merge as a function of k), the
// summary-size statistics of Section 2.1, the index-size statistics of
// Section 5.1, the list-read-depth observation of Section 5.2, and a
// greedy-vs-optimal validation of Theorem 4.2.
//
// Both the trexbench binary and the repository's testing.B benchmarks are
// thin wrappers over this package.
package bench

import "trex/internal/corpus"

// QueryDef is one benchmark query, mirroring a row of the paper's Table 1.
type QueryDef struct {
	// ID is the INEX topic number the paper uses.
	ID string
	// NEXI is the query text, adapted to the synthetic collections'
	// vocabularies (same structural/term shape as the original topic).
	NEXI string
	// Style selects which collection the query runs on.
	Style corpus.Style
	// PaperSIDs/PaperTerms/PaperAnswers are the values the paper's
	// Table 1 reports, for side-by-side comparison.
	PaperSIDs    int
	PaperTerms   int
	PaperAnswers int
	// Regime summarizes the behavior the paper's figure shows for this
	// query, which the reproduction should preserve in shape.
	Regime string
}

// PaperQueries are the seven queries of Table 1. The NEXI text matches
// the paper's topics; the topic words are planted in the generated
// collections at fractions that reproduce each query's selectivity regime.
var PaperQueries = []QueryDef{
	{
		ID:        "202",
		NEXI:      `//article[about(., ontologies)]//sec[about(., ontologies case study)]`,
		Style:     corpus.StyleIEEE,
		PaperSIDs: 11, PaperTerms: 4, PaperAnswers: 8574,
		Regime: "broad: Merge << TA ~ ERA; ideal heap would rescue TA",
	},
	{
		ID:        "203",
		NEXI:      `//sec[about(., code signing verification)]`,
		Style:     corpus.StyleIEEE,
		PaperSIDs: 10, PaperTerms: 3, PaperAnswers: 5773,
		Regime: "TA << ERA; ITA ~ Merge; TA beats Merge for k < 10",
	},
	{
		ID:        "233",
		NEXI:      `//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`,
		Style:     corpus.StyleIEEE,
		PaperSIDs: 2, PaperTerms: 2, PaperAnswers: 312,
		Regime: "few sids/terms: TA and Merge < 1s vs ERA ~1000s; TA wins",
	},
	{
		ID:        "260",
		NEXI:      `//bdy//*[about(., model checking state space explosion)]`,
		Style:     corpus.StyleIEEE,
		PaperSIDs: 1693, PaperTerms: 5, PaperAnswers: 258237,
		Regime: "typical: TA best only for k <= 10, Merge wins at larger k",
	},
	{
		ID:        "270",
		NEXI:      `//article//sec[about(., introduction information retrieval)]`,
		Style:     corpus.StyleIEEE,
		PaperSIDs: 10, PaperTerms: 3, PaperAnswers: 84425,
		Regime: "TA time varies drastically with k; Merge flat",
	},
	{
		ID:        "290",
		NEXI:      `//article[about(., "genetic algorithm")]`,
		Style:     corpus.StyleWiki,
		PaperSIDs: 1, PaperTerms: 2, PaperAnswers: 144872,
		Regime: "Merge usually wins; TA overtakes for k > 2500",
	},
	{
		ID:        "292",
		NEXI:      `//article//figure[about(., renaissance painting italian flemish -french -german)]`,
		Style:     corpus.StyleWiki,
		PaperSIDs: 35, PaperTerms: 6, PaperAnswers: 478,
		Regime: "many sids, few answers: ERA awful, TA slightly beats Merge",
	},
}

// QueryByID returns the paper query with the given topic id, or nil.
func QueryByID(id string) *QueryDef {
	for i := range PaperQueries {
		if PaperQueries[i].ID == id {
			return &PaperQueries[i]
		}
	}
	return nil
}
