// Package cluster is TReX's distributed serving tier: the document
// space is partitioned round-robin into N independent engine shards
// (each its own store, segments and telemetry), every shard is served
// by R replicas kept byte-identical through a sequenced apply channel,
// and a coordinator translates each NEXI query once, scatters it, and
// gathers a global top-k with a distributed threshold algorithm — it
// stops pulling from any shard whose local score bound falls below the
// global k-th score.
//
// Byte-identical distributed rankings rest on two invariants:
//
//   - One sid space. A single structural summary is built over the full
//     corpus and every replica engine gets a private deep copy, so a
//     query translates to the same (sids, terms) everywhere.
//   - Global statistics. BM25 scores depend on collection statistics
//     and per-term df/cf; each shard's exact local totals are
//     aggregated and the merged global values written back into every
//     replica (trex.SyncStatistics), using the same arithmetic the
//     single-engine build uses.
//
// With those two pinned, a shard scores its local documents exactly as
// a single engine over the whole corpus would, and a merge of shard
// top-k lists under the engine's tie-break order reproduces the
// single-engine ranking byte for byte — the invariant the distributed
// differential oracle (internal/oracle/cluster.go) checks.
package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"trex"
	"trex/internal/corpus"
	"trex/internal/frontdoor"
	"trex/internal/summary"
	"trex/internal/telemetry"
)

// Options configures a cluster build.
type Options struct {
	// Shards is the number of document-space partitions (>= 1).
	Shards int
	// Replicas is the number of engines serving each shard (>= 1).
	// Reads are load-balanced round-robin across live replicas; writes
	// are fanned out through the shard's sequenced apply channel.
	Replicas int
	// Engine is the per-replica engine template. SharedSummary,
	// FrontDoor and Autopilot are overridden by the cluster: the
	// summary is built once over the full corpus, overload protection
	// lives at the coordinator, and self-management must flow through
	// Cluster.SelfManage so replicas stay byte-identical.
	Engine trex.Options
	// FrontDoor configures coordinator-level admission control, the
	// default per-query deadline, and the cluster result cache
	// (invalidated when any shard's write epoch moves). Nil disables
	// all three.
	FrontDoor *trex.FrontDoorOptions
	// DisableMetrics turns off the coordinator's trex_cluster_*
	// registry (per-replica engine telemetry is governed by
	// Engine.Telemetry).
	DisableMetrics bool
}

// Cluster is a built distributed tier: N*R replica engines plus the
// coordinator state (admission, cache, metrics, the shared summary).
type Cluster struct {
	shards   []*shard
	nShards  int
	replicas int

	// sum is the coordinator's own deep copy of the global structural
	// summary, used to translate queries once per request. It is
	// read-only after build (cluster AddDocuments rejects documents
	// that would grow the summary — see AddDocuments).
	sum *summary.Summary
	// stop is the stopword set the replicas persisted, for the
	// coordinator's pushdown decision (negated stopwords carry no
	// signal, mirroring the engine's plan phase).
	stop map[string]struct{}

	adm      *frontdoor.Admission
	rcache   *frontdoor.Cache
	deadline time.Duration

	// docs counts total documents across the cluster (the next global
	// id); AddDocuments advances it.
	docs atomic.Int64

	// fetchHook is the fault-injection hook called at every shard
	// fetch boundary (see SetFetchHook).
	fetchHook atomic.Pointer[func(shard, replica int)]

	met    *clusterMetrics
	closed atomic.Bool
}

// New partitions col into opts.Shards round-robin shards and builds
// opts.Replicas in-memory engines per shard, all sharing one summary
// (deep-copied per replica) and globally aggregated statistics.
func New(col *corpus.Collection, opts Options) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard (got %d)", opts.Shards)
	}
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 replica (got %d)", opts.Replicas)
	}
	aliases := col.Aliases
	if opts.Engine.Aliases != nil {
		aliases = opts.Engine.Aliases
	}
	sum, err := summary.Build(col, summary.Options{
		Kind:    opts.Engine.SummaryKind,
		Aliases: aliases,
		K:       opts.Engine.K,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: build global summary: %w", err)
	}
	parts, err := partitionCollection(col, opts.Shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		nShards:  opts.Shards,
		replicas: opts.Replicas,
		sum:      sum,
		stop:     map[string]struct{}{},
	}
	c.docs.Store(int64(len(col.Docs)))
	for _, w := range opts.Engine.Stopwords {
		c.stop[w] = struct{}{}
	}
	for s := 0; s < opts.Shards; s++ {
		sh := newShard(s)
		for r := 0; r < opts.Replicas; r++ {
			eopts := opts.Engine // copy the template
			eopts.FrontDoor = nil
			eopts.Autopilot = nil
			cp, err := copySummary(sum)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: copy summary for shard %d replica %d: %w", s, r, err)
			}
			eopts.SharedSummary = cp
			eng, err := trex.CreateMemory(parts[s], &eopts)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: build shard %d replica %d: %w", s, r, err)
			}
			sh.addReplica(eng)
		}
		sh.start()
		c.shards = append(c.shards, sh)
	}
	if err := c.syncStatistics(); err != nil {
		c.Close()
		return nil, err
	}
	if fd := opts.FrontDoor; fd != nil {
		if fd.MaxInflight > 0 {
			c.adm = frontdoor.NewAdmission(frontdoor.AdmissionOptions{
				MaxInflight:  fd.MaxInflight,
				QueueDepth:   fd.QueueDepth,
				QueueTimeout: fd.QueueTimeout,
			})
		}
		if fd.CacheEntries > 0 {
			c.rcache = frontdoor.NewCache(fd.CacheEntries)
		}
		c.deadline = fd.Deadline
	}
	if !opts.DisableMetrics {
		c.met = newClusterMetrics(c)
	}
	return c, nil
}

// copySummary deep-copies a structural summary through its binary
// snapshot codec. Sharing one *Summary between engines is unsafe:
// AppendDocuments mutates it in place.
func copySummary(s *summary.Summary) (*summary.Summary, error) {
	b, err := s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	cp := &summary.Summary{}
	if err := cp.UnmarshalBinary(b); err != nil {
		return nil, err
	}
	return cp, nil
}

// syncStatistics aggregates every shard's exact local statistics and
// writes the merged global values into every replica. Called at build
// and after every cluster AddDocuments (scores must reflect the whole
// corpus, not one shard's slice of it).
func (c *Cluster) syncStatistics() error {
	parts := make([]*trex.Statistics, 0, c.nShards)
	for _, sh := range c.shards {
		r := sh.anyUp()
		if r == nil {
			return fmt.Errorf("cluster: shard %d has no live replica to collect statistics from", sh.id)
		}
		st, err := r.eng.CollectStatistics()
		if err != nil {
			return fmt.Errorf("cluster: shard %d statistics: %w", sh.id, err)
		}
		parts = append(parts, st)
	}
	global := trex.MergeStatistics(parts)
	for _, sh := range c.shards {
		if err := sh.apply(op{kind: opSyncStats, stats: global}); err != nil {
			return fmt.Errorf("cluster: shard %d stats sync: %w", sh.id, err)
		}
	}
	return nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.nShards }

// Replicas returns the per-shard replica count.
func (c *Cluster) Replicas() int { return c.replicas }

// Engine returns one replica engine (for tests and per-shard
// inspection endpoints). It stays owned by the cluster.
func (c *Cluster) Engine(shard, replica int) *trex.Engine {
	return c.shards[shard].replicas[replica].eng
}

// Epoch is the cluster-wide write epoch: the sum of every replica
// engine's write epoch. Any write anywhere — including a revived
// replica replaying its backlog — moves the sum, which is what the
// coordinator's result cache keys on. A sum (not a max) also moves
// during partially applied fan-outs, so a cache fill that raced a
// write is rejected by the double-read guard in QueryOptsCtx.
func (c *Cluster) Epoch() uint64 {
	var sum uint64
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			sum += r.eng.WriteEpoch()
		}
	}
	return sum
}

// Admission exposes the coordinator's admission gate (nil when
// disabled).
func (c *Cluster) Admission() *frontdoor.Admission { return c.adm }

// ResultCache exposes the coordinator's result cache (nil when
// disabled).
func (c *Cluster) ResultCache() *frontdoor.Cache { return c.rcache }

// MetricsRegistry exposes the coordinator's trex_cluster_* registry
// (nil when disabled). Per-replica engine registries are reachable via
// Engine(shard, replica).MetricsRegistry().
func (c *Cluster) MetricsRegistry() *telemetry.Registry {
	if c.met == nil {
		return nil
	}
	return c.met.reg
}

// Kill marks a replica dead: it stops applying writes and is excluded
// from reads. In-flight fetches against it are discarded and retried
// on a live replica (counted as failovers).
func (c *Cluster) Kill(shard, replica int) {
	c.shards[shard].replicas[replica].kill()
}

// Revive brings a killed replica back: its missed ops are replayed
// through the sequenced apply channel, and once it has converged to
// the shard's current epoch it rejoins the read rotation. Blocks until
// caught up.
func (c *Cluster) Revive(shard, replica int) error {
	return c.shards[shard].revive(replica)
}

// ReplicaUp reports whether the replica is serving reads.
func (c *Cluster) ReplicaUp(shard, replica int) bool {
	return c.shards[shard].replicas[replica].state() == replicaUp
}

// ReplicaEpoch returns how many sequenced ops the replica has applied.
func (c *Cluster) ReplicaEpoch(shard, replica int) uint64 {
	return c.shards[shard].replicas[replica].appliedSeq()
}

// ShardEpoch returns the shard's op-log length (the epoch every live
// replica has reached — writes are synchronous).
func (c *Cluster) ShardEpoch(shard int) uint64 {
	return c.shards[shard].logLen()
}

// Close shuts down every replica engine and the appliers.
func (c *Cluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, sh := range c.shards {
		sh.stopApplier()
		for _, r := range sh.replicas {
			if err := r.eng.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
