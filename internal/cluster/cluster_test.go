package cluster_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
	"trex/internal/index"
)

// synthDoc builds one <r><s>...</s></r> document whose term frequency
// for "hot" is tf, padded with distinct filler so lengths vary.
func synthDoc(id, tf int) corpus.Document {
	var sb strings.Builder
	sb.WriteString("<r><s>")
	for i := 0; i < tf; i++ {
		sb.WriteString("hot ")
	}
	sb.WriteString(fmt.Sprintf("filler%d mundane words</s></r>", id%7))
	return corpus.Document{ID: id, Name: fmt.Sprintf("d%d", id), Data: []byte(sb.String())}
}

// skewedCollection concentrates high-tf documents on global ids
// congruent to 0 mod hotStride — with round-robin partitioning those
// all land on shard 0, which is what makes the other shards' bounds
// collapse below the global k-th score.
func skewedCollection(n, hotStride int) *corpus.Collection {
	docs := make([]corpus.Document, n)
	for i := range docs {
		tf := 1
		if i%hotStride == 0 {
			tf = 6 + i%3
		}
		docs[i] = synthDoc(i, tf)
	}
	return &corpus.Collection{Docs: docs}
}

func mustCluster(t *testing.T, col *corpus.Collection, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(col, opts)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustSingle(t *testing.T, col *corpus.Collection) *trex.Engine {
	t.Helper()
	eng, err := trex.CreateMemory(col, &trex.Options{})
	if err != nil {
		t.Fatalf("CreateMemory: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// materializeBoth builds the redundant RPL/ERPL lists for q on the
// single engine and across the cluster — TA/NRA/Merge read only
// materialized lists.
func materializeBoth(t *testing.T, single *trex.Engine, c *cluster.Cluster, q string) {
	t.Helper()
	if single != nil {
		if _, err := single.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatalf("single materialize: %v", err)
		}
	}
	if c != nil {
		if err := c.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
			t.Fatalf("cluster materialize: %v", err)
		}
	}
}

func sameAnswers(t *testing.T, got, want []trex.Answer, label string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: rankings diverge\n got: %+v\nwant: %+v", label, got, want)
	}
}

const hotQuery = `//s[about(., hot)]`

func TestDistributedMatchesSingleEngine(t *testing.T) {
	col := skewedCollection(40, 4)
	single := mustSingle(t, col)
	materializeBoth(t, single, nil, hotQuery)
	for _, shards := range []int{1, 2, 4} {
		for _, replicas := range []int{1, 2} {
			c := mustCluster(t, col, cluster.Options{Shards: shards, Replicas: replicas})
			materializeBoth(t, nil, c, hotQuery)
			for _, k := range []int{1, 3, 10, 0} {
				for _, m := range []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodNRA, trex.MethodMerge} {
					want, err := single.QueryOpts(hotQuery, trex.QueryOptions{K: k, Method: m})
					if err != nil {
						t.Fatalf("single query: %v", err)
					}
					got, err := c.Query(hotQuery, k, m)
					if err != nil {
						t.Fatalf("cluster query (N=%d R=%d k=%d m=%v): %v", shards, replicas, k, m, err)
					}
					sameAnswers(t, got.Answers, want.Answers,
						fmt.Sprintf("N=%d R=%d k=%d m=%v", shards, replicas, k, m))
					if got.TotalAnswers != want.TotalAnswers {
						t.Fatalf("N=%d R=%d k=%d m=%v: TotalAnswers %d != single %d",
							shards, replicas, k, m, got.TotalAnswers, want.TotalAnswers)
					}
				}
			}
		}
	}
}

func TestDistributedOffsetPagination(t *testing.T) {
	col := skewedCollection(30, 3)
	single := mustSingle(t, col)
	c := mustCluster(t, col, cluster.Options{Shards: 4, Replicas: 1})
	materializeBoth(t, single, c, hotQuery)
	for _, off := range []int{0, 2, 5, 100} {
		want, err := single.QueryOpts(hotQuery, trex.QueryOptions{K: 3, Method: trex.MethodTA, Offset: off})
		if err != nil {
			t.Fatalf("single: %v", err)
		}
		got, err := c.QueryOptsCtx(t.Context(), hotQuery, trex.QueryOptions{K: 3, Method: trex.MethodTA, Offset: off})
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		sameAnswers(t, got.Answers, want.Answers, fmt.Sprintf("offset=%d", off))
	}
}

func TestEarlyStopsOnSkewedCorpus(t *testing.T) {
	// Hot documents all live on shard 0 (ids ≡ 0 mod 4); shards 1-3
	// truncate with low bounds and must be early-stopped, not drained.
	col := skewedCollection(64, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 4, Replicas: 1})
	single := mustSingle(t, col)
	materializeBoth(t, single, c, hotQuery)
	res, err := c.Query(hotQuery, 3, trex.MethodTA)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Cluster.EarlyStops == 0 {
		t.Fatalf("want early-stops > 0 on the skewed corpus, got stats %+v", res.Cluster)
	}
	if res.Cluster.Fetches < 4 {
		t.Fatalf("want at least one fetch per shard, got %+v", res.Cluster)
	}
	want, err := single.Query(hotQuery, 3, trex.MethodTA)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	sameAnswers(t, res.Answers, want.Answers, "skewed top-3")
}

func TestReplicaFailoverKeepsServing(t *testing.T) {
	col := skewedCollection(32, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 2})
	single := mustSingle(t, col)
	materializeBoth(t, single, c, hotQuery)
	want, err := single.Query(hotQuery, 5, trex.MethodMerge)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	c.Kill(0, 0)
	c.Kill(1, 1)
	for i := 0; i < 4; i++ {
		got, err := c.Query(hotQuery, 5, trex.MethodMerge)
		if err != nil {
			t.Fatalf("query with one replica down per shard: %v", err)
		}
		sameAnswers(t, got.Answers, want.Answers, "failover ranking")
	}
	c.Kill(0, 1) // whole shard 0 dead now
	if _, err := c.Query(hotQuery, 5, trex.MethodMerge); err == nil {
		t.Fatalf("want an error when a whole shard is dead")
	}
}

func TestWriteFanoutConvergesReplicas(t *testing.T) {
	col := skewedCollection(24, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 3})
	if err := c.Materialize(hotQuery, index.KindRPL, index.KindERPL); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	extra := []corpus.Document{synthDoc(24, 2), synthDoc(25, 9)}
	if err := c.AddDocuments(extra); err != nil {
		t.Fatalf("add documents: %v", err)
	}
	for s := 0; s < c.Shards(); s++ {
		top := c.ShardEpoch(s)
		for r := 0; r < c.Replicas(); r++ {
			if got := c.ReplicaEpoch(s, r); got != top {
				t.Fatalf("shard %d replica %d at epoch %d, want %d", s, r, got, top)
			}
		}
	}
	// Every replica of a shard must answer byte-identically after the
	// fan-out (the sequenced, deterministic op property).
	for s := 0; s < c.Shards(); s++ {
		var base *trex.Result
		for r := 0; r < c.Replicas(); r++ {
			res, err := c.Engine(s, r).Query(hotQuery, 0, trex.MethodERA)
			if err != nil {
				t.Fatalf("shard %d replica %d: %v", s, r, err)
			}
			if base == nil {
				base = res
			} else {
				sameAnswers(t, res.Answers, base.Answers, fmt.Sprintf("shard %d replica %d", s, r))
			}
		}
	}
	// And the cluster as a whole must match a single engine over the
	// extended corpus.
	full := skewedCollection(26, 4)
	full.Docs[24] = synthDoc(24, 2)
	full.Docs[25] = synthDoc(25, 9)
	single := mustSingle(t, full)
	want, err := single.Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	got, err := c.Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	sameAnswers(t, got.Answers, want.Answers, "post-add cluster vs single")
}

// TestStaleCrossShardCacheHitRegression is the front-door epoch fix:
// the coordinator cache must be keyed on an epoch that moves when ANY
// replica of ANY shard takes a write — a coordinator-local or
// shard-0-only epoch would keep serving the old ranking after a write
// lands on another shard.
func TestStaleCrossShardCacheHitRegression(t *testing.T) {
	col := skewedCollection(24, 4)
	c := mustCluster(t, col, cluster.Options{
		Shards:   2,
		Replicas: 1,
		FrontDoor: &trex.FrontDoorOptions{
			CacheEntries: 64,
		},
	})
	r1, err := c.Query(hotQuery, 5, trex.MethodERA)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if r1.Cached {
		t.Fatalf("first query must not be cached")
	}
	r2, err := c.Query(hotQuery, 5, trex.MethodERA)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !r2.Cached {
		t.Fatalf("second identical query must be a cache hit")
	}
	// Out-of-band write on shard 1 only (shard 0's epoch does not
	// move): a materialize bumps the write epoch without changing the
	// ranking, so only a correctly summed cluster epoch notices.
	if _, err := c.Engine(1, 0).Materialize(hotQuery, index.KindRPL); err != nil {
		t.Fatalf("shard-1 materialize: %v", err)
	}
	r3, err := c.Query(hotQuery, 5, trex.MethodERA)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if r3.Cached {
		t.Fatalf("stale cross-shard cache hit: shard 1 took a write but the coordinator served the old entry")
	}
	sameAnswers(t, r3.Answers, r1.Answers, "materialize is rank-safe")

	// A write that changes rankings must be reflected, not served
	// stale: append a document that outranks everything.
	if err := c.AddDocuments([]corpus.Document{synthDoc(24, 12)}); err != nil {
		t.Fatalf("add: %v", err)
	}
	r4, err := c.Query(hotQuery, 5, trex.MethodERA)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if r4.Cached {
		t.Fatalf("cache hit after a ranking-changing write")
	}
	if reflect.DeepEqual(r4.Answers, r1.Answers) {
		t.Fatalf("post-write ranking identical to pre-write ranking; expected the new hot document to appear")
	}
	full := skewedCollection(25, 4)
	full.Docs[24] = synthDoc(24, 12)
	single := mustSingle(t, full)
	want, err := single.Query(hotQuery, 5, trex.MethodERA)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	sameAnswers(t, r4.Answers, want.Answers, "post-write cluster vs single")
}

func TestPartitionRejectsNonDenseIDs(t *testing.T) {
	col := &corpus.Collection{Docs: []corpus.Document{synthDoc(1, 2)}}
	if _, err := cluster.New(col, cluster.Options{Shards: 2, Replicas: 1}); err == nil {
		t.Fatalf("want an error for non-dense document ids")
	}
}

func TestClusterMetricsRegistry(t *testing.T) {
	col := skewedCollection(32, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 2})
	if _, err := c.Query(hotQuery, 3, trex.MethodTA); err != nil {
		t.Fatalf("query: %v", err)
	}
	c.Kill(0, 0)
	var sb strings.Builder
	if err := c.MetricsRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"trex_cluster_queries_total 1",
		`trex_cluster_fetches_total{shard="0"}`,
		`trex_cluster_replica_up{replica="0",shard="0"} 0`,
		`trex_cluster_replica_up{replica="1",shard="0"} 1`,
		"trex_cluster_rounds_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q in:\n%s", want, out)
		}
	}
}
