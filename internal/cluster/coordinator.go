package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trex"
	"trex/internal/index"
	"trex/internal/nexi"
	"trex/internal/retrieval"
	"trex/internal/translate"
)

// The coordinator's distributed threshold algorithm. Each round fetches
// a shard-local top-b from every still-active shard; a shard that
// returned exactly b answers is possibly truncated and its last
// (lowest) returned score is an upper bound on everything it has not
// returned yet. Once the merged heap holds the global top-k, a shard
// whose bound is strictly below the global k-th score cannot contribute
// — equal scores could still displace the k-th by the (doc, end)
// tie-break, so the stop test is strict — and the coordinator stops
// pulling from it (an early-stop). Shards whose bound is still at or
// above the k-th are refetched with a doubled b until every shard is
// either exhausted or early-stopped.

// ShardStats describes one shard's part in a query.
type ShardStats struct {
	// Fetches is the number of rounds this shard was pulled.
	Fetches int
	// Answers is the number of (remapped) answers the shard's final
	// fetch contributed to the merge.
	Answers int
	// PageReads sums the shard's retrieval page reads over all fetches.
	PageReads uint64
	// EarlyStop reports the coordinator stopped pulling from this shard
	// while it was still truncated, because its bound fell below the
	// global k-th score.
	EarlyStop bool
	// Exhausted reports the shard returned everything it had.
	Exhausted bool
	// Replica is the replica that served the final fetch.
	Replica int
}

// ClusterStats describes the scatter-gather behind one Result.
type ClusterStats struct {
	Shards     int
	Rounds     int
	Fetches    int
	EarlyStops int
	Failovers  int
	PerShard   []ShardStats
}

// Result is a coordinator query outcome: the merged engine-shaped
// result plus the distributed-TA accounting.
type Result struct {
	trex.Result
	Cluster ClusterStats
}

// Query evaluates src with top-k k and the given method on every
// shard (no caller deadline).
func (c *Cluster) Query(src string, k int, m trex.Method) (*Result, error) {
	return c.QueryOptsCtx(context.Background(), src, trex.QueryOptions{K: k, Method: m})
}

// QueryOptsCtx is the coordinator's full query entry point: admission
// control, the default front-door deadline, the cluster result cache
// (keyed by the summed write epoch of every replica, so a write on any
// shard invalidates it), then the distributed threshold algorithm.
func (c *Cluster) QueryOptsCtx(ctx context.Context, src string, opts trex.QueryOptions) (*Result, error) {
	if c.met != nil {
		c.met.queries.Add(1)
	}
	if adm := c.adm; adm != nil {
		release, wait, err := adm.Acquire(ctx)
		if err != nil {
			if c.met != nil {
				c.met.errors.Add(1)
			}
			return nil, err
		}
		defer release()
		if c.met != nil {
			c.met.queueWait.Observe(wait.Seconds())
		}
	}
	if d := c.deadline; d > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	cache := c.rcache
	useCache := cache != nil && !opts.NoCache
	var key string
	var epoch uint64
	if useCache {
		key = clusterCacheKey(src, opts)
		// The coordinator holds no cluster-wide lock, so the epoch can
		// move during evaluation; the fill below re-reads it and only
		// caches when nothing was written meanwhile. A hit is safe
		// unconditionally: the entry's epoch matching the current sum
		// proves no replica committed a write since the fill.
		epoch = c.Epoch()
		if v, ok := cache.Get(key, epoch); ok {
			out := *v.(*Result)
			out.Cached = true
			return &out, nil
		}
	}
	res, err := c.scatterGather(ctx, src, opts)
	if err != nil {
		if c.met != nil {
			c.met.errors.Add(1)
		}
		return nil, err
	}
	if useCache && !res.Approximate && c.Epoch() == epoch {
		cache.Put(key, epoch, res)
	}
	return res, nil
}

// clusterCacheKey mirrors the engine's cache key: every option that
// changes the answer set is folded in.
func clusterCacheKey(src string, opts trex.QueryOptions) string {
	return strconv.Itoa(opts.K) + "\x00" + strconv.Itoa(int(opts.Method)) + "\x00" +
		strconv.Itoa(int(opts.Mode)) + "\x00" + strconv.Itoa(opts.Offset) + "\x00" +
		strconv.FormatFloat(opts.PhraseBonus, 'g', -1, 64) + "\x00" + src
}

// shardRun is the coordinator's per-shard scatter state.
type shardRun struct {
	res       *trex.Result  // latest fetch, answers remapped to global ids
	answers   []trex.Answer // remapped answers of the latest fetch
	bound     float64       // upper bound on unreturned scores
	exhausted bool
	curK      int
	stats     ShardStats
}

func (c *Cluster) scatterGather(ctx context.Context, src string, opts trex.QueryOptions) (*Result, error) {
	start := time.Now()
	// Translate once at the coordinator: the shared summary gives the
	// same (sids, terms) every shard will derive, and the clause shape
	// decides whether shard-side evaluation truncates at k (the
	// pushdown rule the engine itself uses).
	q, err := nexi.Parse(src)
	if err != nil {
		return nil, err
	}
	tr, err := translate.Translate(q, c.sum, opts.Mode)
	if err != nil {
		return nil, err
	}
	pushdown := pushdownApplies(tr, c.stop)

	needed := 0
	if opts.K > 0 {
		needed = opts.K + opts.Offset
	}
	runs := make([]*shardRun, c.nShards)
	// Initial per-shard budget: an even split plus one covers the
	// uniform case in one round; skew is what the refetch loop is for.
	k0 := needed
	if needed > 0 && c.nShards > 1 {
		k0 = needed/c.nShards + 1
	}
	for i := range runs {
		runs[i] = &shardRun{bound: math.Inf(1), curK: k0}
	}

	agg := &retrieval.Stats{IOExact: true}
	approx := false
	var failovers uint64
	rounds := 0
	toFetch := make([]int, c.nShards)
	for i := range toFetch {
		toFetch[i] = i
	}
	var merged []trex.Answer
	for len(toFetch) > 0 {
		rounds++
		var wg sync.WaitGroup
		errs := make([]error, len(toFetch))
		for fi, si := range toFetch {
			wg.Add(1)
			go func(fi, si int) {
				defer wg.Done()
				run := runs[si]
				res, rid, fo, err := c.fetchShard(ctx, si, src, opts, run.curK)
				atomic.AddUint64(&failovers, fo)
				if err != nil {
					errs[fi] = err
					return
				}
				run.res = res
				run.stats.Fetches++
				run.stats.Replica = rid
				if res.Stats != nil {
					run.stats.PageReads += res.Stats.PageReads
				}
				run.answers = remapAnswers(res.Answers, si, c.nShards)
				// A shard that returned fewer answers than asked for has
				// nothing more; TotalAnswers cannot stand in for this test
				// because shard-side truncation sets it to len(Answers).
				run.exhausted = run.curK <= 0 || len(res.Answers) < run.curK || res.Approximate
				if run.exhausted {
					run.bound = math.Inf(-1)
				} else {
					run.bound = res.Answers[len(res.Answers)-1].Score
				}
			}(fi, si)
		}
		wg.Wait()
		for fi, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d: %w", toFetch[fi], err)
			}
		}
		for _, si := range toFetch {
			if r := runs[si].res; r != nil {
				accumulateStats(agg, r.Stats)
				if r.Approximate {
					approx = true
				}
			}
			if c.met != nil {
				c.met.fetches[si].Add(1)
				if st := runs[si].res.Stats; st != nil {
					c.met.pageReads[si].Add(st.PageReads)
				}
			}
		}
		merged = mergeAnswers(runs)
		if needed == 0 || approx || ctx.Err() != nil {
			// Fetch-all queries finish in one round; an expired deadline
			// returns the best-effort merge without further pulling.
			break
		}
		var kth float64
		full := len(merged) >= needed
		if full {
			kth = merged[needed-1].Score
		}
		toFetch = toFetch[:0]
		for si, run := range runs {
			if run.exhausted {
				continue
			}
			if !full || run.bound >= kth {
				// Tie-safe refetch test: an unreturned answer scoring
				// exactly kth could still win the (doc, end) tie-break.
				run.curK *= 2
				if run.curK < needed {
					run.curK = needed
				}
				toFetch = append(toFetch, si)
			}
		}
	}

	earlyStops := 0
	for _, run := range runs {
		// An early-stop is a threshold decision: the shard was still
		// truncated when the loop proved it could not contribute. A
		// deadline break is not one.
		if !approx && !run.exhausted && run.res != nil && !math.IsInf(run.bound, 1) {
			run.stats.EarlyStop = true
			earlyStops++
		}
		run.stats.Exhausted = run.exhausted
		run.stats.Answers = len(run.answers)
	}
	if c.met != nil {
		c.met.earlyStops.Add(uint64(earlyStops))
		c.met.failovers.Add(failovers)
		c.met.rounds.Add(uint64(rounds))
	}

	total := mergedTotal(runs, merged, pushdown, needed)
	answers := merged
	if opts.Offset > 0 {
		if opts.Offset >= len(answers) {
			answers = nil
		} else {
			answers = answers[opts.Offset:]
		}
	}
	if opts.K > 0 && len(answers) > opts.K {
		answers = answers[:opts.K]
	}
	agg.Elapsed = time.Since(start)
	agg.Approximate = approx

	out := &Result{
		Result: trex.Result{
			Query:        src,
			Method:       uniformMethod(runs, opts.Method),
			K:            opts.K,
			Answers:      answers,
			TotalAnswers: total,
			Translation:  tr,
			Stats:        agg,
			Approximate:  approx,
		},
	}
	out.Cluster = ClusterStats{
		Shards:     c.nShards,
		Rounds:     rounds,
		EarlyStops: earlyStops,
		Failovers:  int(failovers),
		PerShard:   make([]ShardStats, c.nShards),
	}
	fetches := 0
	for si, run := range runs {
		out.Cluster.PerShard[si] = run.stats
		fetches += run.stats.Fetches
	}
	out.Cluster.Fetches = fetches
	return out, nil
}

// fetchShard pulls one shard's local top-k from a live replica,
// failing over (and counting it) when the chosen replica is found dead
// after the fetch: a result read from a dying replica is discarded,
// never merged.
func (c *Cluster) fetchShard(ctx context.Context, si int, src string, opts trex.QueryOptions, k int) (*trex.Result, int, uint64, error) {
	sh := c.shards[si]
	var failovers uint64
	for attempt := 0; attempt <= len(sh.replicas); attempt++ {
		r := sh.pickUp()
		if r == nil {
			return nil, -1, failovers, fmt.Errorf("no live replicas")
		}
		qo := opts
		qo.K = k
		qo.Offset = 0     // pagination is applied after the global merge
		qo.NoCache = true // the cluster cache sits at the coordinator
		res, err := r.eng.QueryOptsCtx(ctx, src, qo)
		if h := c.fetchHook.Load(); h != nil {
			(*h)(si, r.id)
		}
		if r.state() != replicaUp {
			// The replica died under the fetch; its answer may reflect a
			// half-applied state. Retry on a peer.
			failovers++
			continue
		}
		if err != nil {
			return nil, r.id, failovers, err
		}
		return res, r.id, failovers, nil
	}
	return nil, -1, failovers, fmt.Errorf("no live replicas")
}

// Snippet renders a text snippet for a coordinator answer. The answer
// carries a global document id, but document bytes live only on the
// owning shard, so the call localizes the id and routes to a live
// replica of that shard (with the same discard-on-death failover as
// query fetches).
func (c *Cluster) Snippet(a trex.Answer, terms []string, width int) (string, error) {
	si := shardOf(int(a.Doc), c.nShards)
	sh := c.shards[si]
	local := a
	local.Doc = uint32(localDoc(int(a.Doc), c.nShards))
	for attempt := 0; attempt <= len(sh.replicas); attempt++ {
		r := sh.pickUp()
		if r == nil {
			break
		}
		snip, err := r.eng.Snippet(local, terms, width)
		if r.state() != replicaUp {
			continue
		}
		return snip, err
	}
	return "", fmt.Errorf("cluster: shard %d: no live replicas", si)
}

// remapAnswers rewrites shard-local document ids back to global ids.
// Relative order within the shard is preserved (the mapping is strictly
// monotone per shard), so re-sorting the union with the engine's
// comparator reproduces the single-engine order.
func remapAnswers(in []trex.Answer, shard, shards int) []trex.Answer {
	out := make([]trex.Answer, len(in))
	for i, a := range in {
		a.Doc = globalDoc(a.Doc, shard, shards)
		out[i] = a
	}
	return out
}

// mergeAnswers merges every shard's latest answers under the engine's
// ranking order: score descending, then (doc, end) ascending.
func mergeAnswers(runs []*shardRun) []trex.Answer {
	n := 0
	for _, r := range runs {
		n += len(r.answers)
	}
	if n == 0 {
		// nil, not an empty slice: byte-identical to the engine's own
		// no-answers shape.
		return nil
	}
	out := make([]trex.Answer, 0, n)
	for _, r := range runs {
		out = append(out, r.answers...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return index.CompareDocEnd(out[i].Doc, out[i].End, out[j].Doc, out[j].End) < 0
	})
	return out
}

// mergedTotal reproduces the engine's TotalAnswers semantics. With
// pushdown (single target clause, no negatives) shard retrieval is
// truncated at k, so the count saturates at k — exactly what a single
// engine reports. Without pushdown every shard counts all its matches
// and the global total is their sum.
func mergedTotal(runs []*shardRun, merged []trex.Answer, pushdown bool, needed int) int {
	if pushdown && needed > 0 {
		if len(merged) > needed {
			return needed
		}
		return len(merged)
	}
	total := 0
	for _, r := range runs {
		if r.res != nil {
			total += r.res.TotalAnswers
		}
	}
	return total
}

// uniformMethod reports the shards' resolved method when they agree
// (they always do for fixed-method queries); per-shard planners may
// resolve MethodAuto differently, in which case the requested method
// stands (rankings are method-independent — that is the oracle's
// invariant).
func uniformMethod(runs []*shardRun, requested trex.Method) trex.Method {
	m := requested
	first := true
	for _, r := range runs {
		if r.res == nil {
			continue
		}
		if first {
			m = r.res.Method
			first = false
		} else if m != r.res.Method {
			return requested
		}
	}
	return m
}

// pushdownApplies mirrors the engine's plan phase: top-k pushes into
// shard retrieval only for a single target clause with no surviving
// negated terms (stopworded negatives carry no signal and are dropped
// before the test, as the engine does).
func pushdownApplies(tr *translate.Translation, stop map[string]struct{}) bool {
	if len(tr.Clauses) != 1 || !tr.Clauses[0].IsTarget {
		return false
	}
	for i := range tr.Clauses {
		for _, w := range tr.Clauses[i].NegativeTerms() {
			if _, isStop := stop[w]; !isStop {
				return false
			}
		}
	}
	return true
}

// accumulateStats folds one shard fetch's retrieval stats into the
// coordinator aggregate. Counters sum (refetched rounds did real
// work); IOExact survives only if every constituent was exact.
func accumulateStats(dst, src *retrieval.Stats) {
	if src == nil {
		return
	}
	dst.HeapTime += src.HeapTime
	dst.SortedAccesses += src.SortedAccesses
	dst.SkippedBySID += src.SkippedBySID
	dst.RandomAccesses += src.RandomAccesses
	dst.PositionsScanned += src.PositionsScanned
	dst.ElementsScanned += src.ElementsScanned
	dst.HeapOps += src.HeapOps
	dst.Answers += src.Answers
	dst.CursorSteps += src.CursorSteps
	dst.BlockSkips += src.BlockSkips
	dst.PageReads += src.PageReads
	dst.BytesRead += src.BytesRead
	dst.SegmentRows += src.SegmentRows
	dst.IOExact = dst.IOExact && src.IOExact
	dst.ThresholdStop = dst.ThresholdStop || src.ThresholdStop
}

// SetFetchHook installs the fault-injection hook called after every
// shard fetch returns and before the coordinator's liveness re-check —
// the fetch boundary where a replica death must be survived. Pass nil
// to clear. Test-only plumbing.
func (c *Cluster) SetFetchHook(h func(shard, replica int)) {
	if h == nil {
		c.fetchHook.Store(nil)
		return
	}
	c.fetchHook.Store(&h)
}
