package cluster_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
)

// TestKillReplicaAtEveryFetchBoundary walks the fault point across every
// shard-fetch boundary of one query: run it repeatedly, killing the
// serving replica at the n-th boundary for n = 1, 2, ... until a run
// completes without placing its kill. No run may error, and every run
// must return the reference ranking — a result read from a dying
// replica is discarded and refetched from its peer, never merged.
func TestKillReplicaAtEveryFetchBoundary(t *testing.T) {
	col := skewedCollection(48, 4)
	single := mustSingle(t, col)
	c := mustCluster(t, col, cluster.Options{Shards: 4, Replicas: 2})
	materializeBoth(t, single, c, hotQuery)
	want, err := single.Query(hotQuery, 5, trex.MethodTA)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	totalFailovers := 0
	for target := uint64(1); ; target++ {
		var n atomic.Uint64
		killedShard := atomic.Int64{}
		killedReplica := atomic.Int64{}
		killedShard.Store(-1)
		c.SetFetchHook(func(shard, replica int) {
			if n.Add(1) == target {
				killedShard.Store(int64(shard))
				killedReplica.Store(int64(replica))
				c.Kill(shard, replica)
			}
		})
		got, err := c.Query(hotQuery, 5, trex.MethodTA)
		c.SetFetchHook(nil)
		if err != nil {
			t.Fatalf("boundary %d: query error: %v", target, err)
		}
		sameAnswers(t, got.Answers, want.Answers, fmt.Sprintf("boundary %d", target))
		ks := killedShard.Load()
		if ks < 0 {
			// This run saw fewer boundaries than target: every fetch
			// boundary of the query has now been exercised.
			break
		}
		if got.Cluster.Failovers == 0 {
			t.Fatalf("boundary %d: killed the serving replica but no failover was counted", target)
		}
		totalFailovers += got.Cluster.Failovers
		if err := c.Revive(int(ks), int(killedReplica.Load())); err != nil {
			t.Fatalf("boundary %d: revive: %v", target, err)
		}
	}
	if totalFailovers == 0 {
		t.Fatalf("fault loop never triggered a failover")
	}
}

// TestWriteFanoutSurvivesMidApplyCrash crashes a replica between
// claiming a sequenced op and applying it (the apply hook fires exactly
// there, and a kill makes the applier drop the claimed entry). The
// write must still commit on the surviving replica, queries must keep
// flowing, and revival must replay the dropped suffix until the replica
// is byte-identical to its peer at the shard's epoch.
func TestWriteFanoutSurvivesMidApplyCrash(t *testing.T) {
	col := skewedCollection(24, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 2})
	crashAt := c.ShardEpoch(0) + 1
	var crashed atomic.Bool
	c.SetApplyHook(func(shard, replica int, seq uint64) {
		if shard == 0 && replica == 1 && seq == crashAt && crashed.CompareAndSwap(false, true) {
			c.Kill(0, 1)
		}
	})
	extra := []corpus.Document{synthDoc(24, 7), synthDoc(25, 2)}
	if err := c.AddDocuments(extra); err != nil {
		t.Fatalf("add during crash: %v", err)
	}
	c.SetApplyHook(nil)
	if !crashed.Load() {
		t.Fatalf("crash hook never fired")
	}
	if c.ReplicaUp(0, 1) {
		t.Fatalf("crashed replica still marked up")
	}
	if got, top := c.ReplicaEpoch(0, 1), c.ShardEpoch(0); got >= top {
		t.Fatalf("crashed replica claims epoch %d >= shard epoch %d; the dropped op was counted as applied", got, top)
	}
	if _, err := c.Query(hotQuery, 3, trex.MethodERA); err != nil {
		t.Fatalf("query with crashed replica: %v", err)
	}
	if err := c.Revive(0, 1); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if got, top := c.ReplicaEpoch(0, 1), c.ShardEpoch(0); got != top {
		t.Fatalf("revived replica at epoch %d, want %d", got, top)
	}
	a, err := c.Engine(0, 0).Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatalf("peer query: %v", err)
	}
	b, err := c.Engine(0, 1).Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatalf("revived query: %v", err)
	}
	sameAnswers(t, b.Answers, a.Answers, "revived replica vs peer")

	full := &corpus.Collection{Docs: append(skewedCollection(24, 4).Docs, extra...)}
	single := mustSingle(t, full)
	want, err := single.Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	got, err := c.Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	sameAnswers(t, got.Answers, want.Answers, "post-crash cluster vs single")
}

// TestQueriesRaceWriteFanout races a pool of query goroutines against a
// sequence of cluster writes, with one replica crashed mid-apply and
// revived before the end. Run under -race this is the data-race gate for
// the coordinator/replication locking; functionally, no query may error
// and after the dust settles every replica must sit at its shard's
// epoch with byte-identical rankings matching a single engine.
func TestQueriesRaceWriteFanout(t *testing.T) {
	col := skewedCollection(32, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Query(hotQuery, 3, trex.MethodERA); err != nil {
					t.Errorf("query during write fan-out: %v", err)
					return
				}
			}
		}()
	}
	// Crash replica 0 of shard 1 in the middle of applying the third
	// write batch, keep writing through the outage, revive at the end.
	crashAt := c.ShardEpoch(1) + 3
	var crashed atomic.Bool
	c.SetApplyHook(func(shard, replica int, seq uint64) {
		if shard == 1 && replica == 0 && seq >= crashAt && crashed.CompareAndSwap(false, true) {
			c.Kill(1, 0)
		}
	})
	var added []corpus.Document
	next := 32
	for i := 0; i < 6; i++ {
		batch := []corpus.Document{synthDoc(next, 1+i%5), synthDoc(next+1, 6)}
		next += 2
		if err := c.AddDocuments(batch); err != nil {
			t.Fatalf("add batch %d: %v", i, err)
		}
		added = append(added, batch...)
	}
	c.SetApplyHook(nil)
	if !crashed.Load() {
		t.Fatalf("mid-apply crash never fired")
	}
	if err := c.Revive(1, 0); err != nil {
		t.Fatalf("revive: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	for s := 0; s < c.Shards(); s++ {
		top := c.ShardEpoch(s)
		for r := 0; r < c.Replicas(); r++ {
			if got := c.ReplicaEpoch(s, r); got != top {
				t.Fatalf("shard %d replica %d at epoch %d, want %d", s, r, got, top)
			}
		}
	}
	for s := 0; s < c.Shards(); s++ {
		var base *trex.Result
		for r := 0; r < c.Replicas(); r++ {
			res, err := c.Engine(s, r).Query(hotQuery, 0, trex.MethodERA)
			if err != nil {
				t.Fatalf("shard %d replica %d: %v", s, r, err)
			}
			if base == nil {
				base = res
			} else {
				sameAnswers(t, res.Answers, base.Answers, fmt.Sprintf("shard %d replica %d", s, r))
			}
		}
	}
	full := &corpus.Collection{Docs: append(skewedCollection(32, 4).Docs, added...)}
	single := mustSingle(t, full)
	want, err := single.Query(hotQuery, 10, trex.MethodERA)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	got, err := c.Query(hotQuery, 10, trex.MethodERA)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	sameAnswers(t, got.Answers, want.Answers, "post-race cluster vs single")
}
