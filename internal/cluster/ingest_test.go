package cluster_test

import (
	"fmt"
	"sync"
	"testing"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
)

// TestClusterStreamingIngestConvergesEpochs streams several small write
// batches through the cluster's fan-out while scatter-gather queries run
// concurrently. After every batch the touched shards' replicas must sit
// at their shard's exact op-log epoch (no replica left behind, none
// ahead), and at the end all replicas of each shard must answer
// byte-identically — streaming ingest must never leave the replica set
// divergent.
func TestClusterStreamingIngestConvergesEpochs(t *testing.T) {
	col := skewedCollection(24, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 3})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	queryErr := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Query(hotQuery, 5, trex.MethodERA); err != nil {
					queryErr <- err
					return
				}
			}
		}()
	}

	const batches, perBatch = 4, 3
	next := 24
	for b := 0; b < batches; b++ {
		batch := make([]corpus.Document, perBatch)
		for i := range batch {
			batch[i] = synthDoc(next, 2+(next%5))
			next++
		}
		if err := c.AddDocuments(batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		for s := 0; s < c.Shards(); s++ {
			top := c.ShardEpoch(s)
			for r := 0; r < c.Replicas(); r++ {
				if got := c.ReplicaEpoch(s, r); got != top {
					t.Fatalf("batch %d: shard %d replica %d at epoch %d, want %d", b, s, r, got, top)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-queryErr:
		t.Fatalf("concurrent query failed during streaming ingest: %v", err)
	default:
	}

	// Replica agreement after the stream: the sequenced-deterministic-op
	// property must hold across every batch boundary, not just one write.
	for s := 0; s < c.Shards(); s++ {
		var base *trex.Result
		for r := 0; r < c.Replicas(); r++ {
			res, err := c.Engine(s, r).Query(hotQuery, 0, trex.MethodERA)
			if err != nil {
				t.Fatalf("shard %d replica %d: %v", s, r, err)
			}
			if base == nil {
				base = res
			} else {
				sameAnswers(t, res.Answers, base.Answers, fmt.Sprintf("shard %d replica %d", s, r))
			}
		}
	}
	// The stream landed: a full scatter-gather sees the grown corpus.
	res, err := c.Query(hotQuery, 0, trex.MethodERA)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAnswers == 0 {
		t.Fatal("no answers after streaming ingest")
	}
}
