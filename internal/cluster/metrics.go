package cluster

import (
	"strconv"

	"trex/internal/telemetry"
)

// Coordinator telemetry: the trex_cluster_* metric families. Counters
// the query path owns are registry Counters bumped inline; everything
// the replication layer already tracks (replica state, applied
// sequence, admission and cache counters) is exposed through
// CounterFunc/GaugeFunc reads at scrape time, the same lock-free
// pattern the engine's front door uses.
type clusterMetrics struct {
	reg *telemetry.Registry

	queries    *telemetry.Counter
	errors     *telemetry.Counter
	earlyStops *telemetry.Counter
	failovers  *telemetry.Counter
	rounds     *telemetry.Counter
	writes     *telemetry.Counter
	queueWait  *telemetry.Histogram

	// fetches[i] / pageReads[i] are per-shard fan-out counters.
	fetches   []*telemetry.Counter
	pageReads []*telemetry.Counter
}

func newClusterMetrics(c *Cluster) *clusterMetrics {
	reg := telemetry.NewRegistry()
	m := &clusterMetrics{reg: reg}
	m.queries = reg.Counter("trex_cluster_queries_total",
		"Queries accepted by the cluster coordinator.", nil)
	m.errors = reg.Counter("trex_cluster_query_errors_total",
		"Coordinator queries that failed (including shed and timed-out admissions).", nil)
	m.earlyStops = reg.Counter("trex_cluster_early_stops_total",
		"Shards the distributed threshold algorithm stopped pulling from while still truncated (local bound below the global k-th score).", nil)
	m.failovers = reg.Counter("trex_cluster_failovers_total",
		"Shard fetches discarded because the serving replica died, retried on a peer.", nil)
	m.rounds = reg.Counter("trex_cluster_rounds_total",
		"Scatter-gather fetch rounds executed.", nil)
	m.writes = reg.Counter("trex_cluster_writes_total",
		"Cluster-level write operations fanned out through the sequenced apply channels.", nil)
	m.queueWait = reg.Histogram("trex_cluster_queue_wait_seconds",
		"Admission queue wait before coordinator evaluation.", nil, nil)
	for si, sh := range c.shards {
		label := telemetry.Labels{"shard": strconv.Itoa(si)}
		m.fetches = append(m.fetches, reg.Counter("trex_cluster_fetches_total",
			"Per-shard fetches issued by the coordinator (initial round plus refetches).", label))
		m.pageReads = append(m.pageReads, reg.Counter("trex_cluster_shard_page_reads_total",
			"Storage pages read by this shard's fetches, as reported by shard retrieval stats.", label))
		for ri, r := range sh.replicas {
			rl := telemetry.Labels{"shard": strconv.Itoa(si), "replica": strconv.Itoa(ri)}
			rr := r
			shard := sh
			reg.GaugeFunc("trex_cluster_replica_up",
				"1 when the replica is serving reads, 0 while dead or catching up.", rl,
				func() float64 {
					if rr.state() == replicaUp {
						return 1
					}
					return 0
				})
			reg.GaugeFunc("trex_cluster_replica_lag",
				"Sequenced ops the replica is behind its shard's log.", rl,
				func() float64 {
					return float64(shard.logLen() - rr.appliedSeq())
				})
		}
	}
	if adm := c.adm; adm != nil {
		reg.CounterFunc("trex_cluster_frontdoor_admitted_total",
			"Queries that acquired a coordinator execution slot.", nil, adm.Admitted)
		reg.CounterFunc("trex_cluster_frontdoor_shed_total",
			"Queries rejected at the coordinator door (queue full).", nil, adm.Shed)
		reg.CounterFunc("trex_cluster_frontdoor_queue_timeout_total",
			"Queries that timed out waiting for a coordinator slot.", nil, adm.TimedOut)
	}
	if rc := c.rcache; rc != nil {
		reg.CounterFunc("trex_cluster_result_cache_hits_total",
			"Coordinator result cache hits (epoch-fresh).", nil, rc.Hits)
		reg.CounterFunc("trex_cluster_result_cache_misses_total",
			"Coordinator result cache misses.", nil, rc.Misses)
		reg.CounterFunc("trex_cluster_result_cache_invalidations_total",
			"Cache entries rejected because some replica's write epoch moved.", nil, rc.Invalidations)
	}
	return m
}
