package cluster

import (
	"fmt"

	"trex/internal/corpus"
)

// Document-space partitioning. Global document g lives on shard g mod N
// with shard-local id g div N. The mapping is invertible
// (g = local*N + shard), keeps every shard's id sequence dense and
// append-only (the engine's AddDocuments contract), and preserves
// relative document order inside a shard — so a shard's local
// tie-breaking (score desc, then (doc, end) asc) agrees with the global
// tie-break for any two answers on the same shard, and the coordinator
// only has to re-sort across shards after remapping ids.

func shardOf(global, shards int) int { return global % shards }

func localDoc(global, shards int) int { return global / shards }

func globalDoc(local uint32, shard, shards int) uint32 {
	return local*uint32(shards) + uint32(shard)
}

// partitionDocs splits documents (carrying global ids) into per-shard
// slices with ids rewritten to shard-local. Every document's global id
// must equal base+i (the dense append-only sequence).
func partitionDocs(docs []corpus.Document, base, shards int) ([][]corpus.Document, error) {
	parts := make([][]corpus.Document, shards)
	for i, d := range docs {
		if d.ID != base+i {
			return nil, fmt.Errorf("cluster: document ids must continue the dense sequence: got %d at position %d (want %d)", d.ID, i, base+i)
		}
		s := shardOf(d.ID, shards)
		ld := d
		ld.ID = localDoc(d.ID, shards)
		parts[s] = append(parts[s], ld)
	}
	return parts, nil
}

// partitionCollection splits a full collection into N shard-local
// collections sharing the style/alias/topic metadata.
func partitionCollection(col *corpus.Collection, shards int) ([]*corpus.Collection, error) {
	parts, err := partitionDocs(col.Docs, 0, shards)
	if err != nil {
		return nil, err
	}
	out := make([]*corpus.Collection, shards)
	for s := range out {
		out[s] = &corpus.Collection{
			Style:     col.Style,
			Docs:      parts[s],
			Aliases:   col.Aliases,
			Topics:    col.Topics,
			Relevance: col.Relevance,
		}
	}
	return out, nil
}
