package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"trex"
	"trex/internal/corpus"
	"trex/internal/index"
)

// Sequenced replication. Every write to a shard — document appends,
// materialization, self-management plans, statistics syncs — is
// appended to the shard's op log and fanned out to each replica's
// apply queue in log order. Appliers are single goroutines per
// replica, so a replica applies ops strictly in sequence; because
// every op is deterministic given the store state it is applied to,
// replicas that have applied the same prefix of the log hold
// byte-identical stores.
//
// A dead replica skips ops without advancing its applied sequence;
// revival replays the missed suffix through the same queue, and the
// seq==applied+1 guard makes duplicate deliveries harmless. Reads are
// served only by replicas in the Up state, so a replica catching up
// after revival never serves a stale ranking.

type opKind int

const (
	opAddDocs opKind = iota
	opMaterialize
	opSelfManage
	opSyncStats
)

// op is one sequenced, deterministic write. Fields are data-only so an
// op replays identically on a revived replica.
type op struct {
	kind opKind
	// opAddDocs: shard-local documents (ids already rewritten).
	docs []corpus.Document
	// opMaterialize
	nexi  string
	kinds []index.ListKind
	// opSelfManage
	queries []trex.WorkloadQuery
	disk    int64
	solver  trex.Solver
	// opSyncStats: frozen globally merged statistics.
	stats *trex.Statistics
}

func (o op) apply(eng *trex.Engine) error {
	switch o.kind {
	case opAddDocs:
		_, err := eng.AddDocuments(o.docs)
		return err
	case opMaterialize:
		_, err := eng.Materialize(o.nexi, o.kinds...)
		return err
	case opSelfManage:
		_, err := eng.SelfManage(o.queries, o.disk, o.solver)
		return err
	case opSyncStats:
		return eng.SyncStatistics(o.stats)
	default:
		return fmt.Errorf("cluster: unknown op kind %d", o.kind)
	}
}

type replicaState int32

const (
	replicaUp replicaState = iota
	replicaDown
	replicaCatchingUp
)

type entry struct {
	seq uint64
	op  op
}

type replica struct {
	id  int
	eng *trex.Engine

	mu      sync.Mutex
	cond    *sync.Cond
	st      replicaState
	applied uint64 // ops applied, == seq of the last applied entry
	queue   []entry
	closing bool
	// applyErr poisons the replica: a failed apply marks it down so it
	// cannot serve reads diverged from its peers.
	applyErr error
}

func newReplica(id int, eng *trex.Engine) *replica {
	r := &replica{id: id, eng: eng}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *replica) state() replicaState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

func (r *replica) appliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

func (r *replica) kill() {
	r.mu.Lock()
	r.st = replicaDown
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *replica) enqueue(e entry) {
	r.mu.Lock()
	r.queue = append(r.queue, e)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// waitApplied blocks until the replica has applied seq, gone down, or
// started closing. Reports whether the op is applied.
func (r *replica) waitApplied(seq uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.st != replicaDown && !r.closing && r.applied < seq {
		r.cond.Wait()
	}
	return r.applied >= seq
}

func (r *replica) close() {
	r.mu.Lock()
	r.closing = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// run is the replica's applier: the single goroutine that pops queue
// entries in order and applies them to the engine. onApply (when set)
// is the fault-injection hook, called after the entry is claimed and
// before it is applied — a kill() from the hook makes the applier drop
// the entry, which is exactly the "crash mid-apply" a test wants.
func (r *replica) run(shardID int, onApply func(shard, replica int, seq uint64)) {
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closing {
			r.cond.Wait()
		}
		if r.closing {
			r.mu.Unlock()
			return
		}
		e := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()

		if onApply != nil {
			onApply(shardID, r.id, e.seq)
		}

		r.mu.Lock()
		stale := e.seq != r.applied+1
		down := r.st == replicaDown
		r.mu.Unlock()
		if stale || down {
			// Stale duplicates (replay overlap) and ops reaching a dead
			// replica are dropped; revival replays the gap.
			continue
		}
		err := e.op.apply(r.eng)
		r.mu.Lock()
		if err != nil {
			r.st = replicaDown
			r.applyErr = err
		} else {
			r.applied = e.seq
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

type shard struct {
	id       int
	replicas []*replica

	mu  sync.Mutex
	log []op

	// rr rotates reads across live replicas.
	rr atomic.Uint64

	// onApply is the fault-injection hook threaded to every applier.
	onApply atomic.Pointer[func(shard, replica int, seq uint64)]
}

func newShard(id int) *shard { return &shard{id: id} }

func (s *shard) addReplica(eng *trex.Engine) {
	s.replicas = append(s.replicas, newReplica(len(s.replicas), eng))
}

func (s *shard) start() {
	for _, r := range s.replicas {
		go func(r *replica) {
			r.run(s.id, func(shardID, replicaID int, seq uint64) {
				if h := s.onApply.Load(); h != nil {
					(*h)(shardID, replicaID, seq)
				}
			})
		}(r)
	}
}

func (s *shard) stopApplier() {
	for _, r := range s.replicas {
		r.close()
	}
}

func (s *shard) logLen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.log))
}

// anyUp returns a live replica (nil if the whole shard is dead).
func (s *shard) anyUp() *replica {
	for _, r := range s.replicas {
		if r.state() == replicaUp {
			return r
		}
	}
	return nil
}

// pickUp returns the next live replica in round-robin order.
func (s *shard) pickUp() *replica {
	n := len(s.replicas)
	start := int(s.rr.Add(1))
	for i := 0; i < n; i++ {
		r := s.replicas[(start+i)%n]
		if r.state() == replicaUp {
			return r
		}
	}
	return nil
}

// apply appends one op to the shard log, fans it out to every replica
// queue, and waits for every replica that is not down to reach it.
// Errors only when no replica applied the op (the shard lost all
// replicas): replicated writes survive any R-1 deaths.
func (s *shard) apply(o op) error {
	s.mu.Lock()
	s.log = append(s.log, o)
	seq := uint64(len(s.log))
	for _, r := range s.replicas {
		r.enqueue(entry{seq: seq, op: o})
	}
	s.mu.Unlock()
	applied := 0
	for _, r := range s.replicas {
		if r.waitApplied(seq) {
			applied++
		}
	}
	if applied == 0 {
		if r := s.replicas[0]; true {
			r.mu.Lock()
			err := r.applyErr
			r.mu.Unlock()
			if err != nil {
				return fmt.Errorf("cluster: shard %d write failed on every replica: %w", s.id, err)
			}
		}
		return fmt.Errorf("cluster: shard %d has no live replicas", s.id)
	}
	return nil
}

// revive replays a dead replica's missed log suffix through its apply
// queue and, once converged with no gap, flips it back into the read
// rotation. Blocks until caught up (or the replica is killed again).
func (s *shard) revive(replicaID int) error {
	r := s.replicas[replicaID]
	r.mu.Lock()
	if r.st == replicaUp {
		r.mu.Unlock()
		return nil
	}
	if r.applyErr != nil {
		err := r.applyErr
		r.mu.Unlock()
		return fmt.Errorf("cluster: shard %d replica %d is poisoned by a failed apply: %w", s.id, replicaID, err)
	}
	r.st = replicaCatchingUp
	r.mu.Unlock()
	for {
		// Snapshot the missed suffix and replay it. New writes keep
		// appending while we catch up; loop until there is no gap at
		// the moment we hold the shard lock, then flip to Up under it
		// so no append can sneak between the check and the flip.
		s.mu.Lock()
		top := uint64(len(s.log))
		from := r.appliedSeq()
		if from >= top {
			r.mu.Lock()
			var err error
			if r.st == replicaCatchingUp {
				r.st = replicaUp
				r.cond.Broadcast()
			} else {
				err = fmt.Errorf("cluster: shard %d replica %d killed during revive", s.id, replicaID)
			}
			r.mu.Unlock()
			s.mu.Unlock()
			return err
		}
		pend := make([]entry, 0, top-from)
		for seq := from + 1; seq <= top; seq++ {
			pend = append(pend, entry{seq: seq, op: s.log[seq-1]})
		}
		s.mu.Unlock()
		for _, e := range pend {
			r.enqueue(e)
		}
		if !r.waitApplied(top) {
			r.mu.Lock()
			err := r.applyErr
			r.mu.Unlock()
			if err != nil {
				return fmt.Errorf("cluster: shard %d replica %d poisoned during revive: %w", s.id, replicaID, err)
			}
			return fmt.Errorf("cluster: shard %d replica %d killed during revive", s.id, replicaID)
		}
	}
}

// --- cluster-level write APIs ---

// ErrNewPaths reports that AddDocuments introduced label paths unknown
// to the shared summary. Per-shard summaries then extend independently
// and sid assignment diverges across shards (the documented limitation
// of the distributed tier); rebuild the cluster to re-share a summary.
var ErrNewPaths = fmt.Errorf("cluster: documents introduced new label paths; shard summaries have diverged — rebuild the cluster")

// AddDocuments appends documents (global ids continuing the dense
// sequence) to their shards through the sequenced channels, then
// re-aggregates and re-syncs global statistics so scores stay
// comparable across shards. Like the engine's AddDocuments it drops
// all materialized lists (statistics changed); re-run Materialize or
// SelfManage afterwards.
func (c *Cluster) AddDocuments(docs []corpus.Document) error {
	if len(docs) == 0 {
		return nil
	}
	base := int(c.docs.Load())
	parts, err := partitionDocs(docs, base, c.nShards)
	if err != nil {
		return err
	}
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := c.shards[s].apply(op{kind: opAddDocs, docs: part}); err != nil {
			return err
		}
	}
	c.docs.Add(int64(len(docs)))
	c.bumpWrites()
	if err := c.syncStatistics(); err != nil {
		return err
	}
	// Detect summary divergence after the fact: a grown summary means
	// some shard assigned sids the coordinator (and its peers) do not
	// know. The shards themselves stay internally consistent.
	for _, sh := range c.shards {
		r := sh.anyUp()
		if r != nil && r.eng.Summary().NumNodes() > c.sum.NumNodes() {
			return ErrNewPaths
		}
	}
	return nil
}

// Materialize fans a redundant-list build for query src out to every
// shard through the sequenced channels.
func (c *Cluster) Materialize(src string, kinds ...index.ListKind) error {
	for _, sh := range c.shards {
		if err := sh.apply(op{kind: opMaterialize, nexi: src, kinds: kinds}); err != nil {
			return err
		}
	}
	c.bumpWrites()
	return nil
}

// SelfManage fans one self-management plan (the paper's Section 4
// index selection) out to every shard. Each shard solves against its
// own catalog under the same per-shard disk budget; because the op is
// deterministic, replicas of a shard pick identical list sets.
func (c *Cluster) SelfManage(queries []trex.WorkloadQuery, diskPerShard int64, solver trex.Solver) error {
	for _, sh := range c.shards {
		if err := sh.apply(op{kind: opSelfManage, queries: queries, disk: diskPerShard, solver: solver}); err != nil {
			return err
		}
	}
	c.bumpWrites()
	return nil
}

func (c *Cluster) bumpWrites() {
	if c.met != nil {
		c.met.writes.Add(1)
	}
}

// SetApplyHook installs the fault-injection hook called by every
// replica applier after claiming an op and before applying it. Pass
// nil to clear. Test-only plumbing.
func (c *Cluster) SetApplyHook(h func(shard, replica int, seq uint64)) {
	for _, sh := range c.shards {
		if h == nil {
			sh.onApply.Store(nil)
		} else {
			sh.onApply.Store(&h)
		}
	}
}
