package cluster_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/telemetry"
)

// queriesTotal sums trex_queries_total across every method label in one
// engine registry snapshot.
func queriesTotal(snap *telemetry.Snapshot) float64 {
	var sum float64
	for _, m := range []trex.Method{trex.MethodAuto, trex.MethodERA, trex.MethodTA, trex.MethodMerge, trex.MethodRace, trex.MethodNRA} {
		if e, ok := snap.Get("trex_queries_total", map[string]string{"method": m.String()}); ok {
			sum += e.Value
		}
	}
	return sum
}

// TestPerShardTelemetryConformance cross-checks the three places the
// cluster accounts for its own traffic: per-replica engine registries
// (trex_queries_total), the coordinator registry (trex_cluster_fetches_total,
// trex_cluster_shard_page_reads_total) and the per-result ClusterStats.
// For a quiesced, single-threaded run all three must agree exactly.
func TestPerShardTelemetryConformance(t *testing.T) {
	col := skewedCollection(48, 4)
	c := mustCluster(t, col, cluster.Options{Shards: 2, Replicas: 2})
	single := mustSingle(t, col)
	materializeBoth(t, single, c, hotQuery)

	base := make(map[[2]int]float64)
	for s := 0; s < c.Shards(); s++ {
		for r := 0; r < c.Replicas(); r++ {
			base[[2]int{s, r}] = queriesTotal(c.Engine(s, r).MetricsRegistry().Snapshot())
		}
	}

	wantFetches := 0
	var wantPageReads uint64
	for i, m := range []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodNRA, trex.MethodMerge, trex.MethodERA} {
		res, err := c.Query(hotQuery, 2+i, m)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		wantFetches += res.Cluster.Fetches
		if res.Stats == nil {
			t.Fatalf("query %d: no aggregated stats", i)
		}
		wantPageReads += res.Stats.PageReads
		// Within one result the per-shard breakdown must sum to the
		// aggregate the coordinator reports.
		perShard := uint64(0)
		fetches := 0
		for _, ps := range res.Cluster.PerShard {
			perShard += ps.PageReads
			fetches += ps.Fetches
		}
		if perShard != res.Stats.PageReads {
			t.Fatalf("query %d: per-shard page reads %d != aggregate %d", i, perShard, res.Stats.PageReads)
		}
		if fetches != res.Cluster.Fetches {
			t.Fatalf("query %d: per-shard fetches %d != total %d", i, fetches, res.Cluster.Fetches)
		}
		if !res.Stats.IOExact {
			t.Fatalf("query %d: single-threaded cluster query not IOExact", i)
		}
	}

	// Per-replica engine counters: every coordinator fetch is exactly one
	// engine query, so the replica deltas must sum to the fetch total.
	var engineQueries float64
	for s := 0; s < c.Shards(); s++ {
		for r := 0; r < c.Replicas(); r++ {
			engineQueries += queriesTotal(c.Engine(s, r).MetricsRegistry().Snapshot()) - base[[2]int{s, r}]
		}
	}
	if engineQueries != float64(wantFetches) {
		t.Fatalf("sum of per-replica trex_queries_total deltas = %v, coordinator reported %d fetches", engineQueries, wantFetches)
	}

	// Coordinator registry agrees with the per-result accounting.
	snap := c.MetricsRegistry().Snapshot()
	var metFetches, metPages float64
	for s := 0; s < c.Shards(); s++ {
		lbl := map[string]string{"shard": []string{"0", "1"}[s]}
		if e, ok := snap.Get("trex_cluster_fetches_total", lbl); ok {
			metFetches += e.Value
		}
		if e, ok := snap.Get("trex_cluster_shard_page_reads_total", lbl); ok {
			metPages += e.Value
		}
	}
	if metFetches != float64(wantFetches) {
		t.Fatalf("trex_cluster_fetches_total sums to %v, results reported %d", metFetches, wantFetches)
	}
	if metPages != float64(wantPageReads) {
		t.Fatalf("trex_cluster_shard_page_reads_total sums to %v, results reported %d", metPages, wantPageReads)
	}
}

// TestClusterIOExactHonestUnderSegmentSwap races coordinator queries
// against a writer that keeps rematerializing (and therefore committing
// new segment generations) on one shard's only replica. The engine's
// telemetry guard must propagate through the coordinator's stats AND:
// overlapped windows drop the IOExact claim instead of attributing the
// writer's I/O to a query, and no query errors while generations swap
// under it.
func TestClusterIOExactHonestUnderSegmentSwap(t *testing.T) {
	// A realistically sized corpus so query windows are long enough to
	// overlap the writer (a toy corpus finishes each fetch in
	// microseconds and the race never materializes).
	col := corpus.GenerateIEEE(60, 7)
	q := `//article//sec[about(., ontologies case study)]`
	c := mustCluster(t, col, cluster.Options{
		Shards:   2,
		Replicas: 1,
		Engine:   trex.Options{SegmentLists: true},
	})
	if err := c.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	target := c.Engine(0, 0)
	swapsBefore := target.Store().Segments().Swaps()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := target.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
				t.Errorf("writer materialize: %v", err)
				return
			}
		}
	}()

	// Concurrent coordinator queries: overlapping fetch windows on the
	// swapping shard are what the guard must refuse to call exact. Two
	// scheduler threads are required for windows to actually overlap on a
	// single-core box (at GOMAXPROCS=1 a fetch runs to completion before
	// the next one starts and the race never happens); MethodRace queries
	// in the mix add loser goroutines that keep reading — and keep their
	// windows open — after their winner returns. Only the fixed-method
	// queries are counted: Race results are inexact by definition, which
	// would prove nothing.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	var inexact atomic.Uint64
	var qwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		qwg.Add(1)
		go func(g int) {
			defer qwg.Done()
			for i := 0; i < 25; i++ {
				m := trex.MethodERA
				if (g+i)%2 == 0 {
					m = trex.MethodRace
				}
				res, err := c.Query(q, 5, m)
				if err != nil {
					t.Errorf("query during segment swaps: %v", err)
					return
				}
				if m != trex.MethodRace && res.Stats != nil && !res.Stats.IOExact {
					inexact.Add(1)
				}
			}
		}(g)
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if swaps := target.Store().Segments().Swaps(); swaps == swapsBefore {
		t.Fatalf("writer committed no segment generation swaps; the race never happened")
	}
	if inexact.Load() == 0 {
		t.Fatalf("no coordinator result dropped IOExact despite mid-query segment swaps on shard 0")
	}
}
