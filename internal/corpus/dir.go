package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// manifestName is the metadata file WriteDir places beside the documents.
const manifestName = "collection.json"

// manifest records the collection-level metadata that cannot be recovered
// from the XML files alone.
type manifest struct {
	Style   string            `json:"style"`
	Format  string            `json:"format,omitempty"`
	Aliases map[string]string `json:"aliases"`
	Docs    []manifestDoc     `json:"docs"`
}

type manifestDoc struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

// WriteDir writes every document of col into dir (one file per document)
// plus a collection.json manifest, so tools can exchange corpora on disk.
func WriteDir(col *Collection, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{Style: col.Style.String(), Aliases: col.Aliases}
	if col.Format != FormatXML {
		m.Format = col.Format.String()
	}
	ext := ".xml"
	if col.Format == FormatJSON {
		ext = ".json"
	}
	for _, d := range col.Docs {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("doc-%06d%s", d.ID, ext)
		}
		if err := os.WriteFile(filepath.Join(dir, name), d.Data, 0o644); err != nil {
			return err
		}
		m.Docs = append(m.Docs, manifestDoc{ID: d.ID, Name: name})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
}

// LoadDir reads a collection written by WriteDir. Directories without a
// manifest are loaded by globbing *.xml with ids assigned in name order
// and no aliases.
func LoadDir(dir string) (*Collection, error) {
	col := &Collection{}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err == nil {
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("corpus: bad manifest in %s: %w", dir, err)
		}
		if m.Style == StyleWiki.String() {
			col.Style = StyleWiki
		}
		f, err := ParseFormat(m.Format)
		if err != nil {
			return nil, fmt.Errorf("corpus: manifest in %s: %w", dir, err)
		}
		col.Format = f
		col.Aliases = m.Aliases
		for _, md := range m.Docs {
			b, err := os.ReadFile(filepath.Join(dir, md.Name))
			if err != nil {
				return nil, err
			}
			col.Docs = append(col.Docs, Document{ID: md.ID, Name: md.Name, Data: b})
		}
		return col, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Without a manifest the extension decides the universe; a directory
	// mixing .xml and .json documents is ambiguous and rejected.
	var names []string
	jsonCount := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), ".xml"):
			names = append(names, e.Name())
		case strings.HasSuffix(e.Name(), ".json"):
			names = append(names, e.Name())
			jsonCount++
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("corpus: no manifest and no .xml or .json files in %s", dir)
	}
	if jsonCount > 0 && jsonCount < len(names) {
		return nil, fmt.Errorf("corpus: %s mixes .xml and .json documents; write a manifest", dir)
	}
	if jsonCount > 0 {
		col.Format = FormatJSON
	}
	sort.Strings(names)
	for i, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		col.Docs = append(col.Docs, Document{ID: i, Name: name, Data: b})
	}
	return col, nil
}
