package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// manifestName is the metadata file WriteDir places beside the documents.
const manifestName = "collection.json"

// manifest records the collection-level metadata that cannot be recovered
// from the XML files alone.
type manifest struct {
	Style   string            `json:"style"`
	Aliases map[string]string `json:"aliases"`
	Docs    []manifestDoc     `json:"docs"`
}

type manifestDoc struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

// WriteDir writes every document of col into dir (one file per document)
// plus a collection.json manifest, so tools can exchange corpora on disk.
func WriteDir(col *Collection, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := manifest{Style: col.Style.String(), Aliases: col.Aliases}
	for _, d := range col.Docs {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("doc-%06d.xml", d.ID)
		}
		if err := os.WriteFile(filepath.Join(dir, name), d.Data, 0o644); err != nil {
			return err
		}
		m.Docs = append(m.Docs, manifestDoc{ID: d.ID, Name: name})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
}

// LoadDir reads a collection written by WriteDir. Directories without a
// manifest are loaded by globbing *.xml with ids assigned in name order
// and no aliases.
func LoadDir(dir string) (*Collection, error) {
	col := &Collection{}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err == nil {
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("corpus: bad manifest in %s: %w", dir, err)
		}
		if m.Style == StyleWiki.String() {
			col.Style = StyleWiki
		}
		col.Aliases = m.Aliases
		for _, md := range m.Docs {
			b, err := os.ReadFile(filepath.Join(dir, md.Name))
			if err != nil {
				return nil, err
			}
			col.Docs = append(col.Docs, Document{ID: md.ID, Name: md.Name, Data: b})
		}
		return col, nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("corpus: no manifest and no .xml files in %s", dir)
	}
	sort.Strings(names)
	for i, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		col.Docs = append(col.Docs, Document{ID: i, Name: name, Data: b})
	}
	return col, nil
}
