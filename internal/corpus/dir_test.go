package corpus

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	col := GenerateWiki(12, 8)
	if err := WriteDir(col, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Style != StyleWiki {
		t.Fatalf("style = %v", got.Style)
	}
	if len(got.Docs) != len(col.Docs) {
		t.Fatalf("docs = %d, want %d", len(got.Docs), len(col.Docs))
	}
	for i := range col.Docs {
		if got.Docs[i].ID != col.Docs[i].ID || !bytes.Equal(got.Docs[i].Data, col.Docs[i].Data) {
			t.Fatalf("doc %d differs", i)
		}
	}
	if got.Aliases["section"] != "sec" {
		t.Fatalf("aliases = %v", got.Aliases)
	}
}

func TestLoadDirWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "b.xml"), []byte(`<a>two</a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte(`<a>one</a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	col, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Docs) != 2 {
		t.Fatalf("docs = %d", len(col.Docs))
	}
	// Name order: a.xml gets id 0.
	if col.Docs[0].Name != "a.xml" || col.Docs[0].ID != 0 {
		t.Fatalf("doc0 = %+v", col.Docs[0])
	}
}

func TestLoadDirEmptyFails(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir loaded")
	}
}
