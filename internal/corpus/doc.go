// Package corpus generates and stores the synthetic XML collections TReX
// experiments run on.
//
// The paper evaluates on the INEX 2005 IEEE collection (16,819 documents)
// and the INEX 2006 Wikipedia collection (659,388 documents). Neither is
// redistributable, so this package provides deterministic generators that
// reproduce the structural properties the paper's experiments depend on:
//
//   - IEEE style: deep journal-article structure (fm/bdy/bm, sec with
//     ss1/ss2 synonym tags requiring alias mapping, figures with captions,
//     bibliographies), moderate fan-out, long paragraphs.
//   - Wikipedia style: flatter and wider (body/section/figure/template),
//     many more documents, shorter text runs.
//
// Vocabulary is Zipf-distributed over a synthetic word list. Topics plant
// the paper's query terms ("ontologies", "code signing verification",
// "genetic algorithm", ...) with controlled document fractions so the
// seven benchmark queries hit the same selectivity regimes as in the
// paper (few vs many sids, few vs many answers).
//
// Generation is deterministic: the same (style, docs, seed) produces the
// same bytes, so experiments are reproducible.
package corpus
