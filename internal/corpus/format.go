package corpus

import (
	"fmt"

	"trex/internal/jsoncorpus"
	"trex/internal/xmlscan"
)

// Format identifies which document universe a collection lives in. The
// index machinery is structural and format-blind — everything downstream
// of ParseDoc/DocTerms sees one element tree universe — so the format is
// a property of the corpus (and is persisted in the index meta so an
// opened index knows how to interpret stored document bytes).
type Format int

const (
	// FormatXML documents are XML bytes parsed by xmlscan.
	FormatXML Format = iota
	// FormatJSON documents are JSON bytes mapped into the element
	// universe by jsoncorpus (objects → elements, keys → tags, arrays →
	// repeated siblings). Offsets refer to the canonical XML rendering.
	FormatJSON
)

func (f Format) String() string {
	switch f {
	case FormatXML:
		return "xml"
	case FormatJSON:
		return "json"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat inverts Format.String.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "xml":
		return FormatXML, nil
	case "json":
		return FormatJSON, nil
	default:
		return 0, fmt.Errorf("corpus: unknown format %q (want xml or json)", s)
	}
}

// ParseDoc builds the element tree of one document in either universe.
func ParseDoc(f Format, data []byte) (*xmlscan.Node, error) {
	switch f {
	case FormatJSON:
		d, err := jsoncorpus.Map(data)
		if err != nil {
			return nil, err
		}
		return d.Root, nil
	default:
		return xmlscan.Parse(data)
	}
}

// DocTerms extracts the term occurrences of one document in either
// universe; offsets are into the document's canonical rendering (the
// bytes themselves for XML).
func DocTerms(f Format, data []byte) ([]xmlscan.Term, error) {
	switch f {
	case FormatJSON:
		d, err := jsoncorpus.Map(data)
		if err != nil {
			return nil, err
		}
		return d.Terms, nil
	default:
		return xmlscan.DocTerms(data)
	}
}

// ParseAndTerms computes tree and terms in one pass — for JSON the two
// share a single Map call, for XML it is two scans of the same bytes.
func ParseAndTerms(f Format, data []byte) (*xmlscan.Node, []xmlscan.Term, error) {
	switch f {
	case FormatJSON:
		d, err := jsoncorpus.Map(data)
		if err != nil {
			return nil, nil, err
		}
		return d.Root, d.Terms, nil
	default:
		root, err := xmlscan.Parse(data)
		if err != nil {
			return nil, nil, err
		}
		terms, err := xmlscan.DocTerms(data)
		if err != nil {
			return nil, nil, err
		}
		return root, terms, nil
	}
}

// RenderXML returns the canonical rendering all element offsets refer
// to: the document bytes themselves for XML, the jsoncorpus rendering
// for JSON. Snippet extraction slices this.
func RenderXML(f Format, data []byte) ([]byte, error) {
	if f == FormatJSON {
		return jsoncorpus.ToXML(data)
	}
	return data, nil
}
