package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Style selects which collection shape to generate.
type Style int

const (
	// StyleIEEE mimics the INEX 2005 IEEE journal-article collection.
	StyleIEEE Style = iota
	// StyleWiki mimics the INEX 2006 Wikipedia collection.
	StyleWiki
)

func (s Style) String() string {
	switch s {
	case StyleIEEE:
		return "ieee"
	case StyleWiki:
		return "wiki"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Document is one generated XML file.
type Document struct {
	// ID is the document identifier used across all TReX tables.
	ID int
	// Name is a human-readable file-style name.
	Name string
	// Data is the XML content.
	Data []byte
}

// Collection is a generated corpus plus the metadata retrieval needs.
type Collection struct {
	Style Style
	// Format is the document universe every Data field lives in
	// (FormatXML unless set).
	Format Format
	Docs   []Document
	// Aliases maps synonym tags to their canonical alias (the INEX alias
	// mapping of Section 2.1: ss1/ss2 -> sec and so on).
	Aliases map[string]string
	// Topics used during generation; benchmarks consult the fractions.
	Topics []Topic
	// Relevance maps topic name -> ids of documents generated "about"
	// that topic: ground truth for effectiveness measurements.
	Relevance map[string][]int
}

// Config controls generation. Zero values select sensible defaults.
type Config struct {
	Style Style
	Docs  int
	Seed  int64
	// VocabSize is the background vocabulary size (default 20000).
	VocabSize int
	// Topics defaults to IEEETopics or WikiTopics by style.
	Topics []Topic
}

// DefaultIEEEAliases is the synonym mapping for the IEEE style, modeled on
// the INEX alias list the paper uses (sec, ss1 and ss2 are semantically
// the same; so are the paragraph variants).
func DefaultIEEEAliases() map[string]string {
	return map[string]string{
		"ss1": "sec",
		"ss2": "sec",
		"ip1": "p",
		"ip2": "p",
		"fgc": "caption",
	}
}

// DefaultWikiAliases is the synonym mapping for the Wikipedia style.
func DefaultWikiAliases() map[string]string {
	return map[string]string{
		"section":    "sec",
		"body":       "bdy",
		"caption":    "caption",
		"subsection": "sec",
	}
}

// GenerateIEEE produces an IEEE-style collection with default topics.
func GenerateIEEE(docs int, seed int64) *Collection {
	return Generate(Config{Style: StyleIEEE, Docs: docs, Seed: seed})
}

// GenerateWiki produces a Wikipedia-style collection with default topics.
func GenerateWiki(docs int, seed int64) *Collection {
	return Generate(Config{Style: StyleWiki, Docs: docs, Seed: seed})
}

// Generate produces a collection per cfg. Identical configs produce
// identical bytes.
func Generate(cfg Config) *Collection {
	if cfg.Docs <= 0 {
		cfg.Docs = 100
	}
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 20000
	}
	topics := cfg.Topics
	col := &Collection{Style: cfg.Style}
	switch cfg.Style {
	case StyleWiki:
		if topics == nil {
			topics = WikiTopics
		}
		col.Aliases = DefaultWikiAliases()
	default:
		if topics == nil {
			topics = IEEETopics
		}
		col.Aliases = DefaultIEEEAliases()
	}
	col.Topics = topics
	col.Relevance = make(map[string][]int)
	col.Docs = make([]Document, cfg.Docs)
	for i := 0; i < cfg.Docs; i++ {
		// Independent per-document stream: regeneration of any prefix of
		// the collection yields identical documents.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		vocab := newVocabulary(rng, cfg.VocabSize)
		g := &docGen{rng: rng, vocab: vocab, topics: topics}
		g.pickTopics()
		var data []byte
		var name string
		switch cfg.Style {
		case StyleWiki:
			data = g.wikiDoc()
			name = fmt.Sprintf("wiki-%06d.xml", i)
		default:
			data = g.ieeeDoc()
			name = fmt.Sprintf("ieee-%06d.xml", i)
		}
		col.Docs[i] = Document{ID: i, Name: name, Data: data}
		for _, t := range g.about {
			col.Relevance[t.Name] = append(col.Relevance[t.Name], i)
		}
	}
	return col
}

// docGen holds per-document generation state.
type docGen struct {
	rng    *rand.Rand
	vocab  *vocabulary
	topics []Topic
	about  []Topic // topics this document is about
	sb     strings.Builder
}

func (g *docGen) pickTopics() {
	for _, t := range g.topics {
		if g.rng.Float64() < t.DocFraction {
			g.about = append(g.about, t)
		}
	}
}

// text emits a paragraph-sized run: background words plus topic
// injections for the document's topics.
func (g *docGen) text(minWords, maxWords int) string {
	n := minWords
	if maxWords > minWords {
		n += g.rng.Intn(maxWords - minWords)
	}
	var parts []string
	parts = append(parts, g.vocab.sentence(n))
	for _, t := range g.about {
		if g.rng.Float64() < t.Density {
			reps := 1 + g.rng.Intn(2)
			for r := 0; r < reps; r++ {
				parts = append(parts, strings.Join(t.Words, " "))
			}
		}
	}
	// Shuffle the chunks so topic words are not always trailing.
	g.rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	return strings.Join(parts, " ")
}

// title emits a short run that usually carries the topic words of the
// document (titles concentrate topical terms).
func (g *docGen) title() string {
	base := g.vocab.sentence(2 + g.rng.Intn(4))
	if len(g.about) > 0 && g.rng.Float64() < 0.8 {
		t := g.about[g.rng.Intn(len(g.about))]
		return base + " " + strings.Join(t.Words, " ")
	}
	return base
}

func (g *docGen) open(tag string)  { g.sb.WriteString("<" + tag + ">") }
func (g *docGen) close(tag string) { g.sb.WriteString("</" + tag + ">") }
func (g *docGen) leaf(tag, text string) {
	g.open(tag)
	g.sb.WriteString(text)
	g.close(tag)
}

// ieeeDoc emits one journal article in the IEEE style:
//
//	article > fm(hdr, atl, au*) + bdy(sec|ss1|ss2 trees, fig) + bm(bib(bb*))
func (g *docGen) ieeeDoc() []byte {
	g.sb.Reset()
	g.open("article")

	g.open("fm")
	g.leaf("hdr", g.vocab.sentence(4))
	g.leaf("atl", g.title())
	nAuthors := 1 + g.rng.Intn(3)
	for i := 0; i < nAuthors; i++ {
		g.leaf("au", g.vocab.sentence(2))
	}
	g.leaf("abs", g.text(20, 40))
	g.close("fm")

	g.open("bdy")
	nSecs := 3 + g.rng.Intn(5)
	for i := 0; i < nSecs; i++ {
		g.ieeeSection(0)
	}
	nFigs := g.rng.Intn(3)
	for i := 0; i < nFigs; i++ {
		g.open("fig")
		g.leaf("fgc", g.text(5, 12))
		g.close("fig")
	}
	g.close("bdy")

	g.open("bm")
	// Appendices contribute additional sec paths (bm/app/sec...), which is
	// what gives the real IEEE collection its many sec extents.
	if g.rng.Float64() < 0.4 {
		g.open("app")
		g.ieeeSection(0)
		g.close("app")
	}
	g.open("bib")
	nRefs := 3 + g.rng.Intn(10)
	for i := 0; i < nRefs; i++ {
		g.open("bb")
		g.leaf("au", g.vocab.sentence(2))
		g.leaf("atl", g.vocab.sentence(4))
		g.close("bb")
	}
	g.close("bib")
	g.close("bm")

	g.close("article")
	return []byte(g.sb.String())
}

// ieeeSection emits a section at nesting depth (0=sec, 1=ss1, 2=ss2),
// using the synonym tags the alias map collapses.
func (g *docGen) ieeeSection(depth int) {
	tags := []string{"sec", "ss1", "ss2"}
	tag := tags[depth]
	g.open(tag)
	g.leaf("st", g.title())
	nPars := 2 + g.rng.Intn(4)
	for i := 0; i < nPars; i++ {
		// Alternate paragraph synonyms to exercise aliases.
		ptag := "p"
		if g.rng.Intn(4) == 0 {
			ptag = "ip1"
		}
		g.leaf(ptag, g.text(30, 80))
	}
	if g.rng.Float64() < 0.15 {
		g.open("fig")
		g.leaf("fgc", g.text(4, 10))
		g.close("fig")
	}
	if depth < 2 && g.rng.Float64() < 0.5 {
		nSub := 1 + g.rng.Intn(2)
		for i := 0; i < nSub; i++ {
			g.ieeeSection(depth + 1)
		}
	}
	g.close(tag)
}

// wikiDoc emits one Wikipedia-style article: flatter, wider, shorter text.
//
//	article > name + body(section(title, p*, figure?, subsection?)*, template*)
func (g *docGen) wikiDoc() []byte {
	g.sb.Reset()
	g.open("article")
	g.leaf("name", g.title())
	g.open("body")
	nSecs := 2 + g.rng.Intn(6)
	for i := 0; i < nSecs; i++ {
		g.open("section")
		g.leaf("title", g.title())
		nPars := 1 + g.rng.Intn(4)
		for j := 0; j < nPars; j++ {
			g.leaf("p", g.text(15, 50))
		}
		if g.rng.Float64() < 0.4 {
			g.open("figure")
			g.leaf("caption", g.text(4, 10))
			g.close("figure")
		}
		if g.rng.Float64() < 0.25 {
			g.open("subsection")
			g.leaf("title", g.vocab.sentence(3))
			g.leaf("p", g.text(15, 40))
			if g.rng.Float64() < 0.3 {
				g.open("figure")
				g.leaf("caption", g.text(4, 10))
				g.close("figure")
			}
			g.close("subsection")
		}
		g.close("section")
	}
	nTmpl := g.rng.Intn(3)
	for i := 0; i < nTmpl; i++ {
		g.leaf("template", g.vocab.sentence(5))
	}
	g.close("body")
	g.close("article")
	return []byte(g.sb.String())
}
