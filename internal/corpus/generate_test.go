package corpus

import (
	"bytes"
	"strings"
	"testing"

	"trex/internal/xmlscan"
)

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateIEEE(20, 42)
	b := GenerateIEEE(20, 42)
	if len(a.Docs) != 20 || len(b.Docs) != 20 {
		t.Fatalf("doc counts = %d, %d", len(a.Docs), len(b.Docs))
	}
	for i := range a.Docs {
		if !bytes.Equal(a.Docs[i].Data, b.Docs[i].Data) {
			t.Fatalf("doc %d differs between identical configs", i)
		}
	}
	c := GenerateIEEE(20, 43)
	same := 0
	for i := range a.Docs {
		if bytes.Equal(a.Docs[i].Data, c.Docs[i].Data) {
			same++
		}
	}
	if same == len(a.Docs) {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestGeneratePrefixStability(t *testing.T) {
	// Generating more documents must not change the earlier ones.
	small := GenerateWiki(5, 7)
	big := GenerateWiki(15, 7)
	for i := range small.Docs {
		if !bytes.Equal(small.Docs[i].Data, big.Docs[i].Data) {
			t.Fatalf("doc %d changed when collection grew", i)
		}
	}
}

func TestGeneratedDocsAreWellFormed(t *testing.T) {
	for _, col := range []*Collection{GenerateIEEE(30, 1), GenerateWiki(30, 1)} {
		for _, d := range col.Docs {
			root, err := xmlscan.Parse(d.Data)
			if err != nil {
				t.Fatalf("%s doc %d: %v", col.Style, d.ID, err)
			}
			if root.Tag != "article" {
				t.Fatalf("%s doc %d root = %q", col.Style, d.ID, root.Tag)
			}
			if root.Count() < 5 {
				t.Fatalf("%s doc %d suspiciously small: %d elements", col.Style, d.ID, root.Count())
			}
		}
	}
}

func TestIEEEStructure(t *testing.T) {
	col := GenerateIEEE(50, 3)
	sawSS1, sawSS2, sawIP1, sawFig := false, false, false, false
	for _, d := range col.Docs {
		root, err := xmlscan.Parse(d.Data)
		if err != nil {
			t.Fatal(err)
		}
		root.Walk(func(n *xmlscan.Node) bool {
			switch n.Tag {
			case "ss1":
				sawSS1 = true
			case "ss2":
				sawSS2 = true
			case "ip1":
				sawIP1 = true
			case "fig":
				sawFig = true
			}
			return true
		})
	}
	if !sawSS1 || !sawSS2 || !sawIP1 || !sawFig {
		t.Fatalf("missing synonym structures: ss1=%v ss2=%v ip1=%v fig=%v",
			sawSS1, sawSS2, sawIP1, sawFig)
	}
	// Alias map collapses the synonyms.
	if col.Aliases["ss1"] != "sec" || col.Aliases["ss2"] != "sec" || col.Aliases["ip1"] != "p" {
		t.Fatalf("aliases = %v", col.Aliases)
	}
}

func TestTopicPlanting(t *testing.T) {
	col := GenerateIEEE(200, 11)
	aboutDocs := 0
	for _, d := range col.Docs {
		if strings.Contains(string(d.Data), "ontologies") {
			aboutDocs++
		}
	}
	// DocFraction for the "ontologies" topic is 0.30; with 200 docs we
	// expect roughly 60. Accept a generous band.
	if aboutDocs < 30 || aboutDocs > 110 {
		t.Fatalf("ontologies appears in %d/200 docs, want ~60", aboutDocs)
	}
}

func TestWikiTopicPlanting(t *testing.T) {
	col := GenerateWiki(300, 5)
	renaissance := 0
	genetic := 0
	for _, d := range col.Docs {
		s := string(d.Data)
		if strings.Contains(s, "renaissance") {
			renaissance++
		}
		if strings.Contains(s, "genetic") {
			genetic++
		}
	}
	if renaissance == 0 {
		t.Fatal("renaissance topic never planted")
	}
	if genetic <= renaissance {
		t.Fatalf("genetic (%d) should be much more common than renaissance (%d)",
			genetic, renaissance)
	}
}

func TestGenerateDefaults(t *testing.T) {
	col := Generate(Config{})
	if len(col.Docs) != 100 {
		t.Fatalf("default Docs = %d, want 100", len(col.Docs))
	}
	if col.Style != StyleIEEE {
		t.Fatalf("default style = %v", col.Style)
	}
	if col.Style.String() != "ieee" || StyleWiki.String() != "wiki" {
		t.Fatalf("style strings: %q %q", col.Style.String(), StyleWiki.String())
	}
}

func TestWordAtUnique(t *testing.T) {
	seen := make(map[string]int)
	for i := 0; i < 5000; i++ {
		w := wordAt(i)
		if prev, dup := seen[w]; dup {
			t.Fatalf("wordAt(%d) == wordAt(%d) == %q", i, prev, w)
		}
		seen[w] = i
		if len(w) < 4 {
			t.Fatalf("wordAt(%d) = %q too short", i, w)
		}
	}
}
