package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// JSONTopics plant query terms into API-log-style JSON corpora; the
// shapes mirror the selectivity regimes of the XML topics (broad,
// medium, narrow).
var JSONTopics = []Topic{
	{Name: "timeouts", Words: []string{"timeout", "connection", "refused"}, DocFraction: 0.30, Density: 0.30},
	{Name: "payments", Words: []string{"payment", "declined", "retry"}, DocFraction: 0.15, Density: 0.25},
	{Name: "quota", Words: []string{"quota", "exceeded", "throttle"}, DocFraction: 0.04, Density: 0.30},
	{Name: "deploys", Words: []string{"deploy", "rollback", "canary"}, DocFraction: 0.35, Density: 0.25},
}

// GenerateJSON produces an API-log / document-store style JSON
// collection: service event records with nested request/response
// objects, tag arrays, and free-text messages carrying the topic
// injections. Deterministic in (docs, seed), document-independent
// streams like Generate.
func GenerateJSON(docs int, seed int64) *Collection {
	if docs <= 0 {
		docs = 100
	}
	col := &Collection{Format: FormatJSON, Topics: JSONTopics, Relevance: make(map[string][]int)}
	col.Docs = make([]Document, docs)
	for i := 0; i < docs; i++ {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
		vocab := newVocabulary(rng, 20000)
		g := &docGen{rng: rng, vocab: vocab, topics: JSONTopics}
		g.pickTopics()
		col.Docs[i] = Document{ID: i, Name: fmt.Sprintf("event-%06d.json", i), Data: g.jsonDoc(i)}
		for _, t := range g.about {
			col.Relevance[t.Name] = append(col.Relevance[t.Name], i)
		}
	}
	return col
}

// jsonDoc emits one event record. Field text reuses the XML generator's
// vocabulary and topic-injection machinery, so queries over message
// fields hit the same selectivity regimes as the XML benchmarks.
func (g *docGen) jsonDoc(id int) []byte {
	g.sb.Reset()
	g.sb.WriteString("{")
	g.field("event", g.jstr("service "+g.vocab.sentence(1)+" event"))
	g.sb.WriteString(",")
	g.field("id", fmt.Sprintf("%d", id))
	g.sb.WriteString(",")
	g.field("request", g.jsonRequest())
	g.sb.WriteString(",")
	g.field("response", g.jsonResponse())
	g.sb.WriteString(",")
	g.field("message", g.jstr(g.text(15, 40)))
	g.sb.WriteString(",")
	nTags := 1 + g.rng.Intn(4)
	tags := make([]string, nTags)
	for i := range tags {
		tags[i] = g.jstr(g.vocab.sample())
	}
	g.field("tags", "["+strings.Join(tags, ",")+"]")
	if g.rng.Float64() < 0.5 {
		g.sb.WriteString(",")
		nNotes := 1 + g.rng.Intn(3)
		notes := make([]string, nNotes)
		for i := range notes {
			notes[i] = `{"note":` + g.jstr(g.text(5, 15)) + `}`
		}
		g.field("annotations", "["+strings.Join(notes, ",")+"]")
	}
	g.sb.WriteString("}")
	return []byte(g.sb.String())
}

func (g *docGen) jsonRequest() string {
	return `{"method":` + g.jstr(g.vocab.sample()) +
		`,"path":` + g.jstr(g.vocab.sentence(2)) +
		`,"params":{"query":` + g.jstr(g.text(5, 12)) + `}}`
}

func (g *docGen) jsonResponse() string {
	body := `{"status":` + fmt.Sprintf("%d", 200+g.rng.Intn(300)) +
		`,"detail":` + g.jstr(g.text(8, 20))
	if g.rng.Float64() < 0.3 {
		body += `,"errors":null`
	}
	return body + "}"
}

// field writes a "key":value pair; value must already be JSON.
func (g *docGen) field(key, value string) {
	g.sb.WriteString(`"` + key + `":` + value)
}

// jstr quotes generator text as a JSON string; generator vocabulary is
// ASCII alphanumeric plus spaces, so plain quoting suffices.
func (g *docGen) jstr(s string) string { return `"` + s + `"` }
