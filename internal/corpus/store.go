package corpus

import (
	"encoding/binary"
	"fmt"

	"trex/internal/storage"
)

// DocStore persists collection documents in a storage table so index
// builders and tools can fetch document bytes by id.
//
// Documents larger than a storage value are split into sequential chunks
// under keys (docid, chunkno), mirroring how the paper fragments long
// PostingLists tuples.
type DocStore struct {
	tree *storage.Tree
}

// docChunkSize keeps chunk values comfortably under MaxValueSize.
const docChunkSize = 3000

// TableDocuments is the storage table name used by OpenDocStore.
const TableDocuments = "Documents"

// OpenDocStore opens (creating if needed) the document table in db.
func OpenDocStore(db *storage.DB) (*DocStore, error) {
	tree, err := db.EnsureTable(TableDocuments)
	if err != nil {
		return nil, err
	}
	return &DocStore{tree: tree}, nil
}

func docKey(id int, chunk int) []byte {
	var k [9]byte
	k[0] = 'D'
	binary.BigEndian.PutUint32(k[1:5], uint32(id))
	binary.BigEndian.PutUint32(k[5:9], uint32(chunk))
	return k[:]
}

// Put stores a document's bytes.
func (s *DocStore) Put(id int, data []byte) error {
	if id < 0 {
		return fmt.Errorf("corpus: negative doc id %d", id)
	}
	for chunk := 0; ; chunk++ {
		lo := chunk * docChunkSize
		if lo >= len(data) && chunk > 0 {
			break
		}
		hi := lo + docChunkSize
		if hi > len(data) {
			hi = len(data)
		}
		if err := s.tree.Put(docKey(id, chunk), data[lo:hi]); err != nil {
			return err
		}
		if hi == len(data) {
			break
		}
	}
	return nil
}

// Get retrieves a document's bytes, or storage.ErrNotFound.
func (s *DocStore) Get(id int) ([]byte, error) {
	var out []byte
	cur := s.tree.Cursor()
	prefix := docKey(id, 0)[:5]
	ok, err := cur.SeekPrefix(prefix)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, storage.ErrNotFound
	}
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		out = append(out, cur.Value()...)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PutCollection stores every document of col.
func (s *DocStore) PutCollection(col *Collection) error {
	for _, d := range col.Docs {
		if err := s.Put(d.ID, d.Data); err != nil {
			return fmt.Errorf("corpus: store doc %d: %w", d.ID, err)
		}
	}
	return nil
}

// Count returns the number of stored documents.
func (s *DocStore) Count() (int, error) {
	cur := s.tree.Cursor()
	n := 0
	lastDoc := -1
	ok, err := cur.First()
	for ; ok; ok, err = cur.Next() {
		k := cur.Key()
		if len(k) != 9 || k[0] != 'D' {
			continue
		}
		id := int(binary.BigEndian.Uint32(k[1:5]))
		if id != lastDoc {
			n++
			lastDoc = id
		}
	}
	return n, err
}
