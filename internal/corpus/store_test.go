package corpus

import (
	"bytes"
	"testing"

	"trex/internal/storage"
)

func TestDocStoreRoundTrip(t *testing.T) {
	db := storage.OpenMemory()
	defer db.Close()
	ds, err := OpenDocStore(db)
	if err != nil {
		t.Fatal(err)
	}
	col := GenerateIEEE(10, 9)
	if err := ds.PutCollection(col); err != nil {
		t.Fatal(err)
	}
	for _, d := range col.Docs {
		got, err := ds.Get(d.ID)
		if err != nil {
			t.Fatalf("Get %d: %v", d.ID, err)
		}
		if !bytes.Equal(got, d.Data) {
			t.Fatalf("doc %d round trip mismatch: %d vs %d bytes", d.ID, len(got), len(d.Data))
		}
	}
	n, err := ds.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("Count = %d, want 10", n)
	}
}

func TestDocStoreLargeDocChunking(t *testing.T) {
	db := storage.OpenMemory()
	defer db.Close()
	ds, err := OpenDocStore(db)
	if err != nil {
		t.Fatal(err)
	}
	// 25 KiB forces ~9 chunks.
	big := bytes.Repeat([]byte("abcdefghij"), 2500)
	if err := ds.Put(3, big); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("large doc mismatch: %d vs %d bytes", len(got), len(big))
	}
}

func TestDocStoreMissing(t *testing.T) {
	db := storage.OpenMemory()
	defer db.Close()
	ds, err := OpenDocStore(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Get(99); err != storage.ErrNotFound {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := ds.Put(-1, []byte("x")); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestDocStoreEmptyDoc(t *testing.T) {
	db := storage.OpenMemory()
	defer db.Close()
	ds, err := OpenDocStore(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put(0, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty doc came back with %d bytes", len(got))
	}
}
