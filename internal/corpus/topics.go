package corpus

// Topic plants query terms into a controlled fraction of documents so that
// benchmark queries hit realistic selectivity regimes.
type Topic struct {
	// Name identifies the topic in configs and debugging output.
	Name string
	// Words are injected into documents that are "about" the topic.
	Words []string
	// DocFraction is the probability that a document is about the topic.
	DocFraction float64
	// Density is the probability that any given paragraph of an about-
	// document receives an injection of the topic's words.
	Density float64
}

// IEEETopics mirror the five IEEE-collection queries of Table 1 in the
// paper (202, 203, 233, 260, 270). Fractions are tuned so the number of
// matching elements per query spans the same regimes: Q202 broad (~8k
// answers), Q203 medium, Q233 narrow terms, Q260 very broad wildcard
// query, Q270 broad two-term conjunction.
var IEEETopics = []Topic{
	{Name: "ontologies", Words: []string{"ontologies", "ontology", "case", "study"}, DocFraction: 0.30, Density: 0.25},
	{Name: "codesigning", Words: []string{"code", "signing", "verification"}, DocFraction: 0.15, Density: 0.15},
	{Name: "music", Words: []string{"synthesizers", "music", "audio"}, DocFraction: 0.04, Density: 0.20},
	{Name: "modelchecking", Words: []string{"model", "checking", "state", "space", "explosion"}, DocFraction: 0.35, Density: 0.30},
	{Name: "ir", Words: []string{"introduction", "information", "retrieval"}, DocFraction: 0.40, Density: 0.30},
	{Name: "xmlqueries", Words: []string{"xml", "query", "evaluation"}, DocFraction: 0.25, Density: 0.25},
}

// WikiTopics mirror the two Wikipedia-collection queries (290, 292).
// Q290 ("genetic algorithm") matches broadly; Q292 (Renaissance painting,
// with negated -french -german) has many sids but few answers.
var WikiTopics = []Topic{
	{Name: "genetic", Words: []string{"genetic", "algorithm", "evolution"}, DocFraction: 0.30, Density: 0.30},
	{Name: "renaissance", Words: []string{"renaissance", "painting", "italian", "flemish"}, DocFraction: 0.03, Density: 0.4},
	{Name: "renaissanceneg", Words: []string{"french", "german", "painting"}, DocFraction: 0.05, Density: 0.10},
}
