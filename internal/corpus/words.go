package corpus

import (
	"math/rand"
	"strings"
)

// vocabulary produces deterministic synthetic words and samples them with
// a Zipf distribution, mimicking natural-language term frequency skew.
type vocabulary struct {
	size int
	zipf *rand.Zipf
}

var syllables = []string{
	"ba", "co", "de", "fi", "ga", "hu", "ji", "ka", "lo", "mi",
	"na", "po", "qua", "ri", "su", "ta", "ve", "wo", "xa", "zu",
	"ber", "con", "dal", "fen", "gor", "hil", "jun", "kel", "lam", "mor",
	"nar", "pol", "quin", "ras", "sol", "tem", "vor", "wen", "xil", "zan",
}

// wordAt returns the i-th synthetic vocabulary word. Words are 2-3
// syllables, lowercase, unique per index.
func wordAt(i int) string {
	n := len(syllables)
	var sb strings.Builder
	sb.WriteString(syllables[i%n])
	i /= n
	sb.WriteString(syllables[i%n])
	i /= n
	if i > 0 {
		sb.WriteString(syllables[i%n])
	}
	return sb.String()
}

// newVocabulary creates a Zipf sampler over size distinct words using rng.
func newVocabulary(rng *rand.Rand, size int) *vocabulary {
	if size < 2 {
		size = 2
	}
	return &vocabulary{
		size: size,
		zipf: rand.NewZipf(rng, 1.1, 1.0, uint64(size-1)),
	}
}

// sample returns one background word, Zipf-skewed toward low indexes.
func (v *vocabulary) sample() string {
	return wordAt(int(v.zipf.Uint64()))
}

// sentence produces n background words joined by spaces.
func (v *vocabulary) sentence(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = v.sample()
	}
	return strings.Join(parts, " ")
}
