package faultinject_test

// The crash-recovery loop: kill the store at EVERY write boundary during
// each maintenance operation (Materialize, DropList, AppendDocuments),
// reopen the surviving image, and assert the store is at exactly the
// pre-op or post-op logical state — never corrupt, never in between.
// This is the acceptance test for the pager's journaled atomic commit.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/faultinject"
	"trex/internal/index"
	"trex/internal/retrieval"
	"trex/internal/storage"
	"trex/internal/summary"
)

var (
	crashSIDs  = []uint32{1, 2, 3}
	crashTerms = []string{"ax", "bx"}
)

// genDocs generates documents [lo, hi) with per-document seeding: doc d
// depends only on (seed, d), so the same ids always carry the same
// content no matter which other documents are generated alongside.
func genDocs(seed int64, lo, hi int) []corpus.Document {
	tags := []string{"r", "s", "t", "u"}
	words := []string{"ax", "bx", "cx", "dx", "ex"}
	var docs []corpus.Document
	for d := lo; d < hi; d++ {
		rng := rand.New(rand.NewSource(seed ^ int64(d)*0x9E3779B9))
		var sb strings.Builder
		var emit func(depth int)
		emit = func(depth int) {
			tag := tags[rng.Intn(len(tags))]
			sb.WriteString("<" + tag + ">")
			for i := 1 + rng.Intn(4); i > 0; i-- {
				sb.WriteString(words[rng.Intn(len(words))] + " ")
			}
			if depth < 3 {
				for i := rng.Intn(3); i > 0; i-- {
					emit(depth + 1)
					sb.WriteString(words[rng.Intn(len(words))] + " ")
				}
			}
			sb.WriteString("</" + tag + ">")
		}
		sb.WriteString("<doc>")
		emit(0)
		sb.WriteString("</doc>")
		docs = append(docs, corpus.Document{ID: d, Data: []byte(sb.String())})
	}
	return docs
}

// dumpDB renders the full logical content of every table — the unit of
// pre-op/post-op comparison. Identical strings == identical stores.
func dumpDB(t *testing.T, db *storage.DB) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.Tables() {
		tr, err := db.OpenTable(name)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "== %s\n", name)
		cur := tr.Cursor()
		ok, err := cur.First()
		for ; ok; ok, err = cur.Next() {
			fmt.Fprintf(&sb, "%x %x\n", cur.Key(), cur.Value())
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// dumpImage opens a snapshot of d read-only and dumps it.
func dumpImage(t *testing.T, d *faultinject.Disk) string {
	t.Helper()
	db, err := storage.OpenBackend(d.Snapshot(), nil)
	if err != nil {
		t.Fatalf("open image for dump: %v", err)
	}
	return dumpDB(t, db)
}

// buildBaseImage commits a base index over 24 deterministic documents and
// returns the disk image.
func buildBaseImage(t *testing.T) *faultinject.Disk {
	t.Helper()
	col := &corpus.Collection{Docs: genDocs(42, 0, 24)}
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	d := faultinject.NewDisk(1)
	db, err := storage.NewDB(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := index.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func opMaterialize(db *storage.DB) error {
	st, err := index.Open(db)
	if err != nil {
		return err
	}
	sc, err := st.NewScorer(crashTerms)
	if err != nil {
		return err
	}
	if _, err := retrieval.Materialize(st, crashSIDs, crashTerms, sc, index.KindRPL, index.KindERPL); err != nil {
		return err
	}
	return db.Flush()
}

func opDropLists(db *storage.DB) error {
	st, err := index.Open(db)
	if err != nil {
		return err
	}
	for _, term := range crashTerms {
		for _, sid := range crashSIDs {
			if _, err := st.DropList(index.KindRPL, term, sid); err != nil {
				return err
			}
			if _, err := st.DropList(index.KindERPL, term, sid); err != nil {
				return err
			}
		}
	}
	return db.Flush()
}

func opAppendDocuments(db *storage.DB) error {
	st, err := index.Open(db)
	if err != nil {
		return err
	}
	// Rebuild the summary from the base collection each attempt:
	// AppendDocuments extends it in place, so it cannot be shared across
	// crash iterations.
	col := &corpus.Collection{Docs: genDocs(42, 0, 24)}
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		return err
	}
	if _, err := index.AppendDocuments(st, genDocs(42, 24, 28), sum); err != nil {
		return err
	}
	return db.Flush()
}

// runCrashLoop measures the op's total write count with a clean run, then
// replays it from the same pre-image with a crash armed at every write
// boundary k = 0..total, reopening and comparing after each crash.
func runCrashLoop(t *testing.T, pre *faultinject.Disk, op func(*storage.DB) error) {
	t.Helper()
	preDump := dumpImage(t, pre)

	clean := pre.Snapshot()
	db, err := storage.OpenBackend(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := op(db); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := clean.Writes()
	postDump := dumpImage(t, clean)
	if postDump == preDump {
		t.Fatal("op is a no-op — the crash loop would prove nothing")
	}
	if total == 0 {
		t.Fatal("op performed no writes")
	}

	crashed, recoveredPre, recoveredPost := 0, 0, 0
	for k := 0; k <= total; k++ {
		img := pre.Snapshot()
		db, err := storage.OpenBackend(img, nil)
		if err != nil {
			t.Fatalf("k=%d: open pre-image: %v", k, err)
		}
		img.CrashAfterWrites(k)
		opErr := op(db) // the process "dies" here: no Close, no cleanup
		if k < total && opErr == nil {
			t.Fatalf("k=%d/%d: op succeeded with a crash armed mid-run", k, total)
		}
		if k == total && opErr != nil {
			t.Fatalf("k=%d/%d: op failed with the full write budget: %v", k, total, opErr)
		}
		if opErr != nil {
			crashed++
		}

		surv := img.Snapshot()
		rdb, err := storage.OpenBackend(surv, nil)
		if err != nil {
			t.Fatalf("k=%d/%d: reopen after crash: %v", k, total, err)
		}
		got := dumpDB(t, rdb)
		switch got {
		case preDump:
			recoveredPre++
		case postDump:
			recoveredPost++
		default:
			t.Fatalf("k=%d/%d: reopened store is neither pre-op nor post-op state", k, total)
		}
		if k == total && got != postDump {
			t.Fatalf("k=%d: full write budget must yield the post-op state", k)
		}
	}
	if recoveredPost == 0 {
		t.Fatal("no crash point ever recovered to post-op: commit never became durable early enough")
	}
	t.Logf("%d boundaries: %d crashes, %d recovered pre-op, %d post-op",
		total+1, crashed, recoveredPre, recoveredPost)
}

func TestCrashLoopMaterialize(t *testing.T) {
	runCrashLoop(t, buildBaseImage(t), opMaterialize)
}

func TestCrashLoopDropList(t *testing.T) {
	// Pre-image for the drop is the committed post-materialize store.
	pre := buildBaseImage(t)
	db, err := storage.OpenBackend(pre, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := opMaterialize(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	runCrashLoop(t, pre, opDropLists)
}

func TestCrashLoopAppendDocuments(t *testing.T) {
	runCrashLoop(t, buildBaseImage(t), opAppendDocuments)
}

// TestCrashLoopStorageOps exercises the journal machinery directly at
// the storage layer: overwrite and delete committed keys (live-page
// rewrites plus deferred frees) in one flush, crashing at every write
// boundary.
func TestCrashLoopStorageOps(t *testing.T) {
	d := faultinject.NewDisk(3)
	db, err := storage.NewDB(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	op := func(db *storage.DB) error {
		tr, err := db.OpenTable("t")
		if err != nil {
			return err
		}
		for i := 0; i < 2000; i += 3 { // rewrite committed pages in place
			if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v1")); err != nil {
				return err
			}
		}
		for i := 1; i < 2000; i += 3 { // shrink the tree: deferred frees
			if _, err := tr.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
				return err
			}
		}
		return db.Flush()
	}
	runCrashLoop(t, d, op)
}
