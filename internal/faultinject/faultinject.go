// Package faultinject provides a deterministic, programmable page-store
// backend for crash-consistency and fault-path testing. A Disk
// implements storage.Backend over an in-memory page image and executes
// a seed-driven fault schedule: fail-the-Nth-write, torn (partial) page
// writes, ENOSPC, fsync errors, and crash points that freeze the image
// exactly as a dying process would leave it. Snapshot clones the
// surviving image with a clean schedule, which is how tests model "the
// machine comes back up and a new process opens the file".
//
// All schedule ordinals are deterministic counts of operations on this
// Disk, so a given (seed, schedule, workload) triple always produces
// the same surviving image — failures found by randomized tests replay
// exactly.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"trex/internal/storage"
)

var (
	// ErrInjected is returned by reads, writes, and syncs the schedule
	// marks as failing. The disk keeps operating afterwards.
	ErrInjected = errors.New("faultinject: injected I/O error")
	// ErrCrashed is returned by every operation once a crash point has
	// fired; nothing is persisted past it. A crashed Disk never
	// recovers — Snapshot the image and open that instead.
	ErrCrashed = errors.New("faultinject: disk crashed")
	// ErrNoSpace is returned by writes that would allocate a page past
	// the configured quota, modelling ENOSPC (overwrites still succeed).
	ErrNoSpace = errors.New("faultinject: no space left on device (injected)")
)

// Disk is a deterministic in-memory page store with a programmable
// fault schedule. The zero schedule injects nothing; use the setters to
// arm faults, which may also be re-armed mid-run.
type Disk struct {
	mu    sync.Mutex
	seed  int64
	rng   *rand.Rand
	pages map[uint32][]byte

	writes int // successful (including torn) page writes
	reads  int // successful page reads
	syncs  int // Sync calls, successful or not

	failWritesAfter int // >= 0: writes beyond this many fail; -1 off
	failReadsAfter  int // >= 0: reads beyond this many fail; -1 off
	crashAfter      int // >= 0: the write after this many crashes; -1 off
	failSyncAt      int // > 0: that sync ordinal (1-based) fails; 0 off
	tornWriteAt     int // > 0: that write ordinal (1-based) is torn; 0 off
	limitPages      int // >= 0: max distinct pages; -1 unlimited
	crashed         bool
}

var _ storage.Backend = (*Disk)(nil)

// NewDisk returns an empty disk with no faults armed. The seed drives
// only the randomized parts of the schedule (torn-write prefix length).
func NewDisk(seed int64) *Disk {
	return &Disk{
		seed:            seed,
		rng:             rand.New(rand.NewSource(seed)),
		pages:           make(map[uint32][]byte),
		failWritesAfter: -1,
		failReadsAfter:  -1,
		crashAfter:      -1,
		limitPages:      -1,
	}
}

// FailWritesAfter lets the next n writes succeed and fails every later
// one with ErrInjected (n=0 fails all writes; n<0 disarms).
func (d *Disk) FailWritesAfter(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		d.failWritesAfter = -1
		return
	}
	d.failWritesAfter = d.writes + n
}

// FailReadsAfter lets the next n reads succeed and fails every later
// one with ErrInjected (n=0 fails all reads; n<0 disarms).
func (d *Disk) FailReadsAfter(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		d.failReadsAfter = -1
		return
	}
	d.failReadsAfter = d.reads + n
}

// CrashAfterWrites freezes the disk after n more successful writes:
// the (n+1)th write and every operation after it return ErrCrashed and
// persist nothing, leaving the image exactly as a crash would.
func (d *Disk) CrashAfterWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		d.crashAfter = -1
		return
	}
	d.crashAfter = d.writes + n
}

// FailSyncAt fails the nth Sync call from now (1-based) with
// ErrInjected; other syncs succeed. n<=0 disarms.
func (d *Disk) FailSyncAt(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 0 {
		d.failSyncAt = 0
		return
	}
	d.failSyncAt = d.syncs + n
}

// TornWriteAt makes the nth write from now (1-based) persist only a
// seeded-length prefix of the page while reporting success — the
// classic torn sector. The page CRC makes later reads of that page
// surface storage.ErrCorrupt. n<=0 disarms.
func (d *Disk) TornWriteAt(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 0 {
		d.tornWriteAt = 0
		return
	}
	d.tornWriteAt = d.writes + n
}

// LimitPages caps the number of distinct pages; writes that would
// allocate past the cap fail with ErrNoSpace. n<0 removes the cap.
func (d *Disk) LimitPages(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.limitPages = n
}

// Heal disarms every injected fault (counters keep running). It does
// not revive a crashed disk: a crash is terminal by design, model
// recovery by opening a Snapshot instead.
func (d *Disk) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWritesAfter = -1
	d.failReadsAfter = -1
	d.crashAfter = -1
	d.failSyncAt = 0
	d.tornWriteAt = 0
	d.limitPages = -1
}

// Writes returns the number of successful page writes so far.
func (d *Disk) Writes() int { d.mu.Lock(); defer d.mu.Unlock(); return d.writes }

// Reads returns the number of successful page reads so far.
func (d *Disk) Reads() int { d.mu.Lock(); defer d.mu.Unlock(); return d.reads }

// Syncs returns the number of Sync calls so far.
func (d *Disk) Syncs() int { d.mu.Lock(); defer d.mu.Unlock(); return d.syncs }

// Pages returns the number of distinct pages ever written.
func (d *Disk) Pages() int { d.mu.Lock(); defer d.mu.Unlock(); return len(d.pages) }

// Crashed reports whether a crash point has fired.
func (d *Disk) Crashed() bool { d.mu.Lock(); defer d.mu.Unlock(); return d.crashed }

// Snapshot returns an independent copy of the surviving disk image with
// a clean schedule and zeroed counters — what a fresh process sees when
// it opens the file after the old one died.
func (d *Disk) Snapshot() *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	nd := NewDisk(d.seed)
	for id, p := range d.pages {
		cp := make([]byte, len(p))
		copy(cp, p)
		nd.pages[id] = cp
	}
	return nd
}

// ReadPage implements storage.Backend.
func (d *Disk) ReadPage(id uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.failReadsAfter >= 0 && d.reads >= d.failReadsAfter {
		return ErrInjected
	}
	p, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("%w: page %d not written", storage.ErrCorrupt, id)
	}
	d.reads++
	copy(buf, p)
	return nil
}

// WritePage implements storage.Backend.
func (d *Disk) WritePage(id uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if d.crashAfter >= 0 && d.writes >= d.crashAfter {
		d.crashed = true
		return ErrCrashed
	}
	if d.failWritesAfter >= 0 && d.writes >= d.failWritesAfter {
		return ErrInjected
	}
	p, ok := d.pages[id]
	if !ok {
		if d.limitPages >= 0 && len(d.pages) >= d.limitPages {
			return ErrNoSpace
		}
		p = make([]byte, storage.PageSize)
		d.pages[id] = p
	}
	d.writes++
	if d.tornWriteAt > 0 && d.writes == d.tornWriteAt {
		n := 1 + d.rng.Intn(storage.PageSize-1)
		copy(p[:n], buf[:n])
		return nil
	}
	copy(p, buf)
	return nil
}

// Sync implements storage.Backend.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	d.syncs++
	if d.failSyncAt > 0 && d.syncs == d.failSyncAt {
		return ErrInjected
	}
	return nil
}

// Close implements storage.Backend. The image stays inspectable (and
// snapshottable) after Close so post-mortem assertions keep working.
func (d *Disk) Close() error { return nil }
