package faultinject_test

import (
	"bytes"
	"errors"
	"testing"

	"trex/internal/faultinject"
	"trex/internal/storage"
)

func page(b byte) []byte {
	p := make([]byte, storage.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestWriteFailAndCrashSchedules(t *testing.T) {
	d := faultinject.NewDisk(7)
	for i := 0; i < 5; i++ {
		if err := d.WritePage(uint32(i), page(byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	d.FailWritesAfter(2)
	if err := d.WritePage(10, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(11, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(12, page(1)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("3rd write after FailWritesAfter(2) = %v, want ErrInjected", err)
	}
	// Reads keep working after an injected write failure.
	buf := make([]byte, storage.PageSize)
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatalf("read after injected write fail: %v", err)
	}

	d.Heal()
	d.CrashAfterWrites(1)
	if err := d.WritePage(13, page(2)); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(14, page(2)); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("write past crash point = %v, want ErrCrashed", err)
	}
	if err := d.ReadPage(0, buf); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if err := d.Sync(); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("sync after crash = %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("Crashed() = false after crash point fired")
	}
	// Heal must not revive a crashed disk.
	d.Heal()
	if err := d.ReadPage(0, buf); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("read after Heal on crashed disk = %v, want ErrCrashed", err)
	}
	// The snapshot survives: page 13 was written before the crash, 14 not.
	s := d.Snapshot()
	if err := s.ReadPage(13, buf); err != nil {
		t.Fatalf("snapshot read of pre-crash write: %v", err)
	}
	if err := s.ReadPage(14, buf); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("snapshot read of never-written page = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	d := faultinject.NewDisk(1)
	if err := d.WritePage(3, page(0xAA)); err != nil {
		t.Fatal(err)
	}
	s := d.Snapshot()
	if err := d.WritePage(3, page(0xBB)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	if err := s.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0xAA)) {
		t.Fatal("snapshot page mutated by a later write to the original")
	}
	if s.Writes() != 0 || s.Reads() != 1 {
		t.Fatalf("snapshot counters = %d writes / %d reads, want 0/1", s.Writes(), s.Reads())
	}
}

func TestLimitPagesAllowsOverwrites(t *testing.T) {
	d := faultinject.NewDisk(1)
	for i := 0; i < 4; i++ {
		if err := d.WritePage(uint32(i), page(1)); err != nil {
			t.Fatal(err)
		}
	}
	d.LimitPages(4)
	if err := d.WritePage(2, page(9)); err != nil {
		t.Fatalf("overwrite at quota: %v", err)
	}
	if err := d.WritePage(9, page(9)); !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("new page past quota = %v, want ErrNoSpace", err)
	}
	d.LimitPages(-1)
	if err := d.WritePage(9, page(9)); err != nil {
		t.Fatalf("new page after lifting quota: %v", err)
	}
}

func TestFailSyncAtOrdinal(t *testing.T) {
	d := faultinject.NewDisk(1)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.FailSyncAt(2)
	if err := d.Sync(); err != nil {
		t.Fatalf("1st armed sync: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("2nd armed sync = %v, want ErrInjected", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("sync after the armed ordinal: %v", err)
	}
}

func TestTornWriteIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []byte {
		d := faultinject.NewDisk(seed)
		if err := d.WritePage(1, page(0x11)); err != nil {
			t.Fatal(err)
		}
		d.TornWriteAt(1)
		if err := d.WritePage(1, page(0x22)); err != nil {
			t.Fatalf("torn write must report success: %v", err)
		}
		buf := make([]byte, storage.PageSize)
		if err := d.ReadPage(1, buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(5), run(5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different torn images")
	}
	if bytes.Equal(a, page(0x22)) || bytes.Equal(a, page(0x11)) {
		t.Fatal("torn write left a fully-old or fully-new page")
	}
	if !bytes.Equal(run(6), run(6)) {
		t.Fatal("same seed produced different torn images")
	}
}
