package faultinject_test

// Crash-recovery loops for the streaming ingest path: documents are
// staged one at a time (exactly as an engine Ingestor accumulates them),
// applied, and committed — and a kill at EVERY write boundary must leave
// the reopened store at exactly the pre-batch or post-batch state. The
// multi-batch loop additionally proves batch atomicity composes: a crash
// during batch 2 lands on post-batch-1, never between batches' halves.

import (
	"testing"

	"trex/internal/corpus"
	"trex/internal/faultinject"
	"trex/internal/index"
	"trex/internal/oracle/gen"
	"trex/internal/storage"
	"trex/internal/summary"
)

// stageIngest mirrors Ingestor.Add + Commit at the index layer: each
// document is staged individually, appended into one pending batch,
// renumbered at commit time, applied, and flushed once.
func stageIngest(db *storage.DB, f corpus.Format, docs []corpus.Document, baseCol *corpus.Collection) error {
	st, err := index.Open(db)
	if err != nil {
		return err
	}
	// Rebuild the summary from the base collection each attempt:
	// ApplyStaged extends it in place, so it cannot be shared across
	// crash iterations.
	sum, err := summary.Build(baseCol, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		return err
	}
	var pending *index.StagedBatch
	for _, d := range docs {
		b, err := index.StageDocuments(f, []corpus.Document{{Data: d.Data}})
		if err != nil {
			return err
		}
		if pending == nil {
			pending = b
		} else if err := pending.Append(b); err != nil {
			return err
		}
	}
	next, err := st.LocalDocCount()
	if err != nil {
		return err
	}
	pending.Renumber(next)
	if _, err := index.ApplyStaged(st, pending, sum); err != nil {
		return err
	}
	return db.Flush()
}

// TestCrashLoopStagedIngest kills the staged-ingest commit at every
// write boundary over an XML base image.
func TestCrashLoopStagedIngest(t *testing.T) {
	baseCol := &corpus.Collection{Docs: genDocs(42, 0, 24)}
	runCrashLoop(t, buildBaseImage(t), func(db *storage.DB) error {
		return stageIngest(db, corpus.FormatXML, genDocs(42, 24, 28), baseCol)
	})
}

// buildJSONBaseImage commits a base index over a seeded JSON collection
// (with the persisted format marker) and returns the disk image.
func buildJSONBaseImage(t *testing.T, col *corpus.Collection) *faultinject.Disk {
	t.Helper()
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	d := faultinject.NewDisk(1)
	db, err := storage.NewDB(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := index.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutCorpusFormat(col.Format); err != nil {
		t.Fatal(err)
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

// jsonDocs renumbers a window of seeded JSON documents to dense ids
// starting at lo.
func jsonDocs(seed int64, lo, hi int) []corpus.Document {
	var docs []corpus.Document
	for d := lo; d < hi; d++ {
		doc := gen.JSONDoc(seed, d)
		doc.ID = d
		docs = append(docs, doc)
	}
	return docs
}

// TestCrashLoopStagedIngestJSON is the same loop in the JSON universe:
// staging parses through the jsoncorpus mapping, and atomicity must be
// identical — the universe a document comes from cannot change what a
// crash can expose.
func TestCrashLoopStagedIngestJSON(t *testing.T) {
	baseCol := &corpus.Collection{Docs: jsonDocs(42, 0, 24), Format: corpus.FormatJSON}
	pre := buildJSONBaseImage(t, baseCol)
	runCrashLoop(t, pre, func(db *storage.DB) error {
		return stageIngest(db, corpus.FormatJSON, jsonDocs(42, 24, 28), baseCol)
	})
}

// TestCrashLoopStagedIngestTwoBatches commits two staged batches in one
// op, crashing at every write boundary across both. Every survivor must
// reopen at exactly pre, post-batch-1, or post-batch-2 — a crash inside
// batch 2 rolls back to the batch-1 commit point, never further and
// never partially.
func TestCrashLoopStagedIngestTwoBatches(t *testing.T) {
	pre := buildBaseImage(t)
	baseCol := &corpus.Collection{Docs: genDocs(42, 0, 24)}
	batch1 := func(db *storage.DB) error {
		return stageIngest(db, corpus.FormatXML, genDocs(42, 24, 28), baseCol)
	}
	batch2 := func(db *storage.DB) error {
		// Batch 2's summary baseline includes batch 1 (it is committed by
		// the time batch 2 stages).
		col2 := &corpus.Collection{Docs: genDocs(42, 0, 28)}
		return stageIngest(db, corpus.FormatXML, genDocs(42, 28, 31), col2)
	}
	op := func(db *storage.DB) error {
		if err := batch1(db); err != nil {
			return err
		}
		return batch2(db)
	}

	preDump := dumpImage(t, pre)

	// Clean runs pin the three legal states and the total write budget.
	mid := pre.Snapshot()
	db, err := storage.OpenBackend(mid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch1(db); err != nil {
		t.Fatalf("clean batch 1: %v", err)
	}
	midDump := dumpDB(t, db)

	clean := pre.Snapshot()
	db, err = storage.OpenBackend(clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := op(db); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := clean.Writes()
	postDump := dumpImage(t, clean)
	if preDump == midDump || midDump == postDump {
		t.Fatal("batches are no-ops — the loop would prove nothing")
	}

	var atPre, atMid, atPost int
	for k := 0; k <= total; k++ {
		img := pre.Snapshot()
		db, err := storage.OpenBackend(img, nil)
		if err != nil {
			t.Fatalf("k=%d: open pre-image: %v", k, err)
		}
		img.CrashAfterWrites(k)
		opErr := op(db) // the process "dies" here: no Close, no cleanup
		if k == total && opErr != nil {
			t.Fatalf("k=%d/%d: op failed with the full write budget: %v", k, total, opErr)
		}

		surv := img.Snapshot()
		rdb, err := storage.OpenBackend(surv, nil)
		if err != nil {
			t.Fatalf("k=%d/%d: reopen after crash: %v", k, total, err)
		}
		got := dumpDB(t, rdb)
		switch got {
		case preDump:
			atPre++
		case midDump:
			atMid++
		case postDump:
			atPost++
		default:
			t.Fatalf("k=%d/%d: reopened store is not pre, post-batch-1, or post-batch-2", k, total)
		}
		if k == total && got != postDump {
			t.Fatalf("k=%d: full write budget must yield the post-batch-2 state", k)
		}
	}
	if atMid == 0 {
		t.Fatal("no crash point ever landed on post-batch-1: batch 1's commit never became durable before batch 2")
	}
	if atPost == 0 {
		t.Fatal("no crash point ever recovered to post-batch-2")
	}
	t.Logf("%d boundaries: %d pre, %d post-batch-1, %d post-batch-2", total+1, atPre, atMid, atPost)
}
