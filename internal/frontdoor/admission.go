// Package frontdoor protects the engine from overload: a bounded
// admission queue with load shedding (so a traffic spike degrades into
// fast rejections instead of unbounded latency), and an epoch-keyed
// result cache that serves repeated queries without re-evaluation while
// any index write invalidates every cached ranking atomically.
//
// The package is deliberately engine-agnostic — it deals in slots,
// epochs and opaque values — so the admission and caching policies can
// be tested exhaustively without building an index. The engine wires it
// into the query path (trex.FrontDoorOptions) and the web layer maps
// ErrShed / ErrQueueTimeout to HTTP 429 / 503.
package frontdoor

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

var (
	// ErrShed rejects a query at the door: every execution slot is busy
	// and the waiting room is full. The caller should retry after a
	// backoff (HTTP 429).
	ErrShed = errors.New("frontdoor: query shed, admission queue full")
	// ErrQueueTimeout rejects a query that waited in the admission queue
	// longer than the configured bound without getting a slot (HTTP 503).
	ErrQueueTimeout = errors.New("frontdoor: queue wait exceeded admission timeout")
)

// DefaultQueueTimeout bounds queue waits when no timeout is configured.
// Past this point the client is better served by a fast failure it can
// retry against a less loaded replica than by a slot it may never get.
const DefaultQueueTimeout = 100 * time.Millisecond

// AdmissionOptions configures the bounded admission queue.
type AdmissionOptions struct {
	// MaxInflight is the number of queries executing concurrently
	// (minimum 1).
	MaxInflight int
	// QueueDepth is the number of queries allowed to wait for a slot
	// beyond MaxInflight; an arrival finding the queue full is shed
	// immediately (0 = no waiting room, shed as soon as slots are busy).
	QueueDepth int
	// QueueTimeout bounds how long a queued query waits before giving up
	// (<= 0 uses DefaultQueueTimeout).
	QueueTimeout time.Duration
}

// Admission is a bounded concurrency gate: at most MaxInflight holders,
// at most QueueDepth waiters, every waiter bounded by QueueTimeout.
// All counters are atomics so the telemetry registry can read them at
// scrape time without a lock.
type Admission struct {
	slots        chan struct{}
	queueDepth   int64
	queueTimeout time.Duration

	queued   atomic.Int64
	inflight atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
	timedOut atomic.Uint64
}

// NewAdmission builds the gate. MaxInflight < 1 is clamped to 1.
func NewAdmission(o AdmissionOptions) *Admission {
	if o.MaxInflight < 1 {
		o.MaxInflight = 1
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = DefaultQueueTimeout
	}
	return &Admission{
		slots:        make(chan struct{}, o.MaxInflight),
		queueDepth:   int64(o.QueueDepth),
		queueTimeout: o.QueueTimeout,
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. On success it returns the release function (call
// exactly once, when the query is done) and the time spent queued. On
// failure the error is ErrShed (queue full, immediate), ErrQueueTimeout
// (waited out the bound, or the caller's deadline expired while
// queued), or the context's own error for a cancellation.
func (a *Admission) Acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	// Fast path: a free slot, no queueing, no timer.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return a.release, 0, nil
	default:
	}
	// Slots busy: join the bounded queue or shed. The counter is the
	// queue — admission order among waiters is whatever the runtime
	// wakes first, which is fine; the bound is what matters.
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		a.shed.Add(1)
		return nil, 0, ErrShed
	}
	start := time.Now()
	timer := time.NewTimer(a.queueTimeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.admitted.Add(1)
		a.inflight.Add(1)
		return a.release, time.Since(start), nil
	case <-timer.C:
		a.queued.Add(-1)
		a.timedOut.Add(1)
		return nil, time.Since(start), ErrQueueTimeout
	case <-ctx.Done():
		a.queued.Add(-1)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The query's own deadline ran out while it waited — same
			// outcome as the queue timeout, and the same retry advice.
			a.timedOut.Add(1)
			return nil, time.Since(start), ErrQueueTimeout
		}
		return nil, time.Since(start), ctx.Err()
	}
}

func (a *Admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}

// MaxInflight returns the configured concurrency bound.
func (a *Admission) MaxInflight() int { return cap(a.slots) }

// QueueDepth returns the configured waiting-room size.
func (a *Admission) QueueDepth() int { return int(a.queueDepth) }

// QueueTimeout returns the configured queue-wait bound.
func (a *Admission) QueueTimeout() time.Duration { return a.queueTimeout }

// InFlight is the number of slots currently held.
func (a *Admission) InFlight() int64 { return a.inflight.Load() }

// Queued is the number of queries currently waiting for a slot.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// Admitted counts queries that got a slot.
func (a *Admission) Admitted() uint64 { return a.admitted.Load() }

// Shed counts queries rejected immediately because the queue was full.
func (a *Admission) Shed() uint64 { return a.shed.Load() }

// TimedOut counts queries that waited out the queue timeout (including
// deadlines that expired while queued).
func (a *Admission) TimedOut() uint64 { return a.timedOut.Load() }
