package frontdoor

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheShards splits the result cache into independently locked shards
// (keys are spread by FNV-1a) so concurrent readers on a hot workload
// rarely contend on one mutex.
const cacheShards = 16

// Cache is a sharded LRU of query results keyed by (key, epoch). The
// epoch is the engine's write epoch: every entry remembers the epoch it
// was filled under, and Get returns it only while that epoch is still
// current. Epochs only grow, so a mismatched entry can never become
// valid again — Get drops it on sight (counted as an invalidation).
//
// The engine fills and reads the cache under its read lock, and bumps
// the epoch under its write lock, which yields the crucial invariant
// without any cache-wide flush: a fill observed epoch E while holding
// the read lock, so the entry is exactly as fresh as E — and any write
// that could change rankings has, by construction, moved the engine
// past E before the next reader looks.
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

type cacheShard struct {
	mu  sync.Mutex
	lru *list.List
	m   map[string]*list.Element
}

type cacheEntry struct {
	key   string
	epoch uint64
	value any
}

// NewCache builds a cache holding roughly `entries` results in total
// (rounded up to a multiple of the shard count; entries <= 0 gets a
// small default).
func NewCache(entries int) *Cache {
	if entries <= 0 {
		entries = 256
	}
	per := (entries + cacheShards - 1) / cacheShards
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = make(map[string]*list.Element, per)
	}
	return c
}

// shard picks the key's shard by FNV-1a.
func (c *Cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// Get returns the value cached under key iff it was filled at the given
// epoch. An entry from an older epoch is deleted on the spot: a write
// has happened since the fill and the ranking may have changed.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		s.lru.Remove(el)
		delete(s.m, key)
		s.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	// Copy the value before unlocking: Put may overwrite ent.value in
	// place when a newer epoch replaces the entry.
	v := ent.value
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores the value under (key, epoch), evicting the shard's least
// recently used entry when full. A concurrent fill of the same key at
// the same epoch keeps the existing entry; a fill at a newer epoch
// replaces it.
func (c *Cache) Put(key string, epoch uint64, v any) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.epoch != epoch {
			ent.epoch = epoch
			ent.value = v
		}
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := 0
	for s.lru.Len() >= c.perShard {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.m, back.Value.(*cacheEntry).key)
		evicted++
	}
	s.m[key] = s.lru.PushFront(&cacheEntry{key: key, epoch: epoch, value: v})
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Len is the number of entries currently cached (any epoch).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Hits counts Gets served from the cache.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses counts Gets that found nothing usable (including
// invalidations).
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Evictions counts entries dropped by LRU pressure.
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }

// Invalidations counts entries dropped because their epoch was stale.
func (c *Cache) Invalidations() uint64 { return c.invalidations.Load() }
