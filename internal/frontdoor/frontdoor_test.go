package frontdoor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 2, QueueDepth: 1})
	r1, w1, err := a.Acquire(context.Background())
	if err != nil || w1 != 0 {
		t.Fatalf("first acquire: wait=%v err=%v", w1, err)
	}
	r2, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	if got := a.Admitted(); got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
	r1()
	r2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionShedWhenQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 1, QueueDepth: 0})
	rel, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	// No waiting room: the next arrival must be rejected immediately,
	// not after a timeout.
	start := time.Now()
	_, _, err = a.Acquire(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("shed took %v, want immediate", d)
	}
	if got := a.Shed(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 1, QueueDepth: 1, QueueTimeout: 20 * time.Millisecond})
	rel, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	_, wait, err := a.Acquire(context.Background())
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if wait < 20*time.Millisecond {
		t.Fatalf("wait = %v, want >= queue timeout", wait)
	}
	if got := a.TimedOut(); got != 1 {
		t.Fatalf("TimedOut = %d, want 1", got)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued after timeout = %d, want 0", got)
	}
}

func TestAdmissionQueuedWaiterGetsReleasedSlot(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 1, QueueDepth: 1, QueueTimeout: 5 * time.Second})
	rel, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		r, wait, err := a.Acquire(context.Background())
		if err == nil {
			if wait <= 0 {
				err = fmt.Errorf("queued acquire reported zero wait")
			}
			r()
		}
		done <- err
	}()
	// Give the waiter time to join the queue, then free the slot.
	time.Sleep(10 * time.Millisecond)
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if got := a.Admitted(); got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
}

func TestAdmissionDeadlineWhileQueuedIsTimeout(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 1, QueueDepth: 1, QueueTimeout: 5 * time.Second})
	rel, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err = a.Acquire(ctx)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout for an expired deadline", err)
	}
}

func TestAdmissionCancelWhileQueuedPropagates(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxInflight: 1, QueueDepth: 1, QueueTimeout: 5 * time.Second})
	rel, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err = a.Acquire(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAdmissionConcurrencyBoundHolds(t *testing.T) {
	const inflight = 4
	a := NewAdmission(AdmissionOptions{MaxInflight: inflight, QueueDepth: 64, QueueTimeout: 5 * time.Second})
	var (
		mu   sync.Mutex
		cur  int
		peak int
	)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := a.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if peak > inflight {
		t.Fatalf("peak concurrency %d exceeded MaxInflight %d", peak, inflight)
	}
	if got := a.Admitted(); got != 64 {
		t.Fatalf("Admitted = %d, want 64", got)
	}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, "va")
	v, ok := c.Get("a", 1)
	if !ok || v.(string) != "va" {
		t.Fatalf("Get = %v, %v; want va", v, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheEpochMismatchInvalidates(t *testing.T) {
	c := NewCache(64)
	c.Put("a", 1, "old")
	if _, ok := c.Get("a", 2); ok {
		t.Fatal("stale entry served across an epoch bump")
	}
	if c.Invalidations() != 1 {
		t.Fatalf("Invalidations = %d, want 1", c.Invalidations())
	}
	// The stale entry must be gone, not resurrectable at the old epoch.
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("stale entry survived its own invalidation")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCachePutNewerEpochReplaces(t *testing.T) {
	c := NewCache(64)
	c.Put("a", 1, "old")
	c.Put("a", 2, "new")
	v, ok := c.Get("a", 2)
	if !ok || v.(string) != "new" {
		t.Fatalf("Get = %v, %v; want new", v, ok)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One entry per shard: every insert beyond the first in a shard
	// evicts that shard's resident.
	c := NewCache(cacheShards)
	var keys []string
	for i := 0; len(keys) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == &c.shards[0] {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 1, 0)
	c.Put(keys[1], 1, 1)
	if _, ok := c.Get(keys[0], 1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[1], 1); !ok {
		t.Fatal("newest entry evicted")
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				epoch := uint64(i % 3)
				c.Put(k, epoch, i)
				c.Get(k, epoch)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128+cacheShards {
		t.Fatalf("Len = %d, exceeds capacity", c.Len())
	}
}
