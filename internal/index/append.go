package index

import (
	"fmt"

	"trex/internal/corpus"
	"trex/internal/summary"
	"trex/internal/xmlscan"
)

// AppendStats summarizes an AppendDocuments run.
type AppendStats struct {
	Docs     int
	Elements int
	Postings int64
	NewSIDs  int
}

// AppendDocuments adds documents to an already-built base index. Document
// ids must continue the existing dense sequence (the collection is
// append-only; ids order all positions, so new fragments sort after every
// existing fragment of their token).
//
// The summary is extended in place with any new label paths; the caller
// owns persisting it (Engine.AddDocuments does). Materialized RPL/ERPL
// lists are NOT updated here — their scores also go stale because the
// collection statistics change — so callers must drop them (see
// DropAllLists) or rebuild them afterwards.
func AppendDocuments(s *Store, docs []corpus.Document, sum *summary.Summary) (*AppendStats, error) {
	if len(docs) == 0 {
		return &AppendStats{}, nil
	}
	st, err := s.CollectionStats()
	if err != nil {
		return nil, fmt.Errorf("index: append requires a built base index: %w", err)
	}
	// The dense id sequence continues from the LOCAL document count: on
	// a cluster shard the collection statistics describe the whole
	// corpus (see SyncStatistics), not this store's slice of it.
	next, err := s.LocalDocCount()
	if err != nil {
		return nil, err
	}
	for i, d := range docs {
		if d.ID != next+i {
			return nil, fmt.Errorf("index: document ids must continue the sequence: got %d, want %d", d.ID, next+i)
		}
	}
	oldNodes := sum.NumNodes()
	stats := &AppendStats{Docs: len(docs)}
	var sumLen int64
	postings := make(map[string][]Pos)
	dfDelta := make(map[string]uint32)
	cfDelta := make(map[string]uint64)
	stop, err := s.Stopwords()
	if err != nil {
		return nil, err
	}

	for _, d := range docs {
		root, err := xmlscan.Parse(d.Data)
		if err != nil {
			return nil, fmt.Errorf("index: parse doc %d: %w", d.ID, err)
		}
		sum.ExtendWith(root)
		if !sum.SafeForRetrieval() {
			return nil, fmt.Errorf("index: doc %d makes the summary unsafe for retrieval", d.ID)
		}
		type row struct {
			key, val []byte
		}
		var rows []row
		err = sum.AssignDoc(root, func(n *xmlscan.Node, sid int) {
			rows = append(rows, row{
				key: elementsKey(uint32(sid), uint32(d.ID), uint32(n.End)),
				val: elementsValue(uint32(n.Length())),
			})
			sumLen += int64(n.Length())
		})
		if err != nil {
			return nil, fmt.Errorf("index: doc %d: %w", d.ID, err)
		}
		for _, r := range rows {
			if err := s.Elements.Put(r.key, r.val); err != nil {
				return nil, err
			}
			stats.Elements++
		}
		terms, err := xmlscan.DocTerms(d.Data)
		if err != nil {
			return nil, fmt.Errorf("index: tokenize doc %d: %w", d.ID, err)
		}
		seenInDoc := make(map[string]bool)
		for _, t := range terms {
			if stop[t.Text] {
				continue
			}
			postings[t.Text] = append(postings[t.Text], Pos{Doc: uint32(d.ID), Off: uint32(t.Offset)})
			cfDelta[t.Text]++
			if !seenInDoc[t.Text] {
				seenInDoc[t.Text] = true
				dfDelta[t.Text]++
			}
		}
	}

	// Append posting fragments; all new positions sort after existing ones
	// for their token because document ids are larger.
	for t, ps := range postings {
		stats.Postings += int64(len(ps))
		for lo := 0; lo < len(ps); lo += maxPostingsPerFragment {
			hi := lo + maxPostingsPerFragment
			if hi > len(ps) {
				hi = len(ps)
			}
			frag := ps[lo:hi]
			if err := s.Postings.Put(postingKey(t, frag[0]), postingValue(frag)); err != nil {
				return nil, err
			}
		}
	}

	// Merge term statistics (and drop the planner's memo of them).
	s.stats.invalidate()
	for t := range cfDelta {
		df, err := s.TermDF(t)
		if err != nil {
			return nil, err
		}
		cf, err := s.TermCF(t)
		if err != nil {
			return nil, err
		}
		v := termStatsValue(uint32(df)+dfDelta[t], uint64(cf)+cfDelta[t])
		if err := s.TermStats.Put([]byte(t), v); err != nil {
			return nil, err
		}
	}

	// Update collection statistics (average element length folds in the
	// new elements' total length).
	oldSum := st.AvgElementLen * float64(st.NumElements)
	st.NumDocs += len(docs)
	st.NumElements += stats.Elements
	if st.NumElements > 0 {
		st.AvgElementLen = (oldSum + float64(sumLen)) / float64(st.NumElements)
	}
	if err := s.PutCollectionStats(st); err != nil {
		return nil, err
	}
	// Keep the decoupled local count advancing when a stats sync froze
	// it (no-op for single-engine stores, where NumDocs is the count).
	tracked, err := s.localDocsTracked()
	if err != nil {
		return nil, err
	}
	if tracked {
		if err := s.putLocalDocCount(next + len(docs)); err != nil {
			return nil, err
		}
		for t := range cfDelta {
			if err := s.bumpLocalTermStat(t, int(dfDelta[t]), int64(cfDelta[t])); err != nil {
				return nil, err
			}
		}
	}
	stats.NewSIDs = sum.NumNodes() - oldNodes
	return stats, nil
}

// DropAllLists removes every materialized RPL/ERPL list and its catalog
// entry, returning the number of list entries deleted. Used after
// AppendDocuments, when all stored scores are stale.
func DropAllLists(s *Store) (int, error) {
	entries, err := s.CatalogEntries()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		n, err := s.DropList(e.Kind, e.Term, e.SID)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
