package index

import (
	"fmt"
	"runtime"
	"sync"

	"trex/internal/corpus"
	"trex/internal/summary"
	"trex/internal/xmlscan"
)

// AppendStats summarizes an ApplyStaged/AppendDocuments run.
type AppendStats struct {
	Docs     int
	Elements int
	Postings int64
	NewSIDs  int
}

// StagedBatch is the result of StageDocuments: documents parsed and
// tokenized but not yet visible anywhere. Staging is pure — it touches
// no store, no summary, no lock — so an engine can stage a streaming
// batch while queries run and only serialize the (cheap) apply step.
// A batch that fails to stage leaves no trace by construction: rollback
// is "drop the StagedBatch on the floor".
type StagedBatch struct {
	// Format is the universe the documents were parsed in.
	Format corpus.Format
	// Docs are the raw documents (stored verbatim by the engine).
	Docs []corpus.Document
	// Bytes is the total size of the staged document data — the
	// staged-bytes telemetry gauge sums this across pending batches.
	Bytes int64

	roots []*xmlscan.Node
	terms [][]xmlscan.Term
}

// Append folds another staged batch onto b (streaming ingest
// accumulates per-document stagings into one commit batch).
func (b *StagedBatch) Append(o *StagedBatch) error {
	if o.Format != b.Format {
		return fmt.Errorf("index: cannot mix %v and %v staged documents", b.Format, o.Format)
	}
	b.Docs = append(b.Docs, o.Docs...)
	b.roots = append(b.roots, o.roots...)
	b.terms = append(b.terms, o.terms...)
	b.Bytes += o.Bytes
	return nil
}

// Renumber assigns the dense document ids first, first+1, ... to the
// batch. Streaming ingest stages documents before their final ids are
// known (another committer may land first); ids are fixed at commit
// time, under the maintenance lock.
func (b *StagedBatch) Renumber(first int) {
	for i := range b.Docs {
		b.Docs[i].ID = first + i
	}
}

// StageDocuments parses and tokenizes a batch in either universe,
// in parallel, without touching the store. All malformed-input errors
// surface here, before anything is written.
func StageDocuments(f corpus.Format, docs []corpus.Document) (*StagedBatch, error) {
	b := &StagedBatch{
		Format: f,
		Docs:   docs,
		roots:  make([]*xmlscan.Node, len(docs)),
		terms:  make([][]xmlscan.Term, len(docs)),
	}
	errs := make([]error, len(docs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range docs {
		b.Bytes += int64(len(docs[i].Data))
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			root, terms, err := corpus.ParseAndTerms(f, docs[i].Data)
			if err != nil {
				errs[i] = fmt.Errorf("index: parse doc %d: %w", docs[i].ID, err)
				return
			}
			b.roots[i] = root
			b.terms[i] = terms
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ApplyStaged makes a staged batch visible: summary extension, sid
// assignment, Elements rows, posting fragments, statistics. Document
// ids must continue the existing dense sequence (the collection is
// append-only; ids order all positions, so new fragments sort after
// every existing fragment of their token).
//
// The summary is extended in place with any new label paths; the caller
// owns persisting it (Engine ingest does). Materialized RPL/ERPL lists
// are NOT updated here — their scores also go stale because the
// collection statistics change — so callers must drop them (see
// DropAllLists) or rebuild them afterwards.
func ApplyStaged(s *Store, b *StagedBatch, sum *summary.Summary) (*AppendStats, error) {
	docs := b.Docs
	if len(docs) == 0 {
		return &AppendStats{}, nil
	}
	st, err := s.CollectionStats()
	if err != nil {
		return nil, fmt.Errorf("index: append requires a built base index: %w", err)
	}
	// The dense id sequence continues from the LOCAL document count: on
	// a cluster shard the collection statistics describe the whole
	// corpus (see SyncStatistics), not this store's slice of it.
	next, err := s.LocalDocCount()
	if err != nil {
		return nil, err
	}
	for i, d := range docs {
		if d.ID != next+i {
			return nil, fmt.Errorf("index: document ids must continue the sequence: got %d, want %d", d.ID, next+i)
		}
	}
	oldNodes := sum.NumNodes()
	stats := &AppendStats{Docs: len(docs)}
	var sumLen int64
	postings := make(map[string][]Pos)
	dfDelta := make(map[string]uint32)
	cfDelta := make(map[string]uint64)
	stop, err := s.Stopwords()
	if err != nil {
		return nil, err
	}

	for i, d := range docs {
		root := b.roots[i]
		sum.ExtendWith(root)
		if !sum.SafeForRetrieval() {
			return nil, fmt.Errorf("index: doc %d makes the summary unsafe for retrieval", d.ID)
		}
		type row struct {
			key, val []byte
		}
		var rows []row
		err = sum.AssignDoc(root, func(n *xmlscan.Node, sid int) {
			rows = append(rows, row{
				key: elementsKey(uint32(sid), uint32(d.ID), uint32(n.End)),
				val: elementsValue(uint32(n.Length())),
			})
			sumLen += int64(n.Length())
		})
		if err != nil {
			return nil, fmt.Errorf("index: doc %d: %w", d.ID, err)
		}
		for _, r := range rows {
			if err := s.Elements.Put(r.key, r.val); err != nil {
				return nil, err
			}
			stats.Elements++
		}
		seenInDoc := make(map[string]bool)
		for _, t := range b.terms[i] {
			if stop[t.Text] {
				continue
			}
			postings[t.Text] = append(postings[t.Text], Pos{Doc: uint32(d.ID), Off: uint32(t.Offset)})
			cfDelta[t.Text]++
			if !seenInDoc[t.Text] {
				seenInDoc[t.Text] = true
				dfDelta[t.Text]++
			}
		}
	}

	// Append posting fragments; all new positions sort after existing ones
	// for their token because document ids are larger.
	for t, ps := range postings {
		stats.Postings += int64(len(ps))
		for lo := 0; lo < len(ps); lo += maxPostingsPerFragment {
			hi := lo + maxPostingsPerFragment
			if hi > len(ps) {
				hi = len(ps)
			}
			frag := ps[lo:hi]
			if err := s.Postings.Put(postingKey(t, frag[0]), postingValue(frag)); err != nil {
				return nil, err
			}
		}
	}

	// Merge term statistics (and drop the planner's memo of them).
	s.stats.invalidate()
	for t := range cfDelta {
		df, err := s.TermDF(t)
		if err != nil {
			return nil, err
		}
		cf, err := s.TermCF(t)
		if err != nil {
			return nil, err
		}
		v := termStatsValue(uint32(df)+dfDelta[t], uint64(cf)+cfDelta[t])
		if err := s.TermStats.Put([]byte(t), v); err != nil {
			return nil, err
		}
	}

	// Update collection statistics (average element length folds in the
	// new elements' total length).
	oldSum := st.AvgElementLen * float64(st.NumElements)
	st.NumDocs += len(docs)
	st.NumElements += stats.Elements
	if st.NumElements > 0 {
		st.AvgElementLen = (oldSum + float64(sumLen)) / float64(st.NumElements)
	}
	if err := s.PutCollectionStats(st); err != nil {
		return nil, err
	}
	// Keep the decoupled local count advancing when a stats sync froze
	// it (no-op for single-engine stores, where NumDocs is the count).
	tracked, err := s.localDocsTracked()
	if err != nil {
		return nil, err
	}
	if tracked {
		if err := s.putLocalDocCount(next + len(docs)); err != nil {
			return nil, err
		}
		for t := range cfDelta {
			if err := s.bumpLocalTermStat(t, int(dfDelta[t]), int64(cfDelta[t])); err != nil {
				return nil, err
			}
		}
	}
	stats.NewSIDs = sum.NumNodes() - oldNodes
	return stats, nil
}

// AppendDocuments stages and applies in one call, in the XML universe —
// the historical API. Engines with a JSON corpus go through
// StageDocuments/ApplyStaged with their own format.
func AppendDocuments(s *Store, docs []corpus.Document, sum *summary.Summary) (*AppendStats, error) {
	b, err := StageDocuments(corpus.FormatXML, docs)
	if err != nil {
		return nil, err
	}
	return ApplyStaged(s, b, sum)
}

// DropAllLists removes every materialized RPL/ERPL list and its catalog
// entry, returning the number of list entries deleted. Used after
// ApplyStaged, when all stored scores are stale.
func DropAllLists(s *Store) (int, error) {
	entries, err := s.CatalogEntries()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		n, err := s.DropList(e.Kind, e.Term, e.SID)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
