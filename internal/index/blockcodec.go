package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Block-encoded (v2) RPL/ERPL rows. The seed stored one B+tree row per
// list entry — a ~20-byte composite key plus a 12-byte value — so key
// overhead dominated both the on-disk footprint (the budget Section 4's
// self-management optimizes against) and query I/O. v2 packs a run of
// entries into a single row, delta-varint encoded, with a small header
// carrying the entry count and a score/position bound that lets readers
// reason about a whole block without decoding it.
//
// Version discrimination does not need a new key format: a v1 value is
// exactly rplV1ValueLen bytes, while a v2 block value begins with
// listFormatBlock and is never that length (its minimum sizes are 15
// bytes for RPL and 16 for ERPL blocks). Mixed stores therefore keep
// working — iterators decide per row.
//
// Layouts (all varints are unsigned LEB128, multi-byte integers
// big-endian):
//
//	RPL block value:
//	  0x02 | count uvarint | maxScoreBits 8B
//	  per entry: irDelta uvarint | sid uvarint | doc uvarint |
//	             end uvarint | length uvarint
//	Entries are in key order — (ir, sid, doc, end) ascending, i.e. score
//	descending — and irDelta is relative to invertScore(maxScore), so the
//	first delta is 0 and deltas are exact integer arithmetic (scores
//	round-trip bit-for-bit). RPL blocks may mix sids, exactly as v1 rows
//	interleave in key space.
//
//	ERPL block value:
//	  0x02 | count uvarint | sid uvarint | maxDoc uvarint | maxEnd uvarint
//	  first entry:  doc uvarint | end uvarint | scoreBits 8B | length uvarint
//	  later entries: docDelta uvarint | (endDelta if docDelta==0, else
//	                 absolute end) uvarint | scoreBits 8B | length uvarint
//	ERPL blocks are sealed at sid boundaries, so a block holds a single
//	sid: erplSIDPrefix seeks and key-based sid extraction stay valid, and
//	(maxDoc, maxEnd) with the key's first entry give the block's position
//	range. Scores are stored raw: position order makes score deltas noise.
//
// The block key is the ordinary v1 key of the block's first entry, so key
// order still clusters blocks exactly where their entries would sit.
const listFormatBlock = 0x02

// rplV1ValueLen is the length of a v1 RPL/ERPL value; any other length
// must be a block.
const rplV1ValueLen = 12

// BlockTargetEntries is how many entries the encoder packs per block
// before sealing. 128 keeps worst-case encoded blocks well under the
// storage value limit while amortizing the key to a fraction of a byte
// per entry.
const BlockTargetEntries = 128

// blockSoftMaxBytes seals a block early if its encoded value would grow
// past this, keeping pathological-delta blocks under MaxValueSize.
const blockSoftMaxBytes = 2048

// ListRow is one encoded storage row of a materialized list, with the
// per-entry byte attribution the catalog needs: EntryBytes[i] is entry
// i's share of len(Key)+len(Value) (header and key bytes are attributed
// to the first entry), so per-(term, sid) sizes sum exactly to the
// encoded footprint.
type ListRow struct {
	Key        []byte
	Value      []byte
	Entries    []RPLEntry
	EntryBytes []int
}

// rplEntryLess orders entries as the RPLs key does: (ir, sid, doc, end)
// ascending, i.e. score descending.
func rplEntryLess(a, b RPLEntry) bool {
	ia, ib := invertScore(a.Score), invertScore(b.Score)
	if ia != ib {
		return ia < ib
	}
	if a.SID != b.SID {
		return a.SID < b.SID
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.End < b.End
}

// erplEntryLess orders entries as the ERPLs key does: (sid, doc, end).
func erplEntryLess(a, b RPLEntry) bool {
	if a.SID != b.SID {
		return a.SID < b.SID
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.End < b.End
}

// SortRPLEntriesScoreOrder sorts entries into RPL key order (score
// descending with (sid, doc, end) tie-break).
func SortRPLEntriesScoreOrder(entries []RPLEntry) {
	sort.Slice(entries, func(i, j int) bool { return rplEntryLess(entries[i], entries[j]) })
}

// SortRPLEntriesPositionOrder sorts entries into ERPL key order
// ((sid, doc, end) ascending).
func SortRPLEntriesPositionOrder(entries []RPLEntry) {
	sort.Slice(entries, func(i, j int) bool { return erplEntryLess(entries[i], entries[j]) })
}

// EncodeRPLBlocks encodes a term's entries into v2 block rows. It sorts
// entries into score order in place; the returned rows carry ascending,
// non-overlapping keys suitable for the bulk loader.
func EncodeRPLBlocks(term string, entries []RPLEntry) []ListRow {
	SortRPLEntriesScoreOrder(entries)
	var rows []ListRow
	for len(entries) > 0 {
		maxIR := invertScore(entries[0].Score)
		payload := make([]byte, 0, 8*BlockTargetEntries)
		sizes := make([]int, 0, BlockTargetEntries)
		n := 0
		for n < len(entries) && n < BlockTargetEntries && len(payload) < blockSoftMaxBytes {
			e := entries[n]
			before := len(payload)
			payload = binary.AppendUvarint(payload, invertScore(e.Score)-maxIR)
			payload = binary.AppendUvarint(payload, uint64(e.SID))
			payload = binary.AppendUvarint(payload, uint64(e.Doc))
			payload = binary.AppendUvarint(payload, uint64(e.End))
			payload = binary.AppendUvarint(payload, uint64(e.Length))
			sizes = append(sizes, len(payload)-before)
			n++
		}
		key := rplKey(term, entries[0])
		val := make([]byte, 0, 10+len(payload))
		val = append(val, listFormatBlock)
		val = binary.AppendUvarint(val, uint64(n))
		val = binary.BigEndian.AppendUint64(val, math.Float64bits(entries[0].Score))
		header := len(key) + len(val)
		val = append(val, payload...)
		sizes[0] += header
		rows = append(rows, ListRow{
			Key:        key,
			Value:      val,
			Entries:    append([]RPLEntry(nil), entries[:n]...),
			EntryBytes: sizes,
		})
		entries = entries[n:]
	}
	return rows
}

// EncodeERPLBlocks encodes a term's entries into v2 ERPL block rows. It
// sorts entries into position order in place and seals blocks at sid
// boundaries, so every block holds a single sid.
func EncodeERPLBlocks(term string, entries []RPLEntry) []ListRow {
	SortRPLEntriesPositionOrder(entries)
	var rows []ListRow
	for len(entries) > 0 {
		sid := entries[0].SID
		payload := make([]byte, 0, 16*BlockTargetEntries)
		sizes := make([]int, 0, BlockTargetEntries)
		n := 0
		var prev RPLEntry
		for n < len(entries) && n < BlockTargetEntries && len(payload) < blockSoftMaxBytes {
			e := entries[n]
			if e.SID != sid {
				break
			}
			before := len(payload)
			if n == 0 {
				payload = binary.AppendUvarint(payload, uint64(e.Doc))
				payload = binary.AppendUvarint(payload, uint64(e.End))
			} else if e.Doc == prev.Doc {
				payload = binary.AppendUvarint(payload, 0)
				payload = binary.AppendUvarint(payload, uint64(e.End-prev.End))
			} else {
				payload = binary.AppendUvarint(payload, uint64(e.Doc-prev.Doc))
				payload = binary.AppendUvarint(payload, uint64(e.End))
			}
			payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(e.Score))
			payload = binary.AppendUvarint(payload, uint64(e.Length))
			sizes = append(sizes, len(payload)-before)
			prev = e
			n++
		}
		last := entries[n-1]
		key := erplKey(term, entries[0])
		val := make([]byte, 0, 12+len(payload))
		val = append(val, listFormatBlock)
		val = binary.AppendUvarint(val, uint64(n))
		val = binary.AppendUvarint(val, uint64(sid))
		val = binary.AppendUvarint(val, uint64(last.Doc))
		val = binary.AppendUvarint(val, uint64(last.End))
		header := len(key) + len(val)
		val = append(val, payload...)
		sizes[0] += header
		rows = append(rows, ListRow{
			Key:        key,
			Value:      val,
			Entries:    append([]RPLEntry(nil), entries[:n]...),
			EntryBytes: sizes,
		})
		entries = entries[n:]
	}
	return rows
}

// beUint32 / beUint64 are shorthand for the big-endian field reads the
// key-tail comparators perform.
func beUint32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }
func beUint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// uvReader is a bounds-checked varint reader; decoders built on it fail
// with an error instead of panicking on truncated or corrupt input.
type uvReader struct {
	b   []byte
	bad bool
}

func (r *uvReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *uvReader) uint64() uint64 {
	if len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v
}

// blockCount validates a decoded count against the bytes that remain,
// assuming each entry takes at least minEntryBytes, so corrupt headers
// cannot trigger huge allocations.
func (r *uvReader) blockCount(minEntryBytes int) (int, error) {
	c := r.uvarint()
	if r.bad {
		return 0, fmt.Errorf("index: truncated block header")
	}
	if c == 0 || c > uint64(len(r.b)) {
		return 0, fmt.Errorf("index: implausible block count %d (%d bytes left)", c, len(r.b))
	}
	if int(c)*minEntryBytes > len(r.b)+minEntryBytes+16 {
		return 0, fmt.Errorf("index: block count %d exceeds payload", c)
	}
	return int(c), nil
}

// decodeRPLBlock decodes a v2 RPL block value (including the leading
// format byte) into its entries.
func decodeRPLBlock(v []byte) ([]RPLEntry, error) {
	if len(v) < 1 || v[0] != listFormatBlock {
		return nil, fmt.Errorf("index: bad RPL block format")
	}
	r := &uvReader{b: v[1:]}
	count, err := r.blockCount(5)
	if err != nil {
		return nil, err
	}
	maxIR := invertScore(math.Float64frombits(r.uint64()))
	out := make([]RPLEntry, 0, count)
	for i := 0; i < count; i++ {
		irDelta := r.uvarint()
		sid := r.uvarint()
		doc := r.uvarint()
		end := r.uvarint()
		length := r.uvarint()
		if r.bad {
			return nil, fmt.Errorf("index: truncated RPL block at entry %d", i)
		}
		out = append(out, RPLEntry{
			Score:  uninvertScore(maxIR + irDelta),
			SID:    uint32(sid),
			Doc:    uint32(doc),
			End:    uint32(end),
			Length: uint32(length),
		})
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes in RPL block", len(r.b))
	}
	return out, nil
}

// rplBlockMaxScore reads an RPL block header's max score without
// decoding the entries.
func rplBlockMaxScore(v []byte) (float64, error) {
	if len(v) < 1 || v[0] != listFormatBlock {
		return 0, fmt.Errorf("index: bad RPL block format")
	}
	r := &uvReader{b: v[1:]}
	r.uvarint() // count
	s := math.Float64frombits(r.uint64())
	if r.bad {
		return 0, fmt.Errorf("index: truncated RPL block header")
	}
	return s, nil
}

// decodeERPLBlock decodes a v2 ERPL block value (including the leading
// format byte) into its entries.
func decodeERPLBlock(v []byte) ([]RPLEntry, error) {
	if len(v) < 1 || v[0] != listFormatBlock {
		return nil, fmt.Errorf("index: bad ERPL block format")
	}
	r := &uvReader{b: v[1:]}
	count, err := r.blockCount(11)
	if err != nil {
		return nil, err
	}
	sid := r.uvarint()
	r.uvarint() // maxDoc (skip metadata, not needed to decode)
	r.uvarint() // maxEnd
	if r.bad {
		return nil, fmt.Errorf("index: truncated ERPL block header")
	}
	out := make([]RPLEntry, 0, count)
	var prev RPLEntry
	for i := 0; i < count; i++ {
		var doc, end uint64
		if i == 0 {
			doc = r.uvarint()
			end = r.uvarint()
		} else {
			docDelta := r.uvarint()
			val := r.uvarint()
			if docDelta == 0 {
				doc = uint64(prev.Doc)
				end = uint64(prev.End) + val
			} else {
				doc = uint64(prev.Doc) + docDelta
				end = val
			}
		}
		scoreBits := r.uint64()
		length := r.uvarint()
		if r.bad {
			return nil, fmt.Errorf("index: truncated ERPL block at entry %d", i)
		}
		e := RPLEntry{
			Score:  math.Float64frombits(scoreBits),
			SID:    uint32(sid),
			Doc:    uint32(doc),
			End:    uint32(end),
			Length: uint32(length),
		}
		out = append(out, e)
		prev = e
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes in ERPL block", len(r.b))
	}
	return out, nil
}

// erplBlockBounds reads an ERPL block header's entry count and max
// (doc, end) without decoding the entries — the skip metadata Merge's
// bulk drain and lazy list totals are built on.
func erplBlockBounds(v []byte) (count int, maxDoc, maxEnd uint32, err error) {
	if len(v) < 1 || v[0] != listFormatBlock {
		return 0, 0, 0, fmt.Errorf("index: bad ERPL block format")
	}
	r := &uvReader{b: v[1:]}
	c := r.uvarint()
	r.uvarint() // sid
	d := r.uvarint()
	e := r.uvarint()
	if r.bad {
		return 0, 0, 0, fmt.Errorf("index: truncated ERPL block header")
	}
	// The encoder never seals an empty block; a count of 0 is corruption,
	// and rejecting it here keeps header-only pruning (SkipTo, DropList)
	// consistent with what a full decode of the row would report.
	if c == 0 {
		return 0, 0, 0, fmt.Errorf("index: implausible block count 0")
	}
	return int(c), uint32(d), uint32(e), nil
}

// decodeRPLRow decodes a row of the RPLs tree, v1 or v2 — the per-row
// version decision every reader makes.
func decodeRPLRow(k, v []byte) ([]RPLEntry, error) {
	if len(v) == rplV1ValueLen {
		_, e, err := decodeRPL(k, v)
		if err != nil {
			return nil, err
		}
		return []RPLEntry{e}, nil
	}
	return decodeRPLBlock(v)
}

// decodeERPLRow decodes a row of the ERPLs tree, v1 or v2.
func decodeERPLRow(k, v []byte) ([]RPLEntry, error) {
	if len(v) == rplV1ValueLen {
		_, e, err := decodeERPL(k, v)
		if err != nil {
			return nil, err
		}
		return []RPLEntry{e}, nil
	}
	return decodeERPLBlock(v)
}

// erplRowStats returns the entry count and max (doc, end) of an ERPL row
// without decoding block entries. The key supplies the identity for v1
// rows (single entry: bounds are the entry itself).
func erplRowStats(k, v []byte) (count int, maxDoc, maxEnd uint32, err error) {
	if len(v) == rplV1ValueLen {
		_, e, err := decodeERPL(k, v)
		if err != nil {
			return 0, 0, 0, err
		}
		return 1, e.Doc, e.End, nil
	}
	return erplBlockBounds(v)
}
