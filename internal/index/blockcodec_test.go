package index

import (
	"fmt"
	"math/rand"
	"testing"
)

// randEntries builds a deterministic entry set spanning several sids and
// documents, with duplicate scores to exercise tie-breaks.
func randEntries(n int, seed int64) []RPLEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RPLEntry, 0, n)
	seen := make(map[[2]uint32]bool)
	for len(out) < n {
		doc := uint32(rng.Intn(50))
		end := uint32(rng.Intn(5000) + 1)
		id := [2]uint32{doc, end}
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, RPLEntry{
			Score:  float64(rng.Intn(40)) / 4, // duplicates on purpose
			SID:    uint32(rng.Intn(4) + 1),
			Doc:    doc,
			End:    end,
			Length: uint32(rng.Intn(300) + 1),
		})
	}
	return out
}

func entriesEqual(a, b []RPLEntry) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("entry %d: %+v != %+v", i, a[i], b[i])
		}
	}
	return nil
}

func TestRPLBlockRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 127, 128, 129, 300, 1000} {
		entries := randEntries(n, int64(n))
		want := append([]RPLEntry(nil), entries...)
		SortRPLEntriesScoreOrder(want)
		rows := EncodeRPLBlocks("term", entries)
		var got []RPLEntry
		for _, r := range rows {
			if len(r.Value) == rplV1ValueLen {
				t.Fatalf("block value of ambiguous v1 length %d", len(r.Value))
			}
			dec, err := decodeRPLRow(r.Key, r.Value)
			if err != nil {
				t.Fatalf("n=%d: decode: %v", n, err)
			}
			if err := entriesEqual(dec, r.Entries); err != nil {
				t.Fatalf("n=%d: row entries mismatch: %v", n, err)
			}
			got = append(got, dec...)
		}
		if err := entriesEqual(got, want); err != nil {
			t.Fatalf("n=%d: round trip: %v", n, err)
		}
	}
}

func TestERPLBlockRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 128, 129, 500} {
		entries := randEntries(n, int64(1000+n))
		want := append([]RPLEntry(nil), entries...)
		SortRPLEntriesPositionOrder(want)
		rows := EncodeERPLBlocks("term", entries)
		var got []RPLEntry
		for _, r := range rows {
			sid := r.Entries[0].SID
			for _, e := range r.Entries {
				if e.SID != sid {
					t.Fatalf("n=%d: ERPL block mixes sids %d and %d", n, sid, e.SID)
				}
			}
			dec, err := decodeERPLRow(r.Key, r.Value)
			if err != nil {
				t.Fatalf("n=%d: decode: %v", n, err)
			}
			if err := entriesEqual(dec, r.Entries); err != nil {
				t.Fatalf("n=%d: row entries mismatch: %v", n, err)
			}
			got = append(got, dec...)
		}
		if err := entriesEqual(got, want); err != nil {
			t.Fatalf("n=%d: round trip: %v", n, err)
		}
	}
}

// TestBlockByteAttribution checks that per-entry byte shares sum exactly
// to the row footprint — the invariant the catalog's (and therefore the
// advisor's) size accounting relies on.
func TestBlockByteAttribution(t *testing.T) {
	entries := randEntries(400, 7)
	for _, tc := range []struct {
		name string
		rows []ListRow
	}{
		{"rpl", EncodeRPLBlocks("sometoken", append([]RPLEntry(nil), entries...))},
		{"erpl", EncodeERPLBlocks("sometoken", append([]RPLEntry(nil), entries...))},
	} {
		total := 0
		for _, r := range tc.rows {
			if len(r.EntryBytes) != len(r.Entries) {
				t.Fatalf("%s: %d sizes for %d entries", tc.name, len(r.EntryBytes), len(r.Entries))
			}
			rowSum := 0
			for _, b := range r.EntryBytes {
				rowSum += b
			}
			if rowSum != len(r.Key)+len(r.Value) {
				t.Fatalf("%s: attribution sum %d != row footprint %d", tc.name, rowSum, len(r.Key)+len(r.Value))
			}
			total += rowSum
		}
		// Sanity: the encoding actually compresses vs 32-byte v1 rows.
		v1 := len(entries) * (len("sometoken") + 1 + 20 + 12)
		if total >= v1 {
			t.Fatalf("%s: encoded %d bytes >= v1 %d", tc.name, total, v1)
		}
	}
}

func TestERPLBlockBounds(t *testing.T) {
	entries := randEntries(300, 11)
	rows := EncodeERPLBlocks("t", entries)
	for i, r := range rows {
		count, maxDoc, maxEnd, err := erplRowStats(r.Key, r.Value)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if count != len(r.Entries) {
			t.Fatalf("row %d: header count %d, want %d", i, count, len(r.Entries))
		}
		last := r.Entries[len(r.Entries)-1]
		if maxDoc != last.Doc || maxEnd != last.End {
			t.Fatalf("row %d: bounds (%d,%d), want (%d,%d)", i, maxDoc, maxEnd, last.Doc, last.End)
		}
	}
}

// writeBlocks writes entries as v2 blocks straight into the store.
func writeBlocks(t *testing.T, st *Store, kind ListKind, term string, entries []RPLEntry) {
	t.Helper()
	var rows []ListRow
	if kind == KindRPL {
		rows = EncodeRPLBlocks(term, entries)
	} else {
		rows = EncodeERPLBlocks(term, entries)
	}
	if err := st.WriteListRows(kind, rows); err != nil {
		t.Fatal(err)
	}
}

func collectRPL(t *testing.T, st *Store, term string) []RPLEntry {
	t.Helper()
	it := NewRPLIterator(st, term)
	var got []RPLEntry
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return got
		}
		got = append(got, e)
	}
}

func TestRPLIteratorOverBlocks(t *testing.T) {
	st := openEmptyStore(t)
	entries := randEntries(500, 21)
	writeBlocks(t, st, KindRPL, "xml", append([]RPLEntry(nil), entries...))
	want := append([]RPLEntry(nil), entries...)
	SortRPLEntriesScoreOrder(want)
	it := NewRPLIterator(st, "xml")
	var got []RPLEntry
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, e)
	}
	if err := entriesEqual(got, want); err != nil {
		t.Fatal(err)
	}
	if it.Reads != len(entries) {
		t.Fatalf("Reads = %d, want %d", it.Reads, len(entries))
	}
	wantRows := (len(entries) + BlockTargetEntries - 1) / BlockTargetEntries
	if it.RowsRead != wantRows {
		t.Fatalf("RowsRead = %d, want %d", it.RowsRead, wantRows)
	}
}

// TestRPLIteratorMixedRows interleaves v1 rows with overlapping v2 blocks
// (two materialization generations) and checks the merged emission order.
func TestRPLIteratorMixedRows(t *testing.T) {
	st := openEmptyStore(t)
	entries := randEntries(260, 33)
	// First half as blocks, second half as v1 rows: score ranges overlap,
	// so rows of both formats interleave in key space.
	writeBlocks(t, st, KindRPL, "xml", append([]RPLEntry(nil), entries[:130]...))
	for _, e := range entries[130:] {
		if err := st.PutRPL("xml", e); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]RPLEntry(nil), entries...)
	SortRPLEntriesScoreOrder(want)
	if err := entriesEqual(collectRPL(t, st, "xml"), want); err != nil {
		t.Fatal(err)
	}
}

// TestRPLIteratorOverlappingBlocks writes two block generations whose key
// ranges interleave — the shape a partial rebuild could produce — and
// checks the pending-merge still emits globally sorted entries.
func TestRPLIteratorOverlappingBlocks(t *testing.T) {
	st := openEmptyStore(t)
	entries := randEntries(300, 55)
	var genA, genB []RPLEntry
	for i, e := range entries {
		if i%2 == 0 {
			genA = append(genA, e)
		} else {
			genB = append(genB, e)
		}
	}
	writeBlocks(t, st, KindRPL, "xml", genA)
	writeBlocks(t, st, KindRPL, "xml", genB)
	want := append([]RPLEntry(nil), entries...)
	SortRPLEntriesScoreOrder(want)
	if err := entriesEqual(collectRPL(t, st, "xml"), want); err != nil {
		t.Fatal(err)
	}
}

func TestERPLIteratorOverBlocksAndMixed(t *testing.T) {
	st := openEmptyStore(t)
	entries := randEntries(400, 77)
	writeBlocks(t, st, KindERPL, "q", append([]RPLEntry(nil), entries[:200]...))
	for _, e := range entries[200:] {
		if err := st.PutERPL("q", e); err != nil {
			t.Fatal(err)
		}
	}
	for sid := uint32(1); sid <= 4; sid++ {
		var want []RPLEntry
		for _, e := range entries {
			if e.SID == sid {
				want = append(want, e)
			}
		}
		SortRPLEntriesPositionOrder(want)
		it := NewERPLIterator(st, "q", sid)
		var got []RPLEntry
		for {
			e, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, e)
		}
		if err := entriesEqual(got, want); err != nil {
			t.Fatalf("sid %d: %v", sid, err)
		}
	}
}

func TestBlockMaxScoreTracksPeek(t *testing.T) {
	st := openEmptyStore(t)
	entries := randEntries(200, 91)
	writeBlocks(t, st, KindRPL, "xml", append([]RPLEntry(nil), entries...))
	it := NewRPLIterator(st, "xml")
	prev := -1.0
	for {
		bound, ok, err := it.BlockMaxScore()
		if err != nil {
			t.Fatal(err)
		}
		e, ok2, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ok != ok2 {
			t.Fatalf("BlockMaxScore ok=%v but Next ok=%v", ok, ok2)
		}
		if !ok {
			break
		}
		if bound != e.Score {
			t.Fatalf("bound %v != next score %v", bound, e.Score)
		}
		if prev >= 0 && e.Score > prev {
			t.Fatalf("score ascended: %v after %v", e.Score, prev)
		}
		prev = e.Score
	}
}

func TestERPLSkipToPrunesBlocks(t *testing.T) {
	st := openEmptyStore(t)
	// Single sid, ascending docs: many whole blocks precede the target.
	var entries []RPLEntry
	for i := 0; i < 1000; i++ {
		entries = append(entries, RPLEntry{
			Score: float64(i%7) + 1, SID: 1, Doc: uint32(i / 10), End: uint32(100 + i%10), Length: 5,
		})
	}
	writeBlocks(t, st, KindERPL, "q", append([]RPLEntry(nil), entries...))
	it := NewERPLIterator(st, "q", 1)
	skipped, err := it.SkipTo(80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if skipped == 0 {
		t.Fatal("SkipTo decoded every block it passed")
	}
	e, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("Next after SkipTo = %v, %v", ok, err)
	}
	if e.Doc != 80 || e.End != 100 {
		t.Fatalf("landed on (%d,%d), want (80,100)", e.Doc, e.End)
	}
	// `skipped` counts only entries in rows pruned via the header bounds
	// (never decoded); the straddling row's leading entries are decoded and
	// dropped without being counted. 800 entries precede doc 80, and 6 full
	// 128-entry blocks (768 entries) fit wholly below it.
	if skipped != 768 {
		t.Fatalf("skipped = %d, want 768", skipped)
	}
	rest := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rest++
	}
	if rest+1 != 200 { // docs 80..99, 10 entries each
		t.Fatalf("read %d entries at/after target, want 200", rest+1)
	}
}

func TestTermERPLSkipToAndDrainBelow(t *testing.T) {
	st := openEmptyStore(t)
	var entries []RPLEntry
	for i := 0; i < 600; i++ {
		entries = append(entries, RPLEntry{
			Score: 1, SID: uint32(i%3 + 1), Doc: uint32(i / 3), End: uint32(50 + i%3), Length: 5,
		})
	}
	writeBlocks(t, st, KindERPL, "q", append([]RPLEntry(nil), entries...))
	m, err := NewTermERPL(st, "q", []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SkipTo(150, 0); err != nil {
		t.Fatal(err)
	}
	e, ok := m.Peek()
	if !ok || e.Doc != 150 {
		t.Fatalf("Peek after SkipTo = %+v, %v", e, ok)
	}
	out, err := m.DrainBelow(170, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 60 { // docs 150..169, 3 sids each
		t.Fatalf("drained %d entries, want 60", len(out))
	}
	for i := 1; i < len(out); i++ {
		if CompareDocEnd(out[i-1].Doc, out[i-1].End, out[i].Doc, out[i].End) >= 0 {
			t.Fatalf("drain out of order at %d: %+v then %+v", i, out[i-1], out[i])
		}
	}
}

func TestDropListOverBlocks(t *testing.T) {
	st := openEmptyStore(t)
	entries := randEntries(400, 13)
	perSID := make(map[uint32]int)
	for _, e := range entries {
		perSID[e.SID]++
	}
	for _, kind := range []ListKind{KindRPL, KindERPL} {
		writeBlocks(t, st, kind, "xml", append([]RPLEntry(nil), entries...))
		for sid := range perSID {
			if err := st.MarkBuilt(kind, "xml", sid, perSID[sid], 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, kind := range []ListKind{KindRPL, KindERPL} {
		n, err := st.DropList(kind, "xml", 2)
		if err != nil {
			t.Fatal(err)
		}
		if n != perSID[2] {
			t.Fatalf("%v: dropped %d, want %d", kind, n, perSID[2])
		}
		if built, _ := st.IsBuilt(kind, "xml", 2); built {
			t.Fatalf("%v: still marked built", kind)
		}
	}
	// Survivors intact, in order, with sid 2 gone.
	var want []RPLEntry
	for _, e := range entries {
		if e.SID != 2 {
			want = append(want, e)
		}
	}
	SortRPLEntriesScoreOrder(want)
	if err := entriesEqual(collectRPL(t, st, "xml"), want); err != nil {
		t.Fatalf("RPL survivors: %v", err)
	}
	for sid := uint32(1); sid <= 4; sid++ {
		it := NewERPLIterator(st, "xml", sid)
		count := 0
		for {
			_, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			count++
		}
		wantN := perSID[sid]
		if sid == 2 {
			wantN = 0
		}
		if count != wantN {
			t.Fatalf("ERPL sid %d: %d entries, want %d", sid, count, wantN)
		}
	}
}
