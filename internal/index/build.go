package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"trex/internal/corpus"
	"trex/internal/score"
	"trex/internal/summary"
	"trex/internal/xmlscan"
)

// BuildStats summarizes a BuildBase run.
type BuildStats struct {
	Docs          int
	Elements      int
	Terms         int   // distinct tokens
	Postings      int64 // total term occurrences
	ElementsBytes int64 // approximate Elements table size
	PostingsBytes int64 // approximate PostingLists table size
}

// BuildBase populates the Elements and PostingLists tables (plus term and
// collection statistics) for a collection under the given summary. These
// are the always-present indexes every retrieval strategy needs; the
// redundant RPL/ERPL lists are materialized later, per workload.
//
// The Elements and PostingLists tables must be empty.
func BuildBase(s *Store, col *corpus.Collection, sum *summary.Summary) (*BuildStats, error) {
	type elemRow struct {
		sid, doc, end, length uint32
	}
	var elems []elemRow
	postings := make(map[string][]Pos)
	df := make(map[string]uint32)
	cf := make(map[string]uint64)
	var sumLen int64
	stop, err := s.Stopwords()
	if err != nil {
		return nil, err
	}

	// Parse and tokenize documents in parallel: each worker produces a
	// per-document result, and the merge below runs in document order so
	// the build is deterministic and positions stay sorted per token.
	type docResult struct {
		elems  []elemRow
		terms  []xmlscan.Term
		sumLen int64
		err    error
	}
	results := make([]docResult, len(col.Docs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range col.Docs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			d := &col.Docs[i]
			r := &results[i]
			root, terms, err := corpus.ParseAndTerms(col.Format, d.Data)
			if err != nil {
				r.err = fmt.Errorf("index: parse doc %d: %w", d.ID, err)
				return
			}
			r.terms = terms
			err = sum.AssignDoc(root, func(n *xmlscan.Node, sid int) {
				r.elems = append(r.elems, elemRow{
					sid:    uint32(sid),
					doc:    uint32(d.ID),
					end:    uint32(n.End),
					length: uint32(n.Length()),
				})
				r.sumLen += int64(n.Length())
			})
			if err != nil {
				r.err = fmt.Errorf("index: doc %d: %w", d.ID, err)
			}
		}(i)
	}
	wg.Wait()

	for i := range col.Docs {
		r := &results[i]
		if r.err != nil {
			return nil, r.err
		}
		elems = append(elems, r.elems...)
		sumLen += r.sumLen
		seenInDoc := make(map[string]bool)
		docID := uint32(col.Docs[i].ID)
		for _, t := range r.terms {
			if stop[t.Text] {
				continue
			}
			postings[t.Text] = append(postings[t.Text], Pos{Doc: docID, Off: uint32(t.Offset)})
			cf[t.Text]++
			if !seenInDoc[t.Text] {
				seenInDoc[t.Text] = true
				df[t.Text]++
			}
		}
	}

	// Elements: bulk-load in (sid, doc, end) order.
	sort.Slice(elems, func(i, j int) bool {
		a, b := elems[i], elems[j]
		if a.sid != b.sid {
			return a.sid < b.sid
		}
		if a.doc != b.doc {
			return a.doc < b.doc
		}
		return a.end < b.end
	})
	ebl, err := s.Elements.NewBulkLoader(0)
	if err != nil {
		return nil, fmt.Errorf("index: Elements not empty: %w", err)
	}
	for _, e := range elems {
		if err := ebl.Add(elementsKey(e.sid, e.doc, e.end), elementsValue(e.length)); err != nil {
			return nil, err
		}
	}
	if err := ebl.Finish(); err != nil {
		return nil, err
	}

	// PostingLists: tokens in order, positions fragmented. The paper
	// appends the m-pos sentinel to the stored list; here the iterator
	// synthesizes m-pos at list end instead, so fragments can later be
	// appended for new documents (their keys sort after all existing
	// fragments of the token).
	tokens := make([]string, 0, len(postings))
	for t := range postings {
		tokens = append(tokens, t)
	}
	sort.Strings(tokens)
	pbl, err := s.Postings.NewBulkLoader(0)
	if err != nil {
		return nil, fmt.Errorf("index: PostingLists not empty: %w", err)
	}
	var totalPostings int64
	for _, t := range tokens {
		ps := postings[t]
		totalPostings += int64(len(ps))
		for lo := 0; lo < len(ps); lo += maxPostingsPerFragment {
			hi := lo + maxPostingsPerFragment
			if hi > len(ps) {
				hi = len(ps)
			}
			frag := ps[lo:hi]
			if err := pbl.Add(postingKey(t, frag[0]), postingValue(frag)); err != nil {
				return nil, err
			}
		}
	}
	if err := pbl.Finish(); err != nil {
		return nil, err
	}

	// TermStats.
	tbl, err := s.TermStats.NewBulkLoader(0)
	if err != nil {
		return nil, fmt.Errorf("index: TermStats not empty: %w", err)
	}
	for _, t := range tokens {
		if err := tbl.Add([]byte(t), termStatsValue(df[t], cf[t])); err != nil {
			return nil, err
		}
	}
	if err := tbl.Finish(); err != nil {
		return nil, err
	}

	avg := float64(0)
	if len(elems) > 0 {
		avg = float64(sumLen) / float64(len(elems))
	}
	st := score.CollectionStats{
		NumDocs:       len(col.Docs),
		NumElements:   len(elems),
		AvgElementLen: avg,
	}
	if err := s.PutCollectionStats(st); err != nil {
		return nil, err
	}

	bs := &BuildStats{
		Docs:     len(col.Docs),
		Elements: len(elems),
		Terms:    len(tokens),
		Postings: totalPostings,
	}
	if bs.ElementsBytes, err = s.Elements.ApproxBytes(); err != nil {
		return nil, err
	}
	if bs.PostingsBytes, err = s.Postings.ApproxBytes(); err != nil {
		return nil, err
	}
	return bs, nil
}
