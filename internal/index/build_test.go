package index

import (
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/storage"
	"trex/internal/summary"
)

// buildTiny sets up a store over a hand-written collection.
func buildTiny(t *testing.T, docs ...string) (*Store, *summary.Summary, *corpus.Collection) {
	t.Helper()
	col := &corpus.Collection{}
	for i, d := range docs {
		col.Docs = append(col.Docs, corpus.Document{ID: i, Data: []byte(d)})
	}
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.OpenMemory()
	t.Cleanup(func() { db.Close() })
	st, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	return st, sum, col
}

func sidOf(t *testing.T, sum *summary.Summary, path string) uint32 {
	t.Helper()
	for _, n := range sum.Nodes {
		if strings.Join(n.Path, "/") == path {
			return uint32(n.SID)
		}
	}
	t.Fatalf("no summary node for path %q", path)
	return 0
}

func TestBuildBaseCounts(t *testing.T) {
	col := corpus.GenerateIEEE(15, 2)
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.OpenMemory()
	defer db.Close()
	st, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BuildBase(st, col, sum)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Docs != 15 {
		t.Fatalf("Docs = %d", bs.Docs)
	}
	if bs.Elements != sum.TotalExtent() {
		t.Fatalf("Elements = %d, want %d", bs.Elements, sum.TotalExtent())
	}
	if bs.Terms < 100 || bs.Postings < 1000 {
		t.Fatalf("suspicious stats: %+v", bs)
	}
	if n, _ := st.Elements.Len(); n != bs.Elements {
		t.Fatalf("Elements rows = %d, want %d", n, bs.Elements)
	}
	cs, err := st.CollectionStats()
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumDocs != 15 || cs.NumElements != bs.Elements || cs.AvgElementLen <= 0 {
		t.Fatalf("CollectionStats = %+v", cs)
	}
	// BuildBase refuses to run twice.
	if _, err := BuildBase(st, col, sum); err == nil {
		t.Fatal("second BuildBase succeeded")
	}
}

func TestElementIterator(t *testing.T) {
	st, sum, _ := buildTiny(t,
		`<a><b>one two</b><b>three</b></a>`,
		`<a><b>four</b></a>`,
	)
	bsid := sidOf(t, sum, "a/b")
	it := NewElementIterator(st, bsid)
	e, err := it.FirstElement()
	if err != nil {
		t.Fatal(err)
	}
	var seen []Element
	for !e.IsDummy() {
		seen = append(seen, e)
		e, err = it.NextElementAfter(e.EndPos())
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("saw %d b-elements, want 3", len(seen))
	}
	// Order: doc 0 elements before doc 1; within doc ascending end.
	if seen[0].Doc != 0 || seen[1].Doc != 0 || seen[2].Doc != 1 {
		t.Fatalf("doc order = %d,%d,%d", seen[0].Doc, seen[1].Doc, seen[2].Doc)
	}
	if seen[0].End >= seen[1].End {
		t.Fatalf("end order broken: %d >= %d", seen[0].End, seen[1].End)
	}
	// All have the right sid.
	for _, e := range seen {
		if e.SID != bsid {
			t.Fatalf("element sid = %d, want %d", e.SID, bsid)
		}
	}
}

func TestElementIteratorEmptyExtent(t *testing.T) {
	st, _, _ := buildTiny(t, `<a><b>x</b></a>`)
	it := NewElementIterator(st, 999)
	e, err := it.FirstElement()
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDummy() {
		t.Fatalf("expected dummy, got %+v", e)
	}
	e, err = it.NextElementAfter(Pos{Doc: 0, Off: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsDummy() {
		t.Fatalf("expected dummy, got %+v", e)
	}
}

func TestElementIteratorSkipsByPosition(t *testing.T) {
	st, sum, _ := buildTiny(t,
		`<a><b>one</b><b>two</b><b>three</b></a>`,
	)
	bsid := sidOf(t, sum, "a/b")
	it := NewElementIterator(st, bsid)
	first, err := it.FirstElement()
	if err != nil {
		t.Fatal(err)
	}
	// Jump past the second element directly from the first's position.
	second, err := it.NextElementAfter(first.EndPos())
	if err != nil {
		t.Fatal(err)
	}
	third, err := it.NextElementAfter(second.EndPos())
	if err != nil {
		t.Fatal(err)
	}
	if first.End >= second.End || second.End >= third.End {
		t.Fatalf("positions not increasing: %d, %d, %d", first.End, second.End, third.End)
	}
	after, err := it.NextElementAfter(third.EndPos())
	if err != nil {
		t.Fatal(err)
	}
	if !after.IsDummy() {
		t.Fatalf("expected dummy after last, got %+v", after)
	}
	// NextElementAfter(m-pos) is dummy.
	d, err := it.NextElementAfter(MaxPos)
	if err != nil || !d.IsDummy() {
		t.Fatalf("NextElementAfter(m-pos) = %+v, %v", d, err)
	}
}

func TestPostingIterator(t *testing.T) {
	st, _, col := buildTiny(t,
		`<a><b>alpha beta alpha</b></a>`,
		`<a><b>alpha</b></a>`,
	)
	it := NewPostingIterator(st, "alpha")
	var ps []Pos
	for {
		p, err := it.NextPosition()
		if err != nil {
			t.Fatal(err)
		}
		if p.IsMax() {
			break
		}
		ps = append(ps, p)
	}
	if len(ps) != 3 {
		t.Fatalf("alpha positions = %d, want 3", len(ps))
	}
	// Positions strictly increase.
	for i := 1; i < len(ps); i++ {
		if !ps[i-1].Less(ps[i]) {
			t.Fatalf("position order broken at %d", i)
		}
	}
	// Each position points at the token text.
	for _, p := range ps {
		data := col.Docs[p.Doc].Data
		if string(data[p.Off:p.Off+5]) != "alpha" {
			t.Fatalf("position %v points at %q", p, data[p.Off:p.Off+5])
		}
	}
	// Iterating past the end keeps returning m-pos.
	for i := 0; i < 3; i++ {
		p, err := it.NextPosition()
		if err != nil || !p.IsMax() {
			t.Fatalf("post-end NextPosition = %v, %v", p, err)
		}
	}
}

func TestPostingIteratorAbsentTerm(t *testing.T) {
	st, _, _ := buildTiny(t, `<a>hello</a>`)
	it := NewPostingIterator(st, "absent")
	p, err := it.NextPosition()
	if err != nil || !p.IsMax() {
		t.Fatalf("absent term NextPosition = %v, %v", p, err)
	}
}

func TestPostingFragmentation(t *testing.T) {
	// More than maxPostingsPerFragment occurrences of one term forces
	// multiple fragments; the iterator must cross them seamlessly.
	var sb strings.Builder
	sb.WriteString("<a>")
	const n = 3 * maxPostingsPerFragment
	for i := 0; i < n; i++ {
		sb.WriteString("zz ")
	}
	sb.WriteString("</a>")
	st, _, _ := buildTiny(t, sb.String())
	// At least 3 fragments must exist in the table.
	rows, err := st.Postings.Len()
	if err != nil {
		t.Fatal(err)
	}
	if rows < 3 {
		t.Fatalf("posting rows = %d, want >= 3", rows)
	}
	it := NewPostingIterator(st, "zz")
	count := 0
	for {
		p, err := it.NextPosition()
		if err != nil {
			t.Fatal(err)
		}
		if p.IsMax() {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("iterated %d positions, want %d", count, n)
	}
}

func TestTermStats(t *testing.T) {
	st, _, _ := buildTiny(t,
		`<a>xx yy xx</a>`,
		`<a>xx zz</a>`,
	)
	df, err := st.TermDF("xx")
	if err != nil || df != 2 {
		t.Fatalf("DF(xx) = %d, %v; want 2", df, err)
	}
	cf, err := st.TermCF("xx")
	if err != nil || cf != 3 {
		t.Fatalf("CF(xx) = %d, %v; want 3", cf, err)
	}
	df, err = st.TermDF("zz")
	if err != nil || df != 1 {
		t.Fatalf("DF(zz) = %d, %v; want 1", df, err)
	}
	df, err = st.TermDF("absent")
	if err != nil || df != 0 {
		t.Fatalf("DF(absent) = %d, %v; want 0", df, err)
	}
	sc, err := st.NewScorer([]string{"xx", "zz"})
	if err != nil {
		t.Fatal(err)
	}
	if sc.IDF("zz") <= sc.IDF("xx") {
		t.Fatal("rarer term must have higher IDF")
	}
}

func TestDocTermsMatchElementsContainment(t *testing.T) {
	// Every posting position must be contained in its document's root
	// element per the strict containment test.
	st, sum, col := buildTiny(t,
		`<article><sec>findme and findme again</sec></article>`,
	)
	rootSID := sidOf(t, sum, "article")
	it := NewElementIterator(st, rootSID)
	rootElem, err := it.FirstElement()
	if err != nil {
		t.Fatal(err)
	}
	pit := NewPostingIterator(st, "findme")
	for {
		p, err := pit.NextPosition()
		if err != nil {
			t.Fatal(err)
		}
		if p.IsMax() {
			break
		}
		if !rootElem.Contains(p) {
			t.Fatalf("root does not contain %v (root span [%d,%d))",
				p, rootElem.Start(), rootElem.End)
		}
	}
	_ = col
}
