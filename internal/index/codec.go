// Package index implements the four TReX index tables over the storage
// engine, with order-preserving key codecs and the iterators the
// retrieval algorithms are built on:
//
//	Elements(SID, docid, endpos, length)         — one row per element
//	PostingLists(token, docid, offset, entry)    — fragmented inverted lists
//	RPLs(token, ir, SID, docid, endpos, entry)   — score-descending lists
//	ERPLs(token, SID, docid, endpos, ir, entry)  — position-ordered lists
//
// Underlined fields of the paper's schemas become big-endian composite
// keys, so the storage engine's key order reproduces each table's
// clustered index order. "ir" is the order-inverted relevance score, which
// makes descending-score order ascend in key space.
package index

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Pos is a term position: a (document, byte offset) pair. Positions order
// lexicographically, documents first.
type Pos struct {
	Doc uint32
	Off uint32
}

// MaxPos is the paper's m-pos: a sentinel greater than any real position,
// appended to the end of every posting list.
var MaxPos = Pos{Doc: math.MaxUint32, Off: math.MaxUint32}

// Less orders positions by (Doc, Off).
func (p Pos) Less(q Pos) bool {
	if p.Doc != q.Doc {
		return p.Doc < q.Doc
	}
	return p.Off < q.Off
}

// IsMax reports whether p is the m-pos sentinel.
func (p Pos) IsMax() bool { return p == MaxPos }

func (p Pos) String() string {
	if p.IsMax() {
		return "m-pos"
	}
	return fmt.Sprintf("(%d,%d)", p.Doc, p.Off)
}

// Element is one row of the Elements table. An element is identified by
// (Doc, End); Length recovers its start position.
type Element struct {
	SID    uint32
	Doc    uint32
	End    uint32
	Length uint32
}

// Start returns the byte offset of the element's start tag.
func (e Element) Start() uint32 { return e.End - e.Length }

// EndPos returns the element's identifying position (Doc, End).
func (e Element) EndPos() Pos { return Pos{Doc: e.Doc, Off: e.End} }

// Contains reports whether position p falls strictly inside the element
// (the paper's start(e) < pos < end(e) containment test).
func (e Element) Contains(p Pos) bool {
	return p.Doc == e.Doc && e.Start() < p.Off && p.Off < e.End
}

// ContainsElem reports whether other's span lies strictly inside e.
func (e Element) ContainsElem(other Element) bool {
	return e.Doc == other.Doc && e.Start() <= other.Start() && other.End <= e.End &&
		!(e.Start() == other.Start() && e.End == other.End)
}

// IsDummy reports whether e is the "no more elements" marker the
// ERA iterator returns at extent end (end position m-pos, length zero).
func (e Element) IsDummy() bool { return e.Doc == MaxPos.Doc && e.End == MaxPos.Off }

// DummyElement is the iterator-exhausted marker.
func DummyElement() Element {
	return Element{SID: 0, Doc: MaxPos.Doc, End: MaxPos.Off, Length: 0}
}

// --- Elements table codec: key = SID.Doc.End, value = Length ---

func elementsKey(sid, doc, end uint32) []byte {
	var k [12]byte
	binary.BigEndian.PutUint32(k[0:4], sid)
	binary.BigEndian.PutUint32(k[4:8], doc)
	binary.BigEndian.PutUint32(k[8:12], end)
	return k[:]
}

func decodeElementsKey(k []byte) (sid, doc, end uint32, err error) {
	if len(k) != 12 {
		return 0, 0, 0, fmt.Errorf("index: bad Elements key length %d", len(k))
	}
	return binary.BigEndian.Uint32(k[0:4]),
		binary.BigEndian.Uint32(k[4:8]),
		binary.BigEndian.Uint32(k[8:12]), nil
}

func elementsValue(length uint32) []byte {
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], length)
	return v[:]
}

func decodeElementsValue(v []byte) (uint32, error) {
	if len(v) != 4 {
		return 0, fmt.Errorf("index: bad Elements value length %d", len(v))
	}
	return binary.BigEndian.Uint32(v), nil
}

// --- term prefix shared by PostingLists, RPLs, ERPLs keys ---

// termPrefix encodes the token with a 0x00 terminator. Tokens are
// lowercase alphanumeric (see xmlscan.Tokenize), so the terminator cannot
// collide, and the encoding is prefix-free and order-preserving.
func termPrefix(term string) []byte {
	out := make([]byte, 0, len(term)+1)
	out = append(out, term...)
	out = append(out, 0)
	return out
}

// splitTermPrefix returns the term and the remainder of the key.
func splitTermPrefix(k []byte) (string, []byte, error) {
	for i, c := range k {
		if c == 0 {
			return string(k[:i]), k[i+1:], nil
		}
	}
	return "", nil, fmt.Errorf("index: key lacks term terminator")
}

// --- PostingLists codec: key = token.doc.off (first position of the
// fragment), value = packed positions ---

func postingKey(term string, first Pos) []byte {
	k := termPrefix(term)
	var tail [8]byte
	binary.BigEndian.PutUint32(tail[0:4], first.Doc)
	binary.BigEndian.PutUint32(tail[4:8], first.Off)
	return append(k, tail[:]...)
}

// maxPostingsPerFragment bounds positions per fragment. With delta-varint
// encoding the worst case (~10 bytes/position for pathological gaps)
// stays under the storage value limit.
const maxPostingsPerFragment = 256

// Posting value format tags. v1 (fixed 8-byte pairs) is still decoded for
// backward compatibility; new fragments are written as v2 (delta-varint).
const (
	postingFormatFixed = 0x01
	postingFormatDelta = 0x02
)

// postingValue encodes positions with the delta-varint format: positions
// are sorted, so consecutive entries in the same document store only the
// offset gap, and document changes store a doc delta plus an absolute
// offset. Typical English-text gaps fit in one or two bytes — the
// compression that keeps the PostingLists table (the dominant base-index
// cost, Section 5.1) manageable.
func postingValue(positions []Pos) []byte {
	out := make([]byte, 0, 3+2*len(positions))
	out = append(out, postingFormatDelta)
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(positions)))
	out = append(out, lenBuf[:]...)
	var prev Pos
	first := true
	for _, p := range positions {
		if first || p.Doc != prev.Doc {
			docDelta := p.Doc
			if !first {
				docDelta = p.Doc - prev.Doc
			}
			// docDelta > 0 marks a document switch (or the first entry,
			// where the absolute doc id is stored with the +1 shift).
			out = binary.AppendUvarint(out, uint64(docDelta)+1)
			out = binary.AppendUvarint(out, uint64(p.Off))
		} else {
			// Same document: a 0 sentinel then the offset gap.
			out = binary.AppendUvarint(out, 0)
			out = binary.AppendUvarint(out, uint64(p.Off-prev.Off))
		}
		prev = p
		first = false
	}
	return out
}

func decodePostingValue(v []byte) ([]Pos, error) {
	if len(v) < 3 {
		return nil, fmt.Errorf("index: short posting value")
	}
	switch v[0] {
	case postingFormatDelta:
		return decodePostingDelta(v[1:])
	case postingFormatFixed:
		return decodePostingFixed(v[1:])
	default:
		return nil, fmt.Errorf("index: unknown posting format 0x%02x", v[0])
	}
}

func decodePostingDelta(v []byte) ([]Pos, error) {
	if len(v) < 2 {
		return nil, fmt.Errorf("index: truncated posting delta header")
	}
	n := int(binary.BigEndian.Uint16(v[0:2]))
	v = v[2:]
	out := make([]Pos, 0, n)
	var prev Pos
	first := true
	for i := 0; i < n; i++ {
		marker, k := binary.Uvarint(v)
		if k <= 0 {
			return nil, fmt.Errorf("index: truncated posting delta at entry %d", i)
		}
		v = v[k:]
		val, k := binary.Uvarint(v)
		if k <= 0 {
			return nil, fmt.Errorf("index: truncated posting offset at entry %d", i)
		}
		v = v[k:]
		var p Pos
		if marker == 0 {
			if first {
				return nil, fmt.Errorf("index: posting delta starts with same-doc marker")
			}
			p = Pos{Doc: prev.Doc, Off: prev.Off + uint32(val)}
		} else {
			doc := uint32(marker - 1)
			if !first {
				doc += prev.Doc
			}
			p = Pos{Doc: doc, Off: uint32(val)}
		}
		out = append(out, p)
		prev = p
		first = false
	}
	if len(v) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes in posting value", len(v))
	}
	return out, nil
}

func decodePostingFixed(v []byte) ([]Pos, error) {
	if len(v) < 2 {
		return nil, fmt.Errorf("index: truncated posting header")
	}
	n := int(binary.BigEndian.Uint16(v[0:2]))
	if len(v) != 2+8*n {
		return nil, fmt.Errorf("index: posting value length %d for %d entries", len(v), n)
	}
	out := make([]Pos, n)
	for i := 0; i < n; i++ {
		off := 2 + 8*i
		out[i] = Pos{
			Doc: binary.BigEndian.Uint32(v[off : off+4]),
			Off: binary.BigEndian.Uint32(v[off+4 : off+8]),
		}
	}
	return out, nil
}

// --- score inversion for RPL keys ---

// invertScore maps a non-negative score to a big-endian-sortable value
// whose ascending order is descending score order (the "ir" field).
func invertScore(score float64) uint64 {
	if score < 0 {
		score = 0
	}
	return ^math.Float64bits(score)
}

// uninvertScore recovers the score from its inverted form.
func uninvertScore(ir uint64) float64 {
	return math.Float64frombits(^ir)
}

// --- RPLs codec: key = token.ir.sid.doc.end, value = (score, length) ---

// RPLEntry is one scored element in a relevance posting list.
type RPLEntry struct {
	Score  float64
	SID    uint32
	Doc    uint32
	End    uint32
	Length uint32
}

// Element converts the entry to its Elements-table form.
func (e RPLEntry) Element() Element {
	return Element{SID: e.SID, Doc: e.Doc, End: e.End, Length: e.Length}
}

func rplKey(term string, e RPLEntry) []byte {
	k := termPrefix(term)
	var tail [20]byte
	binary.BigEndian.PutUint64(tail[0:8], invertScore(e.Score))
	binary.BigEndian.PutUint32(tail[8:12], e.SID)
	binary.BigEndian.PutUint32(tail[12:16], e.Doc)
	binary.BigEndian.PutUint32(tail[16:20], e.End)
	return append(k, tail[:]...)
}

func rplValue(e RPLEntry) []byte {
	var v [12]byte
	binary.BigEndian.PutUint64(v[0:8], math.Float64bits(e.Score))
	binary.BigEndian.PutUint32(v[8:12], e.Length)
	return v[:]
}

func decodeRPL(k, v []byte) (string, RPLEntry, error) {
	term, rest, err := splitTermPrefix(k)
	if err != nil {
		return "", RPLEntry{}, err
	}
	if len(rest) != 20 || len(v) != 12 {
		return "", RPLEntry{}, fmt.Errorf("index: bad RPL row (%d,%d)", len(rest), len(v))
	}
	e := RPLEntry{
		SID:    binary.BigEndian.Uint32(rest[8:12]),
		Doc:    binary.BigEndian.Uint32(rest[12:16]),
		End:    binary.BigEndian.Uint32(rest[16:20]),
		Score:  math.Float64frombits(binary.BigEndian.Uint64(v[0:8])),
		Length: binary.BigEndian.Uint32(v[8:12]),
	}
	return term, e, nil
}

// --- ERPLs codec: key = token.sid.doc.end, value = (score, length) ---

func erplKey(term string, e RPLEntry) []byte {
	k := termPrefix(term)
	var tail [12]byte
	binary.BigEndian.PutUint32(tail[0:4], e.SID)
	binary.BigEndian.PutUint32(tail[4:8], e.Doc)
	binary.BigEndian.PutUint32(tail[8:12], e.End)
	return append(k, tail[:]...)
}

func erplSIDPrefix(term string, sid uint32) []byte {
	k := termPrefix(term)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sid)
	return append(k, tail[:]...)
}

func decodeERPL(k, v []byte) (string, RPLEntry, error) {
	term, rest, err := splitTermPrefix(k)
	if err != nil {
		return "", RPLEntry{}, err
	}
	if len(rest) != 12 || len(v) != 12 {
		return "", RPLEntry{}, fmt.Errorf("index: bad ERPL row (%d,%d)", len(rest), len(v))
	}
	e := RPLEntry{
		SID:    binary.BigEndian.Uint32(rest[0:4]),
		Doc:    binary.BigEndian.Uint32(rest[4:8]),
		End:    binary.BigEndian.Uint32(rest[8:12]),
		Score:  math.Float64frombits(binary.BigEndian.Uint64(v[0:8])),
		Length: binary.BigEndian.Uint32(v[8:12]),
	}
	return term, e, nil
}
