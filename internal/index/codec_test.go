package index

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPosOrdering(t *testing.T) {
	a := Pos{Doc: 1, Off: 100}
	b := Pos{Doc: 1, Off: 101}
	c := Pos{Doc: 2, Off: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("Pos ordering broken")
	}
	if a.Less(a) {
		t.Fatal("Less not irreflexive")
	}
	if !a.Less(MaxPos) || MaxPos.Less(a) {
		t.Fatal("m-pos must be maximal")
	}
	if !MaxPos.IsMax() || a.IsMax() {
		t.Fatal("IsMax broken")
	}
	if MaxPos.String() != "m-pos" || a.String() != "(1,100)" {
		t.Fatalf("String = %q, %q", MaxPos.String(), a.String())
	}
}

func TestElementContainment(t *testing.T) {
	e := Element{SID: 5, Doc: 3, End: 200, Length: 100} // spans [100, 200)
	if e.Start() != 100 {
		t.Fatalf("Start = %d", e.Start())
	}
	cases := []struct {
		p    Pos
		want bool
	}{
		{Pos{Doc: 3, Off: 150}, true},
		{Pos{Doc: 3, Off: 101}, true},
		{Pos{Doc: 3, Off: 199}, true},
		{Pos{Doc: 3, Off: 100}, false}, // strict: start itself excluded
		{Pos{Doc: 3, Off: 200}, false}, // strict: end itself excluded
		{Pos{Doc: 3, Off: 50}, false},
		{Pos{Doc: 4, Off: 150}, false}, // wrong doc
	}
	for _, tc := range cases {
		if got := e.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	inner := Element{SID: 6, Doc: 3, End: 180, Length: 50}
	if !e.ContainsElem(inner) {
		t.Error("ContainsElem(inner) = false")
	}
	if e.ContainsElem(e) {
		t.Error("element contains itself")
	}
	if inner.ContainsElem(e) {
		t.Error("inner contains outer")
	}
}

func TestDummyElement(t *testing.T) {
	d := DummyElement()
	if !d.IsDummy() {
		t.Fatal("dummy not dummy")
	}
	if d.Length != 0 {
		t.Fatal("dummy length != 0")
	}
	real := Element{Doc: 1, End: 10, Length: 5}
	if real.IsDummy() {
		t.Fatal("real element reported dummy")
	}
}

func TestElementsKeyOrder(t *testing.T) {
	rows := []Element{
		{SID: 2, Doc: 0, End: 5},
		{SID: 1, Doc: 9, End: 1},
		{SID: 1, Doc: 0, End: 100},
		{SID: 1, Doc: 0, End: 7},
	}
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		keys[i] = elementsKey(r.SID, r.Doc, r.End)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	// Expected order: (1,0,7), (1,0,100), (1,9,1), (2,0,5).
	wantOrder := []Element{rows[3], rows[2], rows[1], rows[0]}
	for i, w := range wantOrder {
		sid, doc, end, err := decodeElementsKey(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if sid != w.SID || doc != w.Doc || end != w.End {
			t.Fatalf("key[%d] = (%d,%d,%d), want (%d,%d,%d)", i, sid, doc, end, w.SID, w.Doc, w.End)
		}
	}
	if _, _, _, err := decodeElementsKey([]byte("short")); err == nil {
		t.Fatal("short key decoded")
	}
}

func TestScoreInversionOrder(t *testing.T) {
	scores := []float64{0, 0.001, 0.5, 1, 2, 10, 1e6}
	for i := 1; i < len(scores); i++ {
		lo := invertScore(scores[i])   // higher score
		hi := invertScore(scores[i-1]) // lower score
		if lo >= hi {
			t.Fatalf("invertScore order broken at %v vs %v", scores[i], scores[i-1])
		}
	}
	// Negative scores clamp to zero.
	if invertScore(-5) != invertScore(0) {
		t.Fatal("negative score not clamped")
	}
	for _, s := range scores {
		if got := uninvertScore(invertScore(s)); got != s {
			t.Fatalf("roundtrip %v -> %v", s, got)
		}
	}
}

func TestQuickScoreInversionMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		ia, ib := invertScore(a), invertScore(b)
		switch {
		case a < b:
			return ia > ib
		case a > b:
			return ia < ib
		default:
			return ia == ib
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRPLCodecRoundTrip(t *testing.T) {
	e := RPLEntry{Score: 3.25, SID: 7, Doc: 42, End: 9999, Length: 1234}
	term, got, err := decodeRPL(rplKey("xml", e), rplValue(e))
	if err != nil {
		t.Fatal(err)
	}
	if term != "xml" || got != e {
		t.Fatalf("decodeRPL = %q, %+v", term, got)
	}
	if got.Element() != (Element{SID: 7, Doc: 42, End: 9999, Length: 1234}) {
		t.Fatalf("Element() = %+v", got.Element())
	}
}

func TestRPLKeyOrderIsScoreDescending(t *testing.T) {
	entries := []RPLEntry{
		{Score: 0.5, SID: 1, Doc: 1, End: 10},
		{Score: 9.0, SID: 2, Doc: 1, End: 20},
		{Score: 2.5, SID: 1, Doc: 2, End: 30},
		{Score: 2.5, SID: 1, Doc: 1, End: 40}, // tie broken by (sid,doc,end)
	}
	keys := make([][]byte, len(entries))
	for i, e := range entries {
		keys[i] = rplKey("t", e)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	var scores []float64
	for _, k := range keys {
		_, e, err := decodeRPL(k, rplValue(RPLEntry{}))
		if err != nil {
			t.Fatal(err)
		}
		_ = e
	}
	// Decode scores from key order via value-free check: rebuild with the
	// matching entries map.
	for i := range keys {
		for _, e := range entries {
			if bytes.Equal(keys[i], rplKey("t", e)) {
				scores = append(scores, e.Score)
			}
		}
	}
	want := []float64{9.0, 2.5, 2.5, 0.5}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("score order = %v, want %v", scores, want)
		}
	}
}

func TestERPLCodecRoundTrip(t *testing.T) {
	e := RPLEntry{Score: 1.5, SID: 3, Doc: 8, End: 77, Length: 60}
	term, got, err := decodeERPL(erplKey("query", e), rplValue(e))
	if err != nil {
		t.Fatal(err)
	}
	if term != "query" || got != e {
		t.Fatalf("decodeERPL = %q, %+v", term, got)
	}
}

func TestERPLKeyOrderIsPositional(t *testing.T) {
	entries := []RPLEntry{
		{SID: 1, Doc: 2, End: 5},
		{SID: 1, Doc: 1, End: 900},
		{SID: 1, Doc: 1, End: 30},
	}
	keys := make([][]byte, len(entries))
	for i, e := range entries {
		keys[i] = erplKey("t", e)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	wantOrder := []RPLEntry{entries[2], entries[1], entries[0]}
	for i, w := range wantOrder {
		if !bytes.Equal(keys[i], erplKey("t", w)) {
			t.Fatalf("position order wrong at %d", i)
		}
	}
}

func TestPostingValueRoundTrip(t *testing.T) {
	ps := []Pos{{1, 2}, {1, 50}, {3, 7}, MaxPos}
	got, err := decodePostingValue(postingValue(ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("pos[%d] = %v, want %v", i, got[i], ps[i])
		}
	}
	if _, err := decodePostingValue([]byte{1}); err == nil {
		t.Fatal("short value decoded")
	}
	if _, err := decodePostingValue([]byte{0, 2, 0}); err == nil {
		t.Fatal("truncated value decoded")
	}
}

func TestTermPrefixFree(t *testing.T) {
	// "ab" must not be a key-prefix collision with "abc".
	kAB := postingKey("ab", Pos{0, 0})
	kABC := postingKey("abc", Pos{0, 0})
	if bytes.HasPrefix(kABC, termPrefix("ab")) {
		t.Fatal("termPrefix(ab) is a prefix of key(abc)")
	}
	if bytes.Compare(kAB, kABC) >= 0 {
		t.Fatal("term order not preserved")
	}
	if _, _, err := splitTermPrefix([]byte("noterm")); err == nil {
		t.Fatal("missing terminator accepted")
	}
}

func TestCompareDocEnd(t *testing.T) {
	if CompareDocEnd(1, 5, 1, 5) != 0 {
		t.Fatal("equal compare != 0")
	}
	if CompareDocEnd(1, 5, 1, 6) != -1 || CompareDocEnd(1, 6, 1, 5) != 1 {
		t.Fatal("end compare broken")
	}
	if CompareDocEnd(1, 9, 2, 0) != -1 || CompareDocEnd(2, 0, 1, 9) != 1 {
		t.Fatal("doc compare broken")
	}
}

func TestPostingDeltaCompression(t *testing.T) {
	// Dense same-document positions compress far below 8 bytes each.
	ps := make([]Pos, 200)
	off := uint32(100)
	for i := range ps {
		ps[i] = Pos{Doc: 7, Off: off}
		off += uint32(5 + i%30)
	}
	enc := postingValue(ps)
	if len(enc) >= 8*len(ps) {
		t.Fatalf("delta encoding %d bytes >= fixed %d", len(enc), 8*len(ps))
	}
	if len(enc) > 3*len(ps)+3 {
		t.Fatalf("delta encoding %d bytes for %d dense positions (want <= ~2/pos)", len(enc), len(ps))
	}
	got, err := decodePostingValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("pos[%d] = %v, want %v", i, got[i], ps[i])
		}
	}
}

func TestPostingFixedFormatStillDecodes(t *testing.T) {
	// Hand-build a v1 (fixed) value: tag + count + 8-byte pairs.
	ps := []Pos{{1, 10}, {2, 20}}
	v := []byte{postingFormatFixed, 0, 2}
	for _, p := range ps {
		var buf [8]byte
		binary.BigEndian.PutUint32(buf[0:4], p.Doc)
		binary.BigEndian.PutUint32(buf[4:8], p.Off)
		v = append(v, buf[:]...)
	}
	got, err := decodePostingValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ps[0] || got[1] != ps[1] {
		t.Fatalf("v1 decode = %v", got)
	}
}

func TestPostingBadFormats(t *testing.T) {
	if _, err := decodePostingValue([]byte{0x7F, 0, 1, 2}); err == nil {
		t.Fatal("unknown format accepted")
	}
	// Truncated delta stream.
	ps := []Pos{{1, 10}, {1, 20}, {2, 5}}
	enc := postingValue(ps)
	if _, err := decodePostingValue(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated value accepted")
	}
	// Trailing garbage.
	if _, err := decodePostingValue(append(enc, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: any sorted position list round-trips through the delta codec.
func TestQuickPostingRoundTrip(t *testing.T) {
	f := func(seeds []uint32) bool {
		var ps []Pos
		var cur Pos
		for i, s := range seeds {
			if i == 0 {
				cur = Pos{Doc: s % 1000, Off: s % 100000}
			} else if s%5 == 0 {
				cur = Pos{Doc: cur.Doc + 1 + s%50, Off: s % 100000}
			} else {
				cur = Pos{Doc: cur.Doc, Off: cur.Off + 1 + s%5000}
			}
			ps = append(ps, cur)
			if len(ps) == maxPostingsPerFragment {
				break
			}
		}
		got, err := decodePostingValue(postingValue(ps))
		if err != nil {
			return false
		}
		if len(got) != len(ps) {
			return false
		}
		for i := range ps {
			if got[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPostingWorstCaseFitsValueLimit(t *testing.T) {
	// Pathological gaps: every position in a new far-away document.
	ps := make([]Pos, maxPostingsPerFragment)
	for i := range ps {
		ps[i] = Pos{Doc: uint32(i) * 16_000_000, Off: 4_000_000_000}
	}
	enc := postingValue(ps)
	if len(enc) > 3072 {
		t.Fatalf("worst-case fragment %d bytes exceeds storage value limit", len(enc))
	}
}
