package index

import (
	"testing"
)

// Corrupt-input tables: every value decoder must return an error (never
// panic, never succeed) on truncated or malformed bytes. Each case is run
// under a recover guard so a panic reports the offending decoder+input
// instead of killing the test binary.

func mustError(t *testing.T, decoder, name string, fn func() error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s/%s: panic: %v", decoder, name, r)
		}
	}()
	if err := fn(); err == nil {
		t.Errorf("%s/%s: no error on corrupt input", decoder, name)
	}
}

func validRPLRow(t *testing.T) ([]byte, []byte) {
	t.Helper()
	rows := EncodeRPLBlocks("t", randEntries(10, 1))
	return rows[0].Key, rows[0].Value
}

func validERPLRow(t *testing.T) ([]byte, []byte) {
	t.Helper()
	rows := EncodeERPLBlocks("t", []RPLEntry{
		{Score: 2, SID: 1, Doc: 3, End: 40, Length: 7},
		{Score: 1, SID: 1, Doc: 3, End: 90, Length: 9},
		{Score: 5, SID: 1, Doc: 4, End: 11, Length: 2},
	})
	return rows[0].Key, rows[0].Value
}

func TestDecodersRejectCorruptInput(t *testing.T) {
	rplKey, rplVal := validRPLRow(t)
	erplKey, erplVal := validERPLRow(t)

	truncations := func(v []byte) map[string][]byte {
		out := map[string][]byte{
			"empty":    {},
			"one-byte": v[:1],
		}
		for _, cut := range []int{2, len(v) / 2, len(v) - 1} {
			if cut > 0 && cut < len(v) {
				out["cut-"+string(rune('0'+cut%10))] = v[:cut]
			}
		}
		return out
	}

	// Posting values: fixed (0x01) and delta (0x02) formats.
	post := postingValue([]Pos{{Doc: 1, Off: 2}, {Doc: 1, Off: 9}, {Doc: 3, Off: 4}})
	for name, v := range truncations(post) {
		v := v
		mustError(t, "decodePostingValue", name, func() error {
			_, err := decodePostingValue(v)
			return err
		})
	}
	mustError(t, "decodePostingValue", "bad-format-byte", func() error {
		_, err := decodePostingValue([]byte{0x7f, 0, 1})
		return err
	})
	mustError(t, "decodePostingValue", "count-overruns-payload", func() error {
		// Delta header claims 1000 positions, payload holds none.
		_, err := decodePostingValue([]byte{0x02, 0x03, 0xe8})
		return err
	})
	mustError(t, "decodePostingFixed", "ragged-tail", func() error {
		_, err := decodePostingFixed([]byte{0x01, 0, 1, 0xaa, 0xbb, 0xcc})
		return err
	})

	// v1 RPL / ERPL rows: short keys and short values.
	v1rpl := rplValue(RPLEntry{Score: 1, SID: 1, Doc: 2, End: 3, Length: 4})
	for _, tc := range []struct {
		name string
		k, v []byte
	}{
		{"short-key", []byte("t\x00abc"), v1rpl},
		{"no-nul-key", []byte("termwithoutnul"), v1rpl},
		{"short-value", rplKeyFor("t"), v1rpl[:7]},
	} {
		tc := tc
		mustError(t, "decodeRPL", tc.name, func() error {
			_, _, err := decodeRPL(tc.k, tc.v)
			return err
		})
		mustError(t, "decodeERPL", tc.name, func() error {
			_, _, err := decodeERPL(erplKeyFor("t"), tc.v[:7])
			return err
		})
	}

	// Block rows: truncations of valid encodings, plus targeted headers.
	for name, v := range truncations(rplVal) {
		v := v
		mustError(t, "decodeRPLRow", name, func() error {
			_, err := decodeRPLRow(rplKey, v)
			return err
		})
	}
	for name, v := range truncations(erplVal) {
		v := v
		mustError(t, "decodeERPLRow", name, func() error {
			_, err := decodeERPLRow(erplKey, v)
			return err
		})
	}
	// erplRowStats reads only the header, so it tolerates payload-only
	// truncation; it must still reject a cut inside the header itself.
	for _, cut := range []int{0, 1, 2} {
		cut := cut
		mustError(t, "erplRowStats", "header-cut", func() error {
			_, _, _, err := erplRowStats(erplKey, erplVal[:cut])
			return err
		})
	}
	// Block rows are self-contained in the value; a short key only matters
	// on the v1 path (12-byte values).
	mustError(t, "decodeRPLRow", "short-key-v1", func() error {
		_, err := decodeRPLRow([]byte("t\x00ab"), v1rpl)
		return err
	})
	mustError(t, "decodeERPLRow", "short-key-v1", func() error {
		_, err := decodeERPLRow([]byte("t\x00ab"), v1rpl)
		return err
	})
	mustError(t, "decodeRPLBlock", "wrong-format-byte", func() error {
		bad := append([]byte(nil), rplVal...)
		bad[0] = 0x01
		_, err := decodeRPLBlock(bad)
		return err
	})
	mustError(t, "decodeRPLBlock", "huge-count", func() error {
		// Count uvarint claims ~2^28 entries; must not allocate/panic.
		_, err := decodeRPLBlock([]byte{0x02, 0x80, 0x80, 0x80, 0x80, 0x01, 1, 2, 3, 4, 5, 6, 7, 8})
		return err
	})
	mustError(t, "decodeERPLBlock", "huge-count", func() error {
		_, err := decodeERPLBlock([]byte{0x02, 0xff, 0xff, 0xff, 0xff, 0x0f, 1, 1, 1})
		return err
	})
	mustError(t, "rplBlockMaxScore", "truncated-header", func() error {
		_, err := rplBlockMaxScore([]byte{0x02, 0x05, 0x00})
		return err
	})
	mustError(t, "erplBlockBounds", "truncated-header", func() error {
		_, _, _, err := erplBlockBounds([]byte{0x02, 0x03})
		return err
	})

	// Elements table.
	mustError(t, "decodeElementsKey", "short", func() error {
		_, _, _, _, err2 := decodeElementsKeyWrap([]byte{1, 2, 3})
		return err2
	})
	mustError(t, "decodeElementsValue", "short", func() error {
		_, err := decodeElementsValue([]byte{1, 2})
		return err
	})

	// Random flips over a valid block must never panic (errors optional:
	// some flips only perturb payload values).
	for i := 0; i < len(rplVal); i++ {
		bad := append([]byte(nil), rplVal...)
		bad[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("decodeRPLRow: panic on flipped byte %d: %v", i, r)
				}
			}()
			_, _ = decodeRPLRow(rplKey, bad)
		}()
	}
	for i := 0; i < len(erplVal); i++ {
		bad := append([]byte(nil), erplVal...)
		bad[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("decodeERPLRow: panic on flipped byte %d: %v", i, r)
				}
			}()
			_, _ = decodeERPLRow(erplKey, bad)
		}()
	}
}

// rplKeyFor / erplKeyFor build minimal well-formed keys for decoders whose
// error under test lives in the value.
func rplKeyFor(term string) []byte {
	return rplKey(term, RPLEntry{Score: 1, SID: 1, Doc: 1, End: 1})
}

func erplKeyFor(term string) []byte {
	return erplKey(term, RPLEntry{SID: 1, Doc: 1, End: 1})
}

func decodeElementsKeyWrap(k []byte) (uint32, uint32, uint32, struct{}, error) {
	sid, doc, end, err := decodeElementsKey(k)
	return sid, doc, end, struct{}{}, err
}
