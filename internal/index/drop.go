package index

import "encoding/binary"

// DropList removes every entry of the (kind, term, sid) list and its
// catalog record, returning the number of entries deleted. The
// self-managing advisor uses this to reclaim lists that were materialized
// for measurement but not selected by the plan, and Materialize uses it
// to clear a stale list before rebuilding it.
//
// ERPL rows — v1 and block alike — hold a single sid, recoverable from
// the key, so they are deleted whole. RPL blocks may mix sids (score
// order interleaves them); a block containing the target sid is deleted
// and its surviving entries are re-encoded into fresh blocks.
func (s *Store) DropList(kind ListKind, term string, sid uint32) (int, error) {
	if err := s.noteListChange(); err != nil {
		return 0, err
	}
	if kind == KindERPL {
		return s.dropERPL(term, sid)
	}
	return s.dropRPL(term, sid)
}

func (s *Store) dropERPL(term string, sid uint32) (int, error) {
	// Collect matching keys first: deleting while iterating would
	// invalidate the cursor.
	var keys [][]byte
	dropped := 0
	prefix := termPrefix(term)
	cur := s.ERPLs.Cursor()
	ok, err := cur.SeekPrefix(prefix)
	if err != nil {
		return 0, err
	}
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		rest := cur.Key()[len(prefix):]
		if len(rest) != 12 {
			continue
		}
		if binary.BigEndian.Uint32(rest[0:4]) != sid {
			continue
		}
		n, _, _, err := erplRowStats(cur.Key(), cur.Value())
		if err != nil {
			return 0, err
		}
		dropped += n
		keys = append(keys, append([]byte(nil), cur.Key()...))
	}
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := s.ERPLs.Delete(k); err != nil {
			return 0, err
		}
	}
	s.stats.invalidate()
	if _, err := s.Catalog.Delete(catalogKey(KindERPL, term, sid)); err != nil {
		return 0, err
	}
	return dropped, nil
}

func (s *Store) dropRPL(term string, sid uint32) (int, error) {
	var keys [][]byte
	var leftovers []RPLEntry
	dropped := 0
	prefix := termPrefix(term)
	cur := s.RPLs.Cursor()
	ok, err := cur.SeekPrefix(prefix)
	if err != nil {
		return 0, err
	}
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		rest := cur.Key()[len(prefix):]
		if len(rest) != 20 {
			continue
		}
		if len(cur.Value()) == rplV1ValueLen {
			if binary.BigEndian.Uint32(rest[8:12]) == sid {
				dropped++
				keys = append(keys, append([]byte(nil), cur.Key()...))
			}
			continue
		}
		entries, err := decodeRPLRow(cur.Key(), cur.Value())
		if err != nil {
			return 0, err
		}
		hit := false
		for _, e := range entries {
			if e.SID == sid {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		keys = append(keys, append([]byte(nil), cur.Key()...))
		for _, e := range entries {
			if e.SID == sid {
				dropped++
			} else {
				leftovers = append(leftovers, e)
			}
		}
	}
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := s.RPLs.Delete(k); err != nil {
			return 0, err
		}
	}
	if len(leftovers) > 0 {
		// Surviving entries from deleted blocks go back as fresh blocks.
		// Their keys cannot collide with remaining rows: a first-entry key
		// equal to a surviving row's key would mean the entry was stored
		// twice.
		for _, r := range EncodeRPLBlocks(term, leftovers) {
			if err := s.RPLs.Put(r.Key, r.Value); err != nil {
				return 0, err
			}
		}
	}
	s.stats.invalidate()
	if _, err := s.Catalog.Delete(catalogKey(KindRPL, term, sid)); err != nil {
		return 0, err
	}
	return dropped, nil
}
