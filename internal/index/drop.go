package index

import "encoding/binary"

// DropList removes every entry of the (kind, term, sid) list and its
// catalog record, returning the number of entries deleted. The
// self-managing advisor uses this to reclaim lists that were materialized
// for measurement but not selected by the plan.
func (s *Store) DropList(kind ListKind, term string, sid uint32) (int, error) {
	tree := s.RPLs
	if kind == KindERPL {
		tree = s.ERPLs
	}
	// Collect matching keys first: deleting while iterating would
	// invalidate the cursor.
	var keys [][]byte
	prefix := termPrefix(term)
	cur := tree.Cursor()
	ok, err := cur.SeekPrefix(prefix)
	if err != nil {
		return 0, err
	}
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		rest := cur.Key()[len(prefix):]
		var entrySID uint32
		switch kind {
		case KindRPL:
			if len(rest) != 20 {
				continue
			}
			entrySID = binary.BigEndian.Uint32(rest[8:12])
		default:
			if len(rest) != 12 {
				continue
			}
			entrySID = binary.BigEndian.Uint32(rest[0:4])
		}
		if entrySID == sid {
			keys = append(keys, append([]byte(nil), cur.Key()...))
		}
	}
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if _, err := tree.Delete(k); err != nil {
			return 0, err
		}
	}
	if _, err := s.Catalog.Delete(catalogKey(kind, term, sid)); err != nil {
		return 0, err
	}
	return len(keys), nil
}
