package index

import (
	"trex/internal/corpus"
	"trex/internal/storage"
)

// The corpus format is persisted in the index meta so an opened index
// knows which universe its stored document bytes live in (snippet
// extraction renders JSON documents to the canonical XML all offsets
// refer to). Absence of the marker means XML — every pre-JSON index.
var metaCorpusFormatKey = []byte("corpus-format")

// PutCorpusFormat persists the corpus-format marker.
func (s *Store) PutCorpusFormat(f corpus.Format) error {
	if f == corpus.FormatXML {
		return nil // absence is the XML marker; keeps old images byte-stable
	}
	return s.Meta.Put(metaCorpusFormatKey, []byte(f.String()))
}

// CorpusFormat returns the persisted corpus format (FormatXML when the
// marker is absent).
func (s *Store) CorpusFormat() (corpus.Format, error) {
	v, err := s.Meta.Get(metaCorpusFormatKey)
	if err == storage.ErrNotFound {
		return corpus.FormatXML, nil
	}
	if err != nil {
		return corpus.FormatXML, err
	}
	return corpus.ParseFormat(string(v))
}
