package index

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz targets for the on-disk value codecs. Two properties:
//
//  1. Decode never panics — arbitrary bytes must produce (result, nil) or
//     (nil, error), never a runtime fault. This is the contract the
//     iterators rely on when a store is corrupted.
//  2. Round-trip — entries derived from the fuzz input encode and decode
//     back to the identical entry sequence.
//
// Run via `make fuzz` (short bounded runs, wired into CI) or directly:
//
//	go test ./internal/index -fuzz FuzzDecodeRPLRow -fuzztime 10s

func FuzzDecodePostingValue(f *testing.F) {
	f.Add([]byte{})
	f.Add(postingValue([]Pos{{Doc: 1, Off: 2}, {Doc: 1, Off: 7}}))
	f.Add([]byte{0x02, 0x03, 0xe8})
	f.Add([]byte{0x01, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, v []byte) {
		_, _ = decodePostingValue(v) // must not panic
	})
}

func FuzzDecodeRPLRow(f *testing.F) {
	rows := EncodeRPLBlocks("t", randEntries(20, 3))
	for _, r := range rows {
		f.Add(r.Key, r.Value)
	}
	f.Add([]byte("t\x00"), []byte{0x02, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, k, v []byte) {
		_, _ = decodeRPLRow(k, v)  // must not panic
		_, _ = rplBlockMaxScore(v) // header reader, same contract
	})
}

func FuzzDecodeERPLRow(f *testing.F) {
	rows := EncodeERPLBlocks("t", randEntries(20, 5))
	for _, r := range rows {
		f.Add(r.Key, r.Value)
	}
	f.Add([]byte("t\x00"), []byte{0x02, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, k, v []byte) {
		_, _ = decodeERPLRow(k, v)      // must not panic
		_, _, _, _ = erplRowStats(k, v) // header reader, same contract
	})
}

// FuzzBlockRoundTrip derives an entry list from the fuzz bytes and checks
// both block codecs reproduce it exactly (after their canonical sort).
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(bytes.Repeat([]byte{0xab}, 400))
	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []RPLEntry
		seen := make(map[[3]uint32]bool)
		for len(data) >= 12 && len(entries) < 4*BlockTargetEntries {
			e := RPLEntry{
				Score:  float64(binary.LittleEndian.Uint16(data[0:2])) / 8,
				SID:    uint32(data[2]%5) + 1,
				Doc:    uint32(binary.LittleEndian.Uint16(data[3:5])),
				End:    binary.LittleEndian.Uint32(data[5:9])%1e6 + 1,
				Length: uint32(data[9]) + 1,
			}
			data = data[12:]
			id := [3]uint32{e.SID, e.Doc, e.End}
			if seen[id] {
				continue // (sid,doc,end) is the identity in both orders
			}
			seen[id] = true
			entries = append(entries, e)
		}
		if len(entries) == 0 {
			return
		}

		want := append([]RPLEntry(nil), entries...)
		SortRPLEntriesScoreOrder(want)
		var got []RPLEntry
		for _, r := range EncodeRPLBlocks("t", append([]RPLEntry(nil), entries...)) {
			dec, err := decodeRPLRow(r.Key, r.Value)
			if err != nil {
				t.Fatalf("rpl decode: %v", err)
			}
			got = append(got, dec...)
		}
		if err := entriesEqual(got, want); err != nil {
			t.Fatalf("rpl round trip: %v", err)
		}

		SortRPLEntriesPositionOrder(want)
		got = got[:0]
		for _, r := range EncodeERPLBlocks("t", append([]RPLEntry(nil), entries...)) {
			dec, err := decodeERPLRow(r.Key, r.Value)
			if err != nil {
				t.Fatalf("erpl decode: %v", err)
			}
			got = append(got, dec...)
		}
		if err := entriesEqual(got, want); err != nil {
			t.Fatalf("erpl round trip: %v", err)
		}
	})
}
