package index

import (
	"container/heap"
	"math"
)

// ElementIterator walks the extent of one sid in (doc, endpos) order —
// the I_s iterator of the ERA algorithm (paper Figure 2). At extent end it
// returns the dummy element (end position m-pos, length zero).
type ElementIterator struct {
	store *Store
	sid   uint32
	cur   interface {
		Seek(key []byte) (bool, error)
		Key() []byte
		Value() []byte
	}
}

// NewElementIterator creates an iterator over the elements with the given
// sid.
func NewElementIterator(s *Store, sid uint32) *ElementIterator {
	return &ElementIterator{store: s, sid: sid, cur: s.Elements.Cursor()}
}

// read decodes the row under the cursor, verifying it still belongs to the
// iterator's sid.
func (it *ElementIterator) read() (Element, error) {
	sid, doc, end, err := decodeElementsKey(it.cur.Key())
	if err != nil {
		return Element{}, err
	}
	if sid != it.sid {
		return DummyElement(), nil
	}
	length, err := decodeElementsValue(it.cur.Value())
	if err != nil {
		return Element{}, err
	}
	return Element{SID: sid, Doc: doc, End: end, Length: length}, nil
}

// FirstElement returns the first element of the extent, or the dummy
// element if the extent is empty.
func (it *ElementIterator) FirstElement() (Element, error) {
	ok, err := it.cur.Seek(elementsKey(it.sid, 0, 0))
	if err != nil {
		return Element{}, err
	}
	if !ok {
		return DummyElement(), nil
	}
	return it.read()
}

// NextElementAfter returns the extent element with the lowest end position
// strictly greater than p, or the dummy element. Implemented as an index
// seek, exactly as the paper describes.
func (it *ElementIterator) NextElementAfter(p Pos) (Element, error) {
	doc, off := p.Doc, p.Off
	// Strictly-greater seek target: increment (doc, off) lexicographically.
	if off == math.MaxUint32 {
		if doc == math.MaxUint32 {
			return DummyElement(), nil
		}
		doc, off = doc+1, 0
	} else {
		off++
	}
	ok, err := it.cur.Seek(elementsKey(it.sid, doc, off))
	if err != nil {
		return Element{}, err
	}
	if !ok {
		return DummyElement(), nil
	}
	return it.read()
}

// PostingIterator walks a term's posting list in position order — the I_t
// iterator of ERA. Every list logically ends with m-pos; iterating past
// the end keeps returning m-pos, matching the paper's loop condition
// "until for all the terms, the maximal position m-pos has been reached".
type PostingIterator struct {
	store  *Store
	term   string
	prefix []byte
	cur    interface {
		SeekPrefix(prefix []byte) (bool, error)
		NextPrefix(prefix []byte) (bool, error)
		Value() []byte
	}
	frag    []Pos
	i       int
	started bool
	done    bool
}

// NewPostingIterator creates an iterator over term's posting list.
func NewPostingIterator(s *Store, term string) *PostingIterator {
	return &PostingIterator{
		store:  s,
		term:   term,
		prefix: termPrefix(term),
		cur:    s.Postings.Cursor(),
	}
}

// NextPosition returns the next position, or m-pos once exhausted.
func (it *PostingIterator) NextPosition() (Pos, error) {
	if it.done {
		return MaxPos, nil
	}
	for it.i >= len(it.frag) {
		var ok bool
		var err error
		if !it.started {
			it.started = true
			ok, err = it.cur.SeekPrefix(it.prefix)
		} else {
			ok, err = it.cur.NextPrefix(it.prefix)
		}
		if err != nil {
			return MaxPos, err
		}
		if !ok {
			it.done = true
			return MaxPos, nil
		}
		frag, err := decodePostingValue(it.cur.Value())
		if err != nil {
			return MaxPos, err
		}
		it.frag = frag
		it.i = 0
	}
	p := it.frag[it.i]
	it.i++
	if p.IsMax() {
		it.done = true
	}
	return p, nil
}

// RPLIterator walks a term's relevance posting list in descending score
// order — the sorted access TA performs.
type RPLIterator struct {
	store  *Store
	term   string
	prefix []byte
	cur    interface {
		SeekPrefix(prefix []byte) (bool, error)
		NextPrefix(prefix []byte) (bool, error)
		Key() []byte
		Value() []byte
	}
	started bool
	done    bool
	// Reads counts entries returned; the experiments use it to measure
	// how deep TA reads into each list before stopping.
	Reads int
}

// NewRPLIterator creates a descending-score iterator over term's RPL.
func NewRPLIterator(s *Store, term string) *RPLIterator {
	return &RPLIterator{store: s, term: term, prefix: termPrefix(term), cur: s.RPLs.Cursor()}
}

// Next returns the next entry; ok is false once the list is exhausted.
func (it *RPLIterator) Next() (RPLEntry, bool, error) {
	if it.done {
		return RPLEntry{}, false, nil
	}
	var ok bool
	var err error
	if !it.started {
		it.started = true
		ok, err = it.cur.SeekPrefix(it.prefix)
	} else {
		ok, err = it.cur.NextPrefix(it.prefix)
	}
	if err != nil {
		return RPLEntry{}, false, err
	}
	if !ok {
		it.done = true
		return RPLEntry{}, false, nil
	}
	_, e, err := decodeRPL(it.cur.Key(), it.cur.Value())
	if err != nil {
		return RPLEntry{}, false, err
	}
	it.Reads++
	return e, true, nil
}

// ERPLIterator walks the (term, sid) segment of an ERPL in position order.
type ERPLIterator struct {
	prefix []byte
	cur    interface {
		SeekPrefix(prefix []byte) (bool, error)
		NextPrefix(prefix []byte) (bool, error)
		Key() []byte
		Value() []byte
	}
	started bool
	done    bool
}

// NewERPLIterator creates an iterator over the ERPL entries of (term, sid).
func NewERPLIterator(s *Store, term string, sid uint32) *ERPLIterator {
	return &ERPLIterator{prefix: erplSIDPrefix(term, sid), cur: s.ERPLs.Cursor()}
}

// Next returns the next entry in (doc, endpos) order; ok is false at end.
func (it *ERPLIterator) Next() (RPLEntry, bool, error) {
	if it.done {
		return RPLEntry{}, false, nil
	}
	var ok bool
	var err error
	if !it.started {
		it.started = true
		ok, err = it.cur.SeekPrefix(it.prefix)
	} else {
		ok, err = it.cur.NextPrefix(it.prefix)
	}
	if err != nil {
		return RPLEntry{}, false, err
	}
	if !ok {
		it.done = true
		return RPLEntry{}, false, nil
	}
	_, e, err := decodeERPL(it.cur.Key(), it.cur.Value())
	if err != nil {
		return RPLEntry{}, false, err
	}
	return e, true, nil
}

// TermERPL merges the per-(term, sid) ERPL segments of one term across a
// sid set into a single position-ordered stream — the first merge step of
// Section 4's two-step evaluation. It is the per-term list L_i that the
// Merge algorithm (Figure 3) consumes.
type TermERPL struct {
	h erplHeap
}

// NewTermERPL opens iterators for every sid and primes the merge heap.
func NewTermERPL(s *Store, term string, sids []uint32) (*TermERPL, error) {
	m := &TermERPL{}
	for _, sid := range sids {
		it := NewERPLIterator(s, term, sid)
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.h = append(m.h, erplStream{head: e, it: it})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

// Next returns the next entry across all sids in (doc, endpos) order.
func (m *TermERPL) Next() (RPLEntry, bool, error) {
	if m.h.Len() == 0 {
		return RPLEntry{}, false, nil
	}
	top := m.h[0]
	out := top.head
	e, ok, err := top.it.Next()
	if err != nil {
		return RPLEntry{}, false, err
	}
	if ok {
		m.h[0].head = e
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return out, true, nil
}

type erplStream struct {
	head RPLEntry
	it   *ERPLIterator
}

type erplHeap []erplStream

func (h erplHeap) Len() int { return len(h) }
func (h erplHeap) Less(i, j int) bool {
	a, b := h[i].head, h[j].head
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.End < b.End
}
func (h erplHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *erplHeap) Push(x any)   { *h = append(*h, x.(erplStream)) }
func (h *erplHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// CompareDocEnd orders two (doc, end) element identities.
func CompareDocEnd(aDoc, aEnd, bDoc, bEnd uint32) int {
	switch {
	case aDoc != bDoc:
		if aDoc < bDoc {
			return -1
		}
		return 1
	case aEnd != bEnd:
		if aEnd < bEnd {
			return -1
		}
		return 1
	default:
		return 0
	}
}
