package index

import (
	"container/heap"
	"fmt"
	"math"
)

// ElementIterator walks the extent of one sid in (doc, endpos) order —
// the I_s iterator of the ERA algorithm (paper Figure 2). At extent end it
// returns the dummy element (end position m-pos, length zero).
type ElementIterator struct {
	store *Store
	sid   uint32
	cur   interface {
		Seek(key []byte) (bool, error)
		Key() []byte
		Value() []byte
	}
}

// NewElementIterator creates an iterator over the elements with the given
// sid.
func NewElementIterator(s *Store, sid uint32) *ElementIterator {
	return &ElementIterator{store: s, sid: sid, cur: s.Elements.Cursor()}
}

// read decodes the row under the cursor, verifying it still belongs to the
// iterator's sid.
func (it *ElementIterator) read() (Element, error) {
	sid, doc, end, err := decodeElementsKey(it.cur.Key())
	if err != nil {
		return Element{}, err
	}
	if sid != it.sid {
		return DummyElement(), nil
	}
	length, err := decodeElementsValue(it.cur.Value())
	if err != nil {
		return Element{}, err
	}
	return Element{SID: sid, Doc: doc, End: end, Length: length}, nil
}

// FirstElement returns the first element of the extent, or the dummy
// element if the extent is empty.
func (it *ElementIterator) FirstElement() (Element, error) {
	ok, err := it.cur.Seek(elementsKey(it.sid, 0, 0))
	if err != nil {
		return Element{}, err
	}
	if !ok {
		return DummyElement(), nil
	}
	return it.read()
}

// NextElementAfter returns the extent element with the lowest end position
// strictly greater than p, or the dummy element. Implemented as an index
// seek, exactly as the paper describes.
func (it *ElementIterator) NextElementAfter(p Pos) (Element, error) {
	doc, off := p.Doc, p.Off
	// Strictly-greater seek target: increment (doc, off) lexicographically.
	if off == math.MaxUint32 {
		if doc == math.MaxUint32 {
			return DummyElement(), nil
		}
		doc, off = doc+1, 0
	} else {
		off++
	}
	ok, err := it.cur.Seek(elementsKey(it.sid, doc, off))
	if err != nil {
		return Element{}, err
	}
	if !ok {
		return DummyElement(), nil
	}
	return it.read()
}

// PostingIterator walks a term's posting list in position order — the I_t
// iterator of ERA. Every list logically ends with m-pos; iterating past
// the end keeps returning m-pos, matching the paper's loop condition
// "until for all the terms, the maximal position m-pos has been reached".
type PostingIterator struct {
	store  *Store
	term   string
	prefix []byte
	cur    interface {
		SeekPrefix(prefix []byte) (bool, error)
		NextPrefix(prefix []byte) (bool, error)
		Value() []byte
	}
	frag    []Pos
	i       int
	started bool
	done    bool
}

// NewPostingIterator creates an iterator over term's posting list.
func NewPostingIterator(s *Store, term string) *PostingIterator {
	return &PostingIterator{
		store:  s,
		term:   term,
		prefix: termPrefix(term),
		cur:    s.Postings.Cursor(),
	}
}

// NextPosition returns the next position, or m-pos once exhausted.
func (it *PostingIterator) NextPosition() (Pos, error) {
	if it.done {
		return MaxPos, nil
	}
	for it.i >= len(it.frag) {
		var ok bool
		var err error
		if !it.started {
			it.started = true
			ok, err = it.cur.SeekPrefix(it.prefix)
		} else {
			ok, err = it.cur.NextPrefix(it.prefix)
		}
		if err != nil {
			return MaxPos, err
		}
		if !ok {
			it.done = true
			return MaxPos, nil
		}
		frag, err := decodePostingValue(it.cur.Value())
		if err != nil {
			return MaxPos, err
		}
		it.frag = frag
		it.i = 0
	}
	p := it.frag[it.i]
	it.i++
	if p.IsMax() {
		it.done = true
	}
	return p, nil
}

// listCursor is the cursor surface the list iterators need.
type listCursor interface {
	SeekPrefix(prefix []byte) (bool, error)
	NextPrefix(prefix []byte) (bool, error)
	Key() []byte
	Value() []byte
}

// RPLIterator walks a term's relevance posting list in descending score
// order — the sorted access TA performs.
//
// Rows may be v1 (one entry) or v2 blocks (up to BlockTargetEntries), and
// rows written by different materialization runs may interleave in key
// space, so the iterator merges a buffer of decoded-but-unreturned
// entries against the cursor stream: an entry is only emitted once the
// next undecoded row is known to start at or after it. The lookahead is
// one row; each row is decoded exactly once.
type RPLIterator struct {
	store   *Store
	term    string
	prefix  []byte
	cur     listCursor
	started bool
	// curValid marks an un-consumed row under the cursor.
	curValid bool
	done     bool
	pending  []RPLEntry
	pi       int
	// Reads counts entries returned; the experiments use it to measure
	// how deep TA reads into each list before stopping.
	Reads int
	// RowsRead counts storage rows fetched — with block rows this is the
	// cursor-step cost, a fraction of Reads.
	RowsRead int
}

// NewRPLIterator creates a descending-score iterator over term's RPL.
func NewRPLIterator(s *Store, term string) *RPLIterator {
	return &RPLIterator{store: s, term: term, prefix: termPrefix(term), cur: s.rplCursor()}
}

// rplKeyTailLess reports whether the 20-byte RPL key tail orders before
// entry p's (ir, sid, doc, end) tuple.
func rplKeyTailLess(rest []byte, p RPLEntry) bool {
	ir := beUint64(rest[0:8])
	pir := invertScore(p.Score)
	if ir != pir {
		return ir < pir
	}
	sid := beUint32(rest[8:12])
	if sid != p.SID {
		return sid < p.SID
	}
	doc := beUint32(rest[12:16])
	if doc != p.Doc {
		return doc < p.Doc
	}
	return beUint32(rest[16:20]) < p.End
}

// fill establishes the emit invariant: either the iterator is exhausted,
// or pending[pi] is the globally next entry (no unread row can start
// before it).
func (it *RPLIterator) fill() error {
	for {
		if it.pi >= len(it.pending) {
			it.pending = it.pending[:0]
			it.pi = 0
		}
		if !it.curValid {
			if it.done {
				return nil
			}
			var ok bool
			var err error
			if !it.started {
				it.started = true
				ok, err = it.cur.SeekPrefix(it.prefix)
			} else {
				ok, err = it.cur.NextPrefix(it.prefix)
			}
			if err != nil {
				return err
			}
			if !ok {
				it.done = true
				return nil
			}
			it.curValid = true
			it.RowsRead++
		}
		rest := it.cur.Key()[len(it.prefix):]
		if len(rest) != 20 {
			return fmt.Errorf("index: bad RPL key tail length %d", len(rest))
		}
		if it.pi < len(it.pending) && !rplKeyTailLess(rest, it.pending[it.pi]) {
			return nil // buffered minimum precedes the next row: safe to emit
		}
		entries, err := decodeRPLRow(it.cur.Key(), it.cur.Value())
		if err != nil {
			return err
		}
		it.curValid = false
		it.mergePending(entries, rplEntryLess)
	}
}

func (it *RPLIterator) mergePending(es []RPLEntry, less func(a, b RPLEntry) bool) {
	it.pending, it.pi = mergeRuns(it.pending, it.pi, es, less)
}

// mergeRuns merges the unconsumed tail of a sorted pending buffer with a
// freshly decoded sorted run. The common case — empty buffer — reuses the
// decoded slice outright.
func mergeRuns(pending []RPLEntry, pi int, es []RPLEntry, less func(a, b RPLEntry) bool) ([]RPLEntry, int) {
	if pi >= len(pending) {
		return es, 0
	}
	rem := pending[pi:]
	merged := make([]RPLEntry, 0, len(rem)+len(es))
	i, j := 0, 0
	for i < len(rem) && j < len(es) {
		if less(es[j], rem[i]) {
			merged = append(merged, es[j])
			j++
		} else {
			merged = append(merged, rem[i])
			i++
		}
	}
	merged = append(merged, rem[i:]...)
	merged = append(merged, es[j:]...)
	return merged, 0
}

// Peek returns the next entry without consuming it.
func (it *RPLIterator) Peek() (RPLEntry, bool, error) {
	if err := it.fill(); err != nil {
		return RPLEntry{}, false, err
	}
	if it.pi < len(it.pending) {
		return it.pending[it.pi], true, nil
	}
	return RPLEntry{}, false, nil
}

// Next returns the next entry; ok is false once the list is exhausted.
func (it *RPLIterator) Next() (RPLEntry, bool, error) {
	e, ok, err := it.Peek()
	if err != nil || !ok {
		return RPLEntry{}, false, err
	}
	it.pi++
	it.Reads++
	return e, true, nil
}

// BlockMaxScore bounds every unreturned entry's score: emission is
// score-descending, so the next entry's score is the maximum of the rest.
// Mid-block this is tighter than the block header's max; ok is false once
// the list is exhausted (bound 0). TA and NRA tighten their thresholds
// with it.
func (it *RPLIterator) BlockMaxScore() (float64, bool, error) {
	e, ok, err := it.Peek()
	return e.Score, ok, err
}

// ERPLIterator walks the (term, sid) segment of an ERPL in position
// order, with the same one-row-lookahead merge as RPLIterator (v1 rows
// and v2 blocks may interleave).
type ERPLIterator struct {
	prefix   []byte
	cur      listCursor
	started  bool
	curValid bool
	done     bool
	pending  []RPLEntry
	pi       int
	// RowsRead counts storage rows fetched.
	RowsRead int
}

// NewERPLIterator creates an iterator over the ERPL entries of (term, sid).
func NewERPLIterator(s *Store, term string, sid uint32) *ERPLIterator {
	return &ERPLIterator{prefix: erplSIDPrefix(term, sid), cur: s.erplCursor()}
}

// erplKeyTailLess reports whether the 8-byte (doc, end) key tail orders
// before entry p.
func erplKeyTailLess(rest []byte, p RPLEntry) bool {
	doc := beUint32(rest[0:4])
	if doc != p.Doc {
		return doc < p.Doc
	}
	return beUint32(rest[4:8]) < p.End
}

func (it *ERPLIterator) fill() error {
	for {
		if it.pi >= len(it.pending) {
			it.pending = it.pending[:0]
			it.pi = 0
		}
		if !it.curValid {
			if it.done {
				return nil
			}
			var ok bool
			var err error
			if !it.started {
				it.started = true
				ok, err = it.cur.SeekPrefix(it.prefix)
			} else {
				ok, err = it.cur.NextPrefix(it.prefix)
			}
			if err != nil {
				return err
			}
			if !ok {
				it.done = true
				return nil
			}
			it.curValid = true
			it.RowsRead++
		}
		rest := it.cur.Key()[len(it.prefix):]
		if len(rest) != 8 {
			return fmt.Errorf("index: bad ERPL key tail length %d", len(rest))
		}
		if it.pi < len(it.pending) && !erplKeyTailLess(rest, it.pending[it.pi]) {
			return nil
		}
		entries, err := decodeERPLRow(it.cur.Key(), it.cur.Value())
		if err != nil {
			return err
		}
		it.curValid = false
		it.pending, it.pi = mergeRuns(it.pending, it.pi, entries, erplEntryLess)
	}
}

// Peek returns the next entry without consuming it.
func (it *ERPLIterator) Peek() (RPLEntry, bool, error) {
	if err := it.fill(); err != nil {
		return RPLEntry{}, false, err
	}
	if it.pi < len(it.pending) {
		return it.pending[it.pi], true, nil
	}
	return RPLEntry{}, false, nil
}

// Next returns the next entry in (doc, endpos) order; ok is false at end.
func (it *ERPLIterator) Next() (RPLEntry, bool, error) {
	e, ok, err := it.Peek()
	if err != nil || !ok {
		return RPLEntry{}, false, err
	}
	it.pi++
	return e, true, nil
}

// DrainBelow appends to out every remaining entry whose (doc, end)
// orders strictly before the bound, consuming them. Entries inside an
// already-decoded block cost neither a cursor step nor a heap operation —
// the bulk path Merge's frontier skipping is built on.
func (it *ERPLIterator) DrainBelow(doc, end uint32, out []RPLEntry) ([]RPLEntry, error) {
	for {
		if err := it.fill(); err != nil {
			return out, err
		}
		if it.pi >= len(it.pending) {
			return out, nil
		}
		e := it.pending[it.pi]
		if CompareDocEnd(e.Doc, e.End, doc, end) >= 0 {
			return out, nil
		}
		out = append(out, e)
		it.pi++
	}
}

// SkipTo fast-forwards the iterator so the next entry is the first with
// (doc, end) at or after the target, without decoding fully skipped
// blocks: buffered entries are dropped in place, and when the buffer
// empties the remaining rows are pruned by their header bounds (the max
// (doc, end) an ERPL block advertises). It returns the number of entries
// skipped without being decoded.
func (it *ERPLIterator) SkipTo(doc, end uint32) (int, error) {
	skipped := 0
	target := RPLEntry{Doc: doc, End: end}
	for {
		// Drop already-decoded entries below the target.
		for it.pi < len(it.pending) &&
			CompareDocEnd(it.pending[it.pi].Doc, it.pending[it.pi].End, doc, end) < 0 {
			it.pi++
		}
		if !it.curValid {
			if it.done {
				return skipped, nil
			}
			var ok bool
			var err error
			if !it.started {
				it.started = true
				ok, err = it.cur.SeekPrefix(it.prefix)
			} else {
				ok, err = it.cur.NextPrefix(it.prefix)
			}
			if err != nil {
				return skipped, err
			}
			if !ok {
				it.done = true
				return skipped, nil
			}
			it.curValid = true
			it.RowsRead++
		}
		rest := it.cur.Key()[len(it.prefix):]
		if len(rest) != 8 {
			return skipped, fmt.Errorf("index: bad ERPL key tail length %d", len(rest))
		}
		if !erplKeyTailLess(rest, target) {
			// This row (and every later one) starts at or after the
			// target; Next's fill takes over from here.
			return skipped, nil
		}
		// The row starts below the target: its header bounds decide
		// whether it can be skipped whole.
		n, maxDoc, maxEnd, err := erplRowStats(it.cur.Key(), it.cur.Value())
		if err != nil {
			return skipped, err
		}
		if CompareDocEnd(maxDoc, maxEnd, doc, end) < 0 {
			skipped += n
			it.curValid = false
			continue
		}
		// The row straddles the target: decode it and let the drop loop
		// discard its leading entries.
		if err := it.fillRow(); err != nil {
			return skipped, err
		}
	}
}

// fillRow decodes the row under the cursor into the pending buffer.
func (it *ERPLIterator) fillRow() error {
	entries, err := decodeERPLRow(it.cur.Key(), it.cur.Value())
	if err != nil {
		return err
	}
	it.curValid = false
	it.pending, it.pi = mergeRuns(it.pending, it.pi, entries, erplEntryLess)
	return nil
}

// TermERPL merges the per-(term, sid) ERPL segments of one term across a
// sid set into a single position-ordered stream — the first merge step of
// Section 4's two-step evaluation. It is the per-term list L_i that the
// Merge algorithm (Figure 3) consumes.
type TermERPL struct {
	h     erplHeap
	iters []*ERPLIterator
}

// NewTermERPL opens iterators for every sid and primes the merge heap.
func NewTermERPL(s *Store, term string, sids []uint32) (*TermERPL, error) {
	m := &TermERPL{}
	for _, sid := range sids {
		it := NewERPLIterator(s, term, sid)
		m.iters = append(m.iters, it)
		e, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.h = append(m.h, erplStream{head: e, it: it})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

// Next returns the next entry across all sids in (doc, endpos) order.
func (m *TermERPL) Next() (RPLEntry, bool, error) {
	if m.h.Len() == 0 {
		return RPLEntry{}, false, nil
	}
	top := m.h[0]
	out := top.head
	e, ok, err := top.it.Next()
	if err != nil {
		return RPLEntry{}, false, err
	}
	if ok {
		m.h[0].head = e
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return out, true, nil
}

// Peek returns the next entry without consuming it.
func (m *TermERPL) Peek() (RPLEntry, bool) {
	if m.h.Len() == 0 {
		return RPLEntry{}, false
	}
	return m.h[0].head, true
}

// secondHead returns the smallest head excluding the heap top — the point
// up to which the top stream can be drained without consulting the heap.
func (m *TermERPL) secondHead() (RPLEntry, bool) {
	switch m.h.Len() {
	case 0, 1:
		return RPLEntry{}, false
	case 2:
		return m.h[1].head, true
	default:
		a, b := m.h[1].head, m.h[2].head
		if CompareDocEnd(b.Doc, b.End, a.Doc, a.End) < 0 {
			return b, true
		}
		return a, true
	}
}

// DrainBelow appends to out every remaining entry whose (doc, end)
// orders strictly before the bound, in stream order, consuming them. The
// top stream is drained in bulk up to min(bound, second head), costing
// one heap fix per drained run instead of one per entry.
func (m *TermERPL) DrainBelow(doc, end uint32, out []RPLEntry) ([]RPLEntry, error) {
	for m.h.Len() > 0 {
		top := m.h[0]
		if CompareDocEnd(top.head.Doc, top.head.End, doc, end) >= 0 {
			break
		}
		bd, be := doc, end
		if s, ok := m.secondHead(); ok && CompareDocEnd(s.Doc, s.End, bd, be) < 0 {
			bd, be = s.Doc, s.End
		}
		out = append(out, top.head)
		var err error
		out, err = top.it.DrainBelow(bd, be, out)
		if err != nil {
			return out, err
		}
		e, ok, err := top.it.Next()
		if err != nil {
			return out, err
		}
		if ok {
			m.h[0].head = e
			heap.Fix(&m.h, 0)
		} else {
			heap.Pop(&m.h)
		}
	}
	return out, nil
}

// SkipTo fast-forwards every sid stream to the first entry at or after
// the target (doc, end), pruning whole blocks by their header bounds. It
// returns the number of entries skipped without being decoded.
func (m *TermERPL) SkipTo(doc, end uint32) (int, error) {
	skipped := 0
	for i := range m.h {
		s := &m.h[i]
		if CompareDocEnd(s.head.Doc, s.head.End, doc, end) >= 0 {
			continue
		}
		n, err := s.it.SkipTo(doc, end)
		if err != nil {
			return skipped, err
		}
		skipped += n
	}
	// Refresh heads that were passed by the skip and drop exhausted
	// streams, then restore the heap order.
	live := m.h[:0]
	for _, s := range m.h {
		if CompareDocEnd(s.head.Doc, s.head.End, doc, end) >= 0 {
			live = append(live, s)
			continue
		}
		e, ok, err := s.it.Next()
		if err != nil {
			return skipped, err
		}
		if ok {
			live = append(live, erplStream{head: e, it: s.it})
		}
	}
	m.h = live
	heap.Init(&m.h)
	return skipped, nil
}

// RowsRead sums the storage rows fetched across every sid stream — the
// cursor-step cost the block encoding amortizes.
func (m *TermERPL) RowsRead() int {
	total := 0
	for _, it := range m.iters {
		total += it.RowsRead
	}
	return total
}

type erplStream struct {
	head RPLEntry
	it   *ERPLIterator
}

type erplHeap []erplStream

func (h erplHeap) Len() int { return len(h) }
func (h erplHeap) Less(i, j int) bool {
	a, b := h[i].head, h[j].head
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.End < b.End
}
func (h erplHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *erplHeap) Push(x any)   { *h = append(*h, x.(erplStream)) }
func (h *erplHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// CompareDocEnd orders two (doc, end) element identities.
func CompareDocEnd(aDoc, aEnd, bDoc, bEnd uint32) int {
	switch {
	case aDoc != bDoc:
		if aDoc < bDoc {
			return -1
		}
		return 1
	case aEnd != bEnd:
		if aEnd < bEnd {
			return -1
		}
		return 1
	default:
		return 0
	}
}
