package index

import "bytes"

// positionsInSpan returns the offsets of term occurrences strictly inside
// the element's span, in order.
func positionsInSpan(s *Store, term string, e Element) ([]uint32, error) {
	if e.IsDummy() || e.Length == 0 {
		return nil, nil
	}
	lo := Pos{Doc: e.Doc, Off: e.Start() + 1}
	hi := Pos{Doc: e.Doc, Off: e.End}
	prefix := termPrefix(term)
	cur := s.Postings.Cursor()
	ok, err := cur.SeekFloor(postingKey(term, lo))
	if err != nil {
		return nil, err
	}
	if !ok || !bytes.HasPrefix(cur.Key(), prefix) {
		ok, err = cur.SeekPrefix(prefix)
		if err != nil || !ok {
			return nil, err
		}
	}
	var out []uint32
	for {
		frag, err := decodePostingValue(cur.Value())
		if err != nil {
			return nil, err
		}
		for _, p := range frag {
			if p.IsMax() || !p.Less(hi) {
				return out, nil
			}
			if !p.Less(lo) {
				out = append(out, p.Off)
			}
		}
		ok, err = cur.NextPrefix(prefix)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
	}
}

// maxPhraseGap is the largest byte gap tolerated between the end of one
// phrase word and the start of the next: a space plus one punctuation
// byte. Kept below 3 so that even a minimal intervening tag ("<b>")
// breaks the phrase.
const maxPhraseGap = 2

// PhraseFreqInSpan counts adjacent occurrences of the word sequence
// strictly inside the element's span: each next word must start within
// maxPhraseGap bytes of the previous word's end. Quoted NEXI phrases
// ("genetic algorithm") use this for their proximity bonus.
func PhraseFreqInSpan(s *Store, words []string, e Element) (int, error) {
	if len(words) == 0 {
		return 0, nil
	}
	if len(words) == 1 {
		return TFInSpan(s, words[0], e)
	}
	positions := make([][]uint32, len(words))
	for i, w := range words {
		ps, err := positionsInSpan(s, w, e)
		if err != nil {
			return 0, err
		}
		if len(ps) == 0 {
			return 0, nil
		}
		positions[i] = ps
	}
	count := 0
	for _, start := range positions[0] {
		cur := start + uint32(len(words[0]))
		matched := true
		for j := 1; j < len(words); j++ {
			next, ok := firstInWindow(positions[j], cur, cur+maxPhraseGap)
			if !ok {
				matched = false
				break
			}
			cur = next + uint32(len(words[j]))
		}
		if matched {
			count++
		}
	}
	return count, nil
}

// firstInWindow returns the first offset in sorted ps with lo <= off <= hi.
func firstInWindow(ps []uint32, lo, hi uint32) (uint32, bool) {
	// Binary search for lower bound.
	a, b := 0, len(ps)
	for a < b {
		mid := (a + b) / 2
		if ps[mid] < lo {
			a = mid + 1
		} else {
			b = mid
		}
	}
	if a < len(ps) && ps[a] <= hi {
		return ps[a], true
	}
	return 0, false
}
