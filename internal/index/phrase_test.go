package index

import (
	"testing"

	"trex/internal/corpus"
	"trex/internal/storage"
	"trex/internal/summary"
)

func phraseEnv(t *testing.T, docs ...string) (*Store, *summary.Summary) {
	t.Helper()
	col := &corpus.Collection{}
	for i, d := range docs {
		col.Docs = append(col.Docs, corpus.Document{ID: i, Data: []byte(d)})
	}
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.OpenMemory()
	t.Cleanup(func() { db.Close() })
	st, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	return st, sum
}

func rootElement(t *testing.T, st *Store, sid uint32) Element {
	t.Helper()
	it := NewElementIterator(st, sid)
	e, err := it.FirstElement()
	if err != nil || e.IsDummy() {
		t.Fatalf("no element for sid %d: %v", sid, err)
	}
	return e
}

func TestPhraseFreqAdjacent(t *testing.T) {
	st, _ := phraseEnv(t, `<a>genetic algorithm works, genetic algorithm wins</a>`)
	e := rootElement(t, st, 1)
	got, err := PhraseFreqInSpan(st, []string{"genetic", "algorithm"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("phrase freq = %d, want 2", got)
	}
}

func TestPhraseFreqNonAdjacent(t *testing.T) {
	st, _ := phraseEnv(t, `<a>genetic mutation uses an algorithm</a>`)
	e := rootElement(t, st, 1)
	got, err := PhraseFreqInSpan(st, []string{"genetic", "algorithm"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("phrase freq = %d, want 0 (words apart)", got)
	}
}

func TestPhraseFreqAcrossMarkup(t *testing.T) {
	// Markup between words exceeds the gap: not a phrase occurrence.
	st, _ := phraseEnv(t, `<a>genetic<b>algorithm</b></a>`)
	e := rootElement(t, st, 1)
	got, err := PhraseFreqInSpan(st, []string{"genetic", "algorithm"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("phrase freq across markup = %d, want 0", got)
	}
}

func TestPhraseFreqPunctuationGap(t *testing.T) {
	// A comma plus space still counts as adjacent (gap <= 3 bytes).
	st, _ := phraseEnv(t, `<a>genetic, algorithm</a>`)
	e := rootElement(t, st, 1)
	got, err := PhraseFreqInSpan(st, []string{"genetic", "algorithm"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("phrase freq with comma = %d, want 1", got)
	}
}

func TestPhraseFreqThreeWords(t *testing.T) {
	st, _ := phraseEnv(t, `<a>state space explosion and state space but no explosion</a>`)
	e := rootElement(t, st, 1)
	got, err := PhraseFreqInSpan(st, []string{"state", "space", "explosion"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("3-word phrase freq = %d, want 1", got)
	}
}

func TestPhraseFreqSingleWordDelegates(t *testing.T) {
	st, _ := phraseEnv(t, `<a>solo appears solo twice solo</a>`)
	e := rootElement(t, st, 1)
	got, err := PhraseFreqInSpan(st, []string{"solo"}, e)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("single-word phrase = %d, want 3", got)
	}
	// Empty phrase.
	if got, err := PhraseFreqInSpan(st, nil, e); err != nil || got != 0 {
		t.Fatalf("empty phrase = %d, %v", got, err)
	}
	// Missing word short-circuits.
	if got, err := PhraseFreqInSpan(st, []string{"solo", "absent"}, e); err != nil || got != 0 {
		t.Fatalf("missing word = %d, %v", got, err)
	}
}

func TestPhraseFreqSubElementScope(t *testing.T) {
	// The phrase occurs in one sibling only; each element sees its own.
	st, sum := phraseEnv(t, `<a><b>genetic algorithm</b><b>algorithm genetic</b></a>`)
	var bsid uint32
	for _, n := range sum.Nodes {
		if n.Label == "b" {
			bsid = uint32(n.SID)
		}
	}
	it := NewElementIterator(st, bsid)
	first, err := it.FirstElement()
	if err != nil {
		t.Fatal(err)
	}
	second, err := it.NextElementAfter(first.EndPos())
	if err != nil {
		t.Fatal(err)
	}
	f1, err := PhraseFreqInSpan(st, []string{"genetic", "algorithm"}, first)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := PhraseFreqInSpan(st, []string{"genetic", "algorithm"}, second)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 1 || f2 != 0 {
		t.Fatalf("sibling phrase freqs = %d, %d; want 1, 0", f1, f2)
	}
}
