package index

import "bytes"

// TFInSpan counts the occurrences of term strictly inside the element's
// byte span — the random access the threshold algorithm uses to complete
// a candidate's score for lists it has not reached under sorted access.
// It costs one floor-seek into the fragmented posting list plus a scan of
// the overlapping fragments.
func TFInSpan(s *Store, term string, e Element) (int, error) {
	if e.IsDummy() || e.Length == 0 {
		return 0, nil
	}
	lo := Pos{Doc: e.Doc, Off: e.Start() + 1} // strict containment
	hi := Pos{Doc: e.Doc, Off: e.End}         // exclusive
	prefix := termPrefix(term)
	cur := s.Postings.Cursor()

	// Find the fragment whose first position is the greatest <= lo; it may
	// hold positions inside the span even though its key precedes lo.
	ok, err := cur.SeekFloor(postingKey(term, lo))
	if err != nil {
		return 0, err
	}
	if !ok || !bytes.HasPrefix(cur.Key(), prefix) {
		// No fragment at or before lo for this term; start at the term's
		// first fragment (all of its positions are > lo or none exist).
		ok, err = cur.SeekPrefix(prefix)
		if err != nil || !ok {
			return 0, err
		}
	}
	tf := 0
	for {
		frag, err := decodePostingValue(cur.Value())
		if err != nil {
			return 0, err
		}
		for _, p := range frag {
			if p.IsMax() || !p.Less(hi) {
				return tf, nil
			}
			if !p.Less(lo) { // lo <= p < hi
				tf++
			}
		}
		ok, err = cur.NextPrefix(prefix)
		if err != nil {
			return 0, err
		}
		if !ok {
			return tf, nil
		}
	}
}
