package index

import (
	"testing"

	"trex/internal/storage"
)

func openEmptyStore(t *testing.T) *Store {
	t.Helper()
	db := storage.OpenMemory()
	t.Cleanup(func() { db.Close() })
	st, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRPLIteratorDescendingScores(t *testing.T) {
	st := openEmptyStore(t)
	entries := []RPLEntry{
		{Score: 1.0, SID: 1, Doc: 1, End: 100, Length: 50},
		{Score: 5.0, SID: 2, Doc: 1, End: 200, Length: 60},
		{Score: 3.0, SID: 1, Doc: 2, End: 300, Length: 70},
		{Score: 0.5, SID: 3, Doc: 2, End: 400, Length: 80},
	}
	for _, e := range entries {
		if err := st.PutRPL("xml", e); err != nil {
			t.Fatal(err)
		}
	}
	// A different term's entries must not leak in.
	if err := st.PutRPL("other", RPLEntry{Score: 99, SID: 1, Doc: 1, End: 1}); err != nil {
		t.Fatal(err)
	}
	it := NewRPLIterator(st, "xml")
	var scores []float64
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		scores = append(scores, e.Score)
	}
	want := []float64{5.0, 3.0, 1.0, 0.5}
	if len(scores) != len(want) {
		t.Fatalf("scores = %v, want %v", scores, want)
	}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("scores = %v, want %v", scores, want)
		}
	}
	if it.Reads != 4 {
		t.Fatalf("Reads = %d, want 4", it.Reads)
	}
	// Post-end Next stays exhausted.
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("post-end Next = %v, %v", ok, err)
	}
}

func TestRPLIteratorEmpty(t *testing.T) {
	st := openEmptyStore(t)
	it := NewRPLIterator(st, "nothing")
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("empty Next = %v, %v", ok, err)
	}
}

func TestERPLIteratorPositionOrderPerSID(t *testing.T) {
	st := openEmptyStore(t)
	entries := []RPLEntry{
		{Score: 1, SID: 7, Doc: 2, End: 50},
		{Score: 2, SID: 7, Doc: 1, End: 900},
		{Score: 3, SID: 7, Doc: 1, End: 30},
		{Score: 4, SID: 8, Doc: 0, End: 10}, // other sid, filtered out
	}
	for _, e := range entries {
		if err := st.PutERPL("q", e); err != nil {
			t.Fatal(err)
		}
	}
	it := NewERPLIterator(st, "q", 7)
	var got []RPLEntry
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, e)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3", len(got))
	}
	if got[0].End != 30 || got[1].End != 900 || got[2].Doc != 2 {
		t.Fatalf("order = %+v", got)
	}
}

func TestTermERPLMergesAcrossSIDs(t *testing.T) {
	st := openEmptyStore(t)
	// Three sids with interleaved positions.
	puts := []RPLEntry{
		{Score: 1, SID: 1, Doc: 0, End: 10},
		{Score: 2, SID: 1, Doc: 0, End: 400},
		{Score: 3, SID: 2, Doc: 0, End: 50},
		{Score: 4, SID: 2, Doc: 1, End: 5},
		{Score: 5, SID: 3, Doc: 0, End: 200},
		{Score: 6, SID: 4, Doc: 0, End: 1}, // not in the query's sid set
	}
	for _, e := range puts {
		if err := st.PutERPL("t", e); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewTermERPL(st, "t", []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var ends []uint32
	var docs []uint32
	for {
		e, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		ends = append(ends, e.End)
		docs = append(docs, e.Doc)
	}
	wantEnds := []uint32{10, 50, 200, 400, 5}
	wantDocs := []uint32{0, 0, 0, 0, 1}
	if len(ends) != len(wantEnds) {
		t.Fatalf("merged %d entries, want %d (%v)", len(ends), len(wantEnds), ends)
	}
	for i := range wantEnds {
		if ends[i] != wantEnds[i] || docs[i] != wantDocs[i] {
			t.Fatalf("merge order: ends=%v docs=%v", ends, docs)
		}
	}
}

func TestTermERPLEmptySIDSet(t *testing.T) {
	st := openEmptyStore(t)
	m, err := NewTermERPL(st, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.Next(); ok || err != nil {
		t.Fatalf("empty merge Next = %v, %v", ok, err)
	}
}

func TestCatalog(t *testing.T) {
	st := openEmptyStore(t)
	ok, err := st.IsBuilt(KindRPL, "xml", 7)
	if err != nil || ok {
		t.Fatalf("IsBuilt before = %v, %v", ok, err)
	}
	if err := st.MarkBuilt(KindRPL, "xml", 7, 150, 4096); err != nil {
		t.Fatal(err)
	}
	ok, err = st.IsBuilt(KindRPL, "xml", 7)
	if err != nil || !ok {
		t.Fatalf("IsBuilt after = %v, %v", ok, err)
	}
	// Different kind, term, or sid remains unbuilt.
	for _, probe := range []struct {
		kind ListKind
		term string
		sid  uint32
	}{
		{KindERPL, "xml", 7},
		{KindRPL, "xmlx", 7},
		{KindRPL, "xml", 8},
	} {
		ok, err := st.IsBuilt(probe.kind, probe.term, probe.sid)
		if err != nil || ok {
			t.Fatalf("IsBuilt(%v,%q,%d) = %v, %v", probe.kind, probe.term, probe.sid, ok, err)
		}
	}
	n, b, err := st.BuiltSize(KindRPL, "xml", 7)
	if err != nil || n != 150 || b != 4096 {
		t.Fatalf("BuiltSize = %d, %d, %v", n, b, err)
	}
	if n, b, err := st.BuiltSize(KindRPL, "nope", 1); err != nil || n != 0 || b != 0 {
		t.Fatalf("BuiltSize missing = %d, %d, %v", n, b, err)
	}
	// Coverage requires the full cross product.
	if err := st.MarkBuilt(KindRPL, "query", 7, 10, 100); err != nil {
		t.Fatal(err)
	}
	cov, err := st.Covered(KindRPL, []string{"xml", "query"}, []uint32{7})
	if err != nil || !cov {
		t.Fatalf("Covered = %v, %v", cov, err)
	}
	cov, err = st.Covered(KindRPL, []string{"xml", "query"}, []uint32{7, 8})
	if err != nil || cov {
		t.Fatalf("partial Covered = %v, %v", cov, err)
	}
	if KindRPL.String() != "RPL" || KindERPL.String() != "ERPL" {
		t.Fatalf("kind strings: %s, %s", KindRPL, KindERPL)
	}
}
