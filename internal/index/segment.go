package index

import (
	"encoding/binary"
	"fmt"

	"trex/internal/segment"
	"trex/internal/storage"
)

// The segment list backend serves committed RPL/ERPL reads from an
// immutable memory-mapped segment (internal/segment) instead of the
// pager's B+trees. The trees stay the write path and the source of
// truth: every list mutation lands there first and marks the segment
// stale, so reads between a mutation and the next CommitLists fall back
// to the trees (read-your-writes for the advisor's interleaved
// measure/drop cycle). CommitLists rebuilds the segment from the trees,
// stamps it with the list epoch, and flips the generation — after which
// cursors are served decode-free from the mapping again.
//
// Consistency across crashes hangs on the epoch: it is bumped (in the
// IndexMeta tree, so it commits atomically with the list change) on the
// first mutation after a commit, and the segment is stamped with it.
// AttachSegments serves an existing generation only when its stamp
// equals the committed epoch; any mismatch — a crash between the
// manifest swap and the pager flush, a flush that bypassed CommitLists —
// rebuilds from the trees. A crash between the segment fsync and the
// manifest swap leaves the manifest naming the old generation, whose
// stamp still matches the old committed epoch: the old generation
// serves intact.
var (
	metaListBackendKey = []byte("list-backend")
	metaListEpochKey   = []byte("list-epoch")
)

// ListBackendSegment is the persisted marker naming the segment backend;
// absence of the marker means the pager backend.
const ListBackendSegment = "segment"

// PutListBackend persists the list-backend marker so Open auto-attaches
// segments on the next start.
func (s *Store) PutListBackend(name string) error {
	return s.Meta.Put(metaListBackendKey, []byte(name))
}

// ListBackend returns the persisted marker ("" = pager).
func (s *Store) ListBackend() (string, error) {
	v, err := s.Meta.Get(metaListBackendKey)
	if err == storage.ErrNotFound {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return string(v), nil
}

// listEpoch reads the committed-or-staged list epoch (0 when unset).
func (s *Store) listEpoch() (uint64, error) {
	v, err := s.Meta.Get(metaListEpochKey)
	if err == storage.ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("index: bad list-epoch value")
	}
	return binary.BigEndian.Uint64(v), nil
}

// ListEpoch exposes the committed-or-staged list epoch: it advances on
// the first list mutation after each segment commit, and it is the
// persisted anchor the engine's in-memory write epoch (the result
// cache's invalidation key) is seeded from at open.
func (s *Store) ListEpoch() (uint64, error) { return s.listEpoch() }

func (s *Store) putListEpoch(e uint64) error {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], e)
	return s.Meta.Put(metaListEpochKey, v[:])
}

// AttachSegments wires a segment store under the RPL/ERPL read path. If
// the store's current generation is stamped with the committed list
// epoch it serves immediately; otherwise (fresh directory, crashed
// commit, restored backup) the segment is rebuilt from the trees first.
func (s *Store) AttachSegments(ss *segment.Store) error {
	s.seg = ss
	epoch, err := s.listEpoch()
	if err != nil {
		return err
	}
	if cur := ss.Current(); cur != nil && cur.Epoch() == epoch {
		s.segClean.Store(true)
		return nil
	}
	return s.CommitLists()
}

// Segments returns the attached segment store (nil for the pager
// backend).
func (s *Store) Segments() *segment.Store { return s.seg }

// PinLists / UnpinLists bracket a read operation: while pinned, no
// segment generation is unmapped, so cursors stay valid across a
// concurrent commit. No-ops on the pager backend.
func (s *Store) PinLists() {
	if s.seg != nil {
		s.seg.Pin()
	}
}

func (s *Store) UnpinLists() {
	if s.seg != nil {
		s.seg.Unpin()
	}
}

// CloseSegments releases the segment mappings (after the DB is done).
func (s *Store) CloseSegments() error {
	if s.seg == nil {
		return nil
	}
	return s.seg.Close()
}

// noteListChange marks the segment stale ahead of a list mutation. The
// first mutation after a commit also bumps the epoch in IndexMeta, so
// whatever flush eventually persists the mutation persists the new epoch
// with it and the now-stale generation can never be mistaken for
// current after a restart.
func (s *Store) noteListChange() error {
	if s.seg == nil {
		return nil
	}
	if !s.segClean.CompareAndSwap(true, false) {
		return nil // already stale; epoch already bumped
	}
	epoch, err := s.listEpoch()
	if err != nil {
		return err
	}
	return s.putListEpoch(epoch + 1)
}

// CommitLists publishes the trees' current RPL/ERPL rows as the next
// segment generation: stream both trees into a fresh segment, fsync,
// flip the manifest. The engine calls it at each maintenance commit
// point, just before the pager flush. No-op on the pager backend.
func (s *Store) CommitLists() error {
	if s.seg == nil {
		return nil
	}
	epoch, err := s.listEpoch()
	if err != nil {
		return err
	}
	err = s.seg.Commit(epoch, func(w *segment.Writer) error {
		for _, t := range []struct {
			name string
			tree *storage.Tree
		}{
			{TableRPLs, s.RPLs},
			{TableERPLs, s.ERPLs},
		} {
			w.BeginTable(t.name)
			cur := t.tree.Cursor()
			ok, err := cur.First()
			for ; ok; ok, err = cur.Next() {
				if err := w.Append(cur.Key(), cur.Value()); err != nil {
					return err
				}
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.segClean.Store(true)
	return nil
}

// rplCursor returns the RPL read cursor: the mapped segment when it is
// attached and in sync with the trees, the pager tree otherwise.
func (s *Store) rplCursor() listCursor {
	if s.seg != nil && s.segClean.Load() {
		if c := s.seg.ListCursor(TableRPLs); c != nil {
			return c
		}
	}
	return s.RPLs.Cursor()
}

// erplCursor is rplCursor for the ERPL table.
func (s *Store) erplCursor() listCursor {
	if s.seg != nil && s.segClean.Load() {
		if c := s.seg.ListCursor(TableERPLs); c != nil {
			return c
		}
	}
	return s.ERPLs.Cursor()
}

// IOStat is a combined I/O snapshot across both read backends, so
// per-query attribution (retrieval.Stats, trace spans) stays honest when
// list reads bypass the pager.
type IOStat struct {
	Storage storage.Stats
	// SegmentRows / SegmentBytes count rows and key+value bytes served
	// from the mapped segment.
	SegmentRows  uint64
	SegmentBytes uint64
	// SegmentSwaps counts generation flips; a delta > 0 inside a
	// measurement window taints exactness the way pager writes do.
	SegmentSwaps uint64
}

// IOStats snapshots the pager and segment counters together.
func (s *Store) IOStats() IOStat {
	st := IOStat{Storage: s.DB.Stats()}
	if s.seg != nil {
		st.SegmentRows = s.seg.RowsRead()
		st.SegmentBytes = s.seg.BytesRead()
		st.SegmentSwaps = s.seg.Swaps()
	}
	return st
}

// Sub returns the counter delta a - b.
func (a IOStat) Sub(b IOStat) IOStat {
	return IOStat{
		Storage:      a.Storage.Sub(b.Storage),
		SegmentRows:  a.SegmentRows - b.SegmentRows,
		SegmentBytes: a.SegmentBytes - b.SegmentBytes,
		SegmentSwaps: a.SegmentSwaps - b.SegmentSwaps,
	}
}
