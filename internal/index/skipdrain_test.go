package index

// Block-boundary edge tests for ERPLIterator.SkipTo / DrainBelow and
// their multi-sid TermERPL counterparts: skip targets exactly at a block
// header's (maxDoc, maxEnd) bound, one past it, a one-entry trailing
// block, mixed v1/v2 row interleaves, and the count-0 "empty block" a
// well-formed encoder can never emit (it must decode as corrupt, not as
// silently empty).

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"testing"

	"trex/internal/storage"
)

func skipDrainStore(t *testing.T) *Store {
	t.Helper()
	db := storage.OpenMemory()
	t.Cleanup(func() { db.Close() })
	s, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sdEnt builds a deterministic entry; End is Doc+2 so (doc, end) targets
// between entries exist on both sides of every stored pair.
func sdEnt(sid, doc uint32) RPLEntry {
	return RPLEntry{Score: 1 + float64(doc)/7, SID: sid, Doc: doc, End: doc + 2, Length: doc%9 + 1}
}

// writeBlocked encodes the entries as v2 block rows and asserts the
// block layout the boundary cases below rely on.
func writeBlocked(t *testing.T, s *Store, term string, entries []RPLEntry, wantBlocks []int) {
	t.Helper()
	rows := EncodeERPLBlocks(term, entries)
	if len(rows) != len(wantBlocks) {
		t.Fatalf("%q encoded into %d blocks, want %d (BlockTargetEntries changed?)", term, len(rows), len(wantBlocks))
	}
	for i, want := range wantBlocks {
		if len(rows[i].Entries) != want {
			t.Fatalf("%q block %d holds %d entries, want %d", term, i, len(rows[i].Entries), want)
		}
	}
	if err := s.WriteListRows(KindERPL, rows); err != nil {
		t.Fatal(err)
	}
}

// TestERPLIteratorSkipToBlockBounds drives SkipTo over a 257-entry
// single-sid list: two full 128-entry blocks plus a one-entry trailing
// block, with targets pinned to every boundary flavor.
func TestERPLIteratorSkipToBlockBounds(t *testing.T) {
	s := skipDrainStore(t)
	var entries []RPLEntry
	for doc := uint32(0); doc < 257; doc++ {
		entries = append(entries, sdEnt(1, doc))
	}
	writeBlocked(t, s, "tm", entries, []int{128, 128, 1})

	cases := []struct {
		name        string
		doc, end    uint32
		wantSkipped int
		wantDoc     uint32 // next doc after the skip
		exhausted   bool
	}{
		{name: "at first entry", doc: 0, end: 0, wantSkipped: 0, wantDoc: 0},
		// Block 0's header bound is its last entry (127, 129): a target
		// equal to the bound straddles the block (the bound entry itself
		// must still be returned), so nothing skips undecoded.
		{name: "exactly at block 0 header bound", doc: 127, end: 129, wantSkipped: 0, wantDoc: 127},
		// One past the bound: block 0 skips whole without decoding.
		{name: "one past block 0 header bound", doc: 127, end: 130, wantSkipped: 128, wantDoc: 128},
		{name: "exactly at block 1 first entry", doc: 128, end: 130, wantSkipped: 128, wantDoc: 128},
		{name: "between block 1 and trailing block", doc: 256, end: 0, wantSkipped: 256, wantDoc: 256},
		// The trailing block holds a single entry (256, 258); a target
		// equal to it straddles, one past it skips the block whole.
		{name: "exactly at trailing single-entry block", doc: 256, end: 258, wantSkipped: 256, wantDoc: 256},
		{name: "one past trailing block", doc: 256, end: 259, wantSkipped: 257, exhausted: true},
		{name: "far past the list", doc: 1000, end: 0, wantSkipped: 257, exhausted: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := NewERPLIterator(s, "tm", 1)
			skipped, err := it.SkipTo(tc.doc, tc.end)
			if err != nil {
				t.Fatal(err)
			}
			if skipped != tc.wantSkipped {
				t.Fatalf("skipped %d entries undecoded, want %d", skipped, tc.wantSkipped)
			}
			e, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tc.exhausted {
				if ok {
					t.Fatalf("iterator yielded %+v past the end", e)
				}
				return
			}
			if !ok || e != sdEnt(1, tc.wantDoc) {
				t.Fatalf("next after skip = %+v ok=%v, want entry for doc %d", e, ok, tc.wantDoc)
			}
		})
	}

	t.Run("skip within already-decoded block", func(t *testing.T) {
		it := NewERPLIterator(s, "tm", 1)
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				t.Fatalf("prime Next %d: %v %v", i, ok, err)
			}
		}
		// Block 0 is decoded; the target sits inside it, so the skip is
		// a pure buffered drop: nothing skips undecoded.
		skipped, err := it.SkipTo(100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 0 {
			t.Fatalf("buffered drop reported %d undecoded skips", skipped)
		}
		if e, ok, err := it.Next(); err != nil || !ok || e != sdEnt(1, 100) {
			t.Fatalf("next = %+v ok=%v err=%v, want doc 100", e, ok, err)
		}
	})
}

// TestERPLIteratorDrainBelowBlockBounds checks the strict-bound contract
// across block boundaries on the same 257-entry layout.
func TestERPLIteratorDrainBelowBlockBounds(t *testing.T) {
	s := skipDrainStore(t)
	var entries []RPLEntry
	for doc := uint32(0); doc < 257; doc++ {
		entries = append(entries, sdEnt(1, doc))
	}
	writeBlocked(t, s, "tm", entries, []int{128, 128, 1})

	cases := []struct {
		name      string
		doc, end  uint32
		wantN     int
		wantPeek  uint32
		exhausted bool
	}{
		{name: "mid block", doc: 5, end: 0, wantN: 5, wantPeek: 5},
		// The bound is exclusive: an entry equal to it stays.
		{name: "exactly at an entry", doc: 2, end: 4, wantN: 2, wantPeek: 2},
		{name: "across a block boundary", doc: 129, end: 0, wantN: 129, wantPeek: 129},
		{name: "exactly at block 1 first entry", doc: 128, end: 130, wantN: 128, wantPeek: 128},
		{name: "past the trailing block", doc: 1000, end: 0, wantN: 257, exhausted: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := NewERPLIterator(s, "tm", 1)
			out, err := it.DrainBelow(tc.doc, tc.end, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != tc.wantN {
				t.Fatalf("drained %d entries, want %d", len(out), tc.wantN)
			}
			for i, e := range out {
				if e != sdEnt(1, uint32(i)) {
					t.Fatalf("drained entry %d = %+v, want doc %d", i, e, i)
				}
			}
			e, ok, err := it.Peek()
			if err != nil {
				t.Fatal(err)
			}
			if tc.exhausted {
				if ok {
					t.Fatalf("peek past full drain = %+v", e)
				}
				return
			}
			if !ok || e.Doc != tc.wantPeek {
				t.Fatalf("peek after drain = %+v ok=%v, want doc %d", e, ok, tc.wantPeek)
			}
		})
	}
}

// TestERPLIteratorMixedFormats interleaves v2 blocks (even docs) with v1
// row-per-entry rows (odd docs) in one (term, sid) segment: iteration
// order, skip accounting, and drains must be format-blind.
func TestERPLIteratorMixedFormats(t *testing.T) {
	s := skipDrainStore(t)
	var blocked []RPLEntry
	for doc := uint32(0); doc < 200; doc += 2 {
		blocked = append(blocked, sdEnt(1, doc))
	}
	writeBlocked(t, s, "mx", blocked, []int{100})
	for doc := uint32(1); doc < 200; doc += 2 {
		if err := s.PutERPL("mx", sdEnt(1, doc)); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("full iteration is position-ordered", func(t *testing.T) {
		it := NewERPLIterator(s, "mx", 1)
		for doc := uint32(0); doc < 200; doc++ {
			e, ok, err := it.Next()
			if err != nil || !ok || e != sdEnt(1, doc) {
				t.Fatalf("entry %d = %+v ok=%v err=%v", doc, e, ok, err)
			}
		}
		if _, ok, _ := it.Next(); ok {
			t.Fatal("iterator did not end after 200 entries")
		}
	})

	t.Run("skip counts only undecoded rows", func(t *testing.T) {
		it := NewERPLIterator(s, "mx", 1)
		// The single v2 block (docs 0..198) straddles any mid-list
		// target and decodes; only the 25 one-entry v1 rows with doc <
		// 50 skip undecoded.
		skipped, err := it.SkipTo(50, 0)
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 25 {
			t.Fatalf("skipped %d entries undecoded, want 25 v1 rows", skipped)
		}
		for doc := uint32(50); doc < 200; doc++ {
			e, ok, err := it.Next()
			if err != nil || !ok || e != sdEnt(1, doc) {
				t.Fatalf("after skip, entry %d = %+v ok=%v err=%v", doc, e, ok, err)
			}
		}
	})

	t.Run("drain crosses formats in order", func(t *testing.T) {
		it := NewERPLIterator(s, "mx", 1)
		out, err := it.DrainBelow(100, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("drained %d entries, want 100", len(out))
		}
		for i, e := range out {
			if e != sdEnt(1, uint32(i)) {
				t.Fatalf("drained entry %d = %+v", i, e)
			}
		}
	})
}

// TestTermERPLSkipDrainAcrossSIDs merges three sid streams (sid 2 stored
// as v1 rows, the others as two v2 blocks each) and checks SkipTo /
// DrainBelow against a brute-force reference.
func TestTermERPLSkipDrainAcrossSIDs(t *testing.T) {
	s := skipDrainStore(t)
	var all []RPLEntry
	for _, sid := range []uint32{1, 2, 3} {
		var stream []RPLEntry
		for i := uint32(0); i < 300; i++ {
			stream = append(stream, sdEnt(sid, sid-1+3*i))
		}
		all = append(all, stream...)
		if sid == 2 {
			for _, e := range stream {
				if err := s.PutERPL("tt", e); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			writeBlocked(t, s, "tt", stream, []int{128, 128, 44})
		}
	}
	// The merged stream is (doc, end)-ordered across sids — unlike a
	// single segment's (sid, doc, end) key order.
	sort.Slice(all, func(i, j int) bool {
		return CompareDocEnd(all[i].Doc, all[i].End, all[j].Doc, all[j].End) < 0
	})

	expectFrom := func(doc, end uint32) []RPLEntry {
		var out []RPLEntry
		for _, e := range all {
			if CompareDocEnd(e.Doc, e.End, doc, end) >= 0 {
				out = append(out, e)
			}
		}
		return out
	}

	t.Run("drain below then next", func(t *testing.T) {
		m, err := NewTermERPL(s, "tt", []uint32{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.DrainBelow(75, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := len(all) - len(expectFrom(75, 0))
		if len(out) != want {
			t.Fatalf("drained %d entries, want %d", len(out), want)
		}
		for i, e := range out {
			if e != all[i] {
				t.Fatalf("drained entry %d = %+v, want %+v", i, e, all[i])
			}
		}
		for _, wantE := range expectFrom(75, 0) {
			e, ok, err := m.Next()
			if err != nil || !ok || e != wantE {
				t.Fatalf("after drain, next = %+v ok=%v err=%v, want %+v", e, ok, err, wantE)
			}
		}
	})

	t.Run("skip prunes whole blocks per stream", func(t *testing.T) {
		m, err := NewTermERPL(s, "tt", []uint32{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		// Priming the heads decoded each stream's first block, so those
		// entries drop buffered. Block 1 of streams 1 and 3 (docs up to
		// sid-1+765) lies wholly below doc 800 and must skip undecoded
		// — 128 entries each — while stream 2's v1 rows prune one
		// undecoded row at a time.
		skipped, err := m.SkipTo(800, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := expectFrom(800, 0)
		remaining := 0
		for ok := true; ok; {
			var e RPLEntry
			var err error
			e, ok, err = m.Next()
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if e != want[remaining] {
					t.Fatalf("entry %d after skip = %+v, want %+v", remaining, e, want[remaining])
				}
				remaining++
			}
		}
		if remaining != len(want) {
			t.Fatalf("%d entries after skip, want %d", remaining, len(want))
		}
		undecodable := len(all) - len(want) - 3 // minus the primed heads
		if skipped < 128*2 || skipped > undecodable {
			t.Fatalf("skipped %d entries undecoded, want within [256, %d]", skipped, undecodable)
		}
	})

	t.Run("skip past every stream exhausts the merge", func(t *testing.T) {
		m, err := NewTermERPL(s, "tt", []uint32{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.SkipTo(10000, 0); err != nil {
			t.Fatal(err)
		}
		if e, ok := m.Peek(); ok {
			t.Fatalf("peek after full skip = %+v", e)
		}
		out, err := m.DrainBelow(20000, 0, nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("drain after full skip = %d entries, err %v", len(out), err)
		}
	})
}

// TestEmptyTrailingBlockIsCorrupt pins down the count-0 block contract:
// the encoder can never produce one, so the decoder must reject it as
// corrupt instead of treating it as a silently empty trailing block.
func TestEmptyTrailingBlockIsCorrupt(t *testing.T) {
	s := skipDrainStore(t)
	for doc := uint32(0); doc < 4; doc++ {
		if err := s.PutERPL("zz", sdEnt(1, doc)); err != nil {
			t.Fatal(err)
		}
	}
	// A hand-built trailing block row: valid header shape, zero entries.
	tail := sdEnt(1, 9)
	val := []byte{listFormatBlock}
	val = binary.AppendUvarint(val, 0)               // count — invalid
	val = binary.AppendUvarint(val, uint64(tail.SID))
	val = binary.AppendUvarint(val, uint64(tail.Doc))
	val = binary.AppendUvarint(val, uint64(tail.End))
	if err := s.ERPLs.Put(erplKey("zz", tail), val); err != nil {
		t.Fatal(err)
	}

	it := NewERPLIterator(s, "zz", 1)
	sawErr := false
	for i := 0; i < 10; i++ {
		_, ok, err := it.Next()
		if err != nil {
			if !strings.Contains(err.Error(), "block count") {
				t.Fatalf("error %q does not name the block count", err)
			}
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("count-0 block iterated cleanly — corrupt row treated as empty")
	}

	// SkipTo prunes by header stats, which must reject the row too.
	it2 := NewERPLIterator(s, "zz", 1)
	if _, err := it2.SkipTo(tail.Doc+1, 0); err == nil {
		t.Fatal("SkipTo read a count-0 block header without error")
	} else if !strings.Contains(fmt.Sprint(err), "block count") {
		t.Fatalf("SkipTo error %q does not name the block count", err)
	}
}
