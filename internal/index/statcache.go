package index

import "sync"

// The planner builds a feature vector per query from exact catalog
// numbers — entry counts, byte sizes and block counts for every
// (kind, term, sid) list the query touches, plus the collection
// frequency of each term. Probing the Catalog and TermStats trees for
// those on every query would charge page reads to the plan phase, so
// the store memoizes the lookups here. The cache is invalidated
// wholesale on any write that can change a cached answer (MarkBuilt,
// DropList, term-stat merges); reads fill it lazily, so steady-state
// planning touches no storage pages at all.

// ListStat is the cached catalog record of one (kind, term, sid) list.
type ListStat struct {
	// Built reports the list is materialized; the remaining fields are
	// zero when it is not.
	Built   bool
	Entries int
	Bytes   int64
	// Blocks is the number of block-encoded storage rows the entries
	// amount to at the target block size (an upper-bound estimate for
	// v1 row-per-entry lists, which use one row per entry).
	Blocks int
}

// statCache is the lazily filled, wholesale-invalidated memo of catalog
// and term-stat lookups.
type statCache struct {
	mu    sync.RWMutex
	lists map[string]ListStat
	cfs   map[string]int64
}

// invalidate drops everything; called under the engine's write
// exclusivity whenever the catalog or term stats change.
func (c *statCache) invalidate() {
	c.mu.Lock()
	c.lists = nil
	c.cfs = nil
	c.mu.Unlock()
}

// ListStat returns the catalog record for one list, served from the
// memo when warm. A miss costs one Catalog point read and primes the
// memo for every later caller.
func (s *Store) ListStat(kind ListKind, term string, sid uint32) (ListStat, error) {
	key := string(catalogKey(kind, term, sid))
	c := &s.stats
	c.mu.RLock()
	st, ok := c.lists[key]
	c.mu.RUnlock()
	if ok {
		return st, nil
	}
	entries, bytes, err := s.BuiltSize(kind, term, sid)
	if err != nil {
		return ListStat{}, err
	}
	built, err := s.IsBuilt(kind, term, sid)
	if err != nil {
		return ListStat{}, err
	}
	st = ListStat{Built: built, Entries: entries, Bytes: bytes}
	if entries > 0 {
		st.Blocks = (entries + BlockTargetEntries - 1) / BlockTargetEntries
	}
	c.mu.Lock()
	if c.lists == nil {
		c.lists = make(map[string]ListStat)
	}
	c.lists[key] = st
	c.mu.Unlock()
	return st, nil
}

// CoveredCached is Covered served from the stat cache: whether every
// (term, sid) pair is materialized for kind, with zero page reads when
// the memo is warm.
func (s *Store) CoveredCached(kind ListKind, terms []string, sids []uint32) (bool, error) {
	for _, t := range terms {
		for _, sid := range sids {
			st, err := s.ListStat(kind, t, sid)
			if err != nil {
				return false, err
			}
			if !st.Built {
				return false, nil
			}
		}
	}
	return true, nil
}

// TermCFCached is TermCF served from the stat cache.
func (s *Store) TermCFCached(term string) (int64, error) {
	c := &s.stats
	c.mu.RLock()
	cf, ok := c.cfs[term]
	c.mu.RUnlock()
	if ok {
		return cf, nil
	}
	cf, err := s.TermCF(term)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.cfs == nil {
		c.cfs = make(map[string]int64)
	}
	c.cfs[term] = cf
	c.mu.Unlock()
	return cf, nil
}
