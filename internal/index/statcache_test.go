package index

import "testing"

func TestListStatCaching(t *testing.T) {
	st := openEmptyStore(t)

	// Unbuilt list: not built, zero sizes.
	ls, err := st.ListStat(KindRPL, "xml", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Built || ls.Entries != 0 || ls.Bytes != 0 || ls.Blocks != 0 {
		t.Fatalf("unbuilt ListStat = %+v", ls)
	}

	if err := st.MarkBuilt(KindRPL, "xml", 3, 300, 4096); err != nil {
		t.Fatal(err)
	}
	ls, err = st.ListStat(KindRPL, "xml", 3)
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := (300 + BlockTargetEntries - 1) / BlockTargetEntries
	if !ls.Built || ls.Entries != 300 || ls.Bytes != 4096 || ls.Blocks != wantBlocks {
		t.Fatalf("built ListStat = %+v, want entries=300 bytes=4096 blocks=%d", ls, wantBlocks)
	}

	// A warm lookup must not touch storage pages.
	before := st.DB.Stats()
	for i := 0; i < 100; i++ {
		if _, err := st.ListStat(KindRPL, "xml", 3); err != nil {
			t.Fatal(err)
		}
	}
	if d := st.DB.Stats().Sub(before); d.CacheHits+d.CacheMisses != 0 {
		t.Fatalf("warm ListStat touched %d pages", d.CacheHits+d.CacheMisses)
	}

	// Re-marking (rebuild) invalidates.
	if err := st.MarkBuilt(KindRPL, "xml", 3, 500, 8192); err != nil {
		t.Fatal(err)
	}
	ls, err = st.ListStat(KindRPL, "xml", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Entries != 500 || ls.Bytes != 8192 {
		t.Fatalf("post-rebuild ListStat = %+v, want entries=500", ls)
	}

	// Dropping invalidates back to unbuilt.
	if _, err := st.DropList(KindRPL, "xml", 3); err != nil {
		t.Fatal(err)
	}
	ls, err = st.ListStat(KindRPL, "xml", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Built {
		t.Fatalf("dropped list still Built: %+v", ls)
	}
}

func TestCoveredCachedMatchesCovered(t *testing.T) {
	st := openEmptyStore(t)
	terms := []string{"alpha", "beta"}
	sids := []uint32{1, 2}
	for _, tm := range terms {
		for _, sid := range sids {
			if tm == "beta" && sid == 2 {
				continue // leave one hole
			}
			if err := st.MarkBuilt(KindERPL, tm, sid, 10, 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, probe := range []struct {
		terms []string
		sids  []uint32
	}{
		{terms, sids},
		{[]string{"alpha"}, sids},
		{terms, []uint32{1}},
	} {
		want, err := st.Covered(KindERPL, probe.terms, probe.sids)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.CoveredCached(KindERPL, probe.terms, probe.sids)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CoveredCached(%v,%v) = %v, Covered = %v", probe.terms, probe.sids, got, want)
		}
	}
}
