package index

import (
	"encoding/binary"
	"fmt"

	"trex/internal/score"
	"trex/internal/storage"
)

// Statistics synchronization support for the distributed tier
// (internal/cluster). Shards score locally, so byte-identical
// distributed rankings require every shard to hold the *global*
// collection statistics and term df/cf table. The cluster coordinator
// aggregates each shard's local tables through ForEachTermStat /
// ElementLengthStats and writes the merged result back with
// PutTermStat + PutCollectionStats.

// TermStat is one row of the TermStats table in exported form.
type TermStat struct {
	Term string
	DF   int   // document frequency
	CF   int64 // collection frequency (total occurrences)
}

// ForEachTermStat scans the whole TermStats table in term order.
func (s *Store) ForEachTermStat(fn func(term string, df int, cf int64) error) error {
	c := s.TermStats.Cursor()
	ok, err := c.First()
	for ; ok && err == nil; ok, err = c.Next() {
		v := c.Value()
		if len(v) != 12 {
			return fmt.Errorf("index: bad TermStats value for %q", c.Key())
		}
		df, cf := decodeTermStats(v)
		if err := fn(string(c.Key()), df, cf); err != nil {
			return err
		}
	}
	return err
}

func decodeTermStats(v []byte) (df int, cf int64) {
	_ = v[11]
	df = int(uint32(v[0])<<24 | uint32(v[1])<<16 | uint32(v[2])<<8 | uint32(v[3]))
	cf = int64(uint64(v[4])<<56 | uint64(v[5])<<48 | uint64(v[6])<<40 | uint64(v[7])<<32 |
		uint64(v[8])<<24 | uint64(v[9])<<16 | uint64(v[10])<<8 | uint64(v[11]))
	return df, cf
}

// PutTermStat overwrites one term's df/cf row. Callers that change
// scoring inputs must also invalidate the stat cache (InvalidateStats)
// and drop materialized lists whose scores embed the old statistics.
func (s *Store) PutTermStat(term string, df int, cf int64) error {
	return s.TermStats.Put([]byte(term), termStatsValue(uint32(df), uint64(cf)))
}

// ElementLengthStats scans the Elements table and returns the exact
// element count and summed length. The stored CollectionStats average
// is truncated to 1/1000 (see encodeStats), so cross-shard aggregation
// must recompute the global average from these exact integer totals —
// the same arithmetic BuildBase uses — or shard scorers would disagree
// with a single engine in the low decimal places.
func (s *Store) ElementLengthStats() (elements int, totalLen int64, err error) {
	c := s.Elements.Cursor()
	ok, err := c.First()
	for ; ok && err == nil; ok, err = c.Next() {
		l, derr := decodeElementsValue(c.Value())
		if derr != nil {
			return 0, 0, derr
		}
		elements++
		totalLen += int64(l)
	}
	return elements, totalLen, err
}

// InvalidateStats drops the memoized catalog/term-stat cache. Called
// under the engine's write exclusivity after statistics are rewritten
// in place (the distributed stats sync).
func (s *Store) InvalidateStats() { s.stats.invalidate() }

// metaLocalDocsKey tracks the store's OWN document count once the
// collection statistics have been overwritten with global values: a
// synced shard's NumDocs describes the whole corpus, but the dense
// append-only id sequence is shard-local. Absent (the single-engine
// case) the two are the same number and NumDocs serves both roles.
var metaLocalDocsKey = []byte("local-doc-count")

// LocalDocCount returns the number of documents stored HERE: the next
// dense document id AppendDocuments must see. Falls back to the
// collection statistics when no sync ever decoupled the two.
func (s *Store) LocalDocCount() (int, error) {
	v, err := s.Meta.Get(metaLocalDocsKey)
	if err == storage.ErrNotFound {
		st, err := s.CollectionStats()
		if err != nil {
			return 0, err
		}
		return st.NumDocs, nil
	}
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("index: bad local-doc-count value length %d", len(v))
	}
	return int(binary.BigEndian.Uint64(v)), nil
}

// localDocsTracked reports whether the local count has been decoupled
// from the (now global) collection statistics.
func (s *Store) localDocsTracked() (bool, error) {
	_, err := s.Meta.Get(metaLocalDocsKey)
	if err == storage.ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (s *Store) putLocalDocCount(n int) error {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(n))
	return s.Meta.Put(metaLocalDocsKey, v[:])
}

// localTermStatPrefix shadows the store's OWN term df/cf rows in the
// Meta tree once the serving TermStats table has been overwritten with
// global values: re-aggregating shards after an append must sum local
// contributions, not N copies of the global union.
var localTermStatPrefix = []byte("local-term-stat\x00")

func localTermStatKey(term string) []byte {
	return append(append([]byte{}, localTermStatPrefix...), term...)
}

// LocalTermStats returns the store's own term df/cf rows: the shadow
// copy when a sync decoupled them, the serving table otherwise.
func (s *Store) LocalTermStats() ([]TermStat, error) {
	tracked, err := s.localDocsTracked()
	if err != nil {
		return nil, err
	}
	var out []TermStat
	if !tracked {
		err := s.ForEachTermStat(func(term string, df int, cf int64) error {
			out = append(out, TermStat{Term: term, DF: df, CF: cf})
			return nil
		})
		return out, err
	}
	c := s.Meta.Cursor()
	ok, err := c.SeekPrefix(localTermStatPrefix)
	for ; ok && err == nil; ok, err = c.NextPrefix(localTermStatPrefix) {
		v := c.Value()
		if len(v) != 12 {
			return nil, fmt.Errorf("index: bad local term stat value for %q", c.Key())
		}
		df, cf := decodeTermStats(v)
		out = append(out, TermStat{Term: string(c.Key()[len(localTermStatPrefix):]), DF: df, CF: cf})
	}
	return out, err
}

// BumpLocalTermStat folds an append's df/cf delta into the shadow row
// (no-op when the store is not decoupled — the serving table is the
// local table then and AppendDocuments already updated it).
func (s *Store) bumpLocalTermStat(term string, dfDelta int, cfDelta int64) error {
	key := localTermStatKey(term)
	df, cf := 0, int64(0)
	v, err := s.Meta.Get(key)
	if err == nil {
		if len(v) != 12 {
			return fmt.Errorf("index: bad local term stat value for %q", term)
		}
		df, cf = decodeTermStats(v)
	} else if err != storage.ErrNotFound {
		return err
	}
	return s.Meta.Put(key, termStatsValue(uint32(df+dfDelta), uint64(cf+cfDelta)))
}

// SyncStatistics overwrites the collection statistics and the given
// term df/cf rows, then invalidates the stat memo. The caller holds
// write exclusivity. The first sync freezes the store's local document
// count (see LocalDocCount) before NumDocs starts describing the whole
// corpus instead of this store.
func (s *Store) SyncStatistics(st score.CollectionStats, terms []TermStat) error {
	tracked, err := s.localDocsTracked()
	if err != nil {
		return err
	}
	if !tracked {
		cur, err := s.CollectionStats()
		if err != nil {
			return err
		}
		if err := s.putLocalDocCount(cur.NumDocs); err != nil {
			return err
		}
		// Snapshot the still-local term rows before they are overwritten
		// with global values: later re-aggregations read this shadow.
		err = s.ForEachTermStat(func(term string, df int, cf int64) error {
			return s.Meta.Put(localTermStatKey(term), termStatsValue(uint32(df), uint64(cf)))
		})
		if err != nil {
			return err
		}
	}
	if err := s.PutCollectionStats(st); err != nil {
		return err
	}
	for _, t := range terms {
		if err := s.PutTermStat(t.Term, t.DF, t.CF); err != nil {
			return err
		}
	}
	s.stats.invalidate()
	return nil
}
