package index

import (
	"fmt"
	"sort"
	"strings"
)

// Stopword handling: terms in the stopword set are excluded from the
// PostingLists and TermStats tables at build/append time and filtered out
// of queries by the engine. The set is persisted in IndexMeta so build
// and query time always agree.

const stopwordsKeyPrefix = "stopwords-"

// stopwordChunk keeps each stored chunk under the storage value limit.
const stopwordChunk = 2500

// PutStopwords persists the stopword set (replacing any previous set) and
// primes the in-memory cache. Must be called before BuildBase for the set
// to affect indexing.
func (s *Store) PutStopwords(words []string) error {
	set := make(map[string]bool, len(words))
	var uniq []string
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" || set[w] {
			continue
		}
		set[w] = true
		uniq = append(uniq, w)
	}
	sort.Strings(uniq)
	joined := strings.Join(uniq, " ")
	for i := 0; ; i++ {
		lo := i * stopwordChunk
		if lo >= len(joined) && i > 0 {
			break
		}
		hi := lo + stopwordChunk
		if hi > len(joined) {
			hi = len(joined)
		}
		key := fmt.Sprintf("%s%04d", stopwordsKeyPrefix, i)
		if err := s.Meta.Put([]byte(key), []byte(joined[lo:hi])); err != nil {
			return err
		}
		if hi == len(joined) {
			break
		}
	}
	s.stopSet = set
	return nil
}

// Stopwords returns the persisted stopword set (possibly empty), cached
// after the first load.
func (s *Store) Stopwords() (map[string]bool, error) {
	if s.stopSet != nil {
		return s.stopSet, nil
	}
	cur := s.Meta.Cursor()
	prefix := []byte(stopwordsKeyPrefix)
	var sb strings.Builder
	ok, err := cur.SeekPrefix(prefix)
	for ; ok; ok, err = cur.NextPrefix(prefix) {
		sb.Write(cur.Value())
	}
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, w := range strings.Fields(sb.String()) {
		set[w] = true
	}
	s.stopSet = set
	return set, nil
}

// IsStopword reports whether term is in the persisted set.
func (s *Store) IsStopword(term string) (bool, error) {
	set, err := s.Stopwords()
	if err != nil {
		return false, err
	}
	return set[term], nil
}

// FilterStopwords returns terms with stopwords removed, preserving order.
func (s *Store) FilterStopwords(terms []string) ([]string, error) {
	set, err := s.Stopwords()
	if err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return terms, nil
	}
	out := terms[:0:0]
	for _, t := range terms {
		if !set[t] {
			out = append(out, t)
		}
	}
	return out, nil
}

// DefaultStopwords is a compact English stopword list in the INEX-engine
// tradition. Opt in via trex.Options.Stopwords.
var DefaultStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from",
	"has", "have", "he", "in", "is", "it", "its", "of", "on", "or", "that",
	"the", "this", "to", "was", "we", "were", "which", "will", "with",
}
