package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"trex/internal/score"
	"trex/internal/segment"
	"trex/internal/storage"
)

// Table names within the storage DB.
const (
	TableElements     = "Elements"
	TablePostingLists = "PostingLists"
	TableRPLs         = "RPLs"
	TableERPLs        = "ERPLs"
	TableTermStats    = "TermStats"
	TableMeta         = "IndexMeta"
	TableCatalog      = "IndexCatalog"
)

// Store bundles the TReX tables of one collection.
type Store struct {
	DB        *storage.DB
	Elements  *storage.Tree
	Postings  *storage.Tree
	RPLs      *storage.Tree
	ERPLs     *storage.Tree
	TermStats *storage.Tree
	Meta      *storage.Tree
	Catalog   *storage.Tree

	// stopSet caches the persisted stopword set (nil until loaded).
	stopSet map[string]bool

	// stats memoizes catalog and term-stat lookups for the planner's
	// feature extraction (see statcache.go).
	stats statCache

	// seg, when attached, serves committed RPL/ERPL reads from an
	// immutable mmap'd segment; segClean reports whether it reflects the
	// trees (see segment.go). Nil seg = pager backend.
	seg      *segment.Store
	segClean atomic.Bool
}

// Open ensures all TReX tables exist in db and returns the store.
func Open(db *storage.DB) (*Store, error) {
	s := &Store{DB: db}
	for _, t := range []struct {
		name string
		dst  **storage.Tree
	}{
		{TableElements, &s.Elements},
		{TablePostingLists, &s.Postings},
		{TableRPLs, &s.RPLs},
		{TableERPLs, &s.ERPLs},
		{TableTermStats, &s.TermStats},
		{TableMeta, &s.Meta},
		{TableCatalog, &s.Catalog},
	} {
		tree, err := db.EnsureTable(t.name)
		if err != nil {
			return nil, fmt.Errorf("index: open %s: %w", t.name, err)
		}
		*t.dst = tree
	}
	return s, nil
}

// --- collection stats (IndexMeta) ---

var metaStatsKey = []byte("collection-stats")

func encodeStats(st score.CollectionStats) []byte {
	var v [24]byte
	binary.BigEndian.PutUint64(v[0:8], uint64(st.NumDocs))
	binary.BigEndian.PutUint64(v[8:16], uint64(st.NumElements))
	binary.BigEndian.PutUint64(v[16:24], uint64(st.AvgElementLen*1000))
	return v[:]
}

func decodeStats(v []byte) (score.CollectionStats, error) {
	if len(v) != 24 {
		return score.CollectionStats{}, fmt.Errorf("index: bad stats record")
	}
	return score.CollectionStats{
		NumDocs:       int(binary.BigEndian.Uint64(v[0:8])),
		NumElements:   int(binary.BigEndian.Uint64(v[8:16])),
		AvgElementLen: float64(binary.BigEndian.Uint64(v[16:24])) / 1000,
	}, nil
}

// PutCollectionStats records global statistics (written by BuildBase).
func (s *Store) PutCollectionStats(st score.CollectionStats) error {
	return s.Meta.Put(metaStatsKey, encodeStats(st))
}

// CollectionStats loads the global statistics.
func (s *Store) CollectionStats() (score.CollectionStats, error) {
	v, err := s.Meta.Get(metaStatsKey)
	if err != nil {
		return score.CollectionStats{}, err
	}
	return decodeStats(v)
}

// --- term stats ---

func termStatsValue(df uint32, cf uint64) []byte {
	var v [12]byte
	binary.BigEndian.PutUint32(v[0:4], df)
	binary.BigEndian.PutUint64(v[4:12], cf)
	return v[:]
}

// TermDF returns the document frequency of term (0 if unseen).
func (s *Store) TermDF(term string) (int, error) {
	v, err := s.TermStats.Get([]byte(term))
	if err == storage.ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(v) != 12 {
		return 0, fmt.Errorf("index: bad TermStats value for %q", term)
	}
	return int(binary.BigEndian.Uint32(v[0:4])), nil
}

// TermCF returns the collection frequency (total occurrences) of term.
func (s *Store) TermCF(term string) (int64, error) {
	v, err := s.TermStats.Get([]byte(term))
	if err == storage.ErrNotFound {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(v) != 12 {
		return 0, fmt.Errorf("index: bad TermStats value for %q", term)
	}
	return int64(binary.BigEndian.Uint64(v[4:12])), nil
}

var metaModelKey = []byte("scoring-model")

// PutScoringModel persists the scoring formula. Must be set before any
// lists are materialized; stored RPL scores embed the model.
func (s *Store) PutScoringModel(m score.Model) error {
	return s.Meta.Put(metaModelKey, []byte(m.String()))
}

// ScoringModel returns the persisted formula (BM25 when unset).
func (s *Store) ScoringModel() (score.Model, error) {
	v, err := s.Meta.Get(metaModelKey)
	if err == storage.ErrNotFound {
		return score.ModelBM25, nil
	}
	if err != nil {
		return score.ModelBM25, err
	}
	return score.ParseModel(string(v))
}

// NewScorer builds a scorer primed with document frequencies for the given
// terms (typically a query's term list), under the persisted model.
func (s *Store) NewScorer(terms []string) (*score.Scorer, error) {
	st, err := s.CollectionStats()
	if err != nil {
		return nil, fmt.Errorf("index: collection stats missing (run BuildBase): %w", err)
	}
	model, err := s.ScoringModel()
	if err != nil {
		return nil, err
	}
	df := make(map[string]int, len(terms))
	for _, t := range terms {
		d, err := s.TermDF(t)
		if err != nil {
			return nil, err
		}
		df[t] = d
	}
	return score.NewScorerWithModel(st, df, model), nil
}

// --- RPL / ERPL writes ---

// PutRPL inserts one scored element into term's relevance posting list.
func (s *Store) PutRPL(term string, e RPLEntry) error {
	if err := s.noteListChange(); err != nil {
		return err
	}
	return s.RPLs.Put(rplKey(term, e), rplValue(e))
}

// PutERPL inserts one scored element into term's element-relevance posting
// list (position order).
func (s *Store) PutERPL(term string, e RPLEntry) error {
	if err := s.noteListChange(); err != nil {
		return err
	}
	return s.ERPLs.Put(erplKey(term, e), rplValue(e))
}

// WriteListRows writes encoded block rows (from EncodeRPLBlocks /
// EncodeERPLBlocks, possibly spanning several terms) into the kind's
// tree. An empty tree is built through the storage bulk loader — leaves
// packed near-full, no random-insert write amplification; a non-empty
// tree takes ordinary Puts. Rows are sorted by key first, which both the
// bulk loader and Put locality want.
func (s *Store) WriteListRows(kind ListKind, rows []ListRow) error {
	if err := s.noteListChange(); err != nil {
		return err
	}
	tree := s.RPLs
	if kind == KindERPL {
		tree = s.ERPLs
	}
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i].Key, rows[j].Key) < 0 })
	bl, err := tree.NewBulkLoader(0)
	if err == nil {
		for _, r := range rows {
			if err := bl.Add(r.Key, r.Value); err != nil {
				return err
			}
		}
		return bl.Finish()
	}
	if err != storage.ErrTableExists {
		return err
	}
	for _, r := range rows {
		if err := tree.Put(r.Key, r.Value); err != nil {
			return err
		}
	}
	return nil
}

// --- materialization catalog ---

// ListKind distinguishes the two redundant top-k index kinds.
type ListKind byte

const (
	// KindRPL marks a score-ordered list (used by TA).
	KindRPL ListKind = 'R'
	// KindERPL marks a position-ordered list (used by Merge).
	KindERPL ListKind = 'E'
)

func (k ListKind) String() string {
	switch k {
	case KindRPL:
		return "RPL"
	case KindERPL:
		return "ERPL"
	default:
		return fmt.Sprintf("ListKind(%c)", byte(k))
	}
}

func catalogKey(kind ListKind, term string, sid uint32) []byte {
	k := make([]byte, 0, len(term)+6)
	k = append(k, byte(kind))
	k = append(k, term...)
	k = append(k, 0)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sid)
	return append(k, tail[:]...)
}

// MarkBuilt records that the (kind, term, sid) list is materialized, with
// its entry count and approximate byte size (the advisor's space term).
func (s *Store) MarkBuilt(kind ListKind, term string, sid uint32, entries int, bytes int64) error {
	var v [16]byte
	binary.BigEndian.PutUint64(v[0:8], uint64(entries))
	binary.BigEndian.PutUint64(v[8:16], uint64(bytes))
	s.stats.invalidate()
	return s.Catalog.Put(catalogKey(kind, term, sid), v[:])
}

// IsBuilt reports whether the (kind, term, sid) list is materialized.
func (s *Store) IsBuilt(kind ListKind, term string, sid uint32) (bool, error) {
	return s.Catalog.Has(catalogKey(kind, term, sid))
}

// BuiltSize returns the recorded entry count and byte size of a
// materialized list; (0, 0) if absent.
func (s *Store) BuiltSize(kind ListKind, term string, sid uint32) (int, int64, error) {
	v, err := s.Catalog.Get(catalogKey(kind, term, sid))
	if err == storage.ErrNotFound {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	if len(v) != 16 {
		return 0, 0, fmt.Errorf("index: bad catalog value")
	}
	return int(binary.BigEndian.Uint64(v[0:8])), int64(binary.BigEndian.Uint64(v[8:16])), nil
}

// CatalogEntry describes one materialized list.
type CatalogEntry struct {
	Kind    ListKind
	Term    string
	SID     uint32
	Entries int
	Bytes   int64
}

// CatalogEntries lists every materialized (kind, term, sid) list.
func (s *Store) CatalogEntries() ([]CatalogEntry, error) {
	var out []CatalogEntry
	cur := s.Catalog.Cursor()
	ok, err := cur.First()
	for ; ok; ok, err = cur.Next() {
		k := cur.Key()
		if len(k) < 6 {
			continue
		}
		e := CatalogEntry{Kind: ListKind(k[0])}
		rest := k[1:]
		zero := -1
		for i := range rest {
			if rest[i] == 0 {
				zero = i
				break
			}
		}
		if zero < 0 || len(rest)-zero-1 != 4 {
			continue
		}
		e.Term = string(rest[:zero])
		e.SID = binary.BigEndian.Uint32(rest[zero+1:])
		v := cur.Value()
		if len(v) == 16 {
			e.Entries = int(binary.BigEndian.Uint64(v[0:8]))
			e.Bytes = int64(binary.BigEndian.Uint64(v[8:16]))
		}
		out = append(out, e)
	}
	return out, err
}

// Covered reports whether every (term, sid) pair is materialized for kind —
// the condition under which TA (KindRPL) or Merge (KindERPL) can evaluate
// the clause.
func (s *Store) Covered(kind ListKind, terms []string, sids []uint32) (bool, error) {
	for _, t := range terms {
		for _, sid := range sids {
			ok, err := s.IsBuilt(kind, t, sid)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}
