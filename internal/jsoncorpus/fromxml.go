package jsoncorpus

import (
	"encoding/json"
	"fmt"
	"strings"

	"trex/internal/xmlscan"
)

// FromXML inverts ToXML: it parses a canonical XML rendering back into
// canonical JSON bytes. Input that is not a canonical rendering (stray
// attributes, mixed content, malformed type markers) is an error, never
// a silent guess — the fuzz harness leans on that strictness.
func FromXML(data []byte) ([]byte, error) {
	root, err := parseDOM(data)
	if err != nil {
		return nil, err
	}
	if root.tag != RootTag {
		return nil, fmt.Errorf("jsoncorpus: root element is %q, want %q", root.tag, RootTag)
	}
	if root.arrayItem {
		return nil, fmt.Errorf("jsoncorpus: root element carries an array-item marker")
	}
	v, err := invertValue(root)
	if err != nil {
		return nil, err
	}
	return appendCanonical(nil, v), nil
}

// domNode is the light DOM FromXML inverts over.
type domNode struct {
	tag       string
	typ       string // the t attribute ("" = string)
	arrayItem bool   // the a="1" marker
	text      strings.Builder
	children  []*domNode
}

// parseDOM builds the DOM with attributes captured, validating the
// attribute vocabulary as it goes.
func parseDOM(data []byte) (*domNode, error) {
	s := xmlscan.NewScanner(data)
	s.CaptureAttrs = true
	var root, cur *domNode
	stack := []*domNode{}
	for s.Next() {
		ev := s.Event()
		switch ev.Kind {
		case xmlscan.KindStart:
			n := &domNode{tag: ev.Name}
			for _, a := range ev.Attrs {
				switch a.Name {
				case "t":
					n.typ = a.Value
				case "a":
					if a.Value != "1" {
						return nil, fmt.Errorf("jsoncorpus: bad array marker a=%q", a.Value)
					}
					n.arrayItem = true
				default:
					return nil, fmt.Errorf("jsoncorpus: unknown attribute %q on <%s>", a.Name, ev.Name)
				}
			}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("jsoncorpus: multiple root elements")
				}
				root = n
			} else {
				cur.children = append(cur.children, n)
			}
			stack = append(stack, n)
			cur = n
		case xmlscan.KindEnd:
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				cur = stack[len(stack)-1]
			} else {
				cur = nil
			}
		case xmlscan.KindText:
			if cur == nil {
				if len(strings.TrimSpace(string(ev.Text))) == 0 {
					continue
				}
				return nil, fmt.Errorf("jsoncorpus: text outside the root element")
			}
			cur.text.Write(ev.Text)
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("jsoncorpus: empty document")
	}
	return root, nil
}

// invertValue maps one element back to a JSON value by its type marker.
func invertValue(n *domNode) (any, error) {
	if len(n.children) > 0 && strings.TrimSpace(n.text.String()) != "" {
		return nil, fmt.Errorf("jsoncorpus: <%s> mixes text and children", n.tag)
	}
	switch n.typ {
	case "":
		if len(n.children) > 0 {
			return nil, fmt.Errorf("jsoncorpus: string element <%s> has children", n.tag)
		}
		return unescapeText(n.text.String())
	case "n":
		if len(n.children) > 0 {
			return nil, fmt.Errorf("jsoncorpus: number element <%s> has children", n.tag)
		}
		return parseNumber(n.text.String())
	case "b":
		switch n.text.String() {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("jsoncorpus: bad boolean text %q", n.text.String())
	case "z":
		if len(n.children) > 0 || n.text.Len() > 0 {
			return nil, fmt.Errorf("jsoncorpus: null element <%s> is not empty", n.tag)
		}
		return nil, nil
	case "o":
		return invertObject(n)
	case "v":
		out := make([]any, 0, len(n.children))
		for _, c := range n.children {
			if c.tag != ItemTag {
				return nil, fmt.Errorf("jsoncorpus: array wrapper child <%s>, want <%s>", c.tag, ItemTag)
			}
			if c.arrayItem {
				return nil, fmt.Errorf("jsoncorpus: nested array item carries a member marker")
			}
			v, err := invertValue(c)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case "a":
		// The empty-array placeholder is only legal as an object member;
		// invertObject handles it before calling here.
		return nil, fmt.Errorf("jsoncorpus: stray empty-array placeholder <%s>", n.tag)
	default:
		return nil, fmt.Errorf("jsoncorpus: unknown type marker t=%q on <%s>", n.typ, n.tag)
	}
}

// invertObject rebuilds an object from its member elements: runs of
// same-tag siblings marked a="1" fold back into arrays, t="a"
// placeholders into empty arrays.
func invertObject(n *domNode) (any, error) {
	obj := make(map[string]any, len(n.children))
	for i := 0; i < len(n.children); {
		c := n.children[i]
		key, err := DecodeKey(c.tag)
		if err != nil {
			return nil, err
		}
		if _, dup := obj[key]; dup {
			return nil, fmt.Errorf("jsoncorpus: duplicate member %q", key)
		}
		switch {
		case c.typ == "a":
			if len(c.children) > 0 || c.text.Len() > 0 || c.arrayItem {
				return nil, fmt.Errorf("jsoncorpus: malformed empty-array placeholder <%s>", c.tag)
			}
			obj[key] = []any{}
			i++
		case c.arrayItem:
			var arr []any
			for i < len(n.children) && n.children[i].tag == c.tag {
				item := n.children[i]
				if !item.arrayItem {
					return nil, fmt.Errorf("jsoncorpus: member %q mixes array items and a plain value", key)
				}
				v, err := invertValue(item)
				if err != nil {
					return nil, err
				}
				arr = append(arr, v)
				i++
			}
			obj[key] = arr
		default:
			v, err := invertValue(c)
			if err != nil {
				return nil, err
			}
			obj[key] = v
			i++
			if i < len(n.children) && n.children[i].tag == c.tag {
				return nil, fmt.Errorf("jsoncorpus: member %q repeats without array markers", key)
			}
		}
	}
	return obj, nil
}

// parseNumber validates a JSON number literal, preserving it verbatim.
func parseNumber(s string) (any, error) {
	if !validNumber(s) {
		return nil, fmt.Errorf("jsoncorpus: bad number literal %q", s)
	}
	return json.Number(s), nil
}

// validNumber checks the JSON number grammar (RFC 8259 §6).
func validNumber(s string) bool {
	i := 0
	if i < len(s) && s[i] == '-' {
		i++
	}
	switch {
	case i < len(s) && s[i] == '0':
		i++
	case i < len(s) && s[i] >= '1' && s[i] <= '9':
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(s) && s[i] == '.' {
		i++
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	return i == len(s)
}
