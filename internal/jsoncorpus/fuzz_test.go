package jsoncorpus

import (
	"testing"

	"trex/internal/xmlscan"
)

// FuzzJSONToElements is the mapper's safety net: arbitrary bytes must
// never panic, and every accepted document must (a) agree with the XML
// scanner over its own rendering — the one-pass layout versus the real
// parser — and (b) round-trip losslessly through the element tree back
// to canonical JSON.
func FuzzJSONToElements(f *testing.F) {
	for _, doc := range sampleDocs {
		f.Add([]byte(doc))
	}
	f.Add([]byte(`{"a":[[],[[]],[{"":null}]]}`))
	f.Add([]byte("{\"\x00\":\"\x1f\",\"&<>\":\"&<>\"}"))
	f.Add([]byte(`1e-00007`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Map(data)
		if err != nil {
			return // not a JSON document; rejection is the only requirement
		}
		wantRoot, err := xmlscan.Parse(d.XML)
		if err != nil {
			t.Fatalf("rendering does not re-parse: %v\nxml: %q", err, d.XML)
		}
		if err := sameTree(d.Root, wantRoot); err != nil {
			t.Fatalf("tree mismatch: %v\nxml: %q", err, d.XML)
		}
		wantTerms, err := xmlscan.DocTerms(d.XML)
		if err != nil {
			t.Fatalf("DocTerms over rendering: %v", err)
		}
		if err := sameTerms(d.Terms, wantTerms); err != nil {
			t.Fatalf("terms mismatch: %v\nxml: %q", err, d.XML)
		}
		back, err := FromXML(d.XML)
		if err != nil {
			t.Fatalf("FromXML over own rendering: %v\nxml: %q", err, d.XML)
		}
		canon, err := Canonical(data)
		if err != nil {
			t.Fatalf("Canonical rejected what Map accepted: %v", err)
		}
		if string(back) != string(canon) {
			t.Fatalf("lossy round trip:\n got %q\nwant %q\nxml: %q", back, canon, d.XML)
		}
	})
}
