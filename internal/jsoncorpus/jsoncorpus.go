// Package jsoncorpus opens the second document universe: JSON corpora
// mapped onto the same (summary, keyword) index machinery the engine
// runs over XML. The paper's summary/sid self-management is structural,
// not XML-specific — a JSON document is just another labeled tree — so
// this package defines one canonical, invertible mapping:
//
//   - objects become elements, keys become tags (escaped into the XML
//     name alphabet, see EncodeKey),
//   - arrays become repeated siblings carrying the member's tag,
//   - scalars become text runs (numbers, bools and null carry a type
//     attribute so the mapping inverts losslessly).
//
// Map builds the element tree and term list DIRECTLY from the JSON
// bytes in one pass, computing byte offsets by laying out the canonical
// XML rendering without going through the XML scanner. ToXML produces
// that rendering as real bytes; FromXML inverts it. The cross-universe
// differential oracle (internal/oracle) asserts that indexing a JSON
// collection through Map and indexing its ToXML rendering through
// xmlscan produce byte-identical rankings — two independent
// implementations of the same layout spec checking each other.
//
// JSONPathToNEXI binds a JSONPath-flavored query syntax onto NEXI so
// existing translation, planning and all four retrieval strategies run
// unchanged over JSON collections.
package jsoncorpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"trex/internal/xmlscan"
)

// Doc is the result of mapping one JSON document into the element
// universe: the parsed tree, the term occurrences, and the canonical
// XML rendering all offsets refer to.
type Doc struct {
	// Root is the element tree; offsets (Start/End) are byte positions
	// within XML, exactly as xmlscan.Parse(XML) would assign them.
	Root *xmlscan.Node
	// Terms are the term occurrences with offsets into XML, exactly as
	// xmlscan.DocTerms(XML) would produce them.
	Terms []xmlscan.Term
	// XML is the canonical rendering (deterministic bytes: object keys
	// sorted, no inter-tag whitespace).
	XML []byte
}

// RootTag is the synthetic element wrapping every mapped document.
const RootTag = "doc"

// ItemTag is the synthetic element wrapping items of nested arrays
// (arrays that are themselves array items, where there is no member key
// to repeat).
const ItemTag = "el"

// decode parses JSON bytes preserving number literals verbatim
// (json.Number), rejecting trailing garbage.
func decode(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("jsoncorpus: %w", err)
	}
	// A second Decode must hit EOF: "1 2" is not one document.
	var trailing any
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("jsoncorpus: trailing data after JSON value")
	}
	return v, nil
}

// Map parses one JSON document and maps it into the element universe in
// a single pass. See Doc for what the offsets mean.
func Map(data []byte) (*Doc, error) {
	v, err := decode(data)
	if err != nil {
		return nil, err
	}
	b := &builder{}
	root := b.value(RootTag, false, v, nil)
	return &Doc{Root: root, Terms: b.terms, XML: b.buf}, nil
}

// ToXML returns the canonical XML rendering of a JSON document.
func ToXML(data []byte) ([]byte, error) {
	d, err := Map(data)
	if err != nil {
		return nil, err
	}
	return d.XML, nil
}

// Canonical returns the canonical JSON form of a document: object keys
// sorted, number literals preserved, strings minimally escaped. It is
// the fixpoint FromXML(ToXML(x)) lands on.
func Canonical(data []byte) ([]byte, error) {
	v, err := decode(data)
	if err != nil {
		return nil, err
	}
	return appendCanonical(nil, v), nil
}

// builder lays out the canonical rendering, assigning element offsets
// and tokenizing text runs as it writes them.
type builder struct {
	buf   []byte
	terms []xmlscan.Term
}

// text appends an escaped text run and tokenizes the escaped bytes at
// their rendered offsets (entity escapes tokenize exactly as the XML
// scanner would see them, e.g. "&amp;" contributes the token "amp").
func (b *builder) text(s string) {
	start := len(b.buf)
	b.buf = appendEscapedText(b.buf, s)
	xmlscan.Tokenize(b.buf[start:], start, func(t xmlscan.Term) {
		b.terms = append(b.terms, t)
	})
}

// open writes a start tag; typ 0 means string (no type attribute).
func (b *builder) open(tag string, arrayItem bool, typ byte) {
	b.buf = append(b.buf, '<')
	b.buf = append(b.buf, tag...)
	if arrayItem {
		b.buf = append(b.buf, ` a="1"`...)
	}
	if typ != 0 {
		b.buf = append(b.buf, ` t="`...)
		b.buf = append(b.buf, typ, '"')
	}
	b.buf = append(b.buf, '>')
}

func (b *builder) close(tag string) {
	b.buf = append(b.buf, '<', '/')
	b.buf = append(b.buf, tag...)
	b.buf = append(b.buf, '>')
}

// value renders one JSON value as an element with the given tag,
// returning the element node with its Start/End offsets.
func (b *builder) value(tag string, arrayItem bool, v any, parent *xmlscan.Node) *xmlscan.Node {
	n := &xmlscan.Node{Tag: tag, Start: len(b.buf), Parent: parent}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	switch x := v.(type) {
	case nil:
		b.open(tag, arrayItem, 'z')
	case bool:
		b.open(tag, arrayItem, 'b')
		if x {
			b.text("true")
		} else {
			b.text("false")
		}
	case json.Number:
		b.open(tag, arrayItem, 'n')
		b.text(x.String())
	case string:
		b.open(tag, arrayItem, 0)
		b.text(x)
	case map[string]any:
		b.open(tag, arrayItem, 'o')
		for _, k := range sortedKeys(x) {
			b.member(EncodeKey(k), x[k], n)
		}
	case []any:
		// Reached for nested arrays (an array item that is itself an
		// array) and for a top-level array: items get the synthetic
		// ItemTag, never exploded, so [[1,2]] and [[1],[2]] stay
		// distinguishable.
		b.open(tag, arrayItem, 'v')
		for _, item := range x {
			b.value(ItemTag, false, item, n)
		}
	default:
		// decode() only produces the cases above.
		panic(fmt.Sprintf("jsoncorpus: impossible decoded type %T", v))
	}
	b.close(tag)
	n.End = len(b.buf)
	return n
}

// member renders one object member. Arrays explode into repeated
// siblings carrying the member's tag (marked a="1" so the mapping
// inverts); an empty array leaves a t="a" placeholder.
func (b *builder) member(tag string, v any, parent *xmlscan.Node) {
	if arr, ok := v.([]any); ok {
		if len(arr) == 0 {
			n := &xmlscan.Node{Tag: tag, Start: len(b.buf), Parent: parent}
			parent.Children = append(parent.Children, n)
			b.open(tag, false, 'a')
			b.close(tag)
			n.End = len(b.buf)
			return
		}
		for _, item := range arr {
			b.value(tag, true, item, parent)
		}
		return
	}
	b.value(tag, false, v, parent)
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendEscapedText escapes the three markup bytes; everything else
// (including control bytes and non-UTF8) passes through as text.
func appendEscapedText(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			buf = append(buf, "&amp;"...)
		case '<':
			buf = append(buf, "&lt;"...)
		case '>':
			buf = append(buf, "&gt;"...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// unescapeText inverts appendEscapedText. Unknown entities are an
// error: canonical renderings only ever contain the three above.
func unescapeText(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			sb.WriteByte(s[i])
			i++
			continue
		}
		switch {
		case strings.HasPrefix(s[i:], "&amp;"):
			sb.WriteByte('&')
			i += 5
		case strings.HasPrefix(s[i:], "&lt;"):
			sb.WriteByte('<')
			i += 4
		case strings.HasPrefix(s[i:], "&gt;"):
			sb.WriteByte('>')
			i += 4
		default:
			return "", fmt.Errorf("jsoncorpus: unknown entity at byte %d", i)
		}
	}
	return sb.String(), nil
}

const hexDigits = "0123456789abcdef"

// EncodeKey maps an arbitrary JSON object key into the XML/NEXI name
// alphabet [A-Za-z0-9_]: letters and (non-leading) digits pass through,
// every other byte becomes "_xx" (two lowercase hex digits). The empty
// key encodes as "_". The encoding is injective, so distinct keys never
// collide as tags, and DecodeKey inverts it exactly.
func EncodeKey(key string) string {
	if key == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		b := key[i]
		switch {
		case b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z':
			sb.WriteByte(b)
		case b >= '0' && b <= '9' && i > 0:
			sb.WriteByte(b)
		default:
			sb.WriteByte('_')
			sb.WriteByte(hexDigits[b>>4])
			sb.WriteByte(hexDigits[b&0x0f])
		}
	}
	return sb.String()
}

// DecodeKey inverts EncodeKey; it errors on byte sequences EncodeKey
// cannot produce.
func DecodeKey(tag string) (string, error) {
	if tag == "_" {
		return "", nil
	}
	var sb strings.Builder
	for i := 0; i < len(tag); {
		b := tag[i]
		if b != '_' {
			sb.WriteByte(b)
			i++
			continue
		}
		if i+2 >= len(tag) || !isHex(tag[i+1]) || !isHex(tag[i+2]) {
			return "", fmt.Errorf("jsoncorpus: tag %q: truncated escape at byte %d", tag, i)
		}
		sb.WriteByte(unhex(tag[i+1])<<4 | unhex(tag[i+2]))
		i += 3
	}
	return sb.String(), nil
}

func isHex(b byte) bool { return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' }
func unhex(b byte) byte {
	if b <= '9' {
		return b - '0'
	}
	return b - 'a' + 10
}

// appendCanonical renders a decoded JSON value in canonical form:
// object keys sorted, number literals verbatim, strings escaped with
// the fixed scheme below. Both Canonical and FromXML funnel through
// this, so byte comparison between them is meaningful.
func appendCanonical(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case bool:
		if x {
			return append(buf, "true"...)
		}
		return append(buf, "false"...)
	case json.Number:
		return append(buf, x.String()...)
	case string:
		return appendJSONString(buf, x)
	case map[string]any:
		buf = append(buf, '{')
		for i, k := range sortedKeys(x) {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, k)
			buf = append(buf, ':')
			buf = appendCanonical(buf, x[k])
		}
		return append(buf, '}')
	case []any:
		buf = append(buf, '[')
		for i, item := range x {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendCanonical(buf, item)
		}
		return append(buf, ']')
	default:
		panic(fmt.Sprintf("jsoncorpus: impossible decoded type %T", v))
	}
}

// appendJSONString writes a JSON string literal: the two mandatory
// escapes plus control characters; no HTML escaping.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b == '"' || b == '\\':
			buf = append(buf, '\\', b)
		case b == '\n':
			buf = append(buf, '\\', 'n')
		case b == '\r':
			buf = append(buf, '\\', 'r')
		case b == '\t':
			buf = append(buf, '\\', 't')
		case b < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0x0f])
		default:
			buf = append(buf, b)
		}
	}
	return append(buf, '"')
}
