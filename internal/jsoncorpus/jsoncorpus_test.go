package jsoncorpus

import (
	"fmt"
	"testing"

	"trex/internal/xmlscan"
)

// sampleDocs is the shared corpus of mapping-rule exemplars: every rule
// in the package doc shows up at least once.
var sampleDocs = []string{
	`{"a":1,"b":[true,false],"c":{},"d":[],"e":null,"f":"x < y & z"}`,
	`"just a string"`,
	`42`,
	`-0.5e+10`,
	`true`,
	`null`,
	`[]`,
	`[1,[2,3],[],{"k":"v"}]`,
	`[[1,2]]`,
	`[[1],[2]]`,
	`{"nested":{"deep":{"list":[{"x":1},{"x":2}]}}}`,
	`{"":"empty key","123":"digit key","weird key":"space","ta g<":"markup"}`,
	`{"text":"The  QUICK  brown-fox jumps &amp; runs <b>fast</b>"}`,
	`{"num":[1,2.5,-3,1e10,0.0]}`,
	`{"dup-ish":[{"a":1},{"a":1}],"unicode":"héllo wörld ☃"}`,
	`{"ctrl":"tab\tnewline\nquote\"backslash\\"}`,
	`{"mixed":[null,true,"s",7,[8],{"o":9},[]]}`,
}

func TestMapGolden(t *testing.T) {
	xml, err := ToXML([]byte(`{"a":1,"b":[true,false],"c":{},"d":[],"e":null,"f":"x < y & z"}`))
	if err != nil {
		t.Fatal(err)
	}
	want := `<doc t="o"><a t="n">1</a><b a="1" t="b">true</b><b a="1" t="b">false</b>` +
		`<c t="o"></c><d t="a"></d><e t="z"></e><f>x &lt; y &amp; z</f></doc>`
	if string(xml) != want {
		t.Fatalf("canonical rendering mismatch:\n got %s\nwant %s", xml, want)
	}
}

func TestMapGoldenTopLevelArray(t *testing.T) {
	xml, err := ToXML([]byte(`[1,[2,3]]`))
	if err != nil {
		t.Fatal(err)
	}
	want := `<doc t="v"><el t="n">1</el><el t="v"><el t="n">2</el><el t="n">3</el></el></doc>`
	if string(xml) != want {
		t.Fatalf("canonical rendering mismatch:\n got %s\nwant %s", xml, want)
	}
}

// TestMapMatchesScanner is the in-package half of the cross-universe
// differential: Map computes tree/terms/offsets directly in one pass,
// and must agree byte-for-byte with xmlscan parsing the rendering.
func TestMapMatchesScanner(t *testing.T) {
	for _, doc := range sampleDocs {
		d, err := Map([]byte(doc))
		if err != nil {
			t.Fatalf("Map(%s): %v", doc, err)
		}
		wantRoot, err := xmlscan.Parse(d.XML)
		if err != nil {
			t.Fatalf("xmlscan.Parse over rendering of %s: %v", doc, err)
		}
		if err := sameTree(d.Root, wantRoot); err != nil {
			t.Fatalf("tree mismatch for %s over %s: %v", doc, d.XML, err)
		}
		wantTerms, err := xmlscan.DocTerms(d.XML)
		if err != nil {
			t.Fatalf("xmlscan.DocTerms over rendering of %s: %v", doc, err)
		}
		if err := sameTerms(d.Terms, wantTerms); err != nil {
			t.Fatalf("terms mismatch for %s over %s: %v", doc, d.XML, err)
		}
	}
}

func sameTree(got, want *xmlscan.Node) error {
	if got.Tag != want.Tag || got.Start != want.Start || got.End != want.End {
		return fmt.Errorf("node got <%s>[%d,%d) want <%s>[%d,%d)",
			got.Tag, got.Start, got.End, want.Tag, want.Start, want.End)
	}
	if len(got.Children) != len(want.Children) {
		return fmt.Errorf("<%s> has %d children, want %d", got.Tag, len(got.Children), len(want.Children))
	}
	for i := range got.Children {
		if err := sameTree(got.Children[i], want.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

func sameTerms(got, want []xmlscan.Term) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d terms, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("term %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// TestRoundTrip: FromXML inverts ToXML onto the canonical JSON form.
func TestRoundTrip(t *testing.T) {
	for _, doc := range sampleDocs {
		xml, err := ToXML([]byte(doc))
		if err != nil {
			t.Fatalf("ToXML(%s): %v", doc, err)
		}
		back, err := FromXML(xml)
		if err != nil {
			t.Fatalf("FromXML over rendering of %s: %v", doc, err)
		}
		canon, err := Canonical([]byte(doc))
		if err != nil {
			t.Fatalf("Canonical(%s): %v", doc, err)
		}
		if string(back) != string(canon) {
			t.Fatalf("round trip of %s:\n got %s\nwant %s", doc, back, canon)
		}
		// Canonical form is a fixpoint of the mapping.
		xml2, err := ToXML(canon)
		if err != nil {
			t.Fatalf("ToXML over canonical of %s: %v", doc, err)
		}
		if string(xml2) != string(xml) {
			t.Fatalf("canonical form of %s renders differently:\n got %s\nwant %s", doc, xml2, xml)
		}
	}
}

func TestMapErrors(t *testing.T) {
	for _, bad := range []string{
		``, `   `, `{`, `[1,]`, `{"a":}`, `1 2`, `{"a":1}{"b":2}`,
		`nul`, `tru`, `"unterminated`, `{"a":01}`,
	} {
		if _, err := Map([]byte(bad)); err == nil {
			t.Errorf("Map(%q): want error, got nil", bad)
		}
	}
}

func TestEncodeDecodeKey(t *testing.T) {
	keys := []string{
		"", "a", "plain", "PlainCase", "123", "1a", "a1",
		"weird key", "ta g<", "_", "__", "_20", "a_b",
		"héllo", "☃", "k\x00v", "dots.and.dashes-too",
	}
	seen := map[string]string{}
	for _, k := range keys {
		enc := EncodeKey(k)
		for i := 0; i < len(enc); i++ {
			c := enc[i]
			ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' && i > 0
			if !ok {
				t.Errorf("EncodeKey(%q) = %q: byte %d outside the name alphabet", k, enc, i)
			}
		}
		if prev, dup := seen[enc]; dup {
			t.Errorf("EncodeKey collision: %q and %q both encode to %q", prev, k, enc)
		}
		seen[enc] = k
		dec, err := DecodeKey(enc)
		if err != nil {
			t.Errorf("DecodeKey(EncodeKey(%q)) = error %v", k, err)
			continue
		}
		if dec != k {
			t.Errorf("DecodeKey(EncodeKey(%q)) = %q", k, dec)
		}
	}
	for _, bad := range []string{"_2", "_zz", "_2x", "a_"} {
		if dec, err := DecodeKey(bad); err == nil {
			t.Errorf("DecodeKey(%q) = %q, want error", bad, dec)
		}
	}
}

func TestFromXMLRejectsNonCanonical(t *testing.T) {
	for _, bad := range []string{
		``,
		`<root></root>`,                    // wrong root tag
		`<doc a="1"></doc>`,                // root with member marker
		`<doc t="x"></doc>`,                // unknown type marker
		`<doc q="1"></doc>`,                // unknown attribute
		`<doc a="2" t="o"></doc>`,          // bad marker value
		`<doc t="o"><a t="n">zz</a></doc>`, // bad number literal
		`<doc t="o"><a t="n">1</a><a>x</a></doc>`,    // repeat without markers
		`<doc t="o"><a a="1">x</a><a>y</a></doc>`,    // mixed array and plain
		`<doc t="o"><a t="a">x</a></doc>`,            // non-empty placeholder
		`<doc t="b">maybe</doc>`,                     // bad boolean
		`<doc t="z">x</doc>`,                         // non-empty null
		`<doc t="v"><x t="n">1</x></doc>`,            // wrong item tag
		`<doc t="o"><a>x<b>y</b></a></doc>`,          // mixed content
		`<doc>&copy;</doc>`,                          // unknown entity
		`<doc t="a"></doc>`,                          // placeholder as a value
		`<doc t="o"><a t="n">1</a></doc><doc></doc>`, // two roots
	} {
		if v, err := FromXML([]byte(bad)); err == nil {
			t.Errorf("FromXML(%s) = %s, want error", bad, v)
		}
	}
}

func TestJSONPathToNEXI(t *testing.T) {
	cases := []struct{ in, want string }{
		{`$.store.book`, `//store//book`},
		{`$..book`, `//book`},
		{`$.a.*`, `//a//*`},
		{`$.a[*].b`, `//a//b`},
		{`$['weird key']`, `//weird_20key`},
		{`$["quoted"].x`, `//quoted//x`},
		{`$..book[?(about(@.title, gold))]`, `//book[about(.//title, gold)]`},
		{`$..book[?(about(@, rare first edition))]`, `//book[about(., rare first edition)]`},
		{
			`$..book[?(about(@.title, gold) and about(@, rare))]`,
			`//book[about(.//title, gold) and about(., rare)]`,
		},
		{
			`$.a[?(about(@..b, x) || about(@['c d'], y))]`,
			`//a[about(.//b, x) or about(.//c_20d, y)]`,
		},
		{
			`$.a[?((about(@, x) && about(@, y)) or about(@, z))]`,
			`//a[(about(., x) and about(., y)) or about(., z)]`,
		},
		{
			`$.log[?(about(@.msg, +timeout -retry "connection refused"))]`,
			`//log[about(.//msg, +timeout -retry "connection refused")]`,
		},
		{`$.a[?(about(@, x))].b[?(about(@, y))]`, `//a[about(., x)]//b[about(., y)]`},
	}
	for _, c := range cases {
		got, err := JSONPathToNEXI(c.in)
		if err != nil {
			t.Errorf("JSONPathToNEXI(%s): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("JSONPathToNEXI(%s):\n got %s\nwant %s", c.in, got, c.want)
		}
	}
	for _, bad := range []string{
		``, `$`, `$$`, `.a`, `$.`, `$.a[0]`, `$.a[-1]`, `$.a[]`,
		`$[?(about(@, x))]`, `$.a[?(about(@, x))][?(about(@, y))]`,
		`$.a[?(about(@, ))]`, `$.a[?(about(@, x)`, `$.a['unterminated`,
		`$.a[?(count(@) > 1)]`, `$.a extra`,
	} {
		if got, err := JSONPathToNEXI(bad); err == nil {
			t.Errorf("JSONPathToNEXI(%s) = %s, want error", bad, got)
		}
	}
}
