package jsoncorpus

import (
	"fmt"
	"strings"

	"trex/internal/nexi"
)

// JSONPathToNEXI binds a JSONPath-flavored query syntax onto NEXI so a
// JSON collection is queried in its own idiom while translation,
// planning and retrieval run unchanged. Supported grammar:
//
//	Query  = "$" { Step } .
//	Step   = "." Name | "." "*" | ".." Name | "[" Sel "]" .
//	Sel    = "*" | "'" Key "'" | "\"" Key "\"" | "?(" Filter ")" .
//	Filter = Or .
//	Or     = And { ("or" | "||") And } .
//	And    = Prim { ("and" | "&&") Prim } .
//	Prim   = About | "(" Or ")" .
//	About  = "about" "(" "@" { RelStep } "," Terms ")" .
//
// Every step maps to a NEXI descendant step (//name) — the element
// universe nests members as descendants, and arrays are repeated
// siblings, so "[*]" after a member is a no-op and "[n]" positional
// selection is rejected. Keys pass through EncodeKey, so
// $.store["weird key"] addresses the same tag the mapper produced.
// about() terms (words, "phrases", +/- markers) pass through verbatim.
//
// Example:
//
//	$..book[?(about(@.title, gold) and about(@, rare first edition))]
//	  → //book[about(.//title, gold) and about(., rare first edition)]
func JSONPathToNEXI(q string) (string, error) {
	p := &jpParser{src: q}
	out, err := p.query()
	if err != nil {
		return "", err
	}
	// A final NEXI parse guarantees the binding never emits a query the
	// engine would choke on later.
	if _, err := nexi.Parse(out); err != nil {
		return "", fmt.Errorf("jsoncorpus: translated NEXI %q is invalid: %w", out, err)
	}
	return out, nil
}

type jpParser struct {
	src string
	pos int
}

func (p *jpParser) errf(format string, args ...any) error {
	return fmt.Errorf("jsoncorpus: jsonpath at byte %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *jpParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jpParser) eat(lit string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

func isKeyByte(c byte) bool {
	return c == '_' || c == '-' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// name parses a dotted-step name (bare identifier).
func (p *jpParser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isKeyByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a name")
	}
	return p.src[start:p.pos], nil
}

// query parses the whole expression, emitting NEXI steps.
func (p *jpParser) query() (string, error) {
	if !p.eat("$") {
		return "", p.errf("query must start with $")
	}
	var sb strings.Builder
	steps := 0
	hasPred := false
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		switch {
		case p.eat(".."):
			n, err := p.name()
			if err != nil {
				return "", err
			}
			sb.WriteString("//" + EncodeKey(n))
			steps++
			hasPred = false
		case p.eat(".*"):
			sb.WriteString("//*")
			steps++
			hasPred = false
		case p.eat("."):
			n, err := p.name()
			if err != nil {
				return "", err
			}
			sb.WriteString("//" + EncodeKey(n))
			steps++
			hasPred = false
		case p.eat("["):
			done, err := p.bracket(&sb, steps, &hasPred)
			if err != nil {
				return "", err
			}
			steps += done
		default:
			return "", p.errf("unexpected %q", p.src[p.pos:p.pos+1])
		}
	}
	if steps == 0 {
		return "", p.errf("query selects nothing ($ alone)")
	}
	return sb.String(), nil
}

// bracket handles one [...] selector; returns how many steps it added.
func (p *jpParser) bracket(sb *strings.Builder, steps int, hasPred *bool) (int, error) {
	p.skipSpace()
	if p.eat("*") {
		// Arrays are repeated siblings: [*] selects what the member step
		// already selected.
		if !p.eat("]") {
			return 0, p.errf("expected ] after *")
		}
		return 0, nil
	}
	if p.pos < len(p.src) && (p.src[p.pos] == '\'' || p.src[p.pos] == '"') {
		quote := p.src[p.pos]
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return 0, p.errf("unterminated quoted key")
		}
		key := p.src[start:p.pos]
		p.pos++
		if !p.eat("]") {
			return 0, p.errf("expected ] after quoted key")
		}
		sb.WriteString("//" + EncodeKey(key))
		*hasPred = false
		return 1, nil
	}
	if p.eat("?(") {
		if steps == 0 {
			return 0, p.errf("filter before any step")
		}
		if *hasPred {
			return 0, p.errf("step already has a filter")
		}
		sb.WriteByte('[')
		if err := p.filterOr(sb); err != nil {
			return 0, err
		}
		if !p.eat(")") {
			return 0, p.errf("expected ) closing the filter")
		}
		if !p.eat("]") {
			return 0, p.errf("expected ] closing the selector")
		}
		sb.WriteByte(']')
		*hasPred = true
		return 0, nil
	}
	p.skipSpace()
	if p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '-') {
		return 0, p.errf("positional array indexes are not supported (arrays map to repeated siblings; use [*] or a filter)")
	}
	return 0, p.errf("expected *, a quoted key, or ?(...)")
}

func (p *jpParser) filterOr(sb *strings.Builder) error {
	if err := p.filterAnd(sb); err != nil {
		return err
	}
	for {
		if p.eat("||") || p.eatWord("or") {
			sb.WriteString(" or ")
			if err := p.filterAnd(sb); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

func (p *jpParser) filterAnd(sb *strings.Builder) error {
	if err := p.filterPrim(sb); err != nil {
		return err
	}
	for {
		if p.eat("&&") || p.eatWord("and") {
			sb.WriteString(" and ")
			if err := p.filterPrim(sb); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

// eatWord consumes a keyword only when it is not a prefix of a longer
// identifier ("or" must not eat into "order").
func (p *jpParser) eatWord(w string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	if end := p.pos + len(w); end < len(p.src) && isKeyByte(p.src[end]) {
		return false
	}
	p.pos += len(w)
	return true
}

func (p *jpParser) filterPrim(sb *strings.Builder) error {
	if p.eat("(") {
		sb.WriteByte('(')
		if err := p.filterOr(sb); err != nil {
			return err
		}
		if !p.eat(")") {
			return p.errf("expected )")
		}
		sb.WriteByte(')')
		return nil
	}
	return p.about(sb)
}

// about parses about(@path, terms) into NEXI about(.path, terms).
func (p *jpParser) about(sb *strings.Builder) error {
	if !p.eatWord("about") || !p.eat("(") {
		return p.errf("expected about(")
	}
	if !p.eat("@") {
		return p.errf("expected @ starting the about path")
	}
	sb.WriteString("about(.")
	for {
		if p.eat("..") || p.eat(".") {
			n, err := p.name()
			if err != nil {
				return err
			}
			sb.WriteString("//" + EncodeKey(n))
			continue
		}
		if p.eat("[") {
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '\'' && p.src[p.pos] != '"' {
				return p.errf("expected a quoted key in the about path")
			}
			quote := p.src[p.pos]
			p.pos++
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != quote {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return p.errf("unterminated quoted key")
			}
			key := p.src[start:p.pos]
			p.pos++
			if !p.eat("]") {
				return p.errf("expected ]")
			}
			sb.WriteString("//" + EncodeKey(key))
			continue
		}
		break
	}
	if !p.eat(",") {
		return p.errf("expected , between the about path and its terms")
	}
	// Terms pass through verbatim up to the about's closing paren;
	// quoted phrases may contain parens.
	p.skipSpace()
	start := p.pos
	depth := 0
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '"' {
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != '"' {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return p.errf("unterminated phrase")
			}
			p.pos++
			continue
		}
		if c == '(' {
			depth++
		}
		if c == ')' {
			if depth == 0 {
				break
			}
			depth--
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return p.errf("unterminated about(")
	}
	terms := strings.TrimSpace(p.src[start:p.pos])
	if terms == "" {
		return p.errf("about() has no terms")
	}
	p.pos++ // ')'
	sb.WriteString(", " + terms + ")")
	return nil
}
