// Package nexi parses NEXI (Narrowed Extended XPath I) retrieval queries,
// the INEX query language TReX evaluates.
//
// The supported grammar covers the fragment the paper's workload uses —
// descendant steps, name tests with wildcard, about() predicates combined
// with 'and'/'or', quoted phrases and +/- term qualifiers:
//
//	Query     = Step { Step } .
//	Step      = "//" NameTest [ "[" OrExpr "]" ] .
//	NameTest  = Name | "*" .
//	OrExpr    = AndExpr { "or" AndExpr } .
//	AndExpr   = Primary { "and" Primary } .
//	Primary   = About | "(" OrExpr ")" .
//	About     = "about" "(" RelPath "," Terms ")" .
//	RelPath   = "." { "//" NameTest } .
//	Terms     = Term { Term } .
//	Term      = [ "+" | "-" ] ( Word | Phrase ) .
//
// Example: //article[about(., xml)]//sec[about(., query evaluation)]
package nexi

import "strings"

// Query is a parsed NEXI query.
type Query struct {
	// Steps in order; the last step selects the answer elements.
	Steps []Step
	// Raw is the original query text.
	Raw string
}

// Step is one //-step with an optional predicate.
type Step struct {
	// Name is the element name test; "*" matches any label.
	Name string
	// Pred is nil when the step has no predicate.
	Pred *Expr
}

// ExprKind discriminates predicate expression nodes.
type ExprKind int

const (
	// ExprAbout is an about(path, terms) leaf.
	ExprAbout ExprKind = iota
	// ExprAnd is a conjunction of children.
	ExprAnd
	// ExprOr is a disjunction of children.
	ExprOr
)

// Expr is a predicate expression tree.
type Expr struct {
	Kind     ExprKind
	Children []*Expr // for ExprAnd / ExprOr
	About    *About  // for ExprAbout
}

// About is one about(relpath, terms) filter.
type About struct {
	// Path is the relative path after ".": zero or more descendant name
	// tests. Empty means the context element itself.
	Path []string
	// Terms is the keyword list.
	Terms []Term
}

// Term is one search term within an about().
type Term struct {
	// Word is the lowercased term; for phrases it is empty.
	Word string
	// Phrase holds the words of a quoted phrase (lowercased), nil for a
	// plain term.
	Phrase []string
	// Minus marks an excluded term (e.g. -french).
	Minus bool
	// Plus marks an emphasized term (e.g. +painting).
	Plus bool
}

// Words returns the term's word list: the single word or the phrase.
func (t Term) Words() []string {
	if len(t.Phrase) > 0 {
		return t.Phrase
	}
	return []string{t.Word}
}

// String reassembles the term in NEXI syntax.
func (t Term) String() string {
	var sb strings.Builder
	if t.Minus {
		sb.WriteByte('-')
	}
	if t.Plus {
		sb.WriteByte('+')
	}
	if len(t.Phrase) > 0 {
		sb.WriteByte('"')
		sb.WriteString(strings.Join(t.Phrase, " "))
		sb.WriteByte('"')
	} else {
		sb.WriteString(t.Word)
	}
	return sb.String()
}

// Abouts returns every about() in the expression tree, left to right.
func (e *Expr) Abouts() []*About {
	if e == nil {
		return nil
	}
	if e.Kind == ExprAbout {
		return []*About{e.About}
	}
	var out []*About
	for _, c := range e.Children {
		out = append(out, c.Abouts()...)
	}
	return out
}

// Abouts returns every about() in the query, in syntactic order, paired
// with the index of the step carrying it.
func (q *Query) Abouts() []QueryAbout {
	var out []QueryAbout
	for i := range q.Steps {
		for _, a := range q.Steps[i].Pred.Abouts() {
			out = append(out, QueryAbout{StepIndex: i, About: a})
		}
	}
	return out
}

// QueryAbout locates an about() within its query.
type QueryAbout struct {
	StepIndex int
	About     *About
}

// AllTerms returns the distinct positive (non-Minus) words across the
// whole query, in first-appearance order.
func (q *Query) AllTerms() []string {
	seen := make(map[string]bool)
	var out []string
	for _, qa := range q.Abouts() {
		for _, t := range qa.About.Terms {
			if t.Minus {
				continue
			}
			for _, w := range t.Words() {
				if !seen[w] {
					seen[w] = true
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// String reassembles the query in NEXI syntax.
func (q *Query) String() string {
	var sb strings.Builder
	for _, s := range q.Steps {
		sb.WriteString("//")
		sb.WriteString(s.Name)
		if s.Pred != nil {
			sb.WriteByte('[')
			writeExpr(&sb, s.Pred)
			sb.WriteByte(']')
		}
	}
	return sb.String()
}

func writeExpr(sb *strings.Builder, e *Expr) {
	switch e.Kind {
	case ExprAbout:
		sb.WriteString("about(.")
		for _, p := range e.About.Path {
			sb.WriteString("//")
			sb.WriteString(p)
		}
		sb.WriteString(", ")
		for i, t := range e.About.Terms {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(t.String())
		}
		sb.WriteByte(')')
	case ExprAnd, ExprOr:
		op := " and "
		if e.Kind == ExprOr {
			op = " or "
		}
		for i, c := range e.Children {
			if i > 0 {
				sb.WriteString(op)
			}
			paren := c.Kind != ExprAbout
			if paren {
				sb.WriteByte('(')
			}
			writeExpr(sb, c)
			if paren {
				sb.WriteByte(')')
			}
		}
	}
}
