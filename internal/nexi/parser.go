package nexi

import (
	"fmt"
	"strings"
)

// ParseError reports a syntax error with its byte position in the query.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("nexi: parse error at %d: %s", e.Pos, e.Msg)
}

type parser struct {
	src string
	pos int
}

// Parse parses a NEXI query.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	q := &Query{Raw: src}
	p.skipSpace()
	for p.pos < len(p.src) {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		q.Steps = append(q.Steps, step)
		p.skipSpace()
	}
	if len(q.Steps) == 0 {
		return nil, &ParseError{Pos: 0, Msg: "empty query"}
	}
	return q, nil
}

// MustParse parses or panics; for tests and static query tables.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(lit string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], lit) {
		return p.errf("expected %q", lit)
	}
	p.pos += len(lit)
	return nil
}

func (p *parser) peek(lit string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], lit)
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// parseName parses an element name test or bare word.
func (p *parser) parseName() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseStep() (Step, error) {
	if err := p.expect("//"); err != nil {
		return Step{}, err
	}
	var name string
	if p.peek("*") {
		p.pos++
		name = "*"
	} else {
		n, err := p.parseName()
		if err != nil {
			return Step{}, err
		}
		name = n
	}
	step := Step{Name: name}
	if p.peek("[") {
		p.pos++
		expr, err := p.parseOr()
		if err != nil {
			return Step{}, err
		}
		if err := p.expect("]"); err != nil {
			return Step{}, err
		}
		step.Pred = expr
	}
	return step, nil
}

// peekKeyword reports whether the next token is the given keyword followed
// by a non-word byte.
func (p *parser) peekKeyword(kw string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	rest := p.pos + len(kw)
	return rest >= len(p.src) || !isWordByte(p.src[rest])
}

func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Expr{left}
	for p.peekKeyword("or") {
		p.pos += len("or")
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &Expr{Kind: ExprOr, Children: children}, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	children := []*Expr{left}
	for p.peekKeyword("and") {
		p.pos += len("and")
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &Expr{Kind: ExprAnd, Children: children}, nil
}

func (p *parser) parsePrimary() (*Expr, error) {
	if p.peek("(") {
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseAbout()
}

func (p *parser) parseAbout() (*Expr, error) {
	if !p.peekKeyword("about") {
		return nil, p.errf("expected about(...)")
	}
	p.pos += len("about")
	if err := p.expect("("); err != nil {
		return nil, err
	}
	about := &About{}
	if err := p.expect("."); err != nil {
		return nil, err
	}
	for p.peek("//") {
		p.pos += 2
		if p.peek("*") {
			p.pos++
			about.Path = append(about.Path, "*")
			continue
		}
		n, err := p.parseName()
		if err != nil {
			return nil, err
		}
		about.Path = append(about.Path, n)
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated about()")
		}
		if p.src[p.pos] == ')' {
			break
		}
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		about.Terms = append(about.Terms, t)
	}
	p.pos++ // ')'
	if len(about.Terms) == 0 {
		return nil, p.errf("about() with no terms")
	}
	return &Expr{Kind: ExprAbout, About: about}, nil
}

func (p *parser) parseTerm() (Term, error) {
	p.skipSpace()
	var t Term
	for p.pos < len(p.src) {
		if p.src[p.pos] == '-' && !t.Minus {
			t.Minus = true
			p.pos++
			continue
		}
		if p.src[p.pos] == '+' && !t.Plus {
			t.Plus = true
			p.pos++
			continue
		}
		break
	}
	if p.pos < len(p.src) && p.src[p.pos] == '"' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return t, p.errf("unterminated phrase")
		}
		phrase := p.src[start:p.pos]
		p.pos++
		words := strings.Fields(strings.ToLower(phrase))
		if len(words) == 0 {
			return t, p.errf("empty phrase")
		}
		t.Phrase = words
		return t, nil
	}
	w, err := p.parseName()
	if err != nil {
		return t, p.errf("expected term")
	}
	t.Word = strings.ToLower(w)
	return t, nil
}
