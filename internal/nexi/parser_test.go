package nexi

import (
	"reflect"
	"testing"
)

func TestParseQ202Style(t *testing.T) {
	q, err := Parse(`//article[about(., XML)]//sec[about(., query evaluation)]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(q.Steps))
	}
	if q.Steps[0].Name != "article" || q.Steps[1].Name != "sec" {
		t.Fatalf("names = %q, %q", q.Steps[0].Name, q.Steps[1].Name)
	}
	abouts := q.Abouts()
	if len(abouts) != 2 {
		t.Fatalf("abouts = %d, want 2", len(abouts))
	}
	if abouts[0].StepIndex != 0 || abouts[1].StepIndex != 1 {
		t.Fatalf("about step indexes = %d, %d", abouts[0].StepIndex, abouts[1].StepIndex)
	}
	// Terms are lowercased.
	if abouts[0].About.Terms[0].Word != "xml" {
		t.Fatalf("term = %q, want xml", abouts[0].About.Terms[0].Word)
	}
	if got := q.AllTerms(); !reflect.DeepEqual(got, []string{"xml", "query", "evaluation"}) {
		t.Fatalf("AllTerms = %v", got)
	}
}

func TestParseAndConjunction(t *testing.T) {
	q, err := Parse(`//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`)
	if err != nil {
		t.Fatal(err)
	}
	pred := q.Steps[0].Pred
	if pred.Kind != ExprAnd || len(pred.Children) != 2 {
		t.Fatalf("pred = %+v", pred)
	}
	a0 := pred.Children[0].About
	if !reflect.DeepEqual(a0.Path, []string{"bdy"}) {
		t.Fatalf("about path = %v", a0.Path)
	}
	if a0.Terms[0].Word != "synthesizers" {
		t.Fatalf("term = %q", a0.Terms[0].Word)
	}
}

func TestParseOrAndParens(t *testing.T) {
	q, err := Parse(`//a[about(., x1) or (about(., y1) and about(., z1))]`)
	if err != nil {
		t.Fatal(err)
	}
	pred := q.Steps[0].Pred
	if pred.Kind != ExprOr || len(pred.Children) != 2 {
		t.Fatalf("pred = %+v", pred)
	}
	if pred.Children[1].Kind != ExprAnd {
		t.Fatalf("right child = %+v", pred.Children[1])
	}
	if len(q.Abouts()) != 3 {
		t.Fatalf("abouts = %d", len(q.Abouts()))
	}
}

func TestParseWildcardStep(t *testing.T) {
	q, err := Parse(`//bdy//*[about(., model checking state space explosion)]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Steps) != 2 || q.Steps[0].Name != "bdy" || q.Steps[1].Name != "*" {
		t.Fatalf("steps = %+v", q.Steps)
	}
	if q.Steps[0].Pred != nil {
		t.Fatal("bdy step must have no predicate")
	}
	terms := q.Steps[1].Pred.About.Terms
	if len(terms) != 5 {
		t.Fatalf("terms = %d, want 5", len(terms))
	}
}

func TestParsePhraseAndQualifiers(t *testing.T) {
	q, err := Parse(`//article[about(., "genetic algorithm")]`)
	if err != nil {
		t.Fatal(err)
	}
	tm := q.Steps[0].Pred.About.Terms[0]
	if !reflect.DeepEqual(tm.Phrase, []string{"genetic", "algorithm"}) {
		t.Fatalf("phrase = %v", tm.Phrase)
	}
	if !reflect.DeepEqual(tm.Words(), []string{"genetic", "algorithm"}) {
		t.Fatalf("Words = %v", tm.Words())
	}

	q2, err := Parse(`//article//figure[about(., Renaissance painting Italian Flemish -French -German)]`)
	if err != nil {
		t.Fatal(err)
	}
	terms := q2.Steps[1].Pred.About.Terms
	if len(terms) != 6 {
		t.Fatalf("terms = %d, want 6", len(terms))
	}
	if !terms[4].Minus || terms[4].Word != "french" {
		t.Fatalf("term[4] = %+v", terms[4])
	}
	if !terms[5].Minus || terms[5].Word != "german" {
		t.Fatalf("term[5] = %+v", terms[5])
	}
	// Minus terms are excluded from AllTerms.
	all := q2.AllTerms()
	for _, w := range all {
		if w == "french" || w == "german" {
			t.Fatalf("AllTerms contains negated %q", w)
		}
	}
	if len(all) != 4 {
		t.Fatalf("AllTerms = %v", all)
	}
}

func TestParsePlusQualifier(t *testing.T) {
	q, err := Parse(`//a[about(., +must maybe)]`)
	if err != nil {
		t.Fatal(err)
	}
	terms := q.Steps[0].Pred.About.Terms
	if !terms[0].Plus || terms[0].Word != "must" {
		t.Fatalf("term[0] = %+v", terms[0])
	}
	if terms[1].Plus || terms[1].Word != "maybe" {
		t.Fatalf("term[1] = %+v", terms[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`article`,
		`//`,
		`//a[`,
		`//a[about(, x)]`,
		`//a[about(. x)]`,
		`//a[about(., )]`,
		`//a[about(., "unterminated)]`,
		`//a[about(., x) and ]`,
		`//a[notabout(., x)]`,
		`//a[about(., x) or]`,
		`//a[(about(., x)]`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("Parse(%q) error type = %T", src, err)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	srcs := []string{
		`//article[about(., xml)]//sec[about(., query evaluation)]`,
		`//article[about(.//bdy, synthesizers) and about(.//bdy, music)]`,
		`//bdy//*[about(., model checking)]`,
		`//article[about(., "genetic algorithm")]`,
		`//article//figure[about(., renaissance painting -french -german)]`,
		`//a[about(., x1) or (about(., y2) and about(., z3))]`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("unstable round trip: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestKeywordPrefixNamesNotConfused(t *testing.T) {
	// Element names that start with 'and'/'or'/'about' must parse as names.
	q, err := Parse(`//android[about(.//orbit, anderson organ aboutness)]`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Steps[0].Name != "android" {
		t.Fatalf("name = %q", q.Steps[0].Name)
	}
	a := q.Steps[0].Pred.About
	if a.Path[0] != "orbit" {
		t.Fatalf("path = %v", a.Path)
	}
	if len(a.Terms) != 3 || a.Terms[0].Word != "anderson" || a.Terms[2].Word != "aboutness" {
		t.Fatalf("terms = %+v", a.Terms)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(`not a query`)
}
