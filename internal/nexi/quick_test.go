package nexi

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// genQuery builds a random syntactically valid query, returning the AST
// we expect Parse to produce for it.
func genQuery(rng *rand.Rand) *Query {
	names := []string{"article", "sec", "bdy", "fig", "p", "title", "xyz"}
	words := []string{"xml", "retrieval", "genetic", "ontologies", "music", "space"}
	q := &Query{}
	nSteps := 1 + rng.Intn(3)
	for i := 0; i < nSteps; i++ {
		step := Step{Name: names[rng.Intn(len(names))]}
		if rng.Intn(4) == 0 {
			step.Name = "*"
		}
		// Last step always carries a predicate so the query is retrievable;
		// earlier steps sometimes.
		if i == nSteps-1 || rng.Intn(2) == 0 {
			step.Pred = genExpr(rng, names, words, 2)
		}
		q.Steps = append(q.Steps, step)
	}
	return q
}

func genExpr(rng *rand.Rand, names, words []string, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		about := &About{}
		for i := rng.Intn(3); i > 0; i-- {
			about.Path = append(about.Path, names[rng.Intn(len(names))])
		}
		nTerms := 1 + rng.Intn(3)
		for i := 0; i < nTerms; i++ {
			t := Term{}
			switch rng.Intn(4) {
			case 0:
				t.Phrase = []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]}
			case 1:
				t.Word = words[rng.Intn(len(words))]
				t.Minus = true
			case 2:
				t.Word = words[rng.Intn(len(words))]
				t.Plus = true
			default:
				t.Word = words[rng.Intn(len(words))]
			}
			about.Terms = append(about.Terms, t)
		}
		return &Expr{Kind: ExprAbout, About: about}
	}
	kind := ExprAnd
	if rng.Intn(2) == 0 {
		kind = ExprOr
	}
	n := 2 + rng.Intn(2)
	e := &Expr{Kind: kind}
	for i := 0; i < n; i++ {
		e.Children = append(e.Children, genExpr(rng, names, words, depth-1))
	}
	return e
}

// TestQuickParseRoundTrip property: Parse(q.String()) reproduces the AST
// for randomly generated queries.
func TestQuickParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2007))
	for trial := 0; trial < 500; trial++ {
		want := genQuery(rng)
		src := want.String()
		got, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		// Compare via re-rendering (normalizes nothing: String is
		// deterministic) and via structural equality of the exported AST.
		if got.String() != src {
			t.Fatalf("trial %d: %q -> %q", trial, src, got.String())
		}
		if !queriesEqual(want, got) {
			t.Fatalf("trial %d: AST mismatch for %q", trial, src)
		}
	}
}

func queriesEqual(a, b *Query) bool {
	if len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		if a.Steps[i].Name != b.Steps[i].Name {
			return false
		}
		if !exprsEqual(a.Steps[i].Pred, b.Steps[i].Pred) {
			return false
		}
	}
	return true
}

func exprsEqual(a, b *Expr) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Kind != b.Kind || len(a.Children) != len(b.Children) {
		return false
	}
	if a.Kind == ExprAbout {
		if !reflect.DeepEqual(a.About.Path, b.About.Path) {
			return false
		}
		if !reflect.DeepEqual(a.About.Terms, b.About.Terms) {
			return false
		}
		return true
	}
	for i := range a.Children {
		if !exprsEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestQuickParserNeverPanics property: arbitrary garbage never panics the
// parser; it either parses or returns a ParseError.
func TestQuickParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := `//[]()"aboutandor -+.,xyz  `
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			q, err := Parse(src)
			if err == nil {
				// Whatever parsed must round-trip.
				if _, err2 := Parse(q.String()); err2 != nil {
					t.Fatalf("accepted %q but rendering %q fails: %v", src, q.String(), err2)
				}
			}
		}()
	}
}
