package nexi

import (
	"fmt"
	"strings"

	"trex/internal/xmlscan"
)

// Topic is one entry of an INEX-style topics file: the NEXI query (from
// the castitle element) plus its metadata.
type Topic struct {
	// ID is the topic_id attribute (e.g. "202").
	ID string
	// Raw is the castitle text as written.
	Raw string
	// Query is the parsed NEXI query; nil if parsing failed (see Err).
	Query *Query
	// Err records a castitle parse failure; the topic is still listed so
	// callers can report coverage.
	Err error
	// Description is the topic's free-text description, if present.
	Description string
}

// ParseTopics reads an INEX-style topics file: any elements whose tag
// contains "topic" and that carry a topic_id attribute become topics;
// their castitle (or title) child provides the NEXI query. The INEX 2005
// CAS topic format looks like:
//
//	<inex_topic topic_id="202" query_type="CAS">
//	  <castitle>//article[about(., ...)]//sec[about(., ...)]</castitle>
//	  <description>...</description>
//	</inex_topic>
//
// Multiple topics may appear under any wrapper element.
func ParseTopics(data []byte) ([]Topic, error) {
	s := xmlscan.NewScanner(data)
	s.CaptureAttrs = true
	var topics []Topic
	var cur *Topic
	var textTarget *string // where character data accumulates
	depthInTopic := 0
	for s.Next() {
		ev := s.Event()
		switch ev.Kind {
		case xmlscan.KindStart:
			if cur == nil {
				if strings.Contains(strings.ToLower(ev.Name), "topic") {
					for _, a := range ev.Attrs {
						if a.Name == "topic_id" || a.Name == "id" {
							topics = append(topics, Topic{ID: a.Value})
							cur = &topics[len(topics)-1]
							depthInTopic = 0
							break
						}
					}
				}
				continue
			}
			depthInTopic++
			switch strings.ToLower(ev.Name) {
			case "castitle", "title":
				textTarget = &cur.Raw
			case "description":
				textTarget = &cur.Description
			default:
				textTarget = nil
			}
		case xmlscan.KindText:
			if textTarget != nil {
				*textTarget += string(ev.Text)
			}
		case xmlscan.KindEnd:
			if cur == nil {
				continue
			}
			if depthInTopic == 0 {
				// The topic element itself closed: finalize.
				cur.Raw = strings.TrimSpace(cur.Raw)
				cur.Description = strings.TrimSpace(cur.Description)
				if cur.Raw == "" {
					cur.Err = fmt.Errorf("nexi: topic %s has no castitle", cur.ID)
				} else {
					cur.Query, cur.Err = Parse(cur.Raw)
				}
				cur = nil
				textTarget = nil
				continue
			}
			depthInTopic--
			textTarget = nil
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("nexi: no topics found")
	}
	return topics, nil
}
