package nexi

import (
	"strings"
	"testing"
)

const sampleTopics = `<?xml version="1.0"?>
<inex_topics>
  <inex_topic topic_id="202" query_type="CAS">
    <castitle>//article[about(., ontologies)]//sec[about(., case study)]</castitle>
    <description>Sections about ontology case studies.</description>
  </inex_topic>
  <inex_topic topic_id="233" query_type="CAS">
    <castitle>//article[about(.//bdy, synthesizers) and about(.//bdy, music)]</castitle>
  </inex_topic>
  <inex_topic topic_id="999" query_type="CAS">
    <castitle>this is not nexi</castitle>
  </inex_topic>
</inex_topics>`

func TestParseTopics(t *testing.T) {
	topics, err := ParseTopics([]byte(sampleTopics))
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 3 {
		t.Fatalf("topics = %d, want 3", len(topics))
	}
	if topics[0].ID != "202" || topics[1].ID != "233" || topics[2].ID != "999" {
		t.Fatalf("ids = %s %s %s", topics[0].ID, topics[1].ID, topics[2].ID)
	}
	if topics[0].Err != nil {
		t.Fatalf("topic 202 failed: %v", topics[0].Err)
	}
	if len(topics[0].Query.Steps) != 2 || topics[0].Query.Steps[1].Name != "sec" {
		t.Fatalf("topic 202 query = %+v", topics[0].Query)
	}
	if !strings.Contains(topics[0].Description, "case studies") {
		t.Fatalf("description = %q", topics[0].Description)
	}
	if topics[1].Err != nil || len(topics[1].Query.Abouts()) != 2 {
		t.Fatalf("topic 233 = %+v", topics[1])
	}
	// Unparseable castitle is reported, not fatal.
	if topics[2].Err == nil {
		t.Fatal("topic 999 should have a parse error")
	}
}

func TestParseTopicsGenericTags(t *testing.T) {
	// Other wrappers and the plain "topic"/"title" naming also work.
	doc := `<topics><topic id="A1"><title>//sec[about(., xml)]</title></topic></topics>`
	topics, err := ParseTopics([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 1 || topics[0].ID != "A1" || topics[0].Err != nil {
		t.Fatalf("topics = %+v", topics)
	}
}

func TestParseTopicsErrors(t *testing.T) {
	if _, err := ParseTopics([]byte(`<topics></topics>`)); err == nil {
		t.Fatal("no-topic file accepted")
	}
	if _, err := ParseTopics([]byte(`<broken`)); err == nil {
		t.Fatal("malformed file accepted")
	}
	// Topic without castitle gets a per-topic error.
	topics, err := ParseTopics([]byte(`<topics><topic topic_id="7"><other>x</other></topic></topics>`))
	if err != nil {
		t.Fatal(err)
	}
	if topics[0].Err == nil {
		t.Fatal("castitle-less topic should carry an error")
	}
}
