package oracle_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"trex"
	"trex/internal/index"
	"trex/internal/oracle"
)

// cachedCaseWords mirrors the generator's closed term alphabet (gen.go);
// the tags below are the generator's element tags plus the <doc> root.
var (
	cachedCaseWords = []string{"ax", "bx", "cx", "dx", "ex"}
	cachedCaseTags  = []string{"doc", "r", "s", "t", "u"}
)

// TestCachedDifferential200Cases extends the differential oracle to the
// front door's result cache: 200 seeded cases, each asserting that the
// cache fill and the subsequent hit return rankings byte-identical to
// an uncached evaluation, for every strategy. No tolerance — the cache
// stores the engine's own Result, so any drift means a stale or
// miskeyed entry.
func TestCachedDifferential200Cases(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runCachedCase(t, seed)
		})
	}
}

func runCachedCase(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(64)
	col := oracle.GenCollection(seed, perm[:4+rng.Intn(8)])
	eng, err := trex.CreateMemory(col, &trex.Options{
		Telemetry: &trex.TelemetryOptions{Disabled: true},
		FrontDoor: &trex.FrontDoorOptions{CacheEntries: 64},
	})
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	defer eng.Close()

	tag := cachedCaseTags[rng.Intn(len(cachedCaseTags))]
	wordPerm := rng.Perm(len(cachedCaseWords))
	var words []string
	for _, w := range wordPerm[:1+rng.Intn(3)] {
		words = append(words, cachedCaseWords[w])
	}
	q := fmt.Sprintf("//%s[about(., %s)]", tag, strings.Join(words, " "))
	if _, err := eng.Translate(q); err != nil {
		// The random tag is absent from this corpus's summary; the root
		// always translates.
		q = fmt.Sprintf("//doc[about(., %s)]", strings.Join(words, " "))
	}
	k := []int{1, 2, 3, 10, 0}[rng.Intn(5)]

	if _, err := eng.Materialize(q, index.KindRPL, index.KindERPL); err != nil {
		t.Fatalf("seed %d: materialize %q: %v", seed, q, err)
	}
	for _, m := range []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodNRA, trex.MethodMerge} {
		baseline, err := eng.QueryOpts(q, trex.QueryOptions{K: k, Method: m, NoCache: true})
		if err != nil {
			t.Fatalf("seed %d: %v uncached: %v", seed, m, err)
		}
		fill, err := eng.QueryOpts(q, trex.QueryOptions{K: k, Method: m})
		if err != nil {
			t.Fatalf("seed %d: %v fill: %v", seed, m, err)
		}
		if fill.Cached {
			t.Fatalf("seed %d: %v: first cache-eligible query claims cached", seed, m)
		}
		hit, err := eng.QueryOpts(q, trex.QueryOptions{K: k, Method: m})
		if err != nil {
			t.Fatalf("seed %d: %v hit: %v", seed, m, err)
		}
		if !hit.Cached {
			t.Fatalf("seed %d: %v: repeat query not served from cache", seed, m)
		}
		if !reflect.DeepEqual(baseline.Answers, fill.Answers) {
			t.Fatalf("seed %d: %v: fill ranking differs from uncached (q=%q k=%d)\nuncached: %+v\nfill:     %+v",
				seed, m, q, k, baseline.Answers, fill.Answers)
		}
		if !reflect.DeepEqual(baseline.Answers, hit.Answers) {
			t.Fatalf("seed %d: %v: cached ranking differs from uncached (q=%q k=%d)\nuncached: %+v\ncached:   %+v",
				seed, m, q, k, baseline.Answers, hit.Answers)
		}
	}
}
