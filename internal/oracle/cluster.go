package oracle

import (
	"fmt"
	"strings"

	"trex"
	"trex/internal/cluster"
	"trex/internal/corpus"
	"trex/internal/index"
)

// The distributed differential oracle. A single engine built over the
// whole case corpus is the ground truth; the same corpus served by an
// N-shard, R-replica cluster must return byte-identical rankings —
// same documents, same spans, same sids, same exact scores, same
// TotalAnswers — for every retrieval method, across the whole
// (shards, replicas) grid. Any drift is a bug in the distributed tier's
// two invariants (shared sid space, globally synced statistics) or in
// the coordinator's threshold merge, and shrinks to a 1-minimal case
// exactly like the strategy oracle's failures do.

// clusterShards and clusterReplicas define the differential grid.
var (
	clusterShards   = []int{1, 2, 4}
	clusterReplicas = []int{1, 2}
)

// clusterMethods are the retrieval methods the coordinator is checked
// under; rankings must be method-independent AND distribution-independent.
var clusterMethods = []trex.Method{trex.MethodERA, trex.MethodTA, trex.MethodNRA, trex.MethodMerge}

// ClusterQuery derives the case's NEXI query: the target tag comes from
// the case seed (all four generator tags appear across a sweep) and the
// about() filter carries the case terms. Every component the generator
// emits is dense in the corpus, so queries return real multi-shard
// result sets instead of empty ones.
func ClusterQuery(c Case) string {
	tag := genTags[int(uint64(c.Seed))%len(genTags)]
	return fmt.Sprintf("//%s[about(., %s)]", tag, strings.Join(c.Terms, " "))
}

// CheckCluster runs one distributed differential case over the full
// grid. A nil *Mismatch means every (shards, replicas, method) cell
// agreed with the single engine; a non-nil error is a harness failure
// (build or query error), which is a bug too but not a ranking
// divergence. The Mismatch reuses the strategy oracle's type: Store
// names the grid cell, Strategy the method.
func CheckCluster(c Case) (*Mismatch, error) {
	return checkCluster(c, nil)
}

// clusterPerturbFunc lets harness tests corrupt one grid cell's answers
// before comparison, proving the cluster oracle's detect/shrink/repro
// machinery catches real coordinator drift.
type clusterPerturbFunc func(cell, method string, answers []trex.Answer) []trex.Answer

// CheckClusterPerturbed is CheckCluster with a perturbation hook applied
// to every coordinator result. Harness tests only.
func CheckClusterPerturbed(c Case, perturb clusterPerturbFunc) (*Mismatch, error) {
	return checkCluster(c, perturb)
}

func checkCluster(c Case, perturb clusterPerturbFunc) (*Mismatch, error) {
	if len(c.DocIDs) == 0 || len(c.Terms) == 0 {
		return nil, fmt.Errorf("oracle: degenerate cluster case %+v", c)
	}
	src := ClusterQuery(c)
	col := GenCollection(c.Seed, c.DocIDs)
	single, err := trex.CreateMemory(col, &trex.Options{Telemetry: &trex.TelemetryOptions{Disabled: true}})
	if err != nil {
		return nil, fmt.Errorf("oracle: build single engine: %w", err)
	}
	defer single.Close()
	// TA/NRA/Merge read only materialized RPL/ERPL lists; build them on
	// both sides so every method cell evaluates real retrieval.
	if _, err := single.Materialize(src, index.KindRPL, index.KindERPL); err != nil {
		return nil, fmt.Errorf("oracle: single materialize: %w", err)
	}

	want := map[trex.Method]*trex.Result{}
	for _, m := range clusterMethods {
		res, err := single.QueryOpts(src, trex.QueryOptions{K: c.K, Method: m})
		if err != nil {
			return nil, fmt.Errorf("oracle: single %v query: %w", m, err)
		}
		want[m] = res
	}

	for _, shards := range clusterShards {
		for _, replicas := range clusterReplicas {
			cell := fmt.Sprintf("cluster N=%d R=%d", shards, replicas)
			mm, err := checkClusterCell(c, col, src, cell, shards, replicas, want, perturb)
			if err != nil || mm != nil {
				return mm, err
			}
		}
	}
	return nil, nil
}

// checkClusterCell builds one (shards, replicas) cluster over the case
// corpus and checks every method against the single-engine reference.
func checkClusterCell(c Case, col *corpus.Collection, src, cell string, shards, replicas int, want map[trex.Method]*trex.Result, perturb clusterPerturbFunc) (*Mismatch, error) {
	cl, err := cluster.New(col, cluster.Options{
		Shards:   shards,
		Replicas: replicas,
		Engine:   trex.Options{Telemetry: &trex.TelemetryOptions{Disabled: true}},
		// The coordinator's own trex_cluster_* registry is noise here;
		// per-case construction should stay cheap.
		DisableMetrics: true,
	})
	if err != nil {
		return nil, fmt.Errorf("oracle: build %s: %w", cell, err)
	}
	defer cl.Close()
	if err := cl.Materialize(src, index.KindRPL, index.KindERPL); err != nil {
		return nil, fmt.Errorf("oracle: %s materialize: %w", cell, err)
	}
	for _, m := range clusterMethods {
		got, err := cl.Query(src, c.K, m)
		if err != nil {
			return nil, fmt.Errorf("oracle: %s %v: %w", cell, m, err)
		}
		answers := got.Answers
		if perturb != nil {
			answers = perturb(cell, m.String(), answers)
		}
		if d := diffAnswers(want[m].Answers, answers); d != "" {
			return &Mismatch{Case: c, Store: cell, Strategy: m.String(), Detail: d, Cluster: true}, nil
		}
		if got.TotalAnswers != want[m].TotalAnswers {
			return &Mismatch{Case: c, Store: cell, Strategy: m.String(),
				Detail:  fmt.Sprintf("TotalAnswers %d, want %d", got.TotalAnswers, want[m].TotalAnswers),
				Cluster: true}, nil
		}
	}
	return nil, nil
}

// diffAnswers reports the first divergence between two engine-shaped
// answer lists, or "" when they are byte-identical (every field,
// including exact scores).
func diffAnswers(want, got []trex.Answer) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	return ""
}

// ShrinkCluster minimizes a failing cluster case to 1-minimality under
// CheckCluster, mirroring Shrink for the strategy oracle.
func ShrinkCluster(c Case) Case {
	return Shrink(c, func(cand Case) bool {
		m, err := CheckCluster(cand)
		return err == nil && m != nil
	})
}
