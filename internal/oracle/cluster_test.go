package oracle_test

import (
	"math/rand"
	"strings"
	"testing"

	"trex"
	"trex/internal/oracle"
)

// TestClusterDifferential200Cases is the CI-mode distributed oracle
// sweep: 200 seeded cases, each asserting the coordinator returns
// byte-identical rankings to a single engine over the same corpus,
// for ERA, TA, NRA, and Merge across the shards{1,2,4} x replicas{1,2}
// grid.
func TestClusterDifferential200Cases(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			c := oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
			m, err := oracle.CheckCluster(c)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v (case %+v)", seed, err, c)
			}
			if m != nil {
				t.Fatalf("seed %d: %s\n\n%s", seed, m, shrunkClusterRepro(m.Case))
			}
		})
	}
}

// shrunkClusterRepro minimizes a genuinely failing distributed case and
// renders its regression test, so a red cluster-oracle run prints
// something paste-ready.
func shrunkClusterRepro(c oracle.Case) string {
	shrunk := oracle.ShrinkCluster(c)
	m, err := oracle.CheckCluster(shrunk)
	if err != nil || m == nil {
		m = &oracle.Mismatch{Case: shrunk, Store: "?", Strategy: "?",
			Detail: "shrink lost the failure", Cluster: true}
	}
	return m.Repro()
}

// TestClusterPerturbationShrinksToMinimalRepro proves the distributed
// harness end to end by corrupting one grid cell's coordinator output:
// the oracle must flag it, ShrinkCluster must converge on a 1-minimal
// case that still fails, and Repro must print a CheckCluster-based
// regression test.
func TestClusterPerturbationShrinksToMinimalRepro(t *testing.T) {
	// Drop TA's last answer on the 2-shard single-replica cell — a
	// deterministic "coordinator bug" that fires whenever that cell
	// returns any answers.
	perturb := func(cell, method string, answers []trex.Answer) []trex.Answer {
		if cell == "cluster N=2 R=1" && method == "ta" && len(answers) > 0 {
			return answers[:len(answers)-1]
		}
		return answers
	}
	failing := func(c oracle.Case) bool {
		m, err := oracle.CheckClusterPerturbed(c, perturb)
		return err == nil && m != nil
	}

	var c oracle.Case
	found := false
	for seed := int64(1); seed <= 50 && !found; seed++ {
		c = oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
		found = failing(c)
	}
	if !found {
		t.Fatal("no seed in 1..50 produced TA answers on the 2-shard cell — generator is broken")
	}

	shrunk := oracle.Shrink(c, failing)
	if !failing(shrunk) {
		t.Fatalf("shrunk case no longer fails: %+v", shrunk)
	}
	if len(shrunk.DocIDs) > len(c.DocIDs) || len(shrunk.Terms) > len(c.Terms) {
		t.Fatalf("shrink grew the case: %+v -> %+v", c, shrunk)
	}
	// 1-minimality: removing any single remaining component must make
	// the failure vanish.
	for i := range shrunk.DocIDs {
		if len(shrunk.DocIDs) > 1 {
			cand := shrunk
			cand.DocIDs = append(append([]int(nil), shrunk.DocIDs[:i]...), shrunk.DocIDs[i+1:]...)
			if failing(cand) {
				t.Fatalf("not 1-minimal: doc %d is removable", shrunk.DocIDs[i])
			}
		}
	}
	for i := range shrunk.Terms {
		if len(shrunk.Terms) > 1 {
			cand := shrunk
			cand.Terms = append(append([]string(nil), shrunk.Terms[:i]...), shrunk.Terms[i+1:]...)
			if failing(cand) {
				t.Fatalf("not 1-minimal: term %q is removable", shrunk.Terms[i])
			}
		}
	}

	m, err := oracle.CheckClusterPerturbed(shrunk, perturb)
	if err != nil || m == nil {
		t.Fatalf("CheckClusterPerturbed on shrunk case = %v, %v", m, err)
	}
	repro := m.Repro()
	if !strings.Contains(repro, "oracle.CheckCluster(c)") ||
		!strings.Contains(repro, "func TestOracleRegressionSeed") {
		t.Fatalf("repro is not a paste-ready CheckCluster test:\n%s", repro)
	}
}

// TestClusterQueryNonDegenerate guards the generator contract the
// distributed sweep relies on: across the first 200 seeds, a healthy
// majority of cases must return answers at all (an oracle that mostly
// compares empty rankings proves nothing) and every generator tag must
// appear as a query target.
func TestClusterQueryNonDegenerate(t *testing.T) {
	tags := map[string]bool{}
	nonEmpty := 0
	for seed := int64(1); seed <= 200; seed++ {
		c := oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
		q := oracle.ClusterQuery(c)
		start := strings.Index(q, "//") + 2
		end := strings.Index(q, "[")
		tags[q[start:end]] = true
		if len(c.DocIDs) > 0 && len(c.Terms) > 0 {
			nonEmpty++
		}
	}
	if len(tags) < 4 {
		t.Fatalf("only %d distinct target tags across 200 seeds: %v", len(tags), tags)
	}
	if nonEmpty < 200 {
		t.Fatalf("%d/200 cases degenerate", 200-nonEmpty)
	}
}
