package oracle_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"trex/internal/oracle"
)

// TestCrashRecoverySweep loops seeded cases through a commit that dies
// between the segment fsync and the manifest swap: after each simulated
// crash the recovered store must serve the old generation with rankings
// byte-identical to the exhaustive baseline.
func TestCrashRecoverySweep(t *testing.T) {
	root := t.TempDir()
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			c := oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
			dir := filepath.Join(root, strconv.FormatInt(seed, 10))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			m, err := oracle.CheckCrashRecovery(c, 3, dir)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v (case %+v)", seed, err, c)
			}
			if m != nil {
				t.Fatalf("seed %d: %s", seed, m)
			}
		})
	}
}
