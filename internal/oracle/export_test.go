package oracle

import "trex/internal/retrieval"

// CheckPerturbed exposes the perturbation hook to the harness's own
// tests: corrupting one strategy's output proves the oracle detects
// drift and that Shrink/Repro converge on it.
func CheckPerturbed(c Case, perturb func(store, strategy string, res []retrieval.Scored) []retrieval.Scored) (*Mismatch, error) {
	return check(c, perturb)
}

// CheckUniversePerturbed is the same hook for the cross-universe
// oracle; the store argument is a "universe/format" cell like
// "json/v2".
func CheckUniversePerturbed(c Case, perturb func(store, strategy string, res []retrieval.Scored) []retrieval.Scored) (*Mismatch, error) {
	return checkUniverse(c, perturb)
}
