package oracle

import (
	"trex/internal/corpus"
	"trex/internal/oracle/gen"
)

// The generator proper lives in the leaf package internal/oracle/gen so
// the root package's tests can build seeded corpora without importing
// the oracle (which imports trex via the cluster check). These aliases
// keep the oracle's historical API.
var (
	genTags  = gen.Tags
	genWords = gen.Words
)

// GenDoc generates document id d from (seed, d) alone; see gen.Doc.
func GenDoc(seed int64, d int) corpus.Document { return gen.Doc(seed, d) }

// GenCollection materializes the case's documents; see gen.Collection.
func GenCollection(seed int64, docIDs []int) *corpus.Collection {
	return gen.Collection(seed, docIDs)
}
