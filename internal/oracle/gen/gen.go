// Package gen is the oracle's seeded corpus generator, split out as a
// leaf so packages that only need deterministic test corpora (notably
// the root package's own tests) can import it without pulling in the
// oracle's engine and cluster dependencies.
package gen

import (
	"math/rand"
	"strings"

	"trex/internal/corpus"
)

// The generator's closed alphabet. A handful of tags and terms keeps
// random (sids, terms) clauses dense in the data, so differential cases
// exercise real multi-list retrieval instead of returning empty sets.
var (
	Tags  = []string{"r", "s", "t", "u"}
	Words = []string{"ax", "bx", "cx", "dx", "ex"}
)

// Doc generates document id d from (seed, d) alone. Per-document
// seeding is what makes shrinking sound: removing one document from a
// case never changes the content of the documents that remain, so a
// shrunk case reproduces byte-identical stores.
func Doc(seed int64, d int) corpus.Document {
	rng := rand.New(rand.NewSource(seed ^ int64(d)*0x9E3779B9))
	var sb strings.Builder
	var emit func(depth int)
	emit = func(depth int) {
		tag := Tags[rng.Intn(len(Tags))]
		sb.WriteString("<" + tag + ">")
		for i := 1 + rng.Intn(4); i > 0; i-- {
			sb.WriteString(Words[rng.Intn(len(Words))] + " ")
		}
		if depth < 3 {
			for i := rng.Intn(3); i > 0; i-- {
				emit(depth + 1)
				sb.WriteString(Words[rng.Intn(len(Words))] + " ")
			}
		}
		sb.WriteString("</" + tag + ">")
	}
	sb.WriteString("<doc>")
	emit(0)
	sb.WriteString("</doc>")
	return corpus.Document{ID: d, Data: []byte(sb.String())}
}

// Collection materializes a case's documents. Store-facing ids are
// renumbered dense from 0 (the index requires a dense sequence), while
// content stays keyed by the original generator ids, preserving each
// surviving document across shrink steps.
func Collection(seed int64, docIDs []int) *corpus.Collection {
	docs := make([]corpus.Document, len(docIDs))
	for i, d := range docIDs {
		doc := Doc(seed, d)
		doc.ID = i
		docs[i] = doc
	}
	return &corpus.Collection{Docs: docs}
}
