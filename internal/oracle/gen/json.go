package gen

import (
	"math/rand"
	"strconv"
	"strings"

	"trex/internal/corpus"
	"trex/internal/jsoncorpus"
)

// JSONDoc generates JSON document id d from (seed, d) alone, over the
// same closed alphabet as Doc: object keys come from Tags (keys map to
// element tags in the canonical rendering) and string values from
// Words, so a case's (sids, terms) clause is dense in either universe.
// The value shapes deliberately cover the whole mapping: nested
// objects, arrays (including empty and nested ones), numbers, booleans,
// and nulls all appear. Per-document seeding keeps shrinking sound,
// exactly as for Doc.
func JSONDoc(seed int64, d int) corpus.Document {
	rng := rand.New(rand.NewSource(seed ^ int64(d)*0x9E3779B9))
	var sb strings.Builder
	text := func() {
		sb.WriteByte('"')
		for i := 1 + rng.Intn(4); i > 0; i-- {
			sb.WriteString(Words[rng.Intn(len(Words))])
			if i > 1 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('"')
	}
	var value func(depth int)
	object := func(depth int) {
		sb.WriteByte('{')
		keys := rng.Perm(len(Tags))[:1+rng.Intn(3)]
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(`"` + Tags[k] + `":`)
			value(depth + 1)
		}
		sb.WriteByte('}')
	}
	value = func(depth int) {
		n := rng.Intn(10)
		if depth >= 3 && n < 4 {
			n += 4 // leaves only below the depth cap
		}
		switch n {
		case 0, 1:
			object(depth)
		case 2, 3:
			sb.WriteByte('[')
			for i := rng.Intn(4); i > 0; i-- {
				value(depth + 1)
				if i > 1 {
					sb.WriteByte(',')
				}
			}
			sb.WriteByte(']')
		case 4, 5, 6:
			text()
		case 7:
			sb.WriteString(strconv.Itoa(10 + rng.Intn(90)))
		case 8:
			sb.WriteString([]string{"true", "false"}[rng.Intn(2)])
		default:
			sb.WriteString("null")
		}
	}
	object(0)
	return corpus.Document{ID: d, Data: []byte(sb.String())}
}

// JSONCollection materializes a case's documents in the JSON universe,
// renumbered dense from 0 like Collection.
func JSONCollection(seed int64, docIDs []int) *corpus.Collection {
	docs := make([]corpus.Document, len(docIDs))
	for i, d := range docIDs {
		doc := JSONDoc(seed, d)
		doc.ID = i
		docs[i] = doc
	}
	return &corpus.Collection{Docs: docs, Format: corpus.FormatJSON}
}

// XMLRendering maps a JSON collection to its canonical XML rendering:
// the same documents, same ids, byte layout as defined by the
// jsoncorpus mapping. Indexing either collection must produce
// byte-identical rankings; the cross-universe oracle asserts exactly
// that.
func XMLRendering(col *corpus.Collection) (*corpus.Collection, error) {
	docs := make([]corpus.Document, len(col.Docs))
	for i, d := range col.Docs {
		xml, err := jsoncorpus.ToXML(d.Data)
		if err != nil {
			return nil, err
		}
		docs[i] = corpus.Document{ID: d.ID, Data: xml}
	}
	return &corpus.Collection{Docs: docs, Format: corpus.FormatXML}, nil
}
