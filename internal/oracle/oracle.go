// Package oracle is a randomized differential-testing harness for the
// retrieval strategies. Every case generates a seeded corpus plus a
// (sids, terms, k) clause, builds four stores — v1 row-per-entry lists,
// v2 block-encoded lists, a store mixing both formats, and a store
// serving v2 lists from an immutable mmap'd segment instead of the
// pager — and asserts that TA, NRA, and Merge return rankings
// byte-identical to the exhaustive baseline on all of them. No
// tolerance: the codecs round-trip scores exactly, so any drift is a
// bug.
//
// A fifth "Auto" column routes each case through the query planner: a
// per-case-calibrated planner picks a method from the case's feature
// vector and the oracle runs whatever it decided, asserting routing can
// never change a ranking. The calibration is seeded per case so the
// sweep exercises all four routes, not just the cold-start picks.
//
// CheckCrashRecovery additionally loops each case through a crash that
// dies between the segment fsync and the manifest swap, asserting the
// old generation serves intact after recovery.
//
// Failures shrink to a minimal (corpus, query) pair and print as a
// ready-to-paste regression test (Mismatch.Repro); because documents are
// seeded per-id (see GenDoc), a shrunk case replays deterministically.
package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"trex/internal/corpus"
	"trex/internal/faultinject"
	"trex/internal/index"
	"trex/internal/planner"
	"trex/internal/retrieval"
	"trex/internal/score"
	"trex/internal/segment"
	"trex/internal/storage"
	"trex/internal/summary"
)

// Case is one differential trial, fully determined by its fields: the
// corpus is GenCollection(Seed, DocIDs) and the clause is (SIDs, Terms)
// evaluated at top-K (K <= 0 means all answers).
type Case struct {
	Seed   int64
	DocIDs []int
	SIDs   []uint32
	Terms  []string
	K      int
}

// NewCase draws a random case from rng, stamping it with seed. The sid
// range deliberately overshoots small summaries: out-of-extent sids must
// be a no-op for every strategy, and the oracle checks exactly that.
func NewCase(rng *rand.Rand, seed int64) Case {
	perm := rng.Perm(64)
	c := Case{Seed: seed, DocIDs: append([]int(nil), perm[:4+rng.Intn(8)]...)}
	sidPerm := rng.Perm(8)
	for _, s := range sidPerm[:1+rng.Intn(5)] {
		c.SIDs = append(c.SIDs, uint32(s+1))
	}
	wordPerm := rng.Perm(len(genWords))
	for _, w := range wordPerm[:1+rng.Intn(3)] {
		c.Terms = append(c.Terms, genWords[w])
	}
	c.K = []int{1, 2, 3, 10, 0}[rng.Intn(5)]
	return c
}

// Mismatch describes one strategy disagreeing with the exhaustive
// baseline on one store.
type Mismatch struct {
	Case     Case
	Store    string // "v1", "v2", "mixed", "segment", or a cluster grid cell
	Strategy string // "TA", "NRA", "Merge", or "Auto"
	Detail   string
	// Cluster marks a distributed-oracle failure (CheckCluster); Repro
	// then renders a CheckCluster regression instead of a Check one.
	Cluster bool
	// Universe marks a cross-universe failure (CheckUniverse): the JSON
	// collection and its canonical XML rendering disagreed.
	Universe bool
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("%s on %s store: %s (case %+v)", m.Strategy, m.Store, m.Detail, m.Case)
}

// Repro renders the mismatch as a paste-ready regression test pinned to
// the exact failing case.
func (m *Mismatch) Repro() string {
	c := m.Case
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Regression: %s on %s store — %s\n", m.Strategy, m.Store, m.Detail)
	fmt.Fprintf(&sb, "// Paste into a _test.go file (package oracle_test) under internal/oracle.\n")
	fmt.Fprintf(&sb, "func TestOracleRegressionSeed%d(t *testing.T) {\n", c.Seed)
	fmt.Fprintf(&sb, "\tc := oracle.Case{\n")
	fmt.Fprintf(&sb, "\t\tSeed:   %d,\n", c.Seed)
	fmt.Fprintf(&sb, "\t\tDocIDs: %#v,\n", c.DocIDs)
	fmt.Fprintf(&sb, "\t\tSIDs:   %#v,\n", c.SIDs)
	fmt.Fprintf(&sb, "\t\tTerms:  %#v,\n", c.Terms)
	fmt.Fprintf(&sb, "\t\tK:      %d,\n", c.K)
	fmt.Fprintf(&sb, "\t}\n")
	if m.Cluster {
		sb.WriteString("\tm, err := oracle.CheckCluster(c)\n")
		sb.WriteString("\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
		sb.WriteString("\tif m != nil {\n\t\tt.Fatalf(\"cluster diverges from single engine: %s\", m)\n\t}\n}\n")
		return sb.String()
	}
	if m.Universe {
		sb.WriteString("\tm, err := oracle.CheckUniverse(c)\n")
		sb.WriteString("\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
		sb.WriteString("\tif m != nil {\n\t\tt.Fatalf(\"JSON and XML universes diverge: %s\", m)\n\t}\n}\n")
		return sb.String()
	}
	sb.WriteString("\tm, err := oracle.Check(c)\n")
	sb.WriteString("\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
	sb.WriteString("\tif m != nil {\n\t\tt.Fatalf(\"strategies disagree: %s\", m)\n\t}\n}\n")
	return sb.String()
}

// Check runs one differential case. A nil *Mismatch means every strategy
// agreed with the exhaustive baseline on every store; a non-nil error
// means the harness itself failed (build or retrieval error), which is a
// bug too but not a ranking divergence.
func Check(c Case) (*Mismatch, error) {
	return check(c, nil)
}

// perturbFunc lets harness tests corrupt one strategy's output before
// comparison, to prove the shrink/repro machinery catches real drift.
type perturbFunc func(store, strategy string, res []retrieval.Scored) []retrieval.Scored

func check(c Case, perturb perturbFunc) (*Mismatch, error) {
	if len(c.DocIDs) == 0 || len(c.SIDs) == 0 || len(c.Terms) == 0 {
		return nil, fmt.Errorf("oracle: degenerate case %+v", c)
	}
	v1, closeV1, err := buildCaseStore(c, "v1")
	if err != nil {
		return nil, err
	}
	defer closeV1()
	v2, closeV2, err := buildCaseStore(c, "v2")
	if err != nil {
		return nil, err
	}
	defer closeV2()
	mixed, closeMixed, err := buildCaseStore(c, "mixed")
	if err != nil {
		return nil, err
	}
	defer closeMixed()
	seg, closeSeg, err := buildCaseStore(c, "segment")
	if err != nil {
		return nil, err
	}
	defer closeSeg()

	scv1, err := v1.NewScorer(c.Terms)
	if err != nil {
		return nil, err
	}
	base, _, err := retrieval.ExhaustiveTopK(v1, c.SIDs, c.Terms, scv1, c.K)
	if err != nil {
		return nil, err
	}

	kk := c.K
	if kk <= 0 {
		kk = 1 << 20
	}
	stores := []struct {
		name string
		st   *index.Store
	}{{"v1", v1}, {"v2", v2}, {"mixed", mixed}, {"segment", seg}}
	for _, s := range stores {
		sc, err := s.st.NewScorer(c.Terms)
		if err != nil {
			return nil, err
		}
		runs := []struct {
			name string
			run  func() ([]retrieval.Scored, error)
		}{
			{"TA", func() ([]retrieval.Scored, error) {
				r, _, err := retrieval.TA(s.st, c.SIDs, c.Terms, sc, kk)
				return r, err
			}},
			{"NRA", func() ([]retrieval.Scored, error) {
				r, _, err := retrieval.NRA(s.st, c.SIDs, c.Terms, kk)
				return r, err
			}},
			{"Merge", func() ([]retrieval.Scored, error) {
				r, _, err := retrieval.Merge(s.st, c.SIDs, c.Terms, kk)
				return r, err
			}},
			{"Auto", func() ([]retrieval.Scored, error) {
				return runAuto(s.st, c, sc, kk)
			}},
		}
		for _, strat := range runs {
			got, err := strat.run()
			if err != nil {
				return nil, fmt.Errorf("oracle: %s on %s store: %w", strat.name, s.name, err)
			}
			if perturb != nil {
				got = perturb(s.name, strat.name, got)
			}
			if d := diffRankings(base, got); d != "" {
				return &Mismatch{Case: c, Store: s.name, Strategy: strat.name, Detail: d}, nil
			}
		}
	}
	return nil, nil
}

// caseFeatures derives the planner feature vector for the case on one
// store — the same catalog-backed statistics the engine's query path
// feeds the planner.
func caseFeatures(st *index.Store, c Case) (planner.Features, error) {
	f := planner.Features{NumSIDs: len(c.SIDs), NumTerms: len(c.Terms), K: c.K}
	if f.K < 0 {
		f.K = 0
	}
	var err error
	if f.RPLCovered, err = st.CoveredCached(index.KindRPL, c.Terms, c.SIDs); err != nil {
		return f, err
	}
	if f.ERPLCovered, err = st.CoveredCached(index.KindERPL, c.Terms, c.SIDs); err != nil {
		return f, err
	}
	for _, t := range c.Terms {
		cf, err := st.TermCFCached(t)
		if err != nil {
			return f, err
		}
		f.PostingsPositions += cf
		for _, sid := range c.SIDs {
			rs, err := st.ListStat(index.KindRPL, t, sid)
			if err != nil {
				return f, err
			}
			if rs.Built {
				f.RPLEntries += int64(rs.Entries)
				f.RPLBytes += rs.Bytes
				f.RPLBlocks += int64(rs.Blocks)
			}
			es, err := st.ListStat(index.KindERPL, t, sid)
			if err != nil {
				return f, err
			}
			if es.Built {
				f.ERPLEntries += int64(es.Entries)
				f.ERPLBytes += es.Bytes
				f.ERPLBlocks += int64(es.Blocks)
			}
		}
	}
	return f, nil
}

// runAuto is the planner-routed column: a fresh planner, calibrated with
// a single observation that makes the case's seed-preferred method the
// predicted-cheapest (when eligible), decides the method, and the oracle
// runs exactly that. The seed rotation walks all four routes across a
// sweep; ineligible preferences fall back to the planner's own ranking.
func runAuto(st *index.Store, c Case, sc *score.Scorer, kk int) ([]retrieval.Scored, error) {
	f, err := caseFeatures(st, c)
	if err != nil {
		return nil, err
	}
	pl := planner.New()
	pref := planner.Method(uint64(c.Seed) % uint64(planner.NumMethods))
	if planner.Eligible(pref, f) {
		pl.Observe(pref, f, 1)
	}
	d := pl.Plan(f)
	switch d.Method {
	case planner.TA:
		r, _, err := retrieval.TA(st, c.SIDs, c.Terms, sc, kk)
		return r, err
	case planner.NRA:
		r, _, err := retrieval.NRA(st, c.SIDs, c.Terms, kk)
		return r, err
	case planner.Merge:
		r, _, err := retrieval.Merge(st, c.SIDs, c.Terms, kk)
		return r, err
	default:
		r, _, err := retrieval.ExhaustiveTopK(st, c.SIDs, c.Terms, sc, kk)
		return r, err
	}
}

// buildCaseStore parses the case's collection into a fresh in-memory
// store and materializes its lists in the requested format: "v1"
// row-per-entry, "v2" block-encoded, "mixed" (alternating format per
// term, so both row kinds interleave in the same trees), or "segment"
// (v2 lists committed to and served from an in-memory segment
// generation instead of the pager trees).
func buildCaseStore(c Case, format string) (*index.Store, func(), error) {
	return buildStoreFrom(GenCollection(c.Seed, c.DocIDs), c, format)
}

// buildStoreFrom is buildCaseStore over an explicit collection; the
// cross-universe oracle feeds it the same case with JSON and XML
// renderings of one document set.
func buildStoreFrom(col *corpus.Collection, c Case, format string) (*index.Store, func(), error) {
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		return nil, nil, err
	}
	db := storage.OpenMemory()
	fail := func(err error) (*index.Store, func(), error) {
		db.Close()
		return nil, nil, err
	}
	st, err := index.Open(db)
	if err != nil {
		return fail(err)
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		return fail(err)
	}
	sc, err := st.NewScorer(c.Terms)
	if err != nil {
		return fail(err)
	}
	switch format {
	case "v1":
		_, err = retrieval.MaterializeV1(st, c.SIDs, c.Terms, sc, index.KindRPL, index.KindERPL)
	case "v2":
		_, err = retrieval.Materialize(st, c.SIDs, c.Terms, sc, index.KindRPL, index.KindERPL)
	case "segment":
		if _, err = retrieval.Materialize(st, c.SIDs, c.Terms, sc, index.KindRPL, index.KindERPL); err == nil {
			// Attaching after the build publishes the lists as the first
			// generation; reads now come off the segment image.
			err = st.AttachSegments(segment.OpenMemory())
		}
	case "mixed":
		for j, term := range c.Terms {
			if j%2 == 0 {
				_, err = retrieval.MaterializeV1(st, c.SIDs, []string{term}, sc, index.KindRPL, index.KindERPL)
			} else {
				_, err = retrieval.Materialize(st, c.SIDs, []string{term}, sc, index.KindRPL, index.KindERPL)
			}
			if err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("oracle: unknown store format %q", format)
	}
	if err != nil {
		return fail(err)
	}
	return st, func() { db.Close() }, nil
}

// CheckCrashRecovery runs one case through repeated segment-commit
// crashes: the store (fault-injected pager + file-backed segment in dir)
// is built and committed once, then each round stages a list rewrite and
// dies between the new segment's fsync and the manifest swap. Recovery —
// a pager snapshot reopened as a fresh process plus a fresh segment.Open
// over dir — must come back on the old generation with rankings
// byte-identical to the exhaustive baseline; a rebuilt or drifted store
// is reported as a Mismatch. dir must be an empty scratch directory.
func CheckCrashRecovery(c Case, rounds int, dir string) (*Mismatch, error) {
	if len(c.DocIDs) == 0 || len(c.SIDs) == 0 || len(c.Terms) == 0 {
		return nil, fmt.Errorf("oracle: degenerate case %+v", c)
	}
	col := GenCollection(c.Seed, c.DocIDs)
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		return nil, err
	}
	disk := faultinject.NewDisk(c.Seed)
	db, err := storage.NewDB(disk, nil)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	st, err := index.Open(db)
	if err != nil {
		return nil, err
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		return nil, err
	}
	sc, err := st.NewScorer(c.Terms)
	if err != nil {
		return nil, err
	}
	if _, err := retrieval.Materialize(st, c.SIDs, c.Terms, sc, index.KindRPL, index.KindERPL); err != nil {
		return nil, err
	}
	base, _, err := retrieval.ExhaustiveTopK(st, c.SIDs, c.Terms, sc, c.K)
	if err != nil {
		return nil, err
	}
	ss, err := segment.Open(dir)
	if err != nil {
		return nil, err
	}
	defer ss.Close()
	if err := st.AttachSegments(ss); err != nil {
		return nil, err
	}
	if err := db.Flush(); err != nil {
		return nil, err
	}
	gen := ss.Generation()

	for round := 0; round < rounds; round++ {
		// Stage a rewrite (Materialize drops built lists first, so the
		// trees mutate and the epoch bumps), then die mid-commit.
		ss.CrashBeforeSwap = func() error {
			return fmt.Errorf("oracle: simulated crash before manifest swap")
		}
		if _, err := retrieval.Materialize(st, c.SIDs, c.Terms, sc, index.KindRPL, index.KindERPL); err != nil {
			return nil, err
		}
		if err := st.CommitLists(); err == nil {
			return nil, fmt.Errorf("oracle: round %d: commit survived the crash hook", round)
		}

		// Recover: the pager snapshot is the on-disk state the crashed
		// process left (no flush since the staged rewrite), the segment
		// directory is reopened as a new process would.
		db2, err := storage.OpenBackend(disk.Snapshot(), nil)
		if err != nil {
			return nil, fmt.Errorf("oracle: round %d reopen: %w", round, err)
		}
		m, err := checkRecovered(c, base, db2, dir, gen, round)
		db2.Close()
		if m != nil || err != nil {
			return m, err
		}
	}
	return nil, nil
}

// checkRecovered opens the index over a recovered pager db, re-attaches
// the segment directory and asserts the old generation serves rankings
// byte-identical to base.
func checkRecovered(c Case, base []retrieval.Scored, db *storage.DB, dir string, gen uint64, round int) (*Mismatch, error) {
	st, err := index.Open(db)
	if err != nil {
		return nil, err
	}
	ss, err := segment.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("oracle: round %d segment reopen: %w", round, err)
	}
	defer ss.Close()
	if err := st.AttachSegments(ss); err != nil {
		return nil, err
	}
	detail := func(d string) *Mismatch {
		return &Mismatch{Case: c, Store: "segment-crash", Strategy: fmt.Sprintf("round %d", round), Detail: d}
	}
	if g := ss.Generation(); g != gen {
		return detail(fmt.Sprintf("generation %d after crash, want old %d intact", g, gen)), nil
	}
	sc, err := st.NewScorer(c.Terms)
	if err != nil {
		return nil, err
	}
	kk := c.K
	if kk <= 0 {
		kk = 1 << 20
	}
	ta, _, err := retrieval.TA(st, c.SIDs, c.Terms, sc, kk)
	if err != nil {
		return nil, err
	}
	if d := diffRankings(base, ta); d != "" {
		return detail("TA after recovery: " + d), nil
	}
	mg, _, err := retrieval.Merge(st, c.SIDs, c.Terms, kk)
	if err != nil {
		return nil, err
	}
	if d := diffRankings(base, mg); d != "" {
		return detail("Merge after recovery: " + d), nil
	}
	if ss.RowsRead() == 0 && len(base) > 0 {
		return detail("recovered store served no rows from the segment"), nil
	}
	return nil, nil
}

// diffRankings reports the first divergence between two rankings, or ""
// when they are identical in length, elements, and exact scores.
func diffRankings(want, got []retrieval.Scored) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Elem != got[i].Elem || want[i].Score != got[i].Score {
			return fmt.Sprintf("rank %d: %v score %v, want %v score %v",
				i, got[i].Elem, got[i].Score, want[i].Elem, want[i].Score)
		}
	}
	return ""
}

// Shrink greedily minimizes a failing case: it repeatedly tries removing
// one document, term, or sid and keeps any removal under which failing
// still reports true, looping to a fixpoint. The result is 1-minimal —
// removing any single remaining component makes the failure vanish.
// failing must be deterministic (Check is, for a fixed Case).
func Shrink(c Case, failing func(Case) bool) Case {
	for changed := true; changed; {
		changed = false
		c, changed = shrinkDocs(c, failing, changed)
		c, changed = shrinkTerms(c, failing, changed)
		c, changed = shrinkSIDs(c, failing, changed)
	}
	return c
}

func shrinkDocs(c Case, failing func(Case) bool, changed bool) (Case, bool) {
	for i := 0; i < len(c.DocIDs) && len(c.DocIDs) > 1; {
		cand := c
		cand.DocIDs = without(c.DocIDs, i)
		if failing(cand) {
			c = cand
			changed = true
		} else {
			i++
		}
	}
	return c, changed
}

func shrinkTerms(c Case, failing func(Case) bool, changed bool) (Case, bool) {
	for i := 0; i < len(c.Terms) && len(c.Terms) > 1; {
		cand := c
		cand.Terms = without(c.Terms, i)
		if failing(cand) {
			c = cand
			changed = true
		} else {
			i++
		}
	}
	return c, changed
}

func shrinkSIDs(c Case, failing func(Case) bool, changed bool) (Case, bool) {
	for i := 0; i < len(c.SIDs) && len(c.SIDs) > 1; {
		cand := c
		cand.SIDs = without(c.SIDs, i)
		if failing(cand) {
			c = cand
			changed = true
		} else {
			i++
		}
	}
	return c, changed
}

// without returns s minus the element at i, as a fresh slice.
func without[T any](s []T, i int) []T {
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
