package oracle_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"trex"
	"trex/internal/oracle"
	"trex/internal/retrieval"
)

// TestDifferential200Cases is the CI-mode oracle sweep: 200 seeded cases,
// each asserting byte-identical rankings from TA, NRA, Merge, and the
// planner-routed Auto column against the exhaustive baseline across v1,
// v2, mixed-format, and segment-backed stores.
func TestDifferential200Cases(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			c := oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
			m, err := oracle.Check(c)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v (case %+v)", seed, err, c)
			}
			if m != nil {
				t.Fatalf("seed %d: %s\n\n%s", seed, m, shrunkRepro(m.Case))
			}
		})
	}
}

// shrunkRepro minimizes a genuinely failing case and renders its
// regression test, so a red oracle run prints something paste-ready.
func shrunkRepro(c oracle.Case) string {
	failing := func(c oracle.Case) bool {
		m, err := oracle.Check(c)
		return err == nil && m != nil
	}
	shrunk := oracle.Shrink(c, failing)
	m, err := oracle.Check(shrunk)
	if err != nil || m == nil {
		m = &oracle.Mismatch{Case: shrunk, Store: "?", Strategy: "?", Detail: "shrink lost the failure"}
	}
	return m.Repro()
}

// TestPerturbationShrinksToMinimalRepro proves the harness end to end by
// corrupting one strategy's output: the oracle must flag it, Shrink must
// converge on a 1-minimal case that still fails, and Repro must print
// the same regression test on every run.
func TestPerturbationShrinksToMinimalRepro(t *testing.T) {
	// Drop NRA's last answer on the v2 store — a deterministic "bug"
	// that fires whenever that configuration returns any answers.
	perturb := func(store, strategy string, res []retrieval.Scored) []retrieval.Scored {
		if store == "v2" && strategy == "NRA" && len(res) > 0 {
			return res[:len(res)-1]
		}
		return res
	}
	failing := func(c oracle.Case) bool {
		m, err := oracle.CheckPerturbed(c, perturb)
		return err == nil && m != nil
	}

	// Find a seeded case the bug bites (deterministic scan).
	var c oracle.Case
	found := false
	for seed := int64(1); seed <= 50 && !found; seed++ {
		c = oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
		found = failing(c)
	}
	if !found {
		t.Fatal("no seed in 1..50 produced NRA answers on the v2 store — generator is broken")
	}

	shrunk := oracle.Shrink(c, failing)
	if !failing(shrunk) {
		t.Fatalf("shrunk case no longer fails: %+v", shrunk)
	}
	if len(shrunk.DocIDs) > len(c.DocIDs) || len(shrunk.Terms) > len(c.Terms) || len(shrunk.SIDs) > len(c.SIDs) {
		t.Fatalf("shrink grew the case: %+v -> %+v", c, shrunk)
	}
	// 1-minimality: removing any single remaining component must make
	// the failure vanish (Shrink ran to a fixpoint).
	for i := range shrunk.DocIDs {
		if len(shrunk.DocIDs) > 1 {
			cand := shrunk
			cand.DocIDs = append(append([]int(nil), shrunk.DocIDs[:i]...), shrunk.DocIDs[i+1:]...)
			if failing(cand) {
				t.Fatalf("not 1-minimal: doc %d is removable", shrunk.DocIDs[i])
			}
		}
	}
	for i := range shrunk.Terms {
		if len(shrunk.Terms) > 1 {
			cand := shrunk
			cand.Terms = append(append([]string(nil), shrunk.Terms[:i]...), shrunk.Terms[i+1:]...)
			if failing(cand) {
				t.Fatalf("not 1-minimal: term %q is removable", shrunk.Terms[i])
			}
		}
	}

	m, err := oracle.CheckPerturbed(shrunk, perturb)
	if err != nil || m == nil {
		t.Fatalf("CheckPerturbed on shrunk case = %v, %v", m, err)
	}
	repro := m.Repro()
	if !strings.Contains(repro, "func TestOracleRegressionSeed") ||
		!strings.Contains(repro, "oracle.Check(c)") {
		t.Fatalf("repro is not a paste-ready test:\n%s", repro)
	}
	// Determinism: the whole pipeline replays to the identical repro.
	m2, err := oracle.CheckPerturbed(oracle.Shrink(c, failing), perturb)
	if err != nil || m2 == nil {
		t.Fatal("replay lost the failure")
	}
	if m2.Repro() != repro {
		t.Fatalf("repro is not deterministic:\n--- first\n%s\n--- second\n%s", repro, m2.Repro())
	}
	t.Logf("shrunk %d docs to %d; repro:\n%s", len(c.DocIDs), len(shrunk.DocIDs), repro)
}

// TestAutopilotDifferential is the engine-level half of the oracle: on a
// static collection, MethodAuto under a concurrently re-planning
// autopilot must return exactly the answers MethodERA returns on an
// untouched twin engine — materialization and drops happening between
// (and during) queries must never change a ranking.
func TestAutopilotDifferential(t *testing.T) {
	col := oracle.GenCollection(7, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	queries := []string{
		`//r[about(., ax)]`,
		`//s[about(., bx cx)]`,
		`//t[about(., dx)]//u[about(., ex)]`,
		`//u[about(., ax ex)]`,
	}

	plain, err := trex.CreateMemory(col, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	want := make(map[string]*trex.Result, len(queries))
	for _, q := range queries {
		res, err := plain.Query(q, 5, trex.MethodERA)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		want[q] = res
	}

	piloted, err := trex.CreateMemory(col, &trex.Options{Autopilot: &trex.AutopilotOptions{
		Interval:     2 * time.Millisecond,
		DriftQueries: 1,
		Decay:        1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer piloted.Close()

	deadline := time.Now().Add(5 * time.Second)
	rounds := 0
	for time.Now().Before(deadline) {
		for _, q := range queries {
			res, err := piloted.Query(q, 5, trex.MethodAuto)
			if err != nil {
				t.Fatalf("round %d %q: %v", rounds, q, err)
			}
			w := want[q]
			if len(res.Answers) != len(w.Answers) {
				t.Fatalf("round %d %q: %d answers, want %d", rounds, q, len(res.Answers), len(w.Answers))
			}
			for i := range w.Answers {
				if res.Answers[i] != w.Answers[i] {
					t.Fatalf("round %d %q rank %d (method %v): %+v, want %+v",
						rounds, q, i, res.Method, res.Answers[i], w.Answers[i])
				}
			}
		}
		rounds++
		st := piloted.AutopilotStatus()
		if st.Runs >= 3 && rounds >= 20 {
			break
		}
	}
	st := piloted.AutopilotStatus()
	if st.Runs == 0 {
		t.Fatal("autopilot never ran — the differential proved nothing")
	}
	if st.Failures != 0 {
		t.Fatalf("autopilot failed %d times: %s", st.Failures, st.LastError)
	}
	t.Logf("%d query rounds against %d autopilot runs, rankings identical", rounds, st.Runs)
}
