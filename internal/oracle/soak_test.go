package oracle_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"trex/internal/oracle"
)

// TestSoak is the nightly long-run oracle: thousands of randomized
// differential cases from a wall-clock seed. Gated behind TREX_SOAK so
// `go test ./...` stays fast; run it via `make soak`, and replay a red
// run with `make soak SEED=<the seed the log printed>`.
func TestSoak(t *testing.T) {
	if os.Getenv("TREX_SOAK") == "" {
		t.Skip("soak disabled: set TREX_SOAK=1 (or run `make soak`)")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("TREX_SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("TREX_SOAK_SEED=%q: %v", s, err)
		}
		if v != 0 { // 0 = "pick one", the Makefile default
			seed = v
		}
	}
	cases := 3000
	if s := os.Getenv("TREX_SOAK_CASES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("TREX_SOAK_CASES=%q: want a positive integer", s)
		}
		cases = v
	}
	t.Logf("soak seed %d over %d cases — replay with: make soak SEED=%d", seed, cases, seed)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < cases; i++ {
		caseSeed := seed + int64(i)
		c := oracle.NewCase(rng, caseSeed)
		m, err := oracle.Check(c)
		if err != nil {
			t.Fatalf("case %d (seed %d): harness error: %v\ncase: %+v", i, caseSeed, err, c)
		}
		if m != nil {
			t.Fatalf("case %d (seed %d): %s\n\nminimal repro:\n%s", i, caseSeed, m, shrunkRepro(m.Case))
		}
		if i > 0 && i%500 == 0 {
			t.Logf("%d/%d cases green", i, cases)
		}
	}
}

// TestClusterSoak is the nightly long-run distributed oracle: randomized
// cases from a wall-clock seed through the full CheckCluster grid. Gated
// behind TREX_SOAK like TestSoak; run it via `make soak-cluster`, and
// replay a red run with `make soak-cluster SEED=<seed>`. A cluster case
// covers 24 (method x shards x replicas) cells, so the default case
// count is lower than the single-engine soak's.
func TestClusterSoak(t *testing.T) {
	if os.Getenv("TREX_SOAK") == "" {
		t.Skip("soak disabled: set TREX_SOAK=1 (or run `make soak-cluster`)")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("TREX_SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("TREX_SOAK_SEED=%q: %v", s, err)
		}
		if v != 0 { // 0 = "pick one", the Makefile default
			seed = v
		}
	}
	cases := 1000
	if s := os.Getenv("TREX_SOAK_CASES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("TREX_SOAK_CASES=%q: want a positive integer", s)
		}
		cases = v
	}
	t.Logf("cluster soak seed %d over %d cases — replay with: make soak-cluster SEED=%d", seed, cases, seed)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < cases; i++ {
		caseSeed := seed + int64(i)
		c := oracle.NewCase(rng, caseSeed)
		m, err := oracle.CheckCluster(c)
		if err != nil {
			t.Fatalf("case %d (seed %d): harness error: %v\ncase: %+v", i, caseSeed, err, c)
		}
		if m != nil {
			t.Fatalf("case %d (seed %d): %s\n\nminimal repro:\n%s", i, caseSeed, m, shrunkClusterRepro(m.Case))
		}
		if i > 0 && i%200 == 0 {
			t.Logf("%d/%d cluster cases green", i, cases)
		}
	}
}
