package oracle

import (
	"fmt"

	"trex/internal/corpus"
	"trex/internal/oracle/gen"
	"trex/internal/retrieval"
)

// CheckUniverse runs one cross-universe differential case: the seeded
// JSON collection JSONCollection(Seed, DocIDs) and its canonical XML
// rendering are indexed independently — the JSON side through the
// direct jsoncorpus mapping, the XML side through the scanner — and
// ERA, TA, NRA, and Merge over v1, v2, and segment-backed stores in
// BOTH universes must return rankings byte-identical to the exhaustive
// baseline of the XML universe. Element identity is (doc, end byte
// offset in the canonical rendering) and scores depend on element
// lengths, so equality here proves the mapping preserves offsets,
// lengths, and term positions exactly, not merely "the same answers".
func CheckUniverse(c Case) (*Mismatch, error) {
	return checkUniverse(c, nil)
}

func checkUniverse(c Case, perturb perturbFunc) (*Mismatch, error) {
	if len(c.DocIDs) == 0 || len(c.SIDs) == 0 || len(c.Terms) == 0 {
		return nil, fmt.Errorf("oracle: degenerate case %+v", c)
	}
	jcol := gen.JSONCollection(c.Seed, c.DocIDs)
	xcol, err := gen.XMLRendering(jcol)
	if err != nil {
		return nil, fmt.Errorf("oracle: render case %+v: %w", c, err)
	}

	// Baseline: exhaustive retrieval over the XML universe's v1 store.
	xv1, closeXV1, err := buildStoreFrom(xcol, c, "v1")
	if err != nil {
		return nil, err
	}
	defer closeXV1()
	sc, err := xv1.NewScorer(c.Terms)
	if err != nil {
		return nil, err
	}
	base, _, err := retrieval.ExhaustiveTopK(xv1, c.SIDs, c.Terms, sc, c.K)
	if err != nil {
		return nil, err
	}

	kk := c.K
	if kk <= 0 {
		kk = 1 << 20
	}
	universes := []struct {
		name string
		col  *corpus.Collection
	}{{"json", jcol}, {"xml", xcol}}
	for _, u := range universes {
		for _, format := range []string{"v1", "v2", "segment"} {
			m, err := checkUniverseStore(c, u.name, format, u.col, base, kk, perturb)
			if m != nil || err != nil {
				return m, err
			}
		}
	}
	return nil, nil
}

// checkUniverseStore builds one (universe, store format) cell and runs
// all four strategies against the shared baseline.
func checkUniverseStore(c Case, universe, format string, col *corpus.Collection, base []retrieval.Scored, kk int, perturb perturbFunc) (*Mismatch, error) {
	st, closeSt, err := buildStoreFrom(col, c, format)
	if err != nil {
		return nil, err
	}
	defer closeSt()
	sc, err := st.NewScorer(c.Terms)
	if err != nil {
		return nil, err
	}
	cell := universe + "/" + format
	runs := []struct {
		name string
		run  func() ([]retrieval.Scored, error)
	}{
		{"ERA", func() ([]retrieval.Scored, error) {
			r, _, err := retrieval.ExhaustiveTopK(st, c.SIDs, c.Terms, sc, c.K)
			return r, err
		}},
		{"TA", func() ([]retrieval.Scored, error) {
			r, _, err := retrieval.TA(st, c.SIDs, c.Terms, sc, kk)
			return r, err
		}},
		{"NRA", func() ([]retrieval.Scored, error) {
			r, _, err := retrieval.NRA(st, c.SIDs, c.Terms, kk)
			return r, err
		}},
		{"Merge", func() ([]retrieval.Scored, error) {
			r, _, err := retrieval.Merge(st, c.SIDs, c.Terms, kk)
			return r, err
		}},
	}
	for _, strat := range runs {
		got, err := strat.run()
		if err != nil {
			return nil, fmt.Errorf("oracle: %s on %s: %w", strat.name, cell, err)
		}
		if perturb != nil {
			got = perturb(cell, strat.name, got)
		}
		if d := diffRankings(base, got); d != "" {
			return &Mismatch{Case: c, Store: cell, Strategy: strat.name, Detail: d, Universe: true}, nil
		}
	}
	return nil, nil
}
