package oracle_test

import (
	"math/rand"
	"strings"
	"testing"

	"trex/internal/oracle"
	"trex/internal/retrieval"
)

// TestJSONXMLDifferential200Cases is the cross-universe oracle sweep:
// 200 seeded cases, each indexing a generated JSON collection and its
// canonical XML rendering independently and asserting ERA, TA, NRA, and
// Merge return byte-identical rankings over v1, v2, and segment-backed
// stores in both universes. Identity and scores hinge on byte offsets
// and element lengths in the canonical rendering, so any mapping drift
// (offsets, lengths, tokenization) fails loudly here.
func TestJSONXMLDifferential200Cases(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			c := oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
			m, err := oracle.CheckUniverse(c)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v (case %+v)", seed, err, c)
			}
			if m != nil {
				t.Fatalf("seed %d: %s\n\n%s", seed, m, shrunkUniverseRepro(m.Case))
			}
		})
	}
}

// shrunkUniverseRepro minimizes a failing cross-universe case and
// renders its paste-ready regression test.
func shrunkUniverseRepro(c oracle.Case) string {
	failing := func(c oracle.Case) bool {
		m, err := oracle.CheckUniverse(c)
		return err == nil && m != nil
	}
	shrunk := oracle.Shrink(c, failing)
	m, err := oracle.CheckUniverse(shrunk)
	if err != nil || m == nil {
		m = &oracle.Mismatch{Case: shrunk, Store: "?", Strategy: "?", Detail: "shrink lost the failure", Universe: true}
	}
	return m.Repro()
}

// TestUniversePerturbationShrinks proves the cross-universe harness
// catches drift: corrupting one strategy's output in one universe cell
// must be flagged, shrink to a 1-minimal case, and print a
// CheckUniverse regression.
func TestUniversePerturbationShrinks(t *testing.T) {
	perturb := func(store, strategy string, res []retrieval.Scored) []retrieval.Scored {
		if store == "json/v2" && strategy == "Merge" && len(res) > 0 {
			return res[:len(res)-1]
		}
		return res
	}
	failing := func(c oracle.Case) bool {
		m, err := oracle.CheckUniversePerturbed(c, perturb)
		return err == nil && m != nil
	}

	var c oracle.Case
	found := false
	for seed := int64(1); seed <= 50 && !found; seed++ {
		c = oracle.NewCase(rand.New(rand.NewSource(seed)), seed)
		found = failing(c)
	}
	if !found {
		t.Fatal("no seed in 1..50 produced Merge answers on the json/v2 cell — JSON generator is broken")
	}

	shrunk := oracle.Shrink(c, failing)
	if !failing(shrunk) {
		t.Fatalf("shrunk case no longer fails: %+v", shrunk)
	}
	for i := range shrunk.DocIDs {
		if len(shrunk.DocIDs) > 1 {
			cand := shrunk
			cand.DocIDs = append(append([]int(nil), shrunk.DocIDs[:i]...), shrunk.DocIDs[i+1:]...)
			if failing(cand) {
				t.Fatalf("not 1-minimal: doc %d is removable", shrunk.DocIDs[i])
			}
		}
	}
	m, err := oracle.CheckUniversePerturbed(shrunk, perturb)
	if err != nil || m == nil {
		t.Fatalf("CheckUniversePerturbed on shrunk case = %v, %v", m, err)
	}
	repro := m.Repro()
	if !strings.Contains(repro, "oracle.CheckUniverse(c)") {
		t.Fatalf("repro does not target CheckUniverse:\n%s", repro)
	}
}
