// Package planner implements TReX's online query planner: an
// always-calibrating cost model that predicts which retrieval strategy
// (ERA, TA, NRA, Merge) evaluates a query cheapest, from features that
// are free to compute at plan time — the translated query's shape
// (#sids, #terms, k) plus exact list sizes from the materialization
// catalog.
//
// The model needs no offline training. Each candidate method has an
// analytic cost prior (a monotone function of the volume that method
// would read), and a table of per-feature-bucket correction ratios
// learned from observed runs: after every exactly-measured retrieval the
// engine calls Observe with the run's deterministic cost proxy, and the
// bucket's ratio (observed / prior) moves toward it. Prediction is
// prior x learned-ratio, so the planner adapts to the collection, the
// storage backend and materialization changes without ever being
// retrained — a freshly materialized RPL simply starts collecting
// samples in its own volume buckets.
//
// The package is deliberately dependency-free (stdlib only) so both the
// engine and the differential oracle can use it.
package planner

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Method enumerates the candidate retrieval strategies, in the fixed
// order candidates are scanned (ties prefer the earlier method).
type Method int

const (
	// ERA is the exhaustive algorithm over the base index — always
	// eligible.
	ERA Method = iota
	// Merge is the positional merge over ERPLs.
	Merge
	// TA is the threshold algorithm over score-ordered RPLs.
	TA
	// NRA is the sorted-access-only threshold variant over RPLs.
	NRA
	// NumMethods is the number of candidate methods.
	NumMethods
)

func (m Method) String() string {
	switch m {
	case ERA:
		return "era"
	case TA:
		return "ta"
	case NRA:
		return "nra"
	case Merge:
		return "merge"
	default:
		return "unknown"
	}
}

// Features is a query's plan-time feature vector. Volumes are exact
// catalog numbers (entries/bytes/blocks summed over the query's
// (term, sid) lists); none of them require opening a cursor.
type Features struct {
	// NumSIDs/NumTerms/K come from the translated query. K is the
	// retrieval-phase k (kEval): 0 means "all answers".
	NumSIDs  int
	NumTerms int
	K        int
	// RPLCovered/ERPLCovered report full catalog coverage of the
	// query's (term, sid) pairs — the eligibility gates for TA/NRA and
	// Merge respectively.
	RPLCovered  bool
	ERPLCovered bool
	// RPLEntries/RPLBytes/RPLBlocks describe the query's RPL volume;
	// the ERPL triple likewise. Blocks is the number of storage rows at
	// the block-encoded target size.
	RPLEntries int64
	RPLBytes   int64
	RPLBlocks  int64

	ERPLEntries int64
	ERPLBytes   int64
	ERPLBlocks  int64
	// PostingsPositions estimates the base-index volume ERA scans: the
	// summed collection frequency of the query terms.
	PostingsPositions int64
}

// Candidate is one method's cost estimate inside a Decision.
type Candidate struct {
	Method   Method
	Eligible bool
	// Prior is the analytic cost estimate; Ratio the learned
	// observed/prior correction for the query's feature bucket (1 when
	// the bucket has no samples); Cost = Prior * Ratio.
	Prior   float64
	Ratio   float64
	Cost    float64
	Samples uint64
}

// Decision is the planner's verdict for one query.
type Decision struct {
	// Method is the predicted-cheapest eligible method; RunnerUp the
	// second-cheapest (ERA when nothing else is eligible, or -1 when
	// ERA itself is the only candidate).
	Method   Method
	RunnerUp Method
	// Cost/RunnerUpCost are the corresponding predicted costs.
	Cost         float64
	RunnerUpCost float64
	// ColdStart reports the pick came from the static preference rule
	// because no eligible candidate had any observed samples yet (see
	// Plan).
	ColdStart bool
	// Candidates holds every method's estimate, indexed by Method, for
	// explain output.
	Candidates [NumMethods]Candidate
}

// cell is one feature bucket's calibration state.
type cell struct {
	ratio   float64
	samples uint64
}

// Planner is the shared, concurrency-safe model. The zero value is not
// usable; construct with New.
type Planner struct {
	mu    sync.RWMutex
	cells map[uint32]cell

	observations atomic.Uint64
	// lastObserve is the wall-clock time of the latest Observe in unix
	// nanoseconds (0 = never) — the staleness gauge's input.
	lastObserve atomic.Int64
}

// New returns an uncalibrated planner (every ratio 1).
func New() *Planner {
	return &Planner{cells: make(map[uint32]cell)}
}

// ewmaAlpha is the steady-state weight of a new sample. Until a bucket
// has seen 1/ewmaAlpha samples it averages them outright, so the first
// few observations move the ratio quickly.
const ewmaAlpha = 0.25

// Eligible reports whether the method's required lists are covered.
func Eligible(m Method, f Features) bool {
	switch m {
	case TA, NRA:
		return f.RPLCovered
	case Merge:
		return f.ERPLCovered
	case ERA:
		return true
	default:
		return false
	}
}

// taDepth estimates how many RPL entries per run TA consumes under
// sorted access before its threshold test stops it: a k-proportional
// band per term list, capped at the full volume. With k <= 0 (all
// answers) the lists are read to the end.
func taDepth(f Features) float64 {
	e := float64(f.RPLEntries)
	if f.K <= 0 {
		return e
	}
	t := float64(f.NumTerms)
	if t < 1 {
		t = 1
	}
	d := (32 + 6*float64(f.K)) * t
	if d > e {
		d = e
	}
	return d
}

// Prior is the analytic cost estimate for the method, in the engine's
// deterministic cost-proxy units (reads + weighted random accesses,
// heap operations and sort). It only needs to be a monotone,
// volume-proportional shape — the per-bucket ratio absorbs constant
// factors.
func Prior(m Method, f Features) float64 {
	const base = 16 // floor so ratios stay finite on empty lists
	switch m {
	case ERA:
		// ERA scans postings positions and visits the elements they
		// land in, then sorts.
		return 3*float64(f.PostingsPositions) + base
	case TA:
		// Sorted accesses down to the stop depth, with random-access
		// probes (weight 8) amortized over the frontier and heap
		// maintenance on top.
		return 6*taDepth(f) + base
	case NRA:
		// No random accesses, but a deeper stop (bounds converge more
		// slowly than exact scores) and per-candidate bookkeeping.
		d := 2 * taDepth(f)
		if e := float64(f.RPLEntries); d > e {
			d = e
		}
		return 4*d + base
	case Merge:
		// A full positional sweep of the ERPLs plus the final sort.
		return 3*float64(f.ERPLEntries) + base
	default:
		return math.Inf(1)
	}
}

// bucketKey packs (method, volume band, #terms band, #sids band, k
// band) into one map key. The volume band is the bit length of the
// method's own read volume, so calibration ratios are shared only
// across queries within a factor-2 volume range with the same shape.
func bucketKey(m Method, f Features) uint32 {
	var vol int64
	switch m {
	case ERA:
		vol = f.PostingsPositions
	case Merge:
		vol = f.ERPLEntries
	default:
		vol = f.RPLEntries
	}
	if vol < 0 {
		vol = 0
	}
	vb := uint32(bits.Len64(uint64(vol))) // 0..64
	tb := bandOf(f.NumTerms)
	sb := bandOf(f.NumSIDs)
	kb := kBand(f.K)
	return uint32(m)<<24 | vb<<16 | tb<<8 | sb<<4 | kb
}

// bandOf buckets small counts exactly and saturates at 7.
func bandOf(n int) uint32 {
	if n < 0 {
		n = 0
	}
	if n > 7 {
		n = 7
	}
	return uint32(n)
}

// kBand buckets k into the regimes the paper's figures distinguish:
// all-answers, tiny k, small k, medium, large.
func kBand(k int) uint32 {
	switch {
	case k <= 0:
		return 0
	case k <= 1:
		return 1
	case k <= 10:
		return 2
	case k <= 100:
		return 3
	default:
		return 4
	}
}

// ratio returns the bucket's learned correction and sample count.
func (p *Planner) ratio(m Method, f Features) (float64, uint64) {
	p.mu.RLock()
	c, ok := p.cells[bucketKey(m, f)]
	p.mu.RUnlock()
	if !ok || c.samples == 0 {
		return 1, 0
	}
	return c.ratio, c.samples
}

// coldStartK is the k at or below which the cold-start rule prefers TA
// over Merge — the paper's figures show TA winning only at small k, and
// the pre-planner engine used the same threshold.
const coldStartK = 10

// coldPick is the static preference rule used before the model has any
// samples for a query's eligible candidates: prefer the redundant lists
// over the exhaustive scan, TA at small k, Merge otherwise — exactly
// the legacy MethodAuto heuristic, so an uncalibrated engine behaves
// like the pre-planner one.
func coldPick(f Features) Method {
	switch {
	case f.RPLCovered && f.K > 0 && f.K <= coldStartK:
		return TA
	case f.ERPLCovered:
		return Merge
	case f.RPLCovered:
		return TA
	default:
		return ERA
	}
}

// Plan predicts the cheapest eligible method. It is a pure read of the
// model — no counters move, so Explain can call it without skewing
// planner metrics. The candidate scan order (ERA, Merge, TA, NRA)
// breaks exact cost ties deterministically in favor of the earlier
// method. While every eligible candidate is still sample-free the pick
// comes from the static cold-start rule instead of the uncalibrated
// priors (the analytic shapes cannot rank methods reliably on very
// small lists, where sorted-access depth saturates); a single observed
// sample flips the query's bucket to cost ranking.
func (p *Planner) Plan(f Features) Decision {
	d := Decision{Method: -1, RunnerUp: -1}
	var samples uint64
	for m := Method(0); m < NumMethods; m++ {
		c := Candidate{Method: m, Eligible: Eligible(m, f)}
		if c.Eligible {
			c.Prior = Prior(m, f)
			c.Ratio, c.Samples = p.ratio(m, f)
			c.Cost = c.Prior * c.Ratio
			samples += c.Samples
			switch {
			case d.Method < 0 || c.Cost < d.Cost:
				d.RunnerUp, d.RunnerUpCost = d.Method, d.Cost
				d.Method, d.Cost = m, c.Cost
			case d.RunnerUp < 0 || c.Cost < d.RunnerUpCost:
				d.RunnerUp, d.RunnerUpCost = m, c.Cost
			}
		}
		d.Candidates[m] = c
	}
	if samples == 0 {
		cold := coldPick(f)
		if cold != d.Method {
			d.RunnerUp, d.RunnerUpCost = d.Method, d.Cost
			d.Method, d.Cost = cold, d.Candidates[cold].Cost
		}
		d.ColdStart = true
	}
	return d
}

// Observe feeds one measured run into the model: cost is the run's
// deterministic cost proxy under method m for a query with features f.
// The matching bucket's ratio moves toward cost/Prior.
func (p *Planner) Observe(m Method, f Features, cost float64) {
	if m < 0 || m >= NumMethods || cost < 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return
	}
	prior := Prior(m, f)
	if prior <= 0 || math.IsInf(prior, 0) {
		return
	}
	sample := cost / prior
	key := bucketKey(m, f)
	p.mu.Lock()
	c := p.cells[key]
	c.samples++
	alpha := ewmaAlpha
	if warm := 1 / float64(c.samples); warm > alpha {
		alpha = warm // plain mean until the bucket warms up
	}
	c.ratio += alpha * (sample - c.ratio)
	p.cells[key] = c
	p.mu.Unlock()
	p.observations.Add(1)
	p.lastObserve.Store(time.Now().UnixNano())
}

// Observations is the total number of Observe calls.
func (p *Planner) Observations() uint64 { return p.observations.Load() }

// CalibratedBuckets is the number of feature buckets with at least one
// sample.
func (p *Planner) CalibratedBuckets() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cells)
}

// Staleness is the time since the last observation; a very large value
// when the model has never observed anything.
func (p *Planner) Staleness(now time.Time) time.Duration {
	last := p.lastObserve.Load()
	if last == 0 {
		return time.Duration(math.MaxInt64)
	}
	return now.Sub(time.Unix(0, last))
}

// LastObservation is the wall-clock time of the latest Observe (zero
// time when none).
func (p *Planner) LastObservation() time.Time {
	last := p.lastObserve.Load()
	if last == 0 {
		return time.Time{}
	}
	return time.Unix(0, last)
}
