package planner

import (
	"sync"
	"testing"
	"time"
)

func feat() Features {
	return Features{
		NumSIDs: 2, NumTerms: 2, K: 10,
		RPLCovered: true, ERPLCovered: true,
		RPLEntries: 4000, RPLBytes: 64000, RPLBlocks: 32,
		ERPLEntries: 4000, ERPLBytes: 64000, ERPLBlocks: 32,
		PostingsPositions: 20000,
	}
}

func TestEligibility(t *testing.T) {
	f := feat()
	f.RPLCovered, f.ERPLCovered = false, false
	p := New()
	d := p.Plan(f)
	if d.Method != ERA {
		t.Fatalf("uncovered query planned %v, want era", d.Method)
	}
	if d.RunnerUp != -1 {
		t.Fatalf("runner-up %v with only ERA eligible", d.RunnerUp)
	}
	for m := Method(0); m < NumMethods; m++ {
		c := d.Candidates[m]
		if got, want := c.Eligible, m == ERA; got != want {
			t.Fatalf("method %v eligible=%v, want %v", m, got, want)
		}
	}

	f.RPLCovered = true
	d = p.Plan(f)
	if !d.Candidates[TA].Eligible || !d.Candidates[NRA].Eligible || d.Candidates[Merge].Eligible {
		t.Fatalf("RPL-only eligibility wrong: %+v", d.Candidates)
	}
}

func TestPriorMonotoneInVolume(t *testing.T) {
	small, big := feat(), feat()
	big.RPLEntries *= 8
	big.ERPLEntries *= 8
	big.PostingsPositions *= 8
	for m := Method(0); m < NumMethods; m++ {
		if Prior(m, big) < Prior(m, small) {
			t.Fatalf("%v prior not monotone in volume", m)
		}
	}
}

func TestTADepthRespectsK(t *testing.T) {
	f := feat()
	f.K = 5
	shallow := Prior(TA, f)
	f.K = 0 // all answers: full scan
	deep := Prior(TA, f)
	if shallow >= deep {
		t.Fatalf("TA prior k=5 (%f) should be below k=all (%f)", shallow, deep)
	}
}

// TestCalibrationFlipsDecision seeds a bucket where observations say the
// prior badly overestimates Merge and underestimates TA, and checks the
// decision flips accordingly.
func TestCalibrationFlipsDecision(t *testing.T) {
	p := New()
	f := feat()
	d0 := p.Plan(f)
	// Whatever the uncalibrated pick is, teach the model the opposite:
	// the picked method is 100x its prior, the runner-up 0.01x.
	for i := 0; i < 8; i++ {
		p.Observe(d0.Method, f, 100*Prior(d0.Method, f))
		p.Observe(d0.RunnerUp, f, 0.01*Prior(d0.RunnerUp, f))
	}
	d1 := p.Plan(f)
	if d1.Method == d0.Method {
		t.Fatalf("decision did not flip after contrary observations (still %v)", d1.Method)
	}
	if d1.Method != d0.RunnerUp {
		t.Fatalf("decision flipped to %v, want former runner-up %v", d1.Method, d0.RunnerUp)
	}
	if got := d1.Candidates[d1.Method].Samples; got == 0 {
		t.Fatalf("calibrated candidate reports 0 samples")
	}
}

// TestBucketsIsolate checks queries in different volume bands do not
// share calibration.
func TestBucketsIsolate(t *testing.T) {
	p := New()
	small := feat()
	big := feat()
	big.RPLEntries *= 1000
	p.Observe(TA, small, 50*Prior(TA, small))
	ratio, samples := p.ratio(TA, big)
	if ratio != 1 || samples != 0 {
		t.Fatalf("big-volume bucket contaminated: ratio=%f samples=%d", ratio, samples)
	}
	ratio, samples = p.ratio(TA, small)
	if samples != 1 || ratio == 1 {
		t.Fatalf("small-volume bucket not calibrated: ratio=%f samples=%d", ratio, samples)
	}
}

func TestStatusAccessors(t *testing.T) {
	p := New()
	if p.Observations() != 0 || p.CalibratedBuckets() != 0 {
		t.Fatalf("fresh planner not empty")
	}
	if !p.LastObservation().IsZero() {
		t.Fatalf("fresh planner has a last-observation time")
	}
	if p.Staleness(time.Now()) < time.Hour {
		t.Fatalf("fresh planner should be maximally stale")
	}
	p.Observe(ERA, feat(), 1000)
	if p.Observations() != 1 || p.CalibratedBuckets() != 1 {
		t.Fatalf("counters after one observation: obs=%d buckets=%d",
			p.Observations(), p.CalibratedBuckets())
	}
	if p.Staleness(time.Now()) > time.Minute {
		t.Fatalf("staleness too large right after an observation")
	}
}

func TestPlanIsPure(t *testing.T) {
	p := New()
	f := feat()
	p.Observe(TA, f, 123)
	before := p.Observations()
	for i := 0; i < 100; i++ {
		p.Plan(f)
	}
	if p.Observations() != before || p.CalibratedBuckets() != 1 {
		t.Fatalf("Plan mutated model state")
	}
}

// TestConcurrentPlanObserve exercises the lock paths under the race
// detector.
func TestConcurrentPlanObserve(t *testing.T) {
	p := New()
	f := feat()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Observe(Method(i%int(NumMethods)), f, float64(100+i))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = p.Plan(f)
			}
		}()
	}
	wg.Wait()
	if p.Observations() != 4*500 {
		t.Fatalf("lost observations: %d", p.Observations())
	}
}
