package retrieval

import (
	"fmt"
	"sync"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/score"
	"trex/internal/storage"
	"trex/internal/summary"
)

// benchEnv is a lazily-built shared environment for retrieval benchmarks.
type benchEnvT struct {
	store *index.Store
	sids  []uint32
	terms []string
	sc    *score.Scorer
}

var (
	benchOnce sync.Once
	benchE    *benchEnvT
	benchErr  error
)

func retrievalBenchEnv(b *testing.B) *benchEnvT {
	b.Helper()
	benchOnce.Do(func() {
		col := corpus.GenerateIEEE(150, 41)
		sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming, Aliases: col.Aliases})
		if err != nil {
			benchErr = err
			return
		}
		db := storage.OpenMemory()
		st, err := index.Open(db)
		if err != nil {
			benchErr = err
			return
		}
		if _, err := index.BuildBase(st, col, sum); err != nil {
			benchErr = err
			return
		}
		// The Q260-style broad clause.
		var sids []uint32
		for _, n := range sum.Nodes {
			sids = append(sids, uint32(n.SID))
		}
		terms := []string{"model", "checking", "state", "space", "explosion"}
		sc, err := st.NewScorer(terms)
		if err != nil {
			benchErr = err
			return
		}
		if _, err := Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL); err != nil {
			benchErr = err
			return
		}
		benchE = &benchEnvT{store: st, sids: sids, terms: terms, sc: sc}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchE
}

// Ablation: random-access TA (Fagin) vs sorted-only NRA (TopX-style) —
// the implementation choice discussed in EXPERIMENTS.md.
func BenchmarkTAvsNRA(b *testing.B) {
	e := retrievalBenchEnv(b)
	for _, k := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("ta/k=%d", k), func(b *testing.B) {
			var sorted, random int
			for i := 0; i < b.N; i++ {
				_, st, err := TA(e.store, e.sids, e.terms, e.sc, k)
				if err != nil {
					b.Fatal(err)
				}
				sorted, random = st.SortedAccesses, st.RandomAccesses
			}
			b.ReportMetric(float64(sorted), "sorted")
			b.ReportMetric(float64(random), "random")
		})
		b.Run(fmt.Sprintf("nra/k=%d", k), func(b *testing.B) {
			var sorted int
			for i := 0; i < b.N; i++ {
				_, st, err := NRA(e.store, e.sids, e.terms, k)
				if err != nil {
					b.Fatal(err)
				}
				sorted = st.SortedAccesses
			}
			b.ReportMetric(float64(sorted), "sorted")
		})
	}
}

// BenchmarkERABaseline isolates the always-available strategy.
func BenchmarkERABaseline(b *testing.B) {
	e := retrievalBenchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := ERA(e.store, e.sids, e.terms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeBaseline isolates the ERPL sweep.
func BenchmarkMergeBaseline(b *testing.B) {
	e := retrievalBenchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := Merge(e.store, e.sids, e.terms, 10); err != nil {
			b.Fatal(err)
		}
	}
}
