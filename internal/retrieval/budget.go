package retrieval

import (
	"context"
	"errors"
)

// pollBudget is the strategies' cancellation point, checked at block
// boundaries (a TA/NRA round, a Merge sweep batch, an ERA position
// batch). An expired deadline asks the strategy to stop and return its
// current best-effort state with Stats.Approximate set — bounded
// latency in exchange for rank-safety, which is the contract a query
// deadline buys. A cancellation (the caller is gone, nobody wants the
// partial answer) aborts with the context's error.
//
// The not-done fast path is a single non-blocking channel poll;
// context.Background's Done channel is nil, so undeadlined queries pay
// almost nothing.
func pollBudget(ctx context.Context) (stop bool, err error) {
	select {
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return true, nil
		}
		return false, ctx.Err()
	default:
		return false, nil
	}
}

// budgetPollInterval is how many ERA sweep iterations (or Merge
// frontier steps, via mergePollMask) pass between budget polls. Polling
// is cheap but not free; a few hundred positions is far below any
// meaningful deadline's resolution.
const budgetPollInterval = 256

// mergePollMask polls Merge's frontier loop every 32 steps — each step
// is heavier than an ERA position, so the interval is shorter.
const mergePollMask = 31
