package retrieval

import (
	"math/rand"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/storage"
	"trex/internal/summary"
)

// buildStore parses the collection into a fresh in-memory store and
// materializes the clause's lists with the given materializer.
func buildStore(t *testing.T, col *corpus.Collection, sids []uint32, terms []string,
	mat func(*index.Store, []uint32, []string) error) *index.Store {
	t.Helper()
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.OpenMemory()
	t.Cleanup(func() { db.Close() })
	st, err := index.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	if err := mat(st, sids, terms); err != nil {
		t.Fatal(err)
	}
	return st
}

func sameRanking(t *testing.T, label string, want, got []Scored) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Elem != got[i].Elem || want[i].Score != got[i].Score {
			t.Fatalf("%s rank %d: %v/%v, want %v/%v",
				label, i, got[i].Elem, got[i].Score, want[i].Elem, want[i].Score)
		}
	}
}

// TestCrossVersionEquivalence is the acceptance check for the block
// encoding: TA, NRA, and Merge must return byte-identical rankings over a
// v1 (row-per-entry) store, a v2 (block-encoded) store, and a store mixing
// both formats — with no score tolerance, since the codecs round-trip
// scores exactly and the stopping bounds (BlockMaxScore) are
// format-independent.
func TestCrossVersionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4858))
	for trial := 0; trial < 8; trial++ {
		col := genRandomCollection(rng, 6+rng.Intn(8))
		sids := []uint32{1, 2, 3, 4, 5}
		terms := []string{"ax", "bx", "cx"}

		v1 := buildStore(t, col, sids, terms, func(st *index.Store, sids []uint32, terms []string) error {
			sc, err := st.NewScorer(terms)
			if err != nil {
				return err
			}
			_, err = MaterializeV1(st, sids, terms, sc, index.KindRPL, index.KindERPL)
			return err
		})
		v2 := buildStore(t, col, sids, terms, func(st *index.Store, sids []uint32, terms []string) error {
			sc, err := st.NewScorer(terms)
			if err != nil {
				return err
			}
			_, err = Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL)
			return err
		})
		// Mixed: one term's lists in each format; v1 and v2 rows share the
		// trees and must interleave cleanly.
		mixed := buildStore(t, col, sids, terms, func(st *index.Store, sids []uint32, terms []string) error {
			sc, err := st.NewScorer(terms)
			if err != nil {
				return err
			}
			for j, term := range terms {
				var merr error
				if j%2 == 0 {
					_, merr = MaterializeV1(st, sids, []string{term}, sc, index.KindRPL, index.KindERPL)
				} else {
					_, merr = Materialize(st, sids, []string{term}, sc, index.KindRPL, index.KindERPL)
				}
				if merr != nil {
					return merr
				}
			}
			return nil
		})

		scv1, err := v1.NewScorer(terms)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 10, 0} {
			base, _, err := ExhaustiveTopK(v1, sids, terms, scv1, k)
			if err != nil {
				t.Fatal(err)
			}
			for name, st := range map[string]*index.Store{"v1": v1, "v2": v2, "mixed": mixed} {
				sc, err := st.NewScorer(terms)
				if err != nil {
					t.Fatal(err)
				}
				kk := k
				if kk == 0 {
					kk = 1 << 20
				}
				ta, _, err := TA(st, sids, terms, sc, kk)
				if err != nil {
					t.Fatal(err)
				}
				sameRanking(t, name+"/ta", base, ta)
				nra, _, err := NRA(st, sids, terms, kk)
				if err != nil {
					t.Fatal(err)
				}
				sameRanking(t, name+"/nra", base, nra)
				mrg, _, err := Merge(st, sids, terms, kk)
				if err != nil {
					t.Fatal(err)
				}
				sameRanking(t, name+"/merge", base, mrg)
			}
		}
	}
}

// TestMergeSkipsOverBlocks is the acceptance criterion that block skipping
// is observable: over a v2 store, Merge must fetch far fewer storage rows
// than there are entries (CursorSteps counts rows, not entries) and must
// drain some entries in bulk (BlockSkips > 0) whenever lists are skewed.
func TestMergeSkipsOverBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	col := genRandomCollection(rng, 400)
	sids := []uint32{1, 2, 3, 4, 5}
	terms := []string{"ax", "bx"}
	st := buildStore(t, col, sids, terms, func(st *index.Store, sids []uint32, terms []string) error {
		sc, err := st.NewScorer(terms)
		if err != nil {
			return err
		}
		_, err = Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL)
		return err
	})
	_, stats, err := Merge(st, sids, terms, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range stats.ListTotals {
		total += n
	}
	if total < 200 {
		t.Fatalf("corpus too small to be meaningful: %d entries", total)
	}
	if stats.CursorSteps >= total {
		t.Fatalf("CursorSteps %d >= %d entries: no block batching observed", stats.CursorSteps, total)
	}
	if stats.BlockSkips == 0 {
		t.Fatal("BlockSkips = 0: the solo fast path never engaged")
	}
	// PageReads counts logical page touches, so it must be non-zero even
	// on a fully cached in-memory store; BytesRead counts physical misses
	// and is legitimately zero here.
	if stats.PageReads == 0 {
		t.Fatal("PageReads = 0: captureIO recorded nothing")
	}
}

// TestCatalogBytesMatchEncodedSize is the advisor-accuracy regression: the
// catalog's per-list byte accounting must agree with the actual on-disk
// key+value footprint of the RPL and ERPL trees to within 5% (it is exact
// for freshly built v2 stores, since per-entry attribution sums to the
// row footprint).
func TestCatalogBytesMatchEncodedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := genRandomCollection(rng, 30)
	sids := []uint32{1, 2, 3, 4, 5}
	terms := []string{"ax", "bx", "cx", "dx", "ex"}
	st := buildStore(t, col, sids, terms, func(st *index.Store, sids []uint32, terms []string) error {
		sc, err := st.NewScorer(terms)
		if err != nil {
			return err
		}
		_, err = Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL)
		return err
	})
	for kind, tree := range map[index.ListKind]*storage.Tree{
		index.KindRPL:  st.RPLs,
		index.KindERPL: st.ERPLs,
	} {
		var actual int64
		c := tree.Cursor()
		ok, err := c.First()
		for ok && err == nil {
			actual += int64(len(c.Key()) + len(c.Value()))
			ok, err = c.Next()
		}
		if err != nil {
			t.Fatal(err)
		}
		var recorded int64
		for _, term := range terms {
			for _, sid := range sids {
				_, b, err := st.BuiltSize(kind, term, sid)
				if err != nil {
					t.Fatal(err)
				}
				recorded += b
			}
		}
		if actual == 0 {
			t.Fatalf("%v: empty tree", kind)
		}
		diff := recorded - actual
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(actual) {
			t.Fatalf("%v: catalog records %d bytes, actual %d (off by %.1f%%)",
				kind, recorded, actual, 100*float64(diff)/float64(actual))
		}
	}
}
