// Package retrieval implements the three TReX retrieval strategies
// (Section 3 of the paper) over the index tables:
//
//   - ERA, the exhaustive retrieval algorithm (Figure 2), which scans
//     posting lists against per-sid element iterators and returns every
//     relevant element with its term frequencies. ERA only needs the
//     always-present Elements and PostingLists tables.
//
//   - TA, the threshold algorithm (Fagin et al.), in the style of the
//     TopX implementation the paper references: sorted accesses over
//     score-ordered RPLs with sid skipping, random accesses against the
//     base tables to complete candidate scores, and a top-k heap whose
//     management cost is measured separately so that ITA (TA with an
//     ideal, zero-cost heap) can be reported as in the paper's figures.
//
//   - Merge (Figure 3), which merges position-ordered ERPLs across terms,
//     accumulates each element's combined score, and sorts the result.
//
// All strategies return the same answers; they differ in which redundant
// indexes they need and where their time goes — which is exactly what the
// paper's experiments measure and what the self-managing index advisor
// exploits.
package retrieval
