package retrieval

import (
	"context"
	"sort"
	"time"

	"trex/internal/index"
	"trex/internal/score"
)

// ERA is the exhaustive retrieval algorithm of Figure 2. Given the sids
// and terms of a translated clause, it returns every element that (1) is
// in the extent of one of the sids and (2) contains at least one of the
// terms, together with its term-frequency vector.
//
// It advances one iterator per term over the posting lists and one
// iterator per sid over the Elements table, accumulating an m x n counter
// matrix C where C[i][x] is the frequency of term x inside the current
// element of sid i.
func ERA(st *index.Store, sids []uint32, terms []string) ([]ElementTF, *Stats, error) {
	return ERACtx(context.Background(), st, sids, terms)
}

// ERACtx is ERA with a cancellation/deadline context, polled every few
// hundred positions of the sweep. On an expired deadline it flushes the
// open elements (so partially counted elements are still emitted with
// the frequencies seen so far) and returns with Stats.Approximate set;
// on cancellation it returns the context's error.
func ERACtx(ctx context.Context, st *index.Store, sids []uint32, terms []string) ([]ElementTF, *Stats, error) {
	start := time.Now()
	io := st.IOStats()
	stats := &Stats{ListReads: make([]int, len(terms))}
	m, n := len(sids), len(terms)
	var out []ElementTF
	if m == 0 || n == 0 {
		stats.Elapsed = time.Since(start)
		return out, stats, nil
	}

	elemIters := make([]*index.ElementIterator, m)
	cur := make([]index.Element, m)
	for i, sid := range sids {
		elemIters[i] = index.NewElementIterator(st, sid)
		e, err := elemIters[i].FirstElement()
		if err != nil {
			return nil, nil, err
		}
		cur[i] = e
		stats.ElementsScanned++
	}
	posIters := make([]*index.PostingIterator, n)
	pos := make([]index.Pos, n)
	for j, t := range terms {
		posIters[j] = index.NewPostingIterator(st, t)
		p, err := posIters[j].NextPosition()
		if err != nil {
			return nil, nil, err
		}
		pos[j] = p
		if !p.IsMax() {
			stats.PositionsScanned++
		}
	}

	c := make([][]int, m)
	for i := range c {
		c[i] = make([]int, n)
	}
	// TF rows are carved out of slab allocations instead of one make per
	// emitted element: ERA emits one row per answer, and per-row slices
	// dominated its allocation profile on broad queries.
	const tfSlabRows = 256
	var tfSlab []int
	flush := func(i int) {
		row := c[i]
		nonZero := false
		for _, v := range row {
			if v != 0 {
				nonZero = true
				break
			}
		}
		if nonZero && !cur[i].IsDummy() {
			if len(tfSlab) < n {
				tfSlab = make([]int, n*tfSlabRows)
			}
			tf := tfSlab[:n:n]
			tfSlab = tfSlab[n:]
			copy(tf, row)
			out = append(out, ElementTF{Elem: cur[i], TF: tf})
			for x := range row {
				row[x] = 0
			}
		}
	}

	for step := 0; ; step++ {
		if step%budgetPollInterval == 0 {
			if stop, err := pollBudget(ctx); err != nil {
				return nil, nil, err
			} else if stop {
				for i := 0; i < m; i++ {
					flush(i)
				}
				stats.Approximate = true
				break
			}
		}
		// x: index of the minimal current position.
		x := 0
		for j := 1; j < n; j++ {
			if pos[j].Less(pos[x]) {
				x = j
			}
		}
		px := pos[x]
		if px.IsMax() {
			// All terms exhausted: flush every open element and stop.
			for i := 0; i < m; i++ {
				flush(i)
			}
			break
		}
		for i := 0; i < m; i++ {
			e := cur[i]
			if e.IsDummy() {
				continue
			}
			switch {
			case px.Less(index.Pos{Doc: e.Doc, Off: e.Start() + 1}):
				// pos_x <= start(e_i): not inside yet, do nothing.
			case e.Contains(px):
				c[i][x]++
			default:
				// end(e_i) <= pos_x: the element is behind us.
				flush(i)
				next, err := elemIters[i].NextElementAfter(px)
				if err != nil {
					return nil, nil, err
				}
				// The paper advances to the element with the lowest end
				// position greater than pos_x; that element may already
				// contain pos_x.
				cur[i] = next
				stats.ElementsScanned++
				if next.Contains(px) {
					c[i][x]++
				}
			}
		}
		p, err := posIters[x].NextPosition()
		if err != nil {
			return nil, nil, err
		}
		pos[x] = p
		if !p.IsMax() {
			stats.PositionsScanned++
		}
		stats.ListReads[x]++
	}
	stats.Answers = len(out)
	stats.captureIO(st, io)
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}

// ExhaustiveTopK evaluates a clause with ERA and ranks the results with
// the scorer, returning the top k (all results when k <= 0). This is the
// baseline every query can fall back to: it needs no redundant indexes.
func ExhaustiveTopK(st *index.Store, sids []uint32, terms []string, sc *score.Scorer, k int) ([]Scored, *Stats, error) {
	return ExhaustiveTopKCtx(context.Background(), st, sids, terms, sc, k)
}

// ExhaustiveTopKCtx is ExhaustiveTopK over ERACtx: an expired deadline
// yields the ranked best-effort prefix with Stats.Approximate set.
func ExhaustiveTopKCtx(ctx context.Context, st *index.Store, sids []uint32, terms []string, sc *score.Scorer, k int) ([]Scored, *Stats, error) {
	start := time.Now()
	rows, stats, err := ERACtx(ctx, st, sids, terms)
	if err != nil {
		return nil, nil, err
	}
	// Hoist the per-term scoring constants (IDF map lookup + log) out of
	// the per-row loop; TermScorer.Score is arithmetically identical to
	// sc.Score, so all strategies keep ranking elements the same way.
	ts := make([]score.TermScorer, len(terms))
	for j, t := range terms {
		ts[j] = sc.TermScorer(t)
	}
	out := make([]Scored, 0, len(rows))
	for _, r := range rows {
		var total float64
		for j := range ts {
			if r.TF[j] != 0 {
				total += ts[j].Score(r.TF[j], int(r.Elem.Length))
			}
		}
		out = append(out, Scored{Elem: r.Elem, Score: total})
	}
	SortScored(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}

// SortScored orders results by descending score, breaking ties by
// (doc, endpos) ascending so every strategy ranks identically.
func SortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return index.CompareDocEnd(s[i].Elem.Doc, s[i].Elem.End, s[j].Elem.Doc, s[j].Elem.End) < 0
	})
}
