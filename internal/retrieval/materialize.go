package retrieval

import (
	"trex/internal/index"
	"trex/internal/score"
)

// MaterializeStats reports what a materialization run wrote.
type MaterializeStats struct {
	// Entries written per kind.
	RPLEntries  int
	ERPLEntries int
	// Bytes is the exact on-disk footprint of the written rows (key +
	// value bytes), the advisor's space term.
	RPLBytes  int64
	ERPLBytes int64
	// Rows written per kind; with block encoding a row holds up to
	// index.BlockTargetEntries entries.
	RPLRows  int
	ERPLRows int
}

// rplRowBytes is the on-disk size of one v1 list entry: term prefix +
// fixed key tail + value. (The v2 paths account real encoded bytes.)
func rplRowBytes(term string) int64 { return int64(len(term)) + 1 + 20 + 12 }

func erplRowBytes(term string) int64 { return int64(len(term)) + 1 + 12 + 12 }

// Materialize builds the redundant (term, sid) lists a clause needs, by
// running ERA over the base tables and scoring each element — exactly how
// the paper generates and extends the RPLs and ERPLs tables ("TReX also
// uses ERA for generating or extending the RPLs and ERPLs tables").
//
// Lists are written in the v2 block encoding (see internal/index's block
// codec): entries are sorted into key order, packed ~128 per row, and
// loaded through the storage bulk loader when the tree is still empty.
// Any (term, sid) list that is already marked built for a requested kind
// is dropped first, so a rebuild can never leave stale rows behind
// (block row keys do not overwrite v1 rows key-for-key). The catalog
// records each list's exact encoded byte share, which is what the
// self-management advisor budgets against.
//
// kinds selects which of the two list kinds to write. Every (term, sid)
// pair is marked in the catalog, including pairs that produced no entries,
// so coverage checks are exact.
func Materialize(st *index.Store, sids []uint32, terms []string, sc *score.Scorer, kinds ...index.ListKind) (*MaterializeStats, error) {
	wantRPL, wantERPL := wantKinds(kinds)
	for _, t := range terms {
		for _, sid := range sids {
			for _, kind := range kinds {
				built, err := st.IsBuilt(kind, t, sid)
				if err != nil {
					return nil, err
				}
				if built {
					if _, err := st.DropList(kind, t, sid); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	rows, _, err := ERA(st, sids, terms)
	if err != nil {
		return nil, err
	}
	entries := make([][]index.RPLEntry, len(terms))
	for _, r := range rows {
		for j, t := range terms {
			if r.TF[j] == 0 {
				continue
			}
			entries[j] = append(entries[j], index.RPLEntry{
				Score:  sc.Score(t, r.TF[j], int(r.Elem.Length)),
				SID:    r.Elem.SID,
				Doc:    r.Elem.Doc,
				End:    r.Elem.End,
				Length: r.Elem.Length,
			})
		}
	}

	ms := &MaterializeStats{}
	type pairKey struct {
		term string
		sid  uint32
	}
	// Per-kind, per-(term, sid) entry counts and exact encoded byte
	// shares, from the encoder's per-entry attribution; each pair's
	// shares sum exactly to its rows' key+value footprint.
	counts := map[index.ListKind]map[pairKey]int{
		index.KindRPL:  make(map[pairKey]int),
		index.KindERPL: make(map[pairKey]int),
	}
	sizes := map[index.ListKind]map[pairKey]int64{
		index.KindRPL:  make(map[pairKey]int64),
		index.KindERPL: make(map[pairKey]int64),
	}
	account := func(kind index.ListKind, term string, encoded []index.ListRow) {
		for _, row := range encoded {
			for i, e := range row.Entries {
				pk := pairKey{term: term, sid: e.SID}
				counts[kind][pk]++
				sizes[kind][pk] += int64(row.EntryBytes[i])
			}
		}
	}
	var rplRows, erplRows []index.ListRow
	for j, t := range terms {
		// The two encoders sort the shared entry slice in place, each
		// into its own key order; RPL first, ERPL re-sorts after.
		if wantRPL {
			encoded := index.EncodeRPLBlocks(t, entries[j])
			account(index.KindRPL, t, encoded)
			rplRows = append(rplRows, encoded...)
		}
		if wantERPL {
			encoded := index.EncodeERPLBlocks(t, entries[j])
			account(index.KindERPL, t, encoded)
			erplRows = append(erplRows, encoded...)
		}
	}
	if wantRPL {
		if err := st.WriteListRows(index.KindRPL, rplRows); err != nil {
			return nil, err
		}
		for _, r := range rplRows {
			ms.RPLRows++
			ms.RPLEntries += len(r.Entries)
			ms.RPLBytes += int64(len(r.Key) + len(r.Value))
		}
	}
	if wantERPL {
		if err := st.WriteListRows(index.KindERPL, erplRows); err != nil {
			return nil, err
		}
		for _, r := range erplRows {
			ms.ERPLRows++
			ms.ERPLEntries += len(r.Entries)
			ms.ERPLBytes += int64(len(r.Key) + len(r.Value))
		}
	}
	for _, t := range terms {
		for _, sid := range sids {
			pk := pairKey{term: t, sid: sid}
			for _, kind := range []index.ListKind{index.KindRPL, index.KindERPL} {
				switch kind {
				case index.KindRPL:
					if !wantRPL {
						continue
					}
				case index.KindERPL:
					if !wantERPL {
						continue
					}
				}
				if err := st.MarkBuilt(kind, t, sid, counts[kind][pk], sizes[kind][pk]); err != nil {
					return nil, err
				}
			}
		}
	}
	return ms, nil
}

func wantKinds(kinds []index.ListKind) (rpl, erpl bool) {
	for _, k := range kinds {
		switch k {
		case index.KindRPL:
			rpl = true
		case index.KindERPL:
			erpl = true
		}
	}
	return
}

// MaterializeV1 writes row-per-entry (v1) lists — the seed's format. It
// remains for cross-version testing and for the before/after index-size
// comparison in the bench suite; production paths use Materialize.
func MaterializeV1(st *index.Store, sids []uint32, terms []string, sc *score.Scorer, kinds ...index.ListKind) (*MaterializeStats, error) {
	rows, _, err := ERA(st, sids, terms)
	if err != nil {
		return nil, err
	}
	wantRPL, wantERPL := wantKinds(kinds)
	ms := &MaterializeStats{}
	type pairKey struct {
		term string
		sid  uint32
	}
	counts := make(map[pairKey]int)
	for _, r := range rows {
		for j, t := range terms {
			if r.TF[j] == 0 {
				continue
			}
			entry := index.RPLEntry{
				Score:  sc.Score(t, r.TF[j], int(r.Elem.Length)),
				SID:    r.Elem.SID,
				Doc:    r.Elem.Doc,
				End:    r.Elem.End,
				Length: r.Elem.Length,
			}
			if wantRPL {
				if err := st.PutRPL(t, entry); err != nil {
					return nil, err
				}
				ms.RPLEntries++
				ms.RPLRows++
				ms.RPLBytes += rplRowBytes(t)
			}
			if wantERPL {
				if err := st.PutERPL(t, entry); err != nil {
					return nil, err
				}
				ms.ERPLEntries++
				ms.ERPLRows++
				ms.ERPLBytes += erplRowBytes(t)
			}
			counts[pairKey{term: t, sid: r.Elem.SID}]++
		}
	}
	for _, t := range terms {
		for _, sid := range sids {
			c := counts[pairKey{term: t, sid: sid}]
			if wantRPL {
				if err := st.MarkBuilt(index.KindRPL, t, sid, c, int64(c)*rplRowBytes(t)); err != nil {
					return nil, err
				}
			}
			if wantERPL {
				if err := st.MarkBuilt(index.KindERPL, t, sid, c, int64(c)*erplRowBytes(t)); err != nil {
					return nil, err
				}
			}
		}
	}
	return ms, nil
}
