package retrieval

import (
	"trex/internal/index"
	"trex/internal/score"
)

// MaterializeStats reports what a materialization run wrote.
type MaterializeStats struct {
	// Entries written per kind.
	RPLEntries  int
	ERPLEntries int
	// Bytes is the approximate on-disk footprint of the written entries
	// (key + value bytes), the advisor's space term.
	RPLBytes  int64
	ERPLBytes int64
}

// rplRowBytes approximates the on-disk size of one list entry: term
// prefix + fixed key tail + value.
func rplRowBytes(term string) int64 { return int64(len(term)) + 1 + 20 + 12 }

func erplRowBytes(term string) int64 { return int64(len(term)) + 1 + 12 + 12 }

// Materialize builds the redundant (term, sid) lists a clause needs, by
// running ERA over the base tables and scoring each element — exactly how
// the paper generates and extends the RPLs and ERPLs tables ("TReX also
// uses ERA for generating or extending the RPLs and ERPLs tables").
//
// kinds selects which of the two list kinds to write. Every (term, sid)
// pair is marked in the catalog, including pairs that produced no entries,
// so coverage checks are exact.
func Materialize(st *index.Store, sids []uint32, terms []string, sc *score.Scorer, kinds ...index.ListKind) (*MaterializeStats, error) {
	rows, _, err := ERA(st, sids, terms)
	if err != nil {
		return nil, err
	}
	wantRPL, wantERPL := false, false
	for _, k := range kinds {
		switch k {
		case index.KindRPL:
			wantRPL = true
		case index.KindERPL:
			wantERPL = true
		}
	}
	ms := &MaterializeStats{}
	type pairKey struct {
		term string
		sid  uint32
	}
	counts := make(map[pairKey]int)
	for _, r := range rows {
		for j, t := range terms {
			if r.TF[j] == 0 {
				continue
			}
			entry := index.RPLEntry{
				Score:  sc.Score(t, r.TF[j], int(r.Elem.Length)),
				SID:    r.Elem.SID,
				Doc:    r.Elem.Doc,
				End:    r.Elem.End,
				Length: r.Elem.Length,
			}
			if wantRPL {
				if err := st.PutRPL(t, entry); err != nil {
					return nil, err
				}
				ms.RPLEntries++
				ms.RPLBytes += rplRowBytes(t)
			}
			if wantERPL {
				if err := st.PutERPL(t, entry); err != nil {
					return nil, err
				}
				ms.ERPLEntries++
				ms.ERPLBytes += erplRowBytes(t)
			}
			counts[pairKey{term: t, sid: r.Elem.SID}]++
		}
	}
	for _, t := range terms {
		for _, sid := range sids {
			c := counts[pairKey{term: t, sid: sid}]
			if wantRPL {
				if err := st.MarkBuilt(index.KindRPL, t, sid, c, int64(c)*rplRowBytes(t)); err != nil {
					return nil, err
				}
			}
			if wantERPL {
				if err := st.MarkBuilt(index.KindERPL, t, sid, c, int64(c)*erplRowBytes(t)); err != nil {
					return nil, err
				}
			}
		}
	}
	return ms, nil
}
