package retrieval

import (
	"time"

	"trex/internal/index"
)

// Merge evaluates a clause with the Merge algorithm of Figure 3. Each
// term's ERPL segments for the query's sids are merged into one
// position-ordered stream (the two-step evaluation of Section 4); Merge
// then sweeps the streams in lockstep, summing the scores of every stream
// positioned on the same element, and finally sorts the accumulated result
// by score. Computing all answers first makes Merge's cost essentially
// independent of k — the behavior the paper's figures show.
//
// k <= 0 returns all answers.
func Merge(st *index.Store, sids []uint32, terms []string, k int) ([]Scored, *Stats, error) {
	start := time.Now()
	stats := &Stats{ListReads: make([]int, len(terms)), ListTotals: make([]int, len(terms))}
	n := len(terms)
	if n == 0 || len(sids) == 0 {
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}
	for j, t := range terms {
		for _, s := range sids {
			c, _, err := st.BuiltSize(index.KindERPL, t, s)
			if err != nil {
				return nil, nil, err
			}
			stats.ListTotals[j] += c
		}
	}

	type head struct {
		entry index.RPLEntry
		ok    bool
	}
	iters := make([]*index.TermERPL, n)
	heads := make([]head, n)
	for j, t := range terms {
		it, err := index.NewTermERPL(st, t, sids)
		if err != nil {
			return nil, nil, err
		}
		iters[j] = it
		e, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		heads[j] = head{entry: e, ok: ok}
		if ok {
			stats.ListReads[j]++
		}
	}

	var v []Scored
	for {
		// m: minimal (doc, end) among live heads.
		min := -1
		for j := range heads {
			if !heads[j].ok {
				continue
			}
			if min < 0 || index.CompareDocEnd(
				heads[j].entry.Doc, heads[j].entry.End,
				heads[min].entry.Doc, heads[min].entry.End) < 0 {
				min = j
			}
		}
		if min < 0 {
			break // all iterators at their end
		}
		cur := heads[min].entry
		var total float64
		for j := range heads {
			if !heads[j].ok {
				continue
			}
			if index.CompareDocEnd(heads[j].entry.Doc, heads[j].entry.End, cur.Doc, cur.End) != 0 {
				continue
			}
			total += heads[j].entry.Score
			e, ok, err := iters[j].Next()
			if err != nil {
				return nil, nil, err
			}
			heads[j] = head{entry: e, ok: ok}
			if ok {
				stats.ListReads[j]++
			}
		}
		v = append(v, Scored{Elem: cur.Element(), Score: total})
	}

	stats.Answers = len(v)
	SortScored(v) // the paper uses QuickSort here
	if k > 0 && len(v) > k {
		v = v[:k]
	}
	stats.Elapsed = time.Since(start)
	return v, stats, nil
}
