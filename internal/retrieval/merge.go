package retrieval

import (
	"context"
	"math"
	"time"

	"trex/internal/index"
)

// Merge evaluates a clause with the Merge algorithm of Figure 3. Each
// term's ERPL segments for the query's sids are merged into one
// position-ordered stream (the two-step evaluation of Section 4); Merge
// then sweeps the streams in lockstep, summing the scores of every stream
// positioned on the same element, and finally sorts the accumulated result
// by score. Computing all answers first makes Merge's cost essentially
// independent of k — the behavior the paper's figures show.
//
// When exactly one stream holds the minimal element, every entry it can
// produce below the other streams' heads is a single-term answer; those
// runs are pulled through TermERPL.DrainBelow in bulk — entries inside an
// already-decoded block cost neither a cursor step nor a per-entry
// frontier scan (Stats.BlockSkips counts them). List totals are not
// probed from the catalog up front: Merge always reads its lists to the
// end, so ListTotals is just ListReads — stats collection costs no seeks
// before retrieval starts.
//
// k <= 0 returns all answers.
func Merge(st *index.Store, sids []uint32, terms []string, k int) ([]Scored, *Stats, error) {
	return MergeCtx(context.Background(), st, sids, terms, k)
}

// MergeCtx is Merge with a cancellation/deadline context, polled every
// few frontier steps. On an expired deadline it sorts whatever answers
// the sweep has accumulated and returns them with Stats.Approximate
// set; on cancellation it returns the context's error.
func MergeCtx(ctx context.Context, st *index.Store, sids []uint32, terms []string, k int) ([]Scored, *Stats, error) {
	start := time.Now()
	io := st.IOStats()
	stats := &Stats{ListReads: make([]int, len(terms)), ListTotals: make([]int, len(terms))}
	n := len(terms)
	if n == 0 || len(sids) == 0 {
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}

	type head struct {
		entry index.RPLEntry
		ok    bool
	}
	iters := make([]*index.TermERPL, n)
	heads := make([]head, n)
	for j, t := range terms {
		it, err := index.NewTermERPL(st, t, sids)
		if err != nil {
			return nil, nil, err
		}
		iters[j] = it
		e, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		heads[j] = head{entry: e, ok: ok}
		if ok {
			stats.ListReads[j]++
		}
	}

	var v []Scored
	var drainBuf []index.RPLEntry
	for step := 0; ; step++ {
		if step&mergePollMask == 0 {
			if stop, err := pollBudget(ctx); err != nil {
				return nil, nil, err
			} else if stop {
				stats.Approximate = true
				break
			}
		}
		// m: minimal (doc, end) among live heads.
		min := -1
		for j := range heads {
			if !heads[j].ok {
				continue
			}
			if min < 0 || index.CompareDocEnd(
				heads[j].entry.Doc, heads[j].entry.End,
				heads[min].entry.Doc, heads[min].entry.End) < 0 {
				min = j
			}
		}
		if min < 0 {
			break // all iterators at their end
		}
		cur := heads[min].entry
		// solo: no other live head sits on the same element; bound: the
		// smallest other live head, up to which the min stream's entries
		// are all single-term answers.
		solo := true
		boundDoc, boundEnd := uint32(math.MaxUint32), uint32(math.MaxUint32)
		for j := range heads {
			if j == min || !heads[j].ok {
				continue
			}
			e := heads[j].entry
			if index.CompareDocEnd(e.Doc, e.End, cur.Doc, cur.End) == 0 {
				solo = false
			}
			if index.CompareDocEnd(e.Doc, e.End, boundDoc, boundEnd) < 0 {
				boundDoc, boundEnd = e.Doc, e.End
			}
		}
		if solo {
			v = append(v, Scored{Elem: cur.Element(), Score: cur.Score})
			drainBuf = drainBuf[:0]
			var err error
			drainBuf, err = iters[min].DrainBelow(boundDoc, boundEnd, drainBuf)
			if err != nil {
				return nil, nil, err
			}
			for _, e := range drainBuf {
				v = append(v, Scored{Elem: e.Element(), Score: e.Score})
			}
			stats.ListReads[min] += len(drainBuf)
			stats.BlockSkips += len(drainBuf)
			e, ok, err := iters[min].Next()
			if err != nil {
				return nil, nil, err
			}
			heads[min] = head{entry: e, ok: ok}
			if ok {
				stats.ListReads[min]++
			}
			continue
		}
		var total float64
		for j := range heads {
			if !heads[j].ok {
				continue
			}
			if index.CompareDocEnd(heads[j].entry.Doc, heads[j].entry.End, cur.Doc, cur.End) != 0 {
				continue
			}
			total += heads[j].entry.Score
			e, ok, err := iters[j].Next()
			if err != nil {
				return nil, nil, err
			}
			heads[j] = head{entry: e, ok: ok}
			if ok {
				stats.ListReads[j]++
			}
		}
		v = append(v, Scored{Elem: cur.Element(), Score: total})
	}

	for j := range iters {
		// Merge is exhaustive, so what was read is the total — no
		// up-front catalog probes needed (DepthFraction stays 1).
		stats.ListTotals[j] = stats.ListReads[j]
		stats.CursorSteps += iters[j].RowsRead()
	}
	stats.Answers = len(v)
	SortScored(v) // the paper uses QuickSort here
	if k > 0 && len(v) > k {
		v = v[:k]
	}
	stats.captureIO(st, io)
	stats.Elapsed = time.Since(start)
	return v, stats, nil
}
