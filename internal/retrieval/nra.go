package retrieval

import (
	"container/heap"
	"context"
	"time"

	"trex/internal/index"
)

// nraCand is one NRA candidate: an element with its [worst, best] score
// bounds, tracked via a bitmask of the lists it has been seen in. The
// per-term contributions are kept so the final score can be re-summed in
// canonical term order — bit-for-bit identical to what ERA/TA compute,
// which keeps tie-breaking consistent across methods.
type nraCand struct {
	elem   index.Element
	seen   uint64
	worst  float64
	scores []float64
}

// exactScore sums the contributions in term order.
func (c *nraCand) exactScore() float64 {
	var total float64
	for _, s := range c.scores {
		total += s
	}
	return total
}

// NRA evaluates a clause with a sorted-access-only threshold algorithm in
// the style the paper attributes to TopX: no random accesses — candidates
// carry [worst, best] score bounds that tighten as the score-ordered RPLs
// are consumed. This is the variant whose behavior the paper's TA curves
// show: with modest k it usually reads the lists to the end, because a
// candidate is only resolved once every list has either yielded it or
// been exhausted (a term a candidate contains must appear in that term's
// full RPL, so exhaustion proves absence).
//
// The returned ranking is exact and identical to TA/Merge/ERA. Queries
// are limited to 64 terms (far beyond NEXI practice).
func NRA(st *index.Store, sids []uint32, terms []string, k int) ([]Scored, *Stats, error) {
	return NRACtx(context.Background(), st, sids, terms, k)
}

// NRACtx is NRA with a cancellation/deadline context, polled once per
// sorted-access round. On an expired deadline it ranks the candidates
// accumulated so far by their resolved contributions and returns them
// with Stats.Approximate set; on cancellation it returns the context's
// error.
func NRACtx(ctx context.Context, st *index.Store, sids []uint32, terms []string, k int) ([]Scored, *Stats, error) {
	start := time.Now()
	io := st.IOStats()
	stats := &Stats{ListReads: make([]int, len(terms)), ListTotals: make([]int, len(terms))}
	if k <= 0 {
		k = 1
	}
	n := len(terms)
	if n == 0 || len(sids) == 0 {
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}
	if n > 64 {
		n = 64
		terms = terms[:64]
	}
	sidSet := make(map[uint32]bool, len(sids))
	for _, s := range sids {
		sidSet[s] = true
	}
	for j, t := range terms {
		for _, s := range sids {
			c, _, err := st.BuiltSize(index.KindRPL, t, s)
			if err != nil {
				return nil, nil, err
			}
			stats.ListTotals[j] += c
		}
	}

	iters := make([]*index.RPLIterator, n)
	high := make([]float64, n)
	bounds := make([]float64, n)
	exhausted := make([]bool, n)
	for j, t := range terms {
		iters[j] = index.NewRPLIterator(st, t)
	}
	cands := make(map[uint64]*nraCand)
	elemKey := func(e index.Element) uint64 { return uint64(e.Doc)<<32 | uint64(e.End) }

	absorb := func(j int, e index.RPLEntry) {
		high[j] = e.Score
		key := elemKey(e.Element())
		c, ok := cands[key]
		if !ok {
			c = &nraCand{elem: e.Element(), scores: make([]float64, n)}
			cands[key] = c
		}
		bit := uint64(1) << uint(j)
		if c.seen&bit == 0 {
			c.seen |= bit
			c.worst += e.Score
			c.scores[j] = e.Score
		}
	}
	for j := range iters {
		e, ok, err := nextInSIDSet(iters[j], sidSet, stats, j)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			exhausted[j] = true
			continue
		}
		absorb(j, e)
	}

	round := 0
	for {
		if stop, err := pollBudget(ctx); err != nil {
			return nil, nil, err
		} else if stop {
			stats.Approximate = true
			break
		}
		allDone := true
		for j := range iters {
			if exhausted[j] {
				continue
			}
			allDone = false
			e, ok, err := nextInSIDSet(iters[j], sidSet, stats, j)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				exhausted[j] = true
				high[j] = 0
				continue
			}
			absorb(j, e)
		}
		if allDone {
			break
		}
		round++
		if round%8 != 0 {
			continue // amortize the stop test, as TopX batches it
		}
		// Tighten each list's bound to its next unreturned entry's score
		// (BlockMaxScore): at least as tight as the last value returned
		// (high), and identical for v1 and block-encoded lists, so stop
		// decisions — and rankings — do not depend on the row format.
		for j := range iters {
			bounds[j] = 0
			if exhausted[j] {
				continue
			}
			s, ok, err := iters[j].BlockMaxScore()
			if err != nil {
				return nil, nil, err
			}
			if ok {
				bounds[j] = s
			}
			if bounds[j] > high[j] {
				bounds[j] = high[j]
			}
		}
		hs := time.Now()
		stop := nraStop(cands, bounds, exhausted, k, n, stats)
		stats.HeapTime += time.Since(hs)
		if stop {
			stats.ThresholdStop = true
			break
		}
	}

	// Final ranking: on a clean stop every top-k candidate is resolved
	// (exact score); on exhaustion every candidate is exact. Scores are
	// re-summed in term order for cross-method determinism.
	out := make([]Scored, 0, len(cands))
	for _, c := range cands {
		out = append(out, Scored{Elem: c.elem, Score: c.exactScore()})
	}
	hs := time.Now()
	SortScored(out)
	stats.HeapTime += time.Since(hs)
	if len(out) > k {
		out = out[:k]
	}
	for j := range iters {
		stats.CursorSteps += iters[j].RowsRead
	}
	stats.Answers = len(out)
	stats.captureIO(st, io)
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}

// nraStop implements the sorted-only stopping test. Membership is fixed
// when the k-th best worst-score strictly exceeds both the threshold (an
// unseen element's best possible score) and every outside candidate's
// best-score. The result is additionally exact when each top-k candidate
// is resolved: every list has either yielded it or been exhausted.
func nraStop(cands map[uint64]*nraCand, high []float64, exhausted []bool, k, n int, stats *Stats) bool {
	if len(cands) < k {
		return false
	}
	var threshold float64
	for j := range high {
		if !exhausted[j] {
			threshold += high[j]
		}
	}
	// k-th largest worst score via a bounded min-heap.
	h := make(floatMinHeap, 0, k)
	for _, c := range cands {
		if h.Len() < k {
			heap.Push(&h, c.worst)
		} else if c.worst > h[0] {
			h[0] = c.worst
			heap.Fix(&h, 0)
		}
		stats.HeapOps++
	}
	kth := h[0]
	if kth <= threshold {
		return false
	}
	for _, c := range cands {
		bestC := c.worst
		resolved := true
		for j := 0; j < n; j++ {
			if c.seen&(1<<uint(j)) == 0 && !exhausted[j] {
				bestC += high[j]
				resolved = false
			}
		}
		if c.worst >= kth {
			if !resolved {
				return false // a top-k candidate's score is still a bound
			}
			continue
		}
		if bestC >= kth {
			return false // an outside candidate could still climb in
		}
	}
	return true
}

type floatMinHeap []float64

func (h floatMinHeap) Len() int           { return len(h) }
func (h floatMinHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h floatMinHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *floatMinHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *floatMinHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}
