package retrieval

import (
	"testing"

	"trex/internal/corpus"
)

// TestNRAAgreesWithOtherMethods: the sorted-only variant must return the
// same ranked scores as ERA, TA and Merge.
func TestNRAAgreesWithOtherMethods(t *testing.T) {
	col := corpus.GenerateIEEE(25, 77)
	e := newEnv(t, col)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//bdy//*[about(., information retrieval)]`,
	}
	for _, src := range queries {
		sids, terms := e.clause(t, src, 0)
		e.materialize(t, sids, terms)
		sc := e.scorer(t, terms)
		for _, k := range []int{1, 3, 20, 100000} {
			era, _, err := ExhaustiveTopK(e.store, sids, terms, sc, k)
			if err != nil {
				t.Fatal(err)
			}
			nra, _, err := NRA(e.store, sids, terms, k)
			if err != nil {
				t.Fatal(err)
			}
			if !scoresClose(scoresOf(era), scoresOf(nra)) {
				t.Fatalf("%s k=%d: ERA %v != NRA %v", src, k, head(scoresOf(era)), head(scoresOf(nra)))
			}
			for i := range era {
				if era[i].Elem != nra[i].Elem {
					t.Fatalf("%s k=%d rank %d: %+v vs %+v", src, k, i, era[i].Elem, nra[i].Elem)
				}
			}
		}
	}
}

// TestNRAReadsDeeperThanTA reproduces the structural difference the
// experiments document: without random access, NRA must keep reading
// until candidates resolve, so its sorted-access depth is at least TA's.
func TestNRAReadsDeeperThanTA(t *testing.T) {
	col := corpus.GenerateIEEE(30, 21)
	e := newEnv(t, col)
	sids, terms := e.clause(t, `//article//sec[about(., ontologies case study)]`, 0)
	e.materialize(t, sids, terms)
	sc := e.scorer(t, terms)
	for _, k := range []int{1, 10, 100} {
		_, taStats, err := TA(e.store, sids, terms, sc, k)
		if err != nil {
			t.Fatal(err)
		}
		_, nraStats, err := NRA(e.store, sids, terms, k)
		if err != nil {
			t.Fatal(err)
		}
		if nraStats.SortedAccesses < taStats.SortedAccesses {
			t.Fatalf("k=%d: NRA read %d < TA %d sorted accesses",
				k, nraStats.SortedAccesses, taStats.SortedAccesses)
		}
		if nraStats.RandomAccesses != 0 {
			t.Fatalf("NRA performed %d random accesses", nraStats.RandomAccesses)
		}
	}
}

func TestNRAEmptyInputs(t *testing.T) {
	e := handEnv(t, `<a><b>x</b></a>`)
	res, _, err := NRA(e.store, nil, []string{"x"}, 5)
	if err != nil || res != nil {
		t.Fatalf("no sids: %v, %v", res, err)
	}
	res, _, err = NRA(e.store, []uint32{1}, nil, 5)
	if err != nil || res != nil {
		t.Fatalf("no terms: %v, %v", res, err)
	}
	// Unmaterialized lists: empty result, no error.
	res, _, err = NRA(e.store, []uint32{1}, []string{"x"}, 5)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty lists: %v, %v", res, err)
	}
}

func TestNRASingleList(t *testing.T) {
	e := handEnv(t,
		`<a><b>solo solo solo</b><b>solo</b><b>solo solo</b></a>`,
	)
	sids, terms := e.clause(t, `//a//b[about(., solo)]`, 0)
	e.materialize(t, sids, terms)
	res, stats, err := NRA(e.store, sids, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].Score < res[1].Score {
		t.Fatal("not descending")
	}
	if stats.Answers != 2 {
		t.Fatalf("Answers = %d", stats.Answers)
	}
}
