package retrieval

import (
	"math/rand"
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/storage"
	"trex/internal/summary"
)

// genRandomCollection builds a small random corpus: random nesting over a
// tag alphabet, text drawn from a tiny vocabulary so term overlaps and
// score ties are frequent (the adversarial case for top-k agreement).
func genRandomCollection(rng *rand.Rand, docs int) *corpus.Collection {
	tags := []string{"r", "s", "t", "u"}
	words := []string{"ax", "bx", "cx", "dx", "ex"}
	col := &corpus.Collection{}
	for d := 0; d < docs; d++ {
		var sb strings.Builder
		var emit func(depth int)
		emit = func(depth int) {
			tag := tags[rng.Intn(len(tags))]
			sb.WriteString("<" + tag + ">")
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				sb.WriteString(words[rng.Intn(len(words))] + " ")
			}
			if depth < 3 {
				for i := rng.Intn(3); i > 0; i-- {
					emit(depth + 1)
					sb.WriteString(words[rng.Intn(len(words))] + " ")
				}
			}
			sb.WriteString("</" + tag + ">")
		}
		sb.WriteString("<doc>")
		emit(0)
		sb.WriteString("</doc>")
		col.Docs = append(col.Docs, corpus.Document{ID: d, Data: []byte(sb.String())})
	}
	return col
}

// TestQuickAllMethodsAgreeOnRandomCorpora is the cross-method agreement
// property under adversarial conditions: tiny vocabulary (many exact
// score ties), random sid subsets, random term subsets, random k.
func TestQuickAllMethodsAgreeOnRandomCorpora(t *testing.T) {
	rng := rand.New(rand.NewSource(20071))
	for trial := 0; trial < 25; trial++ {
		col := genRandomCollection(rng, 3+rng.Intn(6))
		sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
		if err != nil {
			t.Fatal(err)
		}
		db := storage.OpenMemory()
		st, err := index.Open(db)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := index.BuildBase(st, col, sum); err != nil {
			t.Fatal(err)
		}
		// Random sid subset (always non-empty).
		var sids []uint32
		for _, n := range sum.Nodes {
			if rng.Intn(2) == 0 {
				sids = append(sids, uint32(n.SID))
			}
		}
		if len(sids) == 0 {
			sids = []uint32{1}
		}
		// Random term subset.
		allWords := []string{"ax", "bx", "cx", "dx", "ex"}
		var terms []string
		for _, w := range allWords {
			if rng.Intn(2) == 0 {
				terms = append(terms, w)
			}
		}
		if len(terms) == 0 {
			terms = []string{"ax"}
		}
		sc, err := st.NewScorer(terms)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL); err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 7, 1000} {
			era, _, err := ExhaustiveTopK(st, sids, terms, sc, k)
			if err != nil {
				t.Fatal(err)
			}
			ta, _, err := TA(st, sids, terms, sc, k)
			if err != nil {
				t.Fatal(err)
			}
			nra, _, err := NRA(st, sids, terms, k)
			if err != nil {
				t.Fatal(err)
			}
			mrg, _, err := Merge(st, sids, terms, k)
			if err != nil {
				t.Fatal(err)
			}
			for name, got := range map[string][]Scored{"ta": ta, "nra": nra, "merge": mrg} {
				if len(got) != len(era) {
					t.Fatalf("trial %d k=%d: %s returned %d, era %d (sids=%v terms=%v)",
						trial, k, name, len(got), len(era), sids, terms)
				}
				for i := range era {
					if era[i].Elem != got[i].Elem || !close2(era[i].Score, got[i].Score) {
						t.Fatalf("trial %d k=%d rank %d: %s %v/%f vs era %v/%f",
							trial, k, i, name, got[i].Elem, got[i].Score, era[i].Elem, era[i].Score)
					}
				}
			}
		}
		db.Close()
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestQuickMaterializeIdempotent: re-materializing the same clause leaves
// the lists unchanged (Put overwrites are byte-identical).
func TestQuickMaterializeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	col := genRandomCollection(rng, 6)
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.OpenMemory()
	defer db.Close()
	st, err := index.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	sids := []uint32{1, 2, 3}
	terms := []string{"ax", "bx"}
	sc, err := st.NewScorer(terms)
	if err != nil {
		t.Fatal(err)
	}
	ms1, err := Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL)
	if err != nil {
		t.Fatal(err)
	}
	rows1, err := st.RPLs.Len()
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := Materialize(st, sids, terms, sc, index.KindRPL, index.KindERPL)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := st.RPLs.Len()
	if err != nil {
		t.Fatal(err)
	}
	if rows1 != rows2 {
		t.Fatalf("row count changed: %d -> %d", rows1, rows2)
	}
	if ms1.RPLEntries != ms2.RPLEntries {
		t.Fatalf("entry counts differ: %+v vs %+v", ms1, ms2)
	}
}
