package retrieval

import (
	"math"
	"strings"
	"testing"

	"trex/internal/corpus"
	"trex/internal/index"
	"trex/internal/nexi"
	"trex/internal/score"
	"trex/internal/storage"
	"trex/internal/summary"
	"trex/internal/translate"
)

// env bundles everything a retrieval test needs.
type env struct {
	store *index.Store
	sum   *summary.Summary
	col   *corpus.Collection
}

func newEnv(t *testing.T, col *corpus.Collection) *env {
	t.Helper()
	sum, err := summary.Build(col, summary.Options{Kind: summary.KindIncoming, Aliases: col.Aliases})
	if err != nil {
		t.Fatal(err)
	}
	db := storage.OpenMemory()
	t.Cleanup(func() { db.Close() })
	st, err := index.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.BuildBase(st, col, sum); err != nil {
		t.Fatal(err)
	}
	return &env{store: st, sum: sum, col: col}
}

func handEnv(t *testing.T, docs ...string) *env {
	t.Helper()
	col := &corpus.Collection{}
	for i, d := range docs {
		col.Docs = append(col.Docs, corpus.Document{ID: i, Data: []byte(d)})
	}
	return newEnv(t, col)
}

// clause translates a query and returns the sids/terms of its i-th clause.
func (e *env) clause(t *testing.T, src string, i int) ([]uint32, []string) {
	t.Helper()
	q, err := nexi.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := translate.Translate(q, e.sum, translate.ModeVague)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Clauses[i]
	return c.SIDs, c.PositiveTerms()
}

func (e *env) scorer(t *testing.T, terms []string) *score.Scorer {
	t.Helper()
	sc, err := e.store.NewScorer(terms)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func (e *env) materialize(t *testing.T, sids []uint32, terms []string) {
	t.Helper()
	sc := e.scorer(t, terms)
	if _, err := Materialize(e.store, sids, terms, sc, index.KindRPL, index.KindERPL); err != nil {
		t.Fatal(err)
	}
}

func TestERASingleSIDSingleTerm(t *testing.T) {
	e := handEnv(t,
		`<a><b>apple banana apple</b><b>cherry</b></a>`,
		`<a><b>apple</b></a>`,
	)
	sids, terms := e.clause(t, `//a//b[about(., apple)]`, 0)
	rows, stats, err := ERA(e.store, sids, terms)
	if err != nil {
		t.Fatal(err)
	}
	// Two b-elements contain "apple"; tf 2 and 1.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2: %+v", len(rows), rows)
	}
	var tfs []int
	for _, r := range rows {
		tfs = append(tfs, r.TF[0])
	}
	if !(tfs[0] == 2 && tfs[1] == 1) && !(tfs[0] == 1 && tfs[1] == 2) {
		t.Fatalf("tfs = %v", tfs)
	}
	if stats.PositionsScanned == 0 || stats.ElementsScanned == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

func TestERAMultiTermMatrix(t *testing.T) {
	e := handEnv(t,
		`<a><b>xx yy</b><b>yy yy</b><b>zz</b></a>`,
	)
	sids, _ := e.clause(t, `//a//b[about(., xx yy)]`, 0)
	rows, _, err := ERA(e.store, sids, []string{"xx", "yy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (zz-only element excluded)", len(rows))
	}
	// First b: xx=1 yy=1; second b: xx=0 yy=2.
	if rows[0].TF[0] != 1 || rows[0].TF[1] != 1 {
		t.Fatalf("row0 tf = %v", rows[0].TF)
	}
	if rows[1].TF[0] != 0 || rows[1].TF[1] != 2 {
		t.Fatalf("row1 tf = %v", rows[1].TF)
	}
}

func TestERAMultipleSIDsNestedExtents(t *testing.T) {
	// article contains sec; both extents searched: term inside sec counts
	// for both the sec element and the article element.
	e := handEnv(t,
		`<article><sec>target word</sec><sec>other</sec></article>`,
	)
	q := `//article[about(., target)]`
	artSIDs, _ := e.clause(t, q, 0)
	secSIDs, _ := e.clause(t, `//article//sec[about(., target)]`, 0)
	all := append(append([]uint32{}, artSIDs...), secSIDs...)
	rows, _, err := ERA(e.store, all, []string{"target"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (article and sec)", len(rows))
	}
	gotSIDs := map[uint32]bool{}
	for _, r := range rows {
		gotSIDs[r.Elem.SID] = true
		if r.TF[0] != 1 {
			t.Fatalf("tf = %d, want 1", r.TF[0])
		}
	}
	if !gotSIDs[artSIDs[0]] || !gotSIDs[secSIDs[0]] {
		t.Fatalf("sids = %v", gotSIDs)
	}
}

func TestERAEmptyInputs(t *testing.T) {
	e := handEnv(t, `<a><b>x</b></a>`)
	rows, _, err := ERA(e.store, nil, []string{"x"})
	if err != nil || rows != nil {
		t.Fatalf("no sids: %v, %v", rows, err)
	}
	rows, _, err = ERA(e.store, []uint32{1}, nil)
	if err != nil || rows != nil {
		t.Fatalf("no terms: %v, %v", rows, err)
	}
	rows, _, err = ERA(e.store, []uint32{1}, []string{"absentterm"})
	if err != nil || len(rows) != 0 {
		t.Fatalf("absent term: %v, %v", rows, err)
	}
}

func TestTFInSpanMatchesERA(t *testing.T) {
	e := handEnv(t,
		`<a><b>apple pear apple plum</b><b>pear</b></a>`,
		`<a><b>apple</b></a>`,
	)
	sids, _ := e.clause(t, `//a//b[about(., apple pear)]`, 0)
	rows, _, err := ERA(e.store, sids, []string{"apple", "pear"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for j, term := range []string{"apple", "pear"} {
			tf, err := index.TFInSpan(e.store, term, r.Elem)
			if err != nil {
				t.Fatal(err)
			}
			if tf != r.TF[j] {
				t.Fatalf("TFInSpan(%s, %+v) = %d, ERA says %d", term, r.Elem, tf, r.TF[j])
			}
		}
	}
}

func TestMaterializeAndIterate(t *testing.T) {
	e := handEnv(t,
		`<a><b>foo bar foo</b><b>bar</b></a>`,
	)
	sids, terms := e.clause(t, `//a//b[about(., foo bar)]`, 0)
	sc := e.scorer(t, terms)
	ms, err := Materialize(e.store, sids, terms, sc, index.KindRPL, index.KindERPL)
	if err != nil {
		t.Fatal(err)
	}
	// foo appears in 1 element, bar in 2: 3 entries per kind.
	if ms.RPLEntries != 3 || ms.ERPLEntries != 3 {
		t.Fatalf("entries = %d RPL, %d ERPL; want 3, 3", ms.RPLEntries, ms.ERPLEntries)
	}
	if ms.RPLBytes <= 0 || ms.ERPLBytes <= 0 {
		t.Fatalf("bytes = %d, %d", ms.RPLBytes, ms.ERPLBytes)
	}
	cov, err := e.store.Covered(index.KindRPL, terms, sids)
	if err != nil || !cov {
		t.Fatalf("RPL coverage = %v, %v", cov, err)
	}
	cov, err = e.store.Covered(index.KindERPL, terms, sids)
	if err != nil || !cov {
		t.Fatalf("ERPL coverage = %v, %v", cov, err)
	}
	// RPL order is score-descending.
	it := index.NewRPLIterator(e.store, "bar")
	prev := math.Inf(1)
	for {
		entry, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if entry.Score > prev {
			t.Fatalf("RPL not descending: %v after %v", entry.Score, prev)
		}
		prev = entry.Score
	}
}

// scoresOf projects the score sequence of a ranked list.
func scoresOf(s []Scored) []float64 {
	out := make([]float64, len(s))
	for i := range s {
		out[i] = s[i].Score
	}
	return out
}

func scoresClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestThreeMethodsAgree(t *testing.T) {
	// The central invariant: ERA, TA and Merge produce the same ranked
	// score sequence for the same clause.
	col := corpus.GenerateIEEE(25, 77)
	e := newEnv(t, col)
	queries := []string{
		`//article//sec[about(., ontologies case study)]`,
		`//article[about(., xml query evaluation)]`,
		`//article//p[about(., model checking)]`,
		`//bdy//*[about(., information retrieval)]`,
	}
	for _, src := range queries {
		sids, terms := e.clause(t, src, 0)
		if len(sids) == 0 || len(terms) == 0 {
			t.Fatalf("%s: empty translation (sids=%d terms=%d)", src, len(sids), len(terms))
		}
		e.materialize(t, sids, terms)
		sc := e.scorer(t, terms)

		for _, k := range []int{1, 5, 50, 100000} {
			era, _, err := ExhaustiveTopK(e.store, sids, terms, sc, k)
			if err != nil {
				t.Fatalf("%s ERA: %v", src, err)
			}
			ta, _, err := TA(e.store, sids, terms, sc, k)
			if err != nil {
				t.Fatalf("%s TA: %v", src, err)
			}
			mrg, _, err := Merge(e.store, sids, terms, k)
			if err != nil {
				t.Fatalf("%s Merge: %v", src, err)
			}
			if !scoresClose(scoresOf(era), scoresOf(ta)) {
				t.Fatalf("%s k=%d: ERA %v != TA %v", src, k, head(scoresOf(era)), head(scoresOf(ta)))
			}
			if !scoresClose(scoresOf(era), scoresOf(mrg)) {
				t.Fatalf("%s k=%d: ERA %v != Merge %v", src, k, head(scoresOf(era)), head(scoresOf(mrg)))
			}
			// With deterministic tie-breaking the element lists agree too.
			for i := range era {
				if era[i].Elem != ta[i].Elem || era[i].Elem != mrg[i].Elem {
					t.Fatalf("%s k=%d rank %d: elements differ: %+v / %+v / %+v",
						src, k, i, era[i].Elem, ta[i].Elem, mrg[i].Elem)
				}
			}
		}
	}
}

func head(s []float64) []float64 {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

func TestTAStats(t *testing.T) {
	col := corpus.GenerateIEEE(20, 5)
	e := newEnv(t, col)
	sids, terms := e.clause(t, `//article//sec[about(., ontologies case study)]`, 0)
	e.materialize(t, sids, terms)
	sc := e.scorer(t, terms)
	_, stats, err := TA(e.store, sids, terms, sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SortedAccesses == 0 {
		t.Fatal("no sorted accesses recorded")
	}
	if stats.RandomAccesses == 0 {
		t.Fatal("no random accesses recorded")
	}
	if stats.HeapOps == 0 {
		t.Fatal("no heap ops recorded")
	}
	if stats.ITATime() > stats.Elapsed {
		t.Fatal("ITATime exceeds Elapsed")
	}
	if stats.DepthFraction() <= 0 || stats.DepthFraction() > 1.000001 {
		t.Fatalf("DepthFraction = %v", stats.DepthFraction())
	}
}

func TestTASkipsForeignSIDs(t *testing.T) {
	e := handEnv(t,
		`<a><b>shared term here</b><c>shared term too</c></a>`,
	)
	bSIDs, _ := e.clause(t, `//a//b[about(., shared)]`, 0)
	cSIDs, _ := e.clause(t, `//a//c[about(., shared)]`, 0)
	// Materialize both extents into the same RPL for "shared".
	e.materialize(t, append(append([]uint32{}, bSIDs...), cSIDs...), []string{"shared"})
	sc := e.scorer(t, []string{"shared"})
	// Query only the b extent: the c entry must be skipped.
	res, stats, err := TA(e.store, bSIDs, []string{"shared"}, sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	if res[0].Elem.SID != bSIDs[0] {
		t.Fatalf("result sid = %d, want %d", res[0].Elem.SID, bSIDs[0])
	}
	if stats.SkippedBySID == 0 {
		t.Fatal("expected sid skips")
	}
}

func TestMergeComputesAllThenTruncates(t *testing.T) {
	col := corpus.GenerateIEEE(15, 9)
	e := newEnv(t, col)
	sids, terms := e.clause(t, `//article//p[about(., model checking state)]`, 0)
	e.materialize(t, sids, terms)
	all, statsAll, err := Merge(e.store, sids, terms, 0)
	if err != nil {
		t.Fatal(err)
	}
	top5, stats5, err := Merge(e.store, sids, terms, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 6 {
		t.Fatalf("need more answers for this test, got %d", len(all))
	}
	if len(top5) != 5 {
		t.Fatalf("top5 = %d", len(top5))
	}
	for i := range top5 {
		if top5[i] != all[i] {
			t.Fatalf("top5[%d] != all[%d]", i, i)
		}
	}
	// Merge reads everything regardless of k.
	if statsAll.Answers != stats5.Answers {
		t.Fatalf("Answers differ: %d vs %d", statsAll.Answers, stats5.Answers)
	}
}

func TestMergeEmptyLists(t *testing.T) {
	e := handEnv(t, `<a><b>x</b></a>`)
	res, _, err := Merge(e.store, []uint32{1}, []string{"neverbuilt"}, 10)
	if err != nil || len(res) != 0 {
		t.Fatalf("Merge over empty lists = %v, %v", res, err)
	}
	res, _, err = Merge(e.store, nil, []string{"x"}, 10)
	if err != nil || res != nil {
		t.Fatalf("Merge with no sids = %v, %v", res, err)
	}
}

func TestTopKHeapBehavior(t *testing.T) {
	h := newTopKHeap(3)
	if h.full() {
		t.Fatal("empty heap full")
	}
	mk := func(score float64, end uint32) Scored {
		return Scored{Elem: index.Element{Doc: 1, End: end}, Score: score}
	}
	h.offer(mk(5, 1))
	h.offer(mk(1, 2))
	h.offer(mk(3, 3))
	if !h.full() {
		t.Fatal("heap not full after k offers")
	}
	if h.worst() != 1 {
		t.Fatalf("worst = %v", h.worst())
	}
	h.offer(mk(0.5, 4)) // rejected
	if h.worst() != 1 {
		t.Fatalf("worst after reject = %v", h.worst())
	}
	h.offer(mk(4, 5)) // evicts 1
	if h.worst() != 3 {
		t.Fatalf("worst after evict = %v", h.worst())
	}
	got := h.sorted()
	want := []float64{5, 4, 3}
	for i := range want {
		if got[i].Score != want[i] {
			t.Fatalf("sorted = %v", scoresOf(got))
		}
	}
	if h.ops != 5 { // 3 pushes + eviction (counted as 2)
		t.Fatalf("ops = %d, want 5", h.ops)
	}
}

func TestERAAgainstNaiveScan(t *testing.T) {
	// Compare ERA's (element, tf) output against a brute-force recount
	// over the raw documents.
	col := corpus.GenerateWiki(10, 21)
	e := newEnv(t, col)
	sids, terms := e.clause(t, `//article//p[about(., genetic algorithm)]`, 0)
	rows, _, err := ERA(e.store, sids, terms)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		data := col.Docs[r.Elem.Doc].Data
		span := string(data[r.Elem.Start():r.Elem.End])
		for j, term := range terms {
			want := countTokens(span, term)
			if r.TF[j] != want {
				t.Fatalf("elem %+v term %q: ERA tf=%d, naive=%d", r.Elem, term, r.TF[j], want)
			}
		}
	}
}

// countTokens counts whole-token occurrences of term in text, mirroring
// the tokenizer's rules.
func countTokens(text, term string) int {
	count := 0
	lower := strings.ToLower(text)
	for i := 0; i+len(term) <= len(lower); i++ {
		if lower[i:i+len(term)] != term {
			continue
		}
		beforeOK := i == 0 || !isAlnum(lower[i-1])
		after := i + len(term)
		afterOK := after == len(lower) || !isAlnum(lower[after])
		if beforeOK && afterOK {
			count++
		}
	}
	return count
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c >= 'A' && c <= 'Z'
}
