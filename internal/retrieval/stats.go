package retrieval

import (
	"time"

	"trex/internal/index"
	"trex/internal/storage"
)

// Scored is one ranked answer.
type Scored struct {
	Elem  index.Element
	Score float64
}

// ElementTF is one ERA result row: an element and its term-frequency
// vector, aligned with the term list the algorithm was called with.
type ElementTF struct {
	Elem index.Element
	TF   []int
}

// Stats describes where a retrieval run spent its effort. Counters are a
// machine-independent cost model; durations come from the wall clock.
type Stats struct {
	// Elapsed is the total run time.
	Elapsed time.Duration
	// HeapTime is the portion of Elapsed spent managing the top-k heap.
	// The paper's ITA ("TA with ideal heap management") is Elapsed minus
	// HeapTime; ITATime reports it directly.
	HeapTime time.Duration
	// SortedAccesses counts RPL entries read under sorted access,
	// including entries skipped because their sid is outside the query.
	SortedAccesses int
	// SkippedBySID counts sorted accesses discarded by the sid filter.
	SkippedBySID int
	// RandomAccesses counts per-(element, term) random probes.
	RandomAccesses int
	// PositionsScanned counts posting-list positions consumed (ERA).
	PositionsScanned int64
	// ElementsScanned counts extent elements visited (ERA).
	ElementsScanned int64
	// HeapOps counts pushes and evictions on the top-k heap.
	HeapOps int
	// ListReads[i] is the number of entries read from term i's list.
	ListReads []int
	// ListTotals[i] is the total number of entries in term i's list
	// segment for the query's sids (when known; 0 otherwise).
	ListTotals []int
	// Answers is the number of result elements produced before top-k
	// truncation.
	Answers int
	// CursorSteps counts storage rows fetched by the RPL/ERPL list
	// iterators. With v1 row-per-entry lists this tracks ListReads; with
	// v2 block rows it is a fraction of it — the cursor-step saving the
	// block encoding buys.
	CursorSteps int
	// BlockSkips counts entries Merge consumed through the bulk drain
	// fast path — entries that never paid a per-entry frontier scan.
	BlockSkips int
	// PageReads is the number of storage pages the run touched — cache
	// hits plus backend fetches (delta of db.Stats() around it). Counting
	// logical touches keeps the number a machine-independent cost model:
	// it does not collapse to zero when the working set is cached.
	// BytesRead is the physical backend traffic in bytes (misses only)
	// plus the key/value bytes served from the mmap'd segment (when the
	// engine runs with the segment list backend), so a fully cached
	// pager run legitimately reports BytesRead == 0 with a large
	// PageReads while a segment run reports exactly the mapped bytes its
	// cursors covered.
	PageReads uint64
	BytesRead uint64
	// SegmentRows counts rows served from segment cursors during the
	// run (0 on the pager backend).
	SegmentRows uint64
	// IOExact reports whether PageReads/BytesRead can be attributed to
	// this run alone. captureIO clears it when the measurement window saw
	// writer traffic (a maintenance flush mid-query dirties the shared
	// counters); the engine additionally clears it when another query's
	// window overlapped. When false the counts are still safe totals —
	// they just cover more than one operation.
	IOExact bool
	// ThresholdStop reports that TA terminated via its threshold test
	// (top-k worst score above the aggregate frontier bound) rather than
	// by exhausting the lists.
	ThresholdStop bool
	// Approximate reports that the run stopped early because its
	// context deadline expired: the results are the best-effort state at
	// the stop point (everything scored so far, correctly ranked), not
	// the rank-safe top k. Cancellation never sets this — a canceled run
	// returns an error, not a partial answer.
	Approximate bool
}

// captureIO fills the I/O counters from the delta of the store's
// combined stats since `before` (snapshotted when the run started). The
// counters are engine-global, so concurrent operations bleed into each
// other's deltas; IOExact records whether the window was provably free
// of writer traffic — pager writes or a segment generation swap, either
// of which dirties the shared counters mid-window. (Reader overlap is
// invisible at this level — the engine's telemetry guard detects it and
// ANDs into IOExact.) For the single-query measurement paths that feed
// Explain, the bench suite and the cost tables the delta is exact.
func (s *Stats) captureIO(st *index.Store, before index.IOStat) {
	d := st.IOStats().Sub(before)
	s.PageReads = d.Storage.CacheHits + d.Storage.CacheMisses
	s.BytesRead = d.Storage.PagesRead*storage.PageSize + d.SegmentBytes
	s.SegmentRows = d.SegmentRows
	s.IOExact = d.Storage.Puts == 0 && d.Storage.PagesWritten == 0 &&
		d.Storage.Flushes == 0 && d.SegmentSwaps == 0
}

// ITATime returns the paper's "ideal heap" time: total time with heap
// management discounted.
func (s *Stats) ITATime() time.Duration {
	if s.HeapTime > s.Elapsed {
		return 0
	}
	return s.Elapsed - s.HeapTime
}

// CostProxy is a deterministic, machine-independent estimate of a run's
// work, used by the self-managing advisor so that index selection does not
// depend on wall-clock noise. Weights approximate relative operation
// costs: random accesses pay a seek, heap operations pay comparisons and
// cache misses, the final sort pays n log n.
func (s *Stats) CostProxy() float64 {
	reads := float64(s.PositionsScanned)
	var listReads int
	for _, r := range s.ListReads {
		listReads += r
	}
	if s.PositionsScanned == 0 {
		reads = float64(listReads)
	}
	if float64(s.SortedAccesses) > reads {
		reads = float64(s.SortedAccesses)
	}
	cost := reads + 2*float64(s.ElementsScanned) + 8*float64(s.RandomAccesses) + 2*float64(s.HeapOps)
	if s.HeapOps == 0 && s.Answers > 1 {
		// Merge/ERA sort their full answer set at the end.
		n := float64(s.Answers)
		logN := 1.0
		for v := n; v > 1; v /= 2 {
			logN++
		}
		cost += n * logN
	}
	return cost
}

// DepthFraction reports how much of the query's list volume was read under
// sorted access: 1.0 means the lists were read to the end — the regime the
// paper identifies as the reason Merge often beats TA.
func (s *Stats) DepthFraction() float64 {
	var reads, totals int
	for i := range s.ListReads {
		reads += s.ListReads[i]
		if i < len(s.ListTotals) {
			totals += s.ListTotals[i]
		}
	}
	if totals == 0 {
		return 0
	}
	return float64(reads) / float64(totals)
}
