package retrieval

import (
	"container/heap"
	"context"
	"time"

	"trex/internal/index"
	"trex/internal/score"
)

// TA evaluates a clause with the threshold algorithm over RPLs. It
// performs round-robin sorted accesses on each term's relevance posting
// list (skipping entries whose sid is not in the query's sid set), random
// accesses against the base tables to complete each newly seen element's
// score, and stops once the k-th best score reaches the threshold — the
// sum of the last scores seen in each list.
//
// The returned stats separate the time spent managing the top-k heap
// (Stats.HeapTime); the paper's ITA curve is Stats.ITATime().
func TA(st *index.Store, sids []uint32, terms []string, sc *score.Scorer, k int) ([]Scored, *Stats, error) {
	return TACtx(context.Background(), st, sids, terms, sc, k)
}

// TACtx is TA with a cancellation/deadline context, polled once per
// sorted-access round. On an expired deadline it stops at the round
// boundary and returns the current top-k heap with Stats.Approximate
// set; on cancellation it returns the context's error.
func TACtx(ctx context.Context, st *index.Store, sids []uint32, terms []string, sc *score.Scorer, k int) ([]Scored, *Stats, error) {
	start := time.Now()
	io := st.IOStats()
	stats := &Stats{ListReads: make([]int, len(terms)), ListTotals: make([]int, len(terms))}
	if k <= 0 {
		k = 1
	}
	n := len(terms)
	if n == 0 || len(sids) == 0 {
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}
	sidSet := make(map[uint32]bool, len(sids))
	for _, s := range sids {
		sidSet[s] = true
	}
	for j, t := range terms {
		for _, s := range sids {
			c, _, err := st.BuiltSize(index.KindRPL, t, s)
			if err != nil {
				return nil, nil, err
			}
			stats.ListTotals[j] += c
		}
	}

	iters := make([]*index.RPLIterator, n)
	exhausted := make([]bool, n)
	for j, t := range terms {
		iters[j] = index.NewRPLIterator(st, t)
	}
	// Pull each list's head so the first threshold check has data; heads
	// are buffered and replayed below.
	buffered := make([]*index.RPLEntry, n)
	for j := range iters {
		e, ok, err := nextInSIDSet(iters[j], sidSet, stats, j)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			exhausted[j] = true
			continue
		}
		buffered[j] = &e
	}

	topk := newTopKHeap(k)
	seen := make(map[uint64]bool)
	elemKey := func(e index.Element) uint64 { return uint64(e.Doc)<<32 | uint64(e.End) }

	processEntry := func(j int, e index.RPLEntry) error {
		key := elemKey(e.Element())
		if seen[key] {
			return nil
		}
		seen[key] = true
		// Sum contributions in term order (not arrival order) so scores
		// are bit-identical across methods and ties rank consistently.
		contrib := make([]float64, len(terms))
		contrib[j] = e.Score
		for jj, t := range terms {
			if jj == j {
				continue
			}
			tf, err := index.TFInSpan(st, t, e.Element())
			if err != nil {
				return err
			}
			stats.RandomAccesses++
			contrib[jj] = sc.Score(t, tf, int(e.Length))
		}
		var total float64
		for _, v := range contrib {
			total += v
		}
		hs := time.Now()
		topk.offer(Scored{Elem: e.Element(), Score: total})
		stats.HeapTime += time.Since(hs)
		stats.HeapOps = topk.ops
		return nil
	}

	for j := range buffered {
		if buffered[j] != nil {
			if err := processEntry(j, *buffered[j]); err != nil {
				return nil, nil, err
			}
		}
	}

	for {
		if stop, err := pollBudget(ctx); err != nil {
			return nil, nil, err
		} else if stop {
			stats.Approximate = true
			break
		}
		allDone := true
		for j := range iters {
			if exhausted[j] {
				continue
			}
			allDone = false
			e, ok, err := nextInSIDSet(iters[j], sidSet, stats, j)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				exhausted[j] = true
				continue
			}
			if err := processEntry(j, e); err != nil {
				return nil, nil, err
			}
		}
		if allDone {
			break
		}
		// Stopping condition: the k-th best known score strictly exceeds
		// the threshold, so no unseen element can reach the top k. The
		// inequality must be strict: an unseen element can score exactly
		// the threshold and win the deterministic (doc, end) tie-break.
		//
		// Each list's bound is its next unreturned entry's score
		// (BlockMaxScore): emission is score-descending, so this bounds
		// everything still unread — block-encoded and v1 lists report the
		// identical value, and mid-block it is at least as tight as the
		// last value returned, so the threshold can only drop.
		var threshold float64
		for j := range iters {
			if exhausted[j] {
				continue
			}
			s, ok, err := iters[j].BlockMaxScore()
			if err != nil {
				return nil, nil, err
			}
			if ok {
				threshold += s
			}
		}
		if topk.full() && topk.worst() > threshold {
			stats.ThresholdStop = true
			break
		}
	}

	hs := time.Now()
	out := topk.sorted()
	stats.HeapTime += time.Since(hs)
	for j := range iters {
		stats.CursorSteps += iters[j].RowsRead
	}
	stats.Answers = len(out)
	stats.captureIO(st, io)
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}

// nextInSIDSet advances an RPL iterator to the next entry whose sid is in
// the query, counting skipped entries.
func nextInSIDSet(it *index.RPLIterator, sidSet map[uint32]bool, stats *Stats, j int) (index.RPLEntry, bool, error) {
	for {
		e, ok, err := it.Next()
		if err != nil || !ok {
			return index.RPLEntry{}, false, err
		}
		stats.SortedAccesses++
		stats.ListReads[j]++
		if sidSet[e.SID] {
			return e, true, nil
		}
		stats.SkippedBySID++
	}
}

// topKHeap is the min-heap of the k best elements seen so far. The paper's
// experiments show its management cost dominating TA on some queries; ops
// counts pushes and evictions so the cost model can expose that.
type topKHeap struct {
	k     int
	items scoredMinHeap
	ops   int
}

func newTopKHeap(k int) *topKHeap {
	return &topKHeap{k: k}
}

func (h *topKHeap) full() bool { return h.items.Len() >= h.k }

// worst returns the k-th best score (the heap minimum); call only when
// full() is true.
func (h *topKHeap) worst() float64 { return h.items[0].Score }

// offer inserts the candidate, evicting the current minimum if the heap is
// full and the candidate beats it.
func (h *topKHeap) offer(s Scored) {
	if h.items.Len() < h.k {
		heap.Push(&h.items, s)
		h.ops++
		return
	}
	if !scoredLess(h.items[0], s) {
		return // candidate does not beat the current k-th best
	}
	h.items[0] = s
	heap.Fix(&h.items, 0)
	h.ops += 2 // one removal + one insertion, as the paper counts them
}

// sorted returns the heap contents best-first.
func (h *topKHeap) sorted() []Scored {
	out := make([]Scored, len(h.items))
	copy(out, h.items)
	SortScored(out)
	return out
}

// scoredLess orders candidates worst-first for the min-heap, with the
// same deterministic tie-break SortScored uses (later (doc,end) is worse).
func scoredLess(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return index.CompareDocEnd(a.Elem.Doc, a.Elem.End, b.Elem.Doc, b.Elem.End) > 0
}

type scoredMinHeap []Scored

func (h scoredMinHeap) Len() int           { return len(h) }
func (h scoredMinHeap) Less(i, j int) bool { return scoredLess(h[i], h[j]) }
func (h scoredMinHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *scoredMinHeap) Push(x any)        { *h = append(*h, x.(Scored)) }
func (h *scoredMinHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}
