package score

import (
	"fmt"
	"math"
)

// Model identifies a scoring formula. The model used at list-build time
// must match query time (stored RPL scores embed it), so engines persist
// the choice.
type Model int

const (
	// ModelBM25 is the default: BM25 adapted to element retrieval.
	ModelBM25 Model = iota
	// ModelLMDirichlet is a query-likelihood language model with
	// Dirichlet smoothing, the other standard IR scoring family. Scores
	// are shifted to be non-negative and remain additive across terms.
	ModelLMDirichlet
)

func (m Model) String() string {
	switch m {
	case ModelLMDirichlet:
		return "lm-dirichlet"
	default:
		return "bm25"
	}
}

// ParseModel converts a persisted model name back to its constant.
func ParseModel(s string) (Model, error) {
	switch s {
	case "", "bm25":
		return ModelBM25, nil
	case "lm-dirichlet":
		return ModelLMDirichlet, nil
	default:
		return ModelBM25, fmt.Errorf("score: unknown model %q", s)
	}
}

// mu is the Dirichlet smoothing parameter (standard magnitude for
// passage/element-scale text).
const mu = 300

// lmScore is the Dirichlet query-likelihood contribution of one term:
// log(1 + tf/(mu*P(t|C))) + log(mu/(len+mu)) — the second part is
// element-constant and omitted so scores stay non-negative and additive,
// which the threshold algorithms require.
func (s *Scorer) lmScore(term string, tf int, elemLen int) float64 {
	if tf <= 0 {
		return 0
	}
	// P(t|C): collection probability, approximated from document
	// frequency over total documents (a proxy for term frequency over
	// collection length, adequate for ranking).
	n := float64(s.stats.NumDocs)
	if n <= 0 {
		n = 1
	}
	pc := (float64(s.df[term]) + 0.5) / (n * 100)
	return math.Log(1 + float64(tf)/(mu*pc))
}
