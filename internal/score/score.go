// Package score computes the element relevance scores stored in RPLs and
// ERPLs and used to rank query answers.
//
// The paper delegates content scoring to "well-established IR techniques";
// this implementation uses BM25 adapted to element retrieval: term
// frequency is counted within the element's span, length normalization
// uses the element's byte length against the collection's average element
// length, and the inverse document frequency comes from document-level
// statistics. Scores are non-negative, monotone in tf, and additive across
// terms — the monotone aggregation the threshold algorithm requires.
package score

import "math"

// BM25 parameters; standard values from the IR literature.
const (
	k1 = 1.2
	b  = 0.75
)

// CollectionStats are the global numbers scoring needs.
type CollectionStats struct {
	// NumDocs is the number of documents in the collection.
	NumDocs int
	// NumElements is the number of elements across all documents.
	NumElements int
	// AvgElementLen is the mean element byte length.
	AvgElementLen float64
}

// Scorer computes per-(element, term) scores under a selected model.
type Scorer struct {
	stats CollectionStats
	// df maps term -> number of documents containing it.
	df    map[string]int
	model Model
}

// NewScorer builds a BM25 scorer from collection stats and document
// frequencies.
func NewScorer(stats CollectionStats, df map[string]int) *Scorer {
	return NewScorerWithModel(stats, df, ModelBM25)
}

// NewScorerWithModel builds a scorer for an explicit model.
func NewScorerWithModel(stats CollectionStats, df map[string]int, model Model) *Scorer {
	if stats.AvgElementLen <= 0 {
		stats.AvgElementLen = 1
	}
	return &Scorer{stats: stats, df: df, model: model}
}

// Model returns the scorer's formula.
func (s *Scorer) Model() Model { return s.model }

// IDF returns the BM25 inverse document frequency of term, floored at a
// small positive value so every present term contributes.
func (s *Scorer) IDF(term string) float64 {
	n := float64(s.stats.NumDocs)
	d := float64(s.df[term])
	idf := math.Log(1 + (n-d+0.5)/(d+0.5))
	const floor = 1e-3
	if idf < floor {
		return floor
	}
	return idf
}

// Score returns the relevance contribution of term occurring tf times in
// an element of elemLen bytes. Zero tf scores zero; contributions are
// non-negative, monotone in tf and additive across terms under every
// model (the properties the threshold algorithms need).
func (s *Scorer) Score(term string, tf int, elemLen int) float64 {
	if tf <= 0 {
		return 0
	}
	if s.model == ModelLMDirichlet {
		return s.lmScore(term, tf, elemLen)
	}
	t := float64(tf)
	norm := k1 * (1 - b + b*float64(elemLen)/s.stats.AvgElementLen)
	return s.IDF(term) * t * (k1 + 1) / (t + norm)
}

// TermScorer carries the per-term constants of Score, hoisted out of hot
// loops that score many elements against a fixed term (one map lookup and
// one log instead of per-element). Its Score performs bit-identical
// arithmetic to Scorer.Score, so rankings cannot diverge between paths.
type TermScorer struct {
	lm     bool
	idf    float64 // BM25: precomputed IDF(term)
	avgLen float64 // BM25: collection average element length
	muPC   float64 // LM: mu * P(term|C)
}

// TermScorer returns the hoisted form of Score for term.
func (s *Scorer) TermScorer(term string) TermScorer {
	if s.model == ModelLMDirichlet {
		n := float64(s.stats.NumDocs)
		if n <= 0 {
			n = 1
		}
		pc := (float64(s.df[term]) + 0.5) / (n * 100)
		return TermScorer{lm: true, muPC: mu * pc}
	}
	return TermScorer{idf: s.IDF(term), avgLen: s.stats.AvgElementLen}
}

// Score is Scorer.Score with the term fixed.
func (ts TermScorer) Score(tf int, elemLen int) float64 {
	if tf <= 0 {
		return 0
	}
	if ts.lm {
		return math.Log(1 + float64(tf)/ts.muPC)
	}
	t := float64(tf)
	norm := k1 * (1 - b + b*float64(elemLen)/ts.avgLen)
	return ts.idf * t * (k1 + 1) / (t + norm)
}

// MaxScore bounds Score for any tf at the given element length; the TA
// threshold uses per-list upper bounds derived from actual list heads, but
// tests use this to sanity-check monotonicity.
func (s *Scorer) MaxScore(term string) float64 {
	return s.IDF(term) * (k1 + 1)
}

// Combine aggregates per-term scores into an element's total: the sum of
// positive contributions minus a penalty for excluded (minus) terms. The
// positive part is a monotone aggregate, as TA requires.
func Combine(positive []float64, negative []float64) float64 {
	var total float64
	for _, v := range positive {
		total += v
	}
	for _, v := range negative {
		total -= v
	}
	return total
}
