package score

import (
	"math"
	"testing"
	"testing/quick"
)

func testScorer() *Scorer {
	return NewScorer(
		CollectionStats{NumDocs: 1000, NumElements: 50000, AvgElementLen: 400},
		map[string]int{"common": 900, "medium": 100, "rare": 3, "absent": 0},
	)
}

func TestIDFOrdering(t *testing.T) {
	s := testScorer()
	if !(s.IDF("rare") > s.IDF("medium") && s.IDF("medium") > s.IDF("common")) {
		t.Fatalf("IDF ordering violated: rare=%v medium=%v common=%v",
			s.IDF("rare"), s.IDF("medium"), s.IDF("common"))
	}
	if s.IDF("absent") <= 0 {
		t.Fatalf("IDF of unseen term must be positive, got %v", s.IDF("absent"))
	}
}

func TestScoreZeroTF(t *testing.T) {
	s := testScorer()
	if got := s.Score("rare", 0, 100); got != 0 {
		t.Fatalf("Score(tf=0) = %v, want 0", got)
	}
	if got := s.Score("rare", -3, 100); got != 0 {
		t.Fatalf("Score(tf<0) = %v, want 0", got)
	}
}

func TestScoreMonotoneInTF(t *testing.T) {
	s := testScorer()
	prev := 0.0
	for tf := 1; tf <= 50; tf++ {
		got := s.Score("medium", tf, 400)
		if got <= prev {
			t.Fatalf("Score not strictly increasing at tf=%d: %v <= %v", tf, got, prev)
		}
		prev = got
	}
	// And bounded by MaxScore.
	if prev >= s.MaxScore("medium") {
		t.Fatalf("Score(%v) exceeded MaxScore(%v)", prev, s.MaxScore("medium"))
	}
}

func TestScoreLengthNormalization(t *testing.T) {
	s := testScorer()
	short := s.Score("medium", 3, 100)
	long := s.Score("medium", 3, 5000)
	if short <= long {
		t.Fatalf("longer element should score lower at equal tf: short=%v long=%v", short, long)
	}
}

func TestScoreNonNegativeProperty(t *testing.T) {
	s := testScorer()
	f := func(tf uint16, elemLen uint16) bool {
		got := s.Score("medium", int(tf), int(elemLen))
		return got >= 0 && !math.IsNaN(got) && !math.IsInf(got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCombine(t *testing.T) {
	got := Combine([]float64{1.5, 2.5}, []float64{0.5})
	if got != 3.5 {
		t.Fatalf("Combine = %v, want 3.5", got)
	}
	if Combine(nil, nil) != 0 {
		t.Fatal("Combine(nil, nil) != 0")
	}
}

func TestZeroStatsSafe(t *testing.T) {
	s := NewScorer(CollectionStats{}, nil)
	got := s.Score("anything", 5, 100)
	if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
		t.Fatalf("degenerate stats produced %v", got)
	}
}

func TestLMModel(t *testing.T) {
	stats := CollectionStats{NumDocs: 1000, NumElements: 50000, AvgElementLen: 400}
	df := map[string]int{"common": 900, "rare": 3}
	lm := NewScorerWithModel(stats, df, ModelLMDirichlet)
	if lm.Model() != ModelLMDirichlet {
		t.Fatal("model not set")
	}
	// Monotone in tf, non-negative.
	prev := 0.0
	for tf := 1; tf <= 30; tf++ {
		got := lm.Score("rare", tf, 400)
		if got <= prev {
			t.Fatalf("LM not strictly increasing at tf=%d", tf)
		}
		prev = got
	}
	if lm.Score("rare", 0, 400) != 0 {
		t.Fatal("LM zero-tf must be 0")
	}
	// Rarer terms score higher at equal tf.
	if lm.Score("rare", 3, 400) <= lm.Score("common", 3, 400) {
		t.Fatal("LM rare term must beat common term")
	}
	// Differs from BM25.
	bm := NewScorer(stats, df)
	if bm.Score("rare", 3, 400) == lm.Score("rare", 3, 400) {
		t.Fatal("models coincide")
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range []Model{ModelBM25, ModelLMDirichlet} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v = %v, %v", m, got, err)
		}
	}
	if m, err := ParseModel(""); err != nil || m != ModelBM25 {
		t.Fatalf("empty = %v, %v", m, err)
	}
	if _, err := ParseModel("tfidf-9000"); err == nil {
		t.Fatal("unknown model accepted")
	}
}
