package segment

import (
	"fmt"
	"testing"
)

// FuzzReader throws arbitrary bytes at the segment opener — footer,
// skip-directory and fence decoding — and, when an image validates,
// drives the full read surface over it. The contract: corrupt bytes
// produce (nil, error), never a panic, and never an out-of-bounds read
// past the image (the Go runtime turns one into a panic, which the fuzz
// engine reports).
//
// Run via `make fuzz` or directly:
//
//	go test ./internal/segment -fuzz FuzzReader -fuzztime 10s
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(headMagic))
	f.Add([]byte(headMagic + tailMagic))
	w := NewWriter()
	w.BeginTable("t")
	for i := 0; i < 40; i++ {
		_ = w.Append([]byte(fmt.Sprintf("key%03d", i)), []byte("value"))
	}
	w.BeginTable("u")
	_ = w.Append([]byte("only"), nil)
	img, err := w.Finish(9)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	// Seed a few targeted corruptions: footer offset, directory, crc.
	for _, off := range []int{len(img) - 9, len(img) - 16, len(img) / 2, len(headMagic) + 1} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x40
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenBytes(data)
		if err != nil {
			return
		}
		// A validated image must serve reads without faulting.
		for _, name := range []string{"t", "u", "missing"} {
			tb := r.Table(name)
			if tb == nil {
				continue
			}
			_, _ = tb.Get([]byte("key005"))
			c := tb.Cursor()
			for ok, _ := c.First(); ok; ok, _ = c.Next() {
				_ = c.Key()
				_ = c.Value()
			}
			_, _ = c.SeekPrefix([]byte("key"))
			tb.Range(nil, nil, func(k, v []byte) bool { return true })
		}
	})
}
