//go:build !linux && !darwin

package segment

import (
	"io"
	"os"
)

// mmapFile falls back to reading the whole file into the heap on
// platforms without a wired mmap path; the reader works identically over
// the copy, it just is not shared with the page cache.
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func munmapBytes(data []byte) error { return nil }
