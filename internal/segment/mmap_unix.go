//go:build linux || darwin

package segment

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The returned slice is released with
// munmapBytes; mapped is true so callers can tell a real mapping from
// the heap fallback.
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapBytes(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
