package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// Reader serves a segment image in place. Every offset in the skip
// directories is validated once at open — key ordering included — so the
// hot-path accessors (Get, Seek, Next, Key, Value) do no bounds or order
// checks and never allocate: keys and values are subslices of the
// underlying mapping.
//
// OpenBytes rejects corrupt input with an error; it never panics and
// never reads outside the given slice, a contract the fuzz target
// (FuzzReader) exercises.
type Reader struct {
	data   []byte
	epoch  uint64
	tables []Table
}

// Table is one named sorted key/value table inside a segment.
type Table struct {
	r    *Reader
	name string
	dir  []byte // rows * dirEntrySize directory bytes
	rows int
	// first/last are the key-range fences from the footer; Seek and Get
	// reject out-of-range probes without touching the directory.
	first []byte
	last  []byte
}

// byteReader walks the footer with bounds checks.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		return nil, fmt.Errorf("segment: truncated footer")
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *byteReader) u8() (byte, error) {
	v, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func (r *byteReader) u32() (uint32, error) {
	v, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(v), nil
}

func (r *byteReader) u64() (uint64, error) {
	v, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(v), nil
}

// OpenBytes validates a segment image and returns a reader over it. The
// slice is retained; it must stay immutable (and mapped) for the
// reader's lifetime.
func OpenBytes(data []byte) (*Reader, error) {
	if len(data) < len(headMagic)+tailSize {
		return nil, fmt.Errorf("segment: image too small (%d bytes)", len(data))
	}
	if string(data[:len(headMagic)]) != headMagic {
		return nil, fmt.Errorf("segment: bad magic")
	}
	if string(data[len(data)-8:]) != tailMagic {
		return nil, fmt.Errorf("segment: bad tail magic")
	}
	crcOff := len(data) - 12
	want := binary.BigEndian.Uint32(data[crcOff : crcOff+4])
	if got := crc32.Checksum(data[:crcOff], castagnoli); got != want {
		return nil, fmt.Errorf("segment: checksum mismatch (got %08x want %08x)", got, want)
	}
	footerOff := binary.BigEndian.Uint64(data[len(data)-tailSize : len(data)-12])
	if footerOff < uint64(len(headMagic)) || footerOff > uint64(crcOff-8) {
		return nil, fmt.Errorf("segment: footer offset %d out of range", footerOff)
	}

	r := &Reader{data: data}
	fr := &byteReader{b: data[footerOff : len(data)-tailSize]}
	count, err := fr.u32()
	if err != nil {
		return nil, err
	}
	if count > uint32(len(fr.b)) { // each table costs >= 1 footer byte
		return nil, fmt.Errorf("segment: absurd table count %d", count)
	}
	for i := uint32(0); i < count; i++ {
		nameLen, err := fr.u8()
		if err != nil {
			return nil, err
		}
		name, err := fr.take(int(nameLen))
		if err != nil {
			return nil, err
		}
		rows, err := fr.u64()
		if err != nil {
			return nil, err
		}
		dirOff, err := fr.u64()
		if err != nil {
			return nil, err
		}
		firstLen, err := fr.u32()
		if err != nil {
			return nil, err
		}
		first, err := fr.take(int(firstLen))
		if err != nil {
			return nil, err
		}
		lastLen, err := fr.u32()
		if err != nil {
			return nil, err
		}
		last, err := fr.take(int(lastLen))
		if err != nil {
			return nil, err
		}
		if rows > (footerOff-uint64(len(headMagic)))/dirEntrySize {
			return nil, fmt.Errorf("segment: table %q row count %d exceeds image", name, rows)
		}
		dirEnd := dirOff + rows*dirEntrySize
		if dirOff < uint64(len(headMagic)) || dirEnd < dirOff || dirEnd > footerOff {
			return nil, fmt.Errorf("segment: table %q directory out of range", name)
		}
		t := Table{
			r:     r,
			name:  string(name),
			dir:   data[dirOff:dirEnd],
			rows:  int(rows),
			first: first,
			last:  last,
		}
		if err := t.validate(footerOff); err != nil {
			return nil, err
		}
		r.tables = append(r.tables, t)
	}
	epoch, err := fr.u64()
	if err != nil {
		return nil, err
	}
	if fr.off != len(fr.b) {
		return nil, fmt.Errorf("segment: %d trailing footer bytes", len(fr.b)-fr.off)
	}
	r.epoch = epoch
	return r, nil
}

// validate checks every directory entry's bounds and the strict key
// ordering once, so the access path can skip both.
func (t *Table) validate(footerOff uint64) error {
	var prev []byte
	for i := 0; i < t.rows; i++ {
		e := t.dir[i*dirEntrySize:]
		off := binary.BigEndian.Uint64(e[0:8])
		klen := uint64(binary.BigEndian.Uint32(e[8:12]))
		vlen := uint64(binary.BigEndian.Uint32(e[12:16]))
		end := off + klen + vlen
		if off < uint64(len(headMagic)) || end < off || end > footerOff {
			return fmt.Errorf("segment: table %q row %d out of range", t.name, i)
		}
		key := t.r.data[off : off+klen]
		if i > 0 && bytes.Compare(prev, key) >= 0 {
			return fmt.Errorf("segment: table %q keys out of order at row %d", t.name, i)
		}
		prev = key
	}
	if t.rows > 0 {
		if !bytes.Equal(t.key(0), t.first) || !bytes.Equal(t.key(t.rows-1), t.last) {
			return fmt.Errorf("segment: table %q fence mismatch", t.name)
		}
	}
	return nil
}

// Epoch returns the commit epoch the segment was stamped with.
func (r *Reader) Epoch() uint64 { return r.epoch }

// Size returns the image size in bytes.
func (r *Reader) Size() int { return len(r.data) }

// Table returns the named table, or nil when the segment has none.
func (r *Reader) Table(name string) *Table {
	for i := range r.tables {
		if r.tables[i].name == name {
			return &r.tables[i]
		}
	}
	return nil
}

// Rows returns the table's row count.
func (t *Table) Rows() int { return t.rows }

// key returns row i's key as a subslice of the mapping.
func (t *Table) key(i int) []byte {
	e := t.dir[i*dirEntrySize:]
	off := binary.BigEndian.Uint64(e[0:8])
	klen := binary.BigEndian.Uint32(e[8:12])
	return t.r.data[off : off+uint64(klen)]
}

// value returns row i's value as a subslice of the mapping.
func (t *Table) value(i int) []byte {
	e := t.dir[i*dirEntrySize:]
	off := binary.BigEndian.Uint64(e[0:8])
	klen := binary.BigEndian.Uint32(e[8:12])
	vlen := binary.BigEndian.Uint32(e[12:16])
	vo := off + uint64(klen)
	return t.r.data[vo : vo+uint64(vlen)]
}

// rowBytes returns row i's key+value length, for read accounting.
func (t *Table) rowBytes(i int) uint64 {
	e := t.dir[i*dirEntrySize:]
	return uint64(binary.BigEndian.Uint32(e[8:12])) + uint64(binary.BigEndian.Uint32(e[12:16]))
}

// search returns the index of the first row with key >= target, using
// the key-range fences to reject out-of-range probes in O(1).
func (t *Table) search(target []byte) int {
	if t.rows == 0 || bytes.Compare(t.last, target) < 0 {
		return t.rows
	}
	if bytes.Compare(target, t.first) <= 0 {
		return 0
	}
	lo, hi := 0, t.rows
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(t.key(mid), target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key, as a subslice of the mapping.
func (t *Table) Get(key []byte) ([]byte, bool) {
	i := t.search(key)
	if i >= t.rows || !bytes.Equal(t.key(i), key) {
		return nil, false
	}
	return t.value(i), true
}

// Range calls fn for every row with lo <= key < hi (nil hi = to the
// end), stopping early when fn returns false. The slices passed to fn
// are subslices of the mapping, valid only during the call.
func (t *Table) Range(lo, hi []byte, fn func(key, value []byte) bool) {
	for i := t.search(lo); i < t.rows; i++ {
		k := t.key(i)
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return
		}
		if !fn(k, t.value(i)) {
			return
		}
	}
}

// Cursor returns a new unpositioned cursor over the table. counters may
// be nil; when set, every row the cursor lands on is accounted to it.
func (t *Table) Cursor() *Cursor { return &Cursor{t: t, i: -1} }

// ioCounters is the slice of Store counters a cursor feeds (kept
// separate so a bare Reader — tests, fuzzing — works without a Store).
type ioCounters struct {
	rows  atomic.Uint64
	bytes atomic.Uint64
}

// Cursor iterates a table in key order, returning subslices of the
// mapping. Positioning calls report whether the cursor landed on a row;
// Key/Value are valid only after a true report. The cursor allocates
// only at creation — Seek/Next/SeekPrefix/NextPrefix are alloc-free.
type Cursor struct {
	t   *Table
	i   int
	io  *ioCounters
	pos bool
}

// land accounts the row under the cursor and marks it positioned.
func (c *Cursor) land() bool {
	c.pos = true
	if c.io != nil {
		c.io.rows.Add(1)
		c.io.bytes.Add(c.t.rowBytes(c.i))
	}
	return true
}

// First positions at the smallest key.
func (c *Cursor) First() (bool, error) {
	c.i = 0
	if c.i >= c.t.rows {
		c.pos = false
		return false, nil
	}
	return c.land(), nil
}

// Seek positions at the smallest key >= key.
func (c *Cursor) Seek(key []byte) (bool, error) {
	c.i = c.t.search(key)
	if c.i >= c.t.rows {
		c.pos = false
		return false, nil
	}
	return c.land(), nil
}

// Next advances to the next row.
func (c *Cursor) Next() (bool, error) {
	if !c.pos {
		return false, nil
	}
	c.i++
	if c.i >= c.t.rows {
		c.pos = false
		return false, nil
	}
	return c.land(), nil
}

// SeekPrefix positions at the first key carrying prefix, mirroring the
// storage cursor's contract.
func (c *Cursor) SeekPrefix(prefix []byte) (bool, error) {
	ok, _ := c.Seek(prefix)
	if !ok {
		return false, nil
	}
	if !bytes.HasPrefix(c.t.key(c.i), prefix) {
		c.pos = false
		return false, nil
	}
	return true, nil
}

// NextPrefix advances within keys sharing prefix, invalidating the
// cursor once the prefix is left.
func (c *Cursor) NextPrefix(prefix []byte) (bool, error) {
	ok, _ := c.Next()
	if !ok {
		return false, nil
	}
	if !bytes.HasPrefix(c.t.key(c.i), prefix) {
		c.pos = false
		return false, nil
	}
	return true, nil
}

// Key returns the current key (a mapping subslice, valid until the
// segment's generation is retired).
func (c *Cursor) Key() []byte {
	if !c.pos {
		return nil
	}
	return c.t.key(c.i)
}

// Value returns the current value under the same rules as Key.
func (c *Cursor) Value() []byte {
	if !c.pos {
		return nil
	}
	return c.t.value(c.i)
}
