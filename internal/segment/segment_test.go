package segment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildImage writes a two-table segment with n rows each and returns the
// image plus the row sets.
func buildImage(t *testing.T, n int, epoch uint64) ([]byte, [][2][]byte) {
	t.Helper()
	w := NewWriter()
	var rows [][2][]byte
	w.BeginTable("alpha")
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v := []byte(fmt.Sprintf("value-%05d-%s", i, bytes.Repeat([]byte{'x'}, i%7)))
		if err := w.Append(k, v); err != nil {
			t.Fatalf("Append: %v", err)
		}
		rows = append(rows, [2][]byte{k, v})
	}
	w.BeginTable("beta")
	for i := 0; i < n; i++ {
		if err := w.Append([]byte(fmt.Sprintf("b%04d", i)), []byte{byte(i)}); err != nil {
			t.Fatalf("Append beta: %v", err)
		}
	}
	img, err := w.Finish(epoch)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return img, rows
}

func TestRoundTrip(t *testing.T) {
	img, rows := buildImage(t, 300, 42)
	r, err := OpenBytes(img)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	if r.Epoch() != 42 {
		t.Fatalf("epoch = %d, want 42", r.Epoch())
	}
	ta := r.Table("alpha")
	if ta == nil || ta.Rows() != 300 {
		t.Fatalf("alpha table missing or wrong rows")
	}
	for _, kv := range rows {
		v, ok := ta.Get(kv[0])
		if !ok || !bytes.Equal(v, kv[1]) {
			t.Fatalf("Get(%q) = %q, %v", kv[0], v, ok)
		}
	}
	if _, ok := ta.Get([]byte("nope")); ok {
		t.Fatal("Get on absent key reported ok")
	}
	if r.Table("gamma") != nil {
		t.Fatal("phantom table")
	}

	// Full cursor walk matches the written order.
	c := ta.Cursor()
	i := 0
	for ok, _ := c.First(); ok; ok, _ = c.Next() {
		if !bytes.Equal(c.Key(), rows[i][0]) || !bytes.Equal(c.Value(), rows[i][1]) {
			t.Fatalf("row %d mismatch", i)
		}
		i++
	}
	if i != 300 {
		t.Fatalf("walked %d rows, want 300", i)
	}

	// Range honors both bounds.
	var got []string
	ta.Range([]byte("key-00010"), []byte("key-00013"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 3 || got[0] != "key-00010" || got[2] != "key-00012" {
		t.Fatalf("Range = %v", got)
	}

	// SeekPrefix/NextPrefix mirror the storage cursor contract.
	ok, _ := c.SeekPrefix([]byte("key-0002"))
	if !ok || string(c.Key()) != "key-00020" {
		t.Fatalf("SeekPrefix landed on %q", c.Key())
	}
	cnt := 1
	for ok, _ = c.NextPrefix([]byte("key-0002")); ok; ok, _ = c.NextPrefix([]byte("key-0002")) {
		cnt++
	}
	if cnt != 10 {
		t.Fatalf("prefix walk saw %d rows, want 10", cnt)
	}
}

func TestWriterRejectsDisorder(t *testing.T) {
	w := NewWriter()
	w.BeginTable("t")
	if err := w.Append([]byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("a"), nil); err == nil {
		t.Fatal("out-of-order Append accepted")
	}
	if _, err := w.Finish(0); err == nil {
		t.Fatal("Finish after error succeeded")
	}
}

func TestCorruptImagesError(t *testing.T) {
	img, _ := buildImage(t, 50, 7)
	if _, err := OpenBytes(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := OpenBytes(img[:10]); err == nil {
		t.Fatal("truncated image accepted")
	}
	for _, off := range []int{0, 5, len(img) / 2, len(img) - 10, len(img) - 1} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0xff
		if _, err := OpenBytes(bad); err == nil {
			t.Fatalf("corruption at %d accepted", off)
		}
	}
}

// TestZeroAllocReads is the hot-path contract: Get, Seek, Next and Range
// over the mapped bytes allocate nothing.
func TestZeroAllocReads(t *testing.T) {
	img, rows := buildImage(t, 500, 1)
	r, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	ta := r.Table("alpha")
	probe := rows[123][0]
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := ta.Get(probe); !ok {
			t.Fatal("probe missing")
		}
	}); n != 0 {
		t.Fatalf("Get allocates %v/op", n)
	}
	c := ta.Cursor()
	if n := testing.AllocsPerRun(200, func() {
		if ok, _ := c.Seek(probe); !ok {
			t.Fatal("seek missed")
		}
		if ok, _ := c.Next(); !ok {
			t.Fatal("next missed")
		}
		_ = c.Key()
		_ = c.Value()
	}); n != 0 {
		t.Fatalf("Seek/Next allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		ta.Range(rows[0][0], rows[20][0], func(k, v []byte) bool { return true })
	}); n != 0 {
		t.Fatalf("Range allocates %v/op", n)
	}
}

func TestStoreCommitAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Current() != nil {
		t.Fatal("fresh store has a generation")
	}
	commit := func(epoch uint64, val string) {
		t.Helper()
		err := s.Commit(epoch, func(w *Writer) error {
			w.BeginTable("t")
			return w.Append([]byte("k"), []byte(val))
		})
		if err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	commit(1, "one")
	commit(2, "two")
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
	if v, ok := s.Get("t", []byte("k")); !ok || string(v) != "two" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Swaps() != 2 || s.GensRetired() != 1 || s.GensLive() != 1 {
		t.Fatalf("counters: swaps=%d retired=%d live=%d", s.Swaps(), s.GensRetired(), s.GensLive())
	}
	// The superseded file is gone; only SEG-2 and the manifest remain.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 2 {
		t.Fatalf("dir holds %d entries", len(ents))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Current() == nil || s2.Current().Epoch() != 2 {
		t.Fatal("reopen lost the committed generation")
	}
	if v, ok := s2.Get("t", []byte("k")); !ok || string(v) != "two" {
		t.Fatalf("reopened Get = %q, %v", v, ok)
	}
}

// TestPinKeepsRetiredGenerationMapped proves a pinned reader's cursor
// survives a commit that retires its generation.
func TestPinKeepsRetiredGenerationMapped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.Commit(1, func(w *Writer) error {
		w.BeginTable("t")
		return w.Append([]byte("k"), []byte("old"))
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Pin()
	cur := s.ListCursor("t")
	if cur == nil {
		t.Fatal("no cursor")
	}
	err = s.Commit(2, func(w *Writer) error {
		w.BeginTable("t")
		return w.Append([]byte("k"), []byte("new"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.GensLive() != 2 {
		t.Fatalf("live generations = %d, want 2 (old pinned)", s.GensLive())
	}
	if ok, _ := cur.SeekPrefix([]byte("k")); !ok || string(cur.Value()) != "old" {
		t.Fatalf("pinned cursor reads %q", cur.Value())
	}
	s.Unpin()
	if s.GensLive() != 1 {
		t.Fatalf("live generations after unpin = %d, want 1", s.GensLive())
	}
	if v, ok := s.Get("t", []byte("k")); !ok || string(v) != "new" {
		t.Fatalf("current Get = %q, %v", v, ok)
	}
}

// TestCrashBeforeSwapLeavesOldGeneration simulates dying between the
// segment fsync and the manifest flip: the commit errors, the current
// generation is untouched, and a fresh open (the "restarted process")
// still serves the old generation while the orphan file is collected.
func TestCrashBeforeSwapLeavesOldGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Commit(1, func(w *Writer) error {
		w.BeginTable("t")
		return w.Append([]byte("k"), []byte("old"))
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("crash")
	s.CrashBeforeSwap = func() error { return boom }
	err = s.Commit(2, func(w *Writer) error {
		w.BeginTable("t")
		return w.Append([]byte("k"), []byte("new"))
	})
	if err != boom {
		t.Fatalf("Commit error = %v, want crash", err)
	}
	if v, ok := s.Get("t", []byte("k")); !ok || string(v) != "old" {
		t.Fatalf("post-crash Get = %q, %v", v, ok)
	}
	// The orphan SEG-2 exists until a reopen collects it.
	if _, err := os.Stat(filepath.Join(dir, genName(2))); err != nil {
		t.Fatalf("orphan segment missing: %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("t", []byte("k")); !ok || string(v) != "old" {
		t.Fatalf("reopened Get = %q, %v", v, ok)
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s2.Generation())
	}
	if _, err := os.Stat(filepath.Join(dir, genName(2))); !os.IsNotExist(err) {
		t.Fatal("orphan segment survived reopen")
	}
}

func TestMemoryStore(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	err := s.Commit(5, func(w *Writer) error {
		w.BeginTable("t")
		return w.Append([]byte("a"), []byte("1"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("t", []byte("a")); !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Current().Epoch() != 5 {
		t.Fatal("epoch lost")
	}
}

func TestReadAccounting(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	err := s.Commit(1, func(w *Writer) error {
		w.BeginTable("t")
		for i := 0; i < 10; i++ {
			if err := w.Append([]byte(fmt.Sprintf("k%02d", i)), []byte("vvvv")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := s.ListCursor("t")
	n := 0
	for ok, _ := c.First(); ok; ok, _ = c.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("walked %d rows", n)
	}
	if s.RowsRead() != 10 {
		t.Fatalf("RowsRead = %d, want 10", s.RowsRead())
	}
	if want := uint64(10 * (3 + 4)); s.BytesRead() != want {
		t.Fatalf("BytesRead = %d, want %d", s.BytesRead(), want)
	}
}
