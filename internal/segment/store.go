package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	manifestName  = "MANIFEST"
	manifestMagic = "TRXMAN1"
	segPrefix     = "SEG-"
	segSuffix     = ".trexseg"
)

// Store manages the generations of one segment directory: an atomic
// pointer to the current generation, a MANIFEST file naming it, and the
// commit protocol that replaces it — write the next segment to the side,
// fsync it, then flip the manifest with an atomic rename. Readers that
// Pin the store keep retired generations mapped until they Unpin, so a
// commit never invalidates an in-flight cursor.
//
// With an empty dir the store runs in memory mode: generations are plain
// byte slices, commits swap the pointer, and there is no manifest — the
// mode in-memory engines and the differential oracle use.
type Store struct {
	dir string

	// mu serializes commits (and close); the current pointer is atomic
	// so readers never take it.
	mu  sync.Mutex
	cur atomic.Pointer[generation]

	// pinMu guards the reader pin count and the retire queue: a retired
	// generation is unmapped (and its file removed) only once no reader
	// pin is outstanding.
	pinMu   sync.Mutex
	pins    int64
	retired []*generation

	closed atomic.Bool

	// CrashBeforeSwap, when set, is called after the new segment file is
	// written and fsynced but before the manifest swap. Returning an
	// error aborts the commit at exactly the crash point the recovery
	// path must survive: segment durable, manifest still naming the old
	// generation. Test hook; nil in production.
	CrashBeforeSwap func() error

	// io feeds per-row read accounting from every cursor the store hands
	// out (scraped by the trex_segment_* telemetry family).
	io          ioCounters
	swaps       atomic.Uint64
	gensRetired atomic.Uint64
	pinsGauge   atomic.Int64
	mappedBytes atomic.Int64
	gensLive    atomic.Int64
}

// generation is one immutable segment image plus its lifecycle state.
type generation struct {
	num    uint64
	r      *Reader
	data   []byte
	mapped bool
	path   string // "" in memory mode
}

// Open opens (or initializes) a segment directory. A manifest naming a
// segment loads and maps it; a missing manifest yields an empty store
// (Current returns nil) ready for its first Commit. Orphan segment files
// left by crashed commits are removed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("segment: empty dir (use OpenMemory)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir}
	name, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	if name != "" {
		path := filepath.Join(dir, name)
		g, err := openGeneration(path)
		if err != nil {
			return nil, fmt.Errorf("segment: open %s: %w", name, err)
		}
		s.install(g)
	}
	s.gcOrphans(name)
	return s, nil
}

// OpenMemory returns a store whose generations live on the heap; used by
// in-memory engines. Commit swaps the pointer with no files involved.
func OpenMemory() *Store { return &Store{} }

// readManifest returns the segment file the manifest names, or "" when
// there is no (or an unreadable/torn) manifest — the caller treats that
// as an empty store, which the index layer repairs by rebuilding.
func readManifest(path string) (string, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	fields := strings.Fields(string(b))
	if len(fields) != 2 || fields[0] != manifestMagic {
		return "", nil
	}
	name := fields[1]
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) ||
		strings.ContainsAny(name, "/\\") {
		return "", nil
	}
	return name, nil
}

// openGeneration maps one segment file and validates it.
func openGeneration(path string) (*generation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mmapFile(f, fi.Size())
	if err != nil {
		return nil, err
	}
	r, err := OpenBytes(data)
	if err != nil {
		if mapped {
			_ = munmapBytes(data)
		}
		return nil, err
	}
	num, err := genNumber(filepath.Base(path))
	if err != nil {
		if mapped {
			_ = munmapBytes(data)
		}
		return nil, err
	}
	return &generation{num: num, r: r, data: data, mapped: mapped, path: path}, nil
}

func genName(num uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, num, segSuffix) }

func genNumber(name string) (uint64, error) {
	var num uint64
	if _, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &num); err != nil {
		return 0, fmt.Errorf("segment: bad segment file name %q", name)
	}
	return num, nil
}

// gcOrphans removes segment files the manifest does not name — debris of
// commits that died between fsync and swap.
func (s *Store) gcOrphans(keep string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) && n != keep {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		_ = os.Remove(filepath.Join(s.dir, n))
	}
}

// install publishes g as the current generation and updates the gauges.
func (s *Store) install(g *generation) {
	old := s.cur.Swap(g)
	if g != nil {
		s.gensLive.Add(1)
		s.mappedBytes.Add(int64(len(g.data)))
	}
	if old != nil {
		s.retire(old)
	}
}

// retire queues an old generation for release, releasing immediately
// when no reader pin is outstanding.
func (s *Store) retire(g *generation) {
	s.gensRetired.Add(1)
	s.pinMu.Lock()
	if s.pins == 0 {
		s.pinMu.Unlock()
		s.release(g)
		return
	}
	s.retired = append(s.retired, g)
	s.pinMu.Unlock()
}

// release unmaps a generation and deletes its superseded file.
func (s *Store) release(g *generation) {
	s.gensLive.Add(-1)
	s.mappedBytes.Add(-int64(len(g.data)))
	if g.mapped {
		_ = munmapBytes(g.data)
	}
	g.r = nil
	g.data = nil
	if g.path != "" {
		_ = os.Remove(g.path)
	}
}

// Pin marks a reader active: until the matching Unpin, no generation is
// unmapped, so cursors handed out before a commit stay valid. Pins are
// store-wide (a counter, not a per-generation handle) because the engine
// only swaps generations while it holds its exclusive write lock — the
// pin exists to keep the old mapping alive for stragglers, not to order
// swaps.
func (s *Store) Pin() {
	s.pinMu.Lock()
	s.pins++
	s.pinMu.Unlock()
	s.pinsGauge.Add(1)
}

// Unpin releases a Pin; the last reader out releases every retired
// generation.
func (s *Store) Unpin() {
	s.pinsGauge.Add(-1)
	s.pinMu.Lock()
	s.pins--
	var drain []*generation
	if s.pins == 0 && len(s.retired) > 0 {
		drain = s.retired
		s.retired = nil
	}
	s.pinMu.Unlock()
	for _, g := range drain {
		s.release(g)
	}
}

// Current returns the reader of the current generation, or nil when
// nothing has been committed yet.
func (s *Store) Current() *Reader {
	g := s.cur.Load()
	if g == nil {
		return nil
	}
	return g.r
}

// Generation returns the current generation number (0 when empty).
func (s *Store) Generation() uint64 {
	g := s.cur.Load()
	if g == nil {
		return 0
	}
	return g.num
}

// ListCursor returns a read-accounted cursor over the named table of the
// current generation, or nil when there is no generation or no such
// table — the caller falls back to its non-segment path.
func (s *Store) ListCursor(table string) *Cursor {
	g := s.cur.Load()
	if g == nil {
		return nil
	}
	t := g.r.Table(table)
	if t == nil {
		return nil
	}
	c := t.Cursor()
	c.io = &s.io
	return c
}

// Get probes the named table of the current generation, accounting the
// read. ok is false when the store is empty or the key is absent.
func (s *Store) Get(table string, key []byte) ([]byte, bool) {
	g := s.cur.Load()
	if g == nil {
		return nil, false
	}
	t := g.r.Table(table)
	if t == nil {
		return nil, false
	}
	v, ok := t.Get(key)
	if ok {
		s.io.rows.Add(1)
		s.io.bytes.Add(uint64(len(key) + len(v)))
	}
	return v, ok
}

// Commit writes the next generation: build receives a fresh writer and
// streams the tables into it; the image is stamped with epoch, made
// durable, and published with a manifest flip. On any error the current
// generation is untouched.
func (s *Store) Commit(epoch uint64, build func(w *Writer) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("segment: store closed")
	}
	w := NewWriter()
	if err := build(w); err != nil {
		return err
	}
	img, err := w.Finish(epoch)
	if err != nil {
		return err
	}
	num := uint64(1)
	if g := s.cur.Load(); g != nil {
		num = g.num + 1
	}

	if s.dir == "" {
		r, err := OpenBytes(img)
		if err != nil {
			return err
		}
		s.install(&generation{num: num, r: r, data: img})
		s.swaps.Add(1)
		return nil
	}

	name := genName(num)
	path := filepath.Join(s.dir, name)
	if err := writeFileSync(path, img); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if hook := s.CrashBeforeSwap; hook != nil {
		if err := hook(); err != nil {
			return err
		}
	}
	if err := s.swapManifest(name); err != nil {
		return err
	}
	g, err := openGeneration(path)
	if err != nil {
		return err
	}
	s.install(g)
	s.swaps.Add(1)
	return nil
}

// swapManifest atomically repoints the manifest at name.
func (s *Store) swapManifest(name string) error {
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := writeFileSync(tmp, []byte(manifestMagic+" "+name+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	return syncDir(s.dir)
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the current and any retired generations. Outstanding
// cursors must be done.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if g := s.cur.Swap(nil); g != nil {
		s.gensLive.Add(-1)
		s.mappedBytes.Add(-int64(len(g.data)))
		if g.mapped {
			_ = munmapBytes(g.data)
		}
	}
	s.pinMu.Lock()
	retired := s.retired
	s.retired = nil
	s.pinMu.Unlock()
	for _, g := range retired {
		s.release(g)
	}
	return nil
}

// --- telemetry accessors (scrape-time reads of the store's atomics) ---

// RowsRead counts rows served from segment cursors and gets.
func (s *Store) RowsRead() uint64 { return s.io.rows.Load() }

// BytesRead counts key+value bytes those rows covered — the mmap-read
// analogue of the pager's PagesRead*PageSize.
func (s *Store) BytesRead() uint64 { return s.io.bytes.Load() }

// Swaps counts manifest flips (commits published).
func (s *Store) Swaps() uint64 { return s.swaps.Load() }

// GensRetired counts generations replaced by a newer commit.
func (s *Store) GensRetired() uint64 { return s.gensRetired.Load() }

// GensLive gauges generations currently mapped (current + pinned-old).
func (s *Store) GensLive() int64 { return s.gensLive.Load() }

// MappedBytes gauges the bytes of all live generation images.
func (s *Store) MappedBytes() int64 { return s.mappedBytes.Load() }

// PinsActive gauges outstanding reader pins.
func (s *Store) PinsActive() int64 { return s.pinsGauge.Load() }
