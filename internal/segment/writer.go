// Package segment implements immutable, generation-numbered index
// segments: a one-shot writer that lays sorted key/value rows into a
// single flat file, and a zero-allocation reader that serves Get, Seek
// and Range directly over the mapped bytes — no page cache, no row
// rehydration. The index *is* the bytes (in the spirit of the lindb
// byte-array B+tree reader): queries binary-search a fixed-width skip
// directory and return subslices of the mapping.
//
// A segment file holds one or more named tables. Each table is a data
// region of concatenated key‖value rows followed by its skip directory
// (16 bytes per row: absolute key offset, key length, value length).
// The footer records, per table, the row count, directory offset and
// key-range fences (first/last key), then the generation epoch, the
// footer offset, a CRC-32C over everything before it, and a trailing
// magic:
//
//	"TRXSEG1\0"
//	table 0 data  | table 0 directory
//	table 1 data  | table 1 directory
//	...
//	footer: count, {name, rows, dirOff, firstKey, lastKey}...
//	epoch u64 | footerOff u64 | crc32c u32 | "TRXSEGE1"
//
// Segments are immutable once written. The Store (store.go) manages
// their lifecycle: a commit writes the next generation to the side,
// fsyncs it, and flips a manifest pointer, so live readers keep serving
// the old generation until they unpin.
package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	headMagic = "TRXSEG1\x00"
	tailMagic = "TRXSEGE1"
	// dirEntrySize is one skip-directory entry: key offset (u64), key
	// length (u32), value length (u32).
	dirEntrySize = 16
	// tailSize is the fixed trailer: footer offset (u64) + crc (u32) +
	// tail magic (8).
	tailSize = 8 + 4 + 8
	// maxNameLen bounds a table name in the footer (stored as u8 len).
	maxNameLen = 255
)

// castagnoli is the CRC-32C table, the same polynomial the storage
// journal uses for its page checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer builds one segment file in memory. Tables are written in
// sequence: BeginTable, then Append rows in strictly ascending key
// order, then either another BeginTable or Finish.
type Writer struct {
	buf    []byte
	tables []writerTable
	err    error
}

type writerTable struct {
	name     string
	dir      []byte // accumulated directory entries
	dirOffAt uint64 // where the directory landed in the buffer
	rows     int
	first    []byte
	last     []byte
	started  bool
}

// NewWriter returns an empty segment writer.
func NewWriter() *Writer {
	return &Writer{buf: append([]byte(nil), headMagic...)}
}

// BeginTable starts a new table. Table names must be unique, non-empty
// and at most 255 bytes.
func (w *Writer) BeginTable(name string) {
	if w.err != nil {
		return
	}
	w.sealTable()
	if name == "" || len(name) > maxNameLen {
		w.err = fmt.Errorf("segment: bad table name %q", name)
		return
	}
	for _, t := range w.tables {
		if t.name == name {
			w.err = fmt.Errorf("segment: duplicate table %q", name)
			return
		}
	}
	w.tables = append(w.tables, writerTable{name: name, started: true})
}

// Append adds one row to the current table. Keys must arrive in strictly
// ascending order; both slices are copied.
func (w *Writer) Append(key, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(w.tables) == 0 || !w.tables[len(w.tables)-1].started {
		w.err = fmt.Errorf("segment: Append before BeginTable")
		return w.err
	}
	t := &w.tables[len(w.tables)-1]
	if t.rows > 0 && bytes.Compare(t.last, key) >= 0 {
		w.err = fmt.Errorf("segment: keys out of order in table %q (%x after %x)", t.name, key, t.last)
		return w.err
	}
	off := uint64(len(w.buf))
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, value...)
	var e [dirEntrySize]byte
	binary.BigEndian.PutUint64(e[0:8], off)
	binary.BigEndian.PutUint32(e[8:12], uint32(len(key)))
	binary.BigEndian.PutUint32(e[12:16], uint32(len(value)))
	t.dir = append(t.dir, e[:]...)
	if t.rows == 0 {
		t.first = append([]byte(nil), key...)
	}
	t.last = append(t.last[:0], key...)
	t.rows++
	return nil
}

// sealTable flushes the current table's directory into the buffer.
func (w *Writer) sealTable() {
	if len(w.tables) == 0 {
		return
	}
	t := &w.tables[len(w.tables)-1]
	if !t.started {
		return
	}
	t.started = false
	t.dirOffAt = uint64(len(w.buf))
	w.buf = append(w.buf, t.dir...)
}

// Finish seals the last table, writes the footer stamped with epoch, and
// returns the complete segment image. The writer is spent afterwards.
func (w *Writer) Finish(epoch uint64) ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	w.sealTable()
	footerOff := uint64(len(w.buf))
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(w.tables)))
	w.buf = append(w.buf, u32[:]...)
	for _, t := range w.tables {
		w.buf = append(w.buf, byte(len(t.name)))
		w.buf = append(w.buf, t.name...)
		binary.BigEndian.PutUint64(u64[:], uint64(t.rows))
		w.buf = append(w.buf, u64[:]...)
		binary.BigEndian.PutUint64(u64[:], t.dirOffAt)
		w.buf = append(w.buf, u64[:]...)
		binary.BigEndian.PutUint32(u32[:], uint32(len(t.first)))
		w.buf = append(w.buf, u32[:]...)
		w.buf = append(w.buf, t.first...)
		binary.BigEndian.PutUint32(u32[:], uint32(len(t.last)))
		w.buf = append(w.buf, u32[:]...)
		w.buf = append(w.buf, t.last...)
	}
	binary.BigEndian.PutUint64(u64[:], epoch)
	w.buf = append(w.buf, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], footerOff)
	w.buf = append(w.buf, u64[:]...)
	binary.BigEndian.PutUint32(u32[:], crc32.Checksum(w.buf, castagnoli))
	w.buf = append(w.buf, u32[:]...)
	w.buf = append(w.buf, tailMagic...)
	out := w.buf
	w.buf = nil
	w.err = fmt.Errorf("segment: writer already finished")
	return out, nil
}
