package selfmanage

import (
	"fmt"
	"sort"
)

// LP solves the paper's boolean linear program (Section 4.1) exactly by
// branch and bound:
//
//	maximize   Σ (x_i1 f_i Δm(Q_i) + x_i2 f_i Δta(Q_i))
//	subject to x_i1 + x_i2 <= 1
//	           Σ (x_i1 S_ERPL(Q_i) + x_i2 S_RPL(Q_i)) <= d
//	           x_ij ∈ {0, 1}
//
// As in the paper's formulation, each query is charged the full size of
// its lists (sharing between queries is not modeled); use Greedy or
// Optimal for shared-list marginal costing. Intended for small workloads —
// the paper notes boolean LP "should be used only when the number of
// queries in the workload is small".
func LP(w *Workload, disk int64) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if disk < 0 {
		return nil, fmt.Errorf("selfmanage: negative disk budget")
	}
	n := len(w.Queries)
	type option struct {
		s      Strategy
		saving float64
		size   int64
	}
	opts := make([][]option, n)
	for i := range w.Queries {
		q := &w.Queries[i]
		opts[i] = []option{{s: StrategyNone}}
		if sv := q.savingFor(StrategyMerge); sv > 0 {
			opts[i] = append(opts[i], option{s: StrategyMerge, saving: sv, size: totalBytes(q.MergeLists)})
		}
		if sv := q.savingFor(StrategyTA); sv > 0 {
			opts[i] = append(opts[i], option{s: StrategyTA, saving: sv, size: totalBytes(q.TALists)})
		}
	}
	// Upper-bound helper: the sum of the best remaining savings ignoring
	// disk — admissible, so pruning is safe.
	suffixBest := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		best := 0.0
		for _, o := range opts[i] {
			if o.saving > best {
				best = o.saving
			}
		}
		suffixBest[i] = suffixBest[i+1] + best
	}

	assign := make([]Strategy, n)
	best := make([]Strategy, n)
	bestSaving := -1.0
	var rec func(i int, used int64, saving float64)
	rec = func(i int, used int64, saving float64) {
		if saving+suffixBest[i] <= bestSaving {
			return
		}
		if i == n {
			if saving > bestSaving {
				bestSaving = saving
				copy(best, assign)
			}
			return
		}
		for _, o := range opts[i] {
			if used+o.size > disk {
				continue
			}
			assign[i] = o.s
			rec(i+1, used+o.size, saving+o.saving)
		}
		assign[i] = StrategyNone
	}
	rec(0, 0, 0)

	// Report the plan with real (shared) disk usage, but the LP's
	// objective value as Saving.
	p := planFor(w, best)
	p.Saving = bestSaving
	return p, nil
}

func totalBytes(lists []ListRef) int64 {
	var t int64
	for _, l := range lists {
		t += l.Bytes
	}
	return t
}

// Greedy implements the paper's 2-approximation (Section 4.2): repeatedly
// add the index whose gain-to-marginal-cost ratio is highest, where the
// marginal cost of a query's strategy counts only lists not already chosen
// (the paper's "minimal addition" I_m / I_ta). Stops when every query is
// supported or no positive-ratio addition fits the remaining disk.
//
// Per the classic analysis, the returned plan is the better of the
// iterative greedy solution and the best single affordable index, which
// is what guarantees the factor-2 bound of Theorem 4.2.
func Greedy(w *Workload, disk int64) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if disk < 0 {
		return nil, fmt.Errorf("selfmanage: negative disk budget")
	}
	n := len(w.Queries)

	iterative := greedyIterative(w, disk)

	// Best single index that fits on its own.
	bestSingle := make([]Strategy, n)
	bestSingleSaving := 0.0
	var bestIdx = -1
	var bestStrat Strategy
	for i := range w.Queries {
		q := &w.Queries[i]
		for _, s := range []Strategy{StrategyMerge, StrategyTA} {
			if totalBytes(q.listsFor(s)) > disk {
				continue
			}
			if sv := q.savingFor(s); sv > bestSingleSaving {
				bestSingleSaving = sv
				bestIdx, bestStrat = i, s
			}
		}
	}
	if bestIdx >= 0 {
		bestSingle[bestIdx] = bestStrat
	}

	single := planFor(w, bestSingle)
	if single.Saving > iterative.Saving {
		return single, nil
	}
	return iterative, nil
}

func greedyIterative(w *Workload, disk int64) *Plan {
	n := len(w.Queries)
	assign := make([]Strategy, n)
	chosen := make(map[string]bool) // list keys already materialized
	var used int64

	marginal := func(lists []ListRef) int64 {
		var t int64
		for _, l := range lists {
			if !chosen[l.Key] {
				t += l.Bytes
			}
		}
		return t
	}

	for {
		bestRatio := 0.0
		bestIdx := -1
		var bestStrategy Strategy
		var bestCost int64
		for i := range w.Queries {
			if assign[i] != StrategyNone {
				continue // query already supported
			}
			q := &w.Queries[i]
			for _, s := range []Strategy{StrategyMerge, StrategyTA} {
				sv := q.savingFor(s)
				if sv <= 0 {
					continue
				}
				cost := marginal(q.listsFor(s))
				if used+cost > disk {
					continue
				}
				var ratio float64
				if cost == 0 {
					// All lists already chosen: free support, take it.
					ratio = sv * 1e18
				} else {
					ratio = sv / float64(cost)
				}
				if ratio > bestRatio {
					bestRatio, bestIdx, bestStrategy, bestCost = ratio, i, s, cost
				}
			}
		}
		if bestIdx < 0 {
			break
		}
		assign[bestIdx] = bestStrategy
		used += bestCost
		for _, l := range w.Queries[bestIdx].listsFor(bestStrategy) {
			chosen[l.Key] = true
		}
	}
	return planFor(w, assign)
}

// Optimal exhaustively searches all 3^n assignments, honoring shared list
// sizes, and returns the maximum-saving plan within the disk budget. It is
// the I_o of Theorem 4.2; use only for small workloads (n <= ~12).
func Optimal(w *Workload, disk int64) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	n := len(w.Queries)
	if n > 16 {
		return nil, fmt.Errorf("selfmanage: Optimal limited to 16 queries, got %d", n)
	}
	assign := make([]Strategy, n)
	var best *Plan
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			p := planFor(w, assign)
			if p.DiskUsed > disk {
				return
			}
			if best == nil || p.Saving > best.Saving {
				best = p
			}
			return
		}
		for _, s := range []Strategy{StrategyNone, StrategyMerge, StrategyTA} {
			assign[i] = s
			rec(i + 1)
		}
		assign[i] = StrategyNone
	}
	rec(0)
	sort.Strings(best.Lists)
	return best, nil
}
