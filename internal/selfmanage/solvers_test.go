package selfmanage

import (
	"fmt"
	"math/rand"
	"testing"
)

// uniqueLists builds n single-list refs with distinct keys.
func uniqueLists(prefix string, bytes ...int64) []ListRef {
	out := make([]ListRef, len(bytes))
	for i, b := range bytes {
		out[i] = ListRef{Key: fmt.Sprintf("%s-%d", prefix, i), Bytes: b}
	}
	return out
}

func simpleWorkload() *Workload {
	return &Workload{Queries: []QuerySpec{
		{
			ID: "q1", Freq: 0.5,
			TimeERA: 100, TimeMerge: 10, TimeTA: 50,
			MergeLists: uniqueLists("q1e", 100),
			TALists:    uniqueLists("q1r", 80),
		},
		{
			ID: "q2", Freq: 0.3,
			TimeERA: 200, TimeMerge: 150, TimeTA: 20,
			MergeLists: uniqueLists("q2e", 120),
			TALists:    uniqueLists("q2r", 90),
		},
		{
			ID: "q3", Freq: 0.2,
			TimeERA: 50, TimeMerge: 45, TimeTA: 48,
			MergeLists: uniqueLists("q3e", 500),
			TALists:    uniqueLists("q3r", 400),
		},
	}}
}

func TestWorkloadValidate(t *testing.T) {
	w := simpleWorkload()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Workload{Queries: []QuerySpec{{ID: "x", Freq: 0.4}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("frequencies not summing to 1 accepted")
	}
	bad2 := &Workload{Queries: []QuerySpec{{ID: "x", Freq: 0}, {ID: "y", Freq: 1}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero frequency accepted")
	}
	empty := &Workload{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty workload accepted")
	}
	neg := &Workload{Queries: []QuerySpec{{ID: "x", Freq: 1, TimeERA: -1}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestNormalize(t *testing.T) {
	w := &Workload{Queries: []QuerySpec{
		{ID: "a", Freq: 2}, {ID: "b", Freq: 2},
	}}
	w.Normalize()
	if w.Queries[0].Freq != 0.5 || w.Queries[1].Freq != 0.5 {
		t.Fatalf("Normalize = %v, %v", w.Queries[0].Freq, w.Queries[1].Freq)
	}
}

func TestSavings(t *testing.T) {
	q := &QuerySpec{TimeERA: 100, TimeMerge: 30, TimeTA: 120}
	if q.SavingMerge() != 70 {
		t.Fatalf("SavingMerge = %v", q.SavingMerge())
	}
	// TA slower than ERA: saving clamps at zero.
	if q.SavingTA() != 0 {
		t.Fatalf("SavingTA = %v", q.SavingTA())
	}
}

func TestLPUnlimitedDiskPicksBestPerQuery(t *testing.T) {
	w := simpleWorkload()
	p, err := LP(w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	// q1: merge saves 0.5*90=45 vs ta 0.5*50=25 -> merge.
	// q2: merge 0.3*50=15 vs ta 0.3*180=54 -> ta.
	// q3: merge 0.2*5=1 vs ta 0.2*2=0.4 -> merge.
	want := []Strategy{StrategyMerge, StrategyTA, StrategyMerge}
	for i := range want {
		if p.Assignments[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", p.Assignments, want)
		}
	}
	if p.Saving < 60.9 || p.Saving > 61.1 { // 45+54+1 = 61... wait: 45+54+1 = 100? recompute below
		// 45 + 54 + 1 = 100 is wrong: 45+54=99, +1 = 100. Let the assertion
		// compute it exactly instead.
		t.Logf("saving = %v", p.Saving)
	}
	wantSaving := 0.5*90 + 0.3*180 + 0.2*5
	if diff := p.Saving - wantSaving; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Saving = %v, want %v", p.Saving, wantSaving)
	}
}

func TestLPRespectsDiskBudget(t *testing.T) {
	w := simpleWorkload()
	// Budget fits only q2's RPL (90) plus q1's RPL (80) = 170, not q1's
	// ERPL (100) + q2's RPL (90) = 190.
	p, err := LP(w, 175)
	if err != nil {
		t.Fatal(err)
	}
	if p.DiskUsed > 175 {
		t.Fatalf("DiskUsed = %d > budget", p.DiskUsed)
	}
	// q2's TA (54) is the most valuable; then q1's TA (25) fits (170).
	if p.Assignments[1] != StrategyTA {
		t.Fatalf("assignments = %v", p.Assignments)
	}
	if p.Assignments[0] != StrategyTA {
		t.Fatalf("assignments = %v, expected q1=ta under budget", p.Assignments)
	}
	wantSaving := 0.3*180 + 0.5*50
	if diff := p.Saving - wantSaving; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Saving = %v, want %v", p.Saving, wantSaving)
	}
}

func TestLPZeroBudget(t *testing.T) {
	w := simpleWorkload()
	p, err := LP(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Saving != 0 || p.DiskUsed != 0 {
		t.Fatalf("zero budget plan = %+v", p)
	}
	for _, s := range p.Assignments {
		if s != StrategyNone {
			t.Fatalf("zero budget assigned %v", s)
		}
	}
	if _, err := LP(w, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGreedyMatchesLPOnEasyInstance(t *testing.T) {
	w := simpleWorkload()
	g, err := Greedy(w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LP(w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if g.Saving != lp.Saving {
		t.Fatalf("greedy %v != lp %v with unlimited disk", g.Saving, lp.Saving)
	}
}

func TestGreedySharedListsAreFree(t *testing.T) {
	shared := []ListRef{{Key: "E/xml/7", Bytes: 1000}}
	w := &Workload{Queries: []QuerySpec{
		{ID: "a", Freq: 0.5, TimeERA: 100, TimeMerge: 10, TimeTA: 100, MergeLists: shared},
		{ID: "b", Freq: 0.5, TimeERA: 80, TimeMerge: 8, TimeTA: 80, MergeLists: shared},
	}}
	// Budget fits the shared list once; both queries get supported.
	p, err := Greedy(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignments[0] != StrategyMerge || p.Assignments[1] != StrategyMerge {
		t.Fatalf("assignments = %v", p.Assignments)
	}
	if p.DiskUsed != 1000 {
		t.Fatalf("DiskUsed = %d, want 1000 (shared once)", p.DiskUsed)
	}
	wantSaving := 0.5*90 + 0.5*72
	if diff := p.Saving - wantSaving; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Saving = %v, want %v", p.Saving, wantSaving)
	}
}

func TestGreedyBestSingleFallback(t *testing.T) {
	// Iterative greedy by ratio would pick the small cheap index first
	// and then lack room for the big valuable one; the best-single rule
	// rescues the factor-2 bound.
	w := &Workload{Queries: []QuerySpec{
		{ID: "cheap", Freq: 0.5, TimeERA: 10, TimeMerge: 0, TimeTA: 10,
			MergeLists: uniqueLists("c", 10)}, // saving 5, ratio 0.5
		{ID: "big", Freq: 0.5, TimeERA: 2000, TimeMerge: 0, TimeTA: 2000,
			MergeLists: uniqueLists("b", 100)}, // saving 1000, ratio 10
	}}
	// ratio picks "big" first anyway here; craft the inversion: make cheap
	// ratio higher but value tiny.
	w.Queries[0].MergeLists = uniqueLists("c", 1) // ratio 5/1 = 5
	w.Queries[1].MergeLists = uniqueLists("b", 100)
	p, err := Greedy(w, 100) // after cheap (1), big (100) no longer fits
	if err != nil {
		t.Fatal(err)
	}
	// Best single = big alone (saving 1000) beats cheap-only (5).
	if p.Saving < 1000 {
		t.Fatalf("Saving = %v, want >= 1000 via best-single fallback", p.Saving)
	}
}

func TestOptimalSmall(t *testing.T) {
	w := simpleWorkload()
	p, err := Optimal(w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LP(w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if p.Saving != lp.Saving {
		t.Fatalf("optimal %v != lp %v with unique lists", p.Saving, lp.Saving)
	}
	big := &Workload{Queries: make([]QuerySpec, 17)}
	for i := range big.Queries {
		big.Queries[i] = QuerySpec{ID: fmt.Sprintf("q%d", i), Freq: 1.0 / 17}
	}
	if _, err := Optimal(big, 100); err == nil {
		t.Fatal("Optimal accepted 17 queries")
	}
}

// TestTheorem42 validates T_o <= 2*T_G on random instances: the greedy
// saving is at least half the optimal saving.
func TestTheorem42(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		w := &Workload{}
		sharedPool := []ListRef{
			{Key: "shared-A", Bytes: int64(1 + rng.Intn(500))},
			{Key: "shared-B", Bytes: int64(1 + rng.Intn(500))},
		}
		for i := 0; i < n; i++ {
			q := QuerySpec{
				ID:        fmt.Sprintf("q%d", i),
				Freq:      1, // normalized below
				TimeERA:   float64(10 + rng.Intn(1000)),
				TimeMerge: float64(rng.Intn(500)),
				TimeTA:    float64(rng.Intn(500)),
			}
			q.MergeLists = uniqueLists(fmt.Sprintf("e%d", i), int64(1+rng.Intn(300)))
			q.TALists = uniqueLists(fmt.Sprintf("r%d", i), int64(1+rng.Intn(300)))
			if rng.Intn(2) == 0 {
				q.MergeLists = append(q.MergeLists, sharedPool[rng.Intn(2)])
			}
			w.Queries = append(w.Queries, q)
		}
		w.Normalize()
		disk := int64(rng.Intn(1200))

		opt, err := Optimal(w, disk)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := Greedy(w, disk)
		if err != nil {
			t.Fatal(err)
		}
		if grd.DiskUsed > disk {
			t.Fatalf("trial %d: greedy exceeded budget: %d > %d", trial, grd.DiskUsed, disk)
		}
		if opt.DiskUsed > disk {
			t.Fatalf("trial %d: optimal exceeded budget", trial)
		}
		if opt.Saving > 2*grd.Saving+1e-9 {
			t.Fatalf("trial %d: Theorem 4.2 violated: optimal %v > 2 * greedy %v",
				trial, opt.Saving, grd.Saving)
		}
		if grd.Saving > opt.Saving+1e-9 {
			t.Fatalf("trial %d: greedy %v beat optimal %v (optimal is broken)",
				trial, grd.Saving, opt.Saving)
		}
	}
}

func TestEvaluatedTime(t *testing.T) {
	w := simpleWorkload()
	noIndex := &Plan{Assignments: []Strategy{StrategyNone, StrategyNone, StrategyNone}}
	baseline := EvaluatedTime(w, noIndex)
	wantBase := 0.5*100 + 0.3*200 + 0.2*50
	if diff := baseline - wantBase; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("baseline = %v, want %v", baseline, wantBase)
	}
	p, err := LP(w, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	indexed := EvaluatedTime(w, p)
	if diff := (baseline - indexed) - p.Saving; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("saving mismatch: baseline-indexed = %v, plan says %v", baseline-indexed, p.Saving)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyNone.String() != "none" || StrategyMerge.String() != "merge" || StrategyTA.String() != "ta" {
		t.Fatal("strategy strings")
	}
}
