// Package selfmanage implements the self-managing index selection of
// Section 4 of the paper: given a workload of top-k queries with
// frequencies, decide for which queries to materialize RPLs (enabling TA)
// or ERPLs (enabling Merge) under a disk budget, maximizing the weighted
// evaluation-time saving over the ERA baseline.
//
// Three solvers are provided:
//
//   - LP: the paper's boolean linear program (Section 4.1), which assigns
//     at most one index kind per query and charges each query its full
//     list size. Solved exactly by branch and bound.
//   - Greedy: the paper's 2-approximation (Section 4.2), which repeatedly
//     adds the index with the highest gain/marginal-cost ratio. Marginal
//     cost honors sharing: lists already chosen for other queries are
//     free. Following the classic knapsack analysis behind Theorem 4.2,
//     the result is max(iterative greedy, best single index).
//   - Optimal: exact search over all assignments honoring sharing, used
//     to validate Theorem 4.2 (T_o <= 2*T_G) on small workloads.
package selfmanage

import (
	"errors"
	"fmt"
	"math"
)

// Strategy is the index decision for one query.
type Strategy int

const (
	// StrategyNone materializes nothing; the query runs with ERA.
	StrategyNone Strategy = iota
	// StrategyMerge materializes the query's ERPLs.
	StrategyMerge
	// StrategyTA materializes the query's RPLs.
	StrategyTA
)

func (s Strategy) String() string {
	switch s {
	case StrategyMerge:
		return "merge"
	case StrategyTA:
		return "ta"
	default:
		return "none"
	}
}

// Routing records, for one workload query, which retrieval method the
// engine's query planner predicts it would run under each single-kind
// coverage: with only the query's RPLs materialized, and with only its
// ERPLs. The advisor folds these into the solver's saving terms — a
// materialized list only saves time for queries the planner would
// actually route to the strategy that reads it (a query routed to ERA
// under RPL-only coverage gains nothing from its RPLs).
type Routing struct {
	RPLOnly  string `json:"rplOnly"`
	ERPLOnly string `json:"erplOnly"`
}

// ListRef identifies one materializable list with its size. Key should be
// unique per physical list (e.g. "E/term/sid" or "R/term/sid"), so queries
// that share lists share their cost.
type ListRef struct {
	Key   string
	Bytes int64
}

// QuerySpec is one workload entry: measured times for the three
// strategies plus the lists each redundant strategy requires.
type QuerySpec struct {
	// ID labels the query in plans and reports.
	ID string
	// Freq is the query's workload frequency f_i in (0, 1].
	Freq float64
	// TimeERA, TimeMerge, TimeTA are measured evaluation times (seconds,
	// or any consistent unit) for the three strategies.
	TimeERA   float64
	TimeMerge float64
	TimeTA    float64
	// MergeLists are the ERPLs the query needs for Merge.
	MergeLists []ListRef
	// TALists are the RPLs the query needs for TA.
	TALists []ListRef
}

// SavingMerge is the paper's Δm(Q) = max(T_e - T_m, 0).
func (q *QuerySpec) SavingMerge() float64 { return math.Max(q.TimeERA-q.TimeMerge, 0) }

// SavingTA is the paper's Δta(Q) = max(T_e - T_ta, 0).
func (q *QuerySpec) SavingTA() float64 { return math.Max(q.TimeERA-q.TimeTA, 0) }

// listsFor returns the lists strategy s needs.
func (q *QuerySpec) listsFor(s Strategy) []ListRef {
	switch s {
	case StrategyMerge:
		return q.MergeLists
	case StrategyTA:
		return q.TALists
	default:
		return nil
	}
}

// savingFor returns the weighted saving f_i * Δ_s(Q_i).
func (q *QuerySpec) savingFor(s Strategy) float64 {
	switch s {
	case StrategyMerge:
		return q.Freq * q.SavingMerge()
	case StrategyTA:
		return q.Freq * q.SavingTA()
	default:
		return 0
	}
}

// Workload is a list of queries with frequencies summing to 1
// (Definition 4.1).
type Workload struct {
	Queries []QuerySpec
}

// Validate checks Definition 4.1: each frequency in (0, 1], summing to 1
// (within tolerance), and non-negative times.
func (w *Workload) Validate() error {
	if len(w.Queries) == 0 {
		return errors.New("selfmanage: empty workload")
	}
	var sum float64
	for i := range w.Queries {
		q := &w.Queries[i]
		if q.Freq <= 0 || q.Freq > 1 {
			return fmt.Errorf("selfmanage: query %q frequency %v outside (0,1]", q.ID, q.Freq)
		}
		if q.TimeERA < 0 || q.TimeMerge < 0 || q.TimeTA < 0 {
			return fmt.Errorf("selfmanage: query %q has negative time", q.ID)
		}
		sum += q.Freq
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("selfmanage: frequencies sum to %v, want 1", sum)
	}
	return nil
}

// Normalize rescales frequencies to sum to 1.
func (w *Workload) Normalize() {
	var sum float64
	for i := range w.Queries {
		sum += w.Queries[i].Freq
	}
	if sum <= 0 {
		return
	}
	for i := range w.Queries {
		w.Queries[i].Freq /= sum
	}
}

// Plan is a solver's output.
type Plan struct {
	// Assignments[i] is the strategy chosen for Queries[i].
	Assignments []Strategy
	// Saving is the weighted time saving Σ f_i * Δ(Q_i) over ERA.
	Saving float64
	// DiskUsed is the total size of the distinct lists materialized.
	DiskUsed int64
	// Lists are the distinct list keys to materialize.
	Lists []string
}

// planFor computes saving and disk usage of an assignment, honoring list
// sharing across queries.
func planFor(w *Workload, assign []Strategy) *Plan {
	p := &Plan{Assignments: append([]Strategy(nil), assign...)}
	seen := make(map[string]int64)
	for i := range w.Queries {
		q := &w.Queries[i]
		s := assign[i]
		p.Saving += q.savingFor(s)
		for _, l := range q.listsFor(s) {
			if _, ok := seen[l.Key]; !ok {
				seen[l.Key] = l.Bytes
				p.DiskUsed += l.Bytes
				p.Lists = append(p.Lists, l.Key)
			}
		}
	}
	return p
}

// EvaluatedTime returns the workload's weighted evaluation time under the
// plan: queries with an index use their indexed time, others use ERA.
func EvaluatedTime(w *Workload, p *Plan) float64 {
	var total float64
	for i := range w.Queries {
		q := &w.Queries[i]
		switch p.Assignments[i] {
		case StrategyMerge:
			total += q.Freq * math.Min(q.TimeMerge, q.TimeERA)
		case StrategyTA:
			total += q.Freq * math.Min(q.TimeTA, q.TimeERA)
		default:
			total += q.Freq * q.TimeERA
		}
	}
	return total
}
