package storage

import (
	"fmt"
	"io"
	"os"
)

// Backup writes a consistent copy of the database to w in the native file
// format (the output can be opened directly with Open). It flushes first;
// the caller must not write concurrently. Returns the number of bytes
// written.
func (db *DB) Backup(w io.Writer) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if err := db.pager.flush(); err != nil {
		return 0, err
	}
	// Holding metaMu for the whole copy keeps the free chain and page
	// count frozen; readers remain unaffected (they never take metaMu).
	db.pager.metaMu.Lock()
	defer db.pager.metaMu.Unlock()
	count := db.pager.meta.pageCount
	bufp := getPageBuf()
	defer putPageBuf(bufp)
	buf := *bufp
	var written int64
	for id := uint32(0); id < count; id++ {
		if err := db.pager.be.ReadPage(id, buf); err != nil {
			return written, fmt.Errorf("storage: backup page %d: %w", id, err)
		}
		n, err := w.Write(buf)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// BackupToFile writes a backup to a new file at path (failing if it
// already exists, so a backup never clobbers a live database).
func (db *DB) BackupToFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := db.Backup(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
