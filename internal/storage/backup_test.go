package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestBackupRestores(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	tr, err := db.CreateTable("data")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "backup.db")
	if err := db.BackupToFile(path); err != nil {
		t.Fatal(err)
	}
	// A backup opens as a regular database with identical contents.
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tr2, err := db2.OpenTable("data")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr2.Len(); got != n {
		t.Fatalf("restored Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, err := tr2.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("restored Get %s = (%q, %v)", k, v, err)
		}
	}
	// The backup is independent: mutating the original does not affect it.
	if err := tr.Put([]byte("key-000000"), []byte("mutated")); err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Get([]byte("key-000000"))
	if err != nil || string(v) != "val-0" {
		t.Fatalf("backup mutated: (%q, %v)", v, err)
	}
}

func TestBackupRefusesExistingFile(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	path := filepath.Join(t.TempDir(), "exists.db")
	if err := db.BackupToFile(path); err != nil {
		t.Fatal(err)
	}
	if err := db.BackupToFile(path); err == nil {
		t.Fatal("backup clobbered an existing file")
	}
}

func TestBackupBytesAreFileFormat(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	tr, _ := db.CreateTable("t")
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := db.Backup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n%PageSize != 0 {
		t.Fatalf("backup size %d not page-aligned", n)
	}
	// First page is a valid meta page.
	if _, err := decodeMeta(buf.Bytes()[:PageSize]); err != nil {
		t.Fatalf("backup meta invalid: %v", err)
	}
}

func TestBackupClosedDB(t *testing.T) {
	db := OpenMemory()
	db.Close()
	var buf bytes.Buffer
	if _, err := db.Backup(&buf); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCorruptionDetected flips a byte in an on-disk page and verifies the
// damage surfaces as ErrCorrupt rather than wrong data.
func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "victim.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of page 3 (a data page).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3*PageSize+100] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, &Options{CachePages: 9})
	if err != nil {
		// Corruption may already surface at catalog load: acceptable.
		return
	}
	defer db2.Close()
	tr2, err := db2.OpenTable("t")
	if err != nil {
		return
	}
	sawCorrupt := false
	for i := 0; i < 2000; i++ {
		_, err := tr2.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
			break
		}
		if err == ErrNotFound {
			t.Fatal("corruption surfaced as ErrNotFound — silent data loss")
		}
	}
	if !sawCorrupt {
		t.Fatal("flipped byte never detected")
	}
}
