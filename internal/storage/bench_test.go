package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Ablation: bulk loading vs random-order Puts — the design choice behind
// building Elements/PostingLists with the bottom-up loader.
func BenchmarkBulkLoadVsPut(b *testing.B) {
	const n = 20000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	val := []byte("0123456789abcdef")

	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := OpenMemory()
			tr, err := db.CreateTable("t")
			if err != nil {
				b.Fatal(err)
			}
			bl, err := tr.NewBulkLoader(0)
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys {
				if err := bl.Add(k, val); err != nil {
					b.Fatal(err)
				}
			}
			if err := bl.Finish(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(db.PageCount()), "pages")
			}
			db.Close()
		}
	})
	b.Run("sorted-puts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := OpenMemory()
			tr, err := db.CreateTable("t")
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys {
				if err := tr.Put(k, val); err != nil {
					b.Fatal(err)
				}
			}
			if i == 0 {
				b.ReportMetric(float64(db.PageCount()), "pages")
			}
			db.Close()
		}
	})
}

// Ablation: page-cache size vs point-lookup cost over an on-disk store.
func BenchmarkCacheSizeAblation(b *testing.B) {
	for _, cachePages := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("cache=%d", cachePages), func(b *testing.B) {
			path := b.TempDir() + "/bench.db"
			db, err := Open(path, &Options{CachePages: cachePages})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := db.CreateTable("t")
			if err != nil {
				b.Fatal(err)
			}
			const n = 30000
			bl, _ := tr.NewBulkLoader(0)
			for i := 0; i < n; i++ {
				if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("value")); err != nil {
					b.Fatal(err)
				}
			}
			if err := bl.Finish(); err != nil {
				b.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := []byte(fmt.Sprintf("key-%08d", (i*7919)%n))
				if _, err := tr.Get(k); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := db.Stats()
			b.ReportMetric(float64(st.CacheMisses)/float64(st.CacheHits+st.CacheMisses), "miss-rate")
			db.Close()
		})
	}
}

// Baseline micro-benchmarks for the storage primitives retrieval leans on.
func BenchmarkCursorScan(b *testing.B) {
	db := OpenMemory()
	defer db.Close()
	tr, _ := db.CreateTable("t")
	const n = 50000
	bl, _ := tr.NewBulkLoader(0)
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := bl.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := tr.Cursor()
		count := 0
		ok, err := cur.First()
		for ; ok; ok, err = cur.Next() {
			count++
		}
		if err != nil || count != n {
			b.Fatalf("scan = %d, %v", count, err)
		}
	}
}

// buildParallelBenchTable loads n sequential keys into an on-disk store.
func buildParallelBenchTable(b *testing.B, cachePages, shards, n int) (*DB, *Tree) {
	b.Helper()
	path := b.TempDir() + "/parallel.db"
	db, err := Open(path, &Options{CachePages: cachePages, CacheShards: shards})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := db.CreateTable("t")
	if err != nil {
		b.Fatal(err)
	}
	bl, _ := tr.NewBulkLoader(0)
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("0123456789abcdef")); err != nil {
			b.Fatal(err)
		}
	}
	if err := bl.Finish(); err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return db, tr
}

// BenchmarkParallelPointGet measures aggregate point-lookup throughput
// with all CPUs issuing Gets at once. The "global-mutex" variant
// serializes every Get behind one lock — the locking regime the sharded
// cache replaced — so the sharded/global qps ratio is the read-path
// scalability win at the current GOMAXPROCS.
func BenchmarkParallelPointGet(b *testing.B) {
	const n = 30000
	for _, mode := range []string{"sharded", "global-mutex"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			db, tr := buildParallelBenchTable(b, 4096, 0, n)
			defer db.Close()
			var gmu sync.Mutex
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				i := w * 1013
				for pb.Next() {
					k := []byte(fmt.Sprintf("key-%08d", (i*7919+w)%n))
					i++
					if mode == "global-mutex" {
						gmu.Lock()
					}
					_, err := tr.Get(k)
					if mode == "global-mutex" {
						gmu.Unlock()
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
			st := db.Stats()
			if st.CacheHits+st.CacheMisses > 0 {
				b.ReportMetric(float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses), "hit-ratio")
			}
		})
	}
}

// BenchmarkParallelCursorScan measures concurrent range scans (the ERA /
// Merge access pattern): every goroutine seeks to a random point and
// reads a 100-key run, all against the same tree.
func BenchmarkParallelCursorScan(b *testing.B) {
	const n = 30000
	for _, mode := range []string{"sharded", "global-mutex"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			db, tr := buildParallelBenchTable(b, 4096, 0, n)
			defer db.Close()
			var gmu sync.Mutex
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				cur := tr.Cursor()
				i := w * 977
				for pb.Next() {
					k := []byte(fmt.Sprintf("key-%08d", (i*6151+w)%n))
					i++
					if mode == "global-mutex" {
						gmu.Lock()
					}
					ok, err := cur.Seek(k)
					for s := 0; ok && err == nil && s < 100; s++ {
						ok, err = cur.Next()
					}
					if mode == "global-mutex" {
						gmu.Unlock()
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scans/s")
		})
	}
}

// BenchmarkShardCountAblation sweeps the CacheShards knob under parallel
// point gets, exposing where shard-mutex contention stops mattering.
func BenchmarkShardCountAblation(b *testing.B) {
	const n = 30000
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, tr := buildParallelBenchTable(b, 4096, shards, n)
			defer db.Close()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(worker.Add(1))
				i := w * 1013
				for pb.Next() {
					k := []byte(fmt.Sprintf("key-%08d", (i*7919+w)%n))
					i++
					if _, err := tr.Get(k); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

func BenchmarkSeek(b *testing.B) {
	db := OpenMemory()
	defer db.Close()
	tr, _ := db.CreateTable("t")
	const n = 50000
	bl, _ := tr.NewBulkLoader(0)
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := bl.Finish(); err != nil {
		b.Fatal(err)
	}
	cur := tr.Cursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%08d", (i*6151)%n))
		if ok, err := cur.Seek(k); !ok || err != nil {
			b.Fatalf("Seek = %v, %v", ok, err)
		}
	}
}
