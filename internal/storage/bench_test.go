package storage

import (
	"fmt"
	"testing"
)

// Ablation: bulk loading vs random-order Puts — the design choice behind
// building Elements/PostingLists with the bottom-up loader.
func BenchmarkBulkLoadVsPut(b *testing.B) {
	const n = 20000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	val := []byte("0123456789abcdef")

	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := OpenMemory()
			tr, err := db.CreateTable("t")
			if err != nil {
				b.Fatal(err)
			}
			bl, err := tr.NewBulkLoader(0)
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys {
				if err := bl.Add(k, val); err != nil {
					b.Fatal(err)
				}
			}
			if err := bl.Finish(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(db.PageCount()), "pages")
			}
			db.Close()
		}
	})
	b.Run("sorted-puts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := OpenMemory()
			tr, err := db.CreateTable("t")
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys {
				if err := tr.Put(k, val); err != nil {
					b.Fatal(err)
				}
			}
			if i == 0 {
				b.ReportMetric(float64(db.PageCount()), "pages")
			}
			db.Close()
		}
	})
}

// Ablation: page-cache size vs point-lookup cost over an on-disk store.
func BenchmarkCacheSizeAblation(b *testing.B) {
	for _, cachePages := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("cache=%d", cachePages), func(b *testing.B) {
			path := b.TempDir() + "/bench.db"
			db, err := Open(path, &Options{CachePages: cachePages})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := db.CreateTable("t")
			if err != nil {
				b.Fatal(err)
			}
			const n = 30000
			bl, _ := tr.NewBulkLoader(0)
			for i := 0; i < n; i++ {
				if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("value")); err != nil {
					b.Fatal(err)
				}
			}
			if err := bl.Finish(); err != nil {
				b.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := []byte(fmt.Sprintf("key-%08d", (i*7919)%n))
				if _, err := tr.Get(k); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := db.Stats()
			b.ReportMetric(float64(st.CacheMisses)/float64(st.CacheHits+st.CacheMisses), "miss-rate")
			db.Close()
		})
	}
}

// Baseline micro-benchmarks for the storage primitives retrieval leans on.
func BenchmarkCursorScan(b *testing.B) {
	db := OpenMemory()
	defer db.Close()
	tr, _ := db.CreateTable("t")
	const n = 50000
	bl, _ := tr.NewBulkLoader(0)
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := bl.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := tr.Cursor()
		count := 0
		ok, err := cur.First()
		for ; ok; ok, err = cur.Next() {
			count++
		}
		if err != nil || count != n {
			b.Fatalf("scan = %d, %v", count, err)
		}
	}
}

func BenchmarkSeek(b *testing.B) {
	db := OpenMemory()
	defer db.Close()
	tr, _ := db.CreateTable("t")
	const n = 50000
	bl, _ := tr.NewBulkLoader(0)
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := bl.Finish(); err != nil {
		b.Fatal(err)
	}
	cur := tr.Cursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%08d", (i*6151)%n))
		if ok, err := cur.Seek(k); !ok || err != nil {
			b.Fatalf("Seek = %v, %v", ok, err)
		}
	}
}
