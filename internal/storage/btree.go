package storage

import (
	"bytes"
	"fmt"
	"sort"
)

// Tree is one ordered key space (one TReX table) inside a DB.
type Tree struct {
	db   *DB
	name string
	root uint32 // nilPage when the tree is empty
}

// Name returns the table name the tree was created with.
func (t *Tree) Name() string { return t.name }

func validateKV(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > MaxKeySize {
		return ErrKeyTooLarge
	}
	if len(value) > MaxValueSize {
		return ErrValueTooLarge
	}
	return nil
}

// Get returns the value stored at key, or ErrNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	if err := validateKV(key, nil); err != nil {
		return nil, err
	}
	t.db.pager.countGet()
	if t.root == nilPage {
		return nil, ErrNotFound
	}
	leaf, err := t.descend(key)
	if err != nil {
		return nil, err
	}
	i, found := leaf.search(key)
	if !found {
		return nil, ErrNotFound
	}
	out := make([]byte, len(leaf.cells[i].val))
	copy(out, leaf.cells[i].val)
	return out, nil
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// descend walks from the root to the leaf that owns key.
func (t *Tree) descend(key []byte) (*node, error) {
	n, err := t.db.pager.node(t.root)
	if err != nil {
		return nil, err
	}
	for !n.isLeaf {
		child := n.childFor(key)
		n, err = t.db.pager.node(child)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// search finds key in a leaf: the insertion index and whether it matched.
func (n *node) search(key []byte) (int, bool) {
	i := sort.Search(len(n.cells), func(i int) bool {
		return bytes.Compare(n.cells[i].key, key) >= 0
	})
	if i < len(n.cells) && bytes.Equal(n.cells[i].key, key) {
		return i, true
	}
	return i, false
}

// childIndexFor returns the index of the child to follow for key in a
// branch node: keys[i] is the smallest key under children[i+1], so we pick
// the last separator <= key.
func (n *node) childIndexFor(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) > 0
	})
}

// childFor returns the child page to follow for key in a branch node.
func (n *node) childFor(key []byte) uint32 {
	return n.children[n.childIndexFor(key)]
}

// Put inserts or replaces the value at key.
func (t *Tree) Put(key, value []byte) error {
	if err := validateKV(key, value); err != nil {
		return err
	}
	if t.name != "\x00catalog" {
		t.db.pager.countPut()
	}
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)

	if t.root == nilPage {
		leaf, err := t.db.pager.allocNode(true)
		if err != nil {
			return err
		}
		leaf.cells = []cell{{key: k, val: v}}
		leaf.next = nilPage
		t.db.pager.markDirty(leaf)
		t.root = leaf.id
		return t.db.saveRoot(t)
	}

	splits, err := t.insert(t.root, k, v)
	if err != nil {
		return err
	}
	if len(splits) == 0 {
		return nil
	}
	for len(splits) > 0 {
		// Root split: grow the tree by one level. The new root may itself
		// overflow if the split fanned out with large separators; loop
		// until a root fits.
		newRoot, err := t.db.pager.allocNode(false)
		if err != nil {
			return err
		}
		newRoot.children = []uint32{t.root}
		for _, s := range splits {
			newRoot.keys = append(newRoot.keys, s.sep)
			newRoot.children = append(newRoot.children, s.right)
		}
		t.db.pager.markDirty(newRoot)
		t.root = newRoot.id
		if !newRoot.overfull() {
			break
		}
		splits, err = t.splitBranch(newRoot)
		if err != nil {
			return err
		}
	}
	return t.db.saveRoot(t)
}

// split describes one new right sibling produced by a node split: the
// separator key and the new page.
type split struct {
	sep   []byte
	right uint32
}

// insert adds (key,value) under page id. If the page splits, it returns
// the new right siblings (usually one; more when oversized cells force a
// multi-way split) with their separators, in order.
func (t *Tree) insert(id uint32, key, value []byte) ([]split, error) {
	n, err := t.db.pager.node(id)
	if err != nil {
		return nil, err
	}
	if n.isLeaf {
		i, found := n.search(key)
		if found {
			n.cells[i].val = value
		} else {
			n.cells = append(n.cells, cell{})
			copy(n.cells[i+1:], n.cells[i:])
			n.cells[i] = cell{key: key, val: value}
		}
		t.db.pager.markDirty(n)
		if !n.overfull() {
			return nil, nil
		}
		return t.splitLeaf(n)
	}

	ci := n.childIndexFor(key)
	childSplits, err := t.insert(n.children[ci], key, value)
	if err != nil {
		return nil, err
	}
	if len(childSplits) == 0 {
		return nil, nil
	}
	// Insert the separators and new children after position ci.
	n.keys = append(n.keys, make([][]byte, len(childSplits))...)
	copy(n.keys[ci+len(childSplits):], n.keys[ci:])
	n.children = append(n.children, make([]uint32, len(childSplits))...)
	copy(n.children[ci+1+len(childSplits):], n.children[ci+1:])
	for j, s := range childSplits {
		n.keys[ci+j] = s.sep
		n.children[ci+1+j] = s.right
	}
	t.db.pager.markDirty(n)
	if !n.overfull() {
		return nil, nil
	}
	return t.splitBranch(n)
}

// splitTarget leaves headroom in split-off nodes for future inserts.
const splitTarget = PageSize * 3 / 4

// splitLeaf redistributes an overfull leaf into itself plus as many new
// right siblings as needed so that every node fits in a page. Splitting
// by bytes (not cell count) is essential: cells range from a few bytes to
// MaxKeySize+MaxValueSize, and a count-based midpoint can leave one half
// overfull.
func (t *Tree) splitLeaf(n *node) ([]split, error) {
	cells := n.cells
	groups := packCells(cells)
	n.cells = cells[:groups[0]:groups[0]]
	t.db.pager.markDirty(n)
	var out []split
	prev := n
	start := groups[0]
	for _, g := range groups[1:] {
		right, err := t.db.pager.allocNode(true)
		if err != nil {
			return nil, err
		}
		right.cells = append(right.cells, cells[start:start+g]...)
		right.next = prev.next
		prev.next = right.id
		t.db.pager.markDirty(prev)
		t.db.pager.markDirty(right)
		out = append(out, split{
			sep:   append([]byte(nil), right.cells[0].key...),
			right: right.id,
		})
		prev = right
		start += g
	}
	return out, nil
}

// packCells greedily groups consecutive cells into page-sized nodes,
// returning the group sizes. Every group fits because a single cell is
// bounded by MaxKeySize+MaxValueSize, well under the target.
func packCells(cells []cell) []int {
	var groups []int
	size := nodeHeaderSize
	count := 0
	for i := range cells {
		cs := leafCellFixed + len(cells[i].key) + len(cells[i].val)
		if count > 0 && size+cs > splitTarget {
			groups = append(groups, count)
			size = nodeHeaderSize
			count = 0
		}
		size += cs
		count++
	}
	if count > 0 {
		groups = append(groups, count)
	}
	return groups
}

// splitBranch redistributes an overfull branch into itself plus new right
// siblings. Keys are packed into byte-bounded groups; the first key of
// each non-first group is promoted as the separator to the parent, so
// node j>0 keeps its group's remaining keys. Every non-first group must
// therefore hold at least two keys; a short final group steals one key
// from its (always amply filled) predecessor.
func (t *Tree) splitBranch(n *node) ([]split, error) {
	keys := n.keys
	children := n.children
	var groups []int
	size := nodeHeaderSize
	count := 0
	for i := range keys {
		ks := branchCellFixed + len(keys[i])
		if count > 0 && size+ks > splitTarget {
			groups = append(groups, count)
			size = nodeHeaderSize
			count = 0
		}
		size += ks
		count++
	}
	if count > 0 {
		groups = append(groups, count)
	}
	if len(groups) == 1 {
		return nil, fmt.Errorf("storage: branch %d overfull but unsplittable", n.id)
	}
	last := len(groups) - 1
	if groups[last] < 2 {
		groups[last-1]--
		groups[last]++
	}
	// First group stays in n.
	g0 := groups[0]
	n.keys = keys[:g0:g0]
	n.children = children[: g0+1 : g0+1]
	t.db.pager.markDirty(n)

	var out []split
	pos := g0
	for _, g := range groups[1:] {
		// keys[pos] is promoted; the node keeps keys[pos+1 : pos+g] and
		// children[pos+1 : pos+g+1].
		promoted := keys[pos]
		right, err := t.db.pager.allocNode(false)
		if err != nil {
			return nil, err
		}
		right.keys = append(right.keys, keys[pos+1:pos+g]...)
		right.children = append(right.children, children[pos+1:pos+g+1]...)
		t.db.pager.markDirty(right)
		out = append(out, split{sep: promoted, right: right.id})
		pos += g
	}
	return out, nil
}

// Delete removes key if present. It reports whether a key was removed.
//
// Deletion is lazy: leaves may become underfull, and a leaf page is only
// reclaimed when it becomes entirely empty. Index tables in TReX are
// rebuilt rather than trimmed in place, so sustained delete-heavy
// workloads are out of scope; correctness (ordering, linkage) is preserved
// for any delete pattern.
func (t *Tree) Delete(key []byte) (bool, error) {
	if err := validateKV(key, nil); err != nil {
		return false, err
	}
	if t.root == nilPage {
		return false, nil
	}
	removed, err := t.deleteFrom(t.root, key)
	if err != nil || !removed {
		return removed, err
	}
	// If the root is a branch with a single child, shrink the tree.
	for {
		n, err := t.db.pager.node(t.root)
		if err != nil {
			return true, err
		}
		if n.isLeaf {
			if len(n.cells) == 0 {
				if err := t.db.pager.freeNode(n); err != nil {
					return true, err
				}
				t.root = nilPage
				return true, t.db.saveRoot(t)
			}
			return true, nil
		}
		if len(n.children) == 0 {
			// Every child was reclaimed: the tree is empty.
			if err := t.db.pager.freeNode(n); err != nil {
				return true, err
			}
			t.root = nilPage
			return true, t.db.saveRoot(t)
		}
		if len(n.children) == 1 {
			child := n.children[0]
			if err := t.db.pager.freeNode(n); err != nil {
				return true, err
			}
			t.root = child
			if err := t.db.saveRoot(t); err != nil {
				return true, err
			}
			continue
		}
		return true, nil
	}
}

// deleteFrom removes key from the subtree rooted at id.
func (t *Tree) deleteFrom(id uint32, key []byte) (bool, error) {
	n, err := t.db.pager.node(id)
	if err != nil {
		return false, err
	}
	if n.isLeaf {
		i, found := n.search(key)
		if !found {
			return false, nil
		}
		copy(n.cells[i:], n.cells[i+1:])
		n.cells = n.cells[:len(n.cells)-1]
		t.db.pager.markDirty(n)
		return true, nil
	}
	ci := sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) > 0
	})
	child := n.children[ci]
	removed, err := t.deleteFrom(child, key)
	if err != nil || !removed {
		return removed, err
	}
	// Reclaim an empty child (a leaf with no cells, or a branch whose own
	// children were all reclaimed) and drop it from this branch.
	cn, err := t.db.pager.node(child)
	if err != nil {
		return true, err
	}
	emptyLeaf := cn.isLeaf && len(cn.cells) == 0
	emptyBranch := !cn.isLeaf && len(cn.children) == 0
	if emptyLeaf || emptyBranch {
		if emptyLeaf {
			if err := t.unlinkLeaf(cn); err != nil {
				return true, err
			}
		}
		if err := t.db.pager.freeNode(cn); err != nil {
			return true, err
		}
		switch {
		case len(n.keys) == 0:
			// n was a pass-through branch (one child, no keys); it is now
			// empty and will be reclaimed by its own parent (or by the
			// root loop in Delete).
			n.children = n.children[:0]
		case ci == 0:
			n.keys = n.keys[1:]
			n.children = n.children[1:]
		default:
			n.keys = append(n.keys[:ci-1], n.keys[ci:]...)
			n.children = append(n.children[:ci], n.children[ci+1:]...)
		}
		t.db.pager.markDirty(n)
	}
	return true, nil
}

// unlinkLeaf removes leaf from the left-to-right sibling chain by scanning
// from the leftmost leaf. Deletes are rare in TReX (tables are rebuilt),
// so the linear scan is acceptable and keeps the format simple (no prev
// pointers).
func (t *Tree) unlinkLeaf(leaf *node) error {
	first, err := t.firstLeaf()
	if err != nil || first == nil {
		return err
	}
	if first.id == leaf.id {
		return nil // no left sibling to fix
	}
	cur := first
	for cur.next != nilPage {
		if cur.next == leaf.id {
			cur.next = leaf.next
			t.db.pager.markDirty(cur)
			return nil
		}
		cur, err = t.db.pager.node(cur.next)
		if err != nil {
			return err
		}
	}
	return nil
}

// firstLeaf returns the leftmost leaf, or nil for an empty tree.
func (t *Tree) firstLeaf() (*node, error) {
	if t.root == nilPage {
		return nil, nil
	}
	n, err := t.db.pager.node(t.root)
	if err != nil {
		return nil, err
	}
	for !n.isLeaf {
		n, err = t.db.pager.node(n.children[0])
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Len counts the keys in the tree by walking the leaf chain.
func (t *Tree) Len() (int, error) {
	n, err := t.firstLeaf()
	if err != nil {
		return 0, err
	}
	total := 0
	for n != nil {
		total += len(n.cells)
		if n.next == nilPage {
			break
		}
		n, err = t.db.pager.node(n.next)
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// ApproxBytes estimates the on-disk footprint of the tree in bytes by
// walking the leaf chain. Branch pages are a small constant factor on top;
// the self-managing advisor uses this as the S_RPL/S_ERPL size term.
func (t *Tree) ApproxBytes() (int64, error) {
	n, err := t.firstLeaf()
	if err != nil {
		return 0, err
	}
	var total int64
	for n != nil {
		total += PageSize
		if n.next == nilPage {
			break
		}
		n, err = t.db.pager.node(n.next)
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}
