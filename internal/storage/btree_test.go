package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func newTestTree(t *testing.T) *Tree {
	t.Helper()
	db := OpenMemory()
	t.Cleanup(func() { db.Close() })
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return tr
}

func TestPutGetSingle(t *testing.T) {
	tr := newTestTree(t)
	if err := tr.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := tr.Get([]byte("hello"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(v) != "world" {
		t.Fatalf("Get = %q, want %q", v, "world")
	}
}

func TestGetMissing(t *testing.T) {
	tr := newTestTree(t)
	if _, err := tr.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := tr.Get([]byte("b")); err != ErrNotFound {
		t.Fatalf("Get missing after insert = %v, want ErrNotFound", err)
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := newTestTree(t)
	key := []byte("k")
	for i := 0; i < 5; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := tr.Put(key, val); err != nil {
			t.Fatalf("Put #%d: %v", i, err)
		}
		got, err := tr.Get(key)
		if err != nil {
			t.Fatalf("Get #%d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get #%d = %q, want %q", i, got, val)
		}
	}
	n, err := tr.Len()
	if err != nil {
		t.Fatalf("Len: %v", err)
	}
	if n != 1 {
		t.Fatalf("Len = %d after overwrites, want 1", n)
	}
}

func TestKeyValidation(t *testing.T) {
	tr := newTestTree(t)
	if err := tr.Put(nil, []byte("v")); err != ErrEmptyKey {
		t.Errorf("empty key: err = %v, want ErrEmptyKey", err)
	}
	if err := tr.Put(make([]byte, MaxKeySize+1), []byte("v")); err != ErrKeyTooLarge {
		t.Errorf("big key: err = %v, want ErrKeyTooLarge", err)
	}
	if err := tr.Put([]byte("k"), make([]byte, MaxValueSize+1)); err != ErrValueTooLarge {
		t.Errorf("big value: err = %v, want ErrValueTooLarge", err)
	}
	if err := tr.Put(make([]byte, MaxKeySize), make([]byte, MaxValueSize)); err != nil {
		t.Errorf("max-size pair rejected: %v", err)
	}
}

func TestManyInsertsSplitAndOrder(t *testing.T) {
	tr := newTestTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i*i))
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	// Every key retrievable.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
		want := fmt.Sprintf("val-%d", i*i)
		if string(v) != want {
			t.Fatalf("Get %s = %q, want %q", k, v, want)
		}
	}
	// Cursor yields all keys in strict order.
	cur := tr.Cursor()
	ok, err := cur.First()
	if err != nil {
		t.Fatalf("First: %v", err)
	}
	count := 0
	var last []byte
	for ok {
		if last != nil && bytes.Compare(cur.Key(), last) <= 0 {
			t.Fatalf("cursor out of order: %q after %q", cur.Key(), last)
		}
		last = append(last[:0], cur.Key()...)
		count++
		ok, err = cur.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if count != n {
		t.Fatalf("cursor saw %d keys, want %d", count, n)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := tr.Put(k, []byte("x")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Delete the even keys.
	for i := 0; i < n; i += 2 {
		k := []byte(fmt.Sprintf("key-%05d", i))
		removed, err := tr.Delete(k)
		if err != nil {
			t.Fatalf("Delete %s: %v", k, err)
		}
		if !removed {
			t.Fatalf("Delete %s reported not removed", k)
		}
	}
	// Re-delete reports false.
	if removed, err := tr.Delete([]byte("key-00000")); err != nil || removed {
		t.Fatalf("re-Delete = (%v, %v), want (false, nil)", removed, err)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		_, err := tr.Get(k)
		if i%2 == 0 && err != ErrNotFound {
			t.Fatalf("deleted key %s still present (err=%v)", k, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %s lost: %v", k, err)
		}
	}
	got, err := tr.Len()
	if err != nil {
		t.Fatalf("Len: %v", err)
	}
	if got != n/2 {
		t.Fatalf("Len = %d, want %d", got, n/2)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newTestTree(t)
	const n = 1200
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := tr.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if got, _ := tr.Len(); got != 0 {
		t.Fatalf("Len after delete-all = %d, want 0", got)
	}
	// The tree must be reusable after full deletion.
	if err := tr.Put([]byte("again"), []byte("yes")); err != nil {
		t.Fatalf("Put after delete-all: %v", err)
	}
	v, err := tr.Get([]byte("again"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("Get after reuse = (%q, %v)", v, err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trex.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tr, err := db.CreateTable("elements")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("value-%06d", i))
		if err := tr.Put(k, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tr2, err := db2.OpenTable("elements")
	if err != nil {
		t.Fatalf("OpenTable: %v", err)
	}
	for i := 0; i < n; i += 37 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, err := tr2.Get(k)
		if err != nil {
			t.Fatalf("Get %s after reopen: %v", k, err)
		}
		want := fmt.Sprintf("value-%06d", i)
		if string(v) != want {
			t.Fatalf("Get %s = %q, want %q", k, v, want)
		}
	}
	if got, _ := tr2.Len(); got != n {
		t.Fatalf("Len after reopen = %d, want %d", got, n)
	}
}

func TestMultipleTables(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	names := []string{"Elements", "PostingLists", "RPLs", "ERPLs"}
	for _, name := range names {
		tr, err := db.CreateTable(name)
		if err != nil {
			t.Fatalf("CreateTable %s: %v", name, err)
		}
		if err := tr.Put([]byte("k"), []byte(name)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, err := db.CreateTable("Elements"); err != ErrTableExists {
		t.Fatalf("duplicate CreateTable err = %v, want ErrTableExists", err)
	}
	if _, err := db.OpenTable("nope"); err == nil {
		t.Fatal("OpenTable on missing table succeeded")
	}
	for _, name := range names {
		tr, err := db.OpenTable(name)
		if err != nil {
			t.Fatalf("OpenTable %s: %v", name, err)
		}
		v, err := tr.Get([]byte("k"))
		if err != nil || string(v) != name {
			t.Fatalf("table %s value = (%q, %v)", name, v, err)
		}
	}
	got := db.Tables()
	want := []string{"ERPLs", "Elements", "PostingLists", "RPLs"}
	if len(got) != len(want) {
		t.Fatalf("Tables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables = %v, want %v", got, want)
		}
	}
}

func TestSmallCacheCorrectness(t *testing.T) {
	// A tiny cache forces evictions on every operation; this exercises the
	// markDirty re-registration path.
	path := filepath.Join(t.TempDir(), "small.db")
	db, err := Open(path, &Options{CachePages: 9})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const n = 4000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := tr.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(path, &Options{CachePages: 9})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tr2, err := db2.OpenTable("t")
	if err != nil {
		t.Fatalf("OpenTable: %v", err)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, err := tr2.Get(k)
		if err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get %s = %q", k, v)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	tr := newTestTree(t)
	before := tr.db.Stats()
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := tr.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	cur := tr.Cursor()
	ok, _ := cur.First()
	for ok {
		ok, _ = cur.Next()
	}
	d := tr.db.Stats().Sub(before)
	if d.Puts != 100 {
		t.Errorf("Puts = %d, want 100", d.Puts)
	}
	if d.Gets != 50 {
		t.Errorf("Gets = %d, want 50", d.Gets)
	}
	if d.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1", d.Seeks)
	}
	if d.Nexts != 100 {
		t.Errorf("Nexts = %d, want 100", d.Nexts)
	}
}

func TestClosedDBErrors(t *testing.T) {
	db := OpenMemory()
	tr, err := db.CreateTable("t")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := db.CreateTable("u"); err != ErrClosed {
		t.Errorf("CreateTable after close = %v, want ErrClosed", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Errorf("Flush after close = %v, want ErrClosed", err)
	}
}

// TestRandomizedAgainstModel compares the tree with a map+sort model under a
// random mixed workload of puts, deletes and gets.
func TestRandomizedAgainstModel(t *testing.T) {
	tr := newTestTree(t)
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(42))
	const ops = 20000
	keyspace := 3000
	for op := 0; op < ops; op++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(keyspace))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			v := fmt.Sprintf("v-%d", op)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			model[k] = v
		case 6, 7: // delete
			removed, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatalf("Delete: %v", err)
			}
			_, inModel := model[k]
			if removed != inModel {
				t.Fatalf("Delete %s = %v, model has=%v", k, removed, inModel)
			}
			delete(model, k)
		default: // get
			v, err := tr.Get([]byte(k))
			mv, inModel := model[k]
			if inModel {
				if err != nil || string(v) != mv {
					t.Fatalf("Get %s = (%q, %v), want %q", k, v, err, mv)
				}
			} else if err != ErrNotFound {
				t.Fatalf("Get %s = (%q, %v), want ErrNotFound", k, v, err)
			}
		}
	}
	// Final sweep: cursor contents must equal the sorted model.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	cur := tr.Cursor()
	ok, err := cur.First()
	if err != nil {
		t.Fatalf("First: %v", err)
	}
	i := 0
	for ok {
		if i >= len(wantKeys) {
			t.Fatalf("cursor has extra key %q", cur.Key())
		}
		if string(cur.Key()) != wantKeys[i] {
			t.Fatalf("cursor key[%d] = %q, want %q", i, cur.Key(), wantKeys[i])
		}
		if string(cur.Value()) != model[wantKeys[i]] {
			t.Fatalf("cursor val[%d] = %q, want %q", i, cur.Value(), model[wantKeys[i]])
		}
		i++
		ok, err = cur.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if i != len(wantKeys) {
		t.Fatalf("cursor saw %d keys, want %d", i, len(wantKeys))
	}
}

// TestDeleteRangeCollapsesSubtrees deletes a contiguous key range large
// enough to empty whole subtrees (the DropList pattern), exercising
// pass-through-branch reclamation.
func TestDeleteRangeCollapsesSubtrees(t *testing.T) {
	tr := newTestTree(t)
	const n = 8000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Delete a big contiguous middle range in ascending order.
	for i := 1000; i < 7000; i++ {
		removed, err := tr.Delete([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
		if !removed {
			t.Fatalf("Delete %d reported not removed", i)
		}
	}
	if got, _ := tr.Len(); got != 2000 {
		t.Fatalf("Len = %d, want 2000", got)
	}
	// Scan order intact across the gap.
	cur := tr.Cursor()
	ok, err := cur.First()
	count := 0
	var last []byte
	for ; ok; ok, err = cur.Next() {
		if last != nil && bytes.Compare(cur.Key(), last) <= 0 {
			t.Fatalf("order violation at %q", cur.Key())
		}
		last = append(last[:0], cur.Key()...)
		count++
	}
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if count != 2000 {
		t.Fatalf("scanned %d, want 2000", count)
	}
	// Flush works (no orphaned unencodable nodes).
	if err := tr.db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Deleting everything else empties the tree cleanly.
	for i := 0; i < 1000; i++ {
		if _, err := tr.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	for i := 7000; i < n; i++ {
		if _, err := tr.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if got, _ := tr.Len(); got != 0 {
		t.Fatalf("Len after full delete = %d", got)
	}
	if err := tr.Put([]byte("fresh"), []byte("start")); err != nil {
		t.Fatalf("Put after full delete: %v", err)
	}
}

// TestFreePageReuse verifies that pages reclaimed by deletion are reused
// by later inserts instead of growing the file — the disk-space story the
// self-managing advisor depends on when it drops and re-materializes
// lists.
func TestFreePageReuse(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	tr, err := db.CreateTable("lists")
	if err != nil {
		t.Fatal(err)
	}
	fill := func() {
		for i := 0; i < 5000; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("v"), 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain := func() {
		for i := 0; i < 5000; i++ {
			if _, err := tr.Delete([]byte(fmt.Sprintf("k%06d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill()
	after1 := db.PageCount()
	for cycle := 0; cycle < 3; cycle++ {
		drain()
		fill()
	}
	after4 := db.PageCount()
	// Some growth is tolerated (freelist ordering), but repeated
	// drop/rebuild cycles must not multiply the file size.
	if after4 > after1*2 {
		t.Fatalf("page count grew from %d to %d over drop/rebuild cycles", after1, after4)
	}
}
