package storage

import "bytes"

// BulkLoader builds a tree bottom-up from a strictly ascending key stream.
// Index construction in TReX emits keys in sorted order (Elements by
// (sid,docid,endpos), posting lists by (token,position), RPLs by
// (token,score desc) — all made ascending by the key codecs), so bulk
// loading packs leaves near-full and avoids the write amplification of
// random inserts.
//
// Usage: NewBulkLoader, Add for each pair in order, then Finish. The tree
// must be empty when loading starts.
type BulkLoader struct {
	tree    *Tree
	cur     *node  // leaf being filled
	lastKey []byte // for order validation
	// levels[i] is the branch node currently being filled at height i+1.
	levels   []*node
	fillFrac float64
	done     bool
	err      error
}

// NewBulkLoader prepares a bulk load into t. fillFrac in (0,1] controls how
// full leaves are packed; 0 defaults to 0.9 (leave slack for later Puts).
func (t *Tree) NewBulkLoader(fillFrac float64) (*BulkLoader, error) {
	if t.root != nilPage {
		return nil, ErrTableExists
	}
	if fillFrac <= 0 || fillFrac > 1 {
		fillFrac = 0.9
	}
	return &BulkLoader{tree: t, fillFrac: fillFrac}, nil
}

// Add appends a pair. Keys must be strictly ascending.
func (b *BulkLoader) Add(key, value []byte) error {
	if b.err != nil {
		return b.err
	}
	if b.done {
		b.err = ErrClosed
		return b.err
	}
	if err := validateKV(key, value); err != nil {
		b.err = err
		return err
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		b.err = ErrUnsorted
		return b.err
	}
	b.lastKey = append(b.lastKey[:0], key...)

	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)

	if b.cur == nil {
		leaf, err := b.tree.db.pager.allocNode(true)
		if err != nil {
			b.err = err
			return err
		}
		leaf.next = nilPage
		b.cur = leaf
	}
	target := int(float64(pagePayload) * b.fillFrac)
	addSize := leafCellFixed + len(k) + len(v)
	if len(b.cur.cells) > 0 && b.cur.encodedSize()+addSize > target {
		if err := b.sealLeaf(k); err != nil {
			b.err = err
			return err
		}
	}
	b.cur.cells = append(b.cur.cells, cell{key: k, val: v})
	b.tree.db.pager.markDirty(b.cur)
	return nil
}

// sealLeaf finishes the current leaf, starts a new one and pushes the new
// leaf's first key up the branch levels.
func (b *BulkLoader) sealLeaf(nextFirstKey []byte) error {
	newLeaf, err := b.tree.db.pager.allocNode(true)
	if err != nil {
		return err
	}
	newLeaf.next = nilPage
	b.cur.next = newLeaf.id
	b.tree.db.pager.markDirty(b.cur)
	oldID := b.cur.id
	b.cur = newLeaf
	return b.pushUp(0, oldID, nextFirstKey, newLeaf.id)
}

// pushUp records that at branch level lv, child left is followed by child
// right with separator sep.
func (b *BulkLoader) pushUp(lv int, left uint32, sep []byte, right uint32) error {
	if lv == len(b.levels) {
		br, err := b.tree.db.pager.allocNode(false)
		if err != nil {
			return err
		}
		br.children = []uint32{left}
		b.levels = append(b.levels, br)
	}
	br := b.levels[lv]
	sepCopy := append([]byte(nil), sep...)
	br.keys = append(br.keys, sepCopy)
	br.children = append(br.children, right)
	b.tree.db.pager.markDirty(br)

	target := int(float64(pagePayload) * b.fillFrac)
	if br.encodedSize() <= target {
		return nil
	}
	// Seal this branch: its last key/child move to a fresh branch at the
	// same level, and the separator is promoted.
	last := len(br.keys) - 1
	promoted := br.keys[last]
	carryChild := br.children[last+1]
	br.keys = br.keys[:last]
	br.children = br.children[:last+1]
	nb, err := b.tree.db.pager.allocNode(false)
	if err != nil {
		return err
	}
	nb.children = []uint32{carryChild}
	oldID := br.id
	b.levels[lv] = nb
	b.tree.db.pager.markDirty(br)
	b.tree.db.pager.markDirty(nb)
	return b.pushUp(lv+1, oldID, promoted, nb.id)
}

// Finish completes the load and installs the new root. Count reports how
// many pairs were added.
func (b *BulkLoader) Finish() error {
	if b.err != nil {
		return b.err
	}
	if b.done {
		return nil
	}
	b.done = true
	if b.cur == nil {
		return nil // empty load: tree stays empty
	}
	// The topmost level that exists becomes the root; levels below are
	// already linked. If no branch level exists the single leaf is root.
	root := b.cur.id
	if len(b.levels) > 0 {
		root = b.levels[len(b.levels)-1].id
	}
	b.tree.root = root
	return b.tree.db.saveRoot(b.tree)
}
