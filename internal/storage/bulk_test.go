package storage

import (
	"bytes"
	"fmt"
	"testing"
)

func TestBulkLoadBasic(t *testing.T) {
	tr := newTestTree(t)
	bl, err := tr.NewBulkLoader(0)
	if err != nil {
		t.Fatalf("NewBulkLoader: %v", err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%06d", i))
		if err := bl.Add(k, v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Point lookups.
	for i := 0; i < n; i += 113 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
		if string(v) != fmt.Sprintf("val-%06d", i) {
			t.Fatalf("Get %s = %q", k, v)
		}
	}
	// Full ordered scan.
	cur := tr.Cursor()
	ok, err := cur.First()
	if err != nil {
		t.Fatalf("First: %v", err)
	}
	i := 0
	for ok {
		want := fmt.Sprintf("key-%06d", i)
		if string(cur.Key()) != want {
			t.Fatalf("key[%d] = %q, want %q", i, cur.Key(), want)
		}
		i++
		ok, err = cur.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if i != n {
		t.Fatalf("scanned %d, want %d", i, n)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := newTestTree(t)
	bl, err := tr.NewBulkLoader(0)
	if err != nil {
		t.Fatalf("NewBulkLoader: %v", err)
	}
	if err := bl.Finish(); err != nil {
		t.Fatalf("Finish on empty: %v", err)
	}
	if n, _ := tr.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

func TestBulkLoadSingle(t *testing.T) {
	tr := newTestTree(t)
	bl, _ := tr.NewBulkLoader(0)
	if err := bl.Add([]byte("only"), []byte("one")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := bl.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	v, err := tr.Get([]byte("only"))
	if err != nil || string(v) != "one" {
		t.Fatalf("Get = (%q, %v)", v, err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := newTestTree(t)
	bl, _ := tr.NewBulkLoader(0)
	if err := bl.Add([]byte("b"), []byte("1")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := bl.Add([]byte("a"), []byte("2")); err != ErrUnsorted {
		t.Fatalf("out-of-order Add err = %v, want ErrUnsorted", err)
	}
	if err := bl.Add([]byte("b"), []byte("3")); err != ErrUnsorted {
		t.Fatalf("Add after failure err = %v, want sticky ErrUnsorted", err)
	}
	if err := bl.Finish(); err != ErrUnsorted {
		t.Fatalf("Finish after failure err = %v, want ErrUnsorted", err)
	}
}

func TestBulkLoadDuplicateRejected(t *testing.T) {
	tr := newTestTree(t)
	bl, _ := tr.NewBulkLoader(0)
	if err := bl.Add([]byte("a"), []byte("1")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := bl.Add([]byte("a"), []byte("2")); err != ErrUnsorted {
		t.Fatalf("duplicate Add err = %v, want ErrUnsorted", err)
	}
}

func TestBulkLoadOnNonEmptyTree(t *testing.T) {
	tr := newTestTree(t)
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := tr.NewBulkLoader(0); err != ErrTableExists {
		t.Fatalf("NewBulkLoader on non-empty err = %v, want ErrTableExists", err)
	}
}

func TestBulkLoadThenPut(t *testing.T) {
	tr := newTestTree(t)
	bl, _ := tr.NewBulkLoader(0.9)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("k%06d", i*2)), []byte("bulk")); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Interleave fresh keys via regular Put; splits must keep everything.
	for i := 0; i < n; i += 5 {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i*2+1)), []byte("put")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	want := n + n/5
	got, err := tr.Len()
	if err != nil {
		t.Fatalf("Len: %v", err)
	}
	if got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	cur := tr.Cursor()
	var last []byte
	ok, err := cur.First()
	for ; ok; ok, err = cur.Next() {
		if last != nil && bytes.Compare(cur.Key(), last) <= 0 {
			t.Fatalf("order violation: %q after %q", cur.Key(), last)
		}
		last = append(last[:0], cur.Key()...)
	}
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
}

func TestBulkLoadPersists(t *testing.T) {
	db := OpenMemory()
	defer db.Close()
	tr, err := db.CreateTable("bulk")
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	bl, _ := tr.NewBulkLoader(0)
	const n = 50000
	for i := 0; i < n; i++ {
		if err := bl.Add([]byte(fmt.Sprintf("key-%08d", i)), []byte("v")); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// Spot-check seeks across the whole range.
	cur := tr.Cursor()
	for i := 0; i < n; i += 9973 {
		k := []byte(fmt.Sprintf("key-%08d", i))
		ok, err := cur.Seek(k)
		if err != nil || !ok {
			t.Fatalf("Seek %s = (%v, %v)", k, ok, err)
		}
		if !bytes.Equal(cur.Key(), k) {
			t.Fatalf("Seek %s landed on %q", k, cur.Key())
		}
	}
}
